package obs

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanTreeBasics(t *testing.T) {
	ctx, root := StartSpan(context.Background(), "generate")
	ctx6, s6 := StartSpan(ctx, "step6.import_mapping")
	_ = ctx6
	s6.End()
	ctx7, s7 := StartSpan(ctx, "step7.pathdisc")
	_, leaf := StartSpan(ctx7, "Request printing")
	leaf.SetAttr("paths", 2)
	leaf.End()
	s7.End()
	root.End()

	if got := len(root.Children()); got != 2 {
		t.Fatalf("root children = %d, want 2", got)
	}
	if root.Children()[1].Children()[0].Name() != "Request printing" {
		t.Errorf("grandchild = %q", root.Children()[1].Children()[0].Name())
	}
	if err := root.WellFormed(); err != nil {
		t.Error(err)
	}
	if attrs := leaf.Attrs(); len(attrs) != 1 || attrs[0].Key != "paths" || attrs[0].Value != 2 {
		t.Errorf("attrs = %v", attrs)
	}
}

func TestSpanWithoutParentIsRoot(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Fatal("empty context carries a span")
	}
	ctx, sp := StartSpan(context.Background(), "solo")
	sp.End()
	if FromContext(ctx) != sp {
		t.Error("context does not carry the span")
	}
	if err := sp.WellFormed(); err != nil {
		t.Error(err)
	}
}

func TestEndIdempotent(t *testing.T) {
	_, sp := StartSpan(context.Background(), "once")
	sp.End()
	end := sp.EndTime()
	time.Sleep(time.Millisecond)
	sp.End()
	if !sp.EndTime().Equal(end) {
		t.Error("second End moved the end time")
	}
}

func TestRender(t *testing.T) {
	ctx, root := StartSpan(context.Background(), "generate")
	_, child := StartSpan(ctx, "step7.pathdisc")
	child.SetAttr("paths", 2)
	child.End()
	root.End()
	out := root.Render()
	if !strings.Contains(out, "generate") || !strings.Contains(out, "└─ step7.pathdisc") {
		t.Errorf("render = %q", out)
	}
	if !strings.Contains(out, "paths=2") {
		t.Errorf("render misses attrs: %q", out)
	}
	if lines := strings.Count(out, "\n"); lines != 2 {
		t.Errorf("render has %d lines, want 2: %q", lines, out)
	}
}

// TestSpanTreePropertyConcurrent is the satellite property test: under
// concurrent child creation and annotation, the finished tree is
// well-formed — every child interval nests within its parent and no
// duration is negative. Run with -race.
func TestSpanTreePropertyConcurrent(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		fanout := 2 + rng.Intn(6)
		depth := 1 + rng.Intn(3)

		ctx, root := StartSpan(context.Background(), "root")
		var grow func(ctx context.Context, level int, wg *sync.WaitGroup)
		grow = func(ctx context.Context, level int, wg *sync.WaitGroup) {
			defer wg.Done()
			if level >= depth {
				return
			}
			var inner sync.WaitGroup
			for i := 0; i < fanout; i++ {
				inner.Add(1)
				go func(i int) {
					cctx, sp := StartSpan(ctx, fmt.Sprintf("L%d.%d", level, i))
					sp.SetAttr("level", level)
					var deeper sync.WaitGroup
					deeper.Add(1)
					grow(cctx, level+1, &deeper)
					deeper.Wait()
					sp.End() // children finished first: intervals nest
					inner.Done()
				}(i)
			}
			inner.Wait()
		}
		var wg sync.WaitGroup
		wg.Add(1)
		grow(ctx, 0, &wg)
		wg.Wait()
		root.End()

		if err := root.WellFormed(); err != nil {
			t.Fatalf("trial %d (fanout %d depth %d): %v", trial, fanout, depth, err)
		}
		spans := 0
		root.Walk(func(*Span, int) { spans++ })
		want := 1
		perLevel := 1
		for l := 0; l < depth; l++ {
			perLevel *= fanout
			want += perLevel
		}
		if spans != want {
			t.Fatalf("trial %d: %d spans, want %d", trial, spans, want)
		}
	}
}

func TestWellFormedDetectsUnended(t *testing.T) {
	_, sp := StartSpan(context.Background(), "open")
	if err := sp.WellFormed(); err == nil {
		t.Error("unended span reported well-formed")
	}
}
