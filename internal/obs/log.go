package obs

import (
	"log/slog"
	"os"
	"sync/atomic"
)

// logger holds the process-wide structured logger. The default writes
// text-format records to stderr at Info level; binaries swap it at startup
// (cmd/upsimd installs a level-configurable one) and libraries obtain it via
// Logger so that everything logs through one sink.
var logger atomic.Pointer[slog.Logger]

func init() {
	logger.Store(slog.New(slog.NewTextHandler(os.Stderr, nil)))
}

// Logger returns the current process-wide structured logger.
func Logger() *slog.Logger { return logger.Load() }

// SetLogger replaces the process-wide structured logger. Passing nil resets
// to the default stderr text logger.
func SetLogger(l *slog.Logger) {
	if l == nil {
		l = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	logger.Store(l)
}
