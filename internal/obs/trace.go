package obs

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Span is one timed stage of a pipeline run. Spans form a tree: starting a
// span from a context that already carries one attaches the new span as a
// child. A Span is safe for concurrent use — concurrent children (e.g. the
// parallel path-discovery branches) may attach and annotate simultaneously.
type Span struct {
	name  string
	start time.Time

	mu       sync.Mutex
	end      time.Time
	attrs    []Attr
	children []*Span
}

// Attr is one recorded span attribute.
type Attr struct {
	Key   string
	Value any
}

type spanKey struct{}

// StartSpan begins a span named name. If ctx already carries a span the new
// one is attached as its child; otherwise it is a root. The returned context
// carries the new span, so nested pipeline stages chain automatically. Call
// End when the stage finishes.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	sp := &Span{name: name, start: time.Now()}
	if parent := FromContext(ctx); parent != nil {
		parent.mu.Lock()
		parent.children = append(parent.children, sp)
		parent.mu.Unlock()
	}
	return context.WithValue(ctx, spanKey{}, sp), sp
}

// FromContext returns the span carried by ctx, or nil.
func FromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}

// End marks the span finished. The first call wins; later calls (and calls
// from deferred cleanup paths) are no-ops.
func (s *Span) End() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
}

// SetAttr records an attribute on the span.
func (s *Span) SetAttr(key string, value any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// Name returns the span name.
func (s *Span) Name() string { return s.name }

// Start returns the span start time.
func (s *Span) Start() time.Time { return s.start }

// EndTime returns the span end time (zero if the span has not ended).
func (s *Span) EndTime() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.end
}

// Duration returns end − start, or the running duration if the span has not
// ended yet.
func (s *Span) Duration() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.end.IsZero() {
		return time.Since(s.start)
	}
	return s.end.Sub(s.start)
}

// Attrs returns a copy of the recorded attributes.
func (s *Span) Attrs() []Attr {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Attr(nil), s.attrs...)
}

// Children returns a copy of the child spans in attachment order.
func (s *Span) Children() []*Span {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// Walk visits the span and every descendant depth-first, passing the
// nesting depth (0 for s itself).
func (s *Span) Walk(visit func(sp *Span, depth int)) {
	s.walk(visit, 0)
}

func (s *Span) walk(visit func(sp *Span, depth int), depth int) {
	visit(s, depth)
	for _, c := range s.Children() {
		c.walk(visit, depth+1)
	}
}

// Render returns the span tree as an indented text diagram with per-stage
// durations and attributes — what `upsim -trace` prints:
//
//	generate                          5.1ms
//	├─ step6.import_mapping           0.2ms
//	├─ step7.pathdisc                 3.9ms
//	│  └─ Request printing            3.9ms  paths=2 edge_visits=22
//	└─ step8.merge                    0.8ms
func (s *Span) Render() string {
	type row struct {
		prefix string
		name   string
		span   *Span
	}
	var rows []row
	var build func(sp *Span, prefix, childPrefix string)
	build = func(sp *Span, prefix, childPrefix string) {
		rows = append(rows, row{prefix: prefix, name: sp.Name(), span: sp})
		kids := sp.Children()
		for i, c := range kids {
			connector, extend := "├─ ", "│  "
			if i == len(kids)-1 {
				connector, extend = "└─ ", "   "
			}
			build(c, childPrefix+connector, childPrefix+extend)
		}
	}
	build(s, "", "")
	width := 0
	for _, r := range rows {
		if n := len([]rune(r.prefix + r.name)); n > width {
			width = n
		}
	}
	var b strings.Builder
	for _, r := range rows {
		label := r.prefix + r.name
		pad := width - len([]rune(label))
		fmt.Fprintf(&b, "%s%s  %10s", label, strings.Repeat(" ", pad), formatDuration(r.span.Duration()))
		for _, a := range r.span.Attrs() {
			fmt.Fprintf(&b, "  %s=%v", a.Key, a.Value)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// formatDuration rounds a duration to a readable precision.
func formatDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(time.Microsecond).String()
	default:
		return d.Round(time.Nanosecond).String()
	}
}

// WellFormed checks the structural invariants of a finished span tree:
// every span has ended, durations are non-negative, and every child
// interval nests within its parent's. It returns nil when the tree is
// well-formed; tests use it as the property under concurrent span creation.
func (s *Span) WellFormed() error {
	var errs []string
	s.Walk(func(sp *Span, _ int) {
		end := sp.EndTime()
		if end.IsZero() {
			errs = append(errs, fmt.Sprintf("span %q not ended", sp.Name()))
			return
		}
		if end.Before(sp.Start()) {
			errs = append(errs, fmt.Sprintf("span %q has negative duration", sp.Name()))
		}
		for _, c := range sp.Children() {
			cend := c.EndTime()
			if c.Start().Before(sp.Start()) {
				errs = append(errs, fmt.Sprintf("child %q starts before parent %q", c.Name(), sp.Name()))
			}
			if !cend.IsZero() && cend.After(end) {
				errs = append(errs, fmt.Sprintf("child %q ends after parent %q", c.Name(), sp.Name()))
			}
		}
	})
	if len(errs) == 0 {
		return nil
	}
	sort.Strings(errs)
	return fmt.Errorf("span tree malformed: %s", strings.Join(errs, "; "))
}
