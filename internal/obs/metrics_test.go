package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("test_total", "A test counter.", "kind")
	c.With("a").Inc()
	c.With("a").Add(2)
	c.With("b").Inc()
	if got := c.With("a").Value(); got != 3 {
		t.Errorf("counter a = %d, want 3", got)
	}
	g := r.NewGauge("test_gauge", "A test gauge.")
	g.With().Set(5)
	g.With().Dec()
	if got := g.With().Value(); got != 4 {
		t.Errorf("gauge = %d, want 4", got)
	}
}

func TestReRegisterReturnsSameFamily(t *testing.T) {
	r := NewRegistry()
	a := r.NewCounter("dup_total", "First.", "l")
	b := r.NewCounter("dup_total", "First.", "l")
	a.With("x").Inc()
	b.With("x").Inc()
	if got := a.With("x").Value(); got != 2 {
		t.Errorf("shared counter = %d, want 2", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("test_seconds", "A test histogram.", []float64{1, 5, 10})
	for _, v := range []float64{0.5, 1, 3, 7, 100} {
		h.With().Observe(v)
	}
	exp := r.Expose()
	for _, want := range []string{
		`test_seconds_bucket{le="1"} 2`,  // 0.5 and 1 (le is inclusive)
		`test_seconds_bucket{le="5"} 3`,  // + 3
		`test_seconds_bucket{le="10"} 4`, // + 7
		`test_seconds_bucket{le="+Inf"} 5`,
		`test_seconds_sum 111.5`,
		`test_seconds_count 5`,
	} {
		if !strings.Contains(exp, want) {
			t.Errorf("exposition missing %q:\n%s", want, exp)
		}
	}
}

func TestExpositionFormat(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("fmt_total", "Counts things.", "method", "status")
	c.With("GET", "200").Add(7)
	exp := r.Expose()
	for _, want := range []string{
		"# HELP fmt_total Counts things.\n",
		"# TYPE fmt_total counter\n",
		`fmt_total{method="GET",status="200"} 7` + "\n",
	} {
		if !strings.Contains(exp, want) {
			t.Errorf("exposition missing %q:\n%s", want, exp)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("esc_total", "Escapes.", "path")
	c.With(`a"b\c` + "\n").Inc()
	exp := r.Expose()
	if !strings.Contains(exp, `esc_total{path="a\"b\\c\n"} 1`) {
		t.Errorf("label not escaped:\n%s", exp)
	}
}

func TestEmptyFamiliesOmitted(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("unused_total", "Never incremented.")
	if exp := r.Expose(); strings.Contains(exp, "unused_total") {
		t.Errorf("family with no children exposed:\n%s", exp)
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("handler_total", "Via handler.").With().Inc()
	ts := httptest.NewServer(r.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	if !strings.Contains(string(body), "handler_total 1") {
		t.Errorf("body = %s", body)
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("snap_total", "Snap.", "k").With("v").Add(3)
	h := r.NewHistogram("snap_seconds", "Snap histogram.", []float64{1})
	h.With().Observe(0.5)
	snap := r.Snapshot()
	if got := snap["snap_total"].(map[string]any)["v"]; got != uint64(3) {
		t.Errorf("snapshot counter = %v", got)
	}
	hs := snap["snap_seconds"].(map[string]any)["_"].(map[string]any)
	if hs["count"] != uint64(1) || hs["sum"] != 0.5 {
		t.Errorf("snapshot histogram = %v", hs)
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("conc_total", "Concurrency.", "worker")
	h := r.NewHistogram("conc_seconds", "Concurrency.", ExpBuckets(1, 2, 8), "worker")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			label := string(rune('a' + w%4))
			for i := 0; i < 1000; i++ {
				c.With(label).Inc()
				h.With(label).Observe(float64(i % 50))
				if i%100 == 0 {
					_ = r.Expose()
				}
			}
		}(w)
	}
	wg.Wait()
	var total uint64
	for _, l := range []string{"a", "b", "c", "d"} {
		total += c.With(l).Value()
	}
	if total != 8000 {
		t.Errorf("total = %d, want 8000", total)
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 4, 4)
	want := []float64{1, 4, 16, 64}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
}
