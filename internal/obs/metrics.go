// Package obs is the observability substrate of the upsim system: a
// concurrency-safe metrics registry with Prometheus text-format exposition,
// a lightweight hierarchical span tracer for the Step 5–8 pipeline, and a
// swappable structured logger (log/slog).
//
// Everything is stdlib-only by design — the package exists so that the hot
// paths (path discovery, UPSIM generation, the HTTP API) can report what
// they do without pulling a client library into a dependency-free
// reproduction. Metric families are registered once, at package init of the
// instrumented package, against the Default registry:
//
//	var enumerations = obs.NewCounter("upsim_pathdisc_enumerations_total",
//	        "Path enumerations started.", "algorithm")
//	enumerations.With("recursive-dfs").Inc()
//
// and exposed by mounting obs.Handler() (see internal/server, GET /metrics).
package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// metricKind discriminates the exposition TYPE line.
type metricKind string

const (
	kindCounter   metricKind = "counter"
	kindGauge     metricKind = "gauge"
	kindHistogram metricKind = "histogram"
)

// Registry holds metric families and renders them in the Prometheus text
// exposition format (version 0.0.4). All methods are safe for concurrent
// use.
type Registry struct {
	mu       sync.Mutex
	families []*family // registration order, which exposition follows
	byName   map[string]*family
}

// family is one named metric with a fixed label schema and one child per
// distinct label-value combination.
type family struct {
	name    string
	help    string
	kind    metricKind
	labels  []string
	buckets []float64 // histogram upper bounds, strictly increasing

	mu       sync.Mutex
	order    []string // child keys in creation order
	children map[string]any
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}}
}

// defaultRegistry backs the package-level constructors and Handler.
var defaultRegistry = NewRegistry()

// DefaultRegistry returns the process-wide registry that the package-level
// constructors register into.
func DefaultRegistry() *Registry { return defaultRegistry }

func (r *Registry) register(name, help string, kind metricKind, buckets []float64, labels []string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.kind != kind || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different schema", name))
		}
		return f
	}
	f := &family{
		name:     name,
		help:     help,
		kind:     kind,
		labels:   append([]string(nil), labels...),
		buckets:  append([]float64(nil), buckets...),
		children: map[string]any{},
	}
	r.families = append(r.families, f)
	r.byName[name] = f
	return f
}

// child returns (creating on demand) the metric instance for one
// label-value combination.
func (f *family) child(values []string, make func() any) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	c := make()
	f.children[key] = c
	f.order = append(f.order, key)
	return c
}

// --- Counter ---

// Counter is a monotonically increasing integer metric.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// CounterVec is a counter family partitioned by label values.
type CounterVec struct{ f *family }

// With returns the counter for the given label values (one per declared
// label, in declaration order).
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.child(values, func() any { return &Counter{} }).(*Counter)
}

// NewCounter registers a counter family in the given registry.
func (r *Registry) NewCounter(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.register(name, help, kindCounter, nil, labels)}
}

// NewCounter registers a counter family in the Default registry.
func NewCounter(name, help string, labels ...string) *CounterVec {
	return defaultRegistry.NewCounter(name, help, labels...)
}

// --- Gauge ---

// Gauge is an integer metric that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Add adds n (which may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// GaugeVec is a gauge family partitioned by label values.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.child(values, func() any { return &Gauge{} }).(*Gauge)
}

// NewGauge registers a gauge family in the given registry.
func (r *Registry) NewGauge(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.register(name, help, kindGauge, nil, labels)}
}

// NewGauge registers a gauge family in the Default registry.
func NewGauge(name, help string, labels ...string) *GaugeVec {
	return defaultRegistry.NewGauge(name, help, labels...)
}

// --- Histogram ---

// Histogram accumulates observations into fixed buckets. Buckets are upper
// bounds; an implicit +Inf bucket catches everything above the last bound.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []uint64 // len(bounds)+1, last is +Inf
	count  uint64
	sum    float64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	h.count++
	h.sum += v
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// snapshot returns cumulative bucket counts, total count and sum.
func (h *Histogram) snapshot() ([]uint64, uint64, float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	cum := make([]uint64, len(h.counts))
	var run uint64
	for i, c := range h.counts {
		run += c
		cum[i] = run
	}
	return cum, h.count, h.sum
}

// HistogramVec is a histogram family partitioned by label values.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.child(values, func() any {
		return &Histogram{
			bounds: v.f.buckets,
			counts: make([]uint64, len(v.f.buckets)+1),
		}
	}).(*Histogram)
}

// NewHistogram registers a histogram family with the given bucket upper
// bounds (must be strictly increasing) in the given registry.
func (r *Registry) NewHistogram(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if len(buckets) == 0 {
		panic(fmt.Sprintf("obs: histogram %q needs at least one bucket", name))
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram %q buckets not strictly increasing", name))
		}
	}
	return &HistogramVec{f: r.register(name, help, kindHistogram, buckets, labels)}
}

// NewHistogram registers a histogram family in the Default registry.
func NewHistogram(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return defaultRegistry.NewHistogram(name, help, buckets, labels...)
}

// LatencyBuckets are the default buckets for request latencies in seconds.
var LatencyBuckets = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// ExpBuckets returns n buckets starting at start, each factor times the
// previous — the right shape for the factorially growing search-effort
// counters of path discovery.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets wants start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// --- Exposition ---

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// labelString renders {k="v",...} for the family's schema and one child
// key; extra appends additional pairs (used for histogram "le").
func (f *family) labelString(key string, extra ...string) string {
	var parts []string
	if len(f.labels) > 0 {
		values := strings.Split(key, "\x00")
		for i, l := range f.labels {
			parts = append(parts, l+`="`+escapeLabel(values[i])+`"`)
		}
	}
	for i := 0; i+1 < len(extra); i += 2 {
		parts = append(parts, extra[i]+`="`+escapeLabel(extra[i+1])+`"`)
	}
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// formatFloat renders a sample value without exponent noise.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ExposeTo renders the registry in the Prometheus text exposition format.
func (r *Registry) ExposeTo(w io.Writer) {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	for _, f := range fams {
		f.mu.Lock()
		keys := append([]string(nil), f.order...)
		children := make(map[string]any, len(keys))
		for _, k := range keys {
			children[k] = f.children[k]
		}
		f.mu.Unlock()
		if len(keys) == 0 {
			continue
		}
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind)
		for _, k := range keys {
			switch c := children[k].(type) {
			case *Counter:
				fmt.Fprintf(w, "%s%s %d\n", f.name, f.labelString(k), c.Value())
			case *Gauge:
				fmt.Fprintf(w, "%s%s %d\n", f.name, f.labelString(k), c.Value())
			case *Histogram:
				cum, count, sum := c.snapshot()
				for i, bound := range f.buckets {
					fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
						f.labelString(k, "le", formatFloat(bound)), cum[i])
				}
				fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, f.labelString(k, "le", "+Inf"), cum[len(cum)-1])
				fmt.Fprintf(w, "%s_sum%s %s\n", f.name, f.labelString(k), formatFloat(sum))
				fmt.Fprintf(w, "%s_count%s %d\n", f.name, f.labelString(k), count)
			}
		}
	}
}

// Expose returns the full exposition document.
func (r *Registry) Expose() string {
	var b strings.Builder
	r.ExposeTo(&b)
	return b.String()
}

// Handler serves the registry in the text exposition format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write([]byte(r.Expose()))
	})
}

// Handler serves the Default registry (mount as GET /metrics).
func Handler() http.Handler { return defaultRegistry.Handler() }

// Snapshot returns every metric's current value as a JSON-friendly tree
// keyed by family name, for expvar-style debugging endpoints. Histograms
// report count and sum.
func (r *Registry) Snapshot() map[string]any {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	out := make(map[string]any, len(fams))
	for _, f := range fams {
		f.mu.Lock()
		vals := make(map[string]any, len(f.order))
		for _, k := range f.order {
			label := strings.Join(strings.Split(k, "\x00"), ",")
			if label == "" {
				label = "_"
			}
			switch c := f.children[k].(type) {
			case *Counter:
				vals[label] = c.Value()
			case *Gauge:
				vals[label] = c.Value()
			case *Histogram:
				_, count, sum := c.snapshot()
				vals[label] = map[string]any{"count": count, "sum": sum}
			}
		}
		f.mu.Unlock()
		if len(vals) > 0 {
			out[f.name] = vals
		}
	}
	return out
}
