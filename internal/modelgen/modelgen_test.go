package modelgen

import (
	"strings"
	"testing"

	"upsim/internal/core"
	"upsim/internal/depend"
	"upsim/internal/mapping"
	"upsim/internal/pathdisc"
	"upsim/internal/service"
	"upsim/internal/topology"
)

func TestBuildFromCampus(t *testing.T) {
	g, err := topology.Campus(topology.CampusParams{
		EdgeSwitches: 2, ClientsPerEdge: 2, ServersPerSwitch: 1, RedundantCore: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Build("campus", g, Params{
		Classes: map[string]ClassParams{
			"Client": {MTBF: 3000, MTTR: 24},
			"Server": {MTBF: 60000, MTTR: 0.1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("generated model invalid: %v", err)
	}
	d, ok := m.Diagram("infrastructure")
	if !ok {
		t.Fatal("diagram missing")
	}
	if d.NumInstances() != g.NumNodes() || d.NumLinks() != g.NumEdges() {
		t.Errorf("diagram = %d/%d, graph = %d/%d",
			d.NumInstances(), d.NumLinks(), g.NumNodes(), g.NumEdges())
	}
	// Parameterised classes apply; defaults fill the rest.
	client := m.MustClass("Client")
	if v, _ := client.Property("MTBF"); v.AsReal() != 3000 {
		t.Errorf("Client MTBF = %v", v)
	}
	core1 := m.MustClass("Core")
	if v, _ := core1.Property("MTBF"); v.AsReal() != 100000 {
		t.Errorf("Core default MTBF = %v", v)
	}
	// The redundant core pair produced a dedicated parallel association.
	foundParallel := false
	for _, a := range m.Associations() {
		if strings.HasPrefix(a.Name(), "parallel-") {
			foundParallel = true
		}
	}
	if !foundParallel {
		t.Error("parallel core link association missing")
	}
	// Links carry connector and communication attributes.
	ls := d.Links()
	if v, ok := ls[0].Property("throughput"); !ok || v.AsReal() != 1000 {
		t.Errorf("link throughput = %v, %v", v, ok)
	}
}

func TestBuildDrivesFullPipeline(t *testing.T) {
	// The future-work scenario: a fat-tree "cloud" runs through Steps 1-8
	// and the Section VII analysis end to end.
	g, err := topology.FatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Build("cloud", g, Params{
		Classes: map[string]ClassParams{
			"Host": {MTBF: 20000, MTTR: 4},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := service.NewSequential(m, "vm-to-storage", "write", "ack")
	if err != nil {
		t.Fatal(err)
	}
	mp := mapping.New()
	if err := mp.Add(mapping.Pair{AtomicService: "write", Requester: "h0-0-0", Provider: "h3-1-1"}); err != nil {
		t.Fatal(err)
	}
	if err := mp.Add(mapping.Pair{AtomicService: "ack", Requester: "h3-1-1", Provider: "h0-0-0"}); err != nil {
		t.Fatal(err)
	}
	gen, err := core.NewGenerator(m, "infrastructure")
	if err != nil {
		t.Fatal(err)
	}
	// A hop budget of 6 restricts discovery to valley-free up-down routes
	// (host-edge-agg-core-agg-edge-host); unbounded enumeration would also
	// return the 1360 detour paths.
	res, err := gen.Generate(svc, mp, "cloud-upsim", core.Options{
		Paths: pathdisc.Options{MaxDepth: 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Fat-tree k=4, cross-pod: 2 aggregation choices × 2 cores = 4 up-down
	// paths per direction.
	if got, _ := res.PathsFor("write"); len(got) != 4 {
		t.Errorf("cross-pod up-down paths = %d, want 4", len(got))
	}
	if !res.Graph.Connected() {
		t.Error("cloud UPSIM disconnected")
	}
	rep, err := depend.Analyze(res, depend.ModelExact, 20000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Exact <= 0 || rep.Exact > 1 {
		t.Errorf("cloud availability = %v", rep.Exact)
	}
	// The exact engine handles the heavy core sharing: far below the naive
	// RBD which multiplies the shared hosts twice.
	if rep.Exact > rep.RBDApprox {
		t.Errorf("exact %v above RBD %v", rep.Exact, rep.RBDApprox)
	}
	tp, err := depend.Throughput(res)
	if err != nil {
		t.Fatal(err)
	}
	if tp.Service != 1000 {
		t.Errorf("cloud throughput = %v", tp.Service)
	}
}

func TestFatTreeScenarioK8SpansThreeWords(t *testing.T) {
	// The k=8 scatter scenario exists so benchmarks exercise kernel bitset
	// arenas beyond the ≤2-word hand-made corpora; pin that property here.
	sc, err := FatTreeScenario(8)
	if err != nil {
		t.Fatal(err)
	}
	act, ok := sc.Model.Activity(sc.Service)
	if !ok {
		t.Fatalf("scenario activity %q missing", sc.Service)
	}
	svc, err := service.FromActivity(act)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := core.NewGenerator(sc.Model, sc.Diagram)
	if err != nil {
		t.Fatal(err)
	}
	res, err := gen.Generate(svc, sc.Mapping, "scatter-upsim", core.Options{Paths: sc.Paths})
	if err != nil {
		t.Fatal(err)
	}
	// Cross-pod up-down routes in a k-ary fat-tree: (k/2)² per pair.
	if got, _ := res.PathsFor("write-pod1"); len(got) != 16 {
		t.Errorf("cross-pod up-down paths = %d, want 16", len(got))
	}
	_, cs, _, err := depend.FromResult(res, depend.ModelExact)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Words() < 3 {
		t.Errorf("compiled kernel spans %d words over %d components, want >= 3 words",
			cs.Words(), cs.NumComponents())
	}
}

func TestBuildErrors(t *testing.T) {
	g, _ := topology.Chain(3)
	if _, err := Build("", g, Params{}); err == nil {
		t.Error("empty name should fail")
	}
	if _, err := Build("x", nil, Params{}); err == nil {
		t.Error("nil graph should fail")
	}
	if _, err := Build("ok", g, Params{}); err != nil {
		t.Errorf("chain build failed: %v", err)
	}
}
