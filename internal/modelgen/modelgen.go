// Package modelgen synthesises complete UML infrastructure models from
// topology graphs: one class per node kind with the availability profile
// applied, one stereotyped association per connectable class pair, and the
// deployed object diagram. It is the bridge between the synthetic topology
// generators (trees, campus networks, fat-trees) and the full Step 1–8
// pipeline, and implements the paper's future-work direction: "More research
// is needed to demonstrate the applicability of the methodology to complex
// infrastructures such as cloud computing" — a generated fat-tree model runs
// through generation and analysis exactly like the hand-modelled USI campus.
package modelgen

import (
	"fmt"

	"upsim/internal/topology"
	"upsim/internal/uml"
)

// ClassParams carries the availability attributes of one node class.
type ClassParams struct {
	MTBF float64
	MTTR float64
}

// Params parameterises Build.
type Params struct {
	// Classes maps node-class labels (topology.Node.Class) to their
	// availability attributes. Labels absent from the map use Default.
	Classes map[string]ClassParams
	// Default applies to unmapped classes; zero value means MTBF 100000 h,
	// MTTR 1 h.
	Default ClassParams
	// Link carries the connector attributes; zero value means MTBF 1e6 h,
	// MTTR 0.1 h.
	Link ClassParams
	// LinkThroughput is the Communication.throughput value (default 1000).
	LinkThroughput float64
	// DiagramName names the object diagram (default "infrastructure").
	DiagramName string
}

func (p *Params) normalise() {
	if p.Default.MTBF == 0 {
		p.Default.MTBF = 100000
	}
	if p.Default.MTTR == 0 {
		p.Default.MTTR = 1
	}
	if p.Link.MTBF == 0 {
		p.Link.MTBF = 1e6
	}
	if p.Link.MTTR == 0 {
		p.Link.MTTR = 0.1
	}
	if p.LinkThroughput == 0 {
		p.LinkThroughput = 1000
	}
	if p.DiagramName == "" {
		p.DiagramName = "infrastructure"
	}
}

// Build converts the graph into a validated UML model carrying the
// availability profile (Figure 6) and a minimal network profile
// (Communication with throughput). Parallel edges between the same node
// pair receive dedicated associations so the object diagram keeps them
// distinguishable.
func Build(name string, g *topology.Graph, params Params) (*uml.Model, error) {
	if g == nil {
		return nil, fmt.Errorf("modelgen: nil graph")
	}
	if name == "" {
		return nil, fmt.Errorf("modelgen: empty model name")
	}
	params.normalise()

	m := uml.NewModel(name)
	avail := uml.NewProfile("availability")
	comp, err := avail.DefineAbstractStereotype("Component", uml.MetaclassNone)
	if err != nil {
		return nil, err
	}
	for _, a := range []struct {
		name string
		kind uml.ValueKind
	}{{"MTBF", uml.KindReal}, {"MTTR", uml.KindReal}} {
		if err := comp.AddAttribute(a.name, a.kind); err != nil {
			return nil, err
		}
	}
	device, err := avail.DefineSubStereotype("Device", uml.MetaclassClass, comp)
	if err != nil {
		return nil, err
	}
	connector, err := avail.DefineSubStereotype("Connector", uml.MetaclassAssociation, comp)
	if err != nil {
		return nil, err
	}
	net := uml.NewProfile("network")
	communication, err := net.DefineStereotype("Communication", uml.MetaclassAssociation)
	if err != nil {
		return nil, err
	}
	if err := communication.AddAttribute("throughput", uml.KindReal); err != nil {
		return nil, err
	}
	if err := m.AddProfile(avail); err != nil {
		return nil, err
	}
	if err := m.AddProfile(net); err != nil {
		return nil, err
	}

	classes := make(map[string]*uml.Class)
	classFor := func(label string) (*uml.Class, error) {
		if label == "" {
			label = "Node"
		}
		if c, ok := classes[label]; ok {
			return c, nil
		}
		c, err := m.AddClass(label)
		if err != nil {
			return nil, err
		}
		app, err := c.Apply(device)
		if err != nil {
			return nil, err
		}
		cp, ok := params.Classes[label]
		if !ok {
			cp = params.Default
		}
		if err := app.Set("MTBF", uml.RealValue(cp.MTBF)); err != nil {
			return nil, err
		}
		if err := app.Set("MTTR", uml.RealValue(cp.MTTR)); err != nil {
			return nil, err
		}
		classes[label] = c
		return c, nil
	}

	newAssoc := func(assocName string, a, b *uml.Class) (*uml.Association, error) {
		as, err := m.AddAssociation(assocName, a, b)
		if err != nil {
			return nil, err
		}
		capp, err := as.Apply(connector)
		if err != nil {
			return nil, err
		}
		if err := capp.Set("MTBF", uml.RealValue(params.Link.MTBF)); err != nil {
			return nil, err
		}
		if err := capp.Set("MTTR", uml.RealValue(params.Link.MTTR)); err != nil {
			return nil, err
		}
		mapp, err := as.Apply(communication)
		if err != nil {
			return nil, err
		}
		if err := mapp.Set("throughput", uml.RealValue(params.LinkThroughput)); err != nil {
			return nil, err
		}
		return as, nil
	}

	assocs := make(map[string]*uml.Association)
	assocFor := func(a, b *uml.Class) (*uml.Association, error) {
		x, y := a.Name(), b.Name()
		if y < x {
			x, y = y, x
		}
		key := x + "--" + y
		if as, ok := assocs[key]; ok {
			return as, nil
		}
		as, err := newAssoc(key, a, b)
		if err != nil {
			return nil, err
		}
		assocs[key] = as
		return as, nil
	}

	d := m.NewObjectDiagram(params.DiagramName)
	for _, n := range g.Nodes() {
		cls, err := classFor(n.Class)
		if err != nil {
			return nil, err
		}
		if _, err := d.AddInstance(n.Name, cls); err != nil {
			return nil, err
		}
	}
	for _, e := range g.Edges() {
		na, _ := g.Node(e.A)
		nb, _ := g.Node(e.B)
		ca, err := classFor(na.Class)
		if err != nil {
			return nil, err
		}
		cb, err := classFor(nb.Class)
		if err != nil {
			return nil, err
		}
		as, err := assocFor(ca, cb)
		if err != nil {
			return nil, err
		}
		if _, err := d.ConnectByName(e.A, e.B, as); err != nil {
			// A parallel edge over an already-used association: give it a
			// dedicated association so the redundant physical link stays a
			// distinct model element.
			extra, aerr := newAssoc(fmt.Sprintf("parallel-%d", e.ID), ca, cb)
			if aerr != nil {
				return nil, aerr
			}
			if _, err := d.ConnectByName(e.A, e.B, extra); err != nil {
				return nil, err
			}
		}
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}
