package modelgen

import (
	"fmt"

	"upsim/internal/mapping"
	"upsim/internal/pathdisc"
	"upsim/internal/service"
	"upsim/internal/topology"
	"upsim/internal/uml"
)

// CloudScenario bundles a generated infrastructure model with a ready-made
// service, mapping and discovery options, so benchmarks and tests can run the
// full Step 1–8 pipeline on a synthetic topology without re-deriving the
// workload each time.
type CloudScenario struct {
	Model   *uml.Model
	Diagram string
	// Service is the name of the composite-service activity added to Model.
	Service string
	Mapping *mapping.Mapping
	// Paths bounds discovery to valley-free up–down routes; unbounded
	// enumeration on a fat-tree would also return the detour paths.
	Paths pathdisc.Options
}

// FatTreeScenarioService is the composite service FatTreeScenario installs.
const FatTreeScenarioService = "scatter"

// FatTreeScenario builds a k-ary fat-tree cloud model carrying a cross-pod
// scatter workload: the first host of pod 0 performs one atomic write to the
// first host of every other pod, sequentially. The union of up–down routes
// then spans every pod's aggregation layer and the whole core, so the
// compiled dependency kernel grows with k³: for k = 8 it exceeds 128 distinct
// components (more than two 64-bit bitset words), which is what the warm/cold
// benchmarks use to exercise kernel arena growth beyond the small hand-made
// corpora.
func FatTreeScenario(k int) (*CloudScenario, error) {
	g, err := topology.FatTree(k)
	if err != nil {
		return nil, err
	}
	m, err := Build(fmt.Sprintf("fat-tree-k%d", k), g, Params{
		Classes: map[string]ClassParams{
			"Host": {MTBF: 20000, MTTR: 4},
		},
	})
	if err != nil {
		return nil, err
	}
	mp := mapping.New()
	atomics := make([]string, 0, k-1)
	for p := 1; p < k; p++ {
		name := fmt.Sprintf("write-pod%d", p)
		atomics = append(atomics, name)
		if err := mp.Add(mapping.Pair{
			AtomicService: name,
			Requester:     "h0-0-0",
			Provider:      fmt.Sprintf("h%d-0-0", p),
		}); err != nil {
			return nil, err
		}
	}
	if _, err := service.NewSequential(m, FatTreeScenarioService, atomics...); err != nil {
		return nil, err
	}
	return &CloudScenario{
		Model:   m,
		Diagram: "infrastructure",
		Service: FatTreeScenarioService,
		Mapping: mp,
		// host-edge-agg-core-agg-edge-host is 6 hops.
		Paths: pathdisc.Options{MaxDepth: 6},
	}, nil
}
