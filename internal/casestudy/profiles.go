// Package casestudy reproduces Section VI of the paper: the service network
// of University of Lugano (USI) with its availability and network profiles
// (Figures 6–7), component classes (Figure 8), infrastructure object diagram
// (Figures 5/9), printing service (Figure 10) and the Table I service
// mapping, plus the expected UPSIM node sets of Figures 11 and 12.
//
// Reconstruction notes. The figures in our source text are partially
// illegible; the topology built here is pinned by every legible constraint:
//
//   - the node inventory of Figure 9 (clients t1–t3, t6–t8, t10–t15, edge
//     switches e1–e4:HP2650, distribution d1/d2:C3750, server switches
//     d3/d4:C2960, cores c1/c2:C6500, printers p1–p3, servers db, backup,
//     email, file1, file2, printS),
//   - the example paths of Section VI-G ("t1—e1—d1—c1—d4—printS,
//     t1—e1—d1—c1—c2—d4—printS"), which fix t1→e1→d1, d1→c1, c1→c2, c1→d4,
//     c2→d4 and d4→printS — and, read as the exhaustive enumeration for
//     that pair, exclude any second distribution uplink (no transit routes
//     through d2/d3 appear),
//   - the UPSIM memberships visible in Figures 11 and 12,
//   - "the network core, consisting of the central switches with redundant
//     connections": the redundancy sits in the dual-homed print-server
//     switch d4 (both published paths reach printS over d4, once per core).
//
// Where Figure 8 is ambiguous about which switch class carries which MTBF,
// values are assigned by hardware complexity (chassis core switches fail
// more often than fixed-configuration access switches): C6500 61320h,
// C2960 183498h, C3750 188575h, HP2650 199000h. Connector attributes are
// illegible in the source and set to MTBF 1e6 h / MTTR 0.1 h (documented in
// EXPERIMENTS.md).
package casestudy

import (
	"fmt"

	"upsim/internal/uml"
)

// Profile and diagram names used throughout the case study.
const (
	AvailabilityProfileName = "availability"
	NetworkProfileName      = "network"
	ModelName               = "usi"
	DiagramName             = "infrastructure"
	PrintingServiceName     = "printing"
	BackupServiceName       = "backup"
)

// AvailabilityProfile builds the paper's Figure 6: an abstract Component
// stereotype carrying MTBF, MTTR and redundantComponents, specialised by
// Device (extending Class) and Connector (extending Association).
func AvailabilityProfile() (*uml.Profile, error) {
	p := uml.NewProfile(AvailabilityProfileName)
	comp, err := p.DefineAbstractStereotype("Component", uml.MetaclassNone)
	if err != nil {
		return nil, err
	}
	if err := comp.AddAttribute("MTBF", uml.KindReal); err != nil {
		return nil, err
	}
	if err := comp.AddAttribute("MTTR", uml.KindReal); err != nil {
		return nil, err
	}
	if err := comp.AddAttributeDefault("redundantComponents", uml.KindInteger, uml.IntegerValue(0)); err != nil {
		return nil, err
	}
	if _, err := p.DefineSubStereotype("Device", uml.MetaclassClass, comp); err != nil {
		return nil, err
	}
	if _, err := p.DefineSubStereotype("Connector", uml.MetaclassAssociation, comp); err != nil {
		return nil, err
	}
	return p, nil
}

// NetworkProfile builds the paper's Figure 7: the abstract NetworkDevice
// stereotype (manufacturer, model) extending Class, specialised by Router,
// Switch, Printer and the abstract Computer (processor), which in turn
// specialises into Client and Server; plus the Communication stereotype
// (channel, throughput) extending Association.
func NetworkProfile() (*uml.Profile, error) {
	p := uml.NewProfile(NetworkProfileName)
	nd, err := p.DefineAbstractStereotype("NetworkDevice", uml.MetaclassClass)
	if err != nil {
		return nil, err
	}
	if err := nd.AddAttribute("manufacturer", uml.KindString); err != nil {
		return nil, err
	}
	if err := nd.AddAttribute("model", uml.KindString); err != nil {
		return nil, err
	}
	for _, name := range []string{"Router", "Switch", "Printer"} {
		if _, err := p.DefineSubStereotype(name, uml.MetaclassNone, nd); err != nil {
			return nil, err
		}
	}
	computer, err := p.DefineAbstractSubStereotype("Computer", uml.MetaclassNone, nd)
	if err != nil {
		return nil, err
	}
	if err := computer.AddAttribute("processor", uml.KindString); err != nil {
		return nil, err
	}
	for _, name := range []string{"Client", "Server"} {
		if _, err := p.DefineSubStereotype(name, uml.MetaclassNone, computer); err != nil {
			return nil, err
		}
	}
	comm, err := p.DefineStereotype("Communication", uml.MetaclassAssociation)
	if err != nil {
		return nil, err
	}
	if err := comm.AddAttribute("channel", uml.KindString); err != nil {
		return nil, err
	}
	if err := comm.AddAttribute("throughput", uml.KindReal); err != nil {
		return nil, err
	}
	return p, nil
}

// mustStereotype resolves a stereotype that the profile construction above
// is known to define.
func mustStereotype(m *uml.Model, name string) (*uml.Stereotype, error) {
	st, ok := m.FindStereotype(name)
	if !ok {
		return nil, fmt.Errorf("casestudy: stereotype %q missing", name)
	}
	return st, nil
}
