package casestudy

import (
	"upsim/internal/mapping"
	"upsim/internal/service"
	"upsim/internal/uml"
)

// The five atomic services of the printing service, in the sequential order
// of Figure 10.
var PrintingAtomicServices = []string{
	"Request printing",
	"Login to printer",
	"Send document list",
	"Select documents",
	"Send documents",
}

// PrintingService models Figure 10: the printing composite service as a
// strictly sequential activity over the five atomic services.
func PrintingService(m *uml.Model) (*service.Composite, error) {
	return service.NewSequential(m, PrintingServiceName, PrintingAtomicServices...)
}

// BackupService is a second composite service of the kind the case study
// mentions ("Atomic services can compose composite services (e.g. printing,
// backup)"): a client requests a backup, the backup server fetches the data
// from the file servers in parallel, then confirms.
func BackupService(m *uml.Model) (*service.Composite, error) {
	return service.NewStaged(m, BackupServiceName, [][]string{
		{"Request backup"},
		{"Fetch volume A", "Fetch volume B"},
		{"Confirm backup"},
	})
}

// TableIMapping reproduces Table I: the printing service requested from
// client t1, printed on printer p2, through print server printS.
func TableIMapping() *mapping.Mapping {
	m := mapping.New()
	for _, p := range []mapping.Pair{
		{AtomicService: "Request printing", Requester: "t1", Provider: "printS"},
		{AtomicService: "Login to printer", Requester: "p2", Provider: "printS"},
		{AtomicService: "Send document list", Requester: "printS", Provider: "p2"},
		{AtomicService: "Select documents", Requester: "p2", Provider: "printS"},
		{AtomicService: "Send documents", Requester: "printS", Provider: "p2"},
	} {
		// The pairs are statically valid; Add cannot fail here.
		if err := m.Add(p); err != nil {
			panic(err)
		}
	}
	return m
}

// T15P3Mapping is the second perspective of Section VI-H: the printing
// service requested from client t15, printed on printer p3, through the same
// print server. Only the mapping changes; service description and network
// model stay untouched.
func T15P3Mapping() *mapping.Mapping {
	m := TableIMapping()
	if _, err := m.RemapComponent("t1", "t15"); err != nil {
		panic(err)
	}
	if _, err := m.RemapComponent("p2", "p3"); err != nil {
		panic(err)
	}
	return m
}

// BackupMapping maps the backup service for client t7: request to the
// backup server, which fetches from the two file servers and confirms back
// to the client.
func BackupMapping() *mapping.Mapping {
	m := mapping.New()
	for _, p := range []mapping.Pair{
		{AtomicService: "Request backup", Requester: "t7", Provider: "backup"},
		{AtomicService: "Fetch volume A", Requester: "backup", Provider: "file1"},
		{AtomicService: "Fetch volume B", Requester: "backup", Provider: "file2"},
		{AtomicService: "Confirm backup", Requester: "backup", Provider: "t7"},
	} {
		if err := m.Add(p); err != nil {
			panic(err)
		}
	}
	return m
}

// Figure11Nodes is the expected UPSIM node set for the printing service
// from t1 to p2 via printS (Figure 11), sorted.
var Figure11Nodes = []string{"c1", "c2", "d1", "d2", "d4", "e1", "e3", "p2", "printS", "t1"}

// Figure12Nodes is the expected UPSIM node set for the printing service
// from t15 to p3 via printS (Figure 12), sorted.
var Figure12Nodes = []string{"c1", "c2", "d2", "d4", "e4", "p3", "printS", "t15"}

// ExamplePathsT1PrintS are the two paths Section VI-G lists for the first
// Table I pair (requester t1, provider printS). Under the reconstructed
// topology this list is the exhaustive enumeration, which is the strongest
// reading of the paper consistent with Figures 11 and 12.
var ExamplePathsT1PrintS = []string{
	"t1—e1—d1—c1—d4—printS",
	"t1—e1—d1—c1—c2—d4—printS",
}
