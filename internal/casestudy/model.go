package casestudy

import (
	"fmt"

	"upsim/internal/uml"
)

// ClassSpec describes one component class of Figure 8.
type ClassSpec struct {
	Name         string
	Network      string // network-profile stereotype: Switch, Client, Server, Printer
	MTBF         float64
	MTTR         float64
	Redundant    int64
	Manufacturer string
	Model        string
	Processor    string // only for Computer specialisations
}

// Classes returns the component classes of Figure 8 with their availability
// attributes (hours). See the package comment for the MTBF assignment
// rationale where the figure is ambiguous.
func Classes() []ClassSpec {
	return []ClassSpec{
		{Name: "Server", Network: "Server", MTBF: 60000, MTTR: 0.1,
			Manufacturer: "Dell", Model: "PowerEdge", Processor: "Xeon"},
		{Name: "C6500", Network: "Switch", MTBF: 61320, MTTR: 0.5,
			Manufacturer: "Cisco", Model: "Catalyst 6500"},
		{Name: "C3750", Network: "Switch", MTBF: 188575, MTTR: 0.5,
			Manufacturer: "Cisco", Model: "Catalyst 3750"},
		{Name: "C2960", Network: "Switch", MTBF: 183498, MTTR: 0.5,
			Manufacturer: "Cisco", Model: "Catalyst 2960"},
		{Name: "HP2650", Network: "Switch", MTBF: 199000, MTTR: 0.5,
			Manufacturer: "HP", Model: "ProCurve 2650"},
		{Name: "Comp", Network: "Client", MTBF: 3000, MTTR: 24.0,
			Manufacturer: "Dell", Model: "OptiPlex", Processor: "Core 2 Duo"},
		{Name: "Printer", Network: "Printer", MTBF: 2880, MTTR: 1.0,
			Manufacturer: "HP", Model: "LaserJet"},
	}
}

// Connector attribute values (illegible in the source figure; documented
// reconstruction).
const (
	LinkMTBF    = 1e6
	LinkMTTR    = 0.1
	LinkChannel = "ethernet"
	// LinkThroughput is the default access-layer throughput in Mbit/s; see
	// linkThroughput for the per-tier values.
	LinkThroughput = 100
)

// linkThroughput assigns the Communication.throughput attribute per
// association, following the era's hardware tiers: 10/100 access ports on
// the HP ProCurve 2650 (clients, printers), gigabit uplinks and server
// ports, 10G between the Catalyst 6500 cores.
func linkThroughput(assocName string) float64 {
	switch assocName {
	case "C6500-C6500":
		return 10000
	case "C3750-C6500", "C2960-C6500", "HP2650-C3750", "Server-C2960":
		return 1000
	default: // client and printer access ports
		return LinkThroughput
	}
}

// linkSpec is one deployed link of the infrastructure (Figure 9).
type linkSpec struct{ a, b string }

// instanceSpec is one deployed node of the infrastructure.
type instanceSpec struct{ name, class string }

// instances returns the node inventory of Figures 5/9.
func instances() []instanceSpec {
	out := []instanceSpec{
		{"c1", "C6500"}, {"c2", "C6500"},
		{"d1", "C3750"}, {"d2", "C3750"},
		{"d3", "C2960"}, {"d4", "C2960"},
		{"e1", "HP2650"}, {"e2", "HP2650"}, {"e3", "HP2650"}, {"e4", "HP2650"},
		{"p1", "Printer"}, {"p2", "Printer"}, {"p3", "Printer"},
		{"db", "Server"}, {"backup", "Server"}, {"email", "Server"},
		{"file1", "Server"}, {"file2", "Server"}, {"printS", "Server"},
	}
	for _, t := range clientNames() {
		out = append(out, instanceSpec{t, "Comp"})
	}
	return out
}

// clientNames returns the client inventory; t4, t5 and t9 do not appear in
// the paper's figures and the numbering gap is preserved.
func clientNames() []string {
	return []string{"t1", "t2", "t3", "t6", "t7", "t8", "t10", "t11", "t12", "t13", "t14", "t15"}
}

// links returns the deployed links of Figure 9 under the reconstruction
// documented in the package comment. The core interconnect c1—c2 is doubled
// ("central switches with redundant connections").
func links() []linkSpec {
	out := []linkSpec{
		// Core interconnect.
		{"c1", "c2"},
		// Distribution switches, single-homed (the published path list for
		// t1→printS is exactly two paths, which excludes any transit route
		// through a second distribution uplink).
		{"d1", "c1"},
		{"d2", "c2"},
		{"d3", "c2"},
		// The print-server switch d4 is dual-homed — the core redundancy
		// the published paths exhibit (…—c1—d4—printS and …—c1—c2—d4—printS).
		{"d4", "c1"}, {"d4", "c2"},
		// Edge switches.
		{"e1", "d1"}, {"e2", "d1"},
		{"e3", "d2"}, {"e4", "d2"},
		// Clients.
		{"t1", "e1"}, {"t2", "e1"}, {"t3", "e1"},
		{"t6", "e2"}, {"t7", "e2"}, {"t8", "e2"},
		{"t10", "e3"}, {"t11", "e3"}, {"t12", "e3"},
		{"t13", "e4"}, {"t14", "e4"}, {"t15", "e4"},
		// Printers.
		{"p1", "e2"}, {"p2", "e3"}, {"p3", "e4"},
		// Servers.
		{"db", "d3"}, {"backup", "d3"}, {"email", "d3"},
		{"file1", "d4"}, {"file2", "d4"}, {"printS", "d4"},
	}
	return out
}

// BuildModel constructs the complete USI case-study model: both profiles,
// the Figure 8 classes, the associations between connectable device types
// and the infrastructure object diagram of Figure 9. The model validates
// cleanly (every stereotype attribute carries a value).
func BuildModel() (*uml.Model, error) {
	m := uml.NewModel(ModelName)
	ap, err := AvailabilityProfile()
	if err != nil {
		return nil, err
	}
	np, err := NetworkProfile()
	if err != nil {
		return nil, err
	}
	if err := m.AddProfile(ap); err != nil {
		return nil, err
	}
	if err := m.AddProfile(np); err != nil {
		return nil, err
	}

	device, err := mustStereotype(m, "Device")
	if err != nil {
		return nil, err
	}
	connector, err := mustStereotype(m, "Connector")
	if err != nil {
		return nil, err
	}
	communication, err := mustStereotype(m, "Communication")
	if err != nil {
		return nil, err
	}

	// Figure 8: classes with availability and network stereotypes applied.
	for _, spec := range Classes() {
		c, err := m.AddClass(spec.Name)
		if err != nil {
			return nil, err
		}
		app, err := c.Apply(device)
		if err != nil {
			return nil, err
		}
		if err := app.Set("MTBF", uml.RealValue(spec.MTBF)); err != nil {
			return nil, err
		}
		if err := app.Set("MTTR", uml.RealValue(spec.MTTR)); err != nil {
			return nil, err
		}
		if err := app.Set("redundantComponents", uml.IntegerValue(spec.Redundant)); err != nil {
			return nil, err
		}
		netSt, err := mustStereotype(m, spec.Network)
		if err != nil {
			return nil, err
		}
		napp, err := c.Apply(netSt)
		if err != nil {
			return nil, err
		}
		if err := napp.Set("manufacturer", uml.StringValue(spec.Manufacturer)); err != nil {
			return nil, err
		}
		if err := napp.Set("model", uml.StringValue(spec.Model)); err != nil {
			return nil, err
		}
		if netSt.IsKindOf("Computer") {
			if err := napp.Set("processor", uml.StringValue(spec.Processor)); err != nil {
				return nil, err
			}
		}
	}

	// Associations: one stereotyped association per connectable class pair
	// occurring in the topology.
	type assocSpec struct{ name, a, b string }
	assocs := []assocSpec{
		{"C6500-C6500", "C6500", "C6500"},
		{"C3750-C6500", "C3750", "C6500"},
		{"C2960-C6500", "C2960", "C6500"},
		{"HP2650-C3750", "HP2650", "C3750"},
		{"Comp-HP2650", "Comp", "HP2650"},
		{"Printer-HP2650", "Printer", "HP2650"},
		{"Server-C2960", "Server", "C2960"},
	}
	for _, as := range assocs {
		a, err := m.AddAssociation(as.name, m.MustClass(as.a), m.MustClass(as.b))
		if err != nil {
			return nil, err
		}
		capp, err := a.Apply(connector)
		if err != nil {
			return nil, err
		}
		if err := capp.Set("MTBF", uml.RealValue(LinkMTBF)); err != nil {
			return nil, err
		}
		if err := capp.Set("MTTR", uml.RealValue(LinkMTTR)); err != nil {
			return nil, err
		}
		if err := capp.Set("redundantComponents", uml.IntegerValue(0)); err != nil {
			return nil, err
		}
		mapp, err := a.Apply(communication)
		if err != nil {
			return nil, err
		}
		if err := mapp.Set("channel", uml.StringValue(LinkChannel)); err != nil {
			return nil, err
		}
		if err := mapp.Set("throughput", uml.RealValue(linkThroughput(as.name))); err != nil {
			return nil, err
		}
	}

	// Figure 9: the infrastructure object diagram.
	d := m.NewObjectDiagram(DiagramName)
	for _, spec := range instances() {
		if _, err := d.AddInstance(spec.name, m.MustClass(spec.class)); err != nil {
			return nil, err
		}
	}
	for _, l := range links() {
		ia, _ := d.Instance(l.a)
		ib, _ := d.Instance(l.b)
		assoc, ok := m.AssociationBetween(ia.Classifier(), ib.Classifier())
		if !ok {
			return nil, fmt.Errorf("casestudy: no association for link %s--%s (%s--%s)",
				l.a, l.b, ia.Classifier().Name(), ib.Classifier().Name())
		}
		if _, err := d.Connect(ia, ib, assoc); err != nil {
			return nil, err
		}
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}
