package casestudy

import (
	"math"
	"testing"

	"upsim/internal/core"
	"upsim/internal/depend"
	"upsim/internal/pathdisc"
	"upsim/internal/topology"
)

func TestBuildModel(t *testing.T) {
	m, err := BuildModel()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("model invalid: %v", err)
	}
	// Figure 8: seven component classes.
	if got := len(m.Classes()); got != 7 {
		t.Errorf("classes = %d, want 7", got)
	}
	// Figure 9 inventory: 31 instances (12 clients, 3 printers, 6 servers,
	// 10 switches), 35 links.
	d, ok := m.Diagram(DiagramName)
	if !ok {
		t.Fatal("infrastructure diagram missing")
	}
	if d.NumInstances() != 31 {
		t.Errorf("instances = %d, want 31", d.NumInstances())
	}
	if d.NumLinks() != 31 {
		t.Errorf("links = %d, want 31", d.NumLinks())
	}
	if got := len(d.LinksBetween("c1", "c2")); got != 1 {
		t.Errorf("core links = %d, want 1", got)
	}
	// The print-server switch is dual-homed — the redundancy the published
	// paths exhibit.
	if len(d.LinksBetween("d4", "c1")) != 1 || len(d.LinksBetween("d4", "c2")) != 1 {
		t.Error("d4 must be dual-homed to both cores")
	}
	// The topology is connected.
	g := topology.FromObjectDiagram(d)
	if !g.Connected() {
		t.Error("infrastructure must be connected")
	}
}

func TestFigure8Attributes(t *testing.T) {
	m, err := BuildModel()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][2]float64{
		"Server":  {60000, 0.1},
		"C6500":   {61320, 0.5},
		"C3750":   {188575, 0.5},
		"C2960":   {183498, 0.5},
		"HP2650":  {199000, 0.5},
		"Comp":    {3000, 24.0},
		"Printer": {2880, 1.0},
	}
	for name, vals := range want {
		c := m.MustClass(name)
		mtbf, ok := c.Property("MTBF")
		if !ok || mtbf.AsReal() != vals[0] {
			t.Errorf("%s MTBF = %v, want %v", name, mtbf, vals[0])
		}
		mttr, ok := c.Property("MTTR")
		if !ok || mttr.AsReal() != vals[1] {
			t.Errorf("%s MTTR = %v, want %v", name, mttr, vals[1])
		}
		if red, ok := c.Property("redundantComponents"); !ok || red.AsInteger() != 0 {
			t.Errorf("%s redundantComponents = %v", name, red)
		}
		if !c.HasStereotype("Component") || !c.HasStereotype("NetworkDevice") {
			t.Errorf("%s missing profile stereotypes", name)
		}
	}
	// Network profile attributes reachable through instances.
	d, _ := m.Diagram(DiagramName)
	c1, _ := d.Instance("c1")
	if v, ok := c1.Property("manufacturer"); !ok || v.AsString() != "Cisco" {
		t.Errorf("c1 manufacturer = %v, %v", v, ok)
	}
	t1, _ := d.Instance("t1")
	if v, ok := t1.Property("processor"); !ok || v.AsString() == "" {
		t.Errorf("t1 processor = %v, %v", v, ok)
	}
	// Links carry connector and communication attributes.
	ls := d.LinksBetween("t1", "e1")
	if len(ls) != 1 {
		t.Fatalf("t1-e1 links = %d", len(ls))
	}
	if v, ok := ls[0].Property("MTBF"); !ok || v.AsReal() != LinkMTBF {
		t.Errorf("link MTBF = %v, %v", v, ok)
	}
	if v, ok := ls[0].Property("channel"); !ok || v.AsString() != LinkChannel {
		t.Errorf("link channel = %v, %v", v, ok)
	}
}

func TestSectionVIGPaths(t *testing.T) {
	m, err := BuildModel()
	if err != nil {
		t.Fatal(err)
	}
	d, _ := m.Diagram(DiagramName)
	g := topology.FromObjectDiagram(d)
	paths, _, err := pathdisc.AllPaths(g, "t1", "printS", pathdisc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The published Section VI-G list is the exhaustive enumeration under
	// the reconstructed topology: exactly the two printed paths.
	if len(paths) != len(ExamplePathsT1PrintS) {
		t.Fatalf("t1→printS paths = %d, want %d: %v", len(paths), len(ExamplePathsT1PrintS), paths)
	}
	got := make(map[string]bool, len(paths))
	for _, p := range paths {
		got[p.String()] = true
	}
	for _, want := range ExamplePathsT1PrintS {
		if !got[want] {
			t.Errorf("published path %q not discovered; got %v", want, paths)
		}
	}
}

func TestFigure11UPSIM(t *testing.T) {
	m, err := BuildModel()
	if err != nil {
		t.Fatal(err)
	}
	svc, err := PrintingService(m)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := core.NewGenerator(m, DiagramName)
	if err != nil {
		t.Fatal(err)
	}
	res, err := gen.Generate(svc, TableIMapping(), "upsim-t1-p2", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := res.NodeNames()
	if len(got) != len(Figure11Nodes) {
		t.Fatalf("UPSIM nodes = %v, want %v", got, Figure11Nodes)
	}
	for i := range Figure11Nodes {
		if got[i] != Figure11Nodes[i] {
			t.Errorf("node[%d] = %s, want %s", i, got[i], Figure11Nodes[i])
		}
	}
	// Figure 12: only the mapping changes (Section VI-H).
	res2, err := gen.Generate(svc, T15P3Mapping(), "upsim-t15-p3", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got2 := res2.NodeNames()
	if len(got2) != len(Figure12Nodes) {
		t.Fatalf("Figure 12 UPSIM nodes = %v, want %v", got2, Figure12Nodes)
	}
	for i := range Figure12Nodes {
		if got2[i] != Figure12Nodes[i] {
			t.Errorf("node[%d] = %s, want %s", i, got2[i], Figure12Nodes[i])
		}
	}
	// UPSIM instances keep their properties (Section V-E).
	inst, ok := res.UPSIM.Instance("printS")
	if !ok {
		t.Fatal("printS missing")
	}
	if v, ok := inst.Property("MTBF"); !ok || v.AsReal() != 60000 {
		t.Errorf("printS MTBF = %v, %v", v, ok)
	}
}

func TestBackupServiceUPSIM(t *testing.T) {
	m, err := BuildModel()
	if err != nil {
		t.Fatal(err)
	}
	svc, err := BackupService(m)
	if err != nil {
		t.Fatal(err)
	}
	stages := svc.Stages()
	if len(stages) != 3 || len(stages[1]) != 2 {
		t.Fatalf("backup stages = %v", stages)
	}
	gen, err := core.NewGenerator(m, DiagramName)
	if err != nil {
		t.Fatal(err)
	}
	res, err := gen.Generate(svc, BackupMapping(), "upsim-backup", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Backup touches t7's edge (e2, d1), the cores, both server switches'
	// side d3/d4 and the three servers.
	for _, must := range []string{"t7", "e2", "d1", "c1", "c2", "d3", "d4", "backup", "file1", "file2"} {
		if !res.Graph.HasNode(must) {
			t.Errorf("backup UPSIM missing %s (got %v)", must, res.NodeNames())
		}
	}
	for _, never := range []string{"p1", "p2", "p3", "printS", "email", "db", "t1"} {
		if res.Graph.HasNode(never) {
			t.Errorf("backup UPSIM must not contain %s", never)
		}
	}
}

func TestCaseStudyAvailability(t *testing.T) {
	m, err := BuildModel()
	if err != nil {
		t.Fatal(err)
	}
	svc, err := PrintingService(m)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := core.NewGenerator(m, DiagramName)
	if err != nil {
		t.Fatal(err)
	}
	res, err := gen.Generate(svc, TableIMapping(), "u", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := depend.Analyze(res, depend.ModelExact, 200000, 42)
	if err != nil {
		t.Fatal(err)
	}
	// The dominating components are the client (A≈0.99206) and the printer
	// (A≈0.99965): the service availability must sit below their product
	// but above it minus the remaining (tiny) infrastructure contribution.
	clientA, _ := depend.Availability(3000, 24)
	printerA, _ := depend.Availability(2880, 1)
	upper := clientA * printerA
	if rep.Exact >= upper {
		t.Errorf("exact %v must be below client*printer %v", rep.Exact, upper)
	}
	if rep.Exact < upper-0.01 {
		t.Errorf("exact %v implausibly far below %v", rep.Exact, upper)
	}
	// Monte Carlo confirms.
	if math.Abs(rep.MonteCarlo-rep.Exact) > 5*rep.MCStdErr+1e-9 {
		t.Errorf("MC %v ± %v vs exact %v", rep.MonteCarlo, rep.MCStdErr, rep.Exact)
	}
	// Exact never exceeds the naive RBD.
	if rep.Exact > rep.RBDApprox+1e-12 {
		t.Errorf("exact %v above RBD %v", rep.Exact, rep.RBDApprox)
	}
}

func TestMappingsAreValid(t *testing.T) {
	for name, mp := range map[string]int{
		"TableI": TableIMapping().Len(),
		"T15P3":  T15P3Mapping().Len(),
		"Backup": BackupMapping().Len(),
	} {
		if mp == 0 {
			t.Errorf("%s mapping empty", name)
		}
	}
	// Table I has exactly five pairs with the published requesters and
	// providers.
	tm := TableIMapping()
	if tm.Len() != 5 {
		t.Fatalf("Table I pairs = %d", tm.Len())
	}
	p, _ := tm.Pair("Send documents")
	if p.Requester != "printS" || p.Provider != "p2" {
		t.Errorf("Send documents pair = %+v", p)
	}
	// The t15/p3 perspective only renames components.
	t15 := T15P3Mapping()
	p2, _ := t15.Pair("Request printing")
	if p2.Requester != "t15" || p2.Provider != "printS" {
		t.Errorf("t15 perspective pair = %+v", p2)
	}
}
