package cache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestGetAddLRU(t *testing.T) {
	c := New(2)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.Add("a", 1)
	c.Add("b", 2)
	if v, ok := c.Get("a"); !ok || v.(int) != 1 {
		t.Fatalf("Get(a) = %v, %v; want 1, true", v, ok)
	}
	// "a" is now most recently used, so adding "c" must evict "b".
	c.Add("c", 3)
	if _, ok := c.Get("b"); ok {
		t.Error("LRU entry b survived eviction")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("recently used entry a was evicted")
	}
	if _, ok := c.Get("c"); !ok {
		t.Error("new entry c missing")
	}
	s := c.Stats()
	if s.Evictions != 1 || s.Entries != 2 || s.MaxEntries != 2 {
		t.Errorf("stats = %s; want 1 eviction, 2/2 entries", s)
	}
}

func TestAddReplaceDoesNotGrow(t *testing.T) {
	c := New(2)
	c.Add("a", 1)
	c.Add("a", 2)
	if c.Len() != 1 {
		t.Fatalf("Len = %d after replacing a, want 1", c.Len())
	}
	if v, _ := c.Get("a"); v.(int) != 2 {
		t.Fatalf("Get(a) = %v, want replaced value 2", v)
	}
	if s := c.Stats(); s.Evictions != 0 {
		t.Errorf("replacement caused %d evictions", s.Evictions)
	}
}

func TestDefaultCapacity(t *testing.T) {
	for _, n := range []int{0, -5} {
		if got := New(n).Stats().MaxEntries; got != DefaultMaxEntries {
			t.Errorf("New(%d).MaxEntries = %d, want %d", n, got, DefaultMaxEntries)
		}
	}
}

func TestDoComputesOnceThenHits(t *testing.T) {
	c := New(8)
	var computes atomic.Int64
	compute := func() (any, error) {
		computes.Add(1)
		return "value", nil
	}
	v, out, err := c.Do(context.Background(), "k", compute)
	if err != nil || v.(string) != "value" || out != OutcomeMiss {
		t.Fatalf("first Do = %v, %v, %v; want value, miss, nil", v, out, err)
	}
	v, out, err = c.Do(context.Background(), "k", compute)
	if err != nil || v.(string) != "value" || out != OutcomeHit {
		t.Fatalf("second Do = %v, %v, %v; want value, hit, nil", v, out, err)
	}
	if n := computes.Load(); n != 1 {
		t.Errorf("compute ran %d times, want 1", n)
	}
}

func TestDoErrorNotCached(t *testing.T) {
	c := New(8)
	boom := errors.New("boom")
	calls := 0
	_, _, err := c.Do(context.Background(), "k", func() (any, error) { calls++; return nil, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("Do error = %v, want boom", err)
	}
	if c.Len() != 0 {
		t.Fatal("failed computation was cached")
	}
	v, out, err := c.Do(context.Background(), "k", func() (any, error) { calls++; return 42, nil })
	if err != nil || v.(int) != 42 || out != OutcomeMiss {
		t.Fatalf("retry Do = %v, %v, %v; want 42, miss, nil", v, out, err)
	}
	if calls != 2 {
		t.Errorf("compute calls = %d, want 2 (errors must not be cached)", calls)
	}
}

func TestDoSingleflightSharesOneCompute(t *testing.T) {
	c := New(8)
	const goroutines = 32
	var (
		computes atomic.Int64
		release  = make(chan struct{})
		started  = make(chan struct{})
		startOne sync.Once
	)
	compute := func() (any, error) {
		startOne.Do(func() { close(started) })
		computes.Add(1)
		<-release // hold every other goroutine in the shared-wait path
		return "shared", nil
	}
	var wg sync.WaitGroup
	results := make([]Outcome, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i == 0 {
				v, out, err := c.Do(context.Background(), "k", compute)
				if err != nil || v.(string) != "shared" {
					t.Errorf("leader Do = %v, %v", v, err)
				}
				results[i] = out
				return
			}
			<-started // the leader holds the in-flight slot before we join
			v, out, err := c.Do(context.Background(), "k", compute)
			if err != nil || v.(string) != "shared" {
				t.Errorf("waiter Do = %v, %v", v, err)
			}
			results[i] = out
		}(i)
	}
	// Give the waiters time to pile onto the in-flight call, then release.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()

	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times under %d concurrent identical requests, want exactly 1", n, goroutines)
	}
	var miss, shared int
	for _, out := range results {
		switch out {
		case OutcomeMiss:
			miss++
		case OutcomeShared:
			shared++
		}
	}
	if miss != 1 {
		t.Errorf("misses = %d, want 1", miss)
	}
	s := c.Stats()
	if s.Misses != 1 || s.Shared != uint64(shared) || s.Shared < 1 {
		t.Errorf("stats = %s; want 1 miss and %d shared", s, shared)
	}
}

func TestDoWaiterContextCancellation(t *testing.T) {
	c := New(8)
	release := make(chan struct{})
	started := make(chan struct{})
	go func() {
		_, _, _ = c.Do(context.Background(), "k", func() (any, error) {
			close(started)
			<-release
			return "late", nil
		})
	}()
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := c.Do(ctx, "k", func() (any, error) { return nil, errors.New("must not run") })
		done <- err
	}()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("waiter error = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled waiter did not return")
	}
	close(release)
}

func TestConcurrentMixedKeys(t *testing.T) {
	c := New(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", (g+i)%24) // more keys than capacity forces evictions
				v, _, err := c.Do(context.Background(), key, func() (any, error) { return key, nil })
				if err != nil {
					t.Errorf("Do(%s): %v", key, err)
					return
				}
				if v.(string) != key {
					t.Errorf("Do(%s) = %v (cross-key value leak)", key, v)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if n := c.Len(); n > 16 {
		t.Errorf("Len = %d exceeds capacity 16", n)
	}
	if s := c.Stats(); s.Evictions == 0 {
		t.Error("expected evictions when keys exceed capacity")
	}
}

func TestPurge(t *testing.T) {
	c := New(4)
	c.Add("a", 1)
	c.Add("b", 2)
	c.Purge()
	if c.Len() != 0 {
		t.Fatalf("Len = %d after Purge, want 0", c.Len())
	}
	if _, ok := c.Get("a"); ok {
		t.Error("purged entry still retrievable")
	}
}

func TestOutcomeString(t *testing.T) {
	cases := map[Outcome]string{OutcomeMiss: "miss", OutcomeHit: "hit", OutcomeShared: "shared", Outcome(99): "Outcome(99)"}
	for o, want := range cases {
		if got := o.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", o, got, want)
		}
	}
}
