// Package cache provides the content-addressed result cache behind the
// generation pipeline: a size-bounded LRU keyed by stable hashes of the
// canonically-encoded inputs (see core.Generator.CacheKey), with
// singleflight deduplication so that N concurrent identical requests
// compute the result once and share it.
//
// The cache stores opaque values (`any`); it never copies them, so cached
// values must be immutable once stored — for the generation pipeline this
// holds because a *core.Result is never mutated after Step 8's merge
// returns (see DESIGN.md §8). The paper's access pattern motivates the
// design: the same UPSIM feeds many downstream analyses (RBD, fault tree,
// responsiveness), and path discovery dominates generation cost, so
// memoizing the (model, service, mapping, options) tuple converts the
// common repeated request into a hash lookup.
//
// Entries leave the cache three ways: LRU eviction when the bound is hit,
// Purge (drop everything), and — since the live-topology what-if engine
// (DESIGN.md §13) — targeted invalidation via Remove/RemoveMatching.
// Derived analysis keys ("avail|<genKey>|…", "qos|<genKey>|…",
// "explain|<genKey>|…") embed the generation content hash of the UPSIM they
// were computed from, so a RemoveMatching predicate that matches on the
// hash evicts a stale generation together with every analysis derived from
// it, while unrelated generations stay warm.
//
// Every cache feeds the process-wide obs counters
// (upsim_cache_{hits,misses,evictions,singleflight_shared,invalidations}_total),
// which upsimd exposes on GET /metrics; per-instance numbers are available
// via Stats.
package cache

import (
	"container/list"
	"context"
	"fmt"
	"sync"

	"upsim/internal/obs"
)

// DefaultMaxEntries bounds a cache constructed with New(0).
const DefaultMaxEntries = 128

// Process-wide cache metrics, aggregated over every Cache instance (the
// daemon runs exactly one; tests may run many).
var (
	mHits          = obs.NewCounter("upsim_cache_hits_total", "Generation cache hits.")
	mMisses        = obs.NewCounter("upsim_cache_misses_total", "Generation cache misses (results computed).")
	mEvictions     = obs.NewCounter("upsim_cache_evictions_total", "Generation cache LRU evictions.")
	mShared        = obs.NewCounter("upsim_cache_singleflight_shared_total", "Requests that joined an in-flight identical computation.")
	mInvalidations = obs.NewCounter("upsim_cache_invalidations_total", "Entries removed by explicit invalidation (Remove/RemoveMatching).")
)

// init materialises every series at zero so /metrics always exposes the
// cache family, not just the counters that have fired.
func init() {
	mHits.With().Add(0)
	mMisses.With().Add(0)
	mEvictions.With().Add(0)
	mShared.With().Add(0)
	mInvalidations.With().Add(0)
}

// Outcome classifies how Do obtained its value.
type Outcome uint8

const (
	// OutcomeMiss: the value was computed by this call.
	OutcomeMiss Outcome = iota
	// OutcomeHit: the value was already cached.
	OutcomeHit
	// OutcomeShared: an identical computation was already in flight; this
	// call waited for it and shares its result (singleflight).
	OutcomeShared
)

// String returns the outcome name.
func (o Outcome) String() string {
	switch o {
	case OutcomeMiss:
		return "miss"
	case OutcomeHit:
		return "hit"
	case OutcomeShared:
		return "shared"
	}
	return fmt.Sprintf("Outcome(%d)", uint8(o))
}

// Stats is a point-in-time snapshot of one cache's counters.
type Stats struct {
	// Hits counts lookups served from the store.
	Hits uint64 `json:"hits"`
	// Misses counts lookups that computed (Do) or found nothing (Get).
	Misses uint64 `json:"misses"`
	// Shared counts calls that joined an in-flight identical computation.
	Shared uint64 `json:"shared"`
	// Evictions counts entries dropped by the LRU bound.
	Evictions uint64 `json:"evictions"`
	// Invalidations counts entries dropped by explicit Remove/RemoveMatching
	// (the what-if engine's targeted cache invalidation).
	Invalidations uint64 `json:"invalidations"`
	// Entries is the current number of cached values.
	Entries int `json:"entries"`
	// MaxEntries is the configured capacity.
	MaxEntries int `json:"maxEntries"`
}

// String renders the snapshot as a one-line summary.
func (s Stats) String() string {
	return fmt.Sprintf("hits=%d misses=%d shared=%d evictions=%d invalidations=%d entries=%d/%d",
		s.Hits, s.Misses, s.Shared, s.Evictions, s.Invalidations, s.Entries, s.MaxEntries)
}

// call is one in-flight computation that waiters share.
type call struct {
	done chan struct{} // closed when val/err are set
	val  any
	err  error
}

// Cache is a content-addressed, LRU-bounded result cache with singleflight
// deduplication. All methods are safe for concurrent use. The zero value is
// not usable; construct with New.
type Cache struct {
	mu         sync.Mutex
	maxEntries int
	ll         *list.List               // front = most recently used
	entries    map[string]*list.Element // key → element holding *entry
	inflight   map[string]*call

	hits, misses, shared, evictions, invalidations uint64
}

// entry is one stored key/value pair (the list element payload).
type entry struct {
	key string
	val any
}

// New returns an empty cache bounded to maxEntries values; maxEntries <= 0
// selects DefaultMaxEntries.
func New(maxEntries int) *Cache {
	if maxEntries <= 0 {
		maxEntries = DefaultMaxEntries
	}
	return &Cache{
		maxEntries: maxEntries,
		ll:         list.New(),
		entries:    make(map[string]*list.Element),
		inflight:   make(map[string]*call),
	}
}

// Get returns the cached value for key, marking it most recently used.
func (c *Cache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		mHits.With().Inc()
		return el.Value.(*entry).val, true
	}
	c.misses++
	mMisses.With().Inc()
	return nil, false
}

// GetBytes is Get for callers that assembled the key in a reusable byte
// buffer. Go maps special-case `m[string(b)]` lookups to skip the string
// conversion allocation, so a warm-path probe with a pooled key buffer is
// allocation-free; the key is only materialised as a string by Add/Do on the
// miss path.
//
//upsim:hotpath
func (c *Cache) GetBytes(key []byte) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[string(key)]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		mHits.With().Inc()
		return el.Value.(*entry).val, true
	}
	c.misses++
	mMisses.With().Inc()
	return nil, false
}

// Add stores val under key (replacing any previous value), evicting the
// least recently used entry when the capacity is exceeded.
func (c *Cache) Add(key string, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.add(key, val)
}

// add stores under c.mu.
func (c *Cache) add(key string, val any) {
	if el, ok := c.entries[key]; ok {
		el.Value.(*entry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.entries[key] = c.ll.PushFront(&entry{key: key, val: val})
	for c.ll.Len() > c.maxEntries {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.entries, oldest.Value.(*entry).key)
		c.evictions++
		mEvictions.With().Inc()
	}
}

// Do returns the value for key, computing it with compute on a miss. When
// an identical computation is already in flight, Do waits for it instead of
// starting a second one and shares its result (OutcomeShared); the shared
// counter and upsim_cache_singleflight_shared_total record the join.
//
// compute runs on the calling goroutine with the caller's ctx, so a leader
// whose ctx is cancelled fails the computation for every waiter — but the
// failure is not cached, and the next request recomputes. A waiter whose
// own ctx is cancelled stops waiting and returns ctx.Err() while the
// computation continues for the others. Errors are never cached.
func (c *Cache) Do(ctx context.Context, key string, compute func() (any, error)) (any, Outcome, error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		mHits.With().Inc()
		v := el.Value.(*entry).val
		c.mu.Unlock()
		return v, OutcomeHit, nil
	}
	if cl, ok := c.inflight[key]; ok {
		c.shared++
		mShared.With().Inc()
		c.mu.Unlock()
		select {
		case <-cl.done:
			return cl.val, OutcomeShared, cl.err
		case <-ctx.Done():
			return nil, OutcomeShared, ctx.Err()
		}
	}
	cl := &call{done: make(chan struct{})}
	c.inflight[key] = cl
	c.misses++
	mMisses.With().Inc()
	c.mu.Unlock()

	cl.val, cl.err = compute()

	c.mu.Lock()
	delete(c.inflight, key)
	if cl.err == nil {
		c.add(key, cl.val)
	}
	c.mu.Unlock()
	close(cl.done)
	return cl.val, OutcomeMiss, cl.err
}

// Remove drops the entry stored under key, reporting whether one existed.
// In-flight computations for the key are unaffected (they re-populate on
// completion — callers that need stronger guarantees serialise mutations
// against computations, as the what-if engine does). Counts toward
// upsim_cache_invalidations_total.
func (c *Cache) Remove(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return false
	}
	c.ll.Remove(el)
	delete(c.entries, key)
	c.invalidations++
	mInvalidations.With().Inc()
	return true
}

// RemoveMatching drops every entry whose key satisfies pred and returns the
// number removed. This is the targeted-invalidation primitive behind the
// live-topology what-if engine (DESIGN.md §13): derived analysis keys embed
// the generation content hash, so a predicate matching on that hash evicts
// a generation and all of its derived entries — and nothing else. Counts
// toward upsim_cache_invalidations_total.
func (c *Cache) RemoveMatching(pred func(key string) bool) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	removed := 0
	for key, el := range c.entries {
		if !pred(key) {
			continue
		}
		c.ll.Remove(el)
		delete(c.entries, key)
		removed++
	}
	if removed > 0 {
		c.invalidations += uint64(removed)
		mInvalidations.With().Add(uint64(removed))
	}
	return removed
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Purge drops every cached entry (in-flight computations are unaffected;
// they re-populate on completion). Counters are preserved.
func (c *Cache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.entries = make(map[string]*list.Element)
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:          c.hits,
		Misses:        c.misses,
		Shared:        c.shared,
		Evictions:     c.evictions,
		Invalidations: c.invalidations,
		Entries:       c.ll.Len(),
		MaxEntries:    c.maxEntries,
	}
}
