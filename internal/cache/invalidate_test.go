package cache

import (
	"strings"
	"testing"
)

func TestRemove(t *testing.T) {
	c := New(8)
	c.Add("a", 1)
	c.Add("b", 2)
	if !c.Remove("a") {
		t.Fatal("Remove(a) = false")
	}
	if c.Remove("a") {
		t.Fatal("second Remove(a) = true")
	}
	if c.Remove("never") {
		t.Fatal("Remove(never) = true")
	}
	if _, ok := c.Get("a"); ok {
		t.Fatal("a still cached after Remove")
	}
	if v, ok := c.Get("b"); !ok || v != 2 {
		t.Fatal("unrelated entry b disturbed")
	}
	if got := c.Stats().Invalidations; got != 1 {
		t.Fatalf("Invalidations = %d, want 1", got)
	}
}

func TestRemoveMatching(t *testing.T) {
	c := New(16)
	keys := []string{
		"gen-aaa",
		"avail|gen-aaa|model=exact",
		"qos|gen-aaa|hops=2",
		"gen-bbb",
		"avail|gen-bbb|model=exact",
	}
	for _, k := range keys {
		c.Add(k, k)
	}
	removed := c.RemoveMatching(func(k string) bool { return strings.Contains(k, "gen-aaa") })
	if removed != 3 {
		t.Fatalf("removed = %d, want 3", removed)
	}
	for _, k := range keys[:3] {
		if _, ok := c.Get(k); ok {
			t.Fatalf("%q survived invalidation", k)
		}
	}
	for _, k := range keys[3:] {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("unaffected %q was evicted", k)
		}
	}
	if got := c.Stats().Invalidations; got != 3 {
		t.Fatalf("Invalidations = %d, want 3", got)
	}
	if got := c.RemoveMatching(func(string) bool { return false }); got != 0 {
		t.Fatalf("no-match removed %d", got)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

// TestRemoveThenRecompute pins the interaction with Do: an invalidated key
// recomputes instead of hitting.
func TestRemoveThenRecompute(t *testing.T) {
	c := New(8)
	computes := 0
	compute := func() (any, error) { computes++; return computes, nil }
	ctx := t.Context()
	if _, out, _ := c.Do(ctx, "k", compute); out != OutcomeMiss {
		t.Fatalf("first Do outcome = %v", out)
	}
	if _, out, _ := c.Do(ctx, "k", compute); out != OutcomeHit {
		t.Fatalf("warm Do outcome = %v", out)
	}
	c.Remove("k")
	v, out, _ := c.Do(ctx, "k", compute)
	if out != OutcomeMiss || v != 2 {
		t.Fatalf("post-invalidation Do = %v, %v; want recompute", v, out)
	}
}
