// Package vtcl implements a small textual pattern language over the VPM
// model space, standing in for the VIATRA2 textual command language the
// paper uses for declarative model queries (Section V-C: "It is based on
// mathematical formalisms and provides declarative model queries and
// manipulation"). A pattern file declares named graph patterns:
//
//	// requester candidates: instances named like the mapping entry
//	pattern requester(R) = {
//	    instanceOf(R, "metamodel.uml.InstanceSpecification");
//	    below(R, "models.usi.diagrams.infrastructure");
//	    name(R, "t1");
//	}
//
//	pattern linkedPair(A, B) = {
//	    instanceOf(A, "metamodel.uml.InstanceSpecification");
//	    instanceOf(B, "metamodel.uml.InstanceSpecification");
//	    connected(A, "link", B);
//	    injective;
//	}
//
// Statements map 1:1 onto vpm constraints: instanceOf → TypeOf, below →
// Below, name → NameIs, value → ValueIs, connected → undirected Connected,
// directed → directed Connected; the bare word "injective" makes distinct
// variables bind distinct entities. Parsed patterns are ordinary
// *vpm.Pattern values and run against any model space.
package vtcl

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind enumerates lexer token types.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokString
	tokLParen
	tokRParen
	tokLBrace
	tokRBrace
	tokComma
	tokSemi
	tokEquals
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokString:
		return "string"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokLBrace:
		return "'{'"
	case tokRBrace:
		return "'}'"
	case tokComma:
		return "','"
	case tokSemi:
		return "';'"
	case tokEquals:
		return "'='"
	}
	return fmt.Sprintf("token(%d)", uint8(k))
}

type token struct {
	kind tokenKind
	text string
	line int
	col  int
}

// SyntaxError reports a lexing or parsing failure with its position.
type SyntaxError struct {
	Line int
	Col  int
	Msg  string
}

// Error implements the error interface.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("vtcl: %d:%d: %s", e.Line, e.Col, e.Msg)
}

func errAt(line, col int, format string, args ...any) error {
	return &SyntaxError{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

func (l *lexer) peek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			startLine, startCol := l.line, l.col
			l.advance()
			l.advance()
			closed := false
			for l.pos+1 < len(l.src)+1 && l.pos < len(l.src) {
				if l.peek() == '*' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return errAt(startLine, startCol, "unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

func (l *lexer) next() (token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return token{}, err
	}
	line, col := l.line, l.col
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, line: line, col: col}, nil
	}
	c := l.peek()
	switch c {
	case '(':
		l.advance()
		return token{kind: tokLParen, text: "(", line: line, col: col}, nil
	case ')':
		l.advance()
		return token{kind: tokRParen, text: ")", line: line, col: col}, nil
	case '{':
		l.advance()
		return token{kind: tokLBrace, text: "{", line: line, col: col}, nil
	case '}':
		l.advance()
		return token{kind: tokRBrace, text: "}", line: line, col: col}, nil
	case ',':
		l.advance()
		return token{kind: tokComma, text: ",", line: line, col: col}, nil
	case ';':
		l.advance()
		return token{kind: tokSemi, text: ";", line: line, col: col}, nil
	case '=':
		l.advance()
		return token{kind: tokEquals, text: "=", line: line, col: col}, nil
	case '"':
		l.advance()
		var b strings.Builder
		for {
			if l.pos >= len(l.src) {
				return token{}, errAt(line, col, "unterminated string literal")
			}
			ch := l.advance()
			if ch == '"' {
				return token{kind: tokString, text: b.String(), line: line, col: col}, nil
			}
			if ch == '\\' {
				if l.pos >= len(l.src) {
					return token{}, errAt(line, col, "unterminated escape in string literal")
				}
				esc := l.advance()
				switch esc {
				case '"', '\\':
					b.WriteByte(esc)
				case 'n':
					b.WriteByte('\n')
				case 't':
					b.WriteByte('\t')
				default:
					return token{}, errAt(l.line, l.col-1, "unknown escape \\%c", esc)
				}
				continue
			}
			if ch == '\n' {
				return token{}, errAt(line, col, "newline in string literal")
			}
			b.WriteByte(ch)
		}
	}
	if isIdentStart(c) {
		var b strings.Builder
		for l.pos < len(l.src) && isIdentPart(l.peek()) {
			b.WriteByte(l.advance())
		}
		return token{kind: tokIdent, text: b.String(), line: line, col: col}, nil
	}
	return token{}, errAt(line, col, "unexpected character %q", string(c))
}

// tokenize lexes the whole input.
func tokenize(src string) ([]token, error) {
	l := newLexer(src)
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}
