package vtcl

import (
	"strings"
	"testing"

	"upsim/internal/vpm"
)

const goodSrc = `
// Devices linked to switches.
pattern devSwitch(D, S) = {
    instanceOf(D, "meta.Device");
    instanceOf(S, "meta.Switch");
    connected(D, "link", S);
    injective;
}

/* A named requester below the diagram subtree. */
pattern requester(R) = {
    below(R, "net");
    name(R, "t1");
    value(R, "requester");
}
`

func TestParseGood(t *testing.T) {
	pats, err := Parse(goodSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(pats) != 2 {
		t.Fatalf("patterns = %d", len(pats))
	}
	p0 := pats[0]
	if p0.Name != "devSwitch" || len(p0.Vars) != 2 || !p0.Injective {
		t.Errorf("devSwitch parsed wrong: %+v", p0)
	}
	if len(p0.Constraints) != 3 {
		t.Fatalf("devSwitch constraints = %d", len(p0.Constraints))
	}
	if c, ok := p0.Constraints[0].(vpm.TypeOf); !ok || c.Var != "D" || c.TypeFQN != "meta.Device" {
		t.Errorf("constraint 0 = %#v", p0.Constraints[0])
	}
	if c, ok := p0.Constraints[2].(vpm.Connected); !ok || c.Rel != "link" || c.Directed {
		t.Errorf("constraint 2 = %#v", p0.Constraints[2])
	}
	p1 := pats[1]
	if p1.Injective {
		t.Error("requester must not be injective")
	}
	if _, ok := p1.Constraints[0].(vpm.Below); !ok {
		t.Errorf("below constraint = %#v", p1.Constraints[0])
	}
	if _, ok := p1.Constraints[1].(vpm.NameIs); !ok {
		t.Errorf("name constraint = %#v", p1.Constraints[1])
	}
	if _, ok := p1.Constraints[2].(vpm.ValueIs); !ok {
		t.Errorf("value constraint = %#v", p1.Constraints[2])
	}
}

func TestParsePattern(t *testing.T) {
	p, err := ParsePattern(`pattern p(A, B) = { directed(A, "flow", B); }`)
	if err != nil {
		t.Fatal(err)
	}
	c, ok := p.Constraints[0].(vpm.Connected)
	if !ok || !c.Directed || c.Rel != "flow" {
		t.Errorf("directed constraint = %#v", p.Constraints[0])
	}
	if _, err := ParsePattern(goodSrc); err == nil {
		t.Error("two patterns should fail ParsePattern")
	}
}

func TestParseConnectedTwoArgs(t *testing.T) {
	p, err := ParsePattern(`pattern p(A, B) = { connected(A, B); }`)
	if err != nil {
		t.Fatal(err)
	}
	c := p.Constraints[0].(vpm.Connected)
	if c.Rel != "" {
		t.Errorf("two-arg connected should match any relation, got %q", c.Rel)
	}
}

func TestParsedPatternRuns(t *testing.T) {
	// Execute a parsed pattern against a real model space.
	s := vpm.NewSpace()
	dev, _ := s.EnsureEntity("meta.Device")
	sw, _ := s.EnsureEntity("meta.Switch")
	t1, _ := s.EnsureEntity("net.t1")
	c1, _ := s.EnsureEntity("net.c1")
	_ = s.SetInstanceOf(t1, dev)
	_ = s.SetInstanceOf(c1, sw)
	if _, err := s.NewRelation("link", t1, c1); err != nil {
		t.Fatal(err)
	}
	pats, err := Parse(goodSrc)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := pats[0].Match(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 || ms[0]["D"] != t1 || ms[0]["S"] != c1 {
		t.Errorf("matches = %v", ms)
	}
	t1.SetValue("requester")
	ms2, err := pats[1].Match(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms2) != 1 || ms2[0]["R"] != t1 {
		t.Errorf("requester matches = %v", ms2)
	}
}

func TestStringEscapes(t *testing.T) {
	p, err := ParsePattern(`pattern p(A) = { value(A, "with \"quotes\" and \\ and \n and \t"); }`)
	if err != nil {
		t.Fatal(err)
	}
	v := p.Constraints[0].(vpm.ValueIs).Value
	if v != "with \"quotes\" and \\ and \n and \t" {
		t.Errorf("escaped string = %q", v)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string // substring of the error
	}{
		{"empty", ``, "no patterns"},
		{"not a pattern", `banana p(A) = {}`, `expected "pattern"`},
		{"missing parens", `pattern p A = {}`, "expected '('"},
		{"empty params", `pattern p() = {}`, "identifier"},
		{"missing equals", `pattern p(A) {}`, "'='"},
		{"unterminated body", `pattern p(A) = { name(A, "x");`, "unterminated pattern body"},
		{"unknown constraint", `pattern p(A) = { frobnicate(A); }`, "unknown constraint"},
		{"bad arity", `pattern p(A) = { instanceOf(A); }`, "expects 2 arguments"},
		{"bad connected arity", `pattern p(A) = { connected(A); }`, "2 or 3 arguments"},
		{"var where string", `pattern p(A) = { instanceOf(A, B); }`, "string literal"},
		{"string where var", `pattern p(A) = { name("A", "x"); }`, "pattern variable"},
		{"undeclared variable", `pattern p(A) = { name(B, "x"); }`, "undeclared variable"},
		{"duplicate pattern", `pattern p(A) = { name(A, "x"); } pattern p(A) = { name(A, "y"); }`, "duplicate pattern"},
		{"duplicate variable", `pattern p(A, A) = { name(A, "x"); }`, "duplicate variable"},
		{"unterminated string", `pattern p(A) = { name(A, "x); }`, "unterminated string"},
		{"newline in string", "pattern p(A) = { name(A, \"x\ny\"); }", "newline in string"},
		{"bad escape", `pattern p(A) = { name(A, "\q"); }`, "unknown escape"},
		{"unterminated comment", `/* hmm`, "unterminated block comment"},
		{"stray character", `pattern p(A) = { name(A, "x"); } @`, "unexpected character"},
		{"missing semicolon", `pattern p(A) = { name(A, "x") }`, "';'"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil {
				t.Fatalf("Parse should fail")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error = %q, want substring %q", err.Error(), c.want)
			}
		})
	}
}

func TestSyntaxErrorPosition(t *testing.T) {
	_, err := Parse("pattern p(A) = {\n    frobnicate(A);\n}")
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("error type = %T", err)
	}
	if se.Line != 2 || se.Col != 5 {
		t.Errorf("position = %d:%d, want 2:5", se.Line, se.Col)
	}
	if !strings.Contains(se.Error(), "2:5") {
		t.Errorf("Error() = %q", se.Error())
	}
}

func TestLexerTokenKinds(t *testing.T) {
	toks, err := tokenize(`pattern p(A) = { } ; , "s"`)
	if err != nil {
		t.Fatal(err)
	}
	kinds := []tokenKind{tokIdent, tokIdent, tokLParen, tokIdent, tokRParen, tokEquals,
		tokLBrace, tokRBrace, tokSemi, tokComma, tokString, tokEOF}
	if len(toks) != len(kinds) {
		t.Fatalf("tokens = %d, want %d", len(toks), len(kinds))
	}
	for i, k := range kinds {
		if toks[i].kind != k {
			t.Errorf("token %d = %v, want %v", i, toks[i].kind, k)
		}
	}
	for k := tokEOF; k <= tokEquals; k++ {
		if k.String() == "" || strings.HasPrefix(k.String(), "token(") {
			t.Errorf("kind %d has no name", k)
		}
	}
	if !strings.HasPrefix(tokenKind(99).String(), "token(") {
		t.Error("unknown kind fallback")
	}
}
