package vtcl

import (
	"fmt"

	"upsim/internal/vpm"
)

// Parse parses a pattern file and returns the declared patterns in
// declaration order. Every pattern is validated (declared variables,
// constraint arities) before being returned.
func Parse(src string) ([]*vpm.Pattern, error) {
	toks, err := tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var out []*vpm.Pattern
	seen := map[string]bool{}
	for p.peek().kind != tokEOF {
		pat, err := p.pattern()
		if err != nil {
			return nil, err
		}
		if seen[pat.Name] {
			return nil, fmt.Errorf("vtcl: duplicate pattern %q", pat.Name)
		}
		seen[pat.Name] = true
		if err := pat.Validate(); err != nil {
			return nil, err
		}
		out = append(out, pat)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("vtcl: no patterns declared")
	}
	return out, nil
}

// ParsePattern parses a source containing exactly one pattern.
func ParsePattern(src string) (*vpm.Pattern, error) {
	pats, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if len(pats) != 1 {
		return nil, fmt.Errorf("vtcl: expected exactly one pattern, got %d", len(pats))
	}
	return pats[0], nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) expect(kind tokenKind) (token, error) {
	t := p.next()
	if t.kind != kind {
		return t, errAt(t.line, t.col, "expected %s, found %s %q", kind, t.kind, t.text)
	}
	return t, nil
}

func (p *parser) expectKeyword(word string) error {
	t := p.next()
	if t.kind != tokIdent || t.text != word {
		return errAt(t.line, t.col, "expected %q, found %q", word, t.text)
	}
	return nil
}

// pattern := "pattern" IDENT "(" IDENT ("," IDENT)* ")" "=" "{" stmt* "}"
func (p *parser) pattern() (*vpm.Pattern, error) {
	if err := p.expectKeyword("pattern"); err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	pat := &vpm.Pattern{Name: name.text}
	for {
		v, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		pat.Vars = append(pat.Vars, v.text)
		t := p.next()
		if t.kind == tokRParen {
			break
		}
		if t.kind != tokComma {
			return nil, errAt(t.line, t.col, "expected ',' or ')' in parameter list, found %q", t.text)
		}
	}
	if _, err := p.expect(tokEquals); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokRBrace {
			p.next()
			return pat, nil
		}
		if t.kind == tokEOF {
			return nil, errAt(t.line, t.col, "unterminated pattern body for %q", pat.Name)
		}
		if err := p.statement(pat); err != nil {
			return nil, err
		}
	}
}

// statement := "injective" ";" | IDENT "(" args ")" ";"
func (p *parser) statement(pat *vpm.Pattern) error {
	head, err := p.expect(tokIdent)
	if err != nil {
		return err
	}
	if head.text == "injective" {
		if _, err := p.expect(tokSemi); err != nil {
			return err
		}
		pat.Injective = true
		return nil
	}
	if _, err := p.expect(tokLParen); err != nil {
		return err
	}
	var args []token
	if p.peek().kind != tokRParen {
		for {
			a := p.next()
			if a.kind != tokIdent && a.kind != tokString {
				return errAt(a.line, a.col, "expected variable or string argument, found %q", a.text)
			}
			args = append(args, a)
			t := p.next()
			if t.kind == tokRParen {
				break
			}
			if t.kind != tokComma {
				return errAt(t.line, t.col, "expected ',' or ')' in argument list, found %q", t.text)
			}
		}
	} else {
		p.next()
	}
	if _, err := p.expect(tokSemi); err != nil {
		return err
	}
	c, err := buildConstraint(head, args)
	if err != nil {
		return err
	}
	pat.Constraints = append(pat.Constraints, c)
	return nil
}

func wantVar(t token) (string, error) {
	if t.kind != tokIdent {
		return "", errAt(t.line, t.col, "expected a pattern variable, found string %q", t.text)
	}
	return t.text, nil
}

func wantString(t token) (string, error) {
	if t.kind != tokString {
		return "", errAt(t.line, t.col, "expected a string literal, found %q", t.text)
	}
	return t.text, nil
}

// buildConstraint maps one statement onto a vpm constraint.
func buildConstraint(head token, args []token) (vpm.Constraint, error) {
	arity := func(n int) error {
		if len(args) != n {
			return errAt(head.line, head.col, "%s expects %d arguments, got %d", head.text, n, len(args))
		}
		return nil
	}
	switch head.text {
	case "instanceOf":
		if err := arity(2); err != nil {
			return nil, err
		}
		v, err := wantVar(args[0])
		if err != nil {
			return nil, err
		}
		fqn, err := wantString(args[1])
		if err != nil {
			return nil, err
		}
		return vpm.TypeOf{Var: v, TypeFQN: fqn}, nil
	case "below":
		if err := arity(2); err != nil {
			return nil, err
		}
		v, err := wantVar(args[0])
		if err != nil {
			return nil, err
		}
		fqn, err := wantString(args[1])
		if err != nil {
			return nil, err
		}
		return vpm.Below{Var: v, AncestorFQN: fqn}, nil
	case "name":
		if err := arity(2); err != nil {
			return nil, err
		}
		v, err := wantVar(args[0])
		if err != nil {
			return nil, err
		}
		s, err := wantString(args[1])
		if err != nil {
			return nil, err
		}
		return vpm.NameIs{Var: v, Name: s}, nil
	case "value":
		if err := arity(2); err != nil {
			return nil, err
		}
		v, err := wantVar(args[0])
		if err != nil {
			return nil, err
		}
		s, err := wantString(args[1])
		if err != nil {
			return nil, err
		}
		return vpm.ValueIs{Var: v, Value: s}, nil
	case "connected", "directed":
		// connected(A, B) — any relation name; connected(A, "rel", B).
		var from, to, rel string
		switch len(args) {
		case 2:
			f, err := wantVar(args[0])
			if err != nil {
				return nil, err
			}
			t, err := wantVar(args[1])
			if err != nil {
				return nil, err
			}
			from, to = f, t
		case 3:
			f, err := wantVar(args[0])
			if err != nil {
				return nil, err
			}
			r, err := wantString(args[1])
			if err != nil {
				return nil, err
			}
			t, err := wantVar(args[2])
			if err != nil {
				return nil, err
			}
			from, rel, to = f, r, t
		default:
			return nil, errAt(head.line, head.col, "%s expects 2 or 3 arguments, got %d", head.text, len(args))
		}
		return vpm.Connected{From: from, Rel: rel, To: to, Directed: head.text == "directed"}, nil
	}
	return nil, errAt(head.line, head.col, "unknown constraint %q (want instanceOf, below, name, value, connected, directed, injective)", head.text)
}
