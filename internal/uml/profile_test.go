package uml

import (
	"strings"
	"testing"
)

// buildAvailabilityProfile reproduces the paper's Figure 6 profile: an
// abstract Component stereotype with MTBF/MTTR/redundantComponents, and
// Device/Connector specialisations extending Class and Association.
func buildAvailabilityProfile(t *testing.T) (*Profile, *Stereotype, *Stereotype) {
	t.Helper()
	p := NewProfile("availability")
	comp, err := p.DefineAbstractStereotype("Component", MetaclassNone)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []struct {
		name string
		kind ValueKind
	}{
		{"MTBF", KindReal},
		{"MTTR", KindReal},
		{"redundantComponents", KindInteger},
	} {
		if err := comp.AddAttribute(a.name, a.kind); err != nil {
			t.Fatal(err)
		}
	}
	dev, err := p.DefineSubStereotype("Device", MetaclassClass, comp)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := p.DefineSubStereotype("Connector", MetaclassAssociation, comp)
	if err != nil {
		t.Fatal(err)
	}
	return p, dev, conn
}

func TestProfileDefinition(t *testing.T) {
	p, dev, conn := buildAvailabilityProfile(t)
	if p.Name() != "availability" {
		t.Errorf("Name = %q", p.Name())
	}
	if got := len(p.Stereotypes()); got != 3 {
		t.Fatalf("len(Stereotypes) = %d, want 3", got)
	}
	comp, ok := p.Stereotype("Component")
	if !ok {
		t.Fatal("Component not found")
	}
	if !comp.IsAbstract() {
		t.Error("Component must be abstract")
	}
	if dev.Extends() != MetaclassClass {
		t.Errorf("Device extends %v, want Class", dev.Extends())
	}
	if conn.Extends() != MetaclassAssociation {
		t.Errorf("Connector extends %v, want Association", conn.Extends())
	}
	if dev.Parent() != comp {
		t.Error("Device parent must be Component")
	}
}

func TestStereotypeAttributeInheritance(t *testing.T) {
	_, dev, _ := buildAvailabilityProfile(t)
	all := dev.AllAttributes()
	if len(all) != 3 {
		t.Fatalf("Device inherits %d attributes, want 3", len(all))
	}
	if all[0].Name != "MTBF" || all[1].Name != "MTTR" || all[2].Name != "redundantComponents" {
		t.Errorf("attribute order = %v", all)
	}
	if def, ok := dev.Attribute("MTBF"); !ok || def.Kind != KindReal {
		t.Errorf("Attribute(MTBF) = %v, %v", def, ok)
	}
	if _, ok := dev.Attribute("nonexistent"); ok {
		t.Error("Attribute(nonexistent) should be absent")
	}
	if len(dev.OwnAttributes()) != 0 {
		t.Error("Device declares no own attributes")
	}
}

func TestStereotypeIsKindOf(t *testing.T) {
	_, dev, conn := buildAvailabilityProfile(t)
	if !dev.IsKindOf("Component") || !dev.IsKindOf("Device") {
		t.Error("Device must be kind of Device and Component")
	}
	if dev.IsKindOf("Connector") {
		t.Error("Device is not kind of Connector")
	}
	if !conn.IsKindOf("Component") {
		t.Error("Connector must be kind of Component")
	}
}

func TestStereotypeDuplicateAttribute(t *testing.T) {
	_, dev, _ := buildAvailabilityProfile(t)
	// Shadowing an inherited attribute is forbidden.
	if err := dev.AddAttribute("MTBF", KindReal); err == nil {
		t.Error("shadowing inherited MTBF should fail")
	}
	if err := dev.AddAttribute("", KindReal); err == nil {
		t.Error("empty attribute name should fail")
	}
	if err := dev.AddAttribute("x", KindNone); err == nil {
		t.Error("attribute without type should fail")
	}
}

func TestStereotypeDefaults(t *testing.T) {
	p := NewProfile("net")
	st, err := p.DefineStereotype("Communication", MetaclassAssociation)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.AddAttributeDefault("channel", KindString, StringValue("copper")); err != nil {
		t.Fatal(err)
	}
	if err := st.AddAttributeDefault("throughput", KindReal, IntegerValue(100)); err == nil {
		t.Error("default of wrong kind should fail")
	}
	app := newApplication(st)
	if v, ok := app.Get("channel"); !ok || v.AsString() != "copper" {
		t.Errorf("default channel = %v, %v", v, ok)
	}
	if err := app.Set("channel", StringValue("fiber")); err != nil {
		t.Fatal(err)
	}
	if v, _ := app.Get("channel"); v.AsString() != "fiber" {
		t.Errorf("channel after Set = %v", v)
	}
}

func TestApplicationSetErrors(t *testing.T) {
	_, dev, _ := buildAvailabilityProfile(t)
	app := newApplication(dev)
	if err := app.Set("MTBF", StringValue("high")); err == nil {
		t.Error("kind mismatch should fail")
	}
	if err := app.Set("unknown", RealValue(1)); err == nil {
		t.Error("unknown attribute should fail")
	}
	if err := app.Set("MTBF", RealValue(60000)); err != nil {
		t.Fatal(err)
	}
	got := app.SetValues()
	if len(got) != 1 || got[0] != "MTBF" {
		t.Errorf("SetValues = %v", got)
	}
}

func TestProfileDuplicateStereotype(t *testing.T) {
	p := NewProfile("x")
	if _, err := p.DefineStereotype("S", MetaclassClass); err != nil {
		t.Fatal(err)
	}
	if _, err := p.DefineStereotype("S", MetaclassClass); err == nil {
		t.Error("duplicate stereotype should fail")
	}
	if _, err := p.DefineStereotype("", MetaclassClass); err == nil {
		t.Error("empty name should fail")
	}
}

func TestSubStereotypeConstraints(t *testing.T) {
	p := NewProfile("x")
	parent, _ := p.DefineStereotype("P", MetaclassClass)
	if _, err := p.DefineSubStereotype("C", MetaclassAssociation, parent); err == nil {
		t.Error("child extending Association under Class parent should fail")
	}
	if _, err := p.DefineSubStereotype("C", MetaclassNone, parent); err != nil {
		t.Fatal(err)
	}
	child, _ := p.Stereotype("C")
	if child.Extends() != MetaclassClass {
		t.Errorf("child inherits extension, got %v", child.Extends())
	}
	if _, err := p.DefineSubStereotype("D", MetaclassClass, nil); err == nil {
		t.Error("nil parent should fail")
	}
	other := NewProfile("y")
	op, _ := other.DefineStereotype("OP", MetaclassClass)
	if _, err := p.DefineSubStereotype("E", MetaclassClass, op); err == nil {
		t.Error("cross-profile parent should fail")
	}
}

func TestMetaclassParse(t *testing.T) {
	for _, m := range []Metaclass{MetaclassNone, MetaclassClass, MetaclassAssociation} {
		got, err := ParseMetaclass(m.String())
		if err != nil || got != m {
			t.Errorf("ParseMetaclass(%s) = %v, %v", m, got, err)
		}
	}
	if _, err := ParseMetaclass("Package"); err == nil {
		t.Error("ParseMetaclass(Package) should fail")
	}
	if !strings.Contains(Metaclass(99).String(), "Metaclass(") {
		t.Error("unknown metaclass String format")
	}
}
