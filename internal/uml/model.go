package uml

import (
	"fmt"
	"sort"
)

// Model is the root container of a UML model: profiles, classes,
// associations, object diagrams and activities. It corresponds to the set of
// .uml resources the paper feeds into the VIATRA2 importer (Step 5 of the
// methodology): "Profiles, class diagram, object diagram and activity
// diagram".
type Model struct {
	name         string
	profiles     map[string]*Profile
	profileOrder []string
	classes      map[string]*Class
	classOrder   []string
	assocs       map[string]*Association
	assocOrder   []string
	diagrams     []*ObjectDiagram
	activities   map[string]*Activity
	actOrder     []string
}

// NewModel creates an empty model.
func NewModel(name string) *Model {
	return &Model{
		name:       name,
		profiles:   make(map[string]*Profile),
		classes:    make(map[string]*Class),
		assocs:     make(map[string]*Association),
		activities: make(map[string]*Activity),
	}
}

// Name returns the model name.
func (m *Model) Name() string { return m.name }

// AddProfile registers a profile with the model so that its stereotypes can
// be applied to model elements.
func (m *Model) AddProfile(p *Profile) error {
	if p == nil {
		return fmt.Errorf("uml: model %s: nil profile", m.name)
	}
	if _, dup := m.profiles[p.Name()]; dup {
		return fmt.Errorf("uml: model %s: duplicate profile %s", m.name, p.Name())
	}
	m.profiles[p.Name()] = p
	m.profileOrder = append(m.profileOrder, p.Name())
	return nil
}

// Profile looks up a registered profile by name.
func (m *Model) Profile(name string) (*Profile, bool) {
	p, ok := m.profiles[name]
	return p, ok
}

// Profiles returns the registered profiles in registration order.
func (m *Model) Profiles() []*Profile {
	out := make([]*Profile, 0, len(m.profileOrder))
	for _, n := range m.profileOrder {
		out = append(out, m.profiles[n])
	}
	return out
}

// FindStereotype resolves a stereotype by name across all registered
// profiles, in registration order.
func (m *Model) FindStereotype(name string) (*Stereotype, bool) {
	for _, pn := range m.profileOrder {
		if st, ok := m.profiles[pn].Stereotype(name); ok {
			return st, true
		}
	}
	return nil, false
}

// AddClass creates a class in the model. Class names are unique.
func (m *Model) AddClass(name string) (*Class, error) {
	if name == "" {
		return nil, fmt.Errorf("uml: model %s: empty class name", m.name)
	}
	if _, dup := m.classes[name]; dup {
		return nil, fmt.Errorf("uml: model %s: duplicate class %s", m.name, name)
	}
	c := &Class{name: name, model: m, properties: make(map[string]Value)}
	m.classes[name] = c
	m.classOrder = append(m.classOrder, name)
	return c, nil
}

// Class looks up a class by name.
func (m *Model) Class(name string) (*Class, bool) {
	c, ok := m.classes[name]
	return c, ok
}

// MustClass looks up a class and panics if it is absent; intended for model
// construction code where absence is a programming error.
func (m *Model) MustClass(name string) *Class {
	c, ok := m.classes[name]
	if !ok {
		panic(fmt.Sprintf("uml: model %s: unknown class %s", m.name, name))
	}
	return c
}

// Classes returns all classes in definition order.
func (m *Model) Classes() []*Class {
	out := make([]*Class, 0, len(m.classOrder))
	for _, n := range m.classOrder {
		out = append(out, m.classes[n])
	}
	return out
}

// ClassNames returns the sorted class names.
func (m *Model) ClassNames() []string {
	out := make([]string, len(m.classOrder))
	copy(out, m.classOrder)
	sort.Strings(out)
	return out
}

// AddAssociation creates a named association between two classes.
func (m *Model) AddAssociation(name string, a, b *Class) (*Association, error) {
	if name == "" {
		return nil, fmt.Errorf("uml: model %s: empty association name", m.name)
	}
	if a == nil || b == nil {
		return nil, fmt.Errorf("uml: model %s: association %s: nil end", m.name, name)
	}
	if a.model != m || b.model != m {
		return nil, fmt.Errorf("uml: model %s: association %s: end class from another model", m.name, name)
	}
	if _, dup := m.assocs[name]; dup {
		return nil, fmt.Errorf("uml: model %s: duplicate association %s", m.name, name)
	}
	as := &Association{name: name, model: m, endA: a, endB: b}
	m.assocs[name] = as
	m.assocOrder = append(m.assocOrder, name)
	return as, nil
}

// Association looks up an association by name.
func (m *Model) Association(name string) (*Association, bool) {
	a, ok := m.assocs[name]
	return a, ok
}

// Associations returns all associations in definition order.
func (m *Model) Associations() []*Association {
	out := make([]*Association, 0, len(m.assocOrder))
	for _, n := range m.assocOrder {
		out = append(out, m.assocs[n])
	}
	return out
}

// AssociationBetween returns the first association joining the two classes,
// in either orientation.
func (m *Model) AssociationBetween(a, b *Class) (*Association, bool) {
	for _, n := range m.assocOrder {
		if m.assocs[n].Joins(a, b) {
			return m.assocs[n], true
		}
	}
	return nil, false
}

// Diagrams returns the object diagrams of the model in creation order.
func (m *Model) Diagrams() []*ObjectDiagram {
	out := make([]*ObjectDiagram, len(m.diagrams))
	copy(out, m.diagrams)
	return out
}

// Diagram looks up an object diagram by name.
func (m *Model) Diagram(name string) (*ObjectDiagram, bool) {
	for _, d := range m.diagrams {
		if d.name == name {
			return d, true
		}
	}
	return nil, false
}

// RemoveDiagram detaches the named object diagram from the model and reports
// whether it existed. The diagram itself stays valid — generated UPSIMs held
// by cached results keep working after the generator resets its derived
// state — it just no longer resolves through the model.
func (m *Model) RemoveDiagram(name string) bool {
	for i, d := range m.diagrams {
		if d.name == name {
			m.diagrams = append(m.diagrams[:i], m.diagrams[i+1:]...)
			return true
		}
	}
	return false
}

// Activities returns the activity diagrams of the model in creation order.
func (m *Model) Activities() []*Activity {
	out := make([]*Activity, 0, len(m.actOrder))
	for _, n := range m.actOrder {
		out = append(out, m.activities[n])
	}
	return out
}

// Activity looks up an activity by name.
func (m *Model) Activity(name string) (*Activity, bool) {
	a, ok := m.activities[name]
	return a, ok
}
