package uml

import (
	"fmt"
	"sort"
	"strings"
)

// Class is a UML class describing one type of ICT component (Figure 8:
// Server, C6500, C3750, HP2650, C2960, Comp, Printer). Per Section V-A1 of
// the paper, classes may only carry static attributes so that two instances
// of the same class always expose identical properties; attribute values are
// therefore stored on the class (via owned properties and stereotype
// applications), never on instances.
type Class struct {
	name         string
	model        *Model
	applications []*StereotypeApplication
	properties   map[string]Value
	propOrder    []string
}

// Name returns the class name.
func (c *Class) Name() string { return c.name }

// Model returns the owning model.
func (c *Class) Model() *Model { return c.model }

// Apply applies a stereotype to the class and returns the application so the
// caller can set attribute values. Abstract stereotypes and stereotypes
// extending a metaclass other than Class are rejected, enforcing the profile
// constraints of Figure 6 ("Device ... applied respectively and exclusively
// to Class ... elements").
func (c *Class) Apply(st *Stereotype) (*StereotypeApplication, error) {
	if st == nil {
		return nil, fmt.Errorf("uml: class %s: nil stereotype", c.name)
	}
	if st.IsAbstract() {
		return nil, fmt.Errorf("uml: class %s: cannot apply abstract stereotype %s", c.name, st.Name())
	}
	if ext := st.Extends(); ext != MetaclassClass {
		return nil, fmt.Errorf("uml: class %s: stereotype %s extends %s, not Class", c.name, st.Name(), ext)
	}
	for _, app := range c.applications {
		if app.stereotype == st {
			return nil, fmt.Errorf("uml: class %s: stereotype %s already applied", c.name, st.Name())
		}
	}
	app := newApplication(st)
	c.applications = append(c.applications, app)
	return app, nil
}

// Applications returns the stereotype applications in application order.
func (c *Class) Applications() []*StereotypeApplication {
	out := make([]*StereotypeApplication, len(c.applications))
	copy(out, c.applications)
	return out
}

// Application returns the application of the named stereotype, if present.
// The name matches the applied stereotype or any of its ancestors, so
// Application("Component") finds a class stereotyped <<Device>> when Device
// specialises Component.
func (c *Class) Application(name string) (*StereotypeApplication, bool) {
	for _, app := range c.applications {
		if app.stereotype.IsKindOf(name) {
			return app, true
		}
	}
	return nil, false
}

// HasStereotype reports whether the class is stereotyped by name (directly
// or via a specialisation).
func (c *Class) HasStereotype(name string) bool {
	_, ok := c.Application(name)
	return ok
}

// StereotypeNames returns the applied stereotype names in application order,
// as they would appear in guillemets above the class name.
func (c *Class) StereotypeNames() []string {
	out := make([]string, 0, len(c.applications))
	for _, app := range c.applications {
		out = append(out, app.stereotype.Name())
	}
	return out
}

// SetProperty assigns a static owned property of the class (in addition to
// stereotype attributes). Properties are class-level by construction.
func (c *Class) SetProperty(name string, v Value) error {
	if name == "" {
		return fmt.Errorf("uml: class %s: empty property name", c.name)
	}
	if v.IsZero() {
		return fmt.Errorf("uml: class %s: property %s: absent value", c.name, name)
	}
	if _, exists := c.properties[name]; !exists {
		c.propOrder = append(c.propOrder, name)
	}
	c.properties[name] = v
	return nil
}

// Property returns a static attribute value of the class. Owned properties
// take precedence; otherwise every stereotype application is consulted, in
// application order. This is the single lookup path used by dependability
// analysis to read MTBF/MTTR etc., both on classes and (transitively) on
// instance specifications.
func (c *Class) Property(name string) (Value, bool) {
	if v, ok := c.properties[name]; ok {
		return v, true
	}
	for _, app := range c.applications {
		if v, ok := app.Get(name); ok {
			return v, true
		}
	}
	return Value{}, false
}

// PropertyNames returns the names of all available static attributes (owned
// properties first, then stereotype attributes), deduplicated, sorted.
func (c *Class) PropertyNames() []string {
	seen := make(map[string]bool)
	var names []string
	add := func(n string) {
		if !seen[n] {
			seen[n] = true
			names = append(names, n)
		}
	}
	for _, n := range c.propOrder {
		add(n)
	}
	for _, app := range c.applications {
		for _, def := range app.stereotype.AllAttributes() {
			add(def.Name)
		}
	}
	sort.Strings(names)
	return names
}

// String renders the class header as it appears in a diagram, e.g.
// "<<component;switch>> C6500".
func (c *Class) String() string {
	if len(c.applications) == 0 {
		return c.name
	}
	return "<<" + strings.Join(c.StereotypeNames(), ";") + ">> " + c.name
}

// Association is a UML association between two classes; with the Connector
// and Communication stereotypes applied it models a possible communication
// link between two device types. Following the paper (Figure 1), every
// Connector joins exactly two Devices.
type Association struct {
	name         string
	model        *Model
	endA, endB   *Class
	applications []*StereotypeApplication
}

// Name returns the association name.
func (a *Association) Name() string { return a.name }

// Ends returns the two member-end classes of the association.
func (a *Association) Ends() (*Class, *Class) { return a.endA, a.endB }

// Joins reports whether the association joins the two given classes, in
// either orientation.
func (a *Association) Joins(x, y *Class) bool {
	return (a.endA == x && a.endB == y) || (a.endA == y && a.endB == x)
}

// Apply applies a stereotype to the association. Only concrete stereotypes
// extending the Association metaclass are accepted (Figure 6: Connector;
// Figure 7: Communication).
func (a *Association) Apply(st *Stereotype) (*StereotypeApplication, error) {
	if st == nil {
		return nil, fmt.Errorf("uml: association %s: nil stereotype", a.name)
	}
	if st.IsAbstract() {
		return nil, fmt.Errorf("uml: association %s: cannot apply abstract stereotype %s", a.name, st.Name())
	}
	if ext := st.Extends(); ext != MetaclassAssociation {
		return nil, fmt.Errorf("uml: association %s: stereotype %s extends %s, not Association",
			a.name, st.Name(), ext)
	}
	for _, app := range a.applications {
		if app.stereotype == st {
			return nil, fmt.Errorf("uml: association %s: stereotype %s already applied", a.name, st.Name())
		}
	}
	app := newApplication(st)
	a.applications = append(a.applications, app)
	return app, nil
}

// Applications returns the stereotype applications in application order.
func (a *Association) Applications() []*StereotypeApplication {
	out := make([]*StereotypeApplication, len(a.applications))
	copy(out, a.applications)
	return out
}

// Application returns the application of the named stereotype (or a
// specialisation of it), if present.
func (a *Association) Application(name string) (*StereotypeApplication, bool) {
	for _, app := range a.applications {
		if app.stereotype.IsKindOf(name) {
			return app, true
		}
	}
	return nil, false
}

// HasStereotype reports whether the association carries the named stereotype.
func (a *Association) HasStereotype(name string) bool {
	_, ok := a.Application(name)
	return ok
}

// Property returns a static attribute contributed by a stereotype
// application, e.g. MTBF of a <<Connector>> association.
func (a *Association) Property(name string) (Value, bool) {
	for _, app := range a.applications {
		if v, ok := app.Get(name); ok {
			return v, true
		}
	}
	return Value{}, false
}

// StereotypeNames returns the applied stereotype names in application order.
func (a *Association) StereotypeNames() []string {
	out := make([]string, 0, len(a.applications))
	for _, app := range a.applications {
		out = append(out, app.stereotype.Name())
	}
	return out
}

// String renders the association, e.g. "<<communication;connector>> Comp-HP2650".
func (a *Association) String() string {
	hdr := a.name
	if len(a.applications) > 0 {
		hdr = "<<" + strings.Join(a.StereotypeNames(), ";") + ">> " + a.name
	}
	return hdr
}
