package uml

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// randomModel builds a structurally random but well-formed model from a
// seeded RNG: a profile with random attributes, classes with random
// stereotype values, associations over random class pairs, an object
// diagram with random instances and association-respecting links, and a
// random sequential activity.
func randomModel(rng *rand.Rand) (*Model, error) {
	m := NewModel(fmt.Sprintf("rand%d", rng.Intn(1000)))
	p := NewProfile("prof")
	comp, err := p.DefineAbstractStereotype("Base", MetaclassNone)
	if err != nil {
		return nil, err
	}
	kinds := []ValueKind{KindString, KindReal, KindInteger, KindBoolean}
	nAttrs := 1 + rng.Intn(4)
	for i := 0; i < nAttrs; i++ {
		if err := comp.AddAttribute(fmt.Sprintf("attr%d", i), kinds[rng.Intn(len(kinds))]); err != nil {
			return nil, err
		}
	}
	dev, err := p.DefineSubStereotype("Dev", MetaclassClass, comp)
	if err != nil {
		return nil, err
	}
	conn, err := p.DefineSubStereotype("Conn", MetaclassAssociation, comp)
	if err != nil {
		return nil, err
	}
	if err := m.AddProfile(p); err != nil {
		return nil, err
	}

	randValue := func(k ValueKind) Value {
		switch k {
		case KindString:
			return StringValue(fmt.Sprintf("s%d", rng.Intn(100)))
		case KindReal:
			return RealValue(float64(rng.Intn(10000)) / 8)
		case KindInteger:
			return IntegerValue(int64(rng.Intn(1 << 20)))
		default:
			return BooleanValue(rng.Intn(2) == 0)
		}
	}

	nClasses := 1 + rng.Intn(5)
	classes := make([]*Class, 0, nClasses)
	for i := 0; i < nClasses; i++ {
		c, err := m.AddClass(fmt.Sprintf("C%d", i))
		if err != nil {
			return nil, err
		}
		app, err := c.Apply(dev)
		if err != nil {
			return nil, err
		}
		for _, def := range dev.AllAttributes() {
			if err := app.Set(def.Name, randValue(def.Kind)); err != nil {
				return nil, err
			}
		}
		if rng.Intn(2) == 0 {
			if err := c.SetProperty("owned", randValue(kinds[rng.Intn(len(kinds))])); err != nil {
				return nil, err
			}
		}
		classes = append(classes, c)
	}

	nAssocs := rng.Intn(2 * nClasses)
	assocs := make([]*Association, 0, nAssocs)
	for i := 0; i < nAssocs; i++ {
		a, err := m.AddAssociation(fmt.Sprintf("A%d", i),
			classes[rng.Intn(nClasses)], classes[rng.Intn(nClasses)])
		if err != nil {
			return nil, err
		}
		app, err := a.Apply(conn)
		if err != nil {
			return nil, err
		}
		for _, def := range conn.AllAttributes() {
			if err := app.Set(def.Name, randValue(def.Kind)); err != nil {
				return nil, err
			}
		}
		assocs = append(assocs, a)
	}

	d := m.NewObjectDiagram("diag")
	nInst := rng.Intn(8)
	insts := make([]*InstanceSpecification, 0, nInst)
	for i := 0; i < nInst; i++ {
		inst, err := d.AddInstance(fmt.Sprintf("i%d", i), classes[rng.Intn(nClasses)])
		if err != nil {
			return nil, err
		}
		insts = append(insts, inst)
	}
	for tries := 0; tries < 3*len(insts); tries++ {
		if len(insts) < 2 {
			break
		}
		a := insts[rng.Intn(len(insts))]
		b := insts[rng.Intn(len(insts))]
		if a == b {
			continue
		}
		as, ok := m.AssociationBetween(a.Classifier(), b.Classifier())
		if !ok {
			continue
		}
		// Duplicate links over the same pair are rejected; ignore.
		_, _ = d.Connect(a, b, as)
	}

	act, err := m.NewActivity("svc")
	if err != nil {
		return nil, err
	}
	prev := act.Initial()
	for i := 0; i < 1+rng.Intn(5); i++ {
		n, err := act.AddAction(fmt.Sprintf("step%d", i))
		if err != nil {
			return nil, err
		}
		if err := act.Flow(prev, n); err != nil {
			return nil, err
		}
		prev = n
	}
	if err := act.Flow(prev, act.AddFinal()); err != nil {
		return nil, err
	}
	return m, nil
}

// TestXMIRoundTripRandomModels: every random well-formed model survives the
// encode/decode round trip with identical re-encoding, and decoded models
// validate.
func TestXMIRoundTripRandomModels(t *testing.T) {
	rng := rand.New(rand.NewSource(20130527)) // the paper's IPDPS year+month
	for trial := 0; trial < 60; trial++ {
		m, err := randomModel(rng)
		if err != nil {
			t.Fatalf("trial %d: build: %v", trial, err)
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("trial %d: source invalid: %v", trial, err)
		}
		var b1 bytes.Buffer
		if err := Encode(&b1, m); err != nil {
			t.Fatalf("trial %d: encode: %v", trial, err)
		}
		m2, err := Decode(bytes.NewReader(b1.Bytes()))
		if err != nil {
			t.Fatalf("trial %d: decode: %v\n%s", trial, err, b1.String())
		}
		if err := m2.Validate(); err != nil {
			t.Fatalf("trial %d: decoded model invalid: %v", trial, err)
		}
		var b2 bytes.Buffer
		if err := Encode(&b2, m2); err != nil {
			t.Fatalf("trial %d: re-encode: %v", trial, err)
		}
		if b1.String() != b2.String() {
			t.Fatalf("trial %d: round trip not stable", trial)
		}
		// Structural spot checks.
		if len(m2.Classes()) != len(m.Classes()) ||
			len(m2.Associations()) != len(m.Associations()) ||
			len(m2.Activities()) != len(m.Activities()) {
			t.Fatalf("trial %d: counts differ", trial)
		}
		d1, _ := m.Diagram("diag")
		d2, _ := m2.Diagram("diag")
		if d1.NumInstances() != d2.NumInstances() || d1.NumLinks() != d2.NumLinks() {
			t.Fatalf("trial %d: diagram differs: %d/%d vs %d/%d", trial,
				d1.NumInstances(), d1.NumLinks(), d2.NumInstances(), d2.NumLinks())
		}
		// Every class property survives by value.
		for _, c := range m.Classes() {
			c2, ok := m2.Class(c.Name())
			if !ok {
				t.Fatalf("trial %d: class %s lost", trial, c.Name())
			}
			for _, pn := range c.PropertyNames() {
				v1, _ := c.Property(pn)
				v2, ok := c2.Property(pn)
				if !ok || !v1.Equal(v2) {
					t.Fatalf("trial %d: class %s property %s: %v vs %v", trial, c.Name(), pn, v1, v2)
				}
			}
		}
	}
}
