package uml

import (
	"encoding/xml"
	"fmt"
	"io"
)

// This file implements an XMI-like XML serialisation of UML models so that
// infrastructure, profiles and service descriptions can be stored in files
// and re-imported, mirroring the .uml resources exchanged between Papyrus
// and VIATRA2 in the paper's tool chain. The dialect is self-describing and
// round-trip safe: Decode(Encode(m)) reconstructs an equivalent model.

type xmiModel struct {
	XMLName    xml.Name      `xml:"uml.Model"`
	Name       string        `xml:"name,attr"`
	Profiles   []xmiProfile  `xml:"profile"`
	Classes    []xmiClass    `xml:"class"`
	Assocs     []xmiAssoc    `xml:"association"`
	Diagrams   []xmiDiagram  `xml:"objectDiagram"`
	Activities []xmiActivity `xml:"activity"`
}

type xmiProfile struct {
	Name        string          `xml:"name,attr"`
	Stereotypes []xmiStereotype `xml:"stereotype"`
}

type xmiStereotype struct {
	Name       string         `xml:"name,attr"`
	Extends    string         `xml:"extends,attr,omitempty"`
	Abstract   bool           `xml:"abstract,attr,omitempty"`
	Parent     string         `xml:"parent,attr,omitempty"`
	Attributes []xmiAttribute `xml:"attribute"`
}

type xmiAttribute struct {
	Name    string `xml:"name,attr"`
	Type    string `xml:"type,attr"`
	Default string `xml:"default,attr,omitempty"`
	HasDef  bool   `xml:"hasDefault,attr,omitempty"`
}

type xmiApply struct {
	Stereotype string     `xml:"stereotype,attr"`
	Values     []xmiValue `xml:"value"`
}

type xmiValue struct {
	Attribute string `xml:"attribute,attr"`
	Value     string `xml:",chardata"`
}

type xmiProperty struct {
	Name  string `xml:"name,attr"`
	Type  string `xml:"type,attr"`
	Value string `xml:",chardata"`
}

type xmiClass struct {
	Name       string        `xml:"name,attr"`
	Applies    []xmiApply    `xml:"apply"`
	Properties []xmiProperty `xml:"property"`
}

type xmiAssoc struct {
	Name    string     `xml:"name,attr"`
	EndA    string     `xml:"endA,attr"`
	EndB    string     `xml:"endB,attr"`
	Applies []xmiApply `xml:"apply"`
}

type xmiDiagram struct {
	Name      string        `xml:"name,attr"`
	Instances []xmiInstance `xml:"instance"`
	Links     []xmiLink     `xml:"link"`
}

type xmiInstance struct {
	Name  string `xml:"name,attr"`
	Class string `xml:"class,attr"`
}

type xmiLink struct {
	A     string `xml:"a,attr"`
	B     string `xml:"b,attr"`
	Assoc string `xml:"association,attr"`
}

type xmiActivity struct {
	Name  string    `xml:"name,attr"`
	Nodes []xmiNode `xml:"node"`
	Flows []xmiFlow `xml:"flow"`
}

type xmiNode struct {
	ID   int    `xml:"id,attr"`
	Kind string `xml:"kind,attr"`
	Name string `xml:"name,attr,omitempty"`
}

type xmiFlow struct {
	Src int `xml:"src,attr"`
	Dst int `xml:"dst,attr"`
}

// Encode writes the model to w as indented XML.
func Encode(w io.Writer, m *Model) error {
	x := xmiModel{Name: m.Name()}
	for _, p := range m.Profiles() {
		xp := xmiProfile{Name: p.Name()}
		for _, st := range p.Stereotypes() {
			xs := xmiStereotype{
				Name:     st.Name(),
				Abstract: st.IsAbstract(),
			}
			if st.extends != MetaclassNone {
				xs.Extends = st.extends.String()
			}
			if st.Parent() != nil {
				xs.Parent = st.Parent().Name()
			}
			for _, def := range st.OwnAttributes() {
				xa := xmiAttribute{Name: def.Name, Type: def.Kind.String()}
				if !def.Default.IsZero() {
					xa.Default = def.Default.String()
					xa.HasDef = true
				}
				xs.Attributes = append(xs.Attributes, xa)
			}
			xp.Stereotypes = append(xp.Stereotypes, xs)
		}
		x.Profiles = append(x.Profiles, xp)
	}
	for _, c := range m.Classes() {
		xc := xmiClass{Name: c.Name()}
		for _, app := range c.Applications() {
			xc.Applies = append(xc.Applies, encodeApply(app))
		}
		for _, pn := range c.propOrder {
			v := c.properties[pn]
			xc.Properties = append(xc.Properties, xmiProperty{
				Name: pn, Type: v.Kind().String(), Value: v.String(),
			})
		}
		x.Classes = append(x.Classes, xc)
	}
	for _, a := range m.Associations() {
		ea, eb := a.Ends()
		xa := xmiAssoc{Name: a.Name(), EndA: ea.Name(), EndB: eb.Name()}
		for _, app := range a.Applications() {
			xa.Applies = append(xa.Applies, encodeApply(app))
		}
		x.Assocs = append(x.Assocs, xa)
	}
	for _, d := range m.Diagrams() {
		xd := xmiDiagram{Name: d.Name()}
		for _, i := range d.Instances() {
			xd.Instances = append(xd.Instances, xmiInstance{Name: i.Name(), Class: i.Classifier().Name()})
		}
		for _, l := range d.Links() {
			ia, ib := l.Ends()
			xd.Links = append(xd.Links, xmiLink{A: ia.Name(), B: ib.Name(), Assoc: l.Association().Name()})
		}
		x.Diagrams = append(x.Diagrams, xd)
	}
	for _, act := range m.Activities() {
		xact := xmiActivity{Name: act.Name()}
		ids := make(map[*ActivityNode]int, len(act.nodes))
		for i, n := range act.Nodes() {
			ids[n] = i
			xact.Nodes = append(xact.Nodes, xmiNode{ID: i, Kind: n.Kind().String(), Name: n.Name()})
		}
		for _, n := range act.Nodes() {
			for _, t := range n.Outgoing() {
				xact.Flows = append(xact.Flows, xmiFlow{Src: ids[n], Dst: ids[t]})
			}
		}
		x.Activities = append(x.Activities, xact)
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(x); err != nil {
		return fmt.Errorf("uml: encode: %w", err)
	}
	return enc.Flush()
}

func encodeApply(app *StereotypeApplication) xmiApply {
	xa := xmiApply{Stereotype: app.Stereotype().Name()}
	for _, name := range app.SetValues() {
		v, _ := app.Get(name)
		xa.Values = append(xa.Values, xmiValue{Attribute: name, Value: v.String()})
	}
	return xa
}

// Decode reads a model from r.
func Decode(r io.Reader) (*Model, error) {
	var x xmiModel
	if err := xml.NewDecoder(r).Decode(&x); err != nil {
		return nil, fmt.Errorf("uml: decode: %w", err)
	}
	m := NewModel(x.Name)
	for _, xp := range x.Profiles {
		p := NewProfile(xp.Name)
		for _, xs := range xp.Stereotypes {
			ext, err := ParseMetaclass(xs.Extends)
			if err != nil {
				return nil, err
			}
			var st *Stereotype
			if xs.Parent != "" {
				parent, ok := p.Stereotype(xs.Parent)
				if !ok {
					return nil, fmt.Errorf("uml: decode: profile %s: stereotype %s: unknown parent %s (parents must be declared first)",
						xp.Name, xs.Name, xs.Parent)
				}
				if xs.Abstract {
					st, err = p.DefineAbstractSubStereotype(xs.Name, ext, parent)
				} else {
					st, err = p.DefineSubStereotype(xs.Name, ext, parent)
				}
			} else if xs.Abstract {
				st, err = p.DefineAbstractStereotype(xs.Name, ext)
			} else {
				st, err = p.DefineStereotype(xs.Name, ext)
			}
			if err != nil {
				return nil, err
			}
			for _, xa := range xs.Attributes {
				kind, err := ParseValueKind(xa.Type)
				if err != nil {
					return nil, err
				}
				var def Value
				if xa.HasDef {
					def, err = ParseValue(kind, xa.Default)
					if err != nil {
						return nil, err
					}
				}
				if err := st.AddAttributeDefault(xa.Name, kind, def); err != nil {
					return nil, err
				}
			}
		}
		if err := m.AddProfile(p); err != nil {
			return nil, err
		}
	}
	for _, xc := range x.Classes {
		c, err := m.AddClass(xc.Name)
		if err != nil {
			return nil, err
		}
		for _, xa := range xc.Applies {
			if err := decodeApply(m, xa, func(st *Stereotype) (*StereotypeApplication, error) {
				return c.Apply(st)
			}); err != nil {
				return nil, err
			}
		}
		for _, xp := range xc.Properties {
			kind, err := ParseValueKind(xp.Type)
			if err != nil {
				return nil, err
			}
			v, err := ParseValue(kind, xp.Value)
			if err != nil {
				return nil, err
			}
			if err := c.SetProperty(xp.Name, v); err != nil {
				return nil, err
			}
		}
	}
	for _, xa := range x.Assocs {
		ea, ok := m.Class(xa.EndA)
		if !ok {
			return nil, fmt.Errorf("uml: decode: association %s: unknown class %s", xa.Name, xa.EndA)
		}
		eb, ok := m.Class(xa.EndB)
		if !ok {
			return nil, fmt.Errorf("uml: decode: association %s: unknown class %s", xa.Name, xa.EndB)
		}
		a, err := m.AddAssociation(xa.Name, ea, eb)
		if err != nil {
			return nil, err
		}
		for _, xap := range xa.Applies {
			if err := decodeApply(m, xap, func(st *Stereotype) (*StereotypeApplication, error) {
				return a.Apply(st)
			}); err != nil {
				return nil, err
			}
		}
	}
	for _, xd := range x.Diagrams {
		d := m.NewObjectDiagram(xd.Name)
		for _, xi := range xd.Instances {
			c, ok := m.Class(xi.Class)
			if !ok {
				return nil, fmt.Errorf("uml: decode: diagram %s: instance %s: unknown class %s",
					xd.Name, xi.Name, xi.Class)
			}
			if _, err := d.AddInstance(xi.Name, c); err != nil {
				return nil, err
			}
		}
		for _, xl := range xd.Links {
			a, ok := m.Association(xl.Assoc)
			if !ok {
				return nil, fmt.Errorf("uml: decode: diagram %s: link %s--%s: unknown association %s",
					xd.Name, xl.A, xl.B, xl.Assoc)
			}
			if _, err := d.ConnectByName(xl.A, xl.B, a); err != nil {
				return nil, err
			}
		}
	}
	for _, xact := range x.Activities {
		act, err := m.NewActivity(xact.Name)
		if err != nil {
			return nil, err
		}
		nodes := make(map[int]*ActivityNode, len(xact.Nodes))
		for _, xn := range xact.Nodes {
			var n *ActivityNode
			switch xn.Kind {
			case "Initial":
				n = act.Initial()
			case "Final":
				n = act.AddFinal()
			case "Fork":
				n = act.AddFork()
			case "Join":
				n = act.AddJoin()
			case "Action":
				n, err = act.AddAction(xn.Name)
				if err != nil {
					return nil, err
				}
			default:
				return nil, fmt.Errorf("uml: decode: activity %s: unknown node kind %q", xact.Name, xn.Kind)
			}
			if _, dup := nodes[xn.ID]; dup {
				return nil, fmt.Errorf("uml: decode: activity %s: duplicate node id %d", xact.Name, xn.ID)
			}
			nodes[xn.ID] = n
		}
		for _, xf := range xact.Flows {
			src, ok := nodes[xf.Src]
			if !ok {
				return nil, fmt.Errorf("uml: decode: activity %s: flow from unknown node %d", xact.Name, xf.Src)
			}
			dst, ok := nodes[xf.Dst]
			if !ok {
				return nil, fmt.Errorf("uml: decode: activity %s: flow to unknown node %d", xact.Name, xf.Dst)
			}
			if err := act.Flow(src, dst); err != nil {
				return nil, err
			}
		}
	}
	return m, nil
}

func decodeApply(m *Model, xa xmiApply, apply func(*Stereotype) (*StereotypeApplication, error)) error {
	st, ok := m.FindStereotype(xa.Stereotype)
	if !ok {
		return fmt.Errorf("uml: decode: unknown stereotype %s", xa.Stereotype)
	}
	app, err := apply(st)
	if err != nil {
		return err
	}
	for _, xv := range xa.Values {
		def, ok := st.Attribute(xv.Attribute)
		if !ok {
			return fmt.Errorf("uml: decode: stereotype %s has no attribute %s", st.Name(), xv.Attribute)
		}
		v, err := ParseValue(def.Kind, xv.Value)
		if err != nil {
			return err
		}
		if err := app.Set(xv.Attribute, v); err != nil {
			return err
		}
	}
	return nil
}
