package uml

import (
	"errors"
	"fmt"
)

// ValidationIssue describes a single well-formedness violation found by
// Validate, with enough context to locate the offending element.
type ValidationIssue struct {
	Element string // element kind and name, e.g. `class "C6500"`
	Problem string
}

// Error implements the error interface.
func (v ValidationIssue) Error() string { return v.Element + ": " + v.Problem }

// ValidationError aggregates all issues found in one Validate pass so that
// callers can report every problem at once instead of fixing them one by
// one.
type ValidationError struct {
	Issues []ValidationIssue
}

// Error implements the error interface.
func (e *ValidationError) Error() string {
	if len(e.Issues) == 1 {
		return "uml: invalid model: " + e.Issues[0].Error()
	}
	return fmt.Sprintf("uml: invalid model: %d issues, first: %s", len(e.Issues), e.Issues[0].Error())
}

// AsValidationError extracts a *ValidationError from err, if present.
func AsValidationError(err error) (*ValidationError, bool) {
	var ve *ValidationError
	if errors.As(err, &ve) {
		return ve, true
	}
	return nil, false
}

// Validate checks the model-level well-formedness rules the methodology
// depends on:
//
//   - every class used by an object diagram belongs to the model (enforced
//     structurally) and classes that represent devices carry the
//     availability attributes the profile demands,
//   - every association joins two classes of the model (structural),
//   - any class or association stereotyped as a Component (availability
//     profile, Figure 6) must have values for all Component attributes, so
//     that "a subsequent service dependability analysis will find specific
//     required properties for every element" (Section V-E),
//   - all activity diagrams are well-formed (see Activity.Validate).
//
// Validate returns a *ValidationError listing every violation, or nil.
func (m *Model) Validate() error {
	var issues []ValidationIssue
	add := func(elem, format string, args ...any) {
		issues = append(issues, ValidationIssue{Element: elem, Problem: fmt.Sprintf(format, args...)})
	}

	for _, c := range m.Classes() {
		for _, app := range c.Applications() {
			for _, def := range app.Stereotype().AllAttributes() {
				if _, ok := app.Get(def.Name); !ok {
					add(fmt.Sprintf("class %q", c.Name()),
						"stereotype %s attribute %s has no value", app.Stereotype().Name(), def.Name)
				}
			}
		}
	}
	for _, a := range m.Associations() {
		for _, app := range a.Applications() {
			for _, def := range app.Stereotype().AllAttributes() {
				if _, ok := app.Get(def.Name); !ok {
					add(fmt.Sprintf("association %q", a.Name()),
						"stereotype %s attribute %s has no value", app.Stereotype().Name(), def.Name)
				}
			}
		}
	}
	for _, act := range m.Activities() {
		if err := act.Validate(); err != nil {
			add(fmt.Sprintf("activity %q", act.Name()), "%v", err)
		}
	}
	if len(issues) > 0 {
		return &ValidationError{Issues: issues}
	}
	return nil
}
