package uml

import (
	"strings"
	"testing"
)

// testModel builds a small model with the availability profile, two device
// classes, one connector association and no instances.
func testModel(t *testing.T) (*Model, *Class, *Class, *Association) {
	t.Helper()
	m := NewModel("test")
	p, dev, conn := buildAvailabilityProfile(t)
	if err := m.AddProfile(p); err != nil {
		t.Fatal(err)
	}
	comp, err := m.AddClass("Comp")
	if err != nil {
		t.Fatal(err)
	}
	app, err := comp.Apply(dev)
	if err != nil {
		t.Fatal(err)
	}
	for _, kv := range []struct {
		k string
		v Value
	}{
		{"MTBF", RealValue(3000)},
		{"MTTR", RealValue(24.0)},
		{"redundantComponents", IntegerValue(0)},
	} {
		if err := app.Set(kv.k, kv.v); err != nil {
			t.Fatal(err)
		}
	}
	sw, err := m.AddClass("C6500")
	if err != nil {
		t.Fatal(err)
	}
	app2, err := sw.Apply(dev)
	if err != nil {
		t.Fatal(err)
	}
	if err := app2.Set("MTBF", RealValue(183498)); err != nil {
		t.Fatal(err)
	}
	if err := app2.Set("MTTR", RealValue(0.5)); err != nil {
		t.Fatal(err)
	}
	if err := app2.Set("redundantComponents", IntegerValue(0)); err != nil {
		t.Fatal(err)
	}
	a, err := m.AddAssociation("Comp-C6500", comp, sw)
	if err != nil {
		t.Fatal(err)
	}
	capp, err := a.Apply(conn)
	if err != nil {
		t.Fatal(err)
	}
	for _, kv := range []struct {
		k string
		v Value
	}{
		{"MTBF", RealValue(1000000)},
		{"MTTR", RealValue(0.1)},
		{"redundantComponents", IntegerValue(0)},
	} {
		if err := capp.Set(kv.k, kv.v); err != nil {
			t.Fatal(err)
		}
	}
	return m, comp, sw, a
}

func TestClassStaticAttributes(t *testing.T) {
	_, comp, sw, _ := testModel(t)
	if v, ok := comp.Property("MTBF"); !ok || v.AsReal() != 3000 {
		t.Errorf("Comp MTBF = %v, %v", v, ok)
	}
	if v, ok := sw.Property("MTBF"); !ok || v.AsReal() != 183498 {
		t.Errorf("C6500 MTBF = %v, %v", v, ok)
	}
	if _, ok := comp.Property("throughput"); ok {
		t.Error("Comp should have no throughput")
	}
}

func TestClassOwnedProperties(t *testing.T) {
	_, comp, _, _ := testModel(t)
	if err := comp.SetProperty("manufacturer", StringValue("Dell")); err != nil {
		t.Fatal(err)
	}
	if v, ok := comp.Property("manufacturer"); !ok || v.AsString() != "Dell" {
		t.Errorf("manufacturer = %v, %v", v, ok)
	}
	// Owned property takes precedence over a stereotype attribute.
	if err := comp.SetProperty("MTBF", RealValue(9999)); err != nil {
		t.Fatal(err)
	}
	if v, _ := comp.Property("MTBF"); v.AsReal() != 9999 {
		t.Errorf("owned MTBF should shadow stereotype value, got %v", v)
	}
	if err := comp.SetProperty("", RealValue(1)); err == nil {
		t.Error("empty property name should fail")
	}
	if err := comp.SetProperty("x", Value{}); err == nil {
		t.Error("absent value should fail")
	}
}

func TestClassPropertyNames(t *testing.T) {
	_, comp, _, _ := testModel(t)
	names := comp.PropertyNames()
	want := []string{"MTBF", "MTTR", "redundantComponents"}
	if len(names) != len(want) {
		t.Fatalf("PropertyNames = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("PropertyNames[%d] = %s, want %s", i, names[i], want[i])
		}
	}
}

func TestClassApplyConstraints(t *testing.T) {
	m, comp, _, _ := testModel(t)
	p, _ := m.Profile("availability")
	compSt, _ := p.Stereotype("Component")
	connSt, _ := p.Stereotype("Connector")
	devSt, _ := p.Stereotype("Device")
	if _, err := comp.Apply(compSt); err == nil {
		t.Error("abstract stereotype must not be applicable")
	}
	if _, err := comp.Apply(connSt); err == nil {
		t.Error("association stereotype must not apply to a class")
	}
	if _, err := comp.Apply(devSt); err == nil {
		t.Error("double application must fail")
	}
	if _, err := comp.Apply(nil); err == nil {
		t.Error("nil stereotype must fail")
	}
}

func TestClassStereotypeLookup(t *testing.T) {
	_, comp, _, _ := testModel(t)
	if !comp.HasStereotype("Device") {
		t.Error("Comp must be <<Device>>")
	}
	// Lookup through the generalisation chain: Device is a Component.
	if !comp.HasStereotype("Component") {
		t.Error("Comp must be kind of <<Component>>")
	}
	if comp.HasStereotype("Connector") {
		t.Error("Comp is not a Connector")
	}
	if got := comp.StereotypeNames(); len(got) != 1 || got[0] != "Device" {
		t.Errorf("StereotypeNames = %v", got)
	}
	if s := comp.String(); !strings.Contains(s, "<<Device>>") || !strings.Contains(s, "Comp") {
		t.Errorf("String = %q", s)
	}
}

func TestAssociationBasics(t *testing.T) {
	m, comp, sw, a := testModel(t)
	ea, eb := a.Ends()
	if ea != comp || eb != sw {
		t.Error("Ends mismatch")
	}
	if !a.Joins(comp, sw) || !a.Joins(sw, comp) {
		t.Error("Joins must be orientation independent")
	}
	other, _ := m.AddClass("Other")
	if a.Joins(comp, other) {
		t.Error("Joins(comp, other) must be false")
	}
	if v, ok := a.Property("MTBF"); !ok || v.AsReal() != 1000000 {
		t.Errorf("connector MTBF = %v, %v", v, ok)
	}
	if !a.HasStereotype("Connector") || !a.HasStereotype("Component") {
		t.Error("association must be <<Connector>> and kind of Component")
	}
	if s := a.String(); !strings.Contains(s, "Connector") {
		t.Errorf("String = %q", s)
	}
}

func TestAssociationApplyConstraints(t *testing.T) {
	m, _, _, a := testModel(t)
	p, _ := m.Profile("availability")
	devSt, _ := p.Stereotype("Device")
	connSt, _ := p.Stereotype("Connector")
	compSt, _ := p.Stereotype("Component")
	if _, err := a.Apply(devSt); err == nil {
		t.Error("class stereotype must not apply to an association")
	}
	if _, err := a.Apply(compSt); err == nil {
		t.Error("abstract stereotype must not be applicable")
	}
	if _, err := a.Apply(connSt); err == nil {
		t.Error("double application must fail")
	}
	if _, err := a.Apply(nil); err == nil {
		t.Error("nil stereotype must fail")
	}
}

func TestModelLookups(t *testing.T) {
	m, comp, sw, a := testModel(t)
	if c, ok := m.Class("Comp"); !ok || c != comp {
		t.Error("Class lookup failed")
	}
	if _, ok := m.Class("nope"); ok {
		t.Error("unknown class should be absent")
	}
	if got, ok := m.Association("Comp-C6500"); !ok || got != a {
		t.Error("Association lookup failed")
	}
	if got, ok := m.AssociationBetween(sw, comp); !ok || got != a {
		t.Error("AssociationBetween must be orientation independent")
	}
	if _, ok := m.AssociationBetween(comp, comp); ok {
		t.Error("no self association exists")
	}
	names := m.ClassNames()
	if len(names) != 2 || names[0] != "C6500" || names[1] != "Comp" {
		t.Errorf("ClassNames = %v", names)
	}
	if _, ok := m.FindStereotype("Device"); !ok {
		t.Error("FindStereotype(Device) failed")
	}
	if _, ok := m.FindStereotype("Nope"); ok {
		t.Error("FindStereotype(Nope) should be absent")
	}
}

func TestModelDuplicates(t *testing.T) {
	m, comp, sw, _ := testModel(t)
	if _, err := m.AddClass("Comp"); err == nil {
		t.Error("duplicate class should fail")
	}
	if _, err := m.AddClass(""); err == nil {
		t.Error("empty class name should fail")
	}
	if _, err := m.AddAssociation("Comp-C6500", comp, sw); err == nil {
		t.Error("duplicate association should fail")
	}
	if _, err := m.AddAssociation("", comp, sw); err == nil {
		t.Error("empty association name should fail")
	}
	if _, err := m.AddAssociation("x", nil, sw); err == nil {
		t.Error("nil end should fail")
	}
	other := NewModel("other")
	oc, _ := other.AddClass("C")
	if _, err := m.AddAssociation("y", comp, oc); err == nil {
		t.Error("cross-model association should fail")
	}
	if err := m.AddProfile(nil); err == nil {
		t.Error("nil profile should fail")
	}
	p := NewProfile("availability")
	if err := m.AddProfile(p); err == nil {
		t.Error("duplicate profile name should fail")
	}
}

func TestMustClass(t *testing.T) {
	m, comp, _, _ := testModel(t)
	if m.MustClass("Comp") != comp {
		t.Error("MustClass returned wrong class")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustClass on unknown class should panic")
		}
	}()
	m.MustClass("unknown")
}
