package uml

import (
	"fmt"
	"sort"
)

// NodeKind enumerates the activity-diagram node types the service model
// uses (Section V-A2 and Figure 2): initial and final nodes, actions (one
// per atomic service) and fork/join figures for parallel execution. Decision
// nodes are deliberately absent — the paper models separate decision
// branches as separate services.
type NodeKind uint8

const (
	// NodeInitial is the single entry node of an activity.
	NodeInitial NodeKind = iota
	// NodeFinal is an exit node of an activity.
	NodeFinal
	// NodeAction is an executable action; in the service model every
	// action invokes exactly one atomic service.
	NodeAction
	// NodeFork splits the control flow into concurrent branches.
	NodeFork
	// NodeJoin synchronises concurrent branches.
	NodeJoin
)

// String returns the node kind name.
func (k NodeKind) String() string {
	switch k {
	case NodeInitial:
		return "Initial"
	case NodeFinal:
		return "Final"
	case NodeAction:
		return "Action"
	case NodeFork:
		return "Fork"
	case NodeJoin:
		return "Join"
	}
	return fmt.Sprintf("NodeKind(%d)", uint8(k))
}

// ActivityNode is one node of an activity diagram.
type ActivityNode struct {
	kind     NodeKind
	name     string
	activity *Activity
	out      []*ActivityNode
	in       []*ActivityNode
}

// Kind returns the node kind.
func (n *ActivityNode) Kind() NodeKind { return n.kind }

// Name returns the node name. For actions this is the atomic service name.
func (n *ActivityNode) Name() string { return n.name }

// Outgoing returns the targets of the node's outgoing control flows.
func (n *ActivityNode) Outgoing() []*ActivityNode {
	out := make([]*ActivityNode, len(n.out))
	copy(out, n.out)
	return out
}

// Incoming returns the sources of the node's incoming control flows.
func (n *ActivityNode) Incoming() []*ActivityNode {
	in := make([]*ActivityNode, len(n.in))
	copy(in, n.in)
	return in
}

// String renders the node, e.g. "Action(Request printing)".
func (n *ActivityNode) String() string {
	if n.name != "" {
		return fmt.Sprintf("%s(%s)", n.kind, n.name)
	}
	return n.kind.String()
}

// Activity is a UML activity diagram describing a composite service as a
// flow of actions. It is assumed that each action is executed — in series or
// in parallel (Section V-A2).
type Activity struct {
	name    string
	model   *Model
	nodes   []*ActivityNode
	initial *ActivityNode
	actions map[string]*ActivityNode
}

// NewActivity creates an activity diagram in the model. The single initial
// node is created implicitly.
func (m *Model) NewActivity(name string) (*Activity, error) {
	if name == "" {
		return nil, fmt.Errorf("uml: model %s: empty activity name", m.name)
	}
	if _, dup := m.activities[name]; dup {
		return nil, fmt.Errorf("uml: model %s: duplicate activity %s", m.name, name)
	}
	a := &Activity{name: name, model: m, actions: make(map[string]*ActivityNode)}
	a.initial = a.addNode(NodeInitial, "")
	m.activities[name] = a
	m.actOrder = append(m.actOrder, name)
	return a, nil
}

// Name returns the activity name (the composite service name).
func (a *Activity) Name() string { return a.name }

// Initial returns the initial node.
func (a *Activity) Initial() *ActivityNode { return a.initial }

func (a *Activity) addNode(kind NodeKind, name string) *ActivityNode {
	n := &ActivityNode{kind: kind, name: name, activity: a}
	a.nodes = append(a.nodes, n)
	return n
}

// AddAction creates an action node named after an atomic service. Action
// names are unique within the activity: the composite service invokes each
// atomic service through a distinct action.
func (a *Activity) AddAction(name string) (*ActivityNode, error) {
	if name == "" {
		return nil, fmt.Errorf("uml: activity %s: empty action name", a.name)
	}
	if _, dup := a.actions[name]; dup {
		return nil, fmt.Errorf("uml: activity %s: duplicate action %s", a.name, name)
	}
	n := a.addNode(NodeAction, name)
	a.actions[name] = n
	return n, nil
}

// AddFinal creates a final node.
func (a *Activity) AddFinal() *ActivityNode { return a.addNode(NodeFinal, "") }

// AddFork creates a fork node.
func (a *Activity) AddFork() *ActivityNode { return a.addNode(NodeFork, "") }

// AddJoin creates a join node.
func (a *Activity) AddJoin() *ActivityNode { return a.addNode(NodeJoin, "") }

// Flow adds a control flow from src to dst. Both nodes must belong to the
// activity; flows out of final nodes and into the initial node are rejected.
func (a *Activity) Flow(src, dst *ActivityNode) error {
	if src == nil || dst == nil {
		return fmt.Errorf("uml: activity %s: nil flow end", a.name)
	}
	if src.activity != a || dst.activity != a {
		return fmt.Errorf("uml: activity %s: flow across activities", a.name)
	}
	if src.kind == NodeFinal {
		return fmt.Errorf("uml: activity %s: flow out of final node", a.name)
	}
	if dst.kind == NodeInitial {
		return fmt.Errorf("uml: activity %s: flow into initial node", a.name)
	}
	if src == dst {
		return fmt.Errorf("uml: activity %s: self flow on %s", a.name, src)
	}
	for _, t := range src.out {
		if t == dst {
			return fmt.Errorf("uml: activity %s: duplicate flow %s -> %s", a.name, src, dst)
		}
	}
	src.out = append(src.out, dst)
	dst.in = append(dst.in, src)
	return nil
}

// Sequence is a convenience that chains the given nodes with control flows:
// Sequence(a,b,c) adds a->b and b->c. It is how the paper's strictly
// sequential printing service (Figure 10) is assembled.
func (a *Activity) Sequence(nodes ...*ActivityNode) error {
	for i := 0; i+1 < len(nodes); i++ {
		if err := a.Flow(nodes[i], nodes[i+1]); err != nil {
			return err
		}
	}
	return nil
}

// Nodes returns all nodes in creation order.
func (a *Activity) Nodes() []*ActivityNode {
	out := make([]*ActivityNode, len(a.nodes))
	copy(out, a.nodes)
	return out
}

// Action looks up an action node by atomic service name.
func (a *Activity) Action(name string) (*ActivityNode, bool) {
	n, ok := a.actions[name]
	return n, ok
}

// ActionNames returns the atomic service names referenced by the activity in
// node creation order (the order actions were modelled).
func (a *Activity) ActionNames() []string {
	var out []string
	for _, n := range a.nodes {
		if n.kind == NodeAction {
			out = append(out, n.name)
		}
	}
	return out
}

// Validate checks the well-formedness rules the service model relies on:
// exactly one initial node, at least one final node, every node reachable
// from the initial node, every non-final node reaching a final node, no
// cycles (all atomic services execute exactly once), matching in/out degrees
// for fork/join, and single-in/single-out actions.
func (a *Activity) Validate() error {
	finals := 0
	for _, n := range a.nodes {
		switch n.kind {
		case NodeInitial:
			if len(n.in) != 0 {
				return fmt.Errorf("uml: activity %s: initial node has incoming flows", a.name)
			}
			if len(n.out) != 1 {
				return fmt.Errorf("uml: activity %s: initial node must have exactly one outgoing flow, has %d",
					a.name, len(n.out))
			}
		case NodeFinal:
			finals++
			if len(n.in) == 0 {
				return fmt.Errorf("uml: activity %s: unreachable final node", a.name)
			}
		case NodeAction:
			if len(n.in) != 1 || len(n.out) != 1 {
				return fmt.Errorf("uml: activity %s: action %s must have one incoming and one outgoing flow (has %d/%d)",
					a.name, n.name, len(n.in), len(n.out))
			}
		case NodeFork:
			if len(n.in) != 1 {
				return fmt.Errorf("uml: activity %s: fork must have one incoming flow, has %d", a.name, len(n.in))
			}
			if len(n.out) < 2 {
				return fmt.Errorf("uml: activity %s: fork must have at least two outgoing flows, has %d",
					a.name, len(n.out))
			}
		case NodeJoin:
			if len(n.in) < 2 {
				return fmt.Errorf("uml: activity %s: join must have at least two incoming flows, has %d",
					a.name, len(n.in))
			}
			if len(n.out) != 1 {
				return fmt.Errorf("uml: activity %s: join must have one outgoing flow, has %d", a.name, len(n.out))
			}
		}
	}
	if finals == 0 {
		return fmt.Errorf("uml: activity %s: no final node", a.name)
	}
	if err := a.checkAcyclicAndConnected(); err != nil {
		return err
	}
	return nil
}

func (a *Activity) checkAcyclicAndConnected() error {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[*ActivityNode]int, len(a.nodes))
	var visit func(n *ActivityNode) error
	visit = func(n *ActivityNode) error {
		color[n] = grey
		for _, t := range n.out {
			switch color[t] {
			case grey:
				return fmt.Errorf("uml: activity %s: cycle through %s", a.name, t)
			case white:
				if err := visit(t); err != nil {
					return err
				}
			}
		}
		color[n] = black
		return nil
	}
	if err := visit(a.initial); err != nil {
		return err
	}
	for _, n := range a.nodes {
		if color[n] != black {
			return fmt.Errorf("uml: activity %s: node %s unreachable from initial node", a.name, n)
		}
	}
	// Every node must reach a final node; walk the reverse graph from finals.
	reach := make(map[*ActivityNode]bool)
	var back func(n *ActivityNode)
	back = func(n *ActivityNode) {
		if reach[n] {
			return
		}
		reach[n] = true
		for _, p := range n.in {
			back(p)
		}
	}
	for _, n := range a.nodes {
		if n.kind == NodeFinal {
			back(n)
		}
	}
	for _, n := range a.nodes {
		if !reach[n] {
			return fmt.Errorf("uml: activity %s: node %s cannot reach a final node", a.name, n)
		}
	}
	return nil
}

// Stages partitions the actions into sequential execution stages: stage i+1
// starts only after every action of stage i completed. Actions within one
// stage run in parallel (they are separated by fork/join figures). Stages is
// the execution-order view Step 7 iterates over, and the structure the
// dependability analysis uses to build series/parallel RBDs for composite
// services.
func (a *Activity) Stages() ([][]string, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	// Longest-path layering over the DAG: an action's stage is the number
	// of actions on the longest path from the initial node to it.
	depth := make(map[*ActivityNode]int, len(a.nodes))
	indeg := make(map[*ActivityNode]int, len(a.nodes))
	for _, n := range a.nodes {
		indeg[n] = len(n.in)
	}
	queue := []*ActivityNode{a.initial}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		d := depth[n]
		if n.kind == NodeAction {
			d++
		}
		for _, t := range n.out {
			if d > depth[t] {
				depth[t] = d
			}
			indeg[t]--
			if indeg[t] == 0 {
				queue = append(queue, t)
			}
		}
	}
	maxStage := 0
	for _, n := range a.nodes {
		if n.kind == NodeAction && depth[n]+1 > maxStage {
			maxStage = depth[n] + 1
		}
	}
	stages := make([][]string, maxStage)
	for _, n := range a.nodes {
		if n.kind == NodeAction {
			stages[depth[n]] = append(stages[depth[n]], n.name)
		}
	}
	for _, s := range stages {
		sort.Strings(s)
	}
	return stages, nil
}
