package uml

import (
	"fmt"
	"sort"
)

// Metaclass identifies the UML metaclass that a stereotype extends. The
// methodology only ever extends Class and Association (Figure 6: the Device
// stereotype extends Class, the Connector stereotype extends Association).
type Metaclass uint8

const (
	// MetaclassNone marks an abstract stereotype that extends nothing
	// directly; it can only be specialised, never applied (e.g. the
	// abstract Component and NetworkDevice stereotypes in Figures 6-7).
	MetaclassNone Metaclass = iota
	// MetaclassClass allows application to classes.
	MetaclassClass
	// MetaclassAssociation allows application to associations.
	MetaclassAssociation
)

// String returns the UML name of the metaclass.
func (m Metaclass) String() string {
	switch m {
	case MetaclassNone:
		return "None"
	case MetaclassClass:
		return "Class"
	case MetaclassAssociation:
		return "Association"
	}
	return fmt.Sprintf("Metaclass(%d)", uint8(m))
}

// ParseMetaclass converts a metaclass name into a Metaclass.
func ParseMetaclass(s string) (Metaclass, error) {
	switch s {
	case "Class":
		return MetaclassClass, nil
	case "Association":
		return MetaclassAssociation, nil
	case "None", "":
		return MetaclassNone, nil
	}
	return MetaclassNone, fmt.Errorf("uml: unknown metaclass %q", s)
}

// AttributeDef declares one stereotype attribute: a name, a primitive type
// and an optional default value (e.g. MTBF:Real in the availability profile).
type AttributeDef struct {
	Name    string
	Kind    ValueKind
	Default Value
}

// Stereotype specifies a new modelling element, following UML profile
// semantics: it declares attributes that every extended element inherits,
// it may specialise another stereotype (generalisation), and it may be
// abstract, in which case it only serves as a common parent.
type Stereotype struct {
	name       string
	profile    *Profile
	extends    Metaclass
	abstract   bool
	parent     *Stereotype
	attributes []AttributeDef
	attrIndex  map[string]int
}

// Name returns the stereotype name, e.g. "Component" or "Switch".
func (s *Stereotype) Name() string { return s.name }

// Profile returns the profile that owns the stereotype.
func (s *Stereotype) Profile() *Profile { return s.profile }

// Extends reports the metaclass the stereotype (or its nearest concrete
// ancestor constraint) extends.
func (s *Stereotype) Extends() Metaclass {
	for st := s; st != nil; st = st.parent {
		if st.extends != MetaclassNone {
			return st.extends
		}
	}
	return MetaclassNone
}

// IsAbstract reports whether the stereotype can be applied directly.
func (s *Stereotype) IsAbstract() bool { return s.abstract }

// Parent returns the stereotype this one specialises, or nil.
func (s *Stereotype) Parent() *Stereotype { return s.parent }

// OwnAttributes returns the attributes declared directly on this stereotype,
// in declaration order.
func (s *Stereotype) OwnAttributes() []AttributeDef {
	out := make([]AttributeDef, len(s.attributes))
	copy(out, s.attributes)
	return out
}

// AllAttributes returns the attributes of the stereotype including every
// inherited attribute, parents first, in declaration order.
func (s *Stereotype) AllAttributes() []AttributeDef {
	var chain []*Stereotype
	for st := s; st != nil; st = st.parent {
		chain = append(chain, st)
	}
	var out []AttributeDef
	for i := len(chain) - 1; i >= 0; i-- {
		out = append(out, chain[i].attributes...)
	}
	return out
}

// Attribute looks up an attribute definition by name, searching the
// generalisation chain bottom-up.
func (s *Stereotype) Attribute(name string) (AttributeDef, bool) {
	for st := s; st != nil; st = st.parent {
		if i, ok := st.attrIndex[name]; ok {
			return st.attributes[i], true
		}
	}
	return AttributeDef{}, false
}

// IsKindOf reports whether the stereotype is the named stereotype or
// specialises it (transitively).
func (s *Stereotype) IsKindOf(name string) bool {
	for st := s; st != nil; st = st.parent {
		if st.name == name {
			return true
		}
	}
	return false
}

// AddAttribute declares an attribute on the stereotype. Declaring a name
// that already exists anywhere on the generalisation chain is an error, so
// that inherited attributes can never be shadowed.
func (s *Stereotype) AddAttribute(name string, kind ValueKind) error {
	return s.AddAttributeDefault(name, kind, Value{})
}

// AddAttributeDefault declares an attribute with a default value. The
// default, when present, must match the declared kind.
func (s *Stereotype) AddAttributeDefault(name string, kind ValueKind, def Value) error {
	if name == "" {
		return fmt.Errorf("uml: stereotype %s: empty attribute name", s.name)
	}
	if kind == KindNone {
		return fmt.Errorf("uml: stereotype %s: attribute %s has no type", s.name, name)
	}
	if _, ok := s.Attribute(name); ok {
		return fmt.Errorf("uml: stereotype %s: duplicate attribute %s", s.name, name)
	}
	if !def.IsZero() && def.Kind() != kind {
		return fmt.Errorf("uml: stereotype %s: attribute %s default is %s, want %s",
			s.name, name, def.Kind(), kind)
	}
	s.attributes = append(s.attributes, AttributeDef{Name: name, Kind: kind, Default: def})
	s.attrIndex[name] = len(s.attributes) - 1
	return nil
}

// Profile groups a coherent set of stereotypes, mirroring a UML profile such
// as the availability profile of Figure 6 or the network profile of Figure 7.
type Profile struct {
	name        string
	stereotypes map[string]*Stereotype
	order       []string
}

// NewProfile creates an empty profile with the given name.
func NewProfile(name string) *Profile {
	return &Profile{name: name, stereotypes: make(map[string]*Stereotype)}
}

// Name returns the profile name.
func (p *Profile) Name() string { return p.name }

// DefineStereotype adds a concrete stereotype extending the given metaclass.
func (p *Profile) DefineStereotype(name string, extends Metaclass) (*Stereotype, error) {
	return p.define(name, extends, false, nil)
}

// DefineAbstractStereotype adds an abstract stereotype. It may extend a
// metaclass (constraining all its children) or none.
func (p *Profile) DefineAbstractStereotype(name string, extends Metaclass) (*Stereotype, error) {
	return p.define(name, extends, true, nil)
}

// DefineSubStereotype adds a stereotype specialising parent. If extends is
// MetaclassNone the child inherits the parent's extension constraint.
func (p *Profile) DefineSubStereotype(name string, extends Metaclass, parent *Stereotype) (*Stereotype, error) {
	if parent == nil {
		return nil, fmt.Errorf("uml: profile %s: stereotype %s: nil parent", p.name, name)
	}
	if parent.profile != p {
		return nil, fmt.Errorf("uml: profile %s: stereotype %s: parent %s belongs to profile %s",
			p.name, name, parent.name, parent.profile.name)
	}
	if extends != MetaclassNone && parent.Extends() != MetaclassNone && parent.Extends() != extends {
		return nil, fmt.Errorf("uml: profile %s: stereotype %s extends %s but parent %s extends %s",
			p.name, name, extends, parent.name, parent.Extends())
	}
	return p.define(name, extends, false, parent)
}

// DefineAbstractSubStereotype adds an abstract specialisation of parent
// (e.g. Computer specialises NetworkDevice and is itself abstract).
func (p *Profile) DefineAbstractSubStereotype(name string, extends Metaclass, parent *Stereotype) (*Stereotype, error) {
	st, err := p.DefineSubStereotype(name, extends, parent)
	if err != nil {
		return nil, err
	}
	st.abstract = true
	return st, nil
}

func (p *Profile) define(name string, extends Metaclass, abstract bool, parent *Stereotype) (*Stereotype, error) {
	if name == "" {
		return nil, fmt.Errorf("uml: profile %s: empty stereotype name", p.name)
	}
	if _, dup := p.stereotypes[name]; dup {
		return nil, fmt.Errorf("uml: profile %s: duplicate stereotype %s", p.name, name)
	}
	st := &Stereotype{
		name:      name,
		profile:   p,
		extends:   extends,
		abstract:  abstract,
		parent:    parent,
		attrIndex: make(map[string]int),
	}
	p.stereotypes[name] = st
	p.order = append(p.order, name)
	return st, nil
}

// Stereotype looks up a stereotype by name.
func (p *Profile) Stereotype(name string) (*Stereotype, bool) {
	st, ok := p.stereotypes[name]
	return st, ok
}

// Stereotypes returns all stereotypes in definition order.
func (p *Profile) Stereotypes() []*Stereotype {
	out := make([]*Stereotype, 0, len(p.order))
	for _, n := range p.order {
		out = append(out, p.stereotypes[n])
	}
	return out
}

// StereotypeApplication records the application of a stereotype to a model
// element together with the values chosen for the stereotype attributes.
// Because the methodology requires classes to carry only static attributes
// (Section V-A1), applications live on classes and associations, and
// instances inherit them unmodified.
type StereotypeApplication struct {
	stereotype *Stereotype
	values     map[string]Value
}

func newApplication(st *Stereotype) *StereotypeApplication {
	app := &StereotypeApplication{stereotype: st, values: make(map[string]Value)}
	for _, def := range st.AllAttributes() {
		if !def.Default.IsZero() {
			app.values[def.Name] = def.Default
		}
	}
	return app
}

// Stereotype returns the applied stereotype.
func (a *StereotypeApplication) Stereotype() *Stereotype { return a.stereotype }

// Set assigns a value to a stereotype attribute. The attribute must be
// declared on the stereotype (or inherited) and the value must match its
// declared kind.
func (a *StereotypeApplication) Set(name string, v Value) error {
	def, ok := a.stereotype.Attribute(name)
	if !ok {
		return fmt.Errorf("uml: stereotype %s has no attribute %s", a.stereotype.name, name)
	}
	if v.Kind() != def.Kind {
		return fmt.Errorf("uml: stereotype %s attribute %s: value is %s, want %s",
			a.stereotype.name, name, v.Kind(), def.Kind)
	}
	a.values[name] = v
	return nil
}

// Get returns the value of a stereotype attribute, falling back to the
// declared default. The second result reports whether any value (explicit or
// default) exists.
func (a *StereotypeApplication) Get(name string) (Value, bool) {
	if v, ok := a.values[name]; ok {
		return v, true
	}
	if def, ok := a.stereotype.Attribute(name); ok && !def.Default.IsZero() {
		return def.Default, true
	}
	return Value{}, false
}

// SetValues returns the explicitly assigned attribute names in sorted order.
func (a *StereotypeApplication) SetValues() []string {
	names := make([]string, 0, len(a.values))
	for n := range a.values {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func (a *StereotypeApplication) clone() *StereotypeApplication {
	c := &StereotypeApplication{stereotype: a.stereotype, values: make(map[string]Value, len(a.values))}
	for k, v := range a.values {
		c.values[k] = v
	}
	return c
}
