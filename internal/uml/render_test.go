package uml

import (
	"strings"
	"testing"
)

func TestRenderClass(t *testing.T) {
	_, _, sw, _ := testModel(t)
	out := RenderClass(sw)
	for _, want := range []string{"<<Device>> C6500", "MTBF = 183498", "MTTR = 0.5"} {
		if !strings.Contains(out, want) {
			t.Errorf("RenderClass missing %q:\n%s", want, out)
		}
	}
}

func TestRenderClassDiagram(t *testing.T) {
	m, _, _, _ := testModel(t)
	out := RenderClassDiagram(m)
	for _, want := range []string{"Comp", "C6500", "Comp-C6500: Comp -- C6500"} {
		if !strings.Contains(out, want) {
			t.Errorf("diagram missing %q", want)
		}
	}
}

func TestClassDiagramDOT(t *testing.T) {
	m, _, _, _ := testModel(t)
	dot := ClassDiagramDOT(m)
	for _, want := range []string{
		"graph classes {", "shape=record", "«Device»", "MTBF = 3000",
		`"Comp" -- "C6500" [label="Comp-C6500"]`,
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
}

func TestEscapeRecord(t *testing.T) {
	got := escapeRecord(`a{b}c|d<e>f"g`)
	want := `a\{b\}c\|d\<e\>f\"g`
	if got != want {
		t.Errorf("escapeRecord = %q, want %q", got, want)
	}
}

func TestActivityDOT(t *testing.T) {
	m := NewModel("svc")
	act := buildParallelActivity(t, m)
	dot := ActivityDOT(act)
	for _, want := range []string{
		`digraph "parallel"`, "shape=circle", "doublecircle",
		`label="Atomic Service 1"`, "->",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("activity DOT missing %q:\n%s", want, dot)
		}
	}
	// Fork/join bars present.
	if strings.Count(dot, "height=0.08") != 2 {
		t.Errorf("expected 2 fork/join bars:\n%s", dot)
	}
	// Flow count: 8 edges in the Figure 2 shape.
	if strings.Count(dot, "->") != 8 {
		t.Errorf("flow edges = %d, want 8", strings.Count(dot, "->"))
	}
}

func TestRenderProfile(t *testing.T) {
	p, _, _ := buildAvailabilityProfile(t)
	out := RenderProfile(p)
	for _, want := range []string{
		"<<Component>> (abstract)", "MTBF:Real",
		"<<Device>> : Component -> Class",
		"<<Connector>> : Component -> Association",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("profile rendering missing %q:\n%s", want, out)
		}
	}
}

func TestSummary(t *testing.T) {
	m := fullFixture(t)
	s := Summary(m)
	for _, want := range []string{
		`model "test"`, "2 profiles", "2 classes", "1 associations",
		"1 diagrams (2 instances, 1 links)", "2 activities",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q: %s", want, s)
		}
	}
}
