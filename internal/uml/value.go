// Package uml implements the subset of the Unified Modeling Language that
// the UPSIM methodology relies on (Dittrich et al., "A Model for Evaluation
// of User-Perceived Service Properties", IPDPS Workshops 2013, Section V-A):
//
//   - class diagrams: classes with static attributes and associations,
//   - profiles: stereotypes with attributes that extend the Class or
//     Association metaclasses,
//   - object diagrams: instance specifications and links that instantiate
//     classes and associations,
//   - activity diagrams: initial/final nodes, actions, fork/join nodes and
//     control flows, used to describe composite services.
//
// The package is self-contained and has no dependency on any external UML
// tooling; it replaces the Papyrus/Eclipse UML2 stack the paper used. Models
// can be serialised to and from an XMI-like XML dialect (see xmi.go) so that
// they can be stored, exchanged and re-imported like the paper's .uml files.
package uml

import (
	"fmt"
	"strconv"
)

// ValueKind enumerates the primitive UML types supported for attribute and
// slot values. The paper's profiles only need Real, Integer, String and
// Boolean (Figures 6 and 7).
type ValueKind uint8

const (
	// KindNone is the zero ValueKind; it marks an absent or undefined value.
	KindNone ValueKind = iota
	// KindString is a UML String.
	KindString
	// KindReal is a UML Real (IEEE-754 double).
	KindReal
	// KindInteger is a UML Integer (64-bit signed).
	KindInteger
	// KindBoolean is a UML Boolean.
	KindBoolean
)

// String returns the UML name of the primitive type.
func (k ValueKind) String() string {
	switch k {
	case KindNone:
		return "None"
	case KindString:
		return "String"
	case KindReal:
		return "Real"
	case KindInteger:
		return "Integer"
	case KindBoolean:
		return "Boolean"
	}
	return fmt.Sprintf("ValueKind(%d)", uint8(k))
}

// ParseValueKind converts a UML primitive type name to a ValueKind.
func ParseValueKind(s string) (ValueKind, error) {
	switch s {
	case "String":
		return KindString, nil
	case "Real":
		return KindReal, nil
	case "Integer":
		return KindInteger, nil
	case "Boolean":
		return KindBoolean, nil
	case "None", "":
		return KindNone, nil
	}
	return KindNone, fmt.Errorf("uml: unknown primitive type %q", s)
}

// Value is a tagged union holding one UML primitive value. The zero Value is
// the absent value (KindNone).
type Value struct {
	kind ValueKind
	s    string
	r    float64
	i    int64
	b    bool
}

// String constructs a UML String value.
func StringValue(s string) Value { return Value{kind: KindString, s: s} }

// RealValue constructs a UML Real value.
func RealValue(r float64) Value { return Value{kind: KindReal, r: r} }

// IntegerValue constructs a UML Integer value.
func IntegerValue(i int64) Value { return Value{kind: KindInteger, i: i} }

// BooleanValue constructs a UML Boolean value.
func BooleanValue(b bool) Value { return Value{kind: KindBoolean, b: b} }

// Kind reports which primitive type the value holds.
func (v Value) Kind() ValueKind { return v.kind }

// IsZero reports whether the value is absent.
func (v Value) IsZero() bool { return v.kind == KindNone }

// AsString returns the string payload. It is only meaningful for KindString.
func (v Value) AsString() string { return v.s }

// AsReal returns the numeric payload as a float64. Integer values are
// widened; other kinds return 0.
func (v Value) AsReal() float64 {
	switch v.kind {
	case KindReal:
		return v.r
	case KindInteger:
		return float64(v.i)
	}
	return 0
}

// AsInteger returns the integer payload. Real values are truncated; other
// kinds return 0.
func (v Value) AsInteger() int64 {
	switch v.kind {
	case KindInteger:
		return v.i
	case KindReal:
		return int64(v.r)
	}
	return 0
}

// AsBoolean returns the boolean payload; other kinds return false.
func (v Value) AsBoolean() bool { return v.kind == KindBoolean && v.b }

// Equal reports whether two values have the same kind and payload.
func (v Value) Equal(o Value) bool { return v == o }

// String renders the value as it would appear in a diagram compartment,
// e.g. "60000" or "C6500".
func (v Value) String() string {
	switch v.kind {
	case KindNone:
		return ""
	case KindString:
		return v.s
	case KindReal:
		return strconv.FormatFloat(v.r, 'g', -1, 64)
	case KindInteger:
		return strconv.FormatInt(v.i, 10)
	case KindBoolean:
		return strconv.FormatBool(v.b)
	}
	return "?"
}

// ParseValue parses the diagram representation of a value of the given kind.
func ParseValue(kind ValueKind, s string) (Value, error) {
	switch kind {
	case KindNone:
		if s != "" {
			return Value{}, fmt.Errorf("uml: value %q for kind None", s)
		}
		return Value{}, nil
	case KindString:
		return StringValue(s), nil
	case KindReal:
		r, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return Value{}, fmt.Errorf("uml: bad Real %q: %v", s, err)
		}
		return RealValue(r), nil
	case KindInteger:
		i, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("uml: bad Integer %q: %v", s, err)
		}
		return IntegerValue(i), nil
	case KindBoolean:
		b, err := strconv.ParseBool(s)
		if err != nil {
			return Value{}, fmt.Errorf("uml: bad Boolean %q: %v", s, err)
		}
		return BooleanValue(b), nil
	}
	return Value{}, fmt.Errorf("uml: unknown value kind %d", kind)
}
