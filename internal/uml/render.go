package uml

import (
	"fmt"
	"strings"
)

// This file renders UML diagrams in two forms: a plain-text form that
// mirrors how the paper's figures print classes (stereotypes in guillemets,
// attribute compartments), and Graphviz DOT for class diagrams and activity
// diagrams, complementing the object-diagram DOT export in package topology.

// RenderClass prints one class in the paper's Figure 8 box style:
//
//	<<Device;Switch>> C6500
//	  MTBF = 61320
//	  MTTR = 0.5
//	  redundantComponents = 0
func RenderClass(c *Class) string {
	var b strings.Builder
	b.WriteString(c.String())
	b.WriteByte('\n')
	for _, name := range c.PropertyNames() {
		v, _ := c.Property(name)
		fmt.Fprintf(&b, "  %s = %s\n", name, v)
	}
	return b.String()
}

// RenderClassDiagram prints every class and association of the model in the
// text form.
func RenderClassDiagram(m *Model) string {
	var b strings.Builder
	for _, c := range m.Classes() {
		b.WriteString(RenderClass(c))
	}
	for _, a := range m.Associations() {
		ea, eb := a.Ends()
		fmt.Fprintf(&b, "%s: %s -- %s\n", a.String(), ea.Name(), eb.Name())
	}
	return b.String()
}

// ClassDiagramDOT renders the model's classes and associations as a
// Graphviz digraph with record-shaped nodes (name plus attribute
// compartment), the conventional UML class-diagram rendering.
func ClassDiagramDOT(m *Model) string {
	var b strings.Builder
	b.WriteString("graph classes {\n")
	b.WriteString("  node [shape=record, fontname=\"Helvetica\"];\n")
	for _, c := range m.Classes() {
		var attrs []string
		for _, name := range c.PropertyNames() {
			v, _ := c.Property(name)
			attrs = append(attrs, fmt.Sprintf("%s = %s", name, escapeRecord(v.String())))
		}
		stereo := ""
		if names := c.StereotypeNames(); len(names) > 0 {
			stereo = "«" + strings.Join(names, ";") + "»\\n"
		}
		fmt.Fprintf(&b, "  %q [label=\"{%s%s|%s}\"];\n",
			c.Name(), stereo, c.Name(), strings.Join(attrs, "\\l"))
	}
	for _, a := range m.Associations() {
		ea, eb := a.Ends()
		fmt.Fprintf(&b, "  %q -- %q [label=%q];\n", ea.Name(), eb.Name(), a.Name())
	}
	b.WriteString("}\n")
	return b.String()
}

func escapeRecord(s string) string {
	r := strings.NewReplacer("{", "\\{", "}", "\\}", "|", "\\|", "<", "\\<", ">", "\\>", "\"", "\\\"")
	return r.Replace(s)
}

// ActivityDOT renders an activity diagram as a Graphviz digraph in the
// conventional UML notation: filled circle for the initial node, double
// circle for final nodes, rounded boxes for actions and bars for fork/join.
func ActivityDOT(a *Activity) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", sanitize(a.Name()))
	b.WriteString("  rankdir=LR;\n  node [fontname=\"Helvetica\"];\n")
	ids := make(map[*ActivityNode]string, len(a.Nodes()))
	for i, n := range a.Nodes() {
		id := fmt.Sprintf("n%d", i)
		ids[n] = id
		switch n.Kind() {
		case NodeInitial:
			fmt.Fprintf(&b, "  %s [shape=circle, style=filled, fillcolor=black, label=\"\", width=0.2];\n", id)
		case NodeFinal:
			fmt.Fprintf(&b, "  %s [shape=doublecircle, style=filled, fillcolor=black, label=\"\", width=0.15];\n", id)
		case NodeAction:
			fmt.Fprintf(&b, "  %s [shape=box, style=rounded, label=%q];\n", id, n.Name())
		case NodeFork, NodeJoin:
			fmt.Fprintf(&b, "  %s [shape=box, style=filled, fillcolor=black, label=\"\", height=0.08, width=1.2];\n", id)
		}
	}
	for _, n := range a.Nodes() {
		for _, t := range n.Outgoing() {
			fmt.Fprintf(&b, "  %s -> %s;\n", ids[n], ids[t])
		}
	}
	b.WriteString("}\n")
	return b.String()
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			return r
		}
		return '_'
	}, s)
}

// RenderProfile prints a profile's stereotypes with their attributes in
// declaration order, mirroring Figures 6-7.
func RenderProfile(p *Profile) string {
	var b strings.Builder
	for _, st := range p.Stereotypes() {
		kind := ""
		if st.IsAbstract() {
			kind = " (abstract)"
		}
		ext := ""
		if st.Extends() != MetaclassNone {
			ext = " -> " + st.Extends().String()
		}
		parent := ""
		if st.Parent() != nil {
			parent = " : " + st.Parent().Name()
		}
		fmt.Fprintf(&b, "<<%s>>%s%s%s\n", st.Name(), parent, kind, ext)
		for _, def := range st.OwnAttributes() {
			d := ""
			if !def.Default.IsZero() {
				d = " = " + def.Default.String()
			}
			fmt.Fprintf(&b, "  %s:%s%s\n", def.Name, def.Kind, d)
		}
	}
	return b.String()
}

// Summary returns a one-paragraph inventory of the model, used by tooling.
func Summary(m *Model) string {
	instances, links := 0, 0
	for _, d := range m.Diagrams() {
		instances += d.NumInstances()
		links += d.NumLinks()
	}
	parts := []string{
		fmt.Sprintf("%d profiles", len(m.Profiles())),
		fmt.Sprintf("%d classes", len(m.Classes())),
		fmt.Sprintf("%d associations", len(m.Associations())),
		fmt.Sprintf("%d diagrams (%d instances, %d links)", len(m.Diagrams()), instances, links),
		fmt.Sprintf("%d activities", len(m.Activities())),
	}
	return fmt.Sprintf("model %q: %s", m.Name(), strings.Join(parts, ", "))
}
