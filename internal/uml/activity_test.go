package uml

import (
	"strings"
	"testing"
)

// buildPrintingActivity reproduces Figure 10: five atomic services in strict
// sequence.
func buildPrintingActivity(t *testing.T, m *Model) *Activity {
	t.Helper()
	act, err := m.NewActivity("printing")
	if err != nil {
		t.Fatal(err)
	}
	names := []string{
		"Request printing", "Login to printer", "Send document list",
		"Select documents", "Send documents",
	}
	nodes := []*ActivityNode{act.Initial()}
	for _, n := range names {
		a, err := act.AddAction(n)
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, a)
	}
	nodes = append(nodes, act.AddFinal())
	if err := act.Sequence(nodes...); err != nil {
		t.Fatal(err)
	}
	return act
}

// buildParallelActivity reproduces Figure 2: atomic service 1, then services
// 2 and 3 in parallel (fork/join), then service 4.
func buildParallelActivity(t *testing.T, m *Model) *Activity {
	t.Helper()
	act, err := m.NewActivity("parallel")
	if err != nil {
		t.Fatal(err)
	}
	a1, _ := act.AddAction("Atomic Service 1")
	a2, _ := act.AddAction("Atomic Service 2")
	a3, _ := act.AddAction("Atomic Service 3")
	a4, _ := act.AddAction("Atomic Service 4")
	fork := act.AddFork()
	join := act.AddJoin()
	final := act.AddFinal()
	for _, f := range []struct{ s, d *ActivityNode }{
		{act.Initial(), a1}, {a1, fork}, {fork, a2}, {fork, a3},
		{a2, join}, {a3, join}, {join, a4}, {a4, final},
	} {
		if err := act.Flow(f.s, f.d); err != nil {
			t.Fatal(err)
		}
	}
	return act
}

func TestSequentialActivity(t *testing.T) {
	m := NewModel("svc")
	act := buildPrintingActivity(t, m)
	if err := act.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	stages, err := act.Stages()
	if err != nil {
		t.Fatal(err)
	}
	if len(stages) != 5 {
		t.Fatalf("stages = %d, want 5", len(stages))
	}
	want := []string{
		"Request printing", "Login to printer", "Send document list",
		"Select documents", "Send documents",
	}
	for i, w := range want {
		if len(stages[i]) != 1 || stages[i][0] != w {
			t.Errorf("stage %d = %v, want [%s]", i, stages[i], w)
		}
	}
	if got := act.ActionNames(); len(got) != 5 || got[0] != want[0] || got[4] != want[4] {
		t.Errorf("ActionNames = %v", got)
	}
}

func TestParallelActivityStages(t *testing.T) {
	m := NewModel("svc")
	act := buildParallelActivity(t, m)
	stages, err := act.Stages()
	if err != nil {
		t.Fatal(err)
	}
	if len(stages) != 3 {
		t.Fatalf("stages = %v, want 3 stages", stages)
	}
	if len(stages[0]) != 1 || stages[0][0] != "Atomic Service 1" {
		t.Errorf("stage 0 = %v", stages[0])
	}
	if len(stages[1]) != 2 || stages[1][0] != "Atomic Service 2" || stages[1][1] != "Atomic Service 3" {
		t.Errorf("stage 1 = %v", stages[1])
	}
	if len(stages[2]) != 1 || stages[2][0] != "Atomic Service 4" {
		t.Errorf("stage 2 = %v", stages[2])
	}
}

func TestActivityValidationErrors(t *testing.T) {
	t.Run("no final", func(t *testing.T) {
		m := NewModel("x")
		act, _ := m.NewActivity("a")
		n, _ := act.AddAction("s")
		_ = act.Flow(act.Initial(), n)
		if err := act.Validate(); err == nil {
			t.Error("activity without final node must be invalid")
		}
	})
	t.Run("dangling action", func(t *testing.T) {
		m := NewModel("x")
		act, _ := m.NewActivity("a")
		n, _ := act.AddAction("s")
		final := act.AddFinal()
		_ = act.Flow(act.Initial(), n)
		_ = act.Flow(n, final)
		_, _ = act.AddAction("orphan")
		if err := act.Validate(); err == nil || !strings.Contains(err.Error(), "orphan") {
			t.Errorf("orphan action must be invalid, got %v", err)
		}
	})
	t.Run("fork with single branch", func(t *testing.T) {
		m := NewModel("x")
		act, _ := m.NewActivity("a")
		f := act.AddFork()
		n, _ := act.AddAction("s")
		final := act.AddFinal()
		_ = act.Flow(act.Initial(), f)
		_ = act.Flow(f, n)
		_ = act.Flow(n, final)
		if err := act.Validate(); err == nil {
			t.Error("fork with one branch must be invalid")
		}
	})
	t.Run("action with two outputs", func(t *testing.T) {
		m := NewModel("x")
		act, _ := m.NewActivity("a")
		n, _ := act.AddAction("s")
		f1 := act.AddFinal()
		f2 := act.AddFinal()
		_ = act.Flow(act.Initial(), n)
		_ = act.Flow(n, f1)
		_ = act.Flow(n, f2)
		if err := act.Validate(); err == nil {
			t.Error("action with two outgoing flows must be invalid (no decision nodes)")
		}
	})
}

func TestActivityFlowErrors(t *testing.T) {
	m := NewModel("x")
	act, _ := m.NewActivity("a")
	n, _ := act.AddAction("s")
	final := act.AddFinal()
	if err := act.Flow(act.Initial(), n); err != nil {
		t.Fatal(err)
	}
	if err := act.Flow(act.Initial(), n); err == nil {
		t.Error("duplicate flow should fail")
	}
	if err := act.Flow(final, n); err == nil {
		t.Error("flow out of final should fail")
	}
	if err := act.Flow(n, act.Initial()); err == nil {
		t.Error("flow into initial should fail")
	}
	if err := act.Flow(n, n); err == nil {
		t.Error("self flow should fail")
	}
	if err := act.Flow(nil, n); err == nil {
		t.Error("nil end should fail")
	}
	other, _ := m.NewActivity("b")
	on, _ := other.AddAction("os")
	if err := act.Flow(n, on); err == nil {
		t.Error("cross-activity flow should fail")
	}
}

func TestActivityCycleDetection(t *testing.T) {
	m := NewModel("x")
	act, _ := m.NewActivity("a")
	n1, _ := act.AddAction("s1")
	j := act.AddJoin()
	f := act.AddFork()
	final := act.AddFinal()
	// initial -> join <- (cycle back from fork); join -> s1 -> fork -> final
	//                                              fork ----------^ back to join
	mustFlow := func(s, d *ActivityNode) {
		t.Helper()
		if err := act.Flow(s, d); err != nil {
			t.Fatal(err)
		}
	}
	mustFlow(act.Initial(), j)
	mustFlow(j, n1)
	mustFlow(n1, f)
	mustFlow(f, final)
	mustFlow(f, j) // closes the cycle
	if err := act.Validate(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("cycle must be detected, got %v", err)
	}
}

func TestActivityDuplicates(t *testing.T) {
	m := NewModel("x")
	act, _ := m.NewActivity("a")
	if _, err := m.NewActivity("a"); err == nil {
		t.Error("duplicate activity should fail")
	}
	if _, err := m.NewActivity(""); err == nil {
		t.Error("empty activity name should fail")
	}
	if _, err := act.AddAction("s"); err != nil {
		t.Fatal(err)
	}
	if _, err := act.AddAction("s"); err == nil {
		t.Error("duplicate action should fail")
	}
	if _, err := act.AddAction(""); err == nil {
		t.Error("empty action name should fail")
	}
	if n, ok := act.Action("s"); !ok || n.Name() != "s" {
		t.Error("Action lookup failed")
	}
	if _, ok := act.Action("nope"); ok {
		t.Error("unknown action should be absent")
	}
	if got, ok := m.Activity("a"); !ok || got != act {
		t.Error("Activity lookup failed")
	}
	if len(m.Activities()) != 1 {
		t.Error("Activities should list one")
	}
}

func TestNodeKindString(t *testing.T) {
	kinds := map[NodeKind]string{
		NodeInitial: "Initial", NodeFinal: "Final", NodeAction: "Action",
		NodeFork: "Fork", NodeJoin: "Join",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%v.String() = %q", k, k.String())
		}
	}
	m := NewModel("x")
	act, _ := m.NewActivity("a")
	n, _ := act.AddAction("svc")
	if n.String() != "Action(svc)" {
		t.Errorf("node String = %q", n.String())
	}
	if act.Initial().String() != "Initial" {
		t.Errorf("initial String = %q", act.Initial().String())
	}
}
