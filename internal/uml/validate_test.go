package uml

import (
	"strings"
	"testing"
)

func TestValidateCompleteModel(t *testing.T) {
	m := fullFixture(t)
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateMissingStereotypeValue(t *testing.T) {
	m, _, _, _ := testModel(t)
	p, _ := m.Profile("availability")
	dev, _ := p.Stereotype("Device")
	c, _ := m.AddClass("Incomplete")
	app, err := c.Apply(dev)
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Set("MTBF", RealValue(1000)); err != nil {
		t.Fatal(err)
	}
	// MTTR and redundantComponents left unset: the availability analysis
	// could not find the properties it needs, so the model is invalid.
	err = m.Validate()
	if err == nil {
		t.Fatal("model with missing attribute values must be invalid")
	}
	ve, ok := AsValidationError(err)
	if !ok {
		t.Fatalf("error is not a ValidationError: %v", err)
	}
	if len(ve.Issues) != 2 {
		t.Errorf("issues = %d, want 2 (MTTR, redundantComponents): %v", len(ve.Issues), ve.Issues)
	}
	for _, issue := range ve.Issues {
		if !strings.Contains(issue.Element, "Incomplete") {
			t.Errorf("issue element = %q, want class Incomplete", issue.Element)
		}
	}
}

func TestValidateMissingAssociationValue(t *testing.T) {
	m, comp, sw, _ := testModel(t)
	p, _ := m.Profile("availability")
	conn, _ := p.Stereotype("Connector")
	a, err := m.AddAssociation("bare", comp, sw)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Apply(conn); err != nil {
		t.Fatal(err)
	}
	err = m.Validate()
	if err == nil {
		t.Fatal("association with unset connector attributes must be invalid")
	}
	ve, _ := AsValidationError(err)
	if len(ve.Issues) != 3 {
		t.Errorf("issues = %d, want 3", len(ve.Issues))
	}
	if !strings.Contains(err.Error(), "3 issues") {
		t.Errorf("aggregate error message = %q", err.Error())
	}
}

func TestValidateBrokenActivity(t *testing.T) {
	m, _, _, _ := testModel(t)
	act, _ := m.NewActivity("broken")
	if _, err := act.AddAction("floating"); err != nil {
		t.Fatal(err)
	}
	err := m.Validate()
	if err == nil {
		t.Fatal("model with invalid activity must be invalid")
	}
	if !strings.Contains(err.Error(), "broken") {
		t.Errorf("error should name the activity: %v", err)
	}
}

func TestValidateSingleIssueMessage(t *testing.T) {
	m, _, _, _ := testModel(t)
	act, _ := m.NewActivity("nofinal")
	n, _ := act.AddAction("s")
	_ = act.Flow(act.Initial(), n)
	err := m.Validate()
	if err == nil {
		t.Fatal("expected validation error")
	}
	if strings.Contains(err.Error(), "issues,") {
		t.Errorf("single-issue message should be inlined: %q", err.Error())
	}
	if _, ok := AsValidationError(err); !ok {
		t.Error("AsValidationError should match")
	}
}

func TestAsValidationErrorNonMatch(t *testing.T) {
	if _, ok := AsValidationError(nil); ok {
		t.Error("nil error must not match")
	}
	if _, ok := AsValidationError(errPlain); ok {
		t.Error("plain error must not match")
	}
}

var errPlain = fmtError("plain")

type fmtError string

func (e fmtError) Error() string { return string(e) }
