package uml

import (
	"testing"
)

// diagramFixture creates a model with classes Comp and C6500, association
// Comp-C6500, plus a switch-to-switch association, and an object diagram
// with a few instances.
func diagramFixture(t *testing.T) (*Model, *ObjectDiagram) {
	t.Helper()
	m, comp, sw, _ := testModel(t)
	if _, err := m.AddAssociation("C6500-C6500", sw, sw); err != nil {
		t.Fatal(err)
	}
	d := m.NewObjectDiagram("infra")
	for _, n := range []string{"t1", "t2"} {
		if _, err := d.AddInstance(n, comp); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range []string{"c1", "c2"} {
		if _, err := d.AddInstance(n, sw); err != nil {
			t.Fatal(err)
		}
	}
	return m, d
}

func TestInstancePropertiesDelegateToClass(t *testing.T) {
	_, d := diagramFixture(t)
	t1, _ := d.Instance("t1")
	if v, ok := t1.Property("MTBF"); !ok || v.AsReal() != 3000 {
		t.Errorf("t1 MTBF = %v, %v", v, ok)
	}
	if !t1.HasStereotype("Device") || !t1.HasStereotype("Component") {
		t.Error("instance must report classifier stereotypes")
	}
	if t1.Signature() != "t1:Comp" {
		t.Errorf("Signature = %q", t1.Signature())
	}
	if t1.String() != "t1:Comp" {
		t.Errorf("String = %q", t1.String())
	}
}

func TestDiagramAddInstanceErrors(t *testing.T) {
	m, d := diagramFixture(t)
	comp := m.MustClass("Comp")
	if _, err := d.AddInstance("t1", comp); err == nil {
		t.Error("duplicate instance should fail")
	}
	if _, err := d.AddInstance("", comp); err == nil {
		t.Error("empty name should fail")
	}
	if _, err := d.AddInstance("x", nil); err == nil {
		t.Error("nil class should fail")
	}
	other := NewModel("other")
	oc, _ := other.AddClass("C")
	if _, err := d.AddInstance("y", oc); err == nil {
		t.Error("class from another model should fail")
	}
}

func TestConnectRespectsAssociations(t *testing.T) {
	m, d := diagramFixture(t)
	a, _ := m.Association("Comp-C6500")
	ss, _ := m.Association("C6500-C6500")
	l, err := d.ConnectByName("t1", "c1", a)
	if err != nil {
		t.Fatal(err)
	}
	ia, ib := l.Ends()
	if ia.Name() != "t1" || ib.Name() != "c1" {
		t.Errorf("link ends = %s, %s", ia, ib)
	}
	if _, err := d.ConnectByName("c1", "c2", ss); err != nil {
		t.Fatal(err)
	}
	// t1 and t2 are both Comp; no association joins Comp with Comp.
	if _, err := d.ConnectByName("t1", "t2", a); err == nil {
		t.Error("link not ruled by an association must fail")
	}
	// Duplicate link over the same association.
	if _, err := d.ConnectByName("c1", "t1", a); err == nil {
		t.Error("duplicate link (reversed) should fail")
	}
	if _, err := d.ConnectByName("t1", "t1", a); err == nil {
		t.Error("self link should fail")
	}
	if _, err := d.ConnectByName("ghost", "c1", a); err == nil {
		t.Error("unknown instance should fail")
	}
	if _, err := d.ConnectByName("t1", "ghost", a); err == nil {
		t.Error("unknown instance should fail")
	}
	t1, _ := d.Instance("t1")
	c1, _ := d.Instance("c1")
	if _, err := d.Connect(t1, c1, nil); err == nil {
		t.Error("nil association should fail")
	}
	if _, err := d.Connect(nil, c1, a); err == nil {
		t.Error("nil end should fail")
	}
}

func TestRedundantLinksBetweenSamePair(t *testing.T) {
	// The paper's core switches have redundant connections: two parallel
	// links between the same pair require two distinct associations.
	m, d := diagramFixture(t)
	sw := m.MustClass("C6500")
	ss, _ := m.Association("C6500-C6500")
	ss2, err := m.AddAssociation("C6500-C6500-backup", sw, sw)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.ConnectByName("c1", "c2", ss); err != nil {
		t.Fatal(err)
	}
	if _, err := d.ConnectByName("c1", "c2", ss2); err != nil {
		t.Fatal(err)
	}
	if got := len(d.LinksBetween("c1", "c2")); got != 2 {
		t.Errorf("LinksBetween = %d links, want 2", got)
	}
	if got := len(d.LinksBetween("c2", "c1")); got != 2 {
		t.Errorf("LinksBetween reversed = %d links, want 2", got)
	}
}

func TestLinkAccessors(t *testing.T) {
	m, d := diagramFixture(t)
	a, _ := m.Association("Comp-C6500")
	l, err := d.ConnectByName("t1", "c1", a)
	if err != nil {
		t.Fatal(err)
	}
	t1, _ := d.Instance("t1")
	c1, _ := d.Instance("c1")
	t2, _ := d.Instance("t2")
	if !l.Connects(t1, c1) || !l.Connects(c1, t1) {
		t.Error("Connects must be orientation independent")
	}
	if l.Connects(t1, t2) {
		t.Error("Connects(t1, t2) must be false")
	}
	if l.Other(t1) != c1 || l.Other(c1) != t1 {
		t.Error("Other must return opposite end")
	}
	if l.Other(t2) != nil {
		t.Error("Other of non-endpoint must be nil")
	}
	if v, ok := l.Property("MTBF"); !ok || v.AsReal() != 1000000 {
		t.Errorf("link MTBF = %v, %v", v, ok)
	}
	if l.Association() != a {
		t.Error("Association mismatch")
	}
	if l.Signature() != "t1--c1 (Comp-C6500)" {
		t.Errorf("Signature = %q", l.Signature())
	}
}

func TestDiagramTopologyQueries(t *testing.T) {
	m, d := diagramFixture(t)
	a, _ := m.Association("Comp-C6500")
	ss, _ := m.Association("C6500-C6500")
	mustConnect := func(x, y string, as *Association) {
		t.Helper()
		if _, err := d.ConnectByName(x, y, as); err != nil {
			t.Fatal(err)
		}
	}
	mustConnect("t1", "c1", a)
	mustConnect("t2", "c2", a)
	mustConnect("c1", "c2", ss)
	if d.NumInstances() != 4 || d.NumLinks() != 3 {
		t.Errorf("counts = %d instances, %d links", d.NumInstances(), d.NumLinks())
	}
	got := d.Neighbors("c1")
	want := []string{"c2", "t1"}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("Neighbors(c1) = %v, want %v", got, want)
	}
	if n := d.Neighbors("ghost"); len(n) != 0 {
		t.Errorf("Neighbors(ghost) = %v", n)
	}
	if ls := d.LinksOf("c1"); len(ls) != 2 {
		t.Errorf("LinksOf(c1) = %d, want 2", len(ls))
	}
	names := d.InstanceNames()
	if len(names) != 4 || names[0] != "c1" || names[3] != "t2" {
		t.Errorf("InstanceNames = %v", names)
	}
	insts := d.Instances()
	if len(insts) != 4 || insts[0].Name() != "t1" {
		t.Errorf("Instances (insertion order) = %v", insts)
	}
	if got, ok := m.Diagram("infra"); !ok || got != d {
		t.Error("Diagram lookup failed")
	}
	if _, ok := m.Diagram("nope"); ok {
		t.Error("unknown diagram should be absent")
	}
	if len(m.Diagrams()) != 1 {
		t.Error("Diagrams should list one diagram")
	}
}
