package uml

import (
	"fmt"
	"sort"
)

// InstanceSpecification is a UML instance of a class: one concrete network
// node in an object diagram, e.g. "t1:Comp" or "printS:Server" (Figure 9).
// Instances carry no attribute values of their own — Section V-A1 requires
// classes to have only static attributes so that "two different instances of
// the same class have also the same properties"; Property therefore delegates
// to the classifier.
type InstanceSpecification struct {
	name       string
	classifier *Class
	model      *Model
}

// Name returns the instance name (e.g. "t1").
func (i *InstanceSpecification) Name() string { return i.name }

// Classifier returns the instantiated class.
func (i *InstanceSpecification) Classifier() *Class { return i.classifier }

// Model returns the owning model.
func (i *InstanceSpecification) Model() *Model { return i.model }

// Property reads a static attribute through the classifier, preserving the
// paper's guarantee that a UPSIM element exposes exactly the properties of
// the class it instantiates (Section V-E).
func (i *InstanceSpecification) Property(name string) (Value, bool) {
	return i.classifier.Property(name)
}

// HasStereotype reports whether the classifier carries the named stereotype.
func (i *InstanceSpecification) HasStereotype(name string) bool {
	return i.classifier.HasStereotype(name)
}

// Signature renders the instance as "name:Class", the form used throughout
// the paper's object diagrams.
func (i *InstanceSpecification) Signature() string {
	return i.name + ":" + i.classifier.name
}

// String implements fmt.Stringer.
func (i *InstanceSpecification) String() string { return i.Signature() }

// Link is an instance of an association connecting two instance
// specifications — one deployed communication link in the object diagram.
type Link struct {
	name        string
	association *Association
	a, b        *InstanceSpecification
	model       *Model
}

// Name returns the link name (may be empty; links are usually anonymous in
// the diagrams and identified by their endpoints).
func (l *Link) Name() string { return l.name }

// Association returns the association the link instantiates.
func (l *Link) Association() *Association { return l.association }

// Ends returns the two connected instances.
func (l *Link) Ends() (*InstanceSpecification, *InstanceSpecification) { return l.a, l.b }

// Connects reports whether the link joins the two given instances, in either
// orientation.
func (l *Link) Connects(x, y *InstanceSpecification) bool {
	return (l.a == x && l.b == y) || (l.a == y && l.b == x)
}

// Other returns the opposite end of the link relative to the given instance,
// or nil if the instance is not an endpoint.
func (l *Link) Other(x *InstanceSpecification) *InstanceSpecification {
	switch x {
	case l.a:
		return l.b
	case l.b:
		return l.a
	}
	return nil
}

// Property reads a static attribute of the link through its association
// (e.g. the MTBF of a <<Connector>> link).
func (l *Link) Property(name string) (Value, bool) {
	return l.association.Property(name)
}

// Signature renders the link as "a--b (Association)".
func (l *Link) Signature() string {
	return l.a.name + "--" + l.b.name + " (" + l.association.name + ")"
}

// String implements fmt.Stringer.
func (l *Link) String() string { return l.Signature() }

// linkKey returns a canonical, orientation-independent key for a pair of
// instance names, used for deduplication when merging paths into the UPSIM
// ("multiple occurrences are ignored", Section VI-H).
func linkKey(a, b string) string {
	if b < a {
		a, b = b, a
	}
	return a + "\x00" + b
}

// ObjectDiagram is a UML object diagram: a set of instance specifications
// and links over the classes and associations of a model. The complete
// infrastructure (Figure 9) and every generated UPSIM (Figures 11-12) are
// object diagrams.
type ObjectDiagram struct {
	name      string
	model     *Model
	instances map[string]*InstanceSpecification
	instOrder []string
	links     []*Link
	byPair    map[string][]*Link
}

// NewObjectDiagram creates an empty object diagram bound to a model.
func (m *Model) NewObjectDiagram(name string) *ObjectDiagram {
	d := &ObjectDiagram{
		name:      name,
		model:     m,
		instances: make(map[string]*InstanceSpecification),
		byPair:    make(map[string][]*Link),
	}
	m.diagrams = append(m.diagrams, d)
	return d
}

// Name returns the diagram name.
func (d *ObjectDiagram) Name() string { return d.name }

// Model returns the model whose classes the diagram instantiates.
func (d *ObjectDiagram) Model() *Model { return d.model }

// AddInstance creates an instance of the given class in the diagram.
// Instance names are unique per diagram.
func (d *ObjectDiagram) AddInstance(name string, class *Class) (*InstanceSpecification, error) {
	if name == "" {
		return nil, fmt.Errorf("uml: diagram %s: empty instance name", d.name)
	}
	if class == nil {
		return nil, fmt.Errorf("uml: diagram %s: instance %s: nil class", d.name, name)
	}
	if class.model != d.model {
		return nil, fmt.Errorf("uml: diagram %s: instance %s: class %s belongs to another model",
			d.name, name, class.name)
	}
	if _, dup := d.instances[name]; dup {
		return nil, fmt.Errorf("uml: diagram %s: duplicate instance %s", d.name, name)
	}
	inst := &InstanceSpecification{name: name, classifier: class, model: d.model}
	d.instances[name] = inst
	d.instOrder = append(d.instOrder, name)
	return inst, nil
}

// Instance looks up an instance by name.
func (d *ObjectDiagram) Instance(name string) (*InstanceSpecification, bool) {
	i, ok := d.instances[name]
	return i, ok
}

// Instances returns all instances in insertion order.
func (d *ObjectDiagram) Instances() []*InstanceSpecification {
	out := make([]*InstanceSpecification, 0, len(d.instOrder))
	for _, n := range d.instOrder {
		out = append(out, d.instances[n])
	}
	return out
}

// InstanceNames returns the sorted instance names.
func (d *ObjectDiagram) InstanceNames() []string {
	out := make([]string, len(d.instOrder))
	copy(out, d.instOrder)
	sort.Strings(out)
	return out
}

// NumInstances returns the number of instances.
func (d *ObjectDiagram) NumInstances() int { return len(d.instances) }

// NumLinks returns the number of links.
func (d *ObjectDiagram) NumLinks() int { return len(d.links) }

// Connect creates a link between two instances as an instance of the given
// association. The association must join the classifiers of the two ends
// ("the possibility for connections is ruled by those existing
// associations", Section VI-B); a link duplicating an existing link over the
// same association and endpoints is rejected.
func (d *ObjectDiagram) Connect(a, b *InstanceSpecification, assoc *Association) (*Link, error) {
	if a == nil || b == nil {
		return nil, fmt.Errorf("uml: diagram %s: link with nil end", d.name)
	}
	if a == b {
		return nil, fmt.Errorf("uml: diagram %s: self-link on %s", d.name, a.name)
	}
	if assoc == nil {
		return nil, fmt.Errorf("uml: diagram %s: link %s--%s: nil association", d.name, a.name, b.name)
	}
	if got, ok := d.instances[a.name]; !ok || got != a {
		return nil, fmt.Errorf("uml: diagram %s: instance %s not in diagram", d.name, a.name)
	}
	if got, ok := d.instances[b.name]; !ok || got != b {
		return nil, fmt.Errorf("uml: diagram %s: instance %s not in diagram", d.name, b.name)
	}
	if !assoc.Joins(a.classifier, b.classifier) {
		return nil, fmt.Errorf("uml: diagram %s: association %s (%s--%s) cannot link %s and %s",
			d.name, assoc.name, assoc.endA.name, assoc.endB.name, a.Signature(), b.Signature())
	}
	key := linkKey(a.name, b.name)
	for _, l := range d.byPair[key] {
		if l.association == assoc {
			return nil, fmt.Errorf("uml: diagram %s: duplicate link %s over %s", d.name, key, assoc.name)
		}
	}
	l := &Link{association: assoc, a: a, b: b, model: d.model}
	d.links = append(d.links, l)
	d.byPair[key] = append(d.byPair[key], l)
	return l, nil
}

// ConnectByName is a convenience wrapper resolving both endpoints by name.
func (d *ObjectDiagram) ConnectByName(a, b string, assoc *Association) (*Link, error) {
	ia, ok := d.instances[a]
	if !ok {
		return nil, fmt.Errorf("uml: diagram %s: unknown instance %s", d.name, a)
	}
	ib, ok := d.instances[b]
	if !ok {
		return nil, fmt.Errorf("uml: diagram %s: unknown instance %s", d.name, b)
	}
	return d.Connect(ia, ib, assoc)
}

// Links returns all links in insertion order.
func (d *ObjectDiagram) Links() []*Link {
	out := make([]*Link, len(d.links))
	copy(out, d.links)
	return out
}

// LinksBetween returns all links connecting the two named instances,
// regardless of orientation. Multiple links between the same pair model
// redundant physical connections (the paper's core switches have "redundant
// connections").
func (d *ObjectDiagram) LinksBetween(a, b string) []*Link {
	ls := d.byPair[linkKey(a, b)]
	out := make([]*Link, len(ls))
	copy(out, ls)
	return out
}

// LinksOf returns all links incident to the named instance.
func (d *ObjectDiagram) LinksOf(name string) []*Link {
	var out []*Link
	for _, l := range d.links {
		if l.a.name == name || l.b.name == name {
			out = append(out, l)
		}
	}
	return out
}

// Neighbors returns the sorted names of instances adjacent to the named one.
func (d *ObjectDiagram) Neighbors(name string) []string {
	seen := make(map[string]bool)
	for _, l := range d.links {
		switch name {
		case l.a.name:
			seen[l.b.name] = true
		case l.b.name:
			seen[l.a.name] = true
		}
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
