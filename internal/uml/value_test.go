package uml

import (
	"testing"
	"testing/quick"
)

func TestValueKinds(t *testing.T) {
	tests := []struct {
		v    Value
		kind ValueKind
		str  string
	}{
		{StringValue("C6500"), KindString, "C6500"},
		{RealValue(183498), KindReal, "183498"},
		{RealValue(0.5), KindReal, "0.5"},
		{IntegerValue(-3), KindInteger, "-3"},
		{BooleanValue(true), KindBoolean, "true"},
		{Value{}, KindNone, ""},
	}
	for _, tt := range tests {
		if got := tt.v.Kind(); got != tt.kind {
			t.Errorf("Kind(%v) = %v, want %v", tt.v, got, tt.kind)
		}
		if got := tt.v.String(); got != tt.str {
			t.Errorf("String(%v) = %q, want %q", tt.v, got, tt.str)
		}
	}
}

func TestValueIsZero(t *testing.T) {
	if !(Value{}).IsZero() {
		t.Error("zero Value should be IsZero")
	}
	if StringValue("").IsZero() {
		t.Error("empty string value is a present value, not zero")
	}
	if RealValue(0).IsZero() {
		t.Error("Real 0 is a present value, not zero")
	}
}

func TestValueAccessors(t *testing.T) {
	if got := RealValue(2.5).AsReal(); got != 2.5 {
		t.Errorf("AsReal = %v, want 2.5", got)
	}
	if got := IntegerValue(7).AsReal(); got != 7 {
		t.Errorf("Integer widened AsReal = %v, want 7", got)
	}
	if got := RealValue(7.9).AsInteger(); got != 7 {
		t.Errorf("Real truncated AsInteger = %v, want 7", got)
	}
	if got := IntegerValue(42).AsInteger(); got != 42 {
		t.Errorf("AsInteger = %v, want 42", got)
	}
	if !BooleanValue(true).AsBoolean() {
		t.Error("AsBoolean(true) = false")
	}
	if StringValue("true").AsBoolean() {
		t.Error("AsBoolean of a string must be false")
	}
	if got := StringValue("x").AsString(); got != "x" {
		t.Errorf("AsString = %q, want x", got)
	}
}

func TestParseValueKind(t *testing.T) {
	for _, k := range []ValueKind{KindString, KindReal, KindInteger, KindBoolean, KindNone} {
		got, err := ParseValueKind(k.String())
		if err != nil {
			t.Fatalf("ParseValueKind(%s): %v", k, err)
		}
		if got != k {
			t.Errorf("ParseValueKind(%s) = %v", k, got)
		}
	}
	if _, err := ParseValueKind("Complex"); err == nil {
		t.Error("ParseValueKind(Complex) should fail")
	}
}

func TestParseValueRoundTrip(t *testing.T) {
	vals := []Value{
		StringValue("hello world"),
		RealValue(3.14159),
		RealValue(-0.25),
		IntegerValue(1 << 40),
		BooleanValue(false),
	}
	for _, v := range vals {
		got, err := ParseValue(v.Kind(), v.String())
		if err != nil {
			t.Fatalf("ParseValue(%v, %q): %v", v.Kind(), v.String(), err)
		}
		if !got.Equal(v) {
			t.Errorf("round trip %v -> %q -> %v", v, v.String(), got)
		}
	}
}

func TestParseValueErrors(t *testing.T) {
	cases := []struct {
		kind ValueKind
		s    string
	}{
		{KindReal, "not-a-number"},
		{KindInteger, "1.5"},
		{KindBoolean, "maybe"},
		{KindNone, "anything"},
		{ValueKind(99), "x"},
	}
	for _, c := range cases {
		if _, err := ParseValue(c.kind, c.s); err == nil {
			t.Errorf("ParseValue(%v, %q) should fail", c.kind, c.s)
		}
	}
}

// Property: Real and Integer values always survive a String/Parse round trip.
func TestValueRoundTripProperty(t *testing.T) {
	realRT := func(r float64) bool {
		v := RealValue(r)
		got, err := ParseValue(KindReal, v.String())
		return err == nil && got.AsReal() == r
	}
	if err := quick.Check(realRT, nil); err != nil {
		t.Errorf("real round trip: %v", err)
	}
	intRT := func(i int64) bool {
		v := IntegerValue(i)
		got, err := ParseValue(KindInteger, v.String())
		return err == nil && got.AsInteger() == i
	}
	if err := quick.Check(intRT, nil); err != nil {
		t.Errorf("integer round trip: %v", err)
	}
	strRT := func(s string) bool {
		got, err := ParseValue(KindString, s)
		return err == nil && got.AsString() == s
	}
	if err := quick.Check(strRT, nil); err != nil {
		t.Errorf("string round trip: %v", err)
	}
}
