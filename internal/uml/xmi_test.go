package uml

import (
	"bytes"
	"strings"
	"testing"
)

// fullFixture builds a model exercising every serialisable feature: profile
// with abstract parents and defaults, classes with applications and owned
// properties, associations, an object diagram and two activities.
func fullFixture(t *testing.T) *Model {
	t.Helper()
	m, comp, sw, _ := testModel(t)
	net := NewProfile("network")
	nd, err := net.DefineAbstractStereotype("NetworkDevice", MetaclassClass)
	if err != nil {
		t.Fatal(err)
	}
	if err := nd.AddAttribute("manufacturer", KindString); err != nil {
		t.Fatal(err)
	}
	if err := nd.AddAttributeDefault("model", KindString, StringValue("unknown")); err != nil {
		t.Fatal(err)
	}
	swSt, err := net.DefineSubStereotype("Switch", MetaclassNone, nd)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AddProfile(net); err != nil {
		t.Fatal(err)
	}
	app, err := sw.Apply(swSt)
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Set("manufacturer", StringValue("Cisco")); err != nil {
		t.Fatal(err)
	}
	if err := comp.SetProperty("category", StringValue("endpoint")); err != nil {
		t.Fatal(err)
	}
	d := m.NewObjectDiagram("infra")
	t1, _ := d.AddInstance("t1", comp)
	c1, _ := d.AddInstance("c1", sw)
	a, _ := m.Association("Comp-C6500")
	if _, err := d.Connect(t1, c1, a); err != nil {
		t.Fatal(err)
	}
	buildPrintingActivity(t, m)
	buildParallelActivity(t, m)
	return m
}

func TestXMIRoundTrip(t *testing.T) {
	m := fullFixture(t)
	var buf bytes.Buffer
	if err := Encode(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatalf("Decode: %v\n%s", err, buf.String())
	}

	if got.Name() != m.Name() {
		t.Errorf("name = %q, want %q", got.Name(), m.Name())
	}
	// Profiles and stereotypes survive, including abstractness, parents,
	// extensions and defaults.
	net, ok := got.Profile("network")
	if !ok {
		t.Fatal("network profile missing")
	}
	nd, ok := net.Stereotype("NetworkDevice")
	if !ok || !nd.IsAbstract() || nd.Extends() != MetaclassClass {
		t.Errorf("NetworkDevice decoded wrong: %+v", nd)
	}
	swSt, ok := net.Stereotype("Switch")
	if !ok || swSt.Parent() != nd || swSt.Extends() != MetaclassClass {
		t.Error("Switch decoded wrong")
	}
	if def, ok := nd.Attribute("model"); !ok || def.Default.AsString() != "unknown" {
		t.Errorf("model default = %v, %v", def, ok)
	}

	// Class attribute values survive, both stereotype values and owned
	// properties.
	sw := got.MustClass("C6500")
	if v, ok := sw.Property("MTBF"); !ok || v.AsReal() != 183498 {
		t.Errorf("C6500 MTBF = %v, %v", v, ok)
	}
	if v, ok := sw.Property("manufacturer"); !ok || v.AsString() != "Cisco" {
		t.Errorf("C6500 manufacturer = %v, %v", v, ok)
	}
	if v, ok := sw.Property("model"); !ok || v.AsString() != "unknown" {
		t.Errorf("C6500 model default = %v, %v", v, ok)
	}
	comp := got.MustClass("Comp")
	if v, ok := comp.Property("category"); !ok || v.AsString() != "endpoint" {
		t.Errorf("Comp category = %v, %v", v, ok)
	}

	// Associations and their stereotype values survive.
	a, ok := got.Association("Comp-C6500")
	if !ok {
		t.Fatal("association missing")
	}
	if v, ok := a.Property("MTBF"); !ok || v.AsReal() != 1000000 {
		t.Errorf("connector MTBF = %v, %v", v, ok)
	}

	// Object diagram survives.
	d, ok := got.Diagram("infra")
	if !ok {
		t.Fatal("diagram missing")
	}
	if d.NumInstances() != 2 || d.NumLinks() != 1 {
		t.Errorf("diagram = %d instances, %d links", d.NumInstances(), d.NumLinks())
	}
	t1, ok := d.Instance("t1")
	if !ok || t1.Classifier().Name() != "Comp" {
		t.Error("t1 decoded wrong")
	}

	// Activities survive with structure intact.
	printing, ok := got.Activity("printing")
	if !ok {
		t.Fatal("printing activity missing")
	}
	stages, err := printing.Stages()
	if err != nil {
		t.Fatal(err)
	}
	if len(stages) != 5 {
		t.Errorf("printing stages = %d, want 5", len(stages))
	}
	par, ok := got.Activity("parallel")
	if !ok {
		t.Fatal("parallel activity missing")
	}
	pstages, err := par.Stages()
	if err != nil {
		t.Fatal(err)
	}
	if len(pstages) != 3 || len(pstages[1]) != 2 {
		t.Errorf("parallel stages = %v", pstages)
	}
}

func TestXMIDoubleRoundTripStable(t *testing.T) {
	m := fullFixture(t)
	var b1, b2 bytes.Buffer
	if err := Encode(&b1, m); err != nil {
		t.Fatal(err)
	}
	m2, err := Decode(bytes.NewReader(b1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := Encode(&b2, m2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Error("XML not stable across round trips")
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []struct {
		name string
		xml  string
	}{
		{"malformed xml", `<uml.Model name="x"><class`},
		{"unknown parent stereotype", `<uml.Model name="x"><profile name="p"><stereotype name="S" extends="Class" parent="Ghost"></stereotype></profile></uml.Model>`},
		{"unknown class in association", `<uml.Model name="x"><association name="a" endA="A" endB="B"></association></uml.Model>`},
		{"unknown stereotype applied", `<uml.Model name="x"><class name="C"><apply stereotype="Ghost"></apply></class></uml.Model>`},
		{"unknown class in instance", `<uml.Model name="x"><objectDiagram name="d"><instance name="i" class="Ghost"/></objectDiagram></uml.Model>`},
		{"unknown association in link", `<uml.Model name="x"><class name="C"/><objectDiagram name="d"><instance name="i" class="C"/><instance name="j" class="C"/><link a="i" b="j" association="Ghost"/></objectDiagram></uml.Model>`},
		{"bad node kind", `<uml.Model name="x"><activity name="a"><node id="0" kind="Initial"/><node id="1" kind="Decision"/></activity></uml.Model>`},
		{"duplicate node id", `<uml.Model name="x"><activity name="a"><node id="0" kind="Initial"/><node id="0" kind="Final"/></activity></uml.Model>`},
		{"flow from unknown node", `<uml.Model name="x"><activity name="a"><node id="0" kind="Initial"/><flow src="9" dst="0"/></activity></uml.Model>`},
		{"bad attribute type", `<uml.Model name="x"><profile name="p"><stereotype name="S" extends="Class"><attribute name="a" type="Complex"/></stereotype></profile></uml.Model>`},
		{"bad metaclass", `<uml.Model name="x"><profile name="p"><stereotype name="S" extends="Package"/></profile></uml.Model>`},
		{"bad stereotype value", `<uml.Model name="x"><profile name="p"><stereotype name="S" extends="Class"><attribute name="a" type="Real"/></stereotype></profile><class name="C"><apply stereotype="S"><value attribute="a">NaNaN</value></apply></class></uml.Model>`},
		{"unknown stereotype attribute value", `<uml.Model name="x"><profile name="p"><stereotype name="S" extends="Class"/></profile><class name="C"><apply stereotype="S"><value attribute="ghost">1</value></apply></class></uml.Model>`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Decode(strings.NewReader(c.xml)); err == nil {
				t.Errorf("Decode should fail for %s", c.name)
			}
		})
	}
}
