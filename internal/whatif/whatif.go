// Package whatif implements the live-topology what-if engine (DESIGN.md
// §13): failure-impact analysis and first-class topology mutation over a
// set of registered service generations.
//
// The paper evaluates user-perceived properties on a fixed infrastructure;
// production networks churn. The engine owns a mutable topology.Graph, its
// compiled CSR view (internal/pathdisc) and one compiled dependability
// kernel (internal/depend) per registered service, and answers two
// questions without re-running the Steps 5–8 pipeline:
//
//   - Impact: "component X / link Y fails" → the availability delta for
//     every registered service, computed by forcing the failed components
//     down in each compiled structure (depend.CompiledStructure.WhatIf).
//     Transient — nothing is mutated or invalidated.
//
//   - Apply: "component X / link Y is gone (or added)" → the topology and
//     the compiled kernels are patched in place, and only the cache
//     entries of affected generations are evicted, found through a
//     reverse index from component/link → registered services. Removals
//     patch (pathdisc patch.go, depend patch.go); additions cross the
//     compile-vs-patch boundary — a new node or link can create paths the
//     original discovery never saw — so affected services are marked
//     stale for re-generation instead, and counted separately on
//     /metrics.
//
// Critical-component ranking (Critical) joins size-1/size-2 minimal-cut
// queries on the compiled kernels (depend.SmallCuts — single points of
// failure and fragile pairs) with the Birnbaum and Fussell–Vesely
// importances from internal/explain.
//
// Revalidate wires explain.Validate into the cache layer: registered
// generations are fingerprinted against a current object diagram, and
// stale ones are evicted from the shared cache so they self-invalidate
// instead of serving results for a topology that no longer exists.
//
// All methods are safe for concurrent use; mutation and analysis are
// serialised behind one mutex because kernel patching is not safe
// concurrently with searches.
package whatif

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"upsim/internal/cache"
	"upsim/internal/core"
	"upsim/internal/depend"
	"upsim/internal/explain"
	"upsim/internal/obs"
	"upsim/internal/pathdisc"
	"upsim/internal/topology"
	"upsim/internal/uml"
)

var (
	mSeconds = obs.NewHistogram("upsim_whatif_seconds",
		"Latency of what-if engine operations.", obs.LatencyBuckets, "op")
	mPatched = obs.NewCounter("upsim_whatif_patch_total",
		"Topology deltas applied by in-place kernel patching.", "op")
	mRecompiled = obs.NewCounter("upsim_whatif_recompile_total",
		"Service registrations invalidated for re-generation (compile-vs-patch boundary crossed).")
	mStale = obs.NewCounter("upsim_whatif_stale_generations_total",
		"Registered generations found stale by Revalidate and evicted from the cache.")
)

// registered is one service generation under management.
type registered struct {
	name     string
	genKey   string
	res      *core.Result
	model    depend.AvailabilityModel
	cs       *depend.CompiledStructure
	avail    map[string]float64
	baseline float64
	// links maps "a--b" endpoint pairs (canonical order) to the link
	// component ids of this service's structure, so endpoint-addressed
	// failures resolve to the right parallel links.
	links map[string][]string
	// stale: an addition crossed the patch boundary or Revalidate flagged
	// drift; the service needs re-generation and is excluded from analyses.
	stale       bool
	staleReason string
}

// Engine owns a live topology and the registered service generations
// analysed against it.
type Engine struct {
	mu       sync.Mutex
	graph    *topology.Graph
	csr      *pathdisc.Compiled
	cache    *cache.Cache // optional; targeted invalidation when set
	services []*registered
	// rev is the reverse index: component id (node name or link id) →
	// services whose structure references it. Only affected generations
	// invalidate on a delta.
	rev map[string][]*registered
}

// New builds an engine over the given topology. The compiled CSR view is
// built once and patched incrementally afterwards. c may be nil; when set,
// Apply and Revalidate evict affected generations from it.
func New(g *topology.Graph, c *cache.Cache) *Engine {
	return &Engine{
		graph: g,
		csr:   pathdisc.Compile(g),
		cache: c,
		rev:   make(map[string][]*registered),
	}
}

// Graph returns the engine's live topology.
func (e *Engine) Graph() *topology.Graph { return e.graph }

// Compiled returns the engine's (patched) CSR view of the topology.
func (e *Engine) Compiled() *pathdisc.Compiled { return e.csr }

// Register adds (or replaces) a service generation. genKey is the
// generation content hash — the root of the cache-key family that
// invalidates when a delta touches this service. The baseline availability
// is computed once, on registration.
func (e *Engine) Register(name, genKey string, res *core.Result, model depend.AvailabilityModel) error {
	_, cs, avail, err := depend.FromResult(res, model)
	if err != nil {
		return fmt.Errorf("whatif: register %q: %w", name, err)
	}
	baseline, err := cs.Exact(avail)
	if err != nil {
		return fmt.Errorf("whatif: register %q: %w", name, err)
	}
	r := &registered{
		name:     name,
		genKey:   genKey,
		res:      res,
		model:    model,
		cs:       cs,
		avail:    avail,
		baseline: baseline,
		links:    make(map[string][]string),
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for i, old := range e.services {
		if old.name == name {
			e.services = append(e.services[:i], e.services[i+1:]...)
			e.dropFromRev(old)
			break
		}
	}
	e.services = append(e.services, r)
	e.indexService(r)
	return nil
}

// indexService populates the reverse index and the endpoint→link-id table
// from the service's discovered paths (under e.mu).
func (e *Engine) indexService(r *registered) {
	seen := make(map[string]bool)
	add := func(token string) {
		if !seen[token] {
			seen[token] = true
			e.rev[token] = append(e.rev[token], r)
		}
	}
	for _, sp := range r.res.Services {
		for _, p := range sp.Paths {
			for _, n := range p.Nodes {
				add(n)
			}
			for i, id := range p.Edges {
				a, b := p.Nodes[i], p.Nodes[i+1]
				link := depend.LinkComponentID(a, b, id)
				add(link)
				ep := endpointKey(a, b)
				dup := false
				for _, l := range r.links[ep] {
					if l == link {
						dup = true
						break
					}
				}
				if !dup {
					r.links[ep] = append(r.links[ep], link)
				}
			}
		}
	}
}

// dropFromRev removes r from every reverse-index bucket (under e.mu).
func (e *Engine) dropFromRev(r *registered) {
	for token, list := range e.rev {
		for i, x := range list {
			if x == r {
				e.rev[token] = append(list[:i], list[i+1:]...)
				break
			}
		}
		if len(e.rev[token]) == 0 {
			delete(e.rev, token)
		}
	}
}

// endpointKey canonicalises an (a, b) endpoint pair.
func endpointKey(a, b string) string {
	if b < a {
		a, b = b, a
	}
	return a + "--" + b
}

// Failure names what fails: components by id (node names, or full
// "a--b#edge" link ids) and links by their endpoints ("a--b", matching
// every parallel edge between the pair).
type Failure struct {
	Components []string `json:"components,omitempty"`
	Links      []string `json:"links,omitempty"`
}

// ServiceDelta is the per-service outcome of an Impact or Apply call.
type ServiceDelta struct {
	Service  string  `json:"service"`
	GenKey   string  `json:"genKey"`
	Baseline float64 `json:"baseline"`
	Failed   float64 `json:"failed"`
	// Delta is Failed − Baseline (≤ 0 for pure failures).
	Delta float64 `json:"delta"`
	// Affected reports whether the failure touches this service's
	// structure at all; unaffected services keep Failed == Baseline.
	Affected bool `json:"affected"`
	// Dead reports that the change left an atomic service with no path
	// sets: the service cannot work at all (Failed is 0).
	Dead bool `json:"dead,omitempty"`
	// RecompileRequired marks a service invalidated by an addition (new
	// paths may exist that in-place patching cannot discover); Failed is
	// meaningless until the service is re-generated and re-registered.
	RecompileRequired bool `json:"recompileRequired,omitempty"`
}

// ImpactReport is the outcome of one transient what-if query.
type ImpactReport struct {
	// Failed lists the resolved failed component ids (nodes and links).
	Failed []string `json:"failed"`
	// Services holds one delta per registered service, in registration
	// order.
	Services []ServiceDelta `json:"services"`
}

// resolve expands a Failure into concrete component ids against the
// current topology (under e.mu).
func (e *Engine) resolve(f Failure) ([]string, error) {
	tokens := append([]string(nil), f.Components...)
	for _, l := range f.Links {
		a, b, ok := strings.Cut(l, "--")
		if !ok {
			return nil, fmt.Errorf("whatif: link %q: want \"a--b\" endpoints or a full \"a--b#edge\" component id", l)
		}
		if rest, id, hasID := strings.Cut(b, "#"); hasID {
			// Fully-qualified link id: pass through as a component.
			_ = rest
			_ = id
			tokens = append(tokens, l)
			continue
		}
		ids := e.graph.EdgesBetween(a, b)
		if len(ids) == 0 {
			return nil, fmt.Errorf("whatif: no link between %q and %q", a, b)
		}
		for _, id := range ids {
			tokens = append(tokens, depend.LinkComponentID(a, b, id))
		}
	}
	if len(tokens) == 0 {
		return nil, fmt.Errorf("whatif: empty failure: name at least one component or link")
	}
	return tokens, nil
}

// Impact answers the transient question: if these components/links fail,
// what is the availability delta for every registered service? Nothing is
// mutated and nothing invalidates; the failed availability is computed by
// forcing the components down in each affected compiled structure.
func (e *Engine) Impact(f Failure) (*ImpactReport, error) {
	start := time.Now()
	defer func() { mSeconds.With("impact").Observe(time.Since(start).Seconds()) }()
	e.mu.Lock()
	defer e.mu.Unlock()
	tokens, err := e.resolve(f)
	if err != nil {
		return nil, err
	}
	rep := &ImpactReport{Failed: tokens}
	for _, r := range e.services {
		d, err := r.deltaUnder(tokens)
		if err != nil {
			return nil, fmt.Errorf("whatif: service %q: %w", r.name, err)
		}
		rep.Services = append(rep.Services, d)
	}
	return rep, nil
}

// deltaUnder computes r's availability with the given components forced
// down (transiently; r is not modified).
func (r *registered) deltaUnder(tokens []string) (ServiceDelta, error) {
	d := ServiceDelta{Service: r.name, GenKey: r.genKey, Baseline: r.baseline, Failed: r.baseline}
	if r.stale {
		d.RecompileRequired = true
		return d, nil
	}
	if r.cs.Err() != nil {
		// A prior Apply already killed the structure; any further failure
		// leaves it dead.
		d.Dead = true
		d.Failed = 0
		d.Delta = -r.baseline
		return d, nil
	}
	forced := make(map[string]bool)
	for _, tok := range tokens {
		if r.cs.Has(tok) {
			forced[tok] = false
		}
	}
	if len(forced) == 0 {
		return d, nil
	}
	d.Affected = true
	failed, err := r.cs.WhatIf(r.avail, forced)
	if err != nil {
		return d, err
	}
	d.Failed = failed
	d.Delta = failed - r.baseline
	return d, nil
}

// Op is a topology delta kind.
type Op string

const (
	OpAddNode    Op = "add-node"
	OpRemoveNode Op = "remove-node"
	OpAddLink    Op = "add-link"
	OpRemoveLink Op = "remove-link"
)

// Delta is one topology mutation.
type Delta struct {
	Op Op `json:"op"`
	// Node names the node for OpAddNode/OpRemoveNode; Class is its class
	// for OpAddNode.
	Node  string `json:"node,omitempty"`
	Class string `json:"class,omitempty"`
	// A and B are the link endpoints for OpAddLink/OpRemoveLink. For
	// OpRemoveLink, EdgeID selects one specific parallel edge; leave it
	// negative to remove every edge between the endpoints. Label is the
	// association label for OpAddLink.
	A      string `json:"a,omitempty"`
	B      string `json:"b,omitempty"`
	EdgeID int    `json:"edgeId,omitempty"`
	Label  string `json:"label,omitempty"`
}

// ApplyReport is the outcome of one permanent topology change.
type ApplyReport struct {
	// Applied describes the deltas in application order.
	Applied []string `json:"applied"`
	// PatchOps counts individual kernel patch operations.
	PatchOps int `json:"patchOps"`
	// PatchedServices counts compiled structures updated in place.
	PatchedServices int `json:"patchedServices"`
	// RecompileServices counts services invalidated for re-generation
	// (additions crossing the patch boundary).
	RecompileServices int `json:"recompileServices"`
	// InvalidatedKeys counts cache entries evicted — only those whose key
	// embeds an affected generation's content hash.
	InvalidatedKeys int `json:"invalidatedKeys"`
	// AffectedGenerations lists the genKeys whose cache families were
	// evicted.
	AffectedGenerations []string `json:"affectedGenerations,omitempty"`
	// Services holds the post-change deltas (baseline = pre-change).
	Services []ServiceDelta `json:"services"`
}

// Apply permanently mutates the topology. Removals patch the CSR adjacency
// and every affected compiled dependability structure in place; additions
// patch the CSR but mark services whose partition gains the new
// node/link as stale for re-generation (the compile-vs-patch decision
// boundary, DESIGN.md §13). Affected generations — and only those — are
// evicted from the cache.
//
// Apply is not transactional: on error, deltas already applied remain.
func (e *Engine) Apply(deltas ...Delta) (*ApplyReport, error) {
	start := time.Now()
	defer func() { mSeconds.With("apply").Observe(time.Since(start).Seconds()) }()
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(deltas) == 0 {
		return nil, fmt.Errorf("whatif: empty delta list")
	}
	rep := &ApplyReport{}
	affected := make(map[*registered]bool)
	for _, d := range deltas {
		desc, err := e.applyOne(d, rep, affected)
		if err != nil {
			return nil, err
		}
		rep.Applied = append(rep.Applied, desc)
	}
	// Targeted cache invalidation: evict exactly the affected generations'
	// key families (the genKey itself plus every derived "…|<genKey>|…"
	// analysis and response-bytes entry).
	genKeys := make(map[string]bool)
	for r := range affected {
		if r.genKey != "" {
			genKeys[r.genKey] = true
		}
	}
	for k := range genKeys {
		rep.AffectedGenerations = append(rep.AffectedGenerations, k)
	}
	sort.Strings(rep.AffectedGenerations)
	if e.cache != nil && len(genKeys) > 0 {
		rep.InvalidatedKeys = e.cache.RemoveMatching(func(key string) bool {
			for k := range genKeys {
				if strings.Contains(key, k) {
					return true
				}
			}
			return false
		})
	}
	for _, r := range e.services {
		d := ServiceDelta{Service: r.name, GenKey: r.genKey, Baseline: r.baseline, Failed: r.baseline}
		if r.stale {
			d.RecompileRequired = true
			d.Affected = affected[r]
		} else if affected[r] {
			d.Affected = true
			if r.cs.Err() != nil {
				d.Dead = true
				d.Failed = 0
				d.Delta = -r.baseline
			} else {
				failed, err := r.cs.Exact(r.avail)
				if err != nil {
					return nil, fmt.Errorf("whatif: service %q: %w", r.name, err)
				}
				d.Failed = failed
				d.Delta = failed - r.baseline
			}
		}
		rep.Services = append(rep.Services, d)
	}
	return rep, nil
}

// applyOne applies a single delta (under e.mu), recording patch counts and
// the affected services.
func (e *Engine) applyOne(d Delta, rep *ApplyReport, affected map[*registered]bool) (string, error) {
	patchService := func(token string) {
		for _, r := range e.rev[token] {
			if r.stale {
				affected[r] = true
				continue
			}
			if r.cs.Has(token) {
				if !affected[r] {
					rep.PatchedServices++
				}
				affected[r] = true
				_, _ = r.cs.PatchRemoveComponent(token)
			}
		}
	}
	switch d.Op {
	case OpAddNode:
		if err := e.graph.AddNode(d.Node, d.Class); err != nil {
			return "", err
		}
		if err := e.csr.PatchAddNode(d.Node); err != nil {
			return "", err
		}
		rep.PatchOps++
		mPatched.With(string(OpAddNode)).Inc()
		// An isolated node creates no paths; nothing invalidates.
		return fmt.Sprintf("add-node %s:%s", d.Node, d.Class), nil

	case OpAddLink:
		id, err := e.graph.AddEdge(d.A, d.B, d.Label)
		if err != nil {
			return "", err
		}
		if err := e.csr.PatchAddEdge(d.A, d.B, id); err != nil {
			return "", err
		}
		rep.PatchOps++
		mPatched.With(string(OpAddLink)).Inc()
		// The patch boundary: a new link can create paths the original
		// discovery never saw, so every service reachable from the new
		// link must re-generate.
		e.markStaleReachable(d.A, fmt.Sprintf("link %s--%s#%d added", d.A, d.B, id), rep, affected)
		return fmt.Sprintf("add-link %s--%s#%d", d.A, d.B, id), nil

	case OpRemoveLink:
		ids := []int{d.EdgeID}
		if d.EdgeID < 0 {
			ids = e.graph.EdgesBetween(d.A, d.B)
			if len(ids) == 0 {
				return "", fmt.Errorf("whatif: no link between %q and %q", d.A, d.B)
			}
		}
		for _, id := range ids {
			edge, ok := e.graph.Edge(id)
			if !ok || (edge.A != d.A && edge.A != d.B) {
				return "", fmt.Errorf("whatif: edge %d does not join %q and %q", id, d.A, d.B)
			}
			if err := e.graph.RemoveEdge(id); err != nil {
				return "", err
			}
			if err := e.csr.PatchRemoveEdge(edge.A, edge.B, id); err != nil {
				return "", err
			}
			rep.PatchOps++
			mPatched.With(string(OpRemoveLink)).Inc()
			patchService(depend.LinkComponentID(edge.A, edge.B, id))
		}
		return fmt.Sprintf("remove-link %s (%d edge(s))", endpointKey(d.A, d.B), len(ids)), nil

	case OpRemoveNode:
		// Collect the incident link components before the graph forgets
		// them.
		var linkTokens []string
		for _, id := range append([]int(nil), e.graph.IncidentEdges(d.Node)...) {
			if edge, ok := e.graph.Edge(id); ok {
				linkTokens = append(linkTokens, depend.LinkComponentID(edge.A, edge.B, id))
			}
		}
		if err := e.graph.RemoveNode(d.Node); err != nil {
			return "", err
		}
		if err := e.csr.PatchRemoveNode(d.Node); err != nil {
			return "", err
		}
		rep.PatchOps++
		mPatched.With(string(OpRemoveNode)).Inc()
		patchService(d.Node)
		for _, tok := range linkTokens {
			patchService(tok)
		}
		return "remove-node " + d.Node, nil
	}
	return "", fmt.Errorf("whatif: unknown op %q", d.Op)
}

// markStaleReachable marks every non-stale service with a requester or
// provider reachable from start as needing re-generation (under e.mu).
func (e *Engine) markStaleReachable(start, reason string, rep *ApplyReport, affected map[*registered]bool) {
	reach := map[string]bool{start: true}
	stack := []string{start}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, id := range e.graph.IncidentEdges(n) {
			if edge, ok := e.graph.Edge(id); ok {
				if o := edge.Other(n); !reach[o] {
					reach[o] = true
					stack = append(stack, o)
				}
			}
		}
	}
	for _, r := range e.services {
		if r.stale {
			continue
		}
		hit := false
		for _, sp := range r.res.Services {
			if reach[sp.Requester] || reach[sp.Provider] {
				hit = true
				break
			}
		}
		if hit {
			r.stale = true
			r.staleReason = reason
			affected[r] = true
			rep.RecompileServices++
			mRecompiled.With().Inc()
		}
	}
}

// ServiceValidation is one service's Revalidate outcome.
type ServiceValidation struct {
	Service string `json:"service"`
	GenKey  string `json:"genKey"`
	Fresh   bool   `json:"fresh"`
	// Issues lists the drift explain.Validate found (empty when fresh).
	Issues []explain.Issue `json:"issues,omitempty"`
}

// Revalidate fingerprints every registered generation against the given
// current object diagram via explain.Validate. Stale generations are
// marked (excluded from analyses until re-registered) and their cache-key
// families evicted, so a drifted topology self-invalidates instead of
// serving cached answers for infrastructure that no longer exists. It
// returns one validation per service and the number of cache entries
// evicted.
func (e *Engine) Revalidate(ctx context.Context, cur *uml.ObjectDiagram) ([]ServiceValidation, int, error) {
	start := time.Now()
	defer func() { mSeconds.With("revalidate").Observe(time.Since(start).Seconds()) }()
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []ServiceValidation
	staleKeys := make(map[string]bool)
	for _, r := range e.services {
		v, err := explain.Validate(ctx, r.res, cur)
		if err != nil {
			return nil, 0, fmt.Errorf("whatif: validate %q: %w", r.name, err)
		}
		sv := ServiceValidation{Service: r.name, GenKey: r.genKey, Fresh: v.Fresh, Issues: v.Issues}
		if !v.Fresh {
			r.stale = true
			r.staleReason = "generation fingerprint drifted from current topology"
			if r.genKey != "" {
				staleKeys[r.genKey] = true
			}
			mStale.With().Inc()
		}
		out = append(out, sv)
	}
	evicted := 0
	if e.cache != nil && len(staleKeys) > 0 {
		evicted = e.cache.RemoveMatching(func(key string) bool {
			for k := range staleKeys {
				if strings.Contains(key, k) {
					return true
				}
			}
			return false
		})
	}
	return out, evicted, nil
}

// CriticalComponent is one entry of the critical-component ranking.
type CriticalComponent struct {
	Component string `json:"component"`
	Class     string `json:"class,omitempty"`
	// Services lists the registered services for which the component is
	// part of a size-1 or size-2 minimal cut.
	Services []string `json:"services"`
	// SinglePointOfFailure: the component alone is a minimal cut for at
	// least one service.
	SinglePointOfFailure bool `json:"singlePointOfFailure"`
	// PairCuts counts the size-2 minimal cuts the component appears in,
	// summed over services.
	PairCuts int `json:"pairCuts"`
	// Birnbaum and FussellVesely are the maxima over the services' rankings
	// (internal/explain).
	Birnbaum      float64 `json:"birnbaum"`
	FussellVesely float64 `json:"fussellVesely"`
}

// Critical ranks components by how close they are to taking a registered
// service down: single points of failure first (size-1 minimal cuts on the
// compiled kernel), then members of size-2 cuts, tie-broken by Birnbaum
// importance. top bounds the result (0 keeps everything). cutLimit bounds
// the per-service attribution's minimal-cut expansion and surfaces as a
// depend.BudgetError when exceeded.
func (e *Engine) Critical(ctx context.Context, top, cutLimit int) ([]CriticalComponent, error) {
	start := time.Now()
	defer func() { mSeconds.With("critical").Observe(time.Since(start).Seconds()) }()
	e.mu.Lock()
	defer e.mu.Unlock()
	byComp := make(map[string]*CriticalComponent)
	get := func(name string) *CriticalComponent {
		cc, ok := byComp[name]
		if !ok {
			cc = &CriticalComponent{Component: name}
			byComp[name] = cc
		}
		return cc
	}
	for _, r := range e.services {
		if r.stale || r.cs.Err() != nil {
			continue
		}
		cuts, err := r.cs.SmallCuts(2)
		if err != nil {
			return nil, fmt.Errorf("whatif: service %q: %w", r.name, err)
		}
		inService := make(map[string]bool)
		for _, cut := range cuts {
			for _, c := range cut {
				cc := get(c)
				if len(cut) == 1 {
					cc.SinglePointOfFailure = true
				} else {
					cc.PairCuts++
				}
				if !inService[c] {
					inService[c] = true
					cc.Services = append(cc.Services, r.name)
				}
			}
		}
		if len(inService) == 0 {
			continue
		}
		// Join with the existing importance measures from internal/explain.
		repo, err := explain.Explain(ctx, r.res, explain.Options{Model: r.model, CutLimit: cutLimit})
		if err != nil {
			return nil, fmt.Errorf("whatif: service %q: %w", r.name, err)
		}
		if repo.Attribution != nil {
			for _, imp := range repo.Attribution.Components {
				cc, ok := byComp[imp.Component]
				if !ok || !inService[imp.Component] {
					continue
				}
				if imp.Birnbaum > cc.Birnbaum {
					cc.Birnbaum = imp.Birnbaum
				}
				if imp.FussellVesely > cc.FussellVesely {
					cc.FussellVesely = imp.FussellVesely
				}
				if cc.Class == "" {
					cc.Class = imp.Class
				}
			}
		}
	}
	out := make([]CriticalComponent, 0, len(byComp))
	for _, cc := range byComp {
		out = append(out, *cc)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.SinglePointOfFailure != b.SinglePointOfFailure {
			return a.SinglePointOfFailure
		}
		if a.PairCuts != b.PairCuts {
			return a.PairCuts > b.PairCuts
		}
		if a.Birnbaum != b.Birnbaum {
			return a.Birnbaum > b.Birnbaum
		}
		return a.Component < b.Component
	})
	if top > 0 && len(out) > top {
		out = out[:top]
	}
	return out, nil
}

// Services returns the registered service names in registration order,
// with staleness flags.
func (e *Engine) Services() []ServiceStatus {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]ServiceStatus, 0, len(e.services))
	for _, r := range e.services {
		out = append(out, ServiceStatus{
			Service:     r.name,
			GenKey:      r.genKey,
			Baseline:    r.baseline,
			Stale:       r.stale,
			StaleReason: r.staleReason,
		})
	}
	return out
}

// ServiceStatus is one registered service's management view.
type ServiceStatus struct {
	Service     string  `json:"service"`
	GenKey      string  `json:"genKey"`
	Baseline    float64 `json:"baseline"`
	Stale       bool    `json:"stale,omitempty"`
	StaleReason string  `json:"staleReason,omitempty"`
}
