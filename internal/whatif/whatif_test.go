package whatif

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"upsim/internal/cache"
	"upsim/internal/casestudy"
	"upsim/internal/core"
	"upsim/internal/depend"
	"upsim/internal/topology"
	"upsim/internal/uml"
)

// fixture is one independent build of the USI case study with the printing
// (t1 → printS → p2) and backup (t7 → backupS → file servers) composite
// services generated. Each call builds a fresh model, so tests that mutate
// the shared topology do not interfere.
type fixture struct {
	model    *uml.Model
	graph    *topology.Graph
	printing *core.Result
	backup   *core.Result
}

func buildFixture(t *testing.T) *fixture {
	t.Helper()
	m, err := casestudy.BuildModel()
	if err != nil {
		t.Fatal(err)
	}
	gen, err := core.NewGenerator(m, casestudy.DiagramName)
	if err != nil {
		t.Fatal(err)
	}
	psvc, err := casestudy.PrintingService(m)
	if err != nil {
		t.Fatal(err)
	}
	printing, err := gen.Generate(psvc, casestudy.TableIMapping(), "print-t1", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	bsvc, err := casestudy.BackupService(m)
	if err != nil {
		t.Fatal(err)
	}
	backup, err := gen.Generate(bsvc, casestudy.BackupMapping(), "backup-t7", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{model: m, graph: gen.Graph(), printing: printing, backup: backup}
}

func newEngine(t *testing.T, f *fixture, c *cache.Cache) *Engine {
	t.Helper()
	e := New(f.graph, c)
	if err := e.Register("printing", "genP", f.printing, depend.ModelExact); err != nil {
		t.Fatal(err)
	}
	if err := e.Register("backup", "genB", f.backup, depend.ModelExact); err != nil {
		t.Fatal(err)
	}
	return e
}

func delta(t *testing.T, rep []ServiceDelta, service string) ServiceDelta {
	t.Helper()
	for _, d := range rep {
		if d.Service == service {
			return d
		}
	}
	t.Fatalf("service %q missing from report %+v", service, rep)
	return ServiceDelta{}
}

func TestImpactTransient(t *testing.T) {
	f := buildFixture(t)
	e := newEngine(t, f, nil)

	// Killing the printer takes the printing service to zero and leaves the
	// backup service untouched.
	rep, err := e.Impact(Failure{Components: []string{"p2"}})
	if err != nil {
		t.Fatal(err)
	}
	p := delta(t, rep.Services, "printing")
	if !p.Affected || p.Failed != 0 || p.Delta != -p.Baseline {
		t.Fatalf("printing under p2 failure = %+v, want affected, failed 0", p)
	}
	b := delta(t, rep.Services, "backup")
	if b.Affected || b.Failed != b.Baseline || b.Delta != 0 {
		t.Fatalf("backup under p2 failure = %+v, want unaffected", b)
	}

	// Impact is transient: asking again gives the same answer, and the
	// baseline is unchanged.
	rep2, err := e.Impact(Failure{Components: []string{"p2"}})
	if err != nil {
		t.Fatal(err)
	}
	if delta(t, rep2.Services, "printing") != p {
		t.Fatalf("second Impact differs: %+v vs %+v", rep2.Services, rep.Services)
	}

	if _, err := e.Impact(Failure{}); err == nil {
		t.Fatal("empty failure accepted")
	}
	if _, err := e.Impact(Failure{Links: []string{"nosuch--pair"}}); err == nil {
		t.Fatal("unknown link accepted")
	}
	if _, err := e.Impact(Failure{Links: []string{"malformed"}}); err == nil {
		t.Fatal("malformed link accepted")
	}
}

func TestImpactLinkByEndpoints(t *testing.T) {
	f := buildFixture(t)
	e := newEngine(t, f, nil)

	// Fail the first hop of the first discovered printing path, addressed by
	// its endpoints; this must resolve to the same components as the fully
	// qualified link ids.
	p0 := f.printing.Services[0].Paths[0]
	a, b, id := p0.Nodes[0], p0.Nodes[1], p0.Edges[0]
	byEndpoints, err := e.Impact(Failure{Links: []string{a + "--" + b}})
	if err != nil {
		t.Fatal(err)
	}
	ids := f.graph.EdgesBetween(a, b)
	comps := make([]string, 0, len(ids))
	for _, eid := range ids {
		comps = append(comps, depend.LinkComponentID(a, b, eid))
	}
	byID, err := e.Impact(Failure{Components: comps})
	if err != nil {
		t.Fatal(err)
	}
	dp, di := delta(t, byEndpoints.Services, "printing"), delta(t, byID.Services, "printing")
	if dp != di {
		t.Fatalf("endpoint-addressed failure %+v != id-addressed %+v", dp, di)
	}
	if !dp.Affected || dp.Delta >= 0 {
		t.Fatalf("first-hop failure should reduce availability: %+v", dp)
	}

	// The fully qualified form passes through resolve untouched.
	one, err := e.Impact(Failure{Links: []string{depend.LinkComponentID(a, b, id)}})
	if err != nil {
		t.Fatal(err)
	}
	if d := delta(t, one.Services, "printing"); !d.Affected {
		t.Fatalf("qualified link id did not resolve: %+v", d)
	}
}

// TestApplyMatchesImpact pins the core equivalence: permanently removing a
// component (Apply, in-place kernel patch) must yield exactly the
// availability that transiently forcing it down (Impact, Shannon
// conditioning) predicts.
func TestApplyMatchesImpact(t *testing.T) {
	p0 := buildFixture(t).printing.Services[0].Paths[0]
	targets := []Failure{
		{Components: []string{p0.Nodes[1]}},                 // intermediate device
		{Links: []string{p0.Nodes[1] + "--" + p0.Nodes[2]}}, // mid-path link(s)
	}
	for _, f := range targets {
		fxA, fxB := buildFixture(t), buildFixture(t)
		eImpact, eApply := newEngine(t, fxA, nil), newEngine(t, fxB, nil)
		want, err := eImpact.Impact(f)
		if err != nil {
			t.Fatal(err)
		}
		var deltas []Delta
		for _, c := range f.Components {
			deltas = append(deltas, Delta{Op: OpRemoveNode, Node: c})
		}
		for _, l := range f.Links {
			a, b, _ := strings.Cut(l, "--")
			deltas = append(deltas, Delta{Op: OpRemoveLink, A: a, B: b, EdgeID: -1})
		}
		got, err := eApply.Apply(deltas...)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range want.Services {
			g := delta(t, got.Services, w.Service)
			if math.Abs(g.Failed-w.Failed) > 1e-12 || g.Affected != w.Affected {
				t.Errorf("%v: Apply %s = %+v, Impact predicts %+v", f, w.Service, g, w)
			}
		}
		if got.PatchOps == 0 {
			t.Errorf("%v: no patch ops recorded", f)
		}
	}
}

func TestApplyRemoveProviderKillsService(t *testing.T) {
	f := buildFixture(t)
	e := newEngine(t, f, nil)
	rep, err := e.Apply(Delta{Op: OpRemoveNode, Node: "p2"})
	if err != nil {
		t.Fatal(err)
	}
	p := delta(t, rep.Services, "printing")
	if !p.Dead || p.Failed != 0 {
		t.Fatalf("printing after provider removal = %+v, want dead", p)
	}
	if b := delta(t, rep.Services, "backup"); b.Affected || b.Dead {
		t.Fatalf("backup disturbed by p2 removal: %+v", b)
	}
	// The topology really changed.
	if f.graph.HasNode("p2") {
		t.Fatal("p2 still in graph")
	}
	// A dead service stays dead under further transient queries, without
	// failing the whole report.
	imp, err := e.Impact(Failure{Components: []string{"t7"}})
	if err != nil {
		t.Fatal(err)
	}
	if d := delta(t, imp.Services, "printing"); !d.Dead || d.Failed != 0 {
		t.Fatalf("dead service delta = %+v", d)
	}
}

// TestApplyInvalidatesOnlyAffectedGenerations is the acceptance test for
// targeted cache invalidation: a delta touching only the printing service
// must evict the genP key family and leave every genB entry warm.
func TestApplyInvalidatesOnlyAffectedGenerations(t *testing.T) {
	f := buildFixture(t)
	c := cache.New(32)
	keys := []string{
		"genP",
		"avail|genP|model=exact",
		"explain|genP|model=exact|top=5",
		"genB",
		"avail|genB|model=exact",
		"qos|genB|hops=3",
	}
	for _, k := range keys {
		c.Add(k, k)
	}
	e := newEngine(t, f, c)

	rep, err := e.Apply(Delta{Op: OpRemoveNode, Node: "p2"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.InvalidatedKeys != 3 {
		t.Fatalf("InvalidatedKeys = %d, want 3 (the genP family)", rep.InvalidatedKeys)
	}
	if len(rep.AffectedGenerations) != 1 || rep.AffectedGenerations[0] != "genP" {
		t.Fatalf("AffectedGenerations = %v, want [genP]", rep.AffectedGenerations)
	}
	for _, k := range keys[:3] {
		if _, ok := c.Get(k); ok {
			t.Errorf("affected key %q survived", k)
		}
	}
	for _, k := range keys[3:] {
		if _, ok := c.Get(k); !ok {
			t.Errorf("unaffected key %q was evicted", k)
		}
	}
}

func TestApplyAddLinkCrossesPatchBoundary(t *testing.T) {
	f := buildFixture(t)
	c := cache.New(32)
	c.Add("avail|genP|model=exact", 1)
	c.Add("avail|genB|model=exact", 2)
	e := newEngine(t, f, c)

	// Adding an isolated node affects nothing.
	rep, err := e.Apply(Delta{Op: OpAddNode, Node: "spare1", Class: "Device"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RecompileServices != 0 || rep.InvalidatedKeys != 0 {
		t.Fatalf("isolated node invalidated something: %+v", rep)
	}

	// Wiring it into the network can create paths discovery never saw:
	// every service in the connected component must re-generate.
	rep, err = e.Apply(Delta{Op: OpAddLink, A: "spare1", B: f.printing.Services[0].Paths[0].Nodes[1], Label: "utp"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RecompileServices == 0 {
		t.Fatal("link addition did not mark any service for re-generation")
	}
	p := delta(t, rep.Services, "printing")
	if !p.RecompileRequired {
		t.Fatalf("printing not marked stale: %+v", p)
	}
	if rep.InvalidatedKeys == 0 {
		t.Fatal("stale generations kept their cache entries")
	}
	// Stale services are excluded from analyses until re-registered.
	imp, err := e.Impact(Failure{Components: []string{"p2"}})
	if err != nil {
		t.Fatal(err)
	}
	if d := delta(t, imp.Services, "printing"); !d.RecompileRequired || d.Affected {
		t.Fatalf("stale service analysed anyway: %+v", d)
	}
	var stale int
	for _, s := range e.Services() {
		if s.Stale {
			stale++
			if s.StaleReason == "" {
				t.Error("stale service without reason")
			}
		}
	}
	if stale != rep.RecompileServices {
		t.Fatalf("Services() reports %d stale, Apply reported %d", stale, rep.RecompileServices)
	}

	// Re-registering with a fresh generation clears staleness.
	if err := e.Register("printing", "genP2", f.printing, depend.ModelExact); err != nil {
		t.Fatal(err)
	}
	for _, s := range e.Services() {
		if s.Service == "printing" && s.Stale {
			t.Fatal("re-registered service still stale")
		}
	}
}

func TestApplyErrors(t *testing.T) {
	f := buildFixture(t)
	e := newEngine(t, f, nil)
	if _, err := e.Apply(); err == nil {
		t.Fatal("empty delta list accepted")
	}
	if _, err := e.Apply(Delta{Op: "explode"}); err == nil {
		t.Fatal("unknown op accepted")
	}
	if _, err := e.Apply(Delta{Op: OpRemoveNode, Node: "nosuch"}); err == nil {
		t.Fatal("removing unknown node accepted")
	}
	if _, err := e.Apply(Delta{Op: OpRemoveLink, A: "t1", B: "p2", EdgeID: -1}); err == nil {
		t.Fatal("removing non-existent link accepted")
	}
}

func TestCriticalRanking(t *testing.T) {
	f := buildFixture(t)
	e := newEngine(t, f, nil)
	crit, err := e.Critical(context.Background(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(crit) == 0 {
		t.Fatal("no critical components")
	}
	// Requester, provider and print server sit on every path of their
	// services: all three must rank as single points of failure.
	spof := make(map[string]bool)
	for _, cc := range crit {
		if cc.SinglePointOfFailure {
			spof[cc.Component] = true
		}
	}
	for _, want := range []string{"t1", "p2", "printS"} {
		if !spof[want] {
			t.Errorf("%s not ranked as single point of failure (got %v)", want, spof)
		}
	}
	// SPOFs sort before pair-only members, and the join carried the
	// explain importances for at least the SPOFs.
	sawPairOnly := false
	for _, cc := range crit {
		if !cc.SinglePointOfFailure {
			sawPairOnly = true
		} else {
			if sawPairOnly {
				t.Fatal("single point of failure ranked below a pair-only member")
			}
			if cc.Birnbaum <= 0 {
				t.Errorf("SPOF %s has Birnbaum %v, want > 0", cc.Component, cc.Birnbaum)
			}
		}
		if len(cc.Services) == 0 {
			t.Errorf("%s has no services", cc.Component)
		}
	}
	// top bounds the result.
	top3, err := e.Critical(context.Background(), 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(top3) != 3 {
		t.Fatalf("Critical(top=3) returned %d", len(top3))
	}
}

func TestCriticalBudgetError(t *testing.T) {
	f := buildFixture(t)
	e := newEngine(t, f, nil)
	_, err := e.Critical(context.Background(), 0, 1)
	var be *depend.BudgetError
	if err == nil {
		t.Skip("cut-set expansion fits in budget 1 on this fixture")
	}
	if !errors.As(err, &be) {
		t.Fatalf("Critical(cutLimit=1) error = %v, want depend.BudgetError", err)
	}
}

func TestRevalidate(t *testing.T) {
	f := buildFixture(t)
	c := cache.New(32)
	c.Add("avail|genP|model=exact", 1)
	c.Add("avail|genB|model=exact", 2)
	e := newEngine(t, f, c)

	// Against an identical rebuild of the infrastructure, every generation
	// is fresh and nothing evicts.
	m2, err := casestudy.BuildModel()
	if err != nil {
		t.Fatal(err)
	}
	cur, ok := m2.Diagram(casestudy.DiagramName)
	if !ok {
		t.Fatal("case study diagram missing")
	}
	vals, evicted, err := e.Revalidate(context.Background(), cur)
	if err != nil {
		t.Fatal(err)
	}
	if evicted != 0 {
		t.Fatalf("fresh revalidation evicted %d entries", evicted)
	}
	for _, v := range vals {
		if !v.Fresh {
			t.Fatalf("generation %q stale against identical topology: %+v", v.Service, v.Issues)
		}
	}

	// Against a diagram the generations no longer describe, every service
	// goes stale and its cache family self-invalidates.
	empty := m2.NewObjectDiagram("drifted")
	vals, evicted, err = e.Revalidate(context.Background(), empty)
	if err != nil {
		t.Fatal(err)
	}
	if evicted != 2 {
		t.Fatalf("evicted = %d, want both generations' entries", evicted)
	}
	for _, v := range vals {
		if v.Fresh || len(v.Issues) == 0 {
			t.Fatalf("generation %q fresh against empty topology", v.Service)
		}
	}
	if _, ok := c.Get("avail|genP|model=exact"); ok {
		t.Fatal("stale generation entry survived")
	}
	for _, s := range e.Services() {
		if !s.Stale {
			t.Fatalf("service %q not marked stale", s.Service)
		}
	}
}

func TestRegisterReplaces(t *testing.T) {
	f := buildFixture(t)
	e := newEngine(t, f, nil)
	if n := len(e.Services()); n != 2 {
		t.Fatalf("services = %d", n)
	}
	if err := e.Register("printing", "genP-v2", f.printing, depend.ModelExact); err != nil {
		t.Fatal(err)
	}
	ss := e.Services()
	if len(ss) != 2 {
		t.Fatalf("re-register duplicated: %d services", len(ss))
	}
	found := false
	for _, s := range ss {
		if s.Service == "printing" {
			found = true
			if s.GenKey != "genP-v2" {
				t.Fatalf("genKey = %q", s.GenKey)
			}
		}
	}
	if !found {
		t.Fatal("printing missing after re-register")
	}
	if err := e.Register("bad", "k", &core.Result{}, depend.ModelExact); err == nil {
		t.Fatal("registering empty result succeeded")
	}
}
