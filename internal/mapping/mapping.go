// Package mapping implements the service mapping of the UPSIM methodology
// (Section V-A3): the association of every atomic service with a service
// mapping pair — the (requester, provider) ICT components that bound the
// part of the infrastructure the atomic service uses. The XML wire format
// follows the paper's Figure 3:
//
//	<atomicservice id="atomic_service_1">
//	    <requester id="component_a"></requester>
//	    <provider id="component_b"></provider>
//	</atomicservice>
//
// wrapped in a single <servicemapping> root element so that a file can carry
// the pairs of several services ("Additional service mapping pairs could be
// listed in the mapping file to support other services", Section VI-D).
//
// The mapping is the only model that must change when the user perspective
// changes, which is the paper's key lever for dynamic environments; the
// Remap helpers implement the mobility and migration scenarios of Section
// V-A3.
package mapping

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"
)

// Pair is one service mapping pair: an atomic service bound to the
// requester and provider ICT components (instance names in the
// infrastructure object diagram).
type Pair struct {
	AtomicService string
	Requester     string
	Provider      string
}

// Validate checks that all three identifiers are present (names consisting
// only of whitespace count as missing) and the pair does not map a service
// onto a single component.
func (p Pair) Validate() error {
	if strings.TrimSpace(p.AtomicService) == "" {
		return fmt.Errorf("mapping: pair without atomic service id")
	}
	if strings.TrimSpace(p.Requester) == "" {
		return fmt.Errorf("mapping: pair %q without requester id", p.AtomicService)
	}
	if strings.TrimSpace(p.Provider) == "" {
		return fmt.Errorf("mapping: pair %q without provider id", p.AtomicService)
	}
	if p.Requester == p.Provider {
		return fmt.Errorf("mapping: pair %q maps requester and provider to the same component %q",
			p.AtomicService, p.Requester)
	}
	return nil
}

// String renders the pair as a Table-I style row.
func (p Pair) String() string {
	return fmt.Sprintf("%s: %s -> %s", p.AtomicService, p.Requester, p.Provider)
}

// Mapping is an ordered set of pairs keyed by atomic service name. The
// atomic service is the unique key (Section VI-D: "the service mapping
// should contain at least five pairs with their atomic service as unique
// key").
type Mapping struct {
	pairs []Pair
	index map[string]int
}

// New creates an empty mapping.
func New() *Mapping {
	return &Mapping{index: make(map[string]int)}
}

// Add inserts a pair. Re-adding an atomic service is an error; use Remap to
// change an existing pair.
func (m *Mapping) Add(p Pair) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if _, dup := m.index[p.AtomicService]; dup {
		return fmt.Errorf("mapping: duplicate atomic service %q", p.AtomicService)
	}
	m.index[p.AtomicService] = len(m.pairs)
	m.pairs = append(m.pairs, p)
	return nil
}

// Pair looks up the pair for an atomic service.
func (m *Mapping) Pair(atomicService string) (Pair, bool) {
	i, ok := m.index[atomicService]
	if !ok {
		return Pair{}, false
	}
	return m.pairs[i], true
}

// Pairs returns all pairs in insertion order.
func (m *Mapping) Pairs() []Pair {
	out := make([]Pair, len(m.pairs))
	copy(out, m.pairs)
	return out
}

// Len returns the number of pairs.
func (m *Mapping) Len() int { return len(m.pairs) }

// Remap replaces the requester and provider of an existing atomic service —
// the minimal change needed to generate the UPSIM for a different user
// perspective (Section VI-H: "we only have to make minor adjustments to the
// service mapping").
func (m *Mapping) Remap(atomicService, requester, provider string) error {
	i, ok := m.index[atomicService]
	if !ok {
		return fmt.Errorf("mapping: unknown atomic service %q", atomicService)
	}
	p := Pair{AtomicService: atomicService, Requester: requester, Provider: provider}
	if err := p.Validate(); err != nil {
		return err
	}
	m.pairs[i] = p
	return nil
}

// RemapComponent substitutes every occurrence of the component old (as
// requester or provider) by new, returning the number of pairs changed.
// This implements the mobility scenario (a user moves to a different client)
// and the migration scenario (a service moves to a different provider) in
// one primitive.
func (m *Mapping) RemapComponent(old, new string) (int, error) {
	if old == "" || new == "" {
		return 0, fmt.Errorf("mapping: empty component name in remap")
	}
	changed := 0
	for i, p := range m.pairs {
		touched := false
		if p.Requester == old {
			p.Requester = new
			touched = true
		}
		if p.Provider == old {
			p.Provider = new
			touched = true
		}
		if !touched {
			continue
		}
		if err := p.Validate(); err != nil {
			return changed, err
		}
		m.pairs[i] = p
		changed++
	}
	return changed, nil
}

// Clone returns a deep copy, used to derive per-perspective mappings without
// mutating the base.
func (m *Mapping) Clone() *Mapping {
	c := New()
	for _, p := range m.pairs {
		_ = c.Add(p)
	}
	return c
}

// Components returns the distinct component names referenced by the mapping
// in first-use order (requesters and providers).
func (m *Mapping) Components() []string {
	seen := make(map[string]bool)
	var out []string
	for _, p := range m.pairs {
		for _, c := range []string{p.Requester, p.Provider} {
			if !seen[c] {
				seen[c] = true
				out = append(out, c)
			}
		}
	}
	return out
}

// --- XML wire format (Figure 3) ---

type xmlMapping struct {
	XMLName xml.Name     `xml:"servicemapping"`
	Pairs   []xmlService `xml:"atomicservice"`
}

type xmlService struct {
	ID        string `xml:"id,attr"`
	Requester xmlRef `xml:"requester"`
	Provider  xmlRef `xml:"provider"`
}

type xmlRef struct {
	ID string `xml:"id,attr"`
}

// Encode writes the mapping as indented XML in the Figure 3 dialect.
func (m *Mapping) Encode(w io.Writer) error {
	x := xmlMapping{}
	for _, p := range m.pairs {
		x.Pairs = append(x.Pairs, xmlService{
			ID:        p.AtomicService,
			Requester: xmlRef{ID: p.Requester},
			Provider:  xmlRef{ID: p.Provider},
		})
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(x); err != nil {
		return fmt.Errorf("mapping: encode: %w", err)
	}
	return enc.Flush()
}

// Parse reads a mapping from the Figure 3 XML dialect. Every pair is
// validated at import time: empty or whitespace-only atomic service,
// requester and provider ids and duplicate atomic-service entries are
// rejected with an error naming the offending pair's position in the file.
func Parse(r io.Reader) (*Mapping, error) {
	var x xmlMapping
	if err := xml.NewDecoder(r).Decode(&x); err != nil {
		return nil, fmt.Errorf("mapping: parse: %w", err)
	}
	m := New()
	for i, s := range x.Pairs {
		if err := m.Add(Pair{
			AtomicService: s.ID,
			Requester:     s.Requester.ID,
			Provider:      s.Provider.ID,
		}); err != nil {
			return nil, fmt.Errorf("mapping: parse: <atomicservice> element %d of %d: %w",
				i+1, len(x.Pairs), err)
		}
	}
	return m, nil
}
