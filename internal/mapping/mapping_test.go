package mapping

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

// tableI builds the paper's Table I mapping for the printing service from
// client t1 to printer p2 through server printS.
func tableI(t *testing.T) *Mapping {
	t.Helper()
	m := New()
	pairs := []Pair{
		{"Request printing", "t1", "printS"},
		{"Login to printer", "p2", "printS"},
		{"Send document list", "printS", "p2"},
		{"Select documents", "p2", "printS"},
		{"Send documents", "printS", "p2"},
	}
	for _, p := range pairs {
		if err := m.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

func TestMappingBasics(t *testing.T) {
	m := tableI(t)
	if m.Len() != 5 {
		t.Fatalf("Len = %d", m.Len())
	}
	p, ok := m.Pair("Request printing")
	if !ok || p.Requester != "t1" || p.Provider != "printS" {
		t.Errorf("Pair = %+v, %v", p, ok)
	}
	if _, ok := m.Pair("ghost"); ok {
		t.Error("unknown atomic service should be absent")
	}
	got := m.Pairs()
	if len(got) != 5 || got[0].AtomicService != "Request printing" || got[4].AtomicService != "Send documents" {
		t.Errorf("Pairs order = %v", got)
	}
	comps := m.Components()
	want := []string{"t1", "printS", "p2"}
	if len(comps) != 3 {
		t.Fatalf("Components = %v", comps)
	}
	for i := range want {
		if comps[i] != want[i] {
			t.Errorf("Components[%d] = %s, want %s", i, comps[i], want[i])
		}
	}
	if s := p.String(); !strings.Contains(s, "t1 -> printS") {
		t.Errorf("Pair.String = %q", s)
	}
}

func TestMappingAddErrors(t *testing.T) {
	m := tableI(t)
	cases := []Pair{
		{"", "a", "b"},
		{"x", "", "b"},
		{"x", "a", ""},
		{"x", "a", "a"},
		{"Request printing", "a", "b"}, // duplicate key
	}
	for _, p := range cases {
		if err := m.Add(p); err == nil {
			t.Errorf("Add(%+v) should fail", p)
		}
	}
	if m.Len() != 5 {
		t.Error("failed adds must not modify the mapping")
	}
}

func TestRemap(t *testing.T) {
	m := tableI(t)
	// New perspective: client t15, printer p3 (the paper's Figure 12 shift).
	if err := m.Remap("Request printing", "t15", "printS"); err != nil {
		t.Fatal(err)
	}
	p, _ := m.Pair("Request printing")
	if p.Requester != "t15" {
		t.Errorf("after remap: %+v", p)
	}
	if err := m.Remap("ghost", "a", "b"); err == nil {
		t.Error("remapping unknown service should fail")
	}
	if err := m.Remap("Request printing", "x", "x"); err == nil {
		t.Error("remap to identical pair should fail")
	}
}

func TestRemapComponent(t *testing.T) {
	m := tableI(t)
	// Printer p2 replaced by p3 everywhere (mobility of the physical
	// endpoint): touches 4 of 5 pairs.
	n, err := m.RemapComponent("p2", "p3")
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Errorf("changed = %d, want 4", n)
	}
	for _, p := range m.Pairs() {
		if p.Requester == "p2" || p.Provider == "p2" {
			t.Errorf("p2 still present: %+v", p)
		}
	}
	if _, err := m.RemapComponent("", "x"); err == nil {
		t.Error("empty old name should fail")
	}
	if _, err := m.RemapComponent("x", ""); err == nil {
		t.Error("empty new name should fail")
	}
	// Remapping provider onto the requester of the same pair must fail
	// validation.
	m2 := New()
	_ = m2.Add(Pair{"s", "a", "b"})
	if _, err := m2.RemapComponent("b", "a"); err == nil {
		t.Error("remap creating identical pair should fail")
	}
}

func TestClone(t *testing.T) {
	m := tableI(t)
	c := m.Clone()
	if err := c.Remap("Request printing", "t15", "printS"); err != nil {
		t.Fatal(err)
	}
	orig, _ := m.Pair("Request printing")
	if orig.Requester != "t1" {
		t.Error("clone mutation leaked into the original")
	}
}

func TestXMLRoundTrip(t *testing.T) {
	m := tableI(t)
	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != m.Len() {
		t.Fatalf("round trip Len = %d", got.Len())
	}
	for _, want := range m.Pairs() {
		p, ok := got.Pair(want.AtomicService)
		if !ok || p != want {
			t.Errorf("round trip pair %q = %+v", want.AtomicService, p)
		}
	}
}

func TestParseFigure3Dialect(t *testing.T) {
	// The exact element shapes of Figure 3.
	src := `<servicemapping>
  <atomicservice id="atomic_service_1">
    <requester id="component_a"></requester>
    <provider id="component_b"></provider>
  </atomicservice>
</servicemapping>`
	m, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	p, ok := m.Pair("atomic_service_1")
	if !ok || p.Requester != "component_a" || p.Provider != "component_b" {
		t.Errorf("parsed pair = %+v, %v", p, ok)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"malformed", `<servicemapping><atomicservice`},
		{"missing requester", `<servicemapping><atomicservice id="s"><provider id="b"/></atomicservice></servicemapping>`},
		{"missing provider", `<servicemapping><atomicservice id="s"><requester id="a"/></atomicservice></servicemapping>`},
		{"missing id", `<servicemapping><atomicservice><requester id="a"/><provider id="b"/></atomicservice></servicemapping>`},
		{"identical pair", `<servicemapping><atomicservice id="s"><requester id="a"/><provider id="a"/></atomicservice></servicemapping>`},
		{"duplicate service", `<servicemapping><atomicservice id="s"><requester id="a"/><provider id="b"/></atomicservice><atomicservice id="s"><requester id="c"/><provider id="d"/></atomicservice></servicemapping>`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Parse(strings.NewReader(c.src)); err == nil {
				t.Errorf("Parse should fail for %s", c.name)
			}
		})
	}
}

// Property: any mapping built from valid distinct pairs survives an XML
// round trip unchanged.
func TestXMLRoundTripProperty(t *testing.T) {
	names := []string{"alpha", "beta", "gamma", "delta"}
	comps := []string{"c1", "c2", "c3", "c4", "c5"}
	f := func(reqs, provs [4]uint8) bool {
		m := New()
		for i, n := range names {
			req := comps[int(reqs[i])%len(comps)]
			prov := comps[int(provs[i])%len(comps)]
			if req == prov {
				prov = comps[(int(provs[i])+1)%len(comps)]
			}
			if err := m.Add(Pair{n, req, prov}); err != nil {
				return false
			}
		}
		var buf bytes.Buffer
		if err := m.Encode(&buf); err != nil {
			return false
		}
		got, err := Parse(&buf)
		if err != nil || got.Len() != m.Len() {
			return false
		}
		for _, want := range m.Pairs() {
			p, ok := got.Pair(want.AtomicService)
			if !ok || p != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Whitespace-only identifiers are as useless as empty ones; Validate trims
// before judging so "  " cannot sneak a blank name into the pipeline.
func TestValidateRejectsWhitespaceNames(t *testing.T) {
	cases := []struct {
		p    Pair
		want string
	}{
		{Pair{"  ", "a", "b"}, "without atomic service id"},
		{Pair{"s", " \t", "b"}, "without requester id"},
		{Pair{"s", "a", "\n"}, "without provider id"},
	}
	for _, c := range cases {
		err := c.p.Validate()
		if err == nil {
			t.Errorf("Validate(%+v) should fail", c.p)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("Validate(%+v) = %v, want substring %q", c.p, err, c.want)
		}
	}
}

// Parse errors name the offending <atomicservice> element by position so a
// defect in a long hand-written mapping file is findable.
func TestParseErrorIsPositional(t *testing.T) {
	src := `<servicemapping>
  <atomicservice id="ok"><requester id="a"/><provider id="b"/></atomicservice>
  <atomicservice id="bad"><requester id="  "/><provider id="b"/></atomicservice>
</servicemapping>`
	_, err := Parse(strings.NewReader(src))
	if err == nil {
		t.Fatal("Parse accepted a whitespace requester")
	}
	for _, want := range []string{"element 2 of 2", "requester"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}
