package pathdisc

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"upsim/internal/topology"
)

// applyRandomMutation applies one random delta to both the graph and the
// patched kernel, keeping src/dst alive so enumerations stay interesting.
// It returns a description for failure messages.
func applyRandomMutation(t *testing.T, rng *rand.Rand, g *topology.Graph, c *Compiled, src, dst string, seq int) string {
	t.Helper()
	for attempts := 0; attempts < 20; attempts++ {
		switch rng.Intn(5) {
		case 0: // add node
			name := fmt.Sprintf("x%d", seq)
			if g.HasNode(name) {
				continue
			}
			if err := g.AddNode(name, "Patched"); err != nil {
				t.Fatalf("AddNode: %v", err)
			}
			if err := c.PatchAddNode(name); err != nil {
				t.Fatalf("PatchAddNode: %v", err)
			}
			return "add-node " + name
		case 1, 2: // add edge (biased: keeps graphs from draining)
			nodes := g.Nodes()
			a := nodes[rng.Intn(len(nodes))].Name
			b := nodes[rng.Intn(len(nodes))].Name // may equal a: self-loop
			id, err := g.AddEdge(a, b, "m")
			if err != nil {
				t.Fatalf("AddEdge: %v", err)
			}
			if err := c.PatchAddEdge(a, b, id); err != nil {
				t.Fatalf("PatchAddEdge: %v", err)
			}
			return fmt.Sprintf("add-edge %s-%s#%d", a, b, id)
		case 3: // remove edge
			edges := g.Edges()
			if len(edges) == 0 {
				continue
			}
			e := edges[rng.Intn(len(edges))]
			if err := g.RemoveEdge(e.ID); err != nil {
				t.Fatalf("RemoveEdge: %v", err)
			}
			if err := c.PatchRemoveEdge(e.A, e.B, e.ID); err != nil {
				t.Fatalf("PatchRemoveEdge: %v", err)
			}
			return fmt.Sprintf("remove-edge %s-%s#%d", e.A, e.B, e.ID)
		case 4: // remove node (never an enumeration endpoint)
			nodes := g.Nodes()
			n := nodes[rng.Intn(len(nodes))].Name
			if n == src || n == dst {
				continue
			}
			if err := g.RemoveNode(n); err != nil {
				t.Fatalf("RemoveNode: %v", err)
			}
			if err := c.PatchRemoveNode(n); err != nil {
				t.Fatalf("PatchRemoveNode: %v", err)
			}
			return "remove-node " + n
		}
	}
	return "no-op"
}

// comparePatchedToRecompiled asserts the patched kernel and a fresh Compile
// of the mutated graph enumerate identical path sequences under every
// variant/option combination. Equivalence is behavioural: dense IDs may
// differ after tombstoning, but emitted paths (names + topology edge IDs)
// must match exactly, including order.
func comparePatchedToRecompiled(t *testing.T, g *topology.Graph, patched *Compiled, src, dst, ctxt string) {
	t.Helper()
	fresh := Compile(g)
	for _, opts := range []Options{{}, {CollapseParallel: true}, {MaxDepth: 4}} {
		wantPaths, wantStats, wantErr := fresh.AllPaths(src, dst, opts)
		gotPaths, gotStats, gotErr := patched.AllPaths(src, dst, opts)
		if (wantErr == nil) != (gotErr == nil) || (wantErr != nil && wantErr.Error() != gotErr.Error()) {
			t.Fatalf("%s: opts=%+v error mismatch: fresh=%v patched=%v", ctxt, opts, wantErr, gotErr)
		}
		if wantErr != nil {
			continue
		}
		if !reflect.DeepEqual(wantPaths, gotPaths) {
			t.Fatalf("%s: opts=%+v paths diverge:\nfresh:   %v\npatched: %v", ctxt, opts, wantPaths, gotPaths)
		}
		if wantStats.Paths != gotStats.Paths {
			t.Fatalf("%s: opts=%+v stats.Paths %d != %d", ctxt, opts, wantStats.Paths, gotStats.Paths)
		}
		iterPaths, _, iterErr := patched.AllPathsIterative(src, dst, opts)
		if iterErr != nil {
			t.Fatalf("%s: iterative: %v", ctxt, iterErr)
		}
		if !reflect.DeepEqual(wantPaths, iterPaths) {
			t.Fatalf("%s: opts=%+v iterative diverges from fresh", ctxt, opts)
		}
	}
	if fresh.NumNodes() != patched.NumNodes() {
		t.Fatalf("%s: NumNodes %d != %d", ctxt, patched.NumNodes(), fresh.NumNodes())
	}
	if fresh.NumEdges() != patched.NumEdges() {
		t.Fatalf("%s: NumEdges %d != %d", ctxt, patched.NumEdges(), fresh.NumEdges())
	}
	if fresh.MaxDegree() != patched.MaxDegree() {
		t.Fatalf("%s: MaxDegree %d != %d", ctxt, patched.MaxDegree(), fresh.MaxDegree())
	}
}

// TestPatchEquivalence is the property test for the incremental CSR patch:
// over random add/remove interleavings on the ladder and fat-tree
// generators, a patched kernel must stay behaviourally identical to a cold
// Compile of the mutated graph.
func TestPatchEquivalence(t *testing.T) {
	seeds := []struct {
		name     string
		build    func() (*topology.Graph, error)
		src, dst string
	}{
		{"ladder6", func() (*topology.Graph, error) { return topology.Ladder(6) }, "n0", "n11"},
		{"fattree4", func() (*topology.Graph, error) { return topology.FatTree(4) }, "h0", "h15"},
	}
	for _, sd := range seeds {
		t.Run(sd.name, func(t *testing.T) {
			for trial := 0; trial < 8; trial++ {
				g, err := sd.build()
				if err != nil {
					t.Fatalf("build: %v", err)
				}
				c := Compile(g)
				rng := rand.New(rand.NewSource(int64(1000*trial + 7)))
				for step := 0; step < 12; step++ {
					desc := applyRandomMutation(t, rng, g, c, sd.src, sd.dst, trial*100+step)
					// Checking after every step would be O(steps²) path
					// enumerations on the fat tree; check a prefix densely
					// and then the end state.
					if step < 4 || step == 11 {
						ctxt := fmt.Sprintf("%s trial=%d step=%d op=%s", sd.name, trial, step, desc)
						comparePatchedToRecompiled(t, g, c, sd.src, sd.dst, ctxt)
					}
				}
			}
		})
	}
}

// TestPatchRemovedEndpoint pins the error parity when an enumeration
// endpoint itself is removed: the patched kernel must fail exactly like a
// fresh compile of the mutated graph.
func TestPatchRemovedEndpoint(t *testing.T) {
	g, err := topology.Ladder(3)
	if err != nil {
		t.Fatal(err)
	}
	c := Compile(g)
	if err := g.RemoveNode("n0"); err != nil {
		t.Fatal(err)
	}
	if err := c.PatchRemoveNode("n0"); err != nil {
		t.Fatal(err)
	}
	_, _, wantErr := Compile(g).AllPaths("n0", "n5", Options{})
	_, _, gotErr := c.AllPaths("n0", "n5", Options{})
	if wantErr == nil || gotErr == nil || wantErr.Error() != gotErr.Error() {
		t.Fatalf("error parity: fresh=%v patched=%v", wantErr, gotErr)
	}
}

// TestPatchErrors covers the defensive paths.
func TestPatchErrors(t *testing.T) {
	g, err := topology.Ladder(2)
	if err != nil {
		t.Fatal(err)
	}
	c := Compile(g)
	if err := c.PatchAddNode("n0"); err == nil {
		t.Error("PatchAddNode(existing) succeeded")
	}
	if err := c.PatchAddEdge("n0", "nope", 99); err == nil {
		t.Error("PatchAddEdge(unknown) succeeded")
	}
	if err := c.PatchRemoveEdge("n0", "n1", 99); err == nil {
		t.Error("PatchRemoveEdge(unknown id) succeeded")
	}
	if err := c.PatchRemoveNode("nope"); err == nil {
		t.Error("PatchRemoveNode(unknown) succeeded")
	}
}
