package pathdisc

// This file implements the compiled path-discovery kernel: a one-time
// lowering of the string-keyed topology.Graph into an integer-indexed CSR
// (compressed sparse row) form over which the exponential all-simple-paths
// search runs allocation-free per expansion. The map-based variants in
// pathdisc.go pay a string hash, an Edge struct copy and a string compare
// per expansion, plus one map allocation per expanded node; the compiled
// kernel replaces all of that with array indexing and a []uint64 visited
// bitset, and additionally prunes dead-end subtrees with a reverse BFS from
// the provider before the exponential search enters them. See DESIGN.md §9.

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"upsim/internal/obs"
	"upsim/internal/topology"
)

// Compiled-kernel metrics: compilation events and sizes, pruning effect and
// parallel-gate decisions, exposed on /metrics next to the per-algorithm
// search histograms.
var (
	mCompile = obs.NewCounter("upsim_pathdisc_compile_total",
		"Topology graphs lowered to CSR form.")
	mCompiledNodes = obs.NewGauge("upsim_pathdisc_compiled_nodes",
		"Node count of the most recently compiled graph.")
	mCompiledEdges = obs.NewGauge("upsim_pathdisc_compiled_edges",
		"Edge count of the most recently compiled graph.")
	mParallelFanout = obs.NewCounter("upsim_pathdisc_parallel_decisions_total",
		"AllPathsParallelCSR gate decisions.", "decision")
)

// ParallelBranchingThreshold is the mean-degree floor above which
// AllPathsParallelCSR fans out over goroutines. Below it the search space is
// tree-like and shallow, goroutine scheduling dominates the branch cost, and
// the kernel runs the sequential CSR search instead (the measured fix for
// the 0.96x "parallel" regression recorded by the cache experiment: fanning
// out a map-bound kernel over a near-linear search space only added
// overhead). The value is calibrated by the cmd/experiments pathdisc
// benchmark: campus/ladder shapes (mean degree ~2) never win from fan-out,
// meshes (mean degree >= 3) do once real cores are available.
const ParallelBranchingThreshold = 2.5

// Compiled is the integer-indexed CSR form of a topology.Graph, built once
// by Compile and reusable across any number of enumerations (it is
// immutable after construction and safe for concurrent use; per-search
// scratch comes from an internal sync.Pool). Node IDs are dense ints in
// graph insertion order; adjacency entries keep the graph's edge insertion
// order, so every CSR variant reproduces the map-based variants' output
// order exactly.
type Compiled struct {
	names []string         // dense node ID -> node name
	index map[string]int32 // node name -> dense node ID

	// Full CSR adjacency: entries [adjStart[v], adjStart[v+1]) are node v's
	// incident edges, as (opposite endpoint, topology edge ID) pairs.
	adjStart []int32
	adjNode  []int32
	adjEdge  []int32

	// Collapsed CSR adjacency: as above, but keeping only the first edge per
	// (node, neighbour) pair — the static equivalent of the per-frame
	// seenPair map of Options.CollapseParallel. Shares the full arrays when
	// the graph has no parallel edges.
	colStart []int32
	colNode  []int32
	colEdge  []int32

	numEdges  int
	liveNodes int // names minus tombstoned slots (see patch.go)
	maxDegree int
	maxEdgeID int     // largest topology edge ID seen (IDs are never reused)
	branching float64 // mean adjacency entries per node (2E/N)

	// Stereotype cost view of ranked discovery (kbest.go): per-edge-ID
	// traversal cost and throughput, resolved once by SetEdgeCosts (and per
	// patched-in edge via the retained resolver), indexed by topology edge
	// ID. Nil until SetEdgeCosts installs a view; CostThroughput then falls
	// back to hop costs.
	costOf   []float64
	costMbps []float64
	costFn   EdgeCostFunc

	// pool holds *scratch sized for the current node count. It is a pointer
	// so PatchAddNode can swap in a freshly-sized pool when the node count
	// grows (assigning a sync.Pool value would copy its internal lock).
	pool *sync.Pool
}

// scratch is the reusable per-enumeration state: the visited bitset, the
// reverse-BFS distance table with its queue, and the path buffers. One
// scratch serves one enumeration (or one branch of the parallel variant) at
// a time; the pool amortises them across enumerations.
type scratch struct {
	visited []uint64 // bitset, one bit per node, all zero between uses
	dist    []int32  // hop distance to the provider, -1 when unreachable
	queue   []int32
	nodes   []int32
	edges   []int32
	frames  []csrFrame

	// Ranked-discovery state (kbest.go): the Dijkstra distance table and
	// frontier heap, the blocked-edge bitset (all zero between uses, like
	// visited), and the candidate storage Yen's algorithm accumulates into
	// — an int32 arena plus the accepted/candidate path slices referencing
	// it. All reused across enumerations.
	fdist  []float64
	kheap  []kheapEntry
	eblock []uint64
	karena []int32
	kacc   []kpath
	kcand  []kpath
}

type csrFrame struct {
	node int32
	next int32 // index into the adjacency entry range of node
}

// Compile lowers a topology graph into its CSR form. The cost is one pass
// over nodes and edges — O(V+E) — amortised across every subsequent
// enumeration: the Generator compiles once per model and reuses the kernel
// for all mapping pairs, batch items and perspectives.
func Compile(g *topology.Graph) *Compiled {
	nodes := g.Nodes()
	c := &Compiled{
		names:    make([]string, len(nodes)),
		index:    make(map[string]int32, len(nodes)),
		numEdges: g.NumEdges(),
	}
	for i, n := range nodes {
		c.names[i] = n.Name
		c.index[n.Name] = int32(i)
	}
	n := len(nodes)
	c.adjStart = make([]int32, n+1)
	total := 0
	for i := 0; i < n; i++ {
		d := g.Degree(c.names[i])
		total += d
		if d > c.maxDegree {
			c.maxDegree = d
		}
		c.adjStart[i+1] = int32(total)
	}
	c.adjNode = make([]int32, total)
	c.adjEdge = make([]int32, total)
	pos := 0
	parallel := false
	for i := 0; i < n; i++ {
		name := c.names[i]
		seen := make(map[int32]bool, 4)
		for _, id := range g.IncidentEdges(name) {
			e, _ := g.Edge(id)
			o := c.index[e.Other(name)]
			c.adjNode[pos] = o
			c.adjEdge[pos] = int32(id)
			pos++
			if id > c.maxEdgeID {
				c.maxEdgeID = id
			}
			if seen[o] {
				parallel = true
			}
			seen[o] = true
		}
	}
	if !parallel {
		// No parallel edges: the collapsed view is the full view.
		c.colStart, c.colNode, c.colEdge = c.adjStart, c.adjNode, c.adjEdge
	} else {
		c.colStart = make([]int32, n+1)
		c.colNode = make([]int32, 0, total)
		c.colEdge = make([]int32, 0, total)
		for i := 0; i < n; i++ {
			seen := make(map[int32]bool, 4)
			for j := c.adjStart[i]; j < c.adjStart[i+1]; j++ {
				o := c.adjNode[j]
				if seen[o] {
					continue
				}
				seen[o] = true
				c.colNode = append(c.colNode, o)
				c.colEdge = append(c.colEdge, c.adjEdge[j])
			}
			c.colStart[i+1] = int32(len(c.colNode))
		}
	}
	c.liveNodes = n
	if n > 0 {
		c.branching = float64(total) / float64(n)
	}
	c.resetPool()
	mCompile.With().Inc()
	mCompiledNodes.With().Set(int64(n))
	mCompiledEdges.With().Set(int64(c.numEdges))
	return c
}

// NumNodes returns the compiled node count (excluding slots tombstoned by
// PatchRemoveNode).
func (c *Compiled) NumNodes() int { return c.liveNodes }

// NumEdges returns the compiled edge count (parallel edges counted).
func (c *Compiled) NumEdges() int { return c.numEdges }

// Branching returns the mean adjacency entries per node (2E/N), the
// branching-factor estimate the parallel gate compares against
// ParallelBranchingThreshold.
func (c *Compiled) Branching() float64 { return c.branching }

// MaxDegree returns the largest node degree.
func (c *Compiled) MaxDegree() int { return c.maxDegree }

// resetPool installs a scratch pool sized for the current node count.
// Called by Compile and again by PatchAddNode when the universe grows (the
// visited bitset and dist table are indexed by dense node ID, so old
// scratch would be too small).
func (c *Compiled) resetPool() {
	n := len(c.names)
	words := (n + 63) / 64
	c.pool = &sync.Pool{New: func() any {
		return &scratch{
			visited: make([]uint64, words),
			dist:    make([]int32, n),
			queue:   make([]int32, 0, n),
			nodes:   make([]int32, 0, 16),
			edges:   make([]int32, 0, 16),
			fdist:   make([]float64, n),
		}
	}}
}

// getScratch takes a clean scratch from the pool.
func (c *Compiled) getScratch() *scratch { return c.pool.Get().(*scratch) }

// putScratch clears the visited bitset (the only state that must be clean on
// reuse; dist is refilled per enumeration) and returns s to the pool.
func (c *Compiled) putScratch(s *scratch) {
	clear(s.visited)
	clear(s.eblock)
	s.nodes = s.nodes[:0]
	s.edges = s.edges[:0]
	s.frames = s.frames[:0]
	s.kheap = s.kheap[:0]
	s.karena = s.karena[:0]
	s.kacc = s.kacc[:0]
	s.kcand = s.kcand[:0]
	c.pool.Put(s)
}

func (c *Compiled) validate(src, dst string) (int32, int32, error) {
	s, ok := c.index[src]
	if !ok {
		return 0, 0, fmt.Errorf(errFmtRequesterMissing, src)
	}
	d, ok := c.index[dst]
	if !ok {
		return 0, 0, fmt.Errorf(errFmtProviderMissing, dst)
	}
	if s == d {
		return 0, 0, fmt.Errorf(errFmtSameEndpoints, src)
	}
	return s, d, nil
}

// adjacency selects the full or collapsed CSR view per the options.
func (c *Compiled) adjacency(opts Options) (start, node, edge []int32) {
	if opts.CollapseParallel {
		return c.colStart, c.colNode, c.colEdge
	}
	return c.adjStart, c.adjNode, c.adjEdge
}

// reverseBFS fills s.dist with the hop distance from every node to dst
// (-1 when dst is unreachable) — the destination-reachability pruning pass.
// Soundness: any simple path suffix from a node v to dst is a walk proving
// dist[v] >= 0 and dist[v] <= remaining hops, so skipping nodes that fail
// either test can never remove a reportable path; it only skips subtrees in
// which every continuation dead-ends (see DESIGN.md §9 for the sketch).
//
//upsim:hotpath
func (c *Compiled) reverseBFS(s *scratch, dst int32) {
	for i := range s.dist {
		s.dist[i] = -1
	}
	s.dist[dst] = 0
	s.queue = append(s.queue[:0], dst)
	for len(s.queue) > 0 {
		cur := s.queue[0]
		s.queue = s.queue[1:]
		for j := c.adjStart[cur]; j < c.adjStart[cur+1]; j++ {
			o := c.adjNode[j]
			if s.dist[o] < 0 {
				s.dist[o] = s.dist[cur] + 1
				s.queue = append(s.queue, o)
			}
		}
	}
}

// depthBudget converts Options.MaxDepth into the pruning budget.
func depthBudget(opts Options) int {
	if opts.MaxDepth > 0 {
		return opts.MaxDepth
	}
	return math.MaxInt32
}

// csrSearch is one sequential CSR enumeration (or one branch of the
// parallel variant): the DFS state plus the accumulated result.
type csrSearch struct {
	c        *Compiled
	s        *scratch
	start    []int32
	adjNode  []int32
	adjEdge  []int32
	dst      int32
	budget   int
	maxPaths int
	hardMax  int // Options.HardMaxPaths; exceeding it sets overflow
	overflow bool
	out      []Path
	stats    Stats

	// Path arenas: emitted Nodes/Edges slices are carved out of chunked
	// backing arrays, two allocations per chunk instead of two per path.
	// The chunks escape into the returned Paths, so they are per-search
	// state, never pooled.
	nameArena []string
	edgeArena []int
}

//upsim:hotpath bitset membership ops, one per DFS expansion
func (q *csrSearch) visit(v int32) { q.s.visited[v>>6] |= 1 << (uint(v) & 63) }

//upsim:hotpath
func (q *csrSearch) unvisit(v int32) { q.s.visited[v>>6] &^= 1 << (uint(v) & 63) }

//upsim:hotpath
func (q *csrSearch) isVisited(v int32) bool { return q.s.visited[v>>6]&(1<<(uint(v)&63)) != 0 }

// arenaChunk sizes a fresh arena chunk: big enough for the requested path
// and for a few hundred more like it.
func arenaChunk(need int) int {
	const chunk = 2048
	if need > chunk {
		return need
	}
	return chunk
}

// emit materialises the current path buffer as a Path. Backing storage comes
// from the search's arenas; full slice expressions cap every path at its own
// region, so a caller appending to a returned Path reallocates instead of
// clobbering the next path.
//
//upsim:hotpath
func (q *csrSearch) emit() {
	nl := len(q.s.nodes)
	if cap(q.nameArena)-len(q.nameArena) < nl {
		q.nameArena = make([]string, 0, arenaChunk(nl))
	}
	nb := len(q.nameArena)
	for _, v := range q.s.nodes {
		q.nameArena = append(q.nameArena, q.c.names[v])
	}
	names := q.nameArena[nb : nb+nl : nb+nl]

	el := len(q.s.edges)
	if cap(q.edgeArena)-len(q.edgeArena) < el {
		q.edgeArena = make([]int, 0, arenaChunk(el))
	}
	eb := len(q.edgeArena)
	for _, e := range q.s.edges {
		q.edgeArena = append(q.edgeArena, int(e))
	}
	edges := q.edgeArena[eb : eb+el : eb+el]

	q.out = append(q.out, Path{Nodes: names, Edges: edges})
	q.stats.Paths++
}

// rec is the recursive CSR DFS. It mirrors the map-based AllPaths loop
// expansion for expansion — same adjacency order, same bound checks — so the
// output sequence is identical; the only behavioural difference is that
// pruned expansions (dead ends, or detours provably longer than the depth
// budget) are skipped before being traversed, which lowers EdgeVisits and is
// counted in Stats.Pruned. Returns false to abort on MaxPaths.
//
//upsim:hotpath
func (q *csrSearch) rec(cur int32) bool {
	if len(q.s.nodes) > q.stats.MaxStack {
		q.stats.MaxStack = len(q.s.nodes)
	}
	for j := q.start[cur]; j < q.start[cur+1]; j++ {
		next := q.adjNode[j]
		if q.isVisited(next) {
			continue
		}
		if d := q.s.dist[next]; d < 0 || len(q.s.edges)+1+int(d) > q.budget {
			q.stats.Pruned++
			continue
		}
		q.stats.EdgeVisits++
		q.s.nodes = append(q.s.nodes, next)
		q.s.edges = append(q.s.edges, q.adjEdge[j])
		if next == q.dst {
			q.emit()
			if q.hardMax > 0 && q.stats.Paths > q.hardMax {
				q.overflow = true
				q.pop()
				return false
			}
			if q.maxPaths > 0 && q.stats.Paths >= q.maxPaths {
				q.stats.Truncated = true
				q.pop()
				return false
			}
		} else {
			q.visit(next)
			ok := q.rec(next)
			q.unvisit(next)
			if !ok {
				q.pop()
				return false
			}
		}
		q.pop()
	}
	return true
}

//upsim:hotpath
func (q *csrSearch) pop() {
	q.s.nodes = q.s.nodes[:len(q.s.nodes)-1]
	q.s.edges = q.s.edges[:len(q.s.edges)-1]
}

// AllPaths enumerates all simple paths from src to dst over the compiled
// graph: the CSR counterpart of the package-level AllPaths, with identical
// output (same paths, same order) and strictly less search effort thanks to
// the reachability pruning. The compiled kernel's package-level alias is
// AllPathsCSR.
func (c *Compiled) AllPaths(src, dst string, opts Options) ([]Path, Stats, error) {
	return c.allPathsSequential(src, dst, opts, "csr-dfs")
}

func (c *Compiled) allPathsSequential(src, dst string, opts Options, algorithm string) ([]Path, Stats, error) {
	s0, d0, err := c.validate(src, dst)
	if err != nil {
		return nil, Stats{}, err
	}
	s := c.getScratch()
	defer c.putScratch(s)
	c.reverseBFS(s, d0)
	start, adjNode, adjEdge := c.adjacency(opts)
	q := &csrSearch{
		c: c, s: s, start: start, adjNode: adjNode, adjEdge: adjEdge,
		dst: d0, budget: depthBudget(opts), maxPaths: opts.MaxPaths,
		hardMax: opts.HardMaxPaths,
	}
	if s.dist[s0] >= 0 { // disconnected pairs skip the search entirely
		q.visit(s0)
		s.nodes = append(s.nodes, s0)
		q.rec(s0)
	}
	if q.overflow {
		return nil, q.stats, &LimitError{Src: src, Dst: dst, Limit: opts.HardMaxPaths}
	}
	q.stats.NodeVisits = q.stats.EdgeVisits + 1
	observe(algorithm, q.stats)
	return q.out, q.stats, nil
}

// AllPathsIterative is the explicit-stack CSR variant: same output sequence
// as AllPaths, recursion depth independent of path length — the safe choice
// for very deep compiled graphs. Package-level alias: AllPathsIterativeCSR.
func (c *Compiled) AllPathsIterative(src, dst string, opts Options) ([]Path, Stats, error) {
	s0, d0, err := c.validate(src, dst)
	if err != nil {
		return nil, Stats{}, err
	}
	s := c.getScratch()
	defer c.putScratch(s)
	c.reverseBFS(s, d0)
	start, adjNode, adjEdge := c.adjacency(opts)
	q := &csrSearch{
		c: c, s: s, start: start, adjNode: adjNode, adjEdge: adjEdge,
		dst: d0, budget: depthBudget(opts), maxPaths: opts.MaxPaths,
		hardMax: opts.HardMaxPaths,
	}
	if s.dist[s0] >= 0 {
		q.visit(s0)
		s.nodes = append(s.nodes, s0)
		s.frames = append(s.frames, csrFrame{node: s0, next: start[s0]})
		q.iterate()
	}
	if q.overflow {
		return nil, q.stats, &LimitError{Src: src, Dst: dst, Limit: opts.HardMaxPaths}
	}
	q.stats.NodeVisits = q.stats.EdgeVisits + 1
	observe("csr-iterative", q.stats)
	return q.out, q.stats, nil
}

// iterate drives the explicit-stack DFS over the frames in q.s.frames.
//
//upsim:hotpath
func (q *csrSearch) iterate() {
	s := q.s
	for len(s.frames) > 0 {
		if len(s.nodes) > q.stats.MaxStack {
			q.stats.MaxStack = len(s.nodes)
		}
		f := &s.frames[len(s.frames)-1]
		advanced := false
		for f.next < q.start[f.node+1] {
			j := f.next
			f.next++
			next := q.adjNode[j]
			if q.isVisited(next) {
				continue
			}
			if d := s.dist[next]; d < 0 || len(s.edges)+1+int(d) > q.budget {
				q.stats.Pruned++
				continue
			}
			q.stats.EdgeVisits++
			s.nodes = append(s.nodes, next)
			s.edges = append(s.edges, q.adjEdge[j])
			if next == q.dst {
				q.emit()
				if q.hardMax > 0 && q.stats.Paths > q.hardMax {
					q.overflow = true
					return
				}
				if q.maxPaths > 0 && q.stats.Paths >= q.maxPaths {
					q.stats.Truncated = true
					return
				}
				q.pop()
				continue
			}
			q.visit(next)
			s.frames = append(s.frames, csrFrame{node: next, next: q.start[next]})
			advanced = true
			break
		}
		if advanced {
			continue
		}
		s.frames = s.frames[:len(s.frames)-1]
		if len(s.frames) > 0 {
			q.unvisit(f.node)
			q.pop()
		}
	}
}

// parallelEligible is the measured fan-out gate of AllPathsParallel: spawn
// goroutines only when there are real cores to run them, the requester
// actually branches, and the compiled graph's branching factor says the
// per-branch search is deep enough to amortise scheduling. Everything else
// falls back to the sequential kernel — which is what turns the historic
// 0.96x parallel regression into a >= 1.0x floor: the fallback *is* the
// sequential code path, plus one comparison.
func (c *Compiled) parallelEligible(src int32, opts Options) bool {
	if runtime.GOMAXPROCS(0) < 2 {
		return false
	}
	start, _, _ := c.adjacency(opts)
	if start[src+1]-start[src] < 2 {
		return false
	}
	return c.branching >= ParallelBranchingThreshold
}

// ParallelEligible reports whether AllPathsParallel would fan out for this
// requester under the given options, or run the sequential fallback. The
// scalability experiment uses it to label which mode a measurement exercised.
func (c *Compiled) ParallelEligible(src string, opts Options) bool {
	s, ok := c.index[src]
	if !ok {
		return false
	}
	return c.parallelEligible(s, opts)
}

// AllPathsParallel enumerates the same path set as AllPaths by partitioning
// the search over the requester's first-hop branches across a worker pool,
// falling back to the sequential kernel when parallelEligible says fan-out
// cannot win. Results keep the sequential order (branches are merged in
// adjacency order). workers < 1 selects one worker per branch. Package-level
// alias: AllPathsParallelCSR.
func (c *Compiled) AllPathsParallel(src, dst string, opts Options, workers int) ([]Path, Stats, error) {
	s0, d0, err := c.validate(src, dst)
	if err != nil {
		return nil, Stats{}, err
	}
	if !c.parallelEligible(s0, opts) || workers == 1 {
		mParallelFanout.With("fallback-sequential").Inc()
		return c.allPathsSequential(src, dst, opts, "csr-parallel")
	}
	mParallelFanout.With("fan-out").Inc()
	start, adjNode, adjEdge := c.adjacency(opts)
	first, last := start[s0], start[s0+1]
	branches := int(last - first)
	if workers < 1 || workers > branches {
		workers = branches
	}
	// The reverse BFS is shared read-only by every branch; compute it once.
	shared := c.getScratch()
	defer c.putScratch(shared)
	c.reverseBFS(shared, d0)

	type result struct {
		paths    []Path
		stats    Stats
		overflow bool
	}
	results := make([]result, branches)
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for bi := range work {
				results[bi].paths, results[bi].stats, results[bi].overflow = c.branch(
					s0, d0, adjNode[first+int32(bi)], adjEdge[first+int32(bi)],
					shared.dist, start, adjNode, adjEdge, opts)
			}
		}()
	}
	for bi := 0; bi < branches; bi++ {
		work <- bi
	}
	close(work)
	wg.Wait()

	var out []Path
	var stats Stats
	for bi := 0; bi < branches; bi++ {
		r := results[bi]
		stats.EdgeVisits += r.stats.EdgeVisits
		stats.Pruned += r.stats.Pruned
		if r.stats.MaxStack > stats.MaxStack {
			stats.MaxStack = r.stats.MaxStack
		}
		if r.overflow {
			return nil, stats, &LimitError{Src: src, Dst: dst, Limit: opts.HardMaxPaths}
		}
		for _, p := range r.paths {
			// MaxPaths (and the hard limit) are enforced branch-locally and on
			// the merged, ordered result, so the truncated set is the
			// sequential prefix.
			out = append(out, p)
			if opts.HardMaxPaths > 0 && len(out) > opts.HardMaxPaths {
				return nil, stats, &LimitError{Src: src, Dst: dst, Limit: opts.HardMaxPaths}
			}
			if opts.MaxPaths > 0 && len(out) >= opts.MaxPaths {
				stats.Truncated = true
				stats.Paths = len(out)
				stats.NodeVisits = stats.EdgeVisits + 1
				observe("csr-parallel", stats)
				return out, stats, nil
			}
		}
	}
	stats.Paths = len(out)
	stats.NodeVisits = stats.EdgeVisits + 1
	observe("csr-parallel", stats)
	return out, stats, nil
}

// branch enumerates the paths whose first hop is the (branchNode, branchEdge)
// adjacency entry of src. dist is the shared read-only reachability table.
//
//upsim:hotpath
func (c *Compiled) branch(src, dst, branchNode, branchEdge int32, dist []int32, start, adjNode, adjEdge []int32, opts Options) ([]Path, Stats, bool) {
	var stats Stats
	if branchNode == src { // self-loop: simple paths never traverse it
		return nil, stats, false
	}
	if d := dist[branchNode]; d < 0 || 1+int(d) > depthBudget(opts) {
		stats.Pruned++
		return nil, stats, false
	}
	s := c.getScratch()
	defer c.putScratch(s)
	copy(s.dist, dist)
	q := &csrSearch{
		c: c, s: s, start: start, adjNode: adjNode, adjEdge: adjEdge,
		dst: dst, budget: depthBudget(opts), maxPaths: opts.MaxPaths,
		hardMax: opts.HardMaxPaths,
	}
	q.visit(src)
	q.visit(branchNode)
	s.nodes = append(s.nodes, src, branchNode)
	s.edges = append(s.edges, branchEdge)
	q.stats.EdgeVisits = 1
	q.stats.MaxStack = 2
	if branchNode == dst {
		q.emit()
	} else {
		q.rec(branchNode)
	}
	return q.out, q.stats, q.overflow
}

// AllPathsCSR runs the compiled recursive DFS — the drop-in counterpart of
// AllPaths for callers that amortise Compile across enumerations.
func AllPathsCSR(c *Compiled, src, dst string, opts Options) ([]Path, Stats, error) {
	return c.AllPaths(src, dst, opts)
}

// AllPathsIterativeCSR runs the compiled explicit-stack DFS.
func AllPathsIterativeCSR(c *Compiled, src, dst string, opts Options) ([]Path, Stats, error) {
	return c.AllPathsIterative(src, dst, opts)
}

// AllPathsParallelCSR runs the compiled branch-parallel DFS with the
// threshold-gated sequential fallback.
func AllPathsParallelCSR(c *Compiled, src, dst string, opts Options, workers int) ([]Path, Stats, error) {
	return c.AllPathsParallel(src, dst, opts, workers)
}
