package pathdisc

// This file implements incremental patching of the compiled CSR kernel —
// the pathdisc half of the live-topology what-if engine (DESIGN.md §13).
// Compile is O(V+E) with a string hash per adjacency entry; a single
// topology delta (one link flap, one node drained) touches only two
// adjacency ranges, so patching the arrays in place is far cheaper than
// recompiling and keeps every previously-issued dense node ID stable.
//
// Patch semantics mirror topology.Graph mutation semantics exactly:
//
//   - Added nodes get the next dense ID (insertion order, like Compile).
//   - Added edges append to the end of each endpoint's adjacency range
//     (insertion order again), a self-loop occupying two slots of the same
//     range.
//   - Removed edges delete their two adjacency entries, preserving the
//     order of the survivors.
//   - Removed nodes are tombstoned: the dense ID keeps its (now empty)
//     adjacency range and its names slot, but leaves the index map, so the
//     ID is never reused and lookups fail exactly like a fresh Compile of
//     the mutated graph.
//
// Because adjacency order drives enumeration order, a patched kernel emits
// byte-identical path sequences to a freshly compiled kernel of the mutated
// graph (pinned by TestPatchEquivalence). Dense IDs may differ after node
// removals — equivalence is behavioural, not structural.
//
// Patching is NOT safe concurrently with searches: callers (the what-if
// engine) must serialise patches against enumeration, e.g. behind the
// engine mutex.

import (
	"fmt"

	"upsim/internal/obs"
)

// mPatch counts individual CSR patch operations by kind; the what-if engine
// pairs it with upsim_whatif_recompiles_total to show the patch-vs-recompile
// ratio on /metrics.
var mPatch = obs.NewCounter("upsim_pathdisc_patch_total",
	"Incremental CSR patch operations applied to compiled graphs.", "op")

// PatchAddNode appends an isolated node to the compiled kernel, assigning
// the next dense ID. Adding a name that is already present is an error.
func (c *Compiled) PatchAddNode(name string) error {
	if _, dup := c.index[name]; dup {
		return fmt.Errorf("pathdisc: node %q already compiled", name)
	}
	id := int32(len(c.names))
	c.names = append(c.names, name)
	c.index[name] = id
	c.adjStart = append(c.adjStart, c.adjStart[len(c.adjStart)-1])
	c.liveNodes++
	// Pooled scratch (visited bitset, dist table) is sized to the node
	// count; a grown universe needs freshly-sized scratch.
	c.resetPool()
	c.afterPatch()
	mPatch.With("add-node").Inc()
	return nil
}

// PatchAddEdge appends the edge (a, b, edgeID) to both endpoints' adjacency
// ranges. edgeID is the topology.Graph edge ID; the caller guarantees it is
// unique (the graph never reuses IDs). For a self-loop pass a == b.
func (c *Compiled) PatchAddEdge(a, b string, edgeID int) error {
	ai, ok := c.index[a]
	if !ok {
		return fmt.Errorf("pathdisc: unknown node %q", a)
	}
	bi, ok := c.index[b]
	if !ok {
		return fmt.Errorf("pathdisc: unknown node %q", b)
	}
	c.insertAdj(ai, bi, int32(edgeID))
	c.insertAdj(bi, ai, int32(edgeID))
	c.numEdges++
	if edgeID > c.maxEdgeID {
		c.maxEdgeID = edgeID
	}
	// Keep the ranked-discovery cost view coherent: resolve the new edge
	// through the retained resolver, exactly as a fresh Compile +
	// SetEdgeCosts of the mutated graph would (TestKShortestPatchCoherence).
	if c.costFn != nil {
		for len(c.costOf) <= edgeID {
			c.costOf = append(c.costOf, 1)
			c.costMbps = append(c.costMbps, 0)
		}
		c.resolveCost(edgeID)
	}
	c.afterPatch()
	mPatch.With("add-edge").Inc()
	return nil
}

// PatchRemoveEdge deletes the edge's two adjacency entries. a and b are the
// edge's endpoints (equal for a self-loop).
func (c *Compiled) PatchRemoveEdge(a, b string, edgeID int) error {
	ai, ok := c.index[a]
	if !ok {
		return fmt.Errorf("pathdisc: unknown node %q", a)
	}
	bi, ok := c.index[b]
	if !ok {
		return fmt.Errorf("pathdisc: unknown node %q", b)
	}
	if !c.removeAdj(ai, int32(edgeID)) {
		return fmt.Errorf("pathdisc: edge %d not incident to %q", edgeID, a)
	}
	if !c.removeAdj(bi, int32(edgeID)) {
		return fmt.Errorf("pathdisc: edge %d not incident to %q", edgeID, b)
	}
	c.numEdges--
	c.afterPatch()
	mPatch.With("remove-edge").Inc()
	return nil
}

// PatchRemoveNode tombstones the named node: any remaining incident edges
// are removed (mirror entries included), the dense ID's slot stays but the
// name leaves the index, so the ID is never reused and validate fails for
// it exactly as for a never-compiled name.
func (c *Compiled) PatchRemoveNode(name string) error {
	id, ok := c.index[name]
	if !ok {
		return fmt.Errorf("pathdisc: unknown node %q", name)
	}
	for c.adjStart[id] < c.adjStart[id+1] {
		j := c.adjStart[id]
		o, e := c.adjNode[j], c.adjEdge[j]
		c.removeAdj(id, e)
		if o != id { // self-loop mirrors live in the same range, already gone
			c.removeAdj(o, e)
		}
		c.numEdges--
	}
	delete(c.index, name)
	c.liveNodes--
	c.afterPatch()
	mPatch.With("remove-node").Inc()
	return nil
}

// insertAdj inserts the adjacency entry (o, e) at the end of node v's range
// and shifts every later range right by one.
func (c *Compiled) insertAdj(v, o, e int32) {
	at := int(c.adjStart[v+1])
	c.adjNode = append(c.adjNode, 0)
	c.adjEdge = append(c.adjEdge, 0)
	copy(c.adjNode[at+1:], c.adjNode[at:])
	copy(c.adjEdge[at+1:], c.adjEdge[at:])
	c.adjNode[at] = o
	c.adjEdge[at] = e
	for i := int(v) + 1; i < len(c.adjStart); i++ {
		c.adjStart[i]++
	}
}

// removeAdj deletes the first entry with edge ID e from node v's range,
// shifting every later range left by one. It reports whether an entry was
// found.
func (c *Compiled) removeAdj(v, e int32) bool {
	for j := c.adjStart[v]; j < c.adjStart[v+1]; j++ {
		if c.adjEdge[j] != e {
			continue
		}
		copy(c.adjNode[j:], c.adjNode[j+1:])
		copy(c.adjEdge[j:], c.adjEdge[j+1:])
		c.adjNode = c.adjNode[:len(c.adjNode)-1]
		c.adjEdge = c.adjEdge[:len(c.adjEdge)-1]
		for i := int(v) + 1; i < len(c.adjStart); i++ {
			c.adjStart[i]--
		}
		return true
	}
	return false
}

// afterPatch restores the derived state every patch invalidates: the
// collapsed parallel-edge view, the degree/branching statistics. Cost is
// O(V+E) with integer ops only — no string hashing, no per-node maps —
// which is what makes patching beat recompilation (BENCH_whatif.json).
func (c *Compiled) afterPatch() {
	c.maxDegree = 0
	for i := 0; i+1 < len(c.adjStart); i++ {
		if d := int(c.adjStart[i+1] - c.adjStart[i]); d > c.maxDegree {
			c.maxDegree = d
		}
	}
	c.branching = 0
	if c.liveNodes > 0 {
		c.branching = float64(len(c.adjNode)) / float64(c.liveNodes)
	}
	c.rebuildCollapsed()
	mCompiledNodes.With().Set(int64(c.liveNodes))
	mCompiledEdges.With().Set(int64(c.numEdges))
}

// rebuildCollapsed recomputes the collapsed (first-edge-per-neighbour) view
// from the full view, using a stamp array instead of per-node maps. When no
// parallel edges remain the collapsed view goes back to aliasing the full
// arrays, matching Compile's layout.
func (c *Compiled) rebuildCollapsed() {
	n := len(c.names)
	stamp := make([]int32, n)
	for i := range stamp {
		stamp[i] = -1
	}
	colStart := make([]int32, n+1)
	colNode := make([]int32, 0, len(c.adjNode))
	colEdge := make([]int32, 0, len(c.adjEdge))
	for i := 0; i < n; i++ {
		for j := c.adjStart[i]; j < c.adjStart[i+1]; j++ {
			o := c.adjNode[j]
			if stamp[o] == int32(i) {
				continue
			}
			stamp[o] = int32(i)
			colNode = append(colNode, o)
			colEdge = append(colEdge, c.adjEdge[j])
		}
		colStart[i+1] = int32(len(colNode))
	}
	if len(colNode) == len(c.adjNode) {
		c.colStart, c.colNode, c.colEdge = c.adjStart, c.adjNode, c.adjEdge
	} else {
		c.colStart, c.colNode, c.colEdge = colStart, colNode, colEdge
	}
}
