// Package pathdisc implements the path-discovery algorithm of the UPSIM
// methodology (Section V-D): given the graph view of an ICT infrastructure
// and a service mapping pair (requester, provider), it enumerates all simple
// paths between the two components. The paper chooses "a depth-first search
// (DFS) algorithm with a path tracking mechanism to avoid live-locks within
// cycles"; this package provides that algorithm in recursive, iterative and
// parallel variants (all producing the same path set, which the tests verify
// by property), a bounded-depth variant for very dense graphs, and a BFS
// shortest-path baseline used by the redundancy ablation.
package pathdisc

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"upsim/internal/obs"
	"upsim/internal/topology"
)

// Search-effort metrics, one observation per completed enumeration,
// partitioned by algorithm variant. The exponential buckets follow the
// paper's complexity discussion (§V-D): effort grows factorially with
// density, so linear buckets would saturate immediately.
var (
	searchBuckets = obs.ExpBuckets(1, 4, 12)

	mNodesVisited = obs.NewHistogram("upsim_pathdisc_nodes_visited",
		"Nodes expanded per path enumeration.", searchBuckets, "algorithm")
	mEdgeVisits = obs.NewHistogram("upsim_pathdisc_edge_visits",
		"Edges traversed per path enumeration, including dead ends.", searchBuckets, "algorithm")
	mPathsFound = obs.NewHistogram("upsim_pathdisc_paths_found",
		"Simple paths reported per enumeration.", searchBuckets, "algorithm")
	mMaxStack = obs.NewHistogram("upsim_pathdisc_max_stack",
		"Deepest DFS stack per enumeration, in nodes.", searchBuckets, "algorithm")
	mTruncated = obs.NewCounter("upsim_pathdisc_truncated_total",
		"Enumerations stopped early by MaxPaths.", "algorithm")
	mPruned = obs.NewHistogram("upsim_pathdisc_pruned_expansions",
		"Expansions skipped by reachability pruning per enumeration (compiled kernel only).",
		searchBuckets, "algorithm")
)

// observe feeds one enumeration's Stats into the per-algorithm histograms.
func observe(algorithm string, s Stats) {
	mNodesVisited.With(algorithm).Observe(float64(s.NodeVisits))
	mEdgeVisits.With(algorithm).Observe(float64(s.EdgeVisits))
	mPathsFound.With(algorithm).Observe(float64(s.Paths))
	mMaxStack.With(algorithm).Observe(float64(s.MaxStack))
	if s.Pruned > 0 {
		mPruned.With(algorithm).Observe(float64(s.Pruned))
	}
	if s.Truncated {
		mTruncated.With(algorithm).Inc()
	}
}

// Path is one simple path: the visited node names in order, plus the IDs of
// the traversed edges (len(Edges) == len(Nodes)-1). Parallel edges between
// the same node pair yield distinct paths that differ only in Edges.
type Path struct {
	Nodes []string
	Edges []int
}

// String renders the path in the paper's notation, e.g.
// "t1—e1—d1—c1—d4—printS".
func (p Path) String() string { return strings.Join(p.Nodes, "—") }

// Len returns the number of edges (hops) in the path.
func (p Path) Len() int { return len(p.Edges) }

// equalKey returns a canonical comparison key including edge identities.
// It is called O(n log n) times by Sort, so it stays allocation-lean: one
// sized byte buffer, edge IDs appended with strconv (no fmt interface
// boxing). TestEqualKeyAllocs guards the allocation budget.
func (p Path) equalKey() string {
	size := 0
	for _, n := range p.Nodes {
		size += len(n) + 14 // "|<edge id>|" separator upper bound
	}
	buf := make([]byte, 0, size)
	for i, n := range p.Nodes {
		if i > 0 {
			buf = append(buf, '|')
			buf = strconv.AppendInt(buf, int64(p.Edges[i-1]), 10)
			buf = append(buf, '|')
		}
		buf = append(buf, n...)
	}
	return string(buf)
}

// Options controls path enumeration.
type Options struct {
	// MaxDepth bounds the path length in edges; 0 means unbounded. Paths
	// longer than MaxDepth are not reported and not explored further.
	MaxDepth int
	// MaxPaths stops enumeration after this many paths; 0 means unbounded.
	MaxPaths int
	// CollapseParallel treats parallel edges between the same node pair as
	// a single logical connection: only the first edge of each pair is
	// traversed. Node sequences are then unique across the result.
	CollapseParallel bool
	// HardMaxPaths aborts the enumeration with a *LimitError once more than
	// this many paths exist; 0 disables the limit. Unlike MaxPaths — which
	// truncates the result and reports Stats.Truncated, leaving the caller a
	// usable lower bound — exceeding the hard limit is an error: the caller
	// declared that an enumeration this large is a mistake (a dense mesh fed
	// to an interactive endpoint), not an answer to return partially.
	HardMaxPaths int

	// K switches discovery to the ranked mode (Compiled.KShortest): return
	// the K cheapest simple paths under CostMetric instead of enumerating
	// all of them. 0 (the default) means full enumeration; the enumeration
	// entry points ignore it.
	K int
	// CostMetric selects the edge-cost model of ranked discovery. The zero
	// value CostHops ranks by hop count; CostThroughput uses the stereotype
	// cost view installed by SetEdgeCosts. Ignored by the enumeration entry
	// points.
	CostMetric CostMetric
	// MaxWork bounds the ranked search's K·V·E work estimate; exceeding it
	// returns a *LimitError with Kind LimitKBest before any search runs. 0
	// disables the bound. Ignored by the enumeration entry points.
	MaxWork int
}

// Limit-error kinds: which budget aborted the search. The zero value (the
// empty string) is normalised to LimitPaths so errors constructed before
// ranked discovery existed keep their meaning.
const (
	// LimitPaths is the enumeration hard limit (Options.HardMaxPaths).
	LimitPaths = "paths"
	// LimitKBest is the ranked-discovery work envelope (Options.MaxWork).
	LimitKBest = "kbest"
)

// LimitError reports a search aborted by a budget: the enumeration hard
// limit (Kind LimitPaths — the graph holds more than Limit simple paths
// between the pair) or the ranked-discovery work envelope (Kind LimitKBest
// — the K·V·E estimate Need exceeds Limit). It mirrors the structured
// depend.BudgetError contract so callers can surface the pair, the kind and
// the sizes without parsing the message.
type LimitError struct {
	// Src and Dst are the search endpoints.
	Src, Dst string
	// Kind names the exceeded budget (LimitPaths, LimitKBest); empty means
	// LimitPaths.
	Kind string
	// Need is the estimated work or path count that exceeded the budget
	// (0 when unknown: the enumeration aborts at Limit+1 without counting
	// further).
	Need int
	// Limit is the bound that was exceeded.
	Limit int
}

// BudgetKind returns the exceeded budget's kind with the empty value
// normalised to LimitPaths.
func (e *LimitError) BudgetKind() string {
	if e.Kind == "" {
		return LimitPaths
	}
	return e.Kind
}

// Error renders the limit failure.
func (e *LimitError) Error() string {
	if e.BudgetKind() == LimitKBest {
		return fmt.Sprintf("pathdisc: ranked discovery between %q and %q needs ~%d work units (limit %d); lower k or raise the work budget", e.Src, e.Dst, e.Need, e.Limit)
	}
	return fmt.Sprintf("pathdisc: more than %d simple paths between %q and %q; raise the hard limit or bound the search with maxDepth/maxPaths", e.Limit, e.Src, e.Dst)
}

// AsLimitError unwraps err to a *LimitError when one is in the chain.
func AsLimitError(err error) (*LimitError, bool) {
	var le *LimitError
	if errors.As(err, &le) {
		return le, true
	}
	return nil, false
}

// Stats reports instrumentation counters from one enumeration, used by the
// scalability experiments to expose the search effort behind the paper's
// complexity discussion.
type Stats struct {
	// EdgeVisits counts traversed edge expansions, including those that
	// dead-ended.
	EdgeVisits int
	// NodeVisits counts node expansions, including the initial requester
	// and re-entries of the same node along different partial paths. Each
	// traversed edge enters exactly one node, so for a completed search
	// NodeVisits = EdgeVisits + 1 (per independent sub-search for the
	// parallel variant).
	NodeVisits int
	// MaxStack is the deepest DFS stack observed (in nodes).
	MaxStack int
	// Paths is the number of reported paths.
	Paths int
	// Pruned counts expansions skipped by the compiled kernel's
	// destination-reachability pruning (see Compile); always zero for the
	// map-based variants, which explore dead-end subtrees in full.
	Pruned int
	// Truncated reports whether MaxPaths stopped the enumeration early.
	Truncated bool
}

func validateEndpoints(g *topology.Graph, src, dst string) error {
	if !g.HasNode(src) {
		return fmt.Errorf(errFmtRequesterMissing, src)
	}
	if !g.HasNode(dst) {
		return fmt.Errorf(errFmtProviderMissing, dst)
	}
	if src == dst {
		return fmt.Errorf(errFmtSameEndpoints, src)
	}
	return nil
}

// AllPaths enumerates all simple paths from src to dst using recursive DFS
// with path tracking — the algorithm the paper selected. Results are
// deterministic: edges are expanded in insertion order.
func AllPaths(g *topology.Graph, src, dst string, opts Options) ([]Path, Stats, error) {
	if err := validateEndpoints(g, src, dst); err != nil {
		return nil, Stats{}, err
	}
	var (
		stats   Stats
		out     []Path
		nodes   = []string{src}
		edges   []int
		visited = map[string]bool{src: true}
		hardHit bool
	)
	var rec func(cur string) bool // returns false to abort (MaxPaths or hard limit hit)
	rec = func(cur string) bool {
		if len(nodes) > stats.MaxStack {
			stats.MaxStack = len(nodes)
		}
		seenPair := map[string]bool{}
		for _, id := range g.IncidentEdges(cur) {
			e, _ := g.Edge(id)
			next := e.Other(cur)
			if visited[next] {
				continue // path tracking: avoid live-locks within cycles
			}
			if opts.CollapseParallel {
				if seenPair[next] {
					continue
				}
				seenPair[next] = true
			}
			if opts.MaxDepth > 0 && len(edges)+1 > opts.MaxDepth {
				continue
			}
			stats.EdgeVisits++
			nodes = append(nodes, next)
			edges = append(edges, id)
			if next == dst {
				out = append(out, Path{Nodes: append([]string(nil), nodes...), Edges: append([]int(nil), edges...)})
				stats.Paths++
				if opts.HardMaxPaths > 0 && stats.Paths > opts.HardMaxPaths {
					hardHit = true
					nodes = nodes[:len(nodes)-1]
					edges = edges[:len(edges)-1]
					return false
				}
				if opts.MaxPaths > 0 && stats.Paths >= opts.MaxPaths {
					stats.Truncated = true
					nodes = nodes[:len(nodes)-1]
					edges = edges[:len(edges)-1]
					return false
				}
			} else {
				visited[next] = true
				ok := rec(next)
				visited[next] = false
				if !ok {
					nodes = nodes[:len(nodes)-1]
					edges = edges[:len(edges)-1]
					return false
				}
			}
			nodes = nodes[:len(nodes)-1]
			edges = edges[:len(edges)-1]
		}
		return true
	}
	rec(src)
	if hardHit {
		return nil, stats, &LimitError{Src: src, Dst: dst, Limit: opts.HardMaxPaths}
	}
	stats.NodeVisits = stats.EdgeVisits + 1
	observe("recursive-dfs", stats)
	return out, stats, nil
}

// AllPathsIterative is the explicit-stack variant of AllPaths. It produces
// exactly the same path sequence and exists both as an ablation subject and
// as the safe choice for very deep graphs where recursion depth is a
// concern.
func AllPathsIterative(g *topology.Graph, src, dst string, opts Options) ([]Path, Stats, error) {
	if err := validateEndpoints(g, src, dst); err != nil {
		return nil, Stats{}, err
	}
	type frame struct {
		node     string
		nextIdx  int
		seenPair map[string]bool
	}
	var (
		stats   Stats
		out     []Path
		nodes   = []string{src}
		edges   []int
		visited = map[string]bool{src: true}
		stack   = []*frame{{node: src}}
	)
	if opts.CollapseParallel {
		stack[0].seenPair = map[string]bool{}
	}
	for len(stack) > 0 {
		if len(nodes) > stats.MaxStack {
			stats.MaxStack = len(nodes)
		}
		f := stack[len(stack)-1]
		inc := g.IncidentEdges(f.node)
		advanced := false
		for f.nextIdx < len(inc) {
			id := inc[f.nextIdx]
			f.nextIdx++
			e, _ := g.Edge(id)
			next := e.Other(f.node)
			if visited[next] {
				continue
			}
			if opts.CollapseParallel {
				if f.seenPair[next] {
					continue
				}
				f.seenPair[next] = true
			}
			if opts.MaxDepth > 0 && len(edges)+1 > opts.MaxDepth {
				continue
			}
			stats.EdgeVisits++
			if next == dst {
				p := Path{
					Nodes: append(append([]string(nil), nodes...), next),
					Edges: append(append([]int(nil), edges...), id),
				}
				out = append(out, p)
				stats.Paths++
				if opts.HardMaxPaths > 0 && stats.Paths > opts.HardMaxPaths {
					return nil, stats, &LimitError{Src: src, Dst: dst, Limit: opts.HardMaxPaths}
				}
				if opts.MaxPaths > 0 && stats.Paths >= opts.MaxPaths {
					stats.Truncated = true
					stats.NodeVisits = stats.EdgeVisits + 1
					observe("iterative-dfs", stats)
					return out, stats, nil
				}
				continue
			}
			visited[next] = true
			nodes = append(nodes, next)
			edges = append(edges, id)
			nf := &frame{node: next}
			if opts.CollapseParallel {
				nf.seenPair = map[string]bool{}
			}
			stack = append(stack, nf)
			advanced = true
			break
		}
		if advanced {
			continue
		}
		// Frame exhausted: backtrack.
		stack = stack[:len(stack)-1]
		if len(stack) > 0 {
			visited[f.node] = false
			nodes = nodes[:len(nodes)-1]
			edges = edges[:len(edges)-1]
		}
	}
	stats.NodeVisits = stats.EdgeVisits + 1
	observe("iterative-dfs", stats)
	return out, stats, nil
}

// AllPathsParallel enumerates the same path set as AllPaths using a worker
// pool: the search space is partitioned by the first edge out of the
// requester and each branch is explored concurrently. Results are re-sorted
// into the sequential order. workers < 1 selects one worker per branch.
func AllPathsParallel(g *topology.Graph, src, dst string, opts Options, workers int) ([]Path, Stats, error) {
	if err := validateEndpoints(g, src, dst); err != nil {
		return nil, Stats{}, err
	}
	branches := g.IncidentEdges(src)
	if len(branches) == 0 {
		return nil, Stats{}, nil
	}
	if workers < 1 || workers > len(branches) {
		workers = len(branches)
	}
	// MaxPaths interacts with branch parallelism: each branch enumerates at
	// most MaxPaths, then the merged result is truncated. The combined
	// result therefore honours the global bound while staying deterministic.
	type result struct {
		branch int
		paths  []Path
		stats  Stats
		err    error
	}
	work := make(chan int)
	results := make(chan result)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for bi := range work {
				paths, stats, err := branchPaths(g, src, dst, branches[bi], opts)
				results <- result{branch: bi, paths: paths, stats: stats, err: err}
			}
		}()
	}
	go func() {
		for bi := range branches {
			work <- bi
		}
		close(work)
		wg.Wait()
		close(results)
	}()

	collected := make([][]Path, len(branches))
	var stats Stats
	var firstErr error
	seenPair := map[string]bool{}
	for r := range results {
		if r.err != nil && firstErr == nil {
			firstErr = r.err
		}
		collected[r.branch] = r.paths
		stats.EdgeVisits += r.stats.EdgeVisits
		if r.stats.MaxStack > stats.MaxStack {
			stats.MaxStack = r.stats.MaxStack
		}
	}
	if firstErr != nil {
		if _, ok := AsLimitError(firstErr); ok {
			// Branch-local limit errors name the branch's entry node; report
			// the enumeration's own endpoints instead.
			firstErr = &LimitError{Src: src, Dst: dst, Limit: opts.HardMaxPaths}
		}
		return nil, Stats{}, firstErr
	}
	var out []Path
	for bi := range branches {
		for _, p := range collected[bi] {
			if opts.CollapseParallel {
				// Branch-local parallel-edge collapsing cannot see sibling
				// branches that start over a parallel edge of the same
				// pair; dedupe on the node sequence here.
				key := strings.Join(p.Nodes, "\x00")
				if seenPair[key] {
					continue
				}
				seenPair[key] = true
			}
			out = append(out, p)
			if opts.HardMaxPaths > 0 && len(out) > opts.HardMaxPaths {
				return nil, stats, &LimitError{Src: src, Dst: dst, Limit: opts.HardMaxPaths}
			}
			if opts.MaxPaths > 0 && len(out) >= opts.MaxPaths {
				stats.Truncated = true
				stats.Paths = len(out)
				stats.NodeVisits = stats.EdgeVisits + 1
				observe("parallel-dfs", stats)
				return out, stats, nil
			}
		}
	}
	stats.Paths = len(out)
	stats.NodeVisits = stats.EdgeVisits + 1
	observe("parallel-dfs", stats)
	return out, stats, nil
}

// branchPaths runs the sequential DFS restricted to paths whose first edge
// is firstEdge.
func branchPaths(g *topology.Graph, src, dst string, firstEdge int, opts Options) ([]Path, Stats, error) {
	e, ok := g.Edge(firstEdge)
	if !ok {
		return nil, Stats{}, fmt.Errorf("pathdisc: unknown edge %d", firstEdge)
	}
	next := e.Other(src)
	var stats Stats
	stats.EdgeVisits = 1
	if next == dst {
		p := Path{Nodes: []string{src, dst}, Edges: []int{firstEdge}}
		stats.Paths = 1
		stats.MaxStack = 2
		return []Path{p}, stats, nil
	}
	if opts.MaxDepth == 1 {
		return nil, stats, nil
	}
	subOpts := opts
	if subOpts.MaxDepth > 0 {
		subOpts.MaxDepth--
	}
	sub, subStats, err := allPathsAvoiding(g, next, dst, subOpts, src)
	if err != nil {
		return nil, stats, err
	}
	stats.EdgeVisits += subStats.EdgeVisits
	stats.MaxStack = subStats.MaxStack + 1
	out := make([]Path, 0, len(sub))
	for _, p := range sub {
		out = append(out, Path{
			Nodes: append([]string{src}, p.Nodes...),
			Edges: append([]int{firstEdge}, p.Edges...),
		})
	}
	stats.Paths = len(out)
	return out, stats, nil
}

// allPathsAvoiding is AllPaths with an extra pre-visited node.
func allPathsAvoiding(g *topology.Graph, src, dst string, opts Options, avoid string) ([]Path, Stats, error) {
	if err := validateEndpoints(g, src, dst); err != nil {
		return nil, Stats{}, err
	}
	var (
		stats   Stats
		out     []Path
		nodes   = []string{src}
		edges   []int
		visited = map[string]bool{src: true, avoid: true}
		hardHit bool
	)
	var rec func(cur string) bool
	rec = func(cur string) bool {
		if len(nodes) > stats.MaxStack {
			stats.MaxStack = len(nodes)
		}
		seenPair := map[string]bool{}
		for _, id := range g.IncidentEdges(cur) {
			e, _ := g.Edge(id)
			next := e.Other(cur)
			if visited[next] {
				continue
			}
			if opts.CollapseParallel {
				if seenPair[next] {
					continue
				}
				seenPair[next] = true
			}
			if opts.MaxDepth > 0 && len(edges)+1 > opts.MaxDepth {
				continue
			}
			stats.EdgeVisits++
			nodes = append(nodes, next)
			edges = append(edges, id)
			if next == dst {
				out = append(out, Path{Nodes: append([]string(nil), nodes...), Edges: append([]int(nil), edges...)})
				stats.Paths++
				if opts.HardMaxPaths > 0 && stats.Paths > opts.HardMaxPaths {
					hardHit = true
					nodes = nodes[:len(nodes)-1]
					edges = edges[:len(edges)-1]
					return false
				}
				if opts.MaxPaths > 0 && stats.Paths >= opts.MaxPaths {
					stats.Truncated = true
					nodes = nodes[:len(nodes)-1]
					edges = edges[:len(edges)-1]
					return false
				}
			} else {
				visited[next] = true
				ok := rec(next)
				visited[next] = false
				if !ok {
					nodes = nodes[:len(nodes)-1]
					edges = edges[:len(edges)-1]
					return false
				}
			}
			nodes = nodes[:len(nodes)-1]
			edges = edges[:len(edges)-1]
		}
		return true
	}
	rec(src)
	if hardHit {
		return nil, stats, &LimitError{Src: src, Dst: dst, Limit: opts.HardMaxPaths}
	}
	return out, stats, nil
}

// CountPaths counts all simple paths from src to dst without storing them,
// so that the factorial-growth experiments of Section V-D can run on dense
// graphs whose full enumeration would not fit in memory. MaxPaths and
// MaxDepth from opts are honoured; CollapseParallel is too.
func CountPaths(g *topology.Graph, src, dst string, opts Options) (int, Stats, error) {
	if err := validateEndpoints(g, src, dst); err != nil {
		return 0, Stats{}, err
	}
	var (
		stats   Stats
		count   int
		depth   int
		visited = map[string]bool{src: true}
		hardHit bool
	)
	var rec func(cur string) bool
	rec = func(cur string) bool {
		if depth+1 > stats.MaxStack {
			stats.MaxStack = depth + 1
		}
		seenPair := map[string]bool{}
		for _, id := range g.IncidentEdges(cur) {
			e, _ := g.Edge(id)
			next := e.Other(cur)
			if visited[next] {
				continue
			}
			if opts.CollapseParallel {
				if seenPair[next] {
					continue
				}
				seenPair[next] = true
			}
			if opts.MaxDepth > 0 && depth+1 > opts.MaxDepth {
				continue
			}
			stats.EdgeVisits++
			if next == dst {
				count++
				stats.Paths++
				if opts.HardMaxPaths > 0 && count > opts.HardMaxPaths {
					hardHit = true
					return false
				}
				if opts.MaxPaths > 0 && count >= opts.MaxPaths {
					stats.Truncated = true
					return false
				}
				continue
			}
			visited[next] = true
			depth++
			ok := rec(next)
			depth--
			visited[next] = false
			if !ok {
				return false
			}
		}
		return true
	}
	rec(src)
	if hardHit {
		return 0, stats, &LimitError{Src: src, Dst: dst, Limit: opts.HardMaxPaths}
	}
	stats.NodeVisits = stats.EdgeVisits + 1
	observe("count", stats)
	return count, stats, nil
}

// ShortestPath returns one minimum-hop path from src to dst via BFS, or an
// error when dst is unreachable. It is the baseline the redundancy ablation
// compares against: a UPSIM built from shortest paths only drops the
// redundant paths Definition 2 requires.
func ShortestPath(g *topology.Graph, src, dst string) (Path, error) {
	if err := validateEndpoints(g, src, dst); err != nil {
		return Path{}, err
	}
	type hop struct {
		prev string
		edge int
	}
	prev := map[string]hop{src: {}}
	queue := []string{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur == dst {
			break
		}
		for _, id := range g.IncidentEdges(cur) {
			e, _ := g.Edge(id)
			next := e.Other(cur)
			if _, seen := prev[next]; seen {
				continue
			}
			prev[next] = hop{prev: cur, edge: id}
			queue = append(queue, next)
		}
	}
	if _, ok := prev[dst]; !ok {
		return Path{}, fmt.Errorf("pathdisc: no path from %q to %q", src, dst)
	}
	var revNodes []string
	var revEdges []int
	for cur := dst; cur != src; {
		h := prev[cur]
		revNodes = append(revNodes, cur)
		revEdges = append(revEdges, h.edge)
		cur = h.prev
	}
	p := Path{Nodes: make([]string, 0, len(revNodes)+1), Edges: make([]int, 0, len(revEdges))}
	p.Nodes = append(p.Nodes, src)
	for i := len(revNodes) - 1; i >= 0; i-- {
		p.Nodes = append(p.Nodes, revNodes[i])
		p.Edges = append(p.Edges, revEdges[i])
	}
	return p, nil
}

// NodeSet returns the union of nodes over the given paths — the filter set
// used to generate the UPSIM (Section VI-H: "only nodes which appear at
// least once in the discovered paths are preserved").
func NodeSet(paths []Path) map[string]bool {
	set := make(map[string]bool)
	for _, p := range paths {
		for _, n := range p.Nodes {
			set[n] = true
		}
	}
	return set
}

// EdgeSet returns the union of traversed edge IDs over the given paths.
func EdgeSet(paths []Path) map[int]bool {
	set := make(map[int]bool)
	for _, p := range paths {
		for _, e := range p.Edges {
			set[e] = true
		}
	}
	return set
}

// Sort orders paths canonically: by length, then lexicographically by node
// sequence, then by edge IDs. It makes outputs of different algorithm
// variants directly comparable.
func Sort(paths []Path) {
	sort.Slice(paths, func(i, j int) bool {
		a, b := paths[i], paths[j]
		if a.Len() != b.Len() {
			return a.Len() < b.Len()
		}
		return a.equalKey() < b.equalKey()
	})
}

// Equal reports whether two path slices contain the same paths, regardless
// of order.
func Equal(a, b []Path) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]Path(nil), a...)
	bs := append([]Path(nil), b...)
	Sort(as)
	Sort(bs)
	for i := range as {
		if as[i].equalKey() != bs[i].equalKey() {
			return false
		}
	}
	return true
}
