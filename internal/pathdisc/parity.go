package pathdisc

// Parity error formats shared by the map-based walker (pathdisc.go) and the
// compiled CSR kernel (compile.go). The kernel promises output identical to
// the legacy walker *including error messages* — pinned by the property and
// fuzz tests and enforced statically by the upsimvet errparity rule: a
// format string used by both implementations must be a single constant, so
// the two validation paths cannot drift apart silently.
const (
	errFmtRequesterMissing = "pathdisc: requester %q not in infrastructure"
	errFmtProviderMissing  = "pathdisc: provider %q not in infrastructure"
	errFmtSameEndpoints    = "pathdisc: requester and provider are the same component %q"
)
