package pathdisc

import (
	"strings"
	"testing"

	"upsim/internal/topology"
)

// diamond builds the classic redundancy fixture:
//
//	  a
//	 / \
//	b   c
//	 \ /
//	  d
func diamond(t *testing.T) *topology.Graph {
	t.Helper()
	g := topology.New()
	for _, n := range []string{"a", "b", "c", "d"} {
		if err := g.AddNode(n, "N"); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range [][2]string{{"a", "b"}, {"a", "c"}, {"b", "d"}, {"c", "d"}} {
		if _, err := g.AddEdge(e[0], e[1], ""); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestAllPathsDiamond(t *testing.T) {
	g := diamond(t)
	paths, stats, err := AllPaths(g, "a", "d", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("paths = %v", paths)
	}
	want := map[string]bool{"a—b—d": true, "a—c—d": true}
	for _, p := range paths {
		if !want[p.String()] {
			t.Errorf("unexpected path %s", p)
		}
	}
	if stats.Paths != 2 || stats.EdgeVisits < 4 {
		t.Errorf("stats = %+v", stats)
	}
	if stats.MaxStack < 2 {
		t.Errorf("MaxStack = %d", stats.MaxStack)
	}
}

func TestAllPathsCycleSafety(t *testing.T) {
	// Ring of 5: exactly two simple paths between any two nodes.
	g, err := topology.Ring(5)
	if err != nil {
		t.Fatal(err)
	}
	paths, _, err := AllPaths(g, "n0", "n2", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("ring paths = %v", paths)
	}
}

func TestAllPathsParallelEdges(t *testing.T) {
	g := topology.New()
	_ = g.AddNode("a", "")
	_ = g.AddNode("b", "")
	_, _ = g.AddEdge("a", "b", "l1")
	_, _ = g.AddEdge("a", "b", "l2")
	paths, _, err := AllPaths(g, "a", "b", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("parallel-edge paths = %d, want 2 (distinct edges)", len(paths))
	}
	if paths[0].Edges[0] == paths[1].Edges[0] {
		t.Error("paths must use distinct edges")
	}
	collapsed, _, err := AllPaths(g, "a", "b", Options{CollapseParallel: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(collapsed) != 1 {
		t.Fatalf("collapsed paths = %d, want 1", len(collapsed))
	}
}

func TestAllPathsDepthBound(t *testing.T) {
	g := diamond(t)
	// Extend with a longer detour a-e-f-d.
	for _, n := range []string{"e", "f"} {
		_ = g.AddNode(n, "")
	}
	_, _ = g.AddEdge("a", "e", "")
	_, _ = g.AddEdge("e", "f", "")
	_, _ = g.AddEdge("f", "d", "")
	all, _, _ := AllPaths(g, "a", "d", Options{})
	if len(all) != 3 {
		t.Fatalf("unbounded paths = %d, want 3", len(all))
	}
	bounded, _, _ := AllPaths(g, "a", "d", Options{MaxDepth: 2})
	if len(bounded) != 2 {
		t.Fatalf("depth-2 paths = %d, want 2", len(bounded))
	}
	for _, p := range bounded {
		if p.Len() > 2 {
			t.Errorf("path %s exceeds depth bound", p)
		}
	}
}

func TestAllPathsMaxPaths(t *testing.T) {
	g, _ := topology.Mesh(7)
	paths, stats, err := AllPaths(g, "n0", "n6", Options{MaxPaths: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 10 || !stats.Truncated {
		t.Errorf("len = %d, truncated = %v", len(paths), stats.Truncated)
	}
	all, stats2, _ := AllPaths(g, "n0", "n6", Options{})
	if stats2.Truncated {
		t.Error("unbounded run must not be truncated")
	}
	// Mesh of 7: sum over k of P(5,k) simple paths between two fixed nodes:
	// 1 + 5 + 20 + 60 + 120 + 120 = 326.
	if len(all) != 326 {
		t.Errorf("mesh(7) paths = %d, want 326", len(all))
	}
	// Truncated run must be a prefix of the full run.
	for i, p := range paths {
		if p.String() != all[i].String() {
			t.Fatalf("truncated[%d] = %s, full = %s", i, p, all[i])
		}
	}
}

func TestEndpointValidation(t *testing.T) {
	g := diamond(t)
	if _, _, err := AllPaths(g, "ghost", "d", Options{}); err == nil {
		t.Error("unknown requester should fail")
	}
	if _, _, err := AllPaths(g, "a", "ghost", Options{}); err == nil {
		t.Error("unknown provider should fail")
	}
	if _, _, err := AllPaths(g, "a", "a", Options{}); err == nil {
		t.Error("identical endpoints should fail")
	}
	if _, err := ShortestPath(g, "ghost", "a"); err == nil {
		t.Error("shortest path endpoint validation missing")
	}
}

func TestDisconnectedPair(t *testing.T) {
	g := topology.New()
	_ = g.AddNode("a", "")
	_ = g.AddNode("b", "")
	paths, stats, err := AllPaths(g, "a", "b", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 0 || stats.Paths != 0 {
		t.Error("disconnected pair must yield zero paths without error")
	}
	if _, err := ShortestPath(g, "a", "b"); err == nil {
		t.Error("shortest path on disconnected pair should fail")
	}
	// Parallel variant with zero branches.
	pp, _, err := AllPathsParallel(g, "a", "b", Options{}, 4)
	if err != nil || len(pp) != 0 {
		t.Errorf("parallel disconnected = %v, %v", pp, err)
	}
}

func TestShortestPath(t *testing.T) {
	g := diamond(t)
	p, err := ShortestPath(g, "a", "d")
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 2 || p.Nodes[0] != "a" || p.Nodes[2] != "d" {
		t.Errorf("shortest = %s", p)
	}
	// Chain: the unique path.
	c, _ := topology.Chain(6)
	p, err = ShortestPath(c, "n0", "n5")
	if err != nil {
		t.Fatal(err)
	}
	if p.String() != "n0—n1—n2—n3—n4—n5" {
		t.Errorf("chain shortest = %s", p)
	}
	if len(p.Edges) != len(p.Nodes)-1 {
		t.Error("edge/node count mismatch")
	}
}

func TestVariantsAgree(t *testing.T) {
	graphs := map[string]*topology.Graph{}
	if g, err := topology.Mesh(6); err == nil {
		graphs["mesh6"] = g
	}
	if g, err := topology.Ring(8); err == nil {
		graphs["ring8"] = g
	}
	if g, err := topology.RandomConnected(16, 0.06, 3); err == nil {
		graphs["rand16"] = g
	}
	if g, err := topology.Campus(topology.CampusParams{
		EdgeSwitches: 4, ClientsPerEdge: 2, ServersPerSwitch: 2, RedundantCore: true,
	}); err == nil {
		graphs["campus"] = g
	}
	for name, g := range graphs {
		names := g.NodeNames()
		src, dst := names[0], names[len(names)-1]
		rec, _, err := AllPaths(g, src, dst, Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		iter, _, err := AllPathsIterative(g, src, dst, Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		par, _, err := AllPathsParallel(g, src, dst, Options{}, 4)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !Equal(rec, iter) {
			t.Errorf("%s: recursive and iterative path sets differ (%d vs %d)", name, len(rec), len(iter))
		}
		if !Equal(rec, par) {
			t.Errorf("%s: recursive and parallel path sets differ (%d vs %d)", name, len(rec), len(par))
		}
		// Iterative emits the same sequence, not just the same set.
		for i := range rec {
			if rec[i].equalKey() != iter[i].equalKey() {
				t.Errorf("%s: sequence differs at %d: %s vs %s", name, i, rec[i], iter[i])
				break
			}
		}
	}
}

func TestVariantsAgreeWithOptions(t *testing.T) {
	g, err := topology.RandomConnected(18, 0.15, 11)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{MaxDepth: 6, CollapseParallel: true}
	rec, _, _ := AllPaths(g, "n0", "n17", opts)
	iter, _, _ := AllPathsIterative(g, "n0", "n17", opts)
	par, _, _ := AllPathsParallel(g, "n0", "n17", opts, 3)
	if !Equal(rec, iter) || !Equal(rec, par) {
		t.Errorf("variants disagree under options: %d/%d/%d", len(rec), len(iter), len(par))
	}
}

func TestPathInvariants(t *testing.T) {
	g, err := topology.RandomConnected(20, 0.06, 5)
	if err != nil {
		t.Fatal(err)
	}
	paths, _, err := AllPaths(g, "n0", "n19", Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range paths {
		if p.Nodes[0] != "n0" || p.Nodes[len(p.Nodes)-1] != "n19" {
			t.Fatalf("path endpoints wrong: %s", p)
		}
		if len(p.Edges) != len(p.Nodes)-1 {
			t.Fatalf("edge count wrong: %s", p)
		}
		seen := map[string]bool{}
		for _, n := range p.Nodes {
			if seen[n] {
				t.Fatalf("node repeated in simple path: %s", p)
			}
			seen[n] = true
		}
		for i, id := range p.Edges {
			e, ok := g.Edge(id)
			if !ok {
				t.Fatalf("path references unknown edge %d", id)
			}
			if e.Other(p.Nodes[i]) != p.Nodes[i+1] {
				t.Fatalf("edge %d does not join %s and %s", id, p.Nodes[i], p.Nodes[i+1])
			}
		}
	}
}

func TestNodeAndEdgeSets(t *testing.T) {
	g := diamond(t)
	paths, _, _ := AllPaths(g, "a", "d", Options{})
	ns := NodeSet(paths)
	if len(ns) != 4 {
		t.Errorf("NodeSet = %v", ns)
	}
	es := EdgeSet(paths)
	if len(es) != 4 {
		t.Errorf("EdgeSet = %v", es)
	}
	if len(NodeSet(nil)) != 0 || len(EdgeSet(nil)) != 0 {
		t.Error("empty path list must give empty sets")
	}
}

func TestSortAndEqual(t *testing.T) {
	a := Path{Nodes: []string{"a", "b"}, Edges: []int{0}}
	b := Path{Nodes: []string{"a", "c", "b"}, Edges: []int{1, 2}}
	c := Path{Nodes: []string{"a", "b"}, Edges: []int{3}} // parallel edge variant
	ps := []Path{b, c, a}
	Sort(ps)
	if ps[0].Len() != 1 || ps[2].Len() != 2 {
		t.Errorf("sort by length failed: %v", ps)
	}
	if !Equal([]Path{a, b}, []Path{b, a}) {
		t.Error("Equal must be order independent")
	}
	if Equal([]Path{a}, []Path{c}) {
		t.Error("paths over different edges are different")
	}
	if Equal([]Path{a}, []Path{a, b}) {
		t.Error("different lengths are unequal")
	}
}

func TestPathString(t *testing.T) {
	p := Path{Nodes: []string{"t1", "e1", "d1", "c1", "d4", "printS"}, Edges: []int{0, 1, 2, 3, 4}}
	if got := p.String(); got != "t1—e1—d1—c1—d4—printS" {
		t.Errorf("String = %q", got)
	}
	if !strings.Contains(p.equalKey(), "|2|") {
		t.Error("equalKey must embed edge IDs")
	}
}

func TestParallelWorkerCounts(t *testing.T) {
	g, _ := topology.Mesh(6)
	want, _, _ := AllPaths(g, "n0", "n5", Options{})
	for _, workers := range []int{-1, 0, 1, 2, 16, 100} {
		got, _, err := AllPathsParallel(g, "n0", "n5", Options{}, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !Equal(want, got) {
			t.Errorf("workers=%d: path set differs", workers)
		}
	}
}

func TestParallelMaxPathsPrefix(t *testing.T) {
	g, _ := topology.Mesh(7)
	full, _, _ := AllPaths(g, "n0", "n6", Options{})
	trunc, stats, err := AllPathsParallel(g, "n0", "n6", Options{MaxPaths: 25}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(trunc) != 25 || !stats.Truncated {
		t.Fatalf("parallel truncation: %d paths, truncated=%v", len(trunc), stats.Truncated)
	}
	for i := range trunc {
		if trunc[i].equalKey() != full[i].equalKey() {
			t.Fatalf("parallel truncated result is not the sequential prefix at %d", i)
		}
	}
}

func TestCountPathsAgreesWithAllPaths(t *testing.T) {
	graphs := map[string]*topology.Graph{}
	if g, err := topology.Mesh(7); err == nil {
		graphs["mesh7"] = g
	}
	if g, err := topology.RandomConnected(18, 0.08, 9); err == nil {
		graphs["rand18"] = g
	}
	if g, err := topology.Ring(9); err == nil {
		graphs["ring9"] = g
	}
	for name, g := range graphs {
		names := g.NodeNames()
		src, dst := names[0], names[len(names)-1]
		for _, opts := range []Options{
			{},
			{MaxDepth: 5},
			{CollapseParallel: true},
			{MaxPaths: 7},
		} {
			paths, _, err := AllPaths(g, src, dst, opts)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			count, stats, err := CountPaths(g, src, dst, opts)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if count != len(paths) {
				t.Errorf("%s %+v: CountPaths = %d, AllPaths = %d", name, opts, count, len(paths))
			}
			if stats.Paths != count {
				t.Errorf("%s: stats.Paths = %d, count = %d", name, stats.Paths, count)
			}
			if opts.MaxPaths > 0 && count == opts.MaxPaths && !stats.Truncated {
				t.Errorf("%s: truncation not reported", name)
			}
		}
	}
}

func TestCountPathsValidation(t *testing.T) {
	g := diamond(t)
	if _, _, err := CountPaths(g, "ghost", "d", Options{}); err == nil {
		t.Error("unknown endpoint should fail")
	}
	if _, _, err := CountPaths(g, "a", "a", Options{}); err == nil {
		t.Error("identical endpoints should fail")
	}
	n, _, err := CountPaths(g, "a", "d", Options{})
	if err != nil || n != 2 {
		t.Errorf("diamond count = %d, %v", n, err)
	}
}

func TestNodeVisitsAndMetrics(t *testing.T) {
	g := diamond(t)
	paths, stats, err := AllPaths(g, "a", "d", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("paths = %v", paths)
	}
	if stats.NodeVisits != stats.EdgeVisits+1 {
		t.Errorf("NodeVisits = %d, EdgeVisits = %d", stats.NodeVisits, stats.EdgeVisits)
	}
	// Every variant reports NodeVisits.
	if _, s, err := AllPathsIterative(g, "a", "d", Options{}); err != nil || s.NodeVisits == 0 {
		t.Errorf("iterative NodeVisits = %d, err = %v", s.NodeVisits, err)
	}
	if _, s, err := AllPathsParallel(g, "a", "d", Options{}, 2); err != nil || s.NodeVisits != s.EdgeVisits+1 {
		t.Errorf("parallel NodeVisits = %d (edges %d), err = %v", s.NodeVisits, s.EdgeVisits, err)
	}
	if _, s, err := CountPaths(g, "a", "d", Options{}); err != nil || s.NodeVisits == 0 {
		t.Errorf("count NodeVisits = %d, err = %v", s.NodeVisits, err)
	}
	// The enumerations above were observed into the per-algorithm
	// histograms of the default registry.
	before := mNodesVisited.With("recursive-dfs").Count()
	if _, _, err := AllPaths(g, "a", "d", Options{}); err != nil {
		t.Fatal(err)
	}
	if after := mNodesVisited.With("recursive-dfs").Count(); after != before+1 {
		t.Errorf("nodes_visited observations %d -> %d, want +1", before, after)
	}
	if mTruncated.With("recursive-dfs").Value() == 0 {
		if _, s, err := AllPaths(g, "a", "d", Options{MaxPaths: 1}); err != nil || !s.Truncated {
			t.Fatalf("truncation fixture failed: %+v, %v", s, err)
		}
		if mTruncated.With("recursive-dfs").Value() == 0 {
			t.Error("truncated counter not incremented")
		}
	}
}

// BenchmarkAllPathsInstrumented measures the instrumented recursive DFS on
// a dense fixture; compare against the seed's BenchmarkAllPaths numbers to
// verify the metrics overhead stays under 5% (one histogram observation per
// enumeration — amortised over the whole search).
func BenchmarkAllPathsInstrumented(b *testing.B) {
	g, err := topology.Mesh(8)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := AllPaths(g, "n0", "n7", Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// TestHardMaxPaths pins the hard-limit contract across every enumeration
// variant: the diamond holds two simple paths, so a hard limit of 1 must
// abort with a *LimitError while a limit of 2 passes untouched.
func TestHardMaxPaths(t *testing.T) {
	g := diamond(t)
	c := Compile(g)
	variants := map[string]func(Options) ([]Path, Stats, error){
		"recursive": func(o Options) ([]Path, Stats, error) { return AllPaths(g, "a", "d", o) },
		"iterative": func(o Options) ([]Path, Stats, error) { return AllPathsIterative(g, "a", "d", o) },
		"parallel":  func(o Options) ([]Path, Stats, error) { return AllPathsParallel(g, "a", "d", o, 2) },
		"csr":       func(o Options) ([]Path, Stats, error) { return c.AllPaths("a", "d", o) },
		"csr-iter":  func(o Options) ([]Path, Stats, error) { return c.AllPathsIterative("a", "d", o) },
		"csr-par":   func(o Options) ([]Path, Stats, error) { return c.AllPathsParallel("a", "d", o, 2) },
	}
	for name, run := range variants {
		t.Run(name, func(t *testing.T) {
			paths, _, err := run(Options{HardMaxPaths: 1})
			if err == nil {
				t.Fatalf("hard limit 1 passed with %d paths", len(paths))
			}
			le, ok := AsLimitError(err)
			if !ok {
				t.Fatalf("error is not a LimitError: %v", err)
			}
			if le.Src != "a" || le.Dst != "d" || le.Limit != 1 {
				t.Fatalf("LimitError = %+v", le)
			}
			if paths, _, err = run(Options{HardMaxPaths: 2}); err != nil || len(paths) != 2 {
				t.Fatalf("hard limit 2: paths=%d err=%v", len(paths), err)
			}
			// MaxPaths below the hard limit truncates instead of erroring.
			paths, stats, err := run(Options{HardMaxPaths: 1, MaxPaths: 1})
			if err != nil || len(paths) != 1 || !stats.Truncated {
				t.Fatalf("MaxPaths precedence: paths=%d truncated=%v err=%v", len(paths), stats.Truncated, err)
			}
		})
	}
	// Counting honours the limit too.
	if _, _, err := CountPaths(g, "a", "d", Options{HardMaxPaths: 1}); err == nil {
		t.Fatal("CountPaths ignored the hard limit")
	}
}
