package pathdisc

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"upsim/internal/topology"
)

// randomMultigraph builds a reproducible random graph exercising everything
// the kernel must survive: cycles, parallel edges, self-loops and
// disconnected islands. Node names are n0..n<n-1>.
func randomMultigraph(t testing.TB, seed int64, n int, extraEdges int) *topology.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := topology.New()
	for i := 0; i < n; i++ {
		if err := g.AddNode(fmt.Sprintf("n%d", i), "N"); err != nil {
			t.Fatal(err)
		}
	}
	// A random spanning backbone over a prefix of the nodes (the suffix stays
	// disconnected with probability ~1/4 per node).
	for i := 1; i < n; i++ {
		if rng.Intn(4) == 0 && i > n/2 {
			continue
		}
		if _, err := g.AddEdge(fmt.Sprintf("n%d", rng.Intn(i)), fmt.Sprintf("n%d", i), ""); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < extraEdges; i++ {
		a, b := rng.Intn(n), rng.Intn(n)
		switch rng.Intn(8) {
		case 0: // self-loop
			b = a
		case 1, 2: // parallel duplicate of an existing edge, when one exists
			if es := g.Edges(); len(es) > 0 {
				e := es[rng.Intn(len(es))]
				var err error
				if _, err = g.AddEdge(e.A, e.B, ""); err != nil {
					t.Fatal(err)
				}
				continue
			}
		}
		if _, err := g.AddEdge(fmt.Sprintf("n%d", a), fmt.Sprintf("n%d", b), ""); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// optionsMatrix is every Options combination the equality property covers.
func optionsMatrix() []Options {
	return []Options{
		{},
		{MaxDepth: 1},
		{MaxDepth: 3},
		{MaxDepth: 6},
		{MaxPaths: 1},
		{MaxPaths: 7},
		{CollapseParallel: true},
		{MaxDepth: 4, CollapseParallel: true},
		{MaxDepth: 5, MaxPaths: 9},
		{MaxPaths: 3, CollapseParallel: true},
		{MaxDepth: 4, MaxPaths: 5, CollapseParallel: true},
	}
}

// assertSameSequence fails unless both slices hold identical paths (nodes
// and edge IDs) in identical order.
func assertSameSequence(t *testing.T, label string, want, got []Path) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d paths, want %d", label, len(got), len(want))
	}
	for i := range want {
		if want[i].equalKey() != got[i].equalKey() {
			t.Fatalf("%s: path %d = %s (edges %v), want %s (edges %v)",
				label, i, got[i], got[i].Edges, want[i], want[i].Edges)
		}
	}
}

// assertSameSet fails unless both slices hold the same path set (nodes and
// edge IDs), compared after canonical Sort.
func assertSameSet(t *testing.T, label string, want, got []Path) {
	t.Helper()
	if !Equal(want, got) {
		t.Fatalf("%s: path sets differ (%d vs %d paths)", label, len(got), len(want))
	}
}

// TestCSRVariantsMatchLegacyProperty is the equality property of the
// compiled kernel: across randomized multigraphs (parallel edges, self-loops,
// disconnected islands) and the full Options matrix, every CSR variant
// returns exactly the path set of the legacy recursive DFS — the sequential
// variants in the identical order, the parallel variant as the same set with
// the same MaxPaths prefix semantics.
func TestCSRVariantsMatchLegacyProperty(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		n := 6 + int(seed)%9
		g := randomMultigraph(t, seed, n, n/2+int(seed)%5)
		c := Compile(g)
		src, dst := "n0", fmt.Sprintf("n%d", n-1)
		for _, opts := range optionsMatrix() {
			label := fmt.Sprintf("seed=%d n=%d opts=%+v", seed, n, opts)
			want, wantStats, err := AllPaths(g, src, dst, opts)
			if err != nil {
				t.Fatalf("%s: legacy: %v", label, err)
			}
			rec, recStats, err := c.AllPaths(src, dst, opts)
			if err != nil {
				t.Fatalf("%s: csr: %v", label, err)
			}
			assertSameSequence(t, label+" csr-dfs", want, rec)
			iter, _, err := c.AllPathsIterative(src, dst, opts)
			if err != nil {
				t.Fatalf("%s: csr-iterative: %v", label, err)
			}
			assertSameSequence(t, label+" csr-iterative", want, iter)
			for _, workers := range []int{0, 1, 3} {
				par, parStats, err := c.AllPathsParallel(src, dst, opts, workers)
				if err != nil {
					t.Fatalf("%s: csr-parallel(%d): %v", label, workers, err)
				}
				if opts.MaxPaths > 0 {
					// Truncated parallel output must be the sequential prefix.
					assertSameSequence(t, fmt.Sprintf("%s csr-parallel(%d)", label, workers), want, par)
				} else {
					assertSameSet(t, fmt.Sprintf("%s csr-parallel(%d)", label, workers), want, par)
				}
				if parStats.Paths != len(par) {
					t.Fatalf("%s: parallel stats.Paths = %d, len = %d", label, parStats.Paths, len(par))
				}
			}
			// Pruning may only reduce effort, never change results.
			if recStats.EdgeVisits > wantStats.EdgeVisits {
				t.Fatalf("%s: csr EdgeVisits %d > legacy %d", label, recStats.EdgeVisits, wantStats.EdgeVisits)
			}
			if recStats.Truncated != wantStats.Truncated {
				t.Fatalf("%s: csr Truncated = %v, legacy = %v", label, recStats.Truncated, wantStats.Truncated)
			}
			if recStats.NodeVisits != recStats.EdgeVisits+1 {
				t.Fatalf("%s: csr NodeVisits = %d, EdgeVisits = %d", label, recStats.NodeVisits, recStats.EdgeVisits)
			}
		}
	}
}

// FuzzCSRAgreesWithLegacy drives the same equality property from fuzzed
// inputs: the graph shape, the endpoints and every Options field come from
// the fuzzer. Run with `go test -fuzz=FuzzCSRAgreesWithLegacy` to explore;
// the seed corpus keeps it as a fast regression property under plain
// `go test`.
func FuzzCSRAgreesWithLegacy(f *testing.F) {
	f.Add(int64(1), uint8(8), uint8(4), uint8(0), uint8(0), false)
	f.Add(int64(7), uint8(12), uint8(9), uint8(4), uint8(3), true)
	f.Add(int64(42), uint8(5), uint8(7), uint8(2), uint8(1), false)
	f.Add(int64(99), uint8(14), uint8(2), uint8(0), uint8(5), true)
	f.Fuzz(func(t *testing.T, seed int64, nRaw, extraRaw, maxDepth, maxPaths uint8, collapse bool) {
		n := 2 + int(nRaw)%13       // 2..14 nodes
		extra := int(extraRaw) % 12 // bounded density keeps enumeration small
		g := randomMultigraph(t, seed, n, extra)
		c := Compile(g)
		opts := Options{
			MaxDepth:         int(maxDepth) % 8,
			MaxPaths:         int(maxPaths) % 10,
			CollapseParallel: collapse,
		}
		src, dst := "n0", fmt.Sprintf("n%d", n-1)
		want, _, err := AllPaths(g, src, dst, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := c.AllPaths(src, dst, opts)
		if err != nil {
			t.Fatal(err)
		}
		assertSameSequence(t, "csr-dfs", want, got)
		iter, _, err := c.AllPathsIterative(src, dst, opts)
		if err != nil {
			t.Fatal(err)
		}
		assertSameSequence(t, "csr-iterative", want, iter)
		par, _, err := c.AllPathsParallel(src, dst, opts, 0)
		if err != nil {
			t.Fatal(err)
		}
		if opts.MaxPaths > 0 {
			assertSameSequence(t, "csr-parallel", want, par)
		} else {
			assertSameSet(t, "csr-parallel", want, par)
		}
	})
}

func TestCompileShape(t *testing.T) {
	g, err := topology.Mesh(6)
	if err != nil {
		t.Fatal(err)
	}
	c := Compile(g)
	if c.NumNodes() != 6 || c.NumEdges() != 15 {
		t.Fatalf("compiled shape = %d nodes, %d edges", c.NumNodes(), c.NumEdges())
	}
	if c.MaxDegree() != 5 {
		t.Errorf("MaxDegree = %d, want 5", c.MaxDegree())
	}
	if b := c.Branching(); b != 5 {
		t.Errorf("Branching = %v, want 5 (2E/N)", b)
	}
	// No parallel edges: the collapsed view shares the full arrays.
	if &c.colNode[0] != &c.adjNode[0] {
		t.Error("collapsed CSR should share the full arrays without parallel edges")
	}
}

func TestCompileCollapsedView(t *testing.T) {
	g := topology.New()
	for _, n := range []string{"a", "b", "c"} {
		_ = g.AddNode(n, "")
	}
	_, _ = g.AddEdge("a", "b", "l1")
	_, _ = g.AddEdge("a", "b", "l2") // parallel
	_, _ = g.AddEdge("b", "c", "")
	c := Compile(g)
	paths, _, err := c.AllPaths("a", "c", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("full view paths = %d, want 2 (parallel edges distinct)", len(paths))
	}
	collapsed, _, err := c.AllPaths("a", "c", Options{CollapseParallel: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(collapsed) != 1 {
		t.Fatalf("collapsed paths = %d, want 1", len(collapsed))
	}
	if collapsed[0].Edges[0] != 0 {
		t.Errorf("collapsed path must keep the first parallel edge, got %d", collapsed[0].Edges[0])
	}
}

func TestCSRValidation(t *testing.T) {
	g, _ := topology.Ring(4)
	c := Compile(g)
	if _, _, err := c.AllPaths("ghost", "n1", Options{}); err == nil {
		t.Error("unknown requester should fail")
	}
	if _, _, err := c.AllPathsIterative("n0", "ghost", Options{}); err == nil {
		t.Error("unknown provider should fail")
	}
	if _, _, err := c.AllPathsParallel("n0", "n0", Options{}, 2); err == nil {
		t.Error("identical endpoints should fail")
	}
}

func TestCSRDisconnectedPairSkipsSearch(t *testing.T) {
	g := topology.New()
	_ = g.AddNode("a", "")
	_ = g.AddNode("b", "")
	_ = g.AddNode("c", "")
	_, _ = g.AddEdge("a", "b", "")
	c := Compile(g)
	for _, run := range []func() ([]Path, Stats, error){
		func() ([]Path, Stats, error) { return c.AllPaths("a", "c", Options{}) },
		func() ([]Path, Stats, error) { return c.AllPathsIterative("a", "c", Options{}) },
		func() ([]Path, Stats, error) { return c.AllPathsParallel("a", "c", Options{}, 2) },
	} {
		paths, stats, err := run()
		if err != nil || len(paths) != 0 {
			t.Fatalf("disconnected pair: paths=%v err=%v", paths, err)
		}
		if stats.EdgeVisits != 0 {
			t.Errorf("reachability pruning should skip the whole search, EdgeVisits = %d", stats.EdgeVisits)
		}
	}
}

// TestCSRPruningSkipsDeadEnds pins the tentpole's pruning claim. In an
// undirected connected graph every node can reach the provider, so the
// reverse-BFS distances prune through the depth budget: any expansion whose
// remaining distance to the provider exceeds the budget is cut before the
// search enters it, while the legacy DFS walks into the arm and only stops
// at the depth limit.
func TestCSRPruningSkipsDeadEnds(t *testing.T) {
	g := topology.New()
	// a—b—dst plus a 30-node chain dangling off b; with MaxDepth 2 nothing
	// down that chain can be part of a reportable path.
	for _, n := range []string{"a", "b", "dst"} {
		_ = g.AddNode(n, "")
	}
	_, _ = g.AddEdge("a", "b", "")
	_, _ = g.AddEdge("b", "dst", "")
	prev := "b"
	for i := 0; i < 30; i++ {
		name := fmt.Sprintf("dead%d", i)
		_ = g.AddNode(name, "")
		_, _ = g.AddEdge(prev, name, "")
		prev = name
	}
	opts := Options{MaxDepth: 2}
	_, legacyStats, err := AllPaths(g, "a", "dst", opts)
	if err != nil {
		t.Fatal(err)
	}
	c := Compile(g)
	paths, csrStats, err := c.AllPaths("a", "dst", opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 {
		t.Fatalf("paths = %v", paths)
	}
	if legacyStats.EdgeVisits <= csrStats.EdgeVisits {
		t.Fatalf("legacy should enter the dead arm: legacy EdgeVisits = %d, csr = %d",
			legacyStats.EdgeVisits, csrStats.EdgeVisits)
	}
	if csrStats.EdgeVisits != 2 {
		t.Errorf("compiled kernel EdgeVisits = %d, want 2 (a→b, b→dst)", csrStats.EdgeVisits)
	}
	if csrStats.Pruned == 0 {
		t.Error("Stats.Pruned should count the skipped dead-arm expansion")
	}
	// Depth-budget pruning: with MaxDepth equal to the shortest detour-free
	// route, detours longer than the remaining budget are cut before being
	// walked.
	g2, err := topology.Ring(12)
	if err != nil {
		t.Fatal(err)
	}
	c2 := Compile(g2)
	_, tight, err := c2.AllPaths("n0", "n1", Options{MaxDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tight.Pruned == 0 {
		t.Error("depth-budget pruning should skip the 11-hop detour")
	}
	if tight.EdgeVisits != 1 {
		t.Errorf("tight budget EdgeVisits = %d, want 1", tight.EdgeVisits)
	}
}

// TestCSRParallelGate pins the fan-out policy: no fan-out without cores or
// branching, fan-out on a dense mesh when cores exist — and identical output
// either way.
func TestCSRParallelGate(t *testing.T) {
	mesh, err := topology.Mesh(7)
	if err != nil {
		t.Fatal(err)
	}
	chain, err := topology.Chain(8)
	if err != nil {
		t.Fatal(err)
	}
	cm, cc := Compile(mesh), Compile(chain)
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	runtime.GOMAXPROCS(1)
	if cm.ParallelEligible("n0", Options{}) {
		t.Error("GOMAXPROCS=1 must force the sequential fallback")
	}
	runtime.GOMAXPROCS(4)
	if !cm.ParallelEligible("n0", Options{}) {
		t.Errorf("mesh (branching %.1f) with 4 procs should fan out", cm.Branching())
	}
	if cc.ParallelEligible("n0", Options{}) {
		t.Errorf("chain (branching %.2f) is below the %.1f threshold and must not fan out",
			cc.Branching(), ParallelBranchingThreshold)
	}

	// Both gate outcomes produce the legacy path set (fan-out exercised here
	// regardless of the host's core count, which matters under -race).
	want, _, err := AllPaths(mesh, "n0", "n6", Options{})
	if err != nil {
		t.Fatal(err)
	}
	fanned, _, err := cm.AllPathsParallel("n0", "n6", Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	assertSameSet(t, "fan-out", want, fanned)
	runtime.GOMAXPROCS(1)
	fallback, _, err := cm.AllPathsParallel("n0", "n6", Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	assertSameSequence(t, "fallback", want, fallback)
}

// TestCSRParallelMaxPathsPrefix mirrors the legacy parallel prefix guarantee
// under forced fan-out.
func TestCSRParallelMaxPathsPrefix(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	runtime.GOMAXPROCS(4)
	g, _ := topology.Mesh(7)
	c := Compile(g)
	full, _, _ := AllPaths(g, "n0", "n6", Options{})
	trunc, stats, err := c.AllPathsParallel("n0", "n6", Options{MaxPaths: 25}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(trunc) != 25 || !stats.Truncated {
		t.Fatalf("parallel truncation: %d paths, truncated=%v", len(trunc), stats.Truncated)
	}
	assertSameSequence(t, "prefix", full[:25], trunc)
}

// TestCSRScratchReuse runs many enumerations through one kernel to verify
// pooled scratch stays clean between uses (a stale visited bit would drop
// paths; a stale path buffer would corrupt them).
func TestCSRScratchReuse(t *testing.T) {
	g, err := topology.Mesh(6)
	if err != nil {
		t.Fatal(err)
	}
	c := Compile(g)
	want, _, _ := AllPaths(g, "n0", "n5", Options{})
	for i := 0; i < 50; i++ {
		got, _, err := c.AllPaths("n0", "n5", Options{})
		if err != nil {
			t.Fatal(err)
		}
		assertSameSequence(t, fmt.Sprintf("round %d", i), want, got)
	}
	// Interleave different endpoint pairs and variants.
	for i := 0; i < 20; i++ {
		if _, _, err := c.AllPathsIterative("n1", "n4", Options{MaxDepth: 3}); err != nil {
			t.Fatal(err)
		}
		if _, _, err := c.AllPathsParallel("n2", "n3", Options{}, 0); err != nil {
			t.Fatal(err)
		}
		got, _, err := c.AllPaths("n0", "n5", Options{})
		if err != nil {
			t.Fatal(err)
		}
		assertSameSequence(t, fmt.Sprintf("interleaved %d", i), want, got)
	}
}

// TestEqualKeyAllocs is the AllocsPerRun guard for the strconv-based
// equalKey: one buffer plus its string conversion, nothing from fmt.
func TestEqualKeyAllocs(t *testing.T) {
	p := Path{
		Nodes: []string{"t1", "e1", "d1", "c1", "d4", "printS"},
		Edges: []int{0, 11, 222, 3333, 44444},
	}
	allocs := testing.AllocsPerRun(200, func() {
		if p.equalKey() == "" {
			t.Fatal("empty key")
		}
	})
	if allocs > 2 {
		t.Errorf("equalKey allocates %.1f objects/op, want <= 2 (buffer + string)", allocs)
	}
	if got, want := p.equalKey(), "t1|0|e1|11|d1|222|c1|3333|d4|44444|printS"; got != want {
		t.Errorf("equalKey = %q, want %q", got, want)
	}
}

// --- Benchmarks (the CI smoke job runs -bench=PathDisc -benchtime=1x) ---

func benchGraph(b *testing.B) *topology.Graph {
	g, err := topology.Mesh(8)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func BenchmarkPathDiscLegacyMesh8(b *testing.B) {
	g := benchGraph(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := AllPaths(g, "n0", "n7", Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPathDiscCSRMesh8(b *testing.B) {
	c := Compile(benchGraph(b))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.AllPaths("n0", "n7", Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPathDiscCSRIterativeMesh8(b *testing.B) {
	c := Compile(benchGraph(b))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.AllPathsIterative("n0", "n7", Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPathDiscCSRParallelMesh8(b *testing.B) {
	c := Compile(benchGraph(b))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.AllPathsParallel("n0", "n7", Options{}, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPathDiscCompile(b *testing.B) {
	g := benchGraph(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compile(g)
	}
}

func BenchmarkPathDiscEqualKey(b *testing.B) {
	p := Path{
		Nodes: []string{"t1", "e1", "d1", "c1", "d4", "printS"},
		Edges: []int{0, 11, 222, 3333, 44444},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if p.equalKey() == "" {
			b.Fatal("empty")
		}
	}
}
