package pathdisc

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"upsim/internal/testutil"
	"upsim/internal/topology"
)

// throughputResolver builds an EdgeCostFunc over an edge-ID → Mbps table;
// absent IDs fall back to the hop cost, like edges without the stereotype.
func throughputResolver(mbps map[int]float64) EdgeCostFunc {
	return func(edgeID int) (float64, bool) {
		v, ok := mbps[edgeID]
		return v, ok
	}
}

// bruteKShortest is the reference oracle: enumerate every simple path, rank
// by the documented total order — cost under the kernel's own PathCost fold
// (bit-identical floats), then node-name sequence, then edge-ID sequence —
// and keep the first k. Power-of-two throughputs in the tests make the
// dyadic cost sums exact, so even "coincidental" cost ties are reproduced
// rather than rounded apart.
func bruteKShortest(t *testing.T, c *Compiled, g *topology.Graph, src, dst string, k int, metric CostMetric) []Path {
	t.Helper()
	all, _, err := AllPaths(g, src, dst, Options{})
	if err != nil {
		t.Fatalf("brute force enumeration: %v", err)
	}
	sort.SliceStable(all, func(i, j int) bool {
		a, b := all[i], all[j]
		ca, cb := c.PathCost(metric, a), c.PathCost(metric, b)
		if ca != cb {
			return ca < cb
		}
		for x := 0; x < len(a.Nodes) && x < len(b.Nodes); x++ {
			if a.Nodes[x] != b.Nodes[x] {
				return a.Nodes[x] < b.Nodes[x]
			}
		}
		if len(a.Nodes) != len(b.Nodes) {
			return len(a.Nodes) < len(b.Nodes)
		}
		for x := 0; x < len(a.Edges) && x < len(b.Edges); x++ {
			if a.Edges[x] != b.Edges[x] {
				return a.Edges[x] < b.Edges[x]
			}
		}
		return false
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

func assertRanked(t *testing.T, ctxt string, want, got []Path) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d paths, want %d\ngot:  %v\nwant: %v", ctxt, len(got), len(want), got, want)
	}
	for i := range want {
		if !reflect.DeepEqual(want[i].Nodes, got[i].Nodes) || !reflect.DeepEqual(want[i].Edges, got[i].Edges) {
			t.Fatalf("%s: rank %d diverges\ngot:  %v %v\nwant: %v %v", ctxt, i,
				got[i], got[i].Edges, want[i], want[i].Edges)
		}
	}
}

// randomMultigraph builds a small random connected-ish multigraph with
// parallel edges and the occasional self-loop, plus a random power-of-two
// throughput assignment covering a random subset of edges.
func randomCostedMultigraph(t *testing.T, rng *rand.Rand) (*topology.Graph, map[int]float64) {
	t.Helper()
	g := topology.New()
	n := 4 + rng.Intn(4) // 4..7 nodes
	for i := 0; i < n; i++ {
		if err := g.AddNode(fmt.Sprintf("n%d", i), "T"); err != nil {
			t.Fatal(err)
		}
	}
	mbps := map[int]float64{}
	powers := []float64{1, 2, 4, 8, 16}
	edges := n + rng.Intn(2*n) // dense enough for path diversity
	for i := 0; i < edges; i++ {
		a := fmt.Sprintf("n%d", rng.Intn(n))
		b := fmt.Sprintf("n%d", rng.Intn(n)) // may equal a: self-loop
		id, err := g.AddEdge(a, b, "l")
		if err != nil {
			t.Fatal(err)
		}
		if rng.Intn(3) != 0 { // 2/3 of edges carry a throughput attribute
			mbps[id] = powers[rng.Intn(len(powers))]
		}
	}
	return g, mbps
}

// TestKShortestProperty pins Yen's top-k against brute-force
// enumerate-then-rank on random small multigraphs, under both cost metrics
// and across k values straddling the total path count. Ties — rampant under
// CostHops, engineered under CostThroughput by the power-of-two throughput
// pool — must break identically (the documented deterministic order).
func TestKShortestProperty(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		rng := rand.New(rand.NewSource(int64(31*trial + 5)))
		g, mbps := randomCostedMultigraph(t, rng)
		c := Compile(g)
		c.SetEdgeCosts(throughputResolver(mbps))
		src, dst := "n0", fmt.Sprintf("n%d", g.NumNodes()-1)
		for _, metric := range []CostMetric{CostHops, CostThroughput} {
			for _, k := range []int{1, 2, 5, 1000} {
				want := bruteKShortest(t, c, g, src, dst, k, metric)
				got, stats, err := c.KShortest(src, dst, Options{K: k, CostMetric: metric})
				if err != nil {
					t.Fatalf("trial %d metric=%s k=%d: %v", trial, metric, k, err)
				}
				ctxt := fmt.Sprintf("trial %d metric=%s k=%d", trial, metric, k)
				assertRanked(t, ctxt, want, got)
				if stats.Paths != len(got) {
					t.Fatalf("%s: stats.Paths=%d, len=%d", ctxt, stats.Paths, len(got))
				}
				if stats.Truncated != (len(got) == k) {
					t.Fatalf("%s: Truncated=%v with %d/%d paths", ctxt, stats.Truncated, len(got), k)
				}
			}
		}
	}
}

// TestKShortestNoCostView pins the hop fallback: without SetEdgeCosts,
// CostThroughput ranks identically to CostHops.
func TestKShortestNoCostView(t *testing.T) {
	g, err := topology.Mesh(5)
	if err != nil {
		t.Fatal(err)
	}
	c := Compile(g)
	hops, _, err := c.KShortest("n0", "n4", Options{K: 7, CostMetric: CostHops})
	if err != nil {
		t.Fatal(err)
	}
	tp, _, err := c.KShortest("n0", "n4", Options{K: 7, CostMetric: CostThroughput})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(hops, tp) {
		t.Fatalf("hop fallback diverges:\nhops: %v\ntp:   %v", hops, tp)
	}
}

// TestKShortestPatchCoherence pins k-best ≡ recompiled k-best after what-if
// delta ops: the patched kernel's cost view (PatchAddEdge resolving through
// the retained EdgeCostFunc) must rank exactly like a fresh Compile +
// SetEdgeCosts of the mutated graph.
func TestKShortestPatchCoherence(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		rng := rand.New(rand.NewSource(int64(77*trial + 3)))
		g, err := topology.Ladder(5)
		if err != nil {
			t.Fatal(err)
		}
		mbps := map[int]float64{}
		powers := []float64{1, 2, 4, 8, 16}
		for _, e := range g.Edges() {
			if rng.Intn(3) != 0 {
				mbps[e.ID] = powers[rng.Intn(len(powers))]
			}
		}
		// Pre-seed throughputs for edge IDs the mutations will allocate
		// (graph IDs are sequential and never reused), so PatchAddEdge's
		// at-patch-time resolution is exercised with real costs, not just
		// the hop fallback.
		for id := g.NumEdges(); id < g.NumEdges()+300; id++ {
			if rng.Intn(3) != 0 {
				mbps[id] = powers[rng.Intn(len(powers))]
			}
		}
		fn := throughputResolver(mbps)
		c := Compile(g)
		c.SetEdgeCosts(fn)
		src, dst := "n0", "n9"
		for step := 0; step < 10; step++ {
			desc := applyRandomMutation(t, rng, g, c, src, dst, trial*100+step)
			fresh := Compile(g)
			fresh.SetEdgeCosts(fn)
			for _, metric := range []CostMetric{CostHops, CostThroughput} {
				for _, k := range []int{1, 4, 64} {
					want, _, wantErr := fresh.KShortest(src, dst, Options{K: k, CostMetric: metric})
					got, _, gotErr := c.KShortest(src, dst, Options{K: k, CostMetric: metric})
					ctxt := fmt.Sprintf("trial %d step %d op=%s metric=%s k=%d", trial, step, desc, metric, k)
					if (wantErr == nil) != (gotErr == nil) || (wantErr != nil && wantErr.Error() != gotErr.Error()) {
						t.Fatalf("%s: error mismatch: fresh=%v patched=%v", ctxt, wantErr, gotErr)
					}
					if wantErr != nil {
						continue
					}
					assertRanked(t, ctxt, want, got)
				}
			}
		}
	}
}

// TestKShortestWorkBudget pins the structured budget error: the K·V·E
// estimate against Options.MaxWork, rejected before any search runs.
func TestKShortestWorkBudget(t *testing.T) {
	g, err := topology.Mesh(6)
	if err != nil {
		t.Fatal(err)
	}
	c := Compile(g)
	_, _, err = c.KShortest("n0", "n5", Options{K: 5, MaxWork: 10})
	le, ok := AsLimitError(err)
	if !ok {
		t.Fatalf("err = %v, want *LimitError", err)
	}
	if le.BudgetKind() != LimitKBest {
		t.Errorf("Kind = %q, want %q", le.BudgetKind(), LimitKBest)
	}
	if want := 5 * c.NumNodes() * c.NumEdges(); le.Need != want {
		t.Errorf("Need = %d, want %d", le.Need, want)
	}
	if le.Limit != 10 {
		t.Errorf("Limit = %d, want 10", le.Limit)
	}
	// A generous budget admits the same request.
	if _, _, err := c.KShortest("n0", "n5", Options{K: 5, MaxWork: 1 << 20}); err != nil {
		t.Errorf("generous budget rejected: %v", err)
	}
	// The enumeration hard-limit error keeps its kind (and its message).
	_, _, err = c.AllPaths("n0", "n5", Options{HardMaxPaths: 1})
	if le, ok := AsLimitError(err); !ok || le.BudgetKind() != LimitPaths {
		t.Errorf("hard limit error = %v, want kind %q", err, LimitPaths)
	}
}

// TestKShortestArgs covers validation and the degenerate inputs.
func TestKShortestArgs(t *testing.T) {
	g, err := topology.Ladder(3)
	if err != nil {
		t.Fatal(err)
	}
	c := Compile(g)
	if _, _, err := c.KShortest("n0", "n5", Options{}); err == nil {
		t.Error("K=0 accepted")
	}
	if _, _, err := c.KShortest("nope", "n5", Options{K: 1}); err == nil {
		t.Error("unknown requester accepted")
	}
	if _, _, err := c.KShortest("n0", "n0", Options{K: 1}); err == nil {
		t.Error("same endpoints accepted")
	}
	// Disconnected pair: empty ranking, no error.
	if err := g.AddNode("island", "T"); err != nil {
		t.Fatal(err)
	}
	if err := c.PatchAddNode("island"); err != nil {
		t.Fatal(err)
	}
	paths, stats, err := c.KShortest("n0", "island", Options{K: 3})
	if err != nil || len(paths) != 0 || stats.Truncated {
		t.Errorf("disconnected pair: paths=%v stats=%+v err=%v, want empty/untruncated/nil", paths, stats, err)
	}
}

// TestParseCostMetric pins the wire forms.
func TestParseCostMetric(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want CostMetric
		ok   bool
	}{
		{"", CostHops, true},
		{"hops", CostHops, true},
		{"throughput", CostThroughput, true},
		{"latency", 0, false},
	} {
		got, err := ParseCostMetric(tc.in)
		if (err == nil) != tc.ok || (tc.ok && got != tc.want) {
			t.Errorf("ParseCostMetric(%q) = %v, %v; want %v ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}
	if CostHops.String() != "hops" || CostThroughput.String() != "throughput" {
		t.Error("String round trip broken")
	}
}

// TestKShortestAllocs is the AllocsPerRun guard of the pooled ranked
// kernel: once the scratch pool is warm, a KShortest run performs only the
// allocations that escape into the returned paths — the result slice and
// its two arena chunks, plus small constant slack for arena regrowth —
// never per-expansion or per-spur work.
func TestKShortestAllocs(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation accounting is not meaningful under -race")
	}
	g, err := topology.Mesh(7)
	if err != nil {
		t.Fatal(err)
	}
	c := Compile(g)
	opts := Options{K: 5, CostMetric: CostHops}
	for i := 0; i < 3; i++ { // warm the scratch pool and its k-state
		if _, _, err := c.KShortest("n0", "n6", opts); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, _, err := c.KShortest("n0", "n6", opts); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 8 {
		t.Errorf("KShortest allocates %.1f objects/op, want <= 8 (result slice + arenas)", allocs)
	}
}

// BenchmarkPathDiscKShortest measures ranked discovery on the mesh the
// enumeration benchmarks use (CI runs every PathDisc benchmark at 1x).
func BenchmarkPathDiscKShortest(b *testing.B) {
	c := Compile(benchGraph(b))
	opts := Options{K: 5, CostMetric: CostHops}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.KShortest("n0", "n7", opts); err != nil {
			b.Fatal(err)
		}
	}
}
