package pathdisc

// This file implements the budgeted ranked discovery mode of the compiled
// kernel: Yen's k-shortest-paths over the CSR adjacency, with edge costs
// resolved once from model stereotypes (SetEdgeCosts) and a hop-count
// fallback. All-simple-paths enumeration is exponential, so a pathological
// pair can only be answered with a hard-limit error (LimitError, kind
// "paths"); KShortest instead bounds the work to K single-source shortest
// path computations — k·V·E in the worst case — and returns the K cheapest
// paths under a deterministic total order. See DESIGN.md §15.
//
// Determinism. Paths are ordered by (cost, node-name sequence, edge-ID
// sequence). Cost ties are resolved exactly — no epsilon — which requires a
// fixed float summation order: every path cost in this file is the
// right-to-left fold c(e1) + (c(e2) + (… + 0)), the same arithmetic the
// reverse Dijkstra performs when it relaxes dist[v] = c(e) + dist[w]
// toward the destination. PathCost exposes the fold so callers (and the
// brute-force property test) reproduce kernel costs bit-identically.
//
// Allocation. The spur searches run on the pooled scratch: the binary heap,
// the float distance table, the blocked-edge bitset and the candidate
// arena are all reused across enumerations, so a warm KShortest performs
// only the handful of allocations that escape into the returned paths
// (pinned by TestKShortestAllocs).

import (
	"fmt"
	"math"
)

// CostMetric selects the edge-cost model of ranked discovery.
type CostMetric uint8

const (
	// CostHops charges every edge 1: K shortest paths by hop count. The
	// zero value, and the fallback when no cost view is installed.
	CostHops CostMetric = iota
	// CostThroughput charges an edge 1/throughput (Mbps, from the
	// Communication stereotype's attribute, resolved by SetEdgeCosts) and 1
	// when the edge carries no positive throughput — the same per-edge cost
	// the provenance path records report (internal/explain).
	CostThroughput
)

// String renders the metric in its wire form ("hops", "throughput").
func (m CostMetric) String() string {
	switch m {
	case CostHops:
		return "hops"
	case CostThroughput:
		return "throughput"
	}
	return fmt.Sprintf("CostMetric(%d)", uint8(m))
}

// ParseCostMetric parses the wire form accepted by the HTTP and CLI
// surfaces; the empty string selects CostHops.
func ParseCostMetric(s string) (CostMetric, error) {
	switch s {
	case "", "hops":
		return CostHops, nil
	case "throughput":
		return CostThroughput, nil
	}
	return CostHops, fmt.Errorf("pathdisc: unknown cost metric %q (want \"hops\" or \"throughput\")", s)
}

// EdgeCostFunc resolves the throughput (in Mbps) of one topology edge ID.
// ok reports whether the edge carries a positive throughput attribute;
// edges that resolve to false cost 1 (the hop fallback). The function is
// retained by SetEdgeCosts so incremental patches (PatchAddEdge) keep the
// cost view coherent with a fresh compile of the mutated graph.
type EdgeCostFunc func(edgeID int) (mbps float64, ok bool)

// SetEdgeCosts installs the stereotype cost view: fn is resolved once per
// compiled edge (and once per subsequently patched-in edge), never during
// search. Passing nil removes the view, reverting CostThroughput to the
// hop fallback. Not safe concurrently with searches — like patching,
// callers serialise it against enumeration (Generators install the view at
// construction time).
func (c *Compiled) SetEdgeCosts(fn EdgeCostFunc) {
	c.costFn = fn
	if fn == nil {
		c.costOf, c.costMbps = nil, nil
		return
	}
	c.costOf = make([]float64, c.maxEdgeID+1)
	c.costMbps = make([]float64, c.maxEdgeID+1)
	for i := range c.costOf {
		c.costOf[i] = 1
	}
	for _, e := range c.adjEdge {
		c.resolveCost(int(e))
	}
}

// resolveCost fills the cost-view slot of one edge ID from the retained
// resolver. Slots default to the hop cost 1 / throughput 0.
func (c *Compiled) resolveCost(edgeID int) {
	if c.costFn == nil || edgeID < 0 || edgeID >= len(c.costOf) {
		return
	}
	if mbps, ok := c.costFn(edgeID); ok && mbps > 0 {
		c.costOf[edgeID] = 1 / mbps
		c.costMbps[edgeID] = mbps
	} else {
		c.costOf[edgeID] = 1
		c.costMbps[edgeID] = 0
	}
}

// edgeCost returns the cost of traversing edge e under the metric. Always
// positive: Dijkstra's monotonicity and the simplicity of extracted walks
// both rest on that.
//
//upsim:hotpath one lookup per relaxation
func (c *Compiled) edgeCost(metric CostMetric, e int32) float64 {
	if metric == CostHops || c.costOf == nil {
		return 1
	}
	if int(e) < len(c.costOf) {
		return c.costOf[e]
	}
	return 1 // edge patched in after SetEdgeCosts with no resolution: hop fallback
}

// EdgeMbps returns the resolved throughput of one topology edge ID (0 when
// the edge carries none, or when no cost view is installed) — the
// bottleneck input the ranked-path records join with the provenance
// records' BottleneckMbps.
func (c *Compiled) EdgeMbps(edgeID int) float64 {
	if edgeID >= 0 && edgeID < len(c.costMbps) {
		return c.costMbps[edgeID]
	}
	return 0
}

// PathCost computes a path's cost under the metric using the kernel's
// right-to-left summation convention, so a caller ranking paths itself
// (the property test's brute force, the per-path response records) gets
// floats bit-identical to KShortest's internal ordering.
func (c *Compiled) PathCost(metric CostMetric, p Path) float64 {
	var cost float64
	for i := len(p.Edges) - 1; i >= 0; i-- {
		cost = c.edgeCost(metric, int32(p.Edges[i])) + cost
	}
	return cost
}

// kheapEntry is one binary-heap slot of the pooled Dijkstra frontier.
type kheapEntry struct {
	dist float64
	node int32
}

// kpath is one accepted or candidate path in Compiled-internal form. Node
// and edge storage is carved from the pooled scratch arena.
type kpath struct {
	cost  float64
	nodes []int32
	edges []int32
}

// ksearch is the per-enumeration state of one KShortest run.
type ksearch struct {
	c      *Compiled
	s      *scratch
	metric CostMetric
	dst    int32
	stats  Stats
}

// Blocked-set helpers: root-path nodes are blocked through the scratch
// visited bitset (the same one the DFS kernels use for path tracking), spur
// edges through the eblock bitset sized by the largest edge ID.

//upsim:hotpath bitset ops, one per relaxation
func (k *ksearch) blockEdge(e int32) { k.s.eblock[e>>6] |= 1 << (uint(e) & 63) }

//upsim:hotpath
func (k *ksearch) edgeBlocked(e int32) bool { return k.s.eblock[e>>6]&(1<<(uint(e)&63)) != 0 }

//upsim:hotpath
func (k *ksearch) nodeBlocked(v int32) bool {
	return k.s.visited[v>>6]&(1<<(uint(v)&63)) != 0
}

// push inserts a frontier entry, sifting up.
//
//upsim:hotpath
func (k *ksearch) push(e kheapEntry) {
	h := append(k.s.kheap, e)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h[p].dist <= h[i].dist {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
	k.s.kheap = h
}

// pop removes the minimum frontier entry, sifting down.
//
//upsim:hotpath
func (k *ksearch) pop() kheapEntry {
	h := k.s.kheap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && h[l].dist < h[m].dist {
			m = l
		}
		if r < n && h[r].dist < h[m].dist {
			m = r
		}
		if m == i {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	k.s.kheap = h
	return top
}

// dijkstra fills s.fdist with the cheapest cost from every node to dst
// under the current node and edge blocks (+Inf when unreachable) — the
// reverse single-source pass each Yen spur runs. Lazy deletion: stale heap
// entries are skipped on pop instead of being decreased in place.
//
//upsim:hotpath the inner loop of ranked discovery
func (k *ksearch) dijkstra() {
	s := k.s
	for i := range s.fdist {
		s.fdist[i] = math.Inf(1)
	}
	s.kheap = s.kheap[:0]
	s.fdist[k.dst] = 0
	k.push(kheapEntry{dist: 0, node: k.dst})
	for len(s.kheap) > 0 {
		e := k.pop()
		if e.dist > s.fdist[e.node] {
			continue // stale entry superseded by a cheaper relaxation
		}
		k.stats.NodeVisits++
		for j := k.c.adjStart[e.node]; j < k.c.adjStart[e.node+1]; j++ {
			next := k.c.adjNode[j]
			eid := k.c.adjEdge[j]
			if k.nodeBlocked(next) || k.edgeBlocked(eid) {
				continue
			}
			k.stats.EdgeVisits++
			nd := k.c.edgeCost(k.metric, eid) + e.dist
			if nd < s.fdist[next] {
				s.fdist[next] = nd
				k.push(kheapEntry{dist: nd, node: next})
			}
		}
	}
}

// extract appends to s.nodes/s.edges the lexicographically-least cheapest
// path from `from` to dst implied by the current fdist table: at every step
// it takes the tight edge (fdist[next] + cost == fdist[cur], exact float
// equality) whose endpoint has the smallest node name, breaking residual
// ties (parallel edges) on the smallest edge ID. Every positive-cost tight
// step strictly decreases fdist, so the walk is simple and terminates at
// dst without explicit tracking. Returns false only if no tight edge
// exists, which cannot happen for a finite fdist[from] under unchanged
// blocks (defensive).
//
//upsim:hotpath
func (k *ksearch) extract(from int32) bool {
	s := k.s
	cur := from
	for cur != k.dst {
		best := int32(-1)
		var bestNode, bestEdge int32
		for j := k.c.adjStart[cur]; j < k.c.adjStart[cur+1]; j++ {
			next := k.c.adjNode[j]
			eid := k.c.adjEdge[j]
			if k.nodeBlocked(next) || k.edgeBlocked(eid) {
				continue
			}
			if s.fdist[next]+k.c.edgeCost(k.metric, eid) != s.fdist[cur] {
				continue
			}
			if best < 0 || k.c.names[next] < k.c.names[bestNode] ||
				(next == bestNode && eid < bestEdge) {
				best, bestNode, bestEdge = j, next, eid
			}
		}
		if best < 0 {
			return false
		}
		s.nodes = append(s.nodes, bestNode)
		s.edges = append(s.edges, bestEdge)
		cur = bestNode
	}
	return true
}

// carve copies the current s.nodes/s.edges buffers into the pooled arena
// and returns them as a kpath with the given cost. Appending to the arena
// may grow it; previously carved slices keep referencing the old backing
// array, whose contents are never mutated, so they stay valid.
func (k *ksearch) carve(cost float64) kpath {
	s := k.s
	no := len(s.karena)
	s.karena = append(s.karena, s.nodes...)
	nodes := s.karena[no:len(s.karena):len(s.karena)]
	eo := len(s.karena)
	s.karena = append(s.karena, s.edges...)
	edges := s.karena[eo:len(s.karena):len(s.karena)]
	return kpath{cost: cost, nodes: nodes, edges: edges}
}

// sameSeq reports whether a kpath equals the current buffer contents.
func (k *ksearch) sameSeq(p kpath) bool {
	s := k.s
	if len(p.nodes) != len(s.nodes) || len(p.edges) != len(s.edges) {
		return false
	}
	for i, v := range p.nodes {
		if s.nodes[i] != v {
			return false
		}
	}
	for i, e := range p.edges {
		if s.edges[i] != e {
			return false
		}
	}
	return true
}

// lessKPath is the deterministic total order of ranked discovery: cost
// (exact float compare — all costs share one summation order), then the
// node-name sequence, then the edge-ID sequence.
func (c *Compiled) lessKPath(a, b kpath) bool {
	if a.cost != b.cost {
		return a.cost < b.cost
	}
	for i := 0; i < len(a.nodes) && i < len(b.nodes); i++ {
		an, bn := c.names[a.nodes[i]], c.names[b.nodes[i]]
		if an != bn {
			return an < bn
		}
	}
	if len(a.nodes) != len(b.nodes) {
		return len(a.nodes) < len(b.nodes)
	}
	for i := 0; i < len(a.edges) && i < len(b.edges); i++ {
		if a.edges[i] != b.edges[i] {
			return a.edges[i] < b.edges[i]
		}
	}
	return false
}

// prefixMatches reports whether accepted path p shares prev's root prefix
// through spur index i: same first i+1 nodes and first i edges, with an
// edge at position i to block.
func prefixMatches(p, prev kpath, i int) bool {
	if len(p.edges) <= i {
		return false
	}
	for j := 0; j <= i; j++ {
		if p.nodes[j] != prev.nodes[j] {
			return false
		}
	}
	for j := 0; j < i; j++ {
		if p.edges[j] != prev.edges[j] {
			return false
		}
	}
	return true
}

// KShortest returns the opts.K cheapest simple paths from src to dst under
// opts.CostMetric, ordered by (cost, node-name sequence, edge-ID sequence)
// — Yen's algorithm over the compiled adjacency, with every spur search a
// pooled binary-heap Dijkstra. Fewer than K paths are returned when the
// pair admits fewer; a disconnected pair returns an empty slice and no
// error (ranked discovery answers "the best you can get", enumeration
// semantics like AllowDisconnected stay with the full enumeration).
//
// Unlike the enumeration entry points, KShortest ignores MaxDepth,
// MaxPaths, CollapseParallel and HardMaxPaths: its bound is the K·V·E work
// envelope, enforced up front through Options.MaxWork — exceeding it
// returns a *LimitError with Kind "kbest" before any search runs.
// Stats.Truncated reports that exactly K paths were returned (more may
// exist); Paths, NodeVisits and EdgeVisits count the ranked search effort.
//
// Package-level alias: KShortestCSR.
func (c *Compiled) KShortest(src, dst string, opts Options) ([]Path, Stats, error) {
	s0, d0, err := c.validate(src, dst)
	if err != nil {
		return nil, Stats{}, err
	}
	if opts.K <= 0 {
		return nil, Stats{}, fmt.Errorf("pathdisc: k must be positive (got %d)", opts.K)
	}
	if opts.MaxWork > 0 {
		// The work envelope: K spur rounds, each at most one Dijkstra per
		// path node, each Dijkstra O(E log V) — estimated as K·V·E, the
		// coarse bound documented in docs/API.md. Estimated before any
		// search so an over-budget request costs nothing.
		if est := opts.K * c.liveNodes * c.numEdges; est > opts.MaxWork {
			return nil, Stats{}, &LimitError{
				Src: src, Dst: dst, Kind: LimitKBest, Need: est, Limit: opts.MaxWork,
			}
		}
	}
	s := c.getScratch()
	defer c.putScratch(s)
	// The float distance table and the blocked-edge bitset are sized
	// lazily: node growth swaps the whole pool (resetPool), but patched-in
	// edges grow maxEdgeID without a pool swap.
	if len(s.fdist) < len(c.names) {
		s.fdist = make([]float64, len(c.names))
	}
	if words := (c.maxEdgeID + 64) / 64; len(s.eblock) < words {
		s.eblock = make([]uint64, words)
	}
	clear(s.eblock)
	k := &ksearch{c: c, s: s, metric: opts.CostMetric, dst: d0}

	// First shortest path: no blocks.
	k.dijkstra()
	if math.IsInf(s.fdist[s0], 1) {
		observe("csr-kbest", k.stats)
		return nil, k.stats, nil
	}
	s.nodes = append(s.nodes[:0], s0)
	s.edges = s.edges[:0]
	if !k.extract(s0) {
		return nil, k.stats, fmt.Errorf("pathdisc: internal: no tight edge from %q", src)
	}
	s.kacc = append(s.kacc, k.carve(s.fdist[s0]))

	for len(s.kacc) < opts.K {
		prev := s.kacc[len(s.kacc)-1]
		for i := 0; i < len(prev.nodes)-1; i++ {
			spur := prev.nodes[i]
			// Block the root-path nodes before the spur node, and the
			// spur-position edge of every accepted path sharing the root.
			for _, v := range prev.nodes[:i] {
				s.visited[v>>6] |= 1 << (uint(v) & 63)
			}
			clear(s.eblock)
			for _, p := range s.kacc {
				if prefixMatches(p, prev, i) {
					k.blockEdge(p.edges[i])
				}
			}
			k.dijkstra()
			if !math.IsInf(s.fdist[spur], 1) {
				s.nodes = append(s.nodes[:0], prev.nodes[:i+1]...)
				s.edges = append(s.edges[:0], prev.edges[:i]...)
				if k.extract(spur) {
					// Total cost keeps the right-to-left fold: the spur
					// tail's cost is fdist[spur] by construction, the root
					// edges fold on from the inside out.
					cost := s.fdist[spur]
					for j := i - 1; j >= 0; j-- {
						cost = c.edgeCost(opts.CostMetric, prev.edges[j]) + cost
					}
					dup := false
					for _, p := range s.kcand {
						if k.sameSeq(p) {
							dup = true
							break
						}
					}
					if !dup {
						s.kcand = append(s.kcand, k.carve(cost))
					}
				}
			}
			for _, v := range prev.nodes[:i] {
				s.visited[v>>6] &^= 1 << (uint(v) & 63)
			}
		}
		if len(s.kcand) == 0 {
			break
		}
		mi := 0
		for j := 1; j < len(s.kcand); j++ {
			if c.lessKPath(s.kcand[j], s.kcand[mi]) {
				mi = j
			}
		}
		s.kacc = append(s.kacc, s.kcand[mi])
		s.kcand[mi] = s.kcand[len(s.kcand)-1]
		s.kcand = s.kcand[:len(s.kcand)-1]
	}
	clear(s.eblock)

	out := make([]Path, 0, len(s.kacc))
	var nameArena []string
	var edgeArena []int
	for _, p := range s.kacc {
		if cap(nameArena)-len(nameArena) < len(p.nodes) {
			nameArena = make([]string, 0, arenaChunk(len(p.nodes)))
		}
		nb := len(nameArena)
		for _, v := range p.nodes {
			nameArena = append(nameArena, c.names[v])
		}
		if cap(edgeArena)-len(edgeArena) < len(p.edges) {
			edgeArena = make([]int, 0, arenaChunk(len(p.edges)))
		}
		eb := len(edgeArena)
		for _, e := range p.edges {
			edgeArena = append(edgeArena, int(e))
		}
		out = append(out, Path{
			Nodes: nameArena[nb : nb+len(p.nodes) : nb+len(p.nodes)],
			Edges: edgeArena[eb : eb+len(p.edges) : eb+len(p.edges)],
		})
		if len(p.nodes) > k.stats.MaxStack {
			k.stats.MaxStack = len(p.nodes)
		}
	}
	k.stats.Paths = len(out)
	k.stats.Truncated = len(out) == opts.K
	observe("csr-kbest", k.stats)
	return out, k.stats, nil
}

// KShortestCSR runs ranked discovery on a compiled graph — the
// package-level counterpart of Compiled.KShortest, mirroring the
// AllPathsCSR naming scheme.
func KShortestCSR(c *Compiled, src, dst string, opts Options) ([]Path, Stats, error) {
	return c.KShortest(src, dst, opts)
}
