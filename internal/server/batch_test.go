package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"upsim/internal/cache"
	"upsim/internal/casestudy"
)

func batchItem(modelXML, mappingXML, op, name string) map[string]any {
	it := map[string]any{
		"modelXml":   modelXML,
		"diagram":    casestudy.DiagramName,
		"service":    casestudy.PrintingServiceName,
		"mappingXml": mappingXML,
		"name":       name,
	}
	if op != "" {
		it["op"] = op
	}
	if op == "availability" {
		it["mcSamples"] = 1000
	}
	return it
}

func TestBatchEndpoint(t *testing.T) {
	ts := httptest.NewServer(New())
	defer ts.Close()
	modelXML, mappingXML := fetchArtifacts(t, ts)

	resp, body := postJSON(t, ts, "/api/v1/batch", map[string]any{
		"items": []map[string]any{
			batchItem(modelXML, mappingXML, "", "upsim"),
			batchItem(modelXML, mappingXML, "availability", "upsim"),
			batchItem(modelXML, mappingXML, "qos", "upsim"),
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var out BatchResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Errors != 0 {
		t.Fatalf("errors = %d, body %s", out.Errors, body)
	}
	if len(out.Results) != 3 {
		t.Fatalf("results = %d, want 3", len(out.Results))
	}
	wantOps := []string{"generate", "availability", "qos"}
	for i, r := range out.Results {
		if r.Index != i || r.Op != wantOps[i] {
			t.Errorf("result[%d] = index %d op %q, want index %d op %q", i, r.Index, r.Op, i, wantOps[i])
		}
		if r.Error != "" {
			t.Errorf("result[%d] error: %s", i, r.Error)
		}
		if r.Result == nil {
			t.Errorf("result[%d] has no payload", i)
		}
	}
	// All three ops share one generate input, so the pipeline ran once (one
	// generation miss, two hits-or-shares); the availability and qos items
	// additionally each populate their own analysis cache entry, adding one
	// first-time miss apiece.
	if out.Cache.Misses != 3 {
		t.Errorf("cache misses = %d, want 3 (one generation + two analysis entries)", out.Cache.Misses)
	}
	if out.Cache.Hits+out.Cache.Shared != 2 {
		t.Errorf("cache hits+shared = %d+%d, want 2", out.Cache.Hits, out.Cache.Shared)
	}
}

// TestBatchDedupAndWarmCache asserts the advertised fan-out semantics: N
// identical items compute the pipeline once (the survivors dedup through
// the shared cache or the per-item warm lane), and a repeated identical
// batch replays the memoised response bytes without decoding or fan-out.
func TestBatchDedupAndWarmCache(t *testing.T) {
	ts := httptest.NewServer(New())
	defer ts.Close()
	modelXML, mappingXML := fetchArtifacts(t, ts)

	const n = 8
	items := make([]map[string]any, n)
	for i := range items {
		items[i] = batchItem(modelXML, mappingXML, "", "upsim")
	}
	req := map[string]any{"items": items, "workers": 4}

	resp, coldBody := postJSON(t, ts, "/api/v1/batch", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, coldBody)
	}
	var cold BatchResponse
	if err := json.Unmarshal(coldBody, &cold); err != nil {
		t.Fatal(err)
	}
	if cold.Errors != 0 {
		t.Fatalf("cold errors = %d, body %s", cold.Errors, coldBody)
	}
	// One pipeline run no matter how the 8 items interleave: the shared
	// cache records exactly one generation miss. (How the other 7 dedup —
	// cache hit, singleflight share or per-item warm replay — depends on
	// worker timing, so only the miss count is pinned.)
	if cold.Cache.Misses != 1 {
		t.Errorf("cold cache = %s; want exactly 1 miss", cold.Cache)
	}

	// The repeated batch rides the whole-body warm lane: the memoised bytes
	// (including the embedded cache-stats snapshot) replay verbatim.
	resp, warmBody := postJSON(t, ts, "/api/v1/batch", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm status = %d, body %s", resp.StatusCode, warmBody)
	}
	if !bytes.Equal(warmBody, coldBody) {
		t.Errorf("warm batch response differs from memoised cold response:\ncold: %s\nwarm: %s", coldBody, warmBody)
	}
}

// TestSingleRoutesShareBatchCache asserts that /api/v1/generate and the
// batch route run through the same cache instance.
func TestSingleRoutesShareBatchCache(t *testing.T) {
	ts := httptest.NewServer(New())
	defer ts.Close()
	modelXML, mappingXML := fetchArtifacts(t, ts)

	single := map[string]any{
		"modelXml":   modelXML,
		"diagram":    casestudy.DiagramName,
		"service":    casestudy.PrintingServiceName,
		"mappingXml": mappingXML,
		"name":       "upsim",
	}
	for i := 0; i < 2; i++ {
		if resp, body := postJSON(t, ts, "/api/v1/generate", single); resp.StatusCode != http.StatusOK {
			t.Fatalf("generate %d: status %d, body %s", i, resp.StatusCode, body)
		}
	}
	resp, body := postJSON(t, ts, "/api/v1/batch", map[string]any{
		"items": []map[string]any{batchItem(modelXML, mappingXML, "", "upsim")},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d, body %s", resp.StatusCode, body)
	}
	var out BatchResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	// First single post missed, second hit, batch item hit again.
	if out.Cache.Misses != 1 || out.Cache.Hits != 2 {
		t.Errorf("cache = %s; want 1 miss and 2 hits (single routes must share the batch cache)", out.Cache)
	}
}

func TestBatchValidation(t *testing.T) {
	ts := httptest.NewServer(New())
	defer ts.Close()
	modelXML, mappingXML := fetchArtifacts(t, ts)

	resp, body := postJSON(t, ts, "/api/v1/batch", map[string]any{"items": []map[string]any{}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty items: status = %d, body %s", resp.StatusCode, body)
	}

	// Per-item failures are data, not transport errors: the batch still
	// returns 200 with Error set at the failed index.
	bad := batchItem(modelXML, mappingXML, "divine", "upsim")
	broken := batchItem("<broken", mappingXML, "", "upsim")
	good := batchItem(modelXML, mappingXML, "", "upsim")
	resp, body = postJSON(t, ts, "/api/v1/batch", map[string]any{
		"items": []map[string]any{bad, broken, good},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mixed batch: status = %d, body %s", resp.StatusCode, body)
	}
	var out BatchResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Errors != 2 {
		t.Fatalf("errors = %d, want 2; body %s", out.Errors, body)
	}
	if !strings.Contains(out.Results[0].Error, `unknown op "divine"`) {
		t.Errorf("result[0] error = %q, want unknown-op message", out.Results[0].Error)
	}
	if out.Results[1].Error == "" || out.Results[1].Result != nil {
		t.Errorf("result[1] = %+v, want a decode error", out.Results[1])
	}
	if out.Results[2].Error != "" || out.Results[2].Result == nil {
		t.Errorf("result[2] = %+v, want success", out.Results[2])
	}
}

func TestRunBatchLimits(t *testing.T) {
	c := cache.New(4)
	if _, err := RunBatch(context.Background(), c, 0, &BatchRequest{}); err == nil {
		t.Error("empty batch must fail")
	}
	over := &BatchRequest{Items: make([]BatchItem, MaxBatchItems+1)}
	if _, err := RunBatch(context.Background(), c, 0, over); err == nil {
		t.Errorf("%d items must exceed the limit", MaxBatchItems+1)
	}
}

// TestAnalysisCacheReplay asserts the §VII analysis itself is cached per
// generation content hash: a replayed availability/qos item is served
// without recompiling the dependability kernel, and the legacyKernel
// ablation flag keys its own entry while producing bit-identical numbers.
func TestAnalysisCacheReplay(t *testing.T) {
	ts := httptest.NewServer(New())
	defer ts.Close()
	modelXML, mappingXML := fetchArtifacts(t, ts)

	compiled := BatchItem{
		Op: OpAvailability, ModelXML: modelXML, Diagram: casestudy.DiagramName,
		Service: casestudy.PrintingServiceName, MappingXML: mappingXML,
		Name: "upsim", MCSamples: 1000,
	}
	legacy := compiled
	legacy.LegacyKernel = true
	qos := BatchItem{
		Op: OpQoS, ModelXML: modelXML, Diagram: casestudy.DiagramName,
		Service: casestudy.PrintingServiceName, MappingXML: mappingXML,
		Name: "upsim",
	}
	req := &BatchRequest{Items: []BatchItem{compiled, legacy, qos}, Workers: 1}

	c := cache.New(0)
	cold, err := RunBatch(context.Background(), c, 1, req)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Errors != 0 {
		t.Fatalf("cold batch errors: %+v", cold.Results)
	}
	// 1 generation miss + 3 analysis misses (compiled and legacy
	// availability key separately, qos once).
	if cold.Cache.Misses != 4 {
		t.Errorf("cold misses = %d, want 4", cold.Cache.Misses)
	}

	warm, err := RunBatch(context.Background(), c, 1, req)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Errors != 0 {
		t.Fatalf("warm batch errors: %+v", warm.Results)
	}
	if warm.Cache.Misses != 4 {
		t.Errorf("warm replay recomputed: misses = %d, want still 4", warm.Cache.Misses)
	}

	// The two kernels must agree bit-for-bit through the whole pipeline.
	cr := cold.Results[0].Result.(availabilityResponse)
	lr := cold.Results[1].Result.(availabilityResponse)
	if cr != lr {
		t.Errorf("compiled %+v != legacy %+v", cr, lr)
	}
}
