package server

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sync"

	"upsim/internal/cache"
	"upsim/internal/core"
	"upsim/internal/depend"
	"upsim/internal/pathdisc"
)

// MaxBatchItems bounds one POST /api/v1/batch request.
const MaxBatchItems = 256

// Batch operations. An empty op defaults to OpGenerate.
const (
	OpGenerate     = "generate"
	OpAvailability = "availability"
	OpQoS          = "qos"
	OpPaths        = "paths"
)

// BatchItem is one generation-backed request inside a batch. The fields
// mirror the single-request routes: every item carries the model inputs
// (modelXml, diagram); the generate ops additionally take service,
// mappingXml, name and allowDisconnected; the availability knobs (formula1,
// mcSamples, seed) and the qos knob (maxHops) apply only to their
// respective ops; op "paths" takes from/to plus the discovery knobs
// (maxDepth, maxPaths — or k and cost for ranked discovery) and needs no
// service or mapping.
type BatchItem struct {
	Op                string `json:"op,omitempty"`
	ModelXML          string `json:"modelXml"`
	Diagram           string `json:"diagram"`
	Service           string `json:"service,omitempty"`
	MappingXML        string `json:"mappingXml,omitempty"`
	Name              string `json:"name,omitempty"`
	AllowDisconnected bool   `json:"allowDisconnected,omitempty"`
	Formula1          bool   `json:"formula1,omitempty"`
	MCSamples         int    `json:"mcSamples,omitempty"`
	Seed              int64  `json:"seed,omitempty"`
	LegacyKernel      bool   `json:"legacyKernel,omitempty"`
	MaxHops           int    `json:"maxHops,omitempty"`
	From              string `json:"from,omitempty"`
	To                string `json:"to,omitempty"`
	MaxDepth          int    `json:"maxDepth,omitempty"`
	MaxPaths          int    `json:"maxPaths,omitempty"`
	K                 int    `json:"k,omitempty"`
	Cost              string `json:"cost,omitempty"`
}

// BatchRequest is the POST /api/v1/batch body.
type BatchRequest struct {
	// Items are executed concurrently across the worker pool; items with
	// identical generate inputs share one pipeline run through the cache.
	Items []BatchItem `json:"items"`
	// Workers overrides the server's batch pool size for this request
	// (<= 0 keeps the server default).
	Workers int `json:"workers,omitempty"`
}

// BatchResult is the outcome of one item, at the item's index. Exactly one
// of Result and Error is set.
type BatchResult struct {
	Index  int    `json:"index"`
	Op     string `json:"op"`
	Result any    `json:"result,omitempty"`
	Error  string `json:"error,omitempty"`
	// Budget carries the structured budget detail when Error reports an
	// analysis or discovery budget overflow — the same shape the single
	// routes return as their 422 body, so a batch client can read kind,
	// need and limit without parsing the error string.
	Budget *budgetErrorResponse `json:"budget,omitempty"`
}

// BatchResponse is the POST /api/v1/batch reply.
type BatchResponse struct {
	Results []BatchResult `json:"results"`
	// Errors counts failed items (the HTTP status stays 200; per-item
	// failures are data, not transport errors).
	Errors int `json:"errors"`
	// Cache snapshots the shared cache after the batch, so a client can see
	// how much of its fan-out was deduplicated. (A warm-lane replay of an
	// identical batch repeats the snapshot memoised with the response.)
	Cache cache.Stats `json:"cache"`
}

// RunBatch fans req.Items out across a bounded worker pool, routing every
// pipeline run through the shared cache c: items with identical generate
// inputs compute once (concurrent ones via singleflight) and share the
// Result. Results arrive at their item's index, so output order is
// deterministic regardless of pool size. RunBatch is exported for the
// `upsim batch` subcommand, which executes request files in-process against
// its own cache.
func RunBatch(ctx context.Context, c *cache.Cache, workers int, req *BatchRequest) (*BatchResponse, error) {
	return runBatch(ctx, c, nil, nil, workers, req)
}

// runBatch is RunBatch with an optional generator pool and warm cache: the
// HTTP handler passes the server's pool so items of the same model reuse
// one imported model space, and the warm cache so repeated items replay
// their memoised result (see runBatchItem). The exported entry point builds
// generators fresh and skips the warm lane.
func runBatch(ctx context.Context, c, warm *cache.Cache, p *core.GeneratorPool, workers int, req *BatchRequest) (*BatchResponse, error) {
	if len(req.Items) == 0 {
		return nil, fmt.Errorf("batch: items is required")
	}
	if len(req.Items) > MaxBatchItems {
		return nil, fmt.Errorf("batch: %d items exceed the limit of %d", len(req.Items), MaxBatchItems)
	}
	if req.Workers > 0 {
		workers = req.Workers
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(req.Items) {
		workers = len(req.Items)
	}

	results := make([]BatchResult, len(req.Items))
	tasks := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range tasks {
				results[i] = runBatchItem(ctx, c, warm, p, i, &req.Items[i])
			}
		}()
	}
	for i := range req.Items {
		tasks <- i
	}
	close(tasks)
	wg.Wait()

	resp := &BatchResponse{Results: results, Cache: c.Stats()}
	for i := range results {
		if results[i].Error != "" {
			resp.Errors++
		}
	}
	return resp, nil
}

// itemWarmKey derives the warm-lane key of one batch item from its
// canonical JSON encoding ("" when the warm lane is off). Op normalisation
// happens before the call, so op "" and op "generate" share a key.
func itemWarmKey(warm *cache.Cache, it *BatchItem) string {
	if warm == nil {
		return ""
	}
	b, err := json.Marshal(it)
	if err != nil {
		return ""
	}
	sum := sha256.Sum256(b)
	return warmPrefixItem + hex.EncodeToString(sum[:])
}

// failBatchItem records an item failure, decorating budget overflows with
// the structured detail the single routes return as their 422 body.
func failBatchItem(out BatchResult, err error) BatchResult {
	out.Error = err.Error()
	if be, ok := depend.AsBudgetError(err); ok {
		out.Budget = &budgetErrorResponse{
			errorResponse: errorResponse{Error: be.Error()},
			Kind:          string(be.Kind),
			AtomicService: be.AtomicService,
			Need:          be.Need,
			Limit:         be.Limit,
		}
	} else if le, ok := pathdisc.AsLimitError(err); ok {
		out.Budget = pathsBudgetResponse(le)
	}
	return out
}

// runBatchItem executes one item. A cancelled ctx fails remaining items fast
// (the pipeline itself also honours ctx). Items ride the warm lane like the
// top-level analysis POSTs: a repeated item (keyed by its canonical JSON)
// replays its memoised result without generation or analysis, even when the
// surrounding batch differs.
func runBatchItem(ctx context.Context, c, warm *cache.Cache, p *core.GeneratorPool, i int, it *BatchItem) BatchResult {
	out := BatchResult{Index: i, Op: it.Op}
	if out.Op == "" {
		out.Op = OpGenerate
	}
	if err := ctx.Err(); err != nil {
		out.Error = err.Error()
		return out
	}
	switch out.Op {
	case OpGenerate, OpAvailability, OpQoS, OpPaths:
	default:
		out.Error = fmt.Sprintf("unknown op %q (want %s, %s, %s or %s)", it.Op, OpGenerate, OpAvailability, OpQoS, OpPaths)
		return out
	}
	wkey := itemWarmKey(warm, it)
	if wkey != "" {
		if v, ok := warm.Get(wkey); ok {
			mWarmHits.With("/api/v1/batch").Inc()
			out.Result = v
			return out
		}
	}
	if out.Op == OpPaths {
		return runBatchPaths(ctx, warm, wkey, p, out, it)
	}
	greq := &generateRequest{
		modelInput:        modelInput{ModelXML: it.ModelXML, Diagram: it.Diagram},
		Service:           it.Service,
		MappingXML:        it.MappingXML,
		Name:              it.Name,
		AllowDisconnected: it.AllowDisconnected,
	}
	res, genKey, err := greq.generate(ctx, c, p)
	if err != nil {
		return failBatchItem(out, err)
	}
	switch out.Op {
	case OpGenerate:
		out.Result = buildGenerateResponse(res)
	case OpAvailability:
		resp, err := analyzeAvailability(ctx, c, genKey, res, it.Formula1, it.MCSamples, it.Seed, it.LegacyKernel)
		if err != nil {
			return failBatchItem(out, err)
		}
		out.Result = resp.value
	case OpQoS:
		resp, err := analyzeQoS(ctx, c, genKey, res, it.MaxHops)
		if err != nil {
			return failBatchItem(out, err)
		}
		out.Result = resp.value
	}
	if wkey != "" {
		warm.Add(wkey, out.Result)
	}
	return out
}

// runBatchPaths executes one op "paths" item: path discovery (full or
// ranked) without a service or mapping, mirroring POST /api/v1/paths.
func runBatchPaths(ctx context.Context, warm *cache.Cache, wkey string, p *core.GeneratorPool, out BatchResult, it *BatchItem) BatchResult {
	in := modelInput{ModelXML: it.ModelXML, Diagram: it.Diagram}
	var gen *core.Generator
	if p != nil {
		if err := in.validate(); err != nil {
			return failBatchItem(out, err)
		}
		g, err := p.Acquire(ctx, in.ModelXML, in.Diagram)
		if err != nil {
			return failBatchItem(out, err)
		}
		defer p.Release(g)
		gen = g
	} else {
		_, g, err := in.load(ctx)
		if err != nil {
			return failBatchItem(out, err)
		}
		gen = g
	}
	resp, err := computePaths(gen, it.Diagram, &pathsRequest{
		From: it.From, To: it.To,
		MaxDepth: it.MaxDepth, MaxPaths: it.MaxPaths,
		K: it.K, Cost: it.Cost,
	})
	if err != nil {
		return failBatchItem(out, err)
	}
	out.Result = resp
	if wkey != "" {
		warm.Add(wkey, out.Result)
	}
	return out
}

func (a *api) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if !decodeBody(w, r, &req) {
		return
	}
	resp, err := runBatch(r.Context(), a.cache, a.warm, a.generators, a.batchWorkers, &req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Encode once and publish under the whole-body warm key, so a repeated
	// identical batch replays these bytes without decoding or fan-out.
	enc, err := encodeResponse("/api/v1/batch", resp)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeRawJSON(w, http.StatusOK, enc.body)
	a.storeWarm(r, enc)
}
