package server

import (
	"context"
	"fmt"
	"net/http"
	"runtime"
	"sync"

	"upsim/internal/cache"
	"upsim/internal/core"
)

// MaxBatchItems bounds one POST /api/v1/batch request.
const MaxBatchItems = 256

// Batch operations. An empty op defaults to OpGenerate.
const (
	OpGenerate     = "generate"
	OpAvailability = "availability"
	OpQoS          = "qos"
)

// BatchItem is one generation-backed request inside a batch. The fields
// mirror the single-request routes: every item carries the generate inputs
// (modelXml, diagram, service, mappingXml, name, allowDisconnected); the
// availability knobs (formula1, mcSamples, seed) and the qos knob (maxHops)
// apply only to their respective ops and are ignored otherwise.
type BatchItem struct {
	Op                string `json:"op,omitempty"`
	ModelXML          string `json:"modelXml"`
	Diagram           string `json:"diagram"`
	Service           string `json:"service"`
	MappingXML        string `json:"mappingXml"`
	Name              string `json:"name,omitempty"`
	AllowDisconnected bool   `json:"allowDisconnected,omitempty"`
	Formula1          bool   `json:"formula1,omitempty"`
	MCSamples         int    `json:"mcSamples,omitempty"`
	Seed              int64  `json:"seed,omitempty"`
	LegacyKernel      bool   `json:"legacyKernel,omitempty"`
	MaxHops           int    `json:"maxHops,omitempty"`
}

// BatchRequest is the POST /api/v1/batch body.
type BatchRequest struct {
	// Items are executed concurrently across the worker pool; items with
	// identical generate inputs share one pipeline run through the cache.
	Items []BatchItem `json:"items"`
	// Workers overrides the server's batch pool size for this request
	// (<= 0 keeps the server default).
	Workers int `json:"workers,omitempty"`
}

// BatchResult is the outcome of one item, at the item's index. Exactly one
// of Result and Error is set.
type BatchResult struct {
	Index  int    `json:"index"`
	Op     string `json:"op"`
	Result any    `json:"result,omitempty"`
	Error  string `json:"error,omitempty"`
}

// BatchResponse is the POST /api/v1/batch reply.
type BatchResponse struct {
	Results []BatchResult `json:"results"`
	// Errors counts failed items (the HTTP status stays 200; per-item
	// failures are data, not transport errors).
	Errors int `json:"errors"`
	// Cache snapshots the shared cache after the batch, so a client can see
	// how much of its fan-out was deduplicated.
	Cache cache.Stats `json:"cache"`
}

// RunBatch fans req.Items out across a bounded worker pool, routing every
// pipeline run through the shared cache c: items with identical generate
// inputs compute once (concurrent ones via singleflight) and share the
// Result. Results arrive at their item's index, so output order is
// deterministic regardless of pool size. RunBatch is exported for the
// `upsim batch` subcommand, which executes request files in-process against
// its own cache.
func RunBatch(ctx context.Context, c *cache.Cache, workers int, req *BatchRequest) (*BatchResponse, error) {
	return runBatch(ctx, c, nil, workers, req)
}

// runBatch is RunBatch with an optional generator pool: the HTTP handler
// passes the server's pool so items of the same model reuse one imported
// model space, while the exported entry point builds generators fresh.
func runBatch(ctx context.Context, c *cache.Cache, p *core.GeneratorPool, workers int, req *BatchRequest) (*BatchResponse, error) {
	if len(req.Items) == 0 {
		return nil, fmt.Errorf("batch: items is required")
	}
	if len(req.Items) > MaxBatchItems {
		return nil, fmt.Errorf("batch: %d items exceed the limit of %d", len(req.Items), MaxBatchItems)
	}
	if req.Workers > 0 {
		workers = req.Workers
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(req.Items) {
		workers = len(req.Items)
	}

	results := make([]BatchResult, len(req.Items))
	tasks := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range tasks {
				results[i] = runBatchItem(ctx, c, p, i, &req.Items[i])
			}
		}()
	}
	for i := range req.Items {
		tasks <- i
	}
	close(tasks)
	wg.Wait()

	resp := &BatchResponse{Results: results, Cache: c.Stats()}
	for i := range results {
		if results[i].Error != "" {
			resp.Errors++
		}
	}
	return resp, nil
}

// runBatchItem executes one item. A cancelled ctx fails remaining items fast
// (the pipeline itself also honours ctx).
func runBatchItem(ctx context.Context, c *cache.Cache, p *core.GeneratorPool, i int, it *BatchItem) BatchResult {
	out := BatchResult{Index: i, Op: it.Op}
	if out.Op == "" {
		out.Op = OpGenerate
	}
	if err := ctx.Err(); err != nil {
		out.Error = err.Error()
		return out
	}
	switch out.Op {
	case OpGenerate, OpAvailability, OpQoS:
	default:
		out.Error = fmt.Sprintf("unknown op %q (want %s, %s or %s)", it.Op, OpGenerate, OpAvailability, OpQoS)
		return out
	}
	greq := &generateRequest{
		modelInput:        modelInput{ModelXML: it.ModelXML, Diagram: it.Diagram},
		Service:           it.Service,
		MappingXML:        it.MappingXML,
		Name:              it.Name,
		AllowDisconnected: it.AllowDisconnected,
	}
	res, genKey, err := greq.generate(ctx, c, p)
	if err != nil {
		out.Error = err.Error()
		return out
	}
	switch out.Op {
	case OpGenerate:
		out.Result = buildGenerateResponse(res)
	case OpAvailability:
		resp, err := analyzeAvailability(ctx, c, genKey, res, it.Formula1, it.MCSamples, it.Seed, it.LegacyKernel)
		if err != nil {
			out.Error = err.Error()
			return out
		}
		out.Result = resp.value
	case OpQoS:
		resp, err := analyzeQoS(ctx, c, genKey, res, it.MaxHops)
		if err != nil {
			out.Error = err.Error()
			return out
		}
		out.Result = resp.value
	}
	return out
}

func (a *api) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if !decodeBody(w, r, &req) {
		return
	}
	resp, err := runBatch(r.Context(), a.cache, a.generators, a.batchWorkers, &req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}
