package server

// POST /api/v1/whatif — the HTTP face of the live-topology what-if engine
// (internal/whatif, DESIGN.md §13). The route is stateless like the rest of
// the API: the model and the service registrations travel in the request,
// the engine is assembled per call on top of the shared generation cache
// (so repeated registrations of unchanged services are hash lookups), and
// the response carries per-service availability deltas, targeted cache
// invalidation counts, and the critical-component ranking.

import (
	"fmt"
	"net/http"
	"strings"

	"upsim/internal/depend"
	"upsim/internal/uml"
	"upsim/internal/whatif"
)

// What-if modes: transient failure analysis, permanent topology change, and
// critical-component ranking.
const (
	WhatIfModeFailure  = "failure"
	WhatIfModeApply    = "apply"
	WhatIfModeCritical = "critical"
)

// whatifServiceInput registers one composite service with the engine.
type whatifServiceInput struct {
	// Service names an activity of the model.
	Service string `json:"service"`
	// MappingXML is the Figure 3 mapping document for this service.
	MappingXML string `json:"mappingXml"`
	// Name names the registration (default: the activity name).
	Name string `json:"name,omitempty"`
}

// whatifRequest drives one engine invocation.
type whatifRequest struct {
	modelInput
	// Services lists the composite services to register; each is generated
	// through the shared cache before the engine runs.
	Services []whatifServiceInput `json:"services"`
	// Mode selects the question: "failure" (default; transient), "apply"
	// (permanent change), or "critical" (ranking only).
	Mode string `json:"mode,omitempty"`
	// Failure names the failed components/links for mode "failure".
	Failure whatif.Failure `json:"failure,omitempty"`
	// Deltas lists the topology mutations for mode "apply".
	Deltas []whatif.Delta `json:"deltas,omitempty"`
	// Top bounds the critical-component ranking (0 disables the ranking for
	// modes "failure"/"apply"; mode "critical" defaults to everything).
	Top int `json:"top,omitempty"`
	// CutLimit bounds the per-service attribution's cut-set expansion
	// backing the ranking's importance join; exceeding it yields the
	// structured 422 budget error.
	CutLimit int `json:"cutLimit,omitempty"`
	// Formula1 selects the paper's approximation for component
	// availability.
	Formula1 bool `json:"formula1,omitempty"`
	// CurrentModelXML, when set, is fingerprint-checked against every
	// registration (explain.Validate) before the engine answers: any stale
	// generation fails the request with 409 and self-invalidates its cache
	// entries.
	CurrentModelXML string `json:"currentModelXml,omitempty"`
	// CurrentDiagram names the current topology diagram (defaults to the
	// request diagram name).
	CurrentDiagram string `json:"currentDiagram,omitempty"`
}

// whatifResponse is the 200 body.
type whatifResponse struct {
	Mode string `json:"mode"`
	// Services is the engine's registration view (baselines, staleness).
	Services []whatif.ServiceStatus `json:"services"`
	// Impact is set for mode "failure".
	Impact *whatif.ImpactReport `json:"impact,omitempty"`
	// Apply is set for mode "apply".
	Apply *whatif.ApplyReport `json:"apply,omitempty"`
	// Critical is the ranking (mode "critical", or any mode with top > 0).
	Critical []whatif.CriticalComponent `json:"critical,omitempty"`
	// Validations reports the freshness check when currentModelXml was
	// given (every entry fresh, or the request would have been a 409).
	Validations []whatif.ServiceValidation `json:"validations,omitempty"`
}

// staleGenerationResponse is the 409 body: the topology drifted underneath
// at least one registered generation.
type staleGenerationResponse struct {
	errorResponse
	// Validations carries the per-service freshness verdicts with the
	// concrete drift issues.
	Validations []whatif.ServiceValidation `json:"validations"`
	// InvalidatedKeys counts the cache entries of the stale generations
	// that were evicted (self-invalidation).
	InvalidatedKeys int `json:"invalidatedKeys"`
}

func (a *api) handleWhatIf(w http.ResponseWriter, r *http.Request) {
	var req whatifRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if len(req.Services) == 0 {
		writeError(w, http.StatusBadRequest, "services is required (at least one registration)")
		return
	}
	mode := req.Mode
	if mode == "" {
		mode = WhatIfModeFailure
	}
	model := depend.ModelExact
	if req.Formula1 {
		model = depend.ModelFormula1
	}

	// The engine owns the live topology: one generator load gives the graph
	// the registrations were (re)generated against.
	_, gen, err := req.load(r.Context())
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	eng := whatif.New(gen.Graph(), a.cache)
	for _, s := range req.Services {
		gr := generateRequest{
			modelInput: req.modelInput,
			Service:    s.Service,
			MappingXML: s.MappingXML,
			Name:       s.Name,
		}
		if gr.Name == "" {
			gr.Name = s.Service
		}
		res, genKey, err := gr.generate(r.Context(), a.cache, a.generators)
		if err != nil {
			writeError(w, http.StatusBadRequest, "service %q: %v", s.Service, err)
			return
		}
		if err := eng.Register(gr.Name, genKey, res, model); err != nil {
			writeAnalysisError(w, err)
			return
		}
	}

	resp := whatifResponse{Mode: mode}

	// Freshness gate: against a drifted topology the registered generations
	// are lies; evict them and refuse with the concrete issues.
	if strings.TrimSpace(req.CurrentModelXML) != "" {
		cm, err := uml.Decode(strings.NewReader(req.CurrentModelXML))
		if err != nil {
			writeError(w, http.StatusBadRequest, "current model: %v", err)
			return
		}
		name := req.CurrentDiagram
		if name == "" {
			name = req.Diagram
		}
		d, ok := cm.Diagram(name)
		if !ok {
			writeError(w, http.StatusBadRequest, "current model has no diagram %q", name)
			return
		}
		vals, evicted, err := eng.Revalidate(r.Context(), d)
		if err != nil {
			writeAnalysisError(w, err)
			return
		}
		stale := 0
		for _, v := range vals {
			if !v.Fresh {
				stale++
			}
		}
		if stale > 0 {
			writeJSON(w, http.StatusConflict, staleGenerationResponse{
				errorResponse:   errorResponse{Error: fmtStale(stale, len(vals))},
				Validations:     vals,
				InvalidatedKeys: evicted,
			})
			return
		}
		resp.Validations = vals
	}

	switch mode {
	case WhatIfModeFailure:
		impact, err := eng.Impact(req.Failure)
		if err != nil {
			writeAnalysisError(w, err)
			return
		}
		resp.Impact = impact
	case WhatIfModeApply:
		if len(req.Deltas) == 0 {
			writeError(w, http.StatusBadRequest, "mode %q needs at least one delta", mode)
			return
		}
		rep, err := eng.Apply(req.Deltas...)
		if err != nil {
			writeAnalysisError(w, err)
			return
		}
		resp.Apply = rep
	case WhatIfModeCritical:
		// Ranking handled below for every mode.
	default:
		writeError(w, http.StatusBadRequest, "unknown mode %q (want %q, %q or %q)",
			mode, WhatIfModeFailure, WhatIfModeApply, WhatIfModeCritical)
		return
	}

	if mode == WhatIfModeCritical || req.Top > 0 {
		crit, err := eng.Critical(r.Context(), req.Top, req.CutLimit)
		if err != nil {
			// The importance join expands minimal cut sets under the
			// request's budget: overflow surfaces as the structured 422,
			// never a bare 500.
			writeAnalysisError(w, err)
			return
		}
		resp.Critical = crit
	}

	resp.Services = eng.Services()
	writeJSON(w, http.StatusOK, resp)
}

// fmtStale renders the 409 summary line.
func fmtStale(stale, total int) string {
	return fmt.Sprintf("%d of %d registered generations are stale against the current topology", stale, total)
}
