package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"upsim/internal/casestudy"
)

// postPaths serves one POST /api/v1/paths request against h.
func postPaths(t *testing.T, h http.Handler, req map[string]any) *httptest.ResponseRecorder {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	r := httptest.NewRequest(http.MethodPost, "/api/v1/paths", bytes.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	return w
}

// TestPathsRanked pins the ranked-discovery surface of POST /api/v1/paths:
// k and cost select the budgeted k-best kernel, the response carries the
// per-path cost records in nondecreasing cost order, and the stereotype
// metrics (bottleneck throughput) are joined on.
func TestPathsRanked(t *testing.T) {
	modelXML, _ := warmFixture(t)
	h := New()
	w := postPaths(t, h, map[string]any{
		"modelXml": modelXML,
		"diagram":  casestudy.DiagramName,
		"from":     "t1",
		"to":       "printS",
		"k":        3,
		"cost":     "throughput",
	})
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", w.Code, w.Body.String())
	}
	var resp pathsResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.CostMetric != "throughput" {
		t.Errorf("costMetric = %q, want throughput", resp.CostMetric)
	}
	if len(resp.Ranked) == 0 || len(resp.Ranked) > 3 {
		t.Fatalf("ranked paths = %d, want 1..3", len(resp.Ranked))
	}
	if len(resp.Paths) != len(resp.Ranked) {
		t.Fatalf("paths (%d) and ranked (%d) disagree", len(resp.Paths), len(resp.Ranked))
	}
	for i, rp := range resp.Ranked {
		if rp.Path != resp.Paths[i] {
			t.Errorf("ranked[%d].path = %q, paths[%d] = %q", i, rp.Path, i, resp.Paths[i])
		}
		if rp.Hops <= 0 || rp.Cost <= 0 {
			t.Errorf("ranked[%d] = %+v, want positive hops and cost", i, rp)
		}
		if i > 0 && rp.Cost < resp.Ranked[i-1].Cost {
			t.Errorf("ranked[%d].cost = %v < ranked[%d].cost = %v, want nondecreasing", i, rp.Cost, i-1, resp.Ranked[i-1].Cost)
		}
		// Figure 8 declares throughput on every communication link, so the
		// bottleneck is always resolvable.
		if rp.BottleneckMbps <= 0 {
			t.Errorf("ranked[%d].bottleneckMbps = %v, want > 0", i, rp.BottleneckMbps)
		}
	}

	// The default metric ranks by hop count: the top path is a shortest one.
	w = postPaths(t, h, map[string]any{
		"modelXml": modelXML,
		"diagram":  casestudy.DiagramName,
		"from":     "t1",
		"to":       "printS",
		"k":        1,
	})
	if w.Code != http.StatusOK {
		t.Fatalf("hops status = %d: %s", w.Code, w.Body.String())
	}
	var hops pathsResponse
	if err := json.Unmarshal(w.Body.Bytes(), &hops); err != nil {
		t.Fatal(err)
	}
	if hops.CostMetric != "hops" || len(hops.Ranked) != 1 {
		t.Fatalf("hops response = %+v, want metric hops and one path", hops)
	}
	if hops.Ranked[0].Cost != float64(hops.Ranked[0].Hops) {
		t.Errorf("hop-metric cost = %v, hops = %d; want equal", hops.Ranked[0].Cost, hops.Ranked[0].Hops)
	}

	// An unknown metric is a 400, not a silent default.
	w = postPaths(t, h, map[string]any{
		"modelXml": modelXML,
		"diagram":  casestudy.DiagramName,
		"from":     "t1",
		"to":       "printS",
		"k":        1,
		"cost":     "latency",
	})
	if w.Code != http.StatusBadRequest {
		t.Fatalf("unknown metric status = %d, want 400: %s", w.Code, w.Body.String())
	}
}

// TestPathsGetCaseStudy pins the GET form of /api/v1/paths: the stateless
// server answers against the built-in case-study model via query params.
func TestPathsGetCaseStudy(t *testing.T) {
	h := New()
	get := func(query string) *httptest.ResponseRecorder {
		r := httptest.NewRequest(http.MethodGet, "/api/v1/paths?"+query, nil)
		w := httptest.NewRecorder()
		h.ServeHTTP(w, r)
		return w
	}

	w := get("from=t1&to=printS&k=2&cost=throughput")
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", w.Code, w.Body.String())
	}
	var ranked pathsResponse
	if err := json.Unmarshal(w.Body.Bytes(), &ranked); err != nil {
		t.Fatal(err)
	}
	if len(ranked.Ranked) == 0 || ranked.CostMetric != "throughput" {
		t.Fatalf("ranked GET response = %+v, want ranked throughput paths", ranked)
	}

	// Without k the GET form enumerates, like the POST form.
	w = get("from=t1&to=printS")
	if w.Code != http.StatusOK {
		t.Fatalf("enumeration status = %d: %s", w.Code, w.Body.String())
	}
	var full pathsResponse
	if err := json.Unmarshal(w.Body.Bytes(), &full); err != nil {
		t.Fatal(err)
	}
	if len(full.Ranked) != 0 || full.PathCount == 0 {
		t.Fatalf("enumeration response = %+v, want plain paths", full)
	}
	if full.PathCount < len(ranked.Ranked) {
		t.Errorf("enumeration found %d paths, ranked returned %d", full.PathCount, len(ranked.Ranked))
	}

	for query, want := range map[string]int{
		"to=printS":                      http.StatusBadRequest, // missing from
		"from=t1&to=printS&k=oops":       http.StatusBadRequest,
		"from=t1&to=printS&maxDepth=x":   http.StatusBadRequest,
		"from=nosuch&to=printS":          http.StatusBadRequest,
		"from=t1&to=printS&cost=latency": http.StatusBadRequest,
	} {
		if w := get(query); w.Code != want {
			t.Errorf("GET ?%s = %d, want %d: %s", query, w.Code, want, w.Body.String())
		}
	}
}

// TestPathsKBestBudget422 pins the ranked work-envelope error: exceeding
// the K·V·E budget is a structured 422 with kind "kbest" carrying the
// estimated need, before any search runs.
func TestPathsKBestBudget422(t *testing.T) {
	old := pathsWorkLimit
	pathsWorkLimit = 1
	defer func() { pathsWorkLimit = old }()

	modelXML, _ := warmFixture(t)
	w := postPaths(t, New(), map[string]any{
		"modelXml": modelXML,
		"diagram":  casestudy.DiagramName,
		"from":     "t1",
		"to":       "printS",
		"k":        5,
	})
	if w.Code != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422: %s", w.Code, w.Body.String())
	}
	var resp budgetErrorResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Kind != "kbest" || resp.Limit != 1 || resp.Need <= 1 {
		t.Fatalf("budget shape = %+v, want kind kbest, limit 1, need > 1", resp)
	}
	if resp.AtomicService != "t1→printS" {
		t.Fatalf("atomicService = %q", resp.AtomicService)
	}
}

// TestBatchPathsOp pins the "paths" batch op: discovery items (full and
// ranked) run beside the generation ops, no service or mapping required.
func TestBatchPathsOp(t *testing.T) {
	ts := httptest.NewServer(New())
	defer ts.Close()
	modelXML, _ := fetchArtifacts(t, ts)

	item := func(extra map[string]any) map[string]any {
		it := map[string]any{
			"op":       "paths",
			"modelXml": modelXML,
			"diagram":  casestudy.DiagramName,
			"from":     "t1",
			"to":       "printS",
		}
		for k, v := range extra {
			it[k] = v
		}
		return it
	}
	resp, body := postJSON(t, ts, "/api/v1/batch", map[string]any{
		"items": []map[string]any{
			item(nil),
			item(map[string]any{"k": 2, "cost": "throughput"}),
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var out BatchResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Errors != 0 || len(out.Results) != 2 {
		t.Fatalf("batch = %s", body)
	}
	for i, r := range out.Results {
		if r.Op != OpPaths || r.Result == nil {
			t.Fatalf("result[%d] = %+v, want op paths with payload", i, r)
		}
	}
	// The ranked item's payload carries the per-path cost records.
	rb, err := json.Marshal(out.Results[1].Result)
	if err != nil {
		t.Fatal(err)
	}
	var ranked pathsResponse
	if err := json.Unmarshal(rb, &ranked); err != nil {
		t.Fatal(err)
	}
	if len(ranked.Ranked) == 0 || ranked.CostMetric != "throughput" {
		t.Fatalf("ranked item payload = %s", rb)
	}
}

// TestBatchItemBudgetShape pins that the structured budget detail survives
// batch encoding: a per-item budget overflow carries kind, need and limit
// next to the error string, for both the kbest work envelope and the
// enumeration hard limit.
func TestBatchItemBudgetShape(t *testing.T) {
	oldWork, oldHard := pathsWorkLimit, pathsHardLimit
	pathsWorkLimit, pathsHardLimit = 1, 1
	defer func() { pathsWorkLimit, pathsHardLimit = oldWork, oldHard }()

	ts := httptest.NewServer(New())
	defer ts.Close()
	modelXML, _ := fetchArtifacts(t, ts)

	resp, body := postJSON(t, ts, "/api/v1/batch", map[string]any{
		"items": []map[string]any{
			{"op": "paths", "modelXml": modelXML, "diagram": casestudy.DiagramName,
				"from": "t1", "to": "printS", "k": 5},
			{"op": "paths", "modelXml": modelXML, "diagram": casestudy.DiagramName,
				"from": "t1", "to": "printS"},
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var out BatchResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Errors != 2 || len(out.Results) != 2 {
		t.Fatalf("batch = %s", body)
	}
	wantKinds := []string{"kbest", "paths"}
	for i, r := range out.Results {
		if r.Error == "" {
			t.Fatalf("result[%d] has no error: %+v", i, r)
		}
		if r.Budget == nil {
			t.Fatalf("result[%d] lacks the structured budget detail: %s", i, body)
		}
		if r.Budget.Kind != wantKinds[i] {
			t.Errorf("result[%d].budget.kind = %q, want %q", i, r.Budget.Kind, wantKinds[i])
		}
		if r.Budget.Limit != 1 || r.Budget.Need <= 1 {
			t.Errorf("result[%d].budget = %+v, want limit 1 and need > 1", i, r.Budget)
		}
		if r.Budget.AtomicService != "t1→printS" {
			t.Errorf("result[%d].budget.atomicService = %q", i, r.Budget.AtomicService)
		}
	}
}

// TestPrewarm pins the boot-time pool prewarm: with Config.Prewarm a ready
// case-study generator is parked in the pool before the first request, and
// the first GET /api/v1/paths reuses it instead of building a fresh one
// (the pool's idle count stays flat across the request — a pool miss would
// have grown it).
func TestPrewarm(t *testing.T) {
	xml, err := caseStudyXML()
	if err != nil {
		t.Fatal(err)
	}

	cold := newAPI(Config{})
	if n := cold.generators.IdleLen(xml, casestudy.DiagramName); n != 0 {
		t.Fatalf("cold pool idle = %d, want 0", n)
	}

	a := newAPI(Config{Prewarm: true})
	if n := a.generators.IdleLen(xml, casestudy.DiagramName); n != 1 {
		t.Fatalf("prewarmed pool idle = %d, want 1", n)
	}
	h := a.routes()
	r := httptest.NewRequest(http.MethodGet, "/api/v1/paths?from=t1&to=printS&k=2", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", w.Code, w.Body.String())
	}
	if n := a.generators.IdleLen(xml, casestudy.DiagramName); n != 1 {
		t.Fatalf("pool idle after first request = %d, want 1 (prewarmed generator reused)", n)
	}
}

// TestWarmLaneDedicatedCache pins the warm lane's dedicated LRU: warm
// entries are bounded by Config.WarmSize and never compete with generation
// results for cache slots.
func TestWarmLaneDedicatedCache(t *testing.T) {
	modelXML, mappingXML := warmFixture(t)
	a := newAPI(Config{WarmSize: 2})
	h := a.routes()

	// Three distinct qos bodies: each stores one warm entry; the third
	// evicts the first from the bounded warm lane.
	for _, pad := range []string{"", " ", "  "} {
		body := warmBody(t, "/api/v1/qos", modelXML+pad, mappingXML)
		r := httptest.NewRequest(http.MethodPost, "/api/v1/qos", bytes.NewReader(body))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, r)
		if w.Code != http.StatusOK {
			t.Fatalf("status = %d: %s", w.Code, w.Body.String())
		}
	}
	if n := a.warm.Len(); n != 2 {
		t.Errorf("warm entries = %d, want 2 (bounded by WarmSize)", n)
	}
	if ev := a.warm.Stats().Evictions; ev != 1 {
		t.Errorf("warm evictions = %d, want 1", ev)
	}
	// The generation cache kept every pipeline and analysis entry: warm
	// churn costs it nothing. (The three padded bodies decode to the same
	// model, so semantically there is one generation plus one qos entry —
	// the warm lane's byte-level keys are what distinguish them.)
	if ev := a.cache.Stats().Evictions; ev != 0 {
		t.Errorf("generation cache evictions = %d, want 0", ev)
	}
	if n := a.cache.Len(); n != 2 {
		t.Errorf("generation cache entries = %d, want 2 (generation + qos analysis)", n)
	}
}
