package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"net/http"
	"runtime/debug"
	"time"

	"upsim/internal/obs"
)

// HTTP-layer metrics. The path label is the route pattern, never the raw
// URL, so cardinality stays bounded.
var (
	mRequests = obs.NewCounter("upsim_http_requests_total",
		"HTTP requests served, by method, route and status code.",
		"method", "path", "status")
	mLatency = obs.NewHistogram("upsim_http_request_duration_seconds",
		"HTTP request latency in seconds, by route.",
		obs.LatencyBuckets, "path")
	mInFlight = obs.NewGauge("upsim_http_in_flight",
		"HTTP requests currently being served.")
	mPanics = obs.NewCounter("upsim_http_panics_total",
		"Handler panics recovered by the middleware, by route.", "path")
)

// requestIDKey carries the per-request ID through the context.
type requestIDKey struct{}

// RequestIDHeader is the header the middleware reads an incoming request ID
// from and echoes the effective ID back on.
const RequestIDHeader = "X-Request-Id"

// RequestID returns the request ID injected by the middleware, or "".
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// newRequestID returns a 16-hex-digit random ID.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Entropy exhaustion is not actionable here; a constant ID still
		// lets the request proceed.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// statusWriter captures the status code and response size for metrics and
// request logs.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (w *statusWriter) WriteHeader(status int) {
	if w.status == 0 {
		w.status = status
	}
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += n
	return n, err
}

// instrumentWarm wraps an analysis route with the warm byte-level lane in
// front of the full middleware stack: a repeated request body is answered
// from memoised response bytes before any context, status-writer or
// request-ID allocation happens. The metric children (request counter with
// the fixed POST/200 labels, latency histogram) are resolved once at wrap
// time, so a warm hit performs zero allocations end to end — the contract
// the warm_test.go AllocsPerRun guards pin. Warm misses replay the consumed
// body through the regular instrumented cold path. The in-flight gauge
// deliberately covers only cold requests: a warm hit is sub-microsecond and
// never in flight long enough to observe.
func (a *api) instrumentWarm(route, warmPrefix string, h http.HandlerFunc) http.HandlerFunc {
	warmRequests := mRequests.With(http.MethodPost, route, "200")
	warmLatency := mLatency.With(route)
	warmHits := mWarmHits.With(route)
	cold := instrument(route, h)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		wr := warmPool.Get().(*warmReq)
		if a.tryWarm(wr, warmPrefix, w, r) {
			warmPool.Put(wr)
			warmHits.Inc()
			warmRequests.Inc()
			warmLatency.Observe(time.Since(start).Seconds())
			return
		}
		cold(w, r)
		// The handler is done with the replayed body (storeWarm copied the
		// key); the warmReq can be recycled.
		warmPool.Put(wr)
	}
}

// instrument wraps one route's handler with the observability middleware:
// request-ID injection, in-flight gauge, per-route request counter and
// latency histogram, and panic recovery that logs the stack and returns a
// JSON 500 instead of killing the connection.
func instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(RequestIDHeader)
		if id == "" {
			id = newRequestID()
		}
		w.Header().Set(RequestIDHeader, id)
		r = r.WithContext(context.WithValue(r.Context(), requestIDKey{}, id))

		sw := &statusWriter{ResponseWriter: w}
		mInFlight.With().Inc()
		start := time.Now()
		defer func() {
			elapsed := time.Since(start)
			if rec := recover(); rec != nil {
				mPanics.With(route).Inc()
				obs.Logger().Error("handler panic",
					"route", route,
					"method", r.Method,
					"request_id", id,
					"panic", fmt.Sprint(rec),
					"stack", string(debug.Stack()))
				if sw.status == 0 {
					writeError(sw, http.StatusInternalServerError, "internal server error (request %s)", id)
				}
			}
			mInFlight.With().Dec()
			mRequests.With(r.Method, route, fmt.Sprint(sw.status)).Inc()
			mLatency.With(route).Observe(elapsed.Seconds())
		}()
		h(sw, r)
	}
}

// LoggingMiddleware logs one structured line per request through the
// process-wide obs logger. cmd/upsimd wraps the API handler with it; tests
// and embedders that want quiet handlers simply don't.
func LoggingMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw, ok := w.(*statusWriter)
		if !ok {
			sw = &statusWriter{ResponseWriter: w}
		}
		start := time.Now()
		next.ServeHTTP(sw, r)
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		obs.Logger().Info("request",
			"method", r.Method,
			"path", r.URL.Path,
			"status", status,
			"bytes", sw.bytes,
			"duration", time.Since(start),
			"request_id", sw.Header().Get(RequestIDHeader),
			"remote", r.RemoteAddr)
	})
}
