package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"upsim/internal/casestudy"
	"upsim/internal/depend"
	"upsim/internal/whatif"
)

// usiWhatIfRequest is the printing-service what-if request body shared by
// the route tests.
func usiWhatIfRequest(t *testing.T, ts *httptest.Server) map[string]any {
	t.Helper()
	modelXML, mappingXML := fetchArtifacts(t, ts)
	return map[string]any{
		"modelXml": modelXML,
		"diagram":  casestudy.DiagramName,
		"services": []map[string]any{{
			"service":    casestudy.PrintingServiceName,
			"mappingXml": mappingXML,
			"name":       "printing",
		}},
	}
}

func TestWhatIfFailureEndpoint(t *testing.T) {
	ts := httptest.NewServer(New())
	defer ts.Close()
	req := usiWhatIfRequest(t, ts)
	req["failure"] = map[string]any{"components": []string{"p2"}}
	req["top"] = 10

	resp, body := postJSON(t, ts, "/api/v1/whatif", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("whatif = %d: %s", resp.StatusCode, body)
	}
	var out struct {
		Mode     string                     `json:"mode"`
		Services []whatif.ServiceStatus     `json:"services"`
		Impact   *whatif.ImpactReport       `json:"impact"`
		Critical []whatif.CriticalComponent `json:"critical"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Mode != WhatIfModeFailure {
		t.Errorf("mode = %q", out.Mode)
	}
	if out.Impact == nil || len(out.Impact.Services) != 1 {
		t.Fatalf("impact = %+v", out.Impact)
	}
	d := out.Impact.Services[0]
	if d.Service != "printing" || !d.Affected || d.Failed != 0 || d.Baseline <= 0.98 {
		t.Fatalf("printing delta = %+v", d)
	}
	if d.GenKey == "" {
		t.Error("delta carries no generation key")
	}
	// The ranking rode along (top=10) and names the print server as a
	// single point of failure.
	if len(out.Critical) == 0 || len(out.Critical) > 10 {
		t.Fatalf("critical = %+v", out.Critical)
	}
	spof := map[string]bool{}
	for _, cc := range out.Critical {
		if cc.SinglePointOfFailure {
			spof[cc.Component] = true
		}
	}
	if !spof["printS"] {
		t.Errorf("printS not a single point of failure in %+v", out.Critical)
	}
	if len(out.Services) != 1 || out.Services[0].Stale {
		t.Fatalf("services = %+v", out.Services)
	}
}

// TestWhatIfApplyEndpoint drives a permanent removal end to end: the
// provider vanishes, the service is reported dead, and the generation's
// cache family — populated by the registration itself — is evicted.
func TestWhatIfApplyEndpoint(t *testing.T) {
	ts := httptest.NewServer(New())
	defer ts.Close()
	req := usiWhatIfRequest(t, ts)
	req["mode"] = "apply"
	req["deltas"] = []map[string]any{{"op": "remove-node", "node": "p2"}}

	resp, body := postJSON(t, ts, "/api/v1/whatif", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("whatif apply = %d: %s", resp.StatusCode, body)
	}
	var out struct {
		Apply *whatif.ApplyReport `json:"apply"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Apply == nil || out.Apply.PatchOps == 0 {
		t.Fatalf("apply report = %+v", out.Apply)
	}
	if len(out.Apply.AffectedGenerations) != 1 {
		t.Fatalf("affected generations = %v", out.Apply.AffectedGenerations)
	}
	// Registering through the shared cache stored the generation under its
	// content hash; the apply must have evicted at least that entry.
	if out.Apply.InvalidatedKeys == 0 {
		t.Fatal("apply evicted nothing despite a cached registration")
	}
	d := out.Apply.Services[0]
	if !d.Dead || d.Failed != 0 {
		t.Fatalf("printing after provider removal = %+v", d)
	}

	if _, err := json.Marshal(out.Apply); err != nil {
		t.Fatal(err)
	}
}

// TestWhatIfStale409 pins the freshness gate: against a current topology
// missing a component the generation uses, the route answers 409 with the
// concrete drift issues and self-invalidates the stale cache entries.
func TestWhatIfStale409(t *testing.T) {
	ts := httptest.NewServer(New())
	defer ts.Close()
	req := usiWhatIfRequest(t, ts)
	req["failure"] = map[string]any{"components": []string{"p2"}}

	// Identical current topology: fresh, and the validations ride along.
	req["currentModelXml"] = req["modelXml"]
	resp, body := postJSON(t, ts, "/api/v1/whatif", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fresh whatif = %d: %s", resp.StatusCode, body)
	}
	var fresh struct {
		Validations []whatif.ServiceValidation `json:"validations"`
	}
	if err := json.Unmarshal(body, &fresh); err != nil {
		t.Fatal(err)
	}
	if len(fresh.Validations) != 1 || !fresh.Validations[0].Fresh {
		t.Fatalf("validations = %+v", fresh.Validations)
	}

	// Drop the print server's edge switch from the current topology: every
	// printing path is broken, the generation is a lie, the request fails.
	cur := &bytes.Buffer{}
	for _, line := range bytes.Split([]byte(req["modelXml"].(string)), []byte("\n")) {
		if bytes.Contains(line, []byte(`"d4"`)) {
			continue
		}
		cur.Write(line)
		cur.WriteByte('\n')
	}
	req["currentModelXml"] = cur.String()
	resp, body = postJSON(t, ts, "/api/v1/whatif", req)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("stale whatif = %d, want 409: %s", resp.StatusCode, body)
	}
	var out struct {
		Error           string                     `json:"error"`
		Validations     []whatif.ServiceValidation `json:"validations"`
		InvalidatedKeys int                        `json:"invalidatedKeys"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Error == "" || len(out.Validations) != 1 || out.Validations[0].Fresh {
		t.Fatalf("409 body = %+v", out)
	}
	found := false
	for _, is := range out.Validations[0].Issues {
		if is.Subject == "d4" {
			found = true
		}
	}
	if !found {
		t.Errorf("no issue for the removed d4: %+v", out.Validations[0].Issues)
	}
	if out.InvalidatedKeys == 0 {
		t.Error("stale generation kept its cache entries")
	}
}

// TestWhatIfBudget422 pins the structured budget error through the what-if
// surface: the critical ranking's importance join expands cut sets under
// the request budget, and overflow is the depend.BudgetError 422 — never a
// bare 500.
func TestWhatIfBudget422(t *testing.T) {
	ts := httptest.NewServer(New())
	defer ts.Close()
	req := usiWhatIfRequest(t, ts)
	req["mode"] = "critical"
	req["cutLimit"] = 1

	resp, body := postJSON(t, ts, "/api/v1/whatif", req)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("whatif critical cutLimit=1 = %d: %s", resp.StatusCode, body)
	}
	var out struct {
		Error         string `json:"error"`
		Kind          string `json:"kind"`
		AtomicService string `json:"atomicService"`
		Limit         int    `json:"limit"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Kind != string(depend.BudgetTransversal) || out.Limit != 1 || out.Error == "" {
		t.Fatalf("budget 422 = %+v", out)
	}
}

func TestWhatIfBadRequests(t *testing.T) {
	ts := httptest.NewServer(New())
	defer ts.Close()

	base := usiWhatIfRequest(t, ts)

	noServices := map[string]any{"modelXml": base["modelXml"], "diagram": base["diagram"]}
	if resp, body := postJSON(t, ts, "/api/v1/whatif", noServices); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("no services = %d: %s", resp.StatusCode, body)
	}

	badMode := usiWhatIfRequest(t, ts)
	badMode["mode"] = "demolish"
	if resp, body := postJSON(t, ts, "/api/v1/whatif", badMode); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad mode = %d: %s", resp.StatusCode, body)
	}

	noDeltas := usiWhatIfRequest(t, ts)
	noDeltas["mode"] = "apply"
	if resp, body := postJSON(t, ts, "/api/v1/whatif", noDeltas); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("apply without deltas = %d: %s", resp.StatusCode, body)
	}

	emptyFailure := usiWhatIfRequest(t, ts)
	if resp, body := postJSON(t, ts, "/api/v1/whatif", emptyFailure); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("empty failure = %d: %s", resp.StatusCode, body)
	}
}
