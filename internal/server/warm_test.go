package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"upsim/internal/casestudy"
	"upsim/internal/testutil"
	"upsim/internal/uml"
)

// warmFixture returns the case-study model XML and Table I mapping XML
// without going through HTTP.
func warmFixture(t *testing.T) (modelXML, mappingXML string) {
	t.Helper()
	m, err := casestudy.BuildModel()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := casestudy.PrintingService(m); err != nil {
		t.Fatal(err)
	}
	var mb strings.Builder
	if err := uml.Encode(&mb, m); err != nil {
		t.Fatal(err)
	}
	var pb bytes.Buffer
	if err := casestudy.TableIMapping().Encode(&pb); err != nil {
		t.Fatal(err)
	}
	return mb.String(), pb.String()
}

// warmBody marshals one analysis request body for the given route. For the
// batch route the request is wrapped as a single-item batch.
func warmBody(t *testing.T, route, modelXML, mappingXML string) []byte {
	t.Helper()
	req := map[string]any{
		"modelXml":   modelXML,
		"diagram":    casestudy.DiagramName,
		"service":    casestudy.PrintingServiceName,
		"mappingXml": mappingXML,
	}
	if route == "/api/v1/availability" {
		req["mcSamples"] = 2000
	}
	var payload any = req
	if route == "/api/v1/batch" {
		req["op"] = OpQoS
		payload = map[string]any{"items": []map[string]any{req}}
	}
	b, err := json.Marshal(payload)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// replayableBody is a resettable io.ReadCloser so one http.Request can be
// served repeatedly without per-iteration allocation.
type replayableBody struct{ r bytes.Reader }

func (b *replayableBody) Read(p []byte) (int, error) { return b.r.Read(p) }
func (b *replayableBody) Close() error               { return nil }

// nullResponseWriter discards the response body while keeping a persistent
// header map, so repeated serves reuse every byte of writer state.
type nullResponseWriter struct {
	h      http.Header
	status int
	bytes  int
}

func (w *nullResponseWriter) Header() http.Header { return w.h }
func (w *nullResponseWriter) WriteHeader(s int)   { w.status = s }
func (w *nullResponseWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	w.bytes += len(p)
	return len(p), nil
}

// TestWarmLaneReplaysIdenticalBytes pins the functional contract: a repeated
// analysis request is answered byte-identically by the warm lane, for every
// warm route.
func TestWarmLaneReplaysIdenticalBytes(t *testing.T) {
	modelXML, mappingXML := warmFixture(t)
	h := New()
	for _, route := range []string{"/api/v1/availability", "/api/v1/qos", "/api/v1/explain", "/api/v1/batch"} {
		t.Run(route, func(t *testing.T) {
			body := warmBody(t, route, modelXML, mappingXML)
			serve := func() *httptest.ResponseRecorder {
				r := httptest.NewRequest(http.MethodPost, route, bytes.NewReader(body))
				w := httptest.NewRecorder()
				h.ServeHTTP(w, r)
				return w
			}
			cold := serve()
			if cold.Code != http.StatusOK {
				t.Fatalf("cold %s = %d: %s", route, cold.Code, cold.Body.String())
			}
			hits := mWarmHits.With(route).Value()
			warm := serve()
			if warm.Code != http.StatusOK {
				t.Fatalf("warm %s = %d: %s", route, warm.Code, warm.Body.String())
			}
			if !bytes.Equal(cold.Body.Bytes(), warm.Body.Bytes()) {
				t.Fatal("warm replay differs from the cold response")
			}
			if got := mWarmHits.With(route).Value(); got != hits+1 {
				t.Fatalf("warm hit counter went %d -> %d, want +1", hits, got)
			}
		})
	}
}

// TestWarmHitZeroAllocs is the tentpole guard: once a route is warm, a
// repeated request performs zero heap allocations from route match to
// cached-bytes write.
func TestWarmHitZeroAllocs(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("race instrumentation allocates; the guard asserts exact counts")
	}
	modelXML, mappingXML := warmFixture(t)
	h := New()
	for _, route := range []string{"/api/v1/availability", "/api/v1/qos", "/api/v1/explain", "/api/v1/batch"} {
		t.Run(route, func(t *testing.T) {
			payload := warmBody(t, route, modelXML, mappingXML)
			body := &replayableBody{}
			r := httptest.NewRequest(http.MethodPost, route, nil)
			r.Header.Set(RequestIDHeader, "warm-guard")
			w := &nullResponseWriter{h: make(http.Header)}
			serve := func() {
				body.r.Reset(payload)
				r.Body = body
				h.ServeHTTP(w, r)
			}
			serve() // cold: compute and store
			if w.status != http.StatusOK {
				t.Fatalf("cold status = %d", w.status)
			}
			w.status = 0
			serve() // warm once more so every pool and header bucket exists
			allocs := testing.AllocsPerRun(100, serve)
			if allocs != 0 {
				t.Fatalf("warm %s hit allocates %.1f objects per run, want 0", route, allocs)
			}
			if w.bytes == 0 {
				t.Fatal("warm lane wrote no response bytes")
			}
		})
	}
}

// TestWarmLaneConcurrent hammers one warm route from many goroutines with
// two distinct bodies, so pooled warmReqs, the generator pool and the cache
// run under the race detector.
func TestWarmLaneConcurrent(t *testing.T) {
	modelXML, mappingXML := warmFixture(t)
	h := New()
	const route = "/api/v1/qos"
	bodies := [][]byte{
		warmBody(t, route, modelXML, mappingXML),
		warmBody(t, route, modelXML+" ", mappingXML), // distinct bytes, same semantics
	}
	var wg sync.WaitGroup
	errc := make(chan string, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				r := httptest.NewRequest(http.MethodPost, route, bytes.NewReader(bodies[(g+i)%2]))
				w := httptest.NewRecorder()
				h.ServeHTTP(w, r)
				if w.Code != http.StatusOK {
					errc <- w.Body.String()
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for msg := range errc {
		t.Fatalf("concurrent warm request failed: %s", msg)
	}
}

// TestPathsHardLimit422 pins the structured hard-limit error of
// /api/v1/paths: exceeding the enumeration bound is a 422 carrying the
// budget-error shape, not a bare 500 (or an unbounded search).
func TestPathsHardLimit422(t *testing.T) {
	old := pathsHardLimit
	pathsHardLimit = 1
	defer func() { pathsHardLimit = old }()

	modelXML, _ := warmFixture(t)
	h := New()
	body, err := json.Marshal(map[string]any{
		"modelXml": modelXML,
		"diagram":  casestudy.DiagramName,
		"from":     "t1",
		"to":       "printS",
	})
	if err != nil {
		t.Fatal(err)
	}
	r := httptest.NewRequest(http.MethodPost, "/api/v1/paths", bytes.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	if w.Code != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422: %s", w.Code, w.Body.String())
	}
	var resp budgetErrorResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decoding 422 body: %v", err)
	}
	if resp.Kind != "paths" || resp.Limit != 1 || resp.Need != 2 {
		t.Fatalf("budget shape = %+v", resp)
	}
	if resp.AtomicService != "t1→printS" {
		t.Fatalf("atomicService = %q", resp.AtomicService)
	}
	if resp.Error == "" {
		t.Fatal("422 body lacks the error message")
	}
}
