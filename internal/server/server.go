// Package server exposes the UPSIM pipeline over HTTP as a small JSON API,
// turning the library into the kind of network-management service the paper
// targets ("Service networks; Service network management"): operations teams
// can POST a model, a service and a mapping and get back the user-perceived
// infrastructure and its availability for any (requester, provider) pair.
//
// Endpoints (all stateless; models travel in the request):
//
//	GET  /healthz                      liveness probe
//	GET  /metrics                      Prometheus text exposition (internal/obs)
//	GET  /debug/vars                   expvar JSON, including the obs snapshot
//	GET  /api/v1/casestudy/model       built-in USI model (XML)
//	GET  /api/v1/casestudy/mapping     built-in Table I mapping (XML)
//	POST /api/v1/paths                 all simple paths between two components
//	POST /api/v1/generate              generate a UPSIM
//	POST /api/v1/availability          generate + Section VII analysis
//	POST /api/v1/qos                   performability + responsiveness
//	POST /api/v1/lint                  static-analysis report for model, service and mapping
//
// Every API route runs behind the observability middleware (request-ID
// injection, request counter, per-route latency histogram, in-flight gauge,
// panic recovery → JSON 500); see middleware.go.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"strings"
	"sync"

	"upsim/internal/casestudy"
	"upsim/internal/core"
	"upsim/internal/depend"
	"upsim/internal/lint"
	"upsim/internal/mapping"
	"upsim/internal/obs"
	"upsim/internal/pathdisc"
	"upsim/internal/service"
	"upsim/internal/uml"
)

// MaxRequestBytes bounds request bodies (models are small; 8 MiB is
// generous).
const MaxRequestBytes = 8 << 20

// publishOnce guards the process-wide expvar registration (expvar panics on
// duplicate names; New may be called per test).
var publishOnce sync.Once

// New returns the HTTP handler serving the API.
func New() http.Handler {
	publishOnce.Do(func() {
		expvar.Publish("upsim", expvar.Func(func() any {
			return obs.DefaultRegistry().Snapshot()
		}))
	})
	mux := http.NewServeMux()
	handle := func(pattern, route string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, instrument(route, h))
	}
	handle("GET /healthz", "/healthz", handleHealth)
	handle("GET /api/v1/casestudy/model", "/api/v1/casestudy/model", handleCaseStudyModel)
	handle("GET /api/v1/casestudy/mapping", "/api/v1/casestudy/mapping", handleCaseStudyMapping)
	handle("POST /api/v1/paths", "/api/v1/paths", handlePaths)
	handle("POST /api/v1/generate", "/api/v1/generate", handleGenerate)
	handle("POST /api/v1/availability", "/api/v1/availability", handleAvailability)
	handle("POST /api/v1/qos", "/api/v1/qos", handleQoS)
	handle("POST /api/v1/lint", "/api/v1/lint", handleLint)
	mux.Handle("GET /metrics", obs.Handler())
	mux.Handle("GET /debug/vars", expvar.Handler())
	return mux
}

// errorResponse is the uniform error body.
type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "invalid request body: %v", err)
		return false
	}
	return true
}

func handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func handleCaseStudyModel(w http.ResponseWriter, _ *http.Request) {
	m, err := casestudy.BuildModel()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "building case study: %v", err)
		return
	}
	if _, err := casestudy.PrintingService(m); err != nil {
		writeError(w, http.StatusInternalServerError, "building printing service: %v", err)
		return
	}
	var buf bytes.Buffer
	if err := uml.Encode(&buf, m); err != nil {
		writeError(w, http.StatusInternalServerError, "encoding model: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/xml")
	_, _ = w.Write(buf.Bytes())
}

func handleCaseStudyMapping(w http.ResponseWriter, _ *http.Request) {
	var buf bytes.Buffer
	if err := casestudy.TableIMapping().Encode(&buf); err != nil {
		writeError(w, http.StatusInternalServerError, "encoding mapping: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/xml")
	_, _ = w.Write(buf.Bytes())
}

// modelInput is the common request fragment carrying the UML model.
type modelInput struct {
	// ModelXML is the model in the library's XML dialect.
	ModelXML string `json:"modelXml"`
	// Diagram names the infrastructure object diagram.
	Diagram string `json:"diagram"`
}

func (in *modelInput) load(ctx context.Context) (*uml.Model, *core.Generator, error) {
	if strings.TrimSpace(in.ModelXML) == "" {
		return nil, nil, fmt.Errorf("modelXml is required")
	}
	if in.Diagram == "" {
		return nil, nil, fmt.Errorf("diagram is required")
	}
	m, err := uml.Decode(strings.NewReader(in.ModelXML))
	if err != nil {
		return nil, nil, err
	}
	gen, err := core.NewGeneratorContext(ctx, m, in.Diagram)
	if err != nil {
		return nil, nil, err
	}
	return m, gen, nil
}

// pathsRequest asks for all simple paths between two components.
type pathsRequest struct {
	modelInput
	From     string `json:"from"`
	To       string `json:"to"`
	MaxDepth int    `json:"maxDepth,omitempty"`
	MaxPaths int    `json:"maxPaths,omitempty"`
}

// pathsResponse returns the enumeration together with the full discovery
// instrumentation (the Stats the seed silently dropped).
type pathsResponse struct {
	Paths        []string `json:"paths"`
	PathCount    int      `json:"pathCount"`
	EdgeVisits   int      `json:"edgeVisits"`
	NodesVisited int      `json:"nodesVisited"`
	MaxStack     int      `json:"maxStack"`
	Truncated    bool     `json:"truncated"`
}

func handlePaths(w http.ResponseWriter, r *http.Request) {
	var req pathsRequest
	if !decodeBody(w, r, &req) {
		return
	}
	_, gen, err := req.load(r.Context())
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	paths, stats, err := pathdisc.AllPaths(gen.Graph(), req.From, req.To,
		pathdisc.Options{MaxDepth: req.MaxDepth, MaxPaths: req.MaxPaths})
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	resp := pathsResponse{
		PathCount:    stats.Paths,
		EdgeVisits:   stats.EdgeVisits,
		NodesVisited: stats.NodeVisits,
		MaxStack:     stats.MaxStack,
		Truncated:    stats.Truncated,
	}
	for _, p := range paths {
		resp.Paths = append(resp.Paths, p.String())
	}
	writeJSON(w, http.StatusOK, resp)
}

// generateRequest asks for a UPSIM.
type generateRequest struct {
	modelInput
	// Service names an activity of the model.
	Service string `json:"service"`
	// MappingXML is the Figure 3 mapping document.
	MappingXML string `json:"mappingXml"`
	// Name names the generated UPSIM (default "upsim").
	Name string `json:"name,omitempty"`
	// AllowDisconnected tolerates unreachable pairs.
	AllowDisconnected bool `json:"allowDisconnected,omitempty"`
}

func (req *generateRequest) generate(ctx context.Context) (*core.Result, error) {
	_, gen, err := req.load(ctx)
	if err != nil {
		return nil, err
	}
	m := gen.Model()
	act, ok := m.Activity(req.Service)
	if !ok {
		return nil, fmt.Errorf("model has no activity %q", req.Service)
	}
	svc, err := service.FromActivity(act)
	if err != nil {
		return nil, err
	}
	mp, err := mapping.Parse(strings.NewReader(req.MappingXML))
	if err != nil {
		return nil, err
	}
	name := req.Name
	if name == "" {
		name = "upsim"
	}
	return gen.GenerateContext(ctx, svc, mp, name, core.Options{AllowDisconnected: req.AllowDisconnected})
}

// linkJSON is one UPSIM link.
type linkJSON struct {
	A           string `json:"a"`
	B           string `json:"b"`
	Association string `json:"association"`
}

// serviceStatsJSON is the Step 7 instrumentation for one atomic service.
type serviceStatsJSON struct {
	AtomicService string `json:"atomicService"`
	Requester     string `json:"requester"`
	Provider      string `json:"provider"`
	Paths         int    `json:"paths"`
	EdgeVisits    int    `json:"edgeVisits"`
	NodesVisited  int    `json:"nodesVisited"`
	MaxStack      int    `json:"maxStack"`
	Truncated     bool   `json:"truncated"`
}

// generateResponse returns the UPSIM plus the per-service discovery stats.
type generateResponse struct {
	Name       string              `json:"name"`
	Nodes      []string            `json:"nodes"`
	Links      []linkJSON          `json:"links"`
	Paths      map[string][]string `json:"pathsByService"`
	TotalPaths int                 `json:"totalPaths"`
	EdgeVisits int                 `json:"edgeVisits"`
	Services   []serviceStatsJSON  `json:"serviceStats"`
}

func handleGenerate(w http.ResponseWriter, r *http.Request) {
	var req generateRequest
	if !decodeBody(w, r, &req) {
		return
	}
	res, err := req.generate(r.Context())
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	resp := generateResponse{
		Name:       res.Name,
		Nodes:      res.NodeNames(),
		Paths:      make(map[string][]string, len(res.Services)),
		TotalPaths: res.TotalPaths,
		EdgeVisits: res.EdgeVisits,
	}
	for _, l := range res.UPSIM.Links() {
		a, b := l.Ends()
		resp.Links = append(resp.Links, linkJSON{A: a.Name(), B: b.Name(), Association: l.Association().Name()})
	}
	for _, sp := range res.Services {
		var ps []string
		for _, p := range sp.Paths {
			ps = append(ps, p.String())
		}
		resp.Paths[sp.AtomicService] = ps
		resp.Services = append(resp.Services, serviceStatsJSON{
			AtomicService: sp.AtomicService,
			Requester:     sp.Requester,
			Provider:      sp.Provider,
			Paths:         sp.Stats.Paths,
			EdgeVisits:    sp.Stats.EdgeVisits,
			NodesVisited:  sp.Stats.NodeVisits,
			MaxStack:      sp.Stats.MaxStack,
			Truncated:     sp.Stats.Truncated,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// availabilityRequest asks for the Section VII analysis.
type availabilityRequest struct {
	generateRequest
	// Formula1 selects the paper's approximation for component
	// availability.
	Formula1 bool `json:"formula1,omitempty"`
	// MCSamples sets the Monte-Carlo sample count (default 100000).
	MCSamples int `json:"mcSamples,omitempty"`
	// Seed sets the Monte-Carlo seed (default 1).
	Seed int64 `json:"seed,omitempty"`
}

// availabilityResponse returns the analysis report.
type availabilityResponse struct {
	Exact                float64 `json:"exact"`
	RBDApprox            float64 `json:"rbdApprox"`
	FTApprox             float64 `json:"ftApprox"`
	MonteCarlo           float64 `json:"monteCarlo"`
	MCStdErr             float64 `json:"mcStdErr"`
	DowntimePerYearHours float64 `json:"downtimePerYearHours"`
	Components           int     `json:"components"`
}

// qosRequest asks for the performability/responsiveness analysis.
type qosRequest struct {
	generateRequest
	// MaxHops is the responsiveness hop budget (default 8).
	MaxHops int `json:"maxHops,omitempty"`
}

// qosResponse returns both QoS properties.
type qosResponse struct {
	ThroughputMbps    float64 `json:"throughputMbps"`
	MaxHops           int     `json:"maxHops"`
	Responsiveness    float64 `json:"responsiveness"`
	Availability      float64 `json:"availability"`
	PathsWithinBudget int     `json:"pathsWithinBudget"`
	PathsTotal        int     `json:"pathsTotal"`
}

func handleQoS(w http.ResponseWriter, r *http.Request) {
	var req qosRequest
	if !decodeBody(w, r, &req) {
		return
	}
	res, err := req.generate(r.Context())
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	tp, err := depend.Throughput(res)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	hops := req.MaxHops
	if hops <= 0 {
		hops = 8
	}
	rr, err := depend.Responsiveness(res, depend.ModelExact, hops)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, qosResponse{
		ThroughputMbps:    tp.Service,
		MaxHops:           rr.MaxHops,
		Responsiveness:    rr.Responsiveness,
		Availability:      rr.Availability,
		PathsWithinBudget: rr.PathsWithinBudget,
		PathsTotal:        rr.PathsTotal,
	})
}

// lintRequest asks for a static-analysis report. Unlike the pipeline routes
// it does not reuse modelInput.load: that path pre-validates the model inside
// NewGeneratorContext and would reject exactly the broken models the linter
// exists to report on. Only modelXml is required; diagram, service and
// mappingXml widen the rule coverage when present.
type lintRequest struct {
	// ModelXML is the model in the library's XML dialect (required).
	ModelXML string `json:"modelXml"`
	// Diagram names the infrastructure object diagram (optional: omit for a
	// model-only lint).
	Diagram string `json:"diagram,omitempty"`
	// Service names an activity of the model (optional).
	Service string `json:"service,omitempty"`
	// MappingXML is the Figure 3 mapping document (optional).
	MappingXML string `json:"mappingXml,omitempty"`
}

// lintResponse wraps the report with the service resolution note (set when
// the named activity exists but cannot be wrapped as a composite service, in
// which case the mapping-coverage rules were skipped).
type lintResponse struct {
	lint.Report
	ServiceError string `json:"serviceError,omitempty"`
}

func handleLint(w http.ResponseWriter, r *http.Request) {
	var req lintRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if strings.TrimSpace(req.ModelXML) == "" {
		writeError(w, http.StatusBadRequest, "modelXml is required")
		return
	}
	m, err := uml.Decode(strings.NewReader(req.ModelXML))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	resp := lintResponse{}
	var svc *service.Composite
	if req.Service != "" {
		act, ok := m.Activity(req.Service)
		if !ok {
			writeError(w, http.StatusBadRequest, "model has no activity %q", req.Service)
			return
		}
		if svc, err = service.FromActivity(act); err != nil {
			resp.ServiceError = err.Error()
			svc = nil
		}
	}
	var mp *mapping.Mapping
	if strings.TrimSpace(req.MappingXML) != "" {
		if mp, err = mapping.Parse(strings.NewReader(req.MappingXML)); err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	in, err := lint.NewInput(m, req.Diagram, svc, mp)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	rep, err := lint.Default().Run(in)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	resp.Report = *rep
	writeJSON(w, http.StatusOK, resp)
}

func handleAvailability(w http.ResponseWriter, r *http.Request) {
	var req availabilityRequest
	if !decodeBody(w, r, &req) {
		return
	}
	res, err := req.generate(r.Context())
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	model := depend.ModelExact
	if req.Formula1 {
		model = depend.ModelFormula1
	}
	samples := req.MCSamples
	if samples <= 0 {
		samples = 100000
	}
	seed := req.Seed
	if seed == 0 {
		seed = 1
	}
	rep, err := depend.AnalyzeContext(r.Context(), res, model, samples, seed)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, availabilityResponse{
		Exact:                rep.Exact,
		RBDApprox:            rep.RBDApprox,
		FTApprox:             rep.FTApprox,
		MonteCarlo:           rep.MonteCarlo,
		MCStdErr:             rep.MCStdErr,
		DowntimePerYearHours: rep.DowntimePerYearHours,
		Components:           rep.Components,
	})
}
