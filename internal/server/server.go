// Package server exposes the UPSIM pipeline over HTTP as a small JSON API,
// turning the library into the kind of network-management service the paper
// targets ("Service networks; Service network management"): operations teams
// can POST a model, a service and a mapping and get back the user-perceived
// infrastructure and its availability for any (requester, provider) pair.
//
// Endpoints (models travel in the request; the only server-side state is a
// content-addressed cache of derived results, so any replica can serve any
// request):
//
//	GET  /healthz                      liveness probe
//	GET  /metrics                      Prometheus text exposition (internal/obs)
//	GET  /debug/vars                   expvar JSON, including the obs snapshot
//	GET  /api/v1/casestudy/model       built-in USI model (XML)
//	GET  /api/v1/casestudy/mapping     built-in Table I mapping (XML)
//	GET  /api/v1/paths                 paths through the built-in case-study model
//	POST /api/v1/paths                 all simple paths — or the k cheapest under a
//	                                   cost metric — between two components
//	POST /api/v1/generate              generate a UPSIM
//	POST /api/v1/availability          generate + Section VII analysis
//	POST /api/v1/qos                   performability + responsiveness
//	POST /api/v1/explain               provenance & attribution report (mode
//	                                   "validate" checks a generation against a
//	                                   current topology instead)
//	POST /api/v1/lint                  static-analysis report for model, service and mapping
//	POST /api/v1/batch                 many generate/availability/qos/paths items,
//	                                   fanned out across a worker pool through the
//	                                   shared cache
//	POST /api/v1/whatif                live-topology what-if: failure impact, permanent
//	                                   topology deltas with targeted cache invalidation,
//	                                   critical-component ranking (internal/whatif)
//
// This table is mirrored in README.md ("HTTP API") and fully specified in
// docs/API.md; update all of them together.
//
// The generation-backed routes (generate, availability, qos, batch) run
// through one shared internal/cache.Cache (capacity Config.CacheSize):
// repeated identical requests skip Steps 6–8 entirely and concurrent
// identical requests compute once (singleflight). Cache traffic is visible
// on GET /metrics as upsim_cache_{hits,misses,evictions,singleflight_shared}_total.
//
// Every API route runs behind the observability middleware (request-ID
// injection, request counter, per-route latency histogram, in-flight gauge,
// panic recovery → JSON 500); see middleware.go.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"upsim/internal/cache"
	"upsim/internal/casestudy"
	"upsim/internal/core"
	"upsim/internal/depend"
	"upsim/internal/explain"
	"upsim/internal/lint"
	"upsim/internal/mapping"
	"upsim/internal/obs"
	"upsim/internal/pathdisc"
	"upsim/internal/service"
	"upsim/internal/uml"
)

// MaxRequestBytes bounds request bodies (models are small; 8 MiB is
// generous).
const MaxRequestBytes = 8 << 20

// publishOnce guards the process-wide expvar registration (expvar panics on
// duplicate names; New may be called per test).
var publishOnce sync.Once

// Config tunes the handler. The zero value is ready to use.
type Config struct {
	// CacheSize bounds the shared generation cache (entries); <= 0 selects
	// cache.DefaultMaxEntries.
	CacheSize int
	// BatchWorkers bounds the per-request fan-out of POST /api/v1/batch;
	// <= 0 selects runtime.GOMAXPROCS(0). A request's own "workers" field
	// overrides it.
	BatchWorkers int
	// WarmSize bounds the dedicated warm-lane response cache (entries);
	// <= 0 selects cache.DefaultMaxEntries. The warm lane used to share the
	// generation cache; a dedicated bound keeps a flood of distinct request
	// bodies from evicting generation results (and vice versa).
	WarmSize int
	// Prewarm builds a generator for the built-in case-study model at
	// construction time and parks it in the pool, so the first request
	// referencing that model (GET /api/v1/paths always does) skips XML
	// decode, VPM import and CSR compilation.
	Prewarm bool
}

// api is the per-handler shared state: the content-addressed result cache
// every generation-backed route runs through, the dedicated warm-lane
// response cache, the generator pool that recycles imported model spaces
// across requests of the same model, and the batch pool bound.
type api struct {
	cache        *cache.Cache
	warm         *cache.Cache
	generators   *core.GeneratorPool
	batchWorkers int
}

// New returns the HTTP handler serving the API with the default Config.
func New() http.Handler { return NewWithConfig(Config{}) }

// newAPI builds the shared handler state (split from NewWithConfig so tests
// can reach the pool and the warm cache directly).
func newAPI(cfg Config) *api {
	c := cache.New(cfg.CacheSize)
	a := &api{
		cache:        c,
		warm:         cache.New(cfg.WarmSize),
		generators:   core.NewGeneratorPool(c, 0, 0),
		batchWorkers: cfg.BatchWorkers,
	}
	mWarmCapacity.With().Set(int64(a.warm.Stats().MaxEntries))
	if cfg.Prewarm {
		a.prewarm()
	}
	return a
}

// prewarm parks a ready generator for the built-in case-study model in the
// pool. Failures are ignored: prewarming is an optimisation, and the model
// is built from source so it cannot actually fail.
func (a *api) prewarm() {
	xml, err := caseStudyXML()
	if err != nil {
		return
	}
	g, err := a.generators.Acquire(context.Background(), xml, casestudy.DiagramName)
	if err != nil {
		return
	}
	a.generators.Release(g)
}

// NewWithConfig returns the HTTP handler serving the API.
func NewWithConfig(cfg Config) http.Handler {
	publishOnce.Do(func() {
		expvar.Publish("upsim", expvar.Func(func() any {
			return obs.DefaultRegistry().Snapshot()
		}))
	})
	return newAPI(cfg).routes()
}

// routes assembles the mux over the shared state.
func (a *api) routes() http.Handler {
	mux := http.NewServeMux()
	handle := func(pattern, route string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, instrument(route, h))
	}
	// The analysis routes additionally run the warm byte-level lane (see
	// warm.go): a repeated body is answered from memoised response bytes
	// without JSON decoding, generation or allocation.
	warm := func(pattern, route, prefix string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, a.instrumentWarm(route, prefix, h))
	}
	handle("GET /healthz", "/healthz", handleHealth)
	handle("GET /api/v1/casestudy/model", "/api/v1/casestudy/model", handleCaseStudyModel)
	handle("GET /api/v1/casestudy/mapping", "/api/v1/casestudy/mapping", handleCaseStudyMapping)
	handle("GET /api/v1/paths", "/api/v1/paths", a.handlePathsGet)
	handle("POST /api/v1/paths", "/api/v1/paths", a.handlePaths)
	handle("POST /api/v1/generate", "/api/v1/generate", a.handleGenerate)
	warm("POST /api/v1/availability", "/api/v1/availability", warmPrefixAvailability, a.handleAvailability)
	warm("POST /api/v1/qos", "/api/v1/qos", warmPrefixQoS, a.handleQoS)
	warm("POST /api/v1/explain", "/api/v1/explain", warmPrefixExplain, a.handleExplain)
	handle("POST /api/v1/lint", "/api/v1/lint", handleLint)
	warm("POST /api/v1/batch", "/api/v1/batch", warmPrefixBatch, a.handleBatch)
	handle("POST /api/v1/whatif", "/api/v1/whatif", a.handleWhatIf)
	mux.Handle("GET /metrics", obs.Handler())
	mux.Handle("GET /debug/vars", expvar.Handler())
	return mux
}

// errorResponse is the uniform error body.
type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// mResponseEncodes counts JSON encodings performed by the cached analysis
// routes. Warm cache hits replay memoised bytes, so under a steady repeated
// load this counter stays flat while the route's request counter climbs.
var mResponseEncodes = obs.NewCounter("upsim_server_response_encodes_total",
	"JSON response encodings by route (cache hits reuse memoised bytes)", "route")

// encodedResponse pairs an analysis response value with its JSON encoding,
// produced once inside the cache's compute function. Cache hits write the
// memoised bytes directly and skip re-marshalling; the decoded value stays
// available for in-process consumers (the batch fan-out embeds it in its own
// reply, which is encoded as a whole).
type encodedResponse struct {
	value any
	body  []byte
}

// encodeResponse marshals v exactly as writeJSON would — json.Marshal plus
// the trailing newline json.Encoder appends — so the raw-bytes path is
// byte-identical to the encode-per-request path it replaces.
func encodeResponse(route string, v any) (*encodedResponse, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	mResponseEncodes.With(route).Inc()
	return &encodedResponse{value: v, body: append(b, '\n')}, nil
}

// writeRawJSON writes a pre-encoded JSON body.
func writeRawJSON(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

// budgetErrorResponse is the structured 422 body for analysis-budget
// exhaustion: which budget overflowed, on which atomic service, and by how
// much — enough for a client to raise the limit or shrink the model instead
// of parsing an error string.
type budgetErrorResponse struct {
	errorResponse
	Kind          string `json:"kind"`
	AtomicService string `json:"atomicService,omitempty"`
	Need          int    `json:"need,omitempty"`
	Limit         int    `json:"limit"`
}

// writeAnalysisError renders an analysis failure: budget exhaustion becomes
// the structured 422, anything else the uniform error body at the same
// status.
func writeAnalysisError(w http.ResponseWriter, err error) {
	if be, ok := depend.AsBudgetError(err); ok {
		writeJSON(w, http.StatusUnprocessableEntity, budgetErrorResponse{
			errorResponse: errorResponse{Error: be.Error()},
			Kind:          string(be.Kind),
			AtomicService: be.AtomicService,
			Need:          be.Need,
			Limit:         be.Limit,
		})
		return
	}
	writeError(w, http.StatusUnprocessableEntity, "%v", err)
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "invalid request body: %v", err)
		return false
	}
	return true
}

func handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func handleCaseStudyModel(w http.ResponseWriter, _ *http.Request) {
	m, err := casestudy.BuildModel()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "building case study: %v", err)
		return
	}
	if _, err := casestudy.PrintingService(m); err != nil {
		writeError(w, http.StatusInternalServerError, "building printing service: %v", err)
		return
	}
	var buf bytes.Buffer
	if err := uml.Encode(&buf, m); err != nil {
		writeError(w, http.StatusInternalServerError, "encoding model: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/xml")
	_, _ = w.Write(buf.Bytes())
}

func handleCaseStudyMapping(w http.ResponseWriter, _ *http.Request) {
	var buf bytes.Buffer
	if err := casestudy.TableIMapping().Encode(&buf); err != nil {
		writeError(w, http.StatusInternalServerError, "encoding mapping: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/xml")
	_, _ = w.Write(buf.Bytes())
}

// modelInput is the common request fragment carrying the UML model.
type modelInput struct {
	// ModelXML is the model in the library's XML dialect.
	ModelXML string `json:"modelXml"`
	// Diagram names the infrastructure object diagram.
	Diagram string `json:"diagram"`
}

// validate checks the required fields before any decode work.
func (in *modelInput) validate() error {
	if strings.TrimSpace(in.ModelXML) == "" {
		return fmt.Errorf("modelXml is required")
	}
	if in.Diagram == "" {
		return fmt.Errorf("diagram is required")
	}
	return nil
}

// load decodes the model and builds a fresh generator. The what-if route
// depends on this freshness — its engine takes ownership of the generator's
// live topology — so it must NOT be switched to the pooled acquire path.
func (in *modelInput) load(ctx context.Context) (*uml.Model, *core.Generator, error) {
	if err := in.validate(); err != nil {
		return nil, nil, err
	}
	m, err := uml.Decode(strings.NewReader(in.ModelXML))
	if err != nil {
		return nil, nil, err
	}
	gen, err := core.NewGeneratorContext(ctx, m, in.Diagram)
	if err != nil {
		return nil, nil, err
	}
	return m, gen, nil
}

// pathsRequest asks for simple paths between two components: all of them
// (the default), or — k > 0 — the k cheapest under a cost metric.
type pathsRequest struct {
	modelInput
	From     string `json:"from"`
	To       string `json:"to"`
	MaxDepth int    `json:"maxDepth,omitempty"`
	MaxPaths int    `json:"maxPaths,omitempty"`
	// K switches to ranked discovery: the k cheapest paths under Cost,
	// found by the budgeted k-best kernel instead of full enumeration.
	// MaxDepth and MaxPaths do not apply in ranked mode.
	K int `json:"k,omitempty"`
	// Cost selects the ranking metric: "hops" (default) or "throughput"
	// (each link costs 1/throughput from its Communication stereotype,
	// plain links cost 1).
	Cost string `json:"cost,omitempty"`
}

// rankedPathJSON is one ranked-discovery result: the hop sequence plus the
// stereotype-derived metrics joined from the provenance layer.
type rankedPathJSON struct {
	Path string `json:"path"`
	Hops int    `json:"hops"`
	// Cost is the path's cost under the requested metric — the exact value
	// the kernel ranked by.
	Cost float64 `json:"cost"`
	// BottleneckMbps is the smallest declared throughput along the path (0
	// when no link declares one).
	BottleneckMbps float64 `json:"bottleneckMbps,omitempty"`
	// Channels lists the distinct channel attributes in traversal order.
	Channels []string `json:"channels,omitempty"`
}

// pathsResponse returns the enumeration together with the full discovery
// instrumentation (the Stats the seed silently dropped). In ranked mode
// (k > 0) Ranked carries the per-path cost records and Paths the same hop
// sequences in rank order.
type pathsResponse struct {
	Paths        []string `json:"paths"`
	PathCount    int      `json:"pathCount"`
	EdgeVisits   int      `json:"edgeVisits"`
	NodesVisited int      `json:"nodesVisited"`
	MaxStack     int      `json:"maxStack"`
	Pruned       int      `json:"pruned"`
	Truncated    bool     `json:"truncated"`
	// CostMetric echoes the ranking metric in ranked mode.
	CostMetric string `json:"costMetric,omitempty"`
	// Ranked carries the per-path records in ranked mode.
	Ranked []rankedPathJSON `json:"ranked,omitempty"`
	// PathStats aggregates the enumeration: length spread and the
	// direct/transitive split plus the depth histogram (internal/explain).
	PathStats explain.PathStatistics `json:"pathStats"`
}

// pathsHardLimit bounds the /api/v1/paths enumeration: a request whose pair
// holds more simple paths than this gets a structured 422 instead of an
// unbounded (potentially memory-exhausting) search that used to surface as a
// bare 500. Variable so tests can lower it.
var pathsHardLimit = 1 << 20

// pathsWorkLimit bounds ranked discovery's K·V·E work estimate on
// /api/v1/paths, the k-best analogue of pathsHardLimit. Variable so tests
// can lower it.
var pathsWorkLimit = 1 << 26

// pathsBudgetResponse renders a pathdisc budget overflow as the structured
// budget body — same shape as the depend budget errors; the
// requester→provider pair plays the atomic-service role. Kind distinguishes
// the enumeration hard limit ("paths") from the ranked work envelope
// ("kbest"); Need falls back to Limit+1 for enumeration errors, which only
// know the limit they hit.
func pathsBudgetResponse(le *pathdisc.LimitError) *budgetErrorResponse {
	need := le.Need
	if need == 0 {
		need = le.Limit + 1
	}
	return &budgetErrorResponse{
		errorResponse: errorResponse{Error: le.Error()},
		Kind:          le.BudgetKind(),
		AtomicService: le.Src + "→" + le.Dst,
		Need:          need,
		Limit:         le.Limit,
	}
}

// computePaths runs the discovery — full enumeration, or the budgeted
// k-best kernel when req.K > 0 — on an acquired generator. diagram names
// the object diagram the generator was built from (needed to join link
// stereotypes onto ranked results). Shared by the POST route (model in the
// body), the GET route (built-in case-study model) and the batch "paths"
// op; budget overflows surface as *pathdisc.LimitError.
func computePaths(gen *core.Generator, diagram string, req *pathsRequest) (*pathsResponse, error) {
	metric, err := pathdisc.ParseCostMetric(req.Cost)
	if err != nil {
		return nil, err
	}
	c := gen.Compiled()
	var (
		paths []pathdisc.Path
		stats pathdisc.Stats
	)
	if req.K > 0 {
		paths, stats, err = c.KShortest(req.From, req.To,
			pathdisc.Options{K: req.K, CostMetric: metric, MaxWork: pathsWorkLimit})
	} else {
		// The generator compiled the CSR kernel at acquire time; enumerate
		// through it rather than the map-based walker.
		paths, stats, err = c.AllPaths(req.From, req.To,
			pathdisc.Options{MaxDepth: req.MaxDepth, MaxPaths: req.MaxPaths, HardMaxPaths: pathsHardLimit})
	}
	if err != nil {
		return nil, err
	}
	resp := &pathsResponse{
		PathCount:    stats.Paths,
		EdgeVisits:   stats.EdgeVisits,
		NodesVisited: stats.NodeVisits,
		MaxStack:     stats.MaxStack,
		Pruned:       stats.Pruned,
		Truncated:    stats.Truncated,
		PathStats:    explain.Statistics(paths),
	}
	for _, p := range paths {
		resp.Paths = append(resp.Paths, p.String())
	}
	if req.K > 0 {
		resp.CostMetric = metric.String()
		var links []*uml.Link
		if d, ok := gen.Model().Diagram(diagram); ok {
			links = d.Links()
		}
		for _, p := range paths {
			_, bottleneck, channels := explain.PathMetrics(links, p)
			resp.Ranked = append(resp.Ranked, rankedPathJSON{
				Path: p.String(),
				Hops: p.Len(),
				// PathCost folds in the kernel's summation order, so this
				// is the exact ranking cost, not a re-derived approximation.
				Cost:           c.PathCost(metric, p),
				BottleneckMbps: bottleneck,
				Channels:       channels,
			})
		}
	}
	return resp, nil
}

// servePaths maps computePaths onto the HTTP surface: budget overflows
// become the structured 422, anything else a 400.
func servePaths(w http.ResponseWriter, gen *core.Generator, diagram string, req *pathsRequest) {
	resp, err := computePaths(gen, diagram, req)
	if err != nil {
		if le, ok := pathdisc.AsLimitError(err); ok {
			writeJSON(w, http.StatusUnprocessableEntity, pathsBudgetResponse(le))
			return
		}
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (a *api) handlePaths(w http.ResponseWriter, r *http.Request) {
	var req pathsRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if err := req.validate(); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	gen, err := a.generators.Acquire(r.Context(), req.ModelXML, req.Diagram)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	defer a.generators.Release(gen)
	servePaths(w, gen, req.Diagram, &req)
}

// caseStudyXMLOnce memoises the encoded case-study model: the model is
// built from source, so the XML is a process constant.
var caseStudyXMLOnce = sync.OnceValues(func() (string, error) {
	m, err := casestudy.BuildModel()
	if err != nil {
		return "", err
	}
	var buf bytes.Buffer
	if err := uml.Encode(&buf, m); err != nil {
		return "", err
	}
	return buf.String(), nil
})

func caseStudyXML() (string, error) { return caseStudyXMLOnce() }

// handlePathsGet serves path discovery over the built-in case-study model —
// the server is stateless, so the GET form cannot carry a model and instead
// answers against the paper's Figure 8 topology. Query parameters: from, to
// (required), k, cost, maxDepth, maxPaths.
func (a *api) handlePathsGet(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	req := pathsRequest{
		From: q.Get("from"),
		To:   q.Get("to"),
		Cost: q.Get("cost"),
	}
	if req.From == "" || req.To == "" {
		writeError(w, http.StatusBadRequest, "from and to are required")
		return
	}
	for _, f := range []struct {
		name string
		dst  *int
	}{{"k", &req.K}, {"maxDepth", &req.MaxDepth}, {"maxPaths", &req.MaxPaths}} {
		if s := q.Get(f.name); s != "" {
			n, err := strconv.Atoi(s)
			if err != nil {
				writeError(w, http.StatusBadRequest, "invalid %s: %v", f.name, err)
				return
			}
			*f.dst = n
		}
	}
	xml, err := caseStudyXML()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "building case study: %v", err)
		return
	}
	gen, err := a.generators.Acquire(r.Context(), xml, casestudy.DiagramName)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	defer a.generators.Release(gen)
	servePaths(w, gen, casestudy.DiagramName, &req)
}

// generateRequest asks for a UPSIM.
type generateRequest struct {
	modelInput
	// Service names an activity of the model.
	Service string `json:"service"`
	// MappingXML is the Figure 3 mapping document.
	MappingXML string `json:"mappingXml"`
	// Name names the generated UPSIM (default "upsim").
	Name string `json:"name,omitempty"`
	// AllowDisconnected tolerates unreachable pairs.
	AllowDisconnected bool `json:"allowDisconnected,omitempty"`
}

// generate runs the pipeline for one request through the shared cache (nil
// disables caching). With a pool, the generator is acquired warm — a repeated
// model skips XML decode, VPM import and CSR compilation — and released (its
// derived artifacts unhooked) before returning; results stay valid after
// release because derived diagrams are detached, not destroyed. With p ==
// nil the generator is built fresh per request. Either way the cache key is
// derived from the request content, so identical requests hit the same entry
// no matter which generator instance computes them. The returned key is the
// generation content hash; the analysis routes extend it into their own
// cache keys so replays skip recompilation, not just regeneration.
func (req *generateRequest) generate(ctx context.Context, c *cache.Cache, p *core.GeneratorPool) (*core.Result, string, error) {
	var gen *core.Generator
	if p != nil {
		if err := req.validate(); err != nil {
			return nil, "", err
		}
		g, err := p.Acquire(ctx, req.ModelXML, req.Diagram)
		if err != nil {
			return nil, "", err
		}
		defer p.Release(g)
		gen = g
	} else {
		_, g, err := req.load(ctx)
		if err != nil {
			return nil, "", err
		}
		gen = g
	}
	m := gen.Model()
	act, ok := m.Activity(req.Service)
	if !ok {
		return nil, "", fmt.Errorf("model has no activity %q", req.Service)
	}
	svc, err := service.FromActivity(act)
	if err != nil {
		return nil, "", err
	}
	mp, err := mapping.Parse(strings.NewReader(req.MappingXML))
	if err != nil {
		return nil, "", err
	}
	name := req.Name
	if name == "" {
		name = "upsim"
	}
	opts := core.Options{AllowDisconnected: req.AllowDisconnected}
	key, err := gen.CacheKey(svc, mp, name, opts)
	if err != nil {
		return nil, "", err
	}
	res, err := gen.WithCache(c).GenerateContext(ctx, svc, mp, name, opts)
	if err != nil {
		return nil, "", err
	}
	return res, key, nil
}

// linkJSON is one UPSIM link.
type linkJSON struct {
	A           string `json:"a"`
	B           string `json:"b"`
	Association string `json:"association"`
}

// serviceStatsJSON is the Step 7 instrumentation for one atomic service.
type serviceStatsJSON struct {
	AtomicService string `json:"atomicService"`
	Requester     string `json:"requester"`
	Provider      string `json:"provider"`
	Paths         int    `json:"paths"`
	EdgeVisits    int    `json:"edgeVisits"`
	NodesVisited  int    `json:"nodesVisited"`
	MaxStack      int    `json:"maxStack"`
	Pruned        int    `json:"pruned"`
	Truncated     bool   `json:"truncated"`
	// PathStats summarises this service's discovered paths.
	PathStats explain.PathStatistics `json:"pathStats"`
}

// generateResponse returns the UPSIM plus the per-service discovery stats.
type generateResponse struct {
	Name       string              `json:"name"`
	Nodes      []string            `json:"nodes"`
	Links      []linkJSON          `json:"links"`
	Paths      map[string][]string `json:"pathsByService"`
	TotalPaths int                 `json:"totalPaths"`
	EdgeVisits int                 `json:"edgeVisits"`
	Services   []serviceStatsJSON  `json:"serviceStats"`
	// PathStats aggregates all services' discovered paths.
	PathStats explain.PathStatistics `json:"pathStats"`
	// Truncated is true when any atomic service hit its MaxPaths budget, so
	// the UPSIM (and every analysis derived from it) is a lower bound.
	Truncated bool `json:"truncated"`
}

func (a *api) handleGenerate(w http.ResponseWriter, r *http.Request) {
	var req generateRequest
	if !decodeBody(w, r, &req) {
		return
	}
	res, _, err := req.generate(r.Context(), a.cache, a.generators)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, buildGenerateResponse(res))
}

// buildGenerateResponse renders a pipeline Result; shared by the single
// generate route and the batch fan-out.
func buildGenerateResponse(res *core.Result) generateResponse {
	resp := generateResponse{
		Name:       res.Name,
		Nodes:      res.NodeNames(),
		Paths:      make(map[string][]string, len(res.Services)),
		TotalPaths: res.TotalPaths,
		EdgeVisits: res.EdgeVisits,
	}
	for _, l := range res.UPSIM.Links() {
		a, b := l.Ends()
		resp.Links = append(resp.Links, linkJSON{A: a.Name(), B: b.Name(), Association: l.Association().Name()})
	}
	var all []pathdisc.Path
	for _, sp := range res.Services {
		var ps []string
		for _, p := range sp.Paths {
			ps = append(ps, p.String())
		}
		resp.Paths[sp.AtomicService] = ps
		resp.Services = append(resp.Services, serviceStatsJSON{
			AtomicService: sp.AtomicService,
			Requester:     sp.Requester,
			Provider:      sp.Provider,
			Paths:         sp.Stats.Paths,
			EdgeVisits:    sp.Stats.EdgeVisits,
			NodesVisited:  sp.Stats.NodeVisits,
			MaxStack:      sp.Stats.MaxStack,
			Pruned:        sp.Stats.Pruned,
			Truncated:     sp.Stats.Truncated,
			PathStats:     explain.Statistics(sp.Paths),
		})
		all = append(all, sp.Paths...)
		resp.Truncated = resp.Truncated || sp.Stats.Truncated
	}
	resp.PathStats = explain.Statistics(all)
	return resp
}

// availabilityRequest asks for the Section VII analysis.
type availabilityRequest struct {
	generateRequest
	// Formula1 selects the paper's approximation for component
	// availability.
	Formula1 bool `json:"formula1,omitempty"`
	// MCSamples sets the Monte-Carlo sample count (default 100000).
	MCSamples int `json:"mcSamples,omitempty"`
	// Seed sets the Monte-Carlo seed (default 1).
	Seed int64 `json:"seed,omitempty"`
	// LegacyKernel routes the analysis through the map-based implementation
	// instead of the compiled bitset kernel (the ablation escape hatch). The
	// numbers are bit-identical either way; the flag participates in the
	// analysis cache key so the two variants never share an entry.
	LegacyKernel bool `json:"legacyKernel,omitempty"`
}

// availabilityResponse returns the analysis report.
type availabilityResponse struct {
	Exact                float64 `json:"exact"`
	RBDApprox            float64 `json:"rbdApprox"`
	FTApprox             float64 `json:"ftApprox"`
	MonteCarlo           float64 `json:"monteCarlo"`
	MCStdErr             float64 `json:"mcStdErr"`
	DowntimePerYearHours float64 `json:"downtimePerYearHours"`
	Components           int     `json:"components"`
}

// qosRequest asks for the performability/responsiveness analysis.
type qosRequest struct {
	generateRequest
	// MaxHops is the responsiveness hop budget (default 8).
	MaxHops int `json:"maxHops,omitempty"`
}

// qosResponse returns both QoS properties.
type qosResponse struct {
	ThroughputMbps    float64 `json:"throughputMbps"`
	MaxHops           int     `json:"maxHops"`
	Responsiveness    float64 `json:"responsiveness"`
	Availability      float64 `json:"availability"`
	PathsWithinBudget int     `json:"pathsWithinBudget"`
	PathsTotal        int     `json:"pathsTotal"`
}

func (a *api) handleQoS(w http.ResponseWriter, r *http.Request) {
	var req qosRequest
	if !decodeBody(w, r, &req) {
		return
	}
	res, genKey, err := req.generate(r.Context(), a.cache, a.generators)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	resp, err := analyzeQoS(r.Context(), a.cache, genKey, res, req.MaxHops)
	if err != nil {
		writeAnalysisError(w, err)
		return
	}
	writeRawJSON(w, http.StatusOK, resp.body)
	a.storeWarm(r, resp)
}

// analyzeQoS runs the performability + responsiveness analysis on a (possibly
// cached) Result, through the shared cache keyed on the generation content
// hash plus the analysis knobs: a replayed request skips structure
// extraction, kernel compilation AND response encoding — the cache holds the
// marshalled bytes, so a warm hit writes them straight to the wire. Shared by
// the single qos route and the batch fan-out; c == nil disables caching.
func analyzeQoS(ctx context.Context, c *cache.Cache, genKey string, res *core.Result, maxHops int) (*encodedResponse, error) {
	if maxHops <= 0 {
		maxHops = 8
	}
	compute := func() (any, error) {
		tp, err := depend.Throughput(res)
		if err != nil {
			return nil, err
		}
		rr, err := depend.Responsiveness(res, depend.ModelExact, maxHops)
		if err != nil {
			return nil, err
		}
		return encodeResponse("/api/v1/qos", qosResponse{
			ThroughputMbps:    tp.Service,
			MaxHops:           rr.MaxHops,
			Responsiveness:    rr.Responsiveness,
			Availability:      rr.Availability,
			PathsWithinBudget: rr.PathsWithinBudget,
			PathsTotal:        rr.PathsTotal,
		})
	}
	if c == nil || genKey == "" {
		v, err := compute()
		if err != nil {
			return nil, err
		}
		return v.(*encodedResponse), nil
	}
	key := fmt.Sprintf("qos|%s|hops=%d", genKey, maxHops)
	v, _, err := c.Do(ctx, key, compute)
	if err != nil {
		return nil, err
	}
	return v.(*encodedResponse), nil
}

// lintRequest asks for a static-analysis report. Unlike the pipeline routes
// it does not reuse modelInput.load: that path pre-validates the model inside
// NewGeneratorContext and would reject exactly the broken models the linter
// exists to report on. Only modelXml is required; diagram, service and
// mappingXml widen the rule coverage when present.
type lintRequest struct {
	// ModelXML is the model in the library's XML dialect (required).
	ModelXML string `json:"modelXml"`
	// Diagram names the infrastructure object diagram (optional: omit for a
	// model-only lint).
	Diagram string `json:"diagram,omitempty"`
	// Service names an activity of the model (optional).
	Service string `json:"service,omitempty"`
	// MappingXML is the Figure 3 mapping document (optional).
	MappingXML string `json:"mappingXml,omitempty"`
}

// lintResponse wraps the report with the service resolution note (set when
// the named activity exists but cannot be wrapped as a composite service, in
// which case the mapping-coverage rules were skipped).
type lintResponse struct {
	lint.Report
	ServiceError string `json:"serviceError,omitempty"`
}

func handleLint(w http.ResponseWriter, r *http.Request) {
	var req lintRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if strings.TrimSpace(req.ModelXML) == "" {
		writeError(w, http.StatusBadRequest, "modelXml is required")
		return
	}
	m, err := uml.Decode(strings.NewReader(req.ModelXML))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	resp := lintResponse{}
	var svc *service.Composite
	if req.Service != "" {
		act, ok := m.Activity(req.Service)
		if !ok {
			writeError(w, http.StatusBadRequest, "model has no activity %q", req.Service)
			return
		}
		if svc, err = service.FromActivity(act); err != nil {
			resp.ServiceError = err.Error()
			svc = nil
		}
	}
	var mp *mapping.Mapping
	if strings.TrimSpace(req.MappingXML) != "" {
		if mp, err = mapping.Parse(strings.NewReader(req.MappingXML)); err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	in, err := lint.NewInput(m, req.Diagram, svc, mp)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	rep, err := lint.Default().Run(in)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	resp.Report = *rep
	writeJSON(w, http.StatusOK, resp)
}

func (a *api) handleAvailability(w http.ResponseWriter, r *http.Request) {
	var req availabilityRequest
	if !decodeBody(w, r, &req) {
		return
	}
	res, genKey, err := req.generate(r.Context(), a.cache, a.generators)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	resp, err := analyzeAvailability(r.Context(), a.cache, genKey, res, req.Formula1, req.MCSamples, req.Seed, req.LegacyKernel)
	if err != nil {
		writeAnalysisError(w, err)
		return
	}
	writeRawJSON(w, http.StatusOK, resp.body)
	a.storeWarm(r, resp)
}

// analyzeAvailability runs the Section VII analysis on a (possibly cached)
// Result, through the shared cache keyed on the generation content hash plus
// every analysis knob (including the legacy-kernel ablation flag): a
// replayed request skips structure extraction, kernel compilation AND
// response encoding — the cache holds the marshalled bytes, so a warm hit
// writes them straight to the wire. Shared by the single availability route
// and the batch fan-out; c == nil disables caching.
func analyzeAvailability(ctx context.Context, c *cache.Cache, genKey string, res *core.Result, formula1 bool, samples int, seed int64, legacy bool) (*encodedResponse, error) {
	model := depend.ModelExact
	if formula1 {
		model = depend.ModelFormula1
	}
	if samples <= 0 {
		samples = 100000
	}
	if seed == 0 {
		seed = 1
	}
	compute := func() (any, error) {
		rep, err := depend.AnalyzeWithOptions(ctx, res, model, samples, seed,
			depend.AnalyzeOptions{Legacy: legacy})
		if err != nil {
			return nil, err
		}
		return encodeResponse("/api/v1/availability", availabilityResponse{
			Exact:                rep.Exact,
			RBDApprox:            rep.RBDApprox,
			FTApprox:             rep.FTApprox,
			MonteCarlo:           rep.MonteCarlo,
			MCStdErr:             rep.MCStdErr,
			DowntimePerYearHours: rep.DowntimePerYearHours,
			Components:           rep.Components,
		})
	}
	if c == nil || genKey == "" {
		v, err := compute()
		if err != nil {
			return nil, err
		}
		return v.(*encodedResponse), nil
	}
	key := fmt.Sprintf("avail|%s|model=%s|mc=%d|seed=%d|legacy=%t", genKey, model, samples, seed, legacy)
	v, _, err := c.Do(ctx, key, compute)
	if err != nil {
		return nil, err
	}
	return v.(*encodedResponse), nil
}

// Explain modes.
const (
	// ExplainModeReport (the default) returns the full provenance &
	// attribution report.
	ExplainModeReport = "report"
	// ExplainModeValidate checks the generation against a current topology
	// and returns the freshness verdict instead.
	ExplainModeValidate = "validate"
)

// explainRequest asks for the provenance & attribution report of a
// generation, or — mode "validate" — for its freshness against a current
// topology.
type explainRequest struct {
	generateRequest
	// Mode selects the report (default) or the validation check.
	Mode string `json:"mode,omitempty"`
	// Top truncates the cut-set and component rankings to the N largest
	// contributors (0 keeps everything; the totals always reflect the full
	// rankings).
	Top int `json:"top,omitempty"`
	// CutLimit overrides the cut-set expansion budget (0 keeps the default).
	CutLimit int `json:"cutLimit,omitempty"`
	// Formula1 selects the paper's approximation for component availability.
	Formula1 bool `json:"formula1,omitempty"`
	// LegacyKernel attributes through the map-based dependability
	// implementation; the report is bit-identical to the compiled kernel's.
	LegacyKernel bool `json:"legacyKernel,omitempty"`
	// SkipAttribution returns path provenance only (no cut sets or
	// importance measures).
	SkipAttribution bool `json:"skipAttribution,omitempty"`
	// CurrentModelXML is the current topology for mode "validate" (defaults
	// to the request model, which validates trivially fresh).
	CurrentModelXML string `json:"currentModelXml,omitempty"`
	// CurrentDiagram names the current topology diagram (defaults to the
	// request diagram name).
	CurrentDiagram string `json:"currentDiagram,omitempty"`
}

func (a *api) handleExplain(w http.ResponseWriter, r *http.Request) {
	var req explainRequest
	if !decodeBody(w, r, &req) {
		return
	}
	res, genKey, err := req.generate(r.Context(), a.cache, a.generators)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	switch req.Mode {
	case "", ExplainModeReport:
		resp, err := analyzeExplain(r.Context(), a.cache, genKey, res, &req)
		if err != nil {
			writeAnalysisError(w, err)
			return
		}
		writeRawJSON(w, http.StatusOK, resp.body)
		a.storeWarm(r, resp)
	case ExplainModeValidate:
		xml := req.CurrentModelXML
		if strings.TrimSpace(xml) == "" {
			xml = req.ModelXML
		}
		cm, err := uml.Decode(strings.NewReader(xml))
		if err != nil {
			writeError(w, http.StatusBadRequest, "current model: %v", err)
			return
		}
		name := req.CurrentDiagram
		if name == "" {
			name = req.Diagram
		}
		d, ok := cm.Diagram(name)
		if !ok {
			writeError(w, http.StatusBadRequest, "current model has no diagram %q", name)
			return
		}
		val, err := explain.Validate(r.Context(), res, d)
		if err != nil {
			writeError(w, http.StatusUnprocessableEntity, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, val)
	default:
		writeError(w, http.StatusBadRequest, "unknown mode %q (want %q or %q)",
			req.Mode, ExplainModeReport, ExplainModeValidate)
	}
}

// analyzeExplain builds the provenance & attribution report through the
// shared cache, keyed on the generation content hash plus every report knob.
// Like analyzeAvailability, the cache holds the *encoded* response: a warm
// hit skips structure extraction, cut-set expansion, importance attribution
// AND re-marshalling — the stored bytes go straight to the wire. c == nil
// (or an empty genKey from an uncached generation) disables caching.
func analyzeExplain(ctx context.Context, c *cache.Cache, genKey string, res *core.Result, req *explainRequest) (*encodedResponse, error) {
	model := depend.ModelExact
	if req.Formula1 {
		model = depend.ModelFormula1
	}
	compute := func() (any, error) {
		rep, err := explain.Explain(ctx, res, explain.Options{
			Legacy:          req.LegacyKernel,
			Model:           model,
			TopN:            req.Top,
			CutLimit:        req.CutLimit,
			SkipAttribution: req.SkipAttribution,
		})
		if err != nil {
			return nil, err
		}
		return encodeResponse("/api/v1/explain", rep)
	}
	if c == nil || genKey == "" {
		v, err := compute()
		if err != nil {
			return nil, err
		}
		return v.(*encodedResponse), nil
	}
	key := fmt.Sprintf("explain|%s|model=%s|top=%d|cut=%d|legacy=%t|skipattr=%t",
		genKey, model, req.Top, req.CutLimit, req.LegacyKernel, req.SkipAttribution)
	v, _, err := c.Do(ctx, key, compute)
	if err != nil {
		return nil, err
	}
	return v.(*encodedResponse), nil
}
