package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"upsim/internal/casestudy"
	"upsim/internal/depend"
	"upsim/internal/explain"
)

// usiExplainRequest is the USI printing-service request body shared by the
// explain tests.
func usiExplainRequest(t *testing.T, ts *httptest.Server) map[string]any {
	t.Helper()
	modelXML, mappingXML := fetchArtifacts(t, ts)
	return map[string]any{
		"modelXml":   modelXML,
		"diagram":    casestudy.DiagramName,
		"service":    casestudy.PrintingServiceName,
		"mappingXml": mappingXML,
		"name":       "usi",
	}
}

// TestExplainEndpoint is the API acceptance round-trip: the report carries
// per-path statistics, a discovery tree per atomic service and the component
// rankings, and the legacy kernel returns identical numbers.
func TestExplainEndpoint(t *testing.T) {
	ts := httptest.NewServer(New())
	defer ts.Close()
	req := usiExplainRequest(t, ts)

	resp, body := postJSON(t, ts, "/api/v1/explain", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explain = %d: %s", resp.StatusCode, body)
	}
	var out explain.Report
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Kernel != "compiled" || out.Name != "usi" {
		t.Errorf("kernel = %q, name = %q", out.Kernel, out.Name)
	}
	if len(out.Services) != len(casestudy.PrintingAtomicServices) || out.Stats.Count == 0 {
		t.Fatalf("services = %d, paths = %d", len(out.Services), out.Stats.Count)
	}
	for _, svc := range out.Services {
		if len(svc.Paths) == 0 || svc.Tree == nil || svc.Stats.Count != len(svc.Paths) {
			t.Errorf("service %q provenance incomplete: %+v", svc.AtomicService, svc)
		}
		if svc.Tree != nil && svc.Tree.Name != svc.Requester {
			t.Errorf("service %q tree rooted at %q, want %q", svc.AtomicService, svc.Tree.Name, svc.Requester)
		}
	}
	attr := out.Attribution
	if attr == nil || attr.Availability <= 0.98 || attr.Availability >= 1 {
		t.Fatalf("attribution = %+v", attr)
	}
	if len(attr.CutSets) == 0 || len(attr.Components) == 0 || len(attr.Classes) == 0 {
		t.Fatalf("attribution incomplete: %+v", attr)
	}

	// The legacy kernel reports the identical provenance and attribution.
	req["legacyKernel"] = true
	resp, lbody := postJSON(t, ts, "/api/v1/explain", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("legacy explain = %d: %s", resp.StatusCode, lbody)
	}
	want := bytes.Replace(body, []byte(`"kernel":"compiled"`), []byte(`"kernel":"legacy"`), 1)
	if !bytes.Equal(lbody, want) {
		t.Error("legacy explain response differs from compiled beyond the kernel tag")
	}
}

// TestExplainValidateEndpoint drives mode "validate": the unchanged model is
// fresh; a current topology missing a used component is stale with a
// missing-node issue.
func TestExplainValidateEndpoint(t *testing.T) {
	ts := httptest.NewServer(New())
	defer ts.Close()
	req := usiExplainRequest(t, ts)
	req["mode"] = "validate"

	resp, body := postJSON(t, ts, "/api/v1/explain", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("validate = %d: %s", resp.StatusCode, body)
	}
	var out explain.Validation
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Fresh || out.NodesChecked == 0 || out.LinksChecked == 0 {
		t.Fatalf("self-validation not fresh: %+v", out)
	}

	// Drop the print server's edge switch from the current topology. The
	// casestudy model XML declares each instance once; removing the d4
	// instance line leaves a diagram the decoder still accepts but where
	// every printing path is broken.
	cur := &bytes.Buffer{}
	for _, line := range bytes.Split([]byte(req["modelXml"].(string)), []byte("\n")) {
		if bytes.Contains(line, []byte(`"d4"`)) {
			continue
		}
		cur.Write(line)
		cur.WriteByte('\n')
	}
	req["currentModelXml"] = cur.String()
	resp, body = postJSON(t, ts, "/api/v1/explain", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("validate (mutated) = %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Fresh {
		t.Fatalf("mutated topology validated fresh: %+v", out)
	}
	found := false
	for _, is := range out.Issues {
		if is.Kind == explain.IssueMissingNode && is.Subject == "d4" {
			found = true
		}
	}
	if !found {
		t.Errorf("no missing-node issue for d4: %+v", out.Issues)
	}
}

// TestExplainBudget422 pins the structured budget-exhaustion error: a tiny
// cut-set limit yields a 422 naming the budget kind, the atomic service and
// the limit.
func TestExplainBudget422(t *testing.T) {
	ts := httptest.NewServer(New())
	defer ts.Close()
	req := usiExplainRequest(t, ts)
	req["cutLimit"] = 1

	resp, body := postJSON(t, ts, "/api/v1/explain", req)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("explain with cutLimit=1 = %d: %s", resp.StatusCode, body)
	}
	var out struct {
		Error         string `json:"error"`
		Kind          string `json:"kind"`
		AtomicService string `json:"atomicService"`
		Limit         int    `json:"limit"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Kind != string(depend.BudgetTransversal) || out.AtomicService == "" || out.Limit != 1 {
		t.Fatalf("budget 422 = %+v", out)
	}
	if out.Error == "" {
		t.Error("budget 422 has no error message")
	}
}

// TestWarmHitSkipsEncoding asserts the encoded-bytes memoisation: a repeated
// availability (and qos) request serves the memoised bytes — the per-route
// encode counter does not move on the warm hit and the body is byte-identical.
func TestWarmHitSkipsEncoding(t *testing.T) {
	ts := httptest.NewServer(New())
	defer ts.Close()
	req := usiExplainRequest(t, ts)
	req["mcSamples"] = 20000

	routes := []struct {
		path  string
		route string
	}{
		{"/api/v1/availability", "/api/v1/availability"},
		{"/api/v1/qos", "/api/v1/qos"},
	}
	for _, rt := range routes {
		delete(req, "mcSamples")
		if rt.path == "/api/v1/availability" {
			req["mcSamples"] = 20000
		}
		resp, cold := postJSON(t, ts, rt.path, req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s = %d: %s", rt.path, resp.StatusCode, cold)
		}
		encodes := mResponseEncodes.With(rt.route).Value()
		if encodes == 0 {
			t.Fatalf("%s cold request did not count an encode", rt.path)
		}
		resp, warm := postJSON(t, ts, rt.path, req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s warm = %d: %s", rt.path, resp.StatusCode, warm)
		}
		if got := mResponseEncodes.With(rt.route).Value(); got != encodes {
			t.Errorf("%s warm hit re-encoded: counter %d -> %d", rt.path, encodes, got)
		}
		if !bytes.Equal(cold, warm) {
			t.Errorf("%s warm body differs from cold:\ncold: %s\nwarm: %s", rt.path, cold, warm)
		}
	}
}

// TestExplainCacheReplay asserts the explain report rides the same memoised
// response-bytes machinery: a repeated report request is served from the
// cache (the per-route encode counter does not move on the warm hit, the
// bytes are identical), while changing any report knob misses and re-encodes.
func TestExplainCacheReplay(t *testing.T) {
	ts := httptest.NewServer(New())
	defer ts.Close()
	req := usiExplainRequest(t, ts)

	const route = "/api/v1/explain"
	resp, cold := postJSON(t, ts, route, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explain = %d: %s", resp.StatusCode, cold)
	}
	encodes := mResponseEncodes.With(route).Value()
	if encodes == 0 {
		t.Fatal("cold explain did not count an encode")
	}

	resp, warm := postJSON(t, ts, route, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm explain = %d: %s", resp.StatusCode, warm)
	}
	if got := mResponseEncodes.With(route).Value(); got != encodes {
		t.Errorf("warm explain re-encoded: counter %d -> %d", encodes, got)
	}
	if !bytes.Equal(cold, warm) {
		t.Errorf("warm explain body differs from cold:\ncold: %s\nwarm: %s", cold, warm)
	}

	// A different report knob is a different cache key: it must re-analyse
	// and re-encode rather than replay the full report's bytes.
	req["top"] = 1
	resp, truncated := postJSON(t, ts, route, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("top=1 explain = %d: %s", resp.StatusCode, truncated)
	}
	if got := mResponseEncodes.With(route).Value(); got != encodes+1 {
		t.Errorf("top=1 explain encode counter = %d, want %d", got, encodes+1)
	}
	if bytes.Equal(cold, truncated) {
		t.Error("top=1 explain replayed the untruncated report")
	}
}
