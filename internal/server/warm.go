package server

// This file implements the warm request lane for the analysis routes
// (availability, qos, explain): a byte-level fast path that serves a repeated
// POST body without JSON decoding, generator work or response encoding — and,
// once warm, without heap allocation (DESIGN.md §14).
//
// The key insight is that those routes are pure functions of their request
// bytes: the model, service, mapping and every analysis knob travel in the
// body, and the server holds no state that could change the answer (the
// what-if engine owns its own route and cache keys). So `sha256(body)` is a
// sound cache key — a warm entry can never go stale, and no invalidation
// machinery is needed. The stored value is the same *encodedResponse the
// analysis cache holds, so a warm hit writes the memoised bytes straight to
// the wire.
//
// Lifecycle: the instrumentWarm middleware takes a pooled warmReq, reads the
// body into its reusable buffer and probes the cache via GetBytes (the
// map[string(bytes)] no-conversion lookup). On a hit it replays the response
// and returns the warmReq to the pool. On a miss the warmReq becomes the
// request body (it replays the consumed bytes to the JSON decoder) and rides
// along to the handler, which calls storeWarm after a successful compute;
// the middleware reclaims the warmReq when the handler returns.

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"io"
	"net/http"
	"sync"

	"upsim/internal/obs"
)

// mWarmHits counts analysis responses replayed by the warm byte-level lane,
// by route. The difference between this and upsim_cache_hits_total is the
// requests that hit the analysis cache but still paid JSON decode + generator
// acquisition.
var mWarmHits = obs.NewCounter("upsim_server_warm_hits_total",
	"Analysis responses served by the warm byte-level lane (no JSON decode, no generation).", "route")

// Warm-lane cache sizing gauges: the configured capacity and the current
// entry count of the dedicated warm response cache (Config.WarmSize /
// upsimd -warm-size). The lane used to share the generation cache; the
// gauges make the split observable on GET /metrics.
var (
	mWarmCapacity = obs.NewGauge("upsim_server_warm_capacity",
		"Configured capacity (entries) of the dedicated warm-lane response cache.")
	mWarmEntries = obs.NewGauge("upsim_server_warm_entries",
		"Entries currently held by the dedicated warm-lane response cache.")
)

// jsonContentType is the shared Content-Type value written by the warm lane
// (direct map assignment; Header().Set would allocate the slice per hit).
var jsonContentType = []string{"application/json"}

// warmKeyPrefixes are the per-route key namespaces. They share the "warm|"
// prefix so RemoveMatching predicates can target the whole lane at once.
const (
	warmPrefixAvailability = "warm|avail|"
	warmPrefixQoS          = "warm|qos|"
	warmPrefixExplain      = "warm|explain|"
	// warmPrefixBatch keys whole POST /api/v1/batch bodies: a repeated
	// identical batch replays the memoised response without decoding or
	// fanning out. (The memoised body embeds the cache-stats snapshot taken
	// when it was computed; a warm replay intentionally repeats it.)
	warmPrefixBatch = "warm|batch|"
	// warmPrefixItem keys individual batch items by their canonical JSON
	// encoding, so a repeated item skips generation and analysis even when
	// the surrounding batch differs (see runBatchItem).
	warmPrefixItem = "warm|item|"
)

// warmReq is the pooled per-request state of the warm lane: the body buffer,
// the derived cache key and the replay reader handed to the JSON decoder on a
// miss. It implements io.ReadCloser so it can be installed as r.Body.
type warmReq struct {
	buf  []byte       // request body bytes, reused across requests
	key  []byte       // prefix + hex digest, reused across requests
	body bytes.Reader // replays buf to the handler on a miss
}

func (wr *warmReq) Read(p []byte) (int, error) { return wr.body.Read(p) }
func (wr *warmReq) Close() error               { return nil }

var warmPool = sync.Pool{New: func() any { return new(warmReq) }}

// fill reads the request body into the reusable buffer, up to one byte past
// the request size bound (the overflow byte lets the replayed decode fail
// with the same "body too large" error the cold path produces).
//
//upsim:hotpath
func (wr *warmReq) fill(r io.Reader) error {
	buf := wr.buf[:0]
	if cap(buf) == 0 {
		buf = make([]byte, 0, 4096)
	}
	for {
		if len(buf) == cap(buf) {
			if len(buf) > MaxRequestBytes {
				wr.buf = buf
				return errBodyTooLarge
			}
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			wr.buf = buf
			return nil
		}
		if err != nil {
			wr.buf = buf
			return err
		}
	}
}

// errBodyTooLarge aborts fill when the body exceeds MaxRequestBytes; the
// middleware falls back to the cold path, whose MaxBytesReader produces the
// canonical 400.
var errBodyTooLarge = errors.New("server: request body exceeds MaxRequestBytes")

// buildKey derives the warm cache key — prefix plus the hex SHA-256 of the
// body bytes — into the reusable key buffer.
//
//upsim:hotpath
func (wr *warmReq) buildKey(prefix string) {
	sum := sha256.Sum256(wr.buf)
	need := len(prefix) + hex.EncodedLen(len(sum))
	if cap(wr.key) < need {
		wr.key = make([]byte, 0, 128)
	}
	key := append(wr.key[:0], prefix...)[:need]
	hex.Encode(key[len(prefix):], sum[:])
	wr.key = key
}

// replay arms the warmReq as the request body so the cold handler decodes the
// already-consumed bytes.
func (wr *warmReq) replay(r *http.Request) {
	wr.body.Reset(wr.buf)
	r.Body = wr
}

// writeWarm replays a memoised analysis response: shared Content-Type value,
// request-ID echo by header-slice reuse (no per-hit entropy draw — a warm hit
// without a client-supplied ID simply carries none), memoised body bytes.
//
//upsim:hotpath
func writeWarm(w http.ResponseWriter, r *http.Request, resp *encodedResponse) {
	h := w.Header()
	if ids := r.Header[RequestIDHeader]; len(ids) > 0 {
		h[RequestIDHeader] = ids
	}
	h["Content-Type"] = jsonContentType
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(resp.body)
}

// tryWarm probes the warm lane for the request. It returns true when the
// response was served (warm hit); on false the request body has been armed
// for replay and the caller must run the cold path. The returned warmReq is
// owned by the caller either way (return it to warmPool when done).
//
//upsim:hotpath
func (a *api) tryWarm(wr *warmReq, prefix string, w http.ResponseWriter, r *http.Request) bool {
	if err := wr.fill(r.Body); err != nil {
		wr.replay(r)
		return false
	}
	wr.buildKey(prefix)
	if v, ok := a.warm.GetBytes(wr.key); ok {
		if resp, ok := v.(*encodedResponse); ok {
			writeWarm(w, r, resp)
			return true
		}
	}
	wr.replay(r)
	return false
}

// storeWarm publishes a successful analysis response under the request's warm
// key. It is a no-op when the request did not travel through the warm lane
// (batch fan-out, direct RunBatch callers).
func (a *api) storeWarm(r *http.Request, resp *encodedResponse) {
	if wr, ok := r.Body.(*warmReq); ok && len(wr.key) > 0 {
		a.warm.Add(string(wr.key), resp)
		mWarmEntries.With().Set(int64(a.warm.Len()))
	}
}
