package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"

	"upsim/internal/casestudy"
)

// getBody GETs a path and returns the body.
func getBody(t *testing.T, ts *httptest.Server, path string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(body)
}

// TestMetricsEndpoint is the acceptance check of the observability layer:
// after a POST /api/v1/generate, GET /metrics exposes a non-zero request
// counter, a latency histogram for the endpoint and nodes-visited
// observations from path discovery.
func TestMetricsEndpoint(t *testing.T) {
	ts := httptest.NewServer(New())
	defer ts.Close()
	modelXML, mappingXML := fetchArtifacts(t, ts)
	resp, body := postJSON(t, ts, "/api/v1/generate", map[string]any{
		"modelXml":   modelXML,
		"diagram":    casestudy.DiagramName,
		"service":    casestudy.PrintingServiceName,
		"mappingXml": mappingXML,
		"name":       "metrics-run",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("generate = %d: %s", resp.StatusCode, body)
	}

	mresp, exposition := getBody(t, ts, "/metrics")
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("metrics = %d", mresp.StatusCode)
	}
	if ct := mresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics content type = %q", ct)
	}
	// Non-zero request counter for the generate route.
	counter := regexp.MustCompile(`upsim_http_requests_total\{method="POST",path="/api/v1/generate",status="200"\} ([1-9]\d*)`)
	if !counter.MatchString(exposition) {
		t.Errorf("request counter missing or zero:\n%s", grepLines(exposition, "upsim_http_requests_total"))
	}
	// Latency histogram for the endpoint.
	for _, want := range []string{
		`upsim_http_request_duration_seconds_bucket{path="/api/v1/generate",le="+Inf"}`,
		`upsim_http_request_duration_seconds_count{path="/api/v1/generate"}`,
	} {
		if !strings.Contains(exposition, want) {
			t.Errorf("latency histogram missing %q", want)
		}
	}
	// Path-discovery instrumentation flowed into the histograms (the
	// pipeline's default is the compiled CSR kernel).
	obsCount := regexp.MustCompile(`upsim_pathdisc_nodes_visited_count\{algorithm="csr-dfs"\} ([1-9]\d*)`)
	if !obsCount.MatchString(exposition) {
		t.Errorf("nodes_visited observations missing:\n%s", grepLines(exposition, "upsim_pathdisc_nodes_visited_count"))
	}
	// The in-flight gauge exists and is settled back to zero.
	if !strings.Contains(exposition, "upsim_http_in_flight 0") {
		t.Errorf("in-flight gauge:\n%s", grepLines(exposition, "upsim_http_in_flight"))
	}
}

func grepLines(s, substr string) string {
	var out []string
	for _, l := range strings.Split(s, "\n") {
		if strings.Contains(l, substr) {
			out = append(out, l)
		}
	}
	if len(out) == 0 {
		return "(no lines match " + substr + ")"
	}
	return strings.Join(out, "\n")
}

func TestDebugVars(t *testing.T) {
	ts := httptest.NewServer(New())
	defer ts.Close()
	// Serve one request so the counters exist.
	if resp, _ := getBody(t, ts, "/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	resp, body := getBody(t, ts, "/debug/vars")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("debug/vars = %d", resp.StatusCode)
	}
	var vars map[string]any
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("debug/vars not JSON: %v", err)
	}
	if _, ok := vars["memstats"]; !ok {
		t.Error("expvar memstats missing")
	}
	upsim, ok := vars["upsim"].(map[string]any)
	if !ok {
		t.Fatalf("upsim snapshot missing: %v", vars["upsim"])
	}
	if _, ok := upsim["upsim_http_requests_total"]; !ok {
		t.Errorf("snapshot lacks request counter: %v", upsim)
	}
}

func TestRequestIDInjected(t *testing.T) {
	ts := httptest.NewServer(New())
	defer ts.Close()
	resp, _ := getBody(t, ts, "/healthz")
	if id := resp.Header.Get(RequestIDHeader); len(id) != 16 {
		t.Errorf("generated request id = %q", id)
	}
	// A caller-supplied ID is echoed back.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	req.Header.Set(RequestIDHeader, "caller-chose-this")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if id := resp2.Header.Get(RequestIDHeader); id != "caller-chose-this" {
		t.Errorf("echoed request id = %q", id)
	}
}

// TestPanicRecovery drives a panicking handler through the middleware and
// expects a JSON 500, a recorded panic metric, and a live server.
func TestPanicRecovery(t *testing.T) {
	before := mPanics.With("/panic").Value()
	h := instrument("/panic", func(http.ResponseWriter, *http.Request) {
		panic("boom")
	})
	ts := httptest.NewServer(h)
	defer ts.Close()
	resp, body := getBody(t, ts, "/")
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("panic status = %d, want 500", resp.StatusCode)
	}
	var e errorResponse
	if err := json.Unmarshal([]byte(body), &e); err != nil || !strings.Contains(e.Error, "internal server error") {
		t.Errorf("panic body = %q, err %v", body, err)
	}
	if got := mPanics.With("/panic").Value(); got != before+1 {
		t.Errorf("panics counter = %d, want %d", got, before+1)
	}
	// The server survives and keeps serving.
	resp2, _ := getBody(t, ts, "/")
	if resp2.StatusCode != http.StatusInternalServerError {
		t.Errorf("second panic status = %d", resp2.StatusCode)
	}
}

// TestPathsStatsInResponse covers the dropped-instrumentation satellite:
// the paths and generate endpoints report the discovery Stats.
func TestPathsStatsInResponse(t *testing.T) {
	ts := httptest.NewServer(New())
	defer ts.Close()
	modelXML, mappingXML := fetchArtifacts(t, ts)

	resp, body := postJSON(t, ts, "/api/v1/paths", map[string]any{
		"modelXml": modelXML,
		"diagram":  casestudy.DiagramName,
		"from":     "t1",
		"to":       "printS",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("paths = %d: %s", resp.StatusCode, body)
	}
	var pr pathsResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.PathCount != 2 || pr.NodesVisited == 0 || pr.MaxStack == 0 {
		t.Errorf("paths stats = %+v", pr)
	}
	if pr.NodesVisited != pr.EdgeVisits+1 {
		t.Errorf("nodesVisited = %d, edgeVisits = %d", pr.NodesVisited, pr.EdgeVisits)
	}

	resp, body = postJSON(t, ts, "/api/v1/generate", map[string]any{
		"modelXml":   modelXML,
		"diagram":    casestudy.DiagramName,
		"service":    casestudy.PrintingServiceName,
		"mappingXml": mappingXML,
		"name":       "stats-run",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("generate = %d: %s", resp.StatusCode, body)
	}
	var gr generateResponse
	if err := json.Unmarshal(body, &gr); err != nil {
		t.Fatal(err)
	}
	if len(gr.Services) == 0 || gr.EdgeVisits == 0 {
		t.Fatalf("generate stats missing: %+v", gr)
	}
	for _, s := range gr.Services {
		if s.AtomicService == "" || s.Requester == "" || s.Provider == "" {
			t.Errorf("incomplete service stats: %+v", s)
		}
		if s.Paths == 0 || s.EdgeVisits == 0 || s.NodesVisited == 0 {
			t.Errorf("zero stats for %q: %+v", s.AtomicService, s)
		}
	}
}
