package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"upsim/internal/casestudy"
	"upsim/internal/uml"
)

// fetchArtifacts grabs the built-in model and mapping through the API so
// the tests exercise the full loop.
func fetchArtifacts(t *testing.T, ts *httptest.Server) (modelXML, mappingXML string) {
	t.Helper()
	for _, ep := range []struct {
		path string
		dst  *string
	}{
		{"/api/v1/casestudy/model", &modelXML},
		{"/api/v1/casestudy/mapping", &mappingXML},
	} {
		resp, err := http.Get(ts.URL + ep.path)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d: %s", ep.path, resp.StatusCode, body)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/xml" {
			t.Errorf("GET %s content type = %q", ep.path, ct)
		}
		*ep.dst = string(body)
	}
	return modelXML, mappingXML
}

func postJSON(t *testing.T, ts *httptest.Server, path string, req any) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func TestHealth(t *testing.T) {
	ts := httptest.NewServer(New())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz = %d", resp.StatusCode)
	}
}

func TestCaseStudyArtifactsParse(t *testing.T) {
	ts := httptest.NewServer(New())
	defer ts.Close()
	modelXML, mappingXML := fetchArtifacts(t, ts)
	m, err := uml.Decode(strings.NewReader(modelXML))
	if err != nil {
		t.Fatalf("served model does not parse: %v", err)
	}
	if _, ok := m.Diagram(casestudy.DiagramName); !ok {
		t.Error("served model lacks the infrastructure diagram")
	}
	if !strings.Contains(mappingXML, "atomicservice") {
		t.Errorf("mapping XML = %q", mappingXML)
	}
}

func TestPathsEndpoint(t *testing.T) {
	ts := httptest.NewServer(New())
	defer ts.Close()
	modelXML, _ := fetchArtifacts(t, ts)
	resp, body := postJSON(t, ts, "/api/v1/paths", map[string]any{
		"modelXml": modelXML,
		"diagram":  casestudy.DiagramName,
		"from":     "t1",
		"to":       "printS",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("paths = %d: %s", resp.StatusCode, body)
	}
	var out struct {
		Paths      []string `json:"paths"`
		EdgeVisits int      `json:"edgeVisits"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Paths) != 2 {
		t.Errorf("paths = %v", out.Paths)
	}
	found := false
	for _, p := range out.Paths {
		if p == "t1—e1—d1—c1—d4—printS" {
			found = true
		}
	}
	if !found {
		t.Errorf("published path missing from %v", out.Paths)
	}
	if out.EdgeVisits == 0 {
		t.Error("edge visits missing")
	}
}

func TestGenerateEndpoint(t *testing.T) {
	ts := httptest.NewServer(New())
	defer ts.Close()
	modelXML, mappingXML := fetchArtifacts(t, ts)
	resp, body := postJSON(t, ts, "/api/v1/generate", map[string]any{
		"modelXml":   modelXML,
		"diagram":    casestudy.DiagramName,
		"service":    casestudy.PrintingServiceName,
		"mappingXml": mappingXML,
		"name":       "fig11",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("generate = %d: %s", resp.StatusCode, body)
	}
	var out struct {
		Name  string   `json:"name"`
		Nodes []string `json:"nodes"`
		Links []struct {
			A, B        string
			Association string
		} `json:"links"`
		Paths      map[string][]string `json:"pathsByService"`
		TotalPaths int                 `json:"totalPaths"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Name != "fig11" {
		t.Errorf("name = %q", out.Name)
	}
	if len(out.Nodes) != len(casestudy.Figure11Nodes) {
		t.Fatalf("nodes = %v", out.Nodes)
	}
	for i, want := range casestudy.Figure11Nodes {
		if out.Nodes[i] != want {
			t.Errorf("node[%d] = %s, want %s", i, out.Nodes[i], want)
		}
	}
	if len(out.Links) == 0 || out.TotalPaths == 0 {
		t.Error("links/paths missing")
	}
	if len(out.Paths["Request printing"]) != 2 {
		t.Errorf("Request printing paths = %v", out.Paths["Request printing"])
	}
}

func TestAvailabilityEndpoint(t *testing.T) {
	ts := httptest.NewServer(New())
	defer ts.Close()
	modelXML, mappingXML := fetchArtifacts(t, ts)
	resp, body := postJSON(t, ts, "/api/v1/availability", map[string]any{
		"modelXml":   modelXML,
		"diagram":    casestudy.DiagramName,
		"service":    casestudy.PrintingServiceName,
		"mappingXml": mappingXML,
		"mcSamples":  20000,
		"seed":       7,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("availability = %d: %s", resp.StatusCode, body)
	}
	var out availabilityResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Exact <= 0.98 || out.Exact >= 1 {
		t.Errorf("exact = %v", out.Exact)
	}
	if out.RBDApprox < out.Exact {
		t.Errorf("RBD %v below exact %v", out.RBDApprox, out.Exact)
	}
	if out.Components == 0 || out.DowntimePerYearHours <= 0 {
		t.Errorf("report incomplete: %+v", out)
	}
}

func TestBadRequests(t *testing.T) {
	ts := httptest.NewServer(New())
	defer ts.Close()
	modelXML, mappingXML := fetchArtifacts(t, ts)

	cases := []struct {
		name string
		path string
		req  map[string]any
		want int
	}{
		{"malformed json", "/api/v1/paths", nil, http.StatusBadRequest},
		{"missing model", "/api/v1/paths", map[string]any{"diagram": "x", "from": "a", "to": "b"}, http.StatusBadRequest},
		{"bad model xml", "/api/v1/paths", map[string]any{"modelXml": "<broken", "diagram": "x", "from": "a", "to": "b"}, http.StatusBadRequest},
		{"unknown diagram", "/api/v1/paths", map[string]any{"modelXml": modelXML, "diagram": "ghost", "from": "a", "to": "b"}, http.StatusBadRequest},
		{"unknown endpoint node", "/api/v1/paths", map[string]any{"modelXml": modelXML, "diagram": casestudy.DiagramName, "from": "ghost", "to": "printS"}, http.StatusBadRequest},
		{"unknown service", "/api/v1/generate", map[string]any{"modelXml": modelXML, "diagram": casestudy.DiagramName, "service": "ghost", "mappingXml": mappingXML}, http.StatusBadRequest},
		{"bad mapping xml", "/api/v1/generate", map[string]any{"modelXml": modelXML, "diagram": casestudy.DiagramName, "service": casestudy.PrintingServiceName, "mappingXml": "<broken"}, http.StatusBadRequest},
		{"unknown field", "/api/v1/paths", map[string]any{"modelXml": modelXML, "diagram": casestudy.DiagramName, "from": "t1", "to": "printS", "bogus": 1}, http.StatusBadRequest},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var resp *http.Response
			var body []byte
			if c.req == nil {
				r, err := http.Post(ts.URL+c.path, "application/json", strings.NewReader("{not json"))
				if err != nil {
					t.Fatal(err)
				}
				body, _ = io.ReadAll(r.Body)
				r.Body.Close()
				resp = r
			} else {
				resp, body = postJSON(t, ts, c.path, c.req)
			}
			if resp.StatusCode != c.want {
				t.Errorf("status = %d, want %d: %s", resp.StatusCode, c.want, body)
			}
			var e errorResponse
			if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
				t.Errorf("error body malformed: %s", body)
			}
		})
	}
}

func TestMethodRouting(t *testing.T) {
	ts := httptest.NewServer(New())
	defer ts.Close()
	// GET on a POST-only route 405s.
	resp, err := http.Get(ts.URL + "/api/v1/generate")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET generate = %d, want 405", resp.StatusCode)
	}
	// Unknown route 404s.
	resp, err = http.Get(ts.URL + "/api/v1/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown route = %d, want 404", resp.StatusCode)
	}
}

func TestQoSEndpoint(t *testing.T) {
	ts := httptest.NewServer(New())
	defer ts.Close()
	modelXML, mappingXML := fetchArtifacts(t, ts)
	resp, body := postJSON(t, ts, "/api/v1/qos", map[string]any{
		"modelXml":   modelXML,
		"diagram":    casestudy.DiagramName,
		"service":    casestudy.PrintingServiceName,
		"mappingXml": mappingXML,
		"maxHops":    5,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("qos = %d: %s", resp.StatusCode, body)
	}
	var out qosResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.ThroughputMbps != 100 {
		t.Errorf("throughput = %v, want 100", out.ThroughputMbps)
	}
	if out.MaxHops != 5 || out.PathsWithinBudget != 5 || out.PathsTotal != 10 {
		t.Errorf("responsiveness paths = %+v", out)
	}
	if out.Responsiveness <= 0 || out.Responsiveness > out.Availability {
		t.Errorf("responsiveness %v vs availability %v", out.Responsiveness, out.Availability)
	}
	// Default budget applies when absent.
	resp, body = postJSON(t, ts, "/api/v1/qos", map[string]any{
		"modelXml":   modelXML,
		"diagram":    casestudy.DiagramName,
		"service":    casestudy.PrintingServiceName,
		"mappingXml": mappingXML,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("qos default = %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.MaxHops != 8 {
		t.Errorf("default budget = %d, want 8", out.MaxHops)
	}
}

func TestLintEndpoint(t *testing.T) {
	ts := httptest.NewServer(New())
	defer ts.Close()
	modelXML, mappingXML := fetchArtifacts(t, ts)

	// Pristine case study: clean report.
	resp, body := postJSON(t, ts, "/api/v1/lint", map[string]any{
		"modelXml":   modelXML,
		"diagram":    casestudy.DiagramName,
		"service":    casestudy.PrintingServiceName,
		"mappingXml": mappingXML,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("lint = %d: %s", resp.StatusCode, body)
	}
	var out struct {
		Diagnostics []struct {
			Rule     string `json:"rule"`
			Severity string `json:"severity"`
			Element  string `json:"element"`
		} `json:"diagnostics"`
		Errors   int `json:"errors"`
		RulesRun int `json:"rulesRun"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Errors != 0 || len(out.Diagnostics) != 0 {
		t.Errorf("case study not clean: %s", body)
	}
	if out.RulesRun < 10 {
		t.Errorf("rulesRun = %d, want >= 10", out.RulesRun)
	}

	// A mapping with a dangling requester comes back 200 with the findings
	// in the body — lint reports defects, it does not reject the request.
	broken := strings.Replace(mappingXML, `"t1"`, `"ghost"`, 1)
	if broken == mappingXML {
		t.Fatalf("fixture mapping unexpectedly lacks t1: %s", mappingXML)
	}
	resp, body = postJSON(t, ts, "/api/v1/lint", map[string]any{
		"modelXml":   modelXML,
		"diagram":    casestudy.DiagramName,
		"service":    casestudy.PrintingServiceName,
		"mappingXml": broken,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("lint broken = %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Errors == 0 {
		t.Fatalf("dangling ref not reported: %s", body)
	}
	found := false
	for _, d := range out.Diagnostics {
		if d.Rule == "mapping-dangling-ref" && d.Severity == "error" {
			found = true
		}
	}
	if !found {
		t.Errorf("mapping-dangling-ref missing: %s", body)
	}
}

func TestLintEndpointBadRequests(t *testing.T) {
	ts := httptest.NewServer(New())
	defer ts.Close()
	modelXML, _ := fetchArtifacts(t, ts)
	cases := []struct {
		name string
		req  map[string]any
	}{
		{"missing model", map[string]any{"diagram": "x"}},
		{"bad model xml", map[string]any{"modelXml": "<broken"}},
		{"unknown diagram", map[string]any{"modelXml": modelXML, "diagram": "ghost"}},
		{"unknown service", map[string]any{"modelXml": modelXML, "service": "ghost"}},
		{"bad mapping xml", map[string]any{"modelXml": modelXML, "mappingXml": "<broken"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp, body := postJSON(t, ts, "/api/v1/lint", c.req)
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("status = %d: %s", resp.StatusCode, body)
			}
		})
	}
}
