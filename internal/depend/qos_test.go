package depend

import (
	"math"
	"strings"
	"testing"

	"upsim/internal/core"
	"upsim/internal/mapping"
	"upsim/internal/service"
	"upsim/internal/uml"
)

// qosFixture builds a diamond with heterogeneous link throughputs:
//
//	t — s1 — a — s2 — srv   (fast branch: 1000 except a—s2 at 100)
//	        s1 — b — s2     (slow branch: 10)
//
// The widest t→srv path is the fast branch, bottlenecked at 100.
func qosFixture(t *testing.T) *core.Result {
	t.Helper()
	m := uml.NewModel("qos")
	p := uml.NewProfile("availability")
	comp, _ := p.DefineAbstractStereotype("Component", uml.MetaclassNone)
	_ = comp.AddAttribute("MTBF", uml.KindReal)
	_ = comp.AddAttribute("MTTR", uml.KindReal)
	dev, _ := p.DefineSubStereotype("Device", uml.MetaclassClass, comp)
	conn, _ := p.DefineSubStereotype("Connector", uml.MetaclassAssociation, comp)
	if err := comp.AddAttribute("throughput", uml.KindReal); err != nil {
		// throughput lives on connectors only; declare on a second profile
		t.Fatal(err)
	}
	if err := m.AddProfile(p); err != nil {
		t.Fatal(err)
	}
	cls, _ := m.AddClass("Node")
	app, _ := cls.Apply(dev)
	_ = app.Set("MTBF", uml.RealValue(10000))
	_ = app.Set("MTTR", uml.RealValue(1))
	_ = app.Set("throughput", uml.RealValue(0)) // unused on devices

	mkAssoc := func(name string, tp float64) *uml.Association {
		a, _ := m.AddAssociation(name, cls, cls)
		capp, err := a.Apply(conn)
		if err != nil {
			t.Fatal(err)
		}
		_ = capp.Set("MTBF", uml.RealValue(1e6))
		_ = capp.Set("MTTR", uml.RealValue(0.1))
		_ = capp.Set("throughput", uml.RealValue(tp))
		return a
	}
	fast := mkAssoc("fast", 1000)
	mid := mkAssoc("mid", 100)
	slow := mkAssoc("slow", 10)

	d := m.NewObjectDiagram("infrastructure")
	for _, n := range []string{"t", "s1", "a", "b", "s2", "srv"} {
		if _, err := d.AddInstance(n, cls); err != nil {
			t.Fatal(err)
		}
	}
	mustLink := func(x, y string, as *uml.Association) {
		if _, err := d.ConnectByName(x, y, as); err != nil {
			t.Fatal(err)
		}
	}
	mustLink("t", "s1", fast)
	mustLink("s1", "a", fast)
	mustLink("a", "s2", mid)
	mustLink("s1", "b", slow)
	mustLink("b", "s2", slow)
	mustLink("s2", "srv", fast)

	svc, err := service.NewSequential(m, "xfer", "up", "down")
	if err != nil {
		t.Fatal(err)
	}
	mp := mapping.New()
	_ = mp.Add(mapping.Pair{AtomicService: "up", Requester: "t", Provider: "srv"})
	_ = mp.Add(mapping.Pair{AtomicService: "down", Requester: "srv", Provider: "t"})
	gen, err := core.NewGenerator(m, "infrastructure")
	if err != nil {
		t.Fatal(err)
	}
	res, err := gen.Generate(svc, mp, "u", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestThroughput(t *testing.T) {
	res := qosFixture(t)
	rep, err := Throughput(res)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.PerService) != 2 {
		t.Fatalf("per-service entries = %d", len(rep.PerService))
	}
	for _, at := range rep.PerService {
		// Widest path: via a, bottleneck 100 (not the slow branch's 10).
		if at.Bottleneck != 100 {
			t.Errorf("%s bottleneck = %v, want 100", at.AtomicService, at.Bottleneck)
		}
		if !strings.Contains(at.BestPath, "a") {
			t.Errorf("%s best path = %s, want the fast branch", at.AtomicService, at.BestPath)
		}
	}
	if rep.Service != 100 {
		t.Errorf("service throughput = %v, want 100", rep.Service)
	}
}

func TestThroughputErrors(t *testing.T) {
	if _, err := Throughput(nil); err == nil {
		t.Error("nil result should fail")
	}
	// A model without the throughput attribute is rejected with a pointed
	// error.
	res := analysisFixture(t, 1e6) // availability-only fixture
	if _, err := Throughput(res); err == nil || !strings.Contains(err.Error(), "throughput") {
		t.Errorf("missing throughput error = %v", err)
	}
}

func TestResponsiveness(t *testing.T) {
	res := qosFixture(t)
	// Budget 4 admits only the fast branch (4 hops); the slow branch (4
	// hops too: t-s1-b-s2-srv) — both are 4 hops. Use budget 3 to exclude
	// everything and 4 to include both.
	all, err := Responsiveness(res, ModelExact, 10)
	if err != nil {
		t.Fatal(err)
	}
	if all.PathsWithinBudget != all.PathsTotal {
		t.Errorf("budget 10 should keep all paths: %d/%d", all.PathsWithinBudget, all.PathsTotal)
	}
	if math.Abs(all.Responsiveness-all.Availability) > 1e-12 {
		t.Errorf("unrestricted responsiveness %v != availability %v", all.Responsiveness, all.Availability)
	}
	tight, err := Responsiveness(res, ModelExact, 3)
	if err != nil {
		t.Fatal(err)
	}
	if tight.Responsiveness != 0 {
		t.Errorf("budget 3 admits no path, responsiveness = %v", tight.Responsiveness)
	}
	if tight.PathsWithinBudget != 0 {
		t.Errorf("paths within budget = %d", tight.PathsWithinBudget)
	}
	if _, err := Responsiveness(res, ModelExact, 0); err == nil {
		t.Error("non-positive budget should fail")
	}
	if _, err := Responsiveness(nil, ModelExact, 3); err == nil {
		t.Error("nil result should fail")
	}
}

func TestResponsivenessMonotone(t *testing.T) {
	// Responsiveness is monotone in the budget and bounded by availability.
	res := analysisFixture(t, 1e6)
	prev := 0.0
	for hops := 1; hops <= 8; hops++ {
		rep, err := Responsiveness(res, ModelExact, hops)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Responsiveness+1e-12 < prev {
			t.Errorf("responsiveness not monotone at %d hops: %v < %v", hops, rep.Responsiveness, prev)
		}
		if rep.Responsiveness > rep.Availability+1e-12 {
			t.Errorf("responsiveness %v exceeds availability %v", rep.Responsiveness, rep.Availability)
		}
		prev = rep.Responsiveness
	}
	// Both diamond routes are 4 hops: budget 4 retains full availability,
	// budget 3 leaves nothing.
	rep3, _ := Responsiveness(res, ModelExact, 3)
	rep4, _ := Responsiveness(res, ModelExact, 4)
	if rep3.Responsiveness != 0 {
		t.Errorf("budget 3 responsiveness = %v, want 0", rep3.Responsiveness)
	}
	if math.Abs(rep4.Responsiveness-rep4.Availability) > 1e-12 {
		t.Errorf("budget 4 must retain full availability: %v vs %v",
			rep4.Responsiveness, rep4.Availability)
	}
}
