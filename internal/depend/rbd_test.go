package depend

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func mustA(t *testing.T, b Block) float64 {
	t.Helper()
	a, err := b.Availability()
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestBasicBlock(t *testing.T) {
	if got := mustA(t, Basic{Name: "c", A: 0.99}); got != 0.99 {
		t.Errorf("basic = %v", got)
	}
	if _, err := (Basic{Name: "bad", A: 1.5}).Availability(); err == nil {
		t.Error("availability > 1 should fail")
	}
	if _, err := (Basic{Name: "bad", A: -0.1}).Availability(); err == nil {
		t.Error("negative availability should fail")
	}
	if _, err := (Basic{Name: "nan", A: math.NaN()}).Availability(); err == nil {
		t.Error("NaN availability should fail")
	}
}

func TestSeriesParallel(t *testing.T) {
	s := Series{Basic{A: 0.9}, Basic{A: 0.8}}
	if got := mustA(t, s); math.Abs(got-0.72) > 1e-12 {
		t.Errorf("series = %v", got)
	}
	p := Parallel{Basic{A: 0.9}, Basic{A: 0.8}}
	if got := mustA(t, p); math.Abs(got-0.98) > 1e-12 {
		t.Errorf("parallel = %v", got)
	}
	// Nesting: the bridge-free diamond a-(b|c)-d.
	diamond := Series{
		Basic{Name: "a", A: 0.99},
		Parallel{Basic{Name: "b", A: 0.9}, Basic{Name: "c", A: 0.9}},
		Basic{Name: "d", A: 0.99},
	}
	want := 0.99 * (1 - 0.1*0.1) * 0.99
	if got := mustA(t, diamond); math.Abs(got-want) > 1e-12 {
		t.Errorf("diamond = %v, want %v", got, want)
	}
	if _, err := (Series{}).Availability(); err == nil {
		t.Error("empty series should fail")
	}
	if _, err := (Parallel{}).Availability(); err == nil {
		t.Error("empty parallel should fail")
	}
	if !strings.Contains(diamond.String(), "series(") || !strings.Contains(diamond.String(), "parallel(") {
		t.Errorf("String = %q", diamond.String())
	}
}

func TestKofN(t *testing.T) {
	blocks := []Block{Basic{A: 0.9}, Basic{A: 0.9}, Basic{A: 0.9}}
	// 2-of-3 with p=0.9: 3*0.81*0.1 + 0.729 = 0.972.
	k := KofN{K: 2, Blocks: blocks}
	if got := mustA(t, k); math.Abs(got-0.972) > 1e-12 {
		t.Errorf("2-of-3 = %v", got)
	}
	// 1-of-n == parallel; n-of-n == series.
	par := mustA(t, KofN{K: 1, Blocks: blocks})
	if math.Abs(par-mustA(t, Parallel(blocks))) > 1e-12 {
		t.Errorf("1-of-3 = %v != parallel", par)
	}
	ser := mustA(t, KofN{K: 3, Blocks: blocks})
	if math.Abs(ser-mustA(t, Series(blocks))) > 1e-12 {
		t.Errorf("3-of-3 = %v != series", ser)
	}
	// Heterogeneous probabilities.
	het := KofN{K: 2, Blocks: []Block{Basic{A: 0.5}, Basic{A: 0.6}, Basic{A: 0.7}}}
	got := mustA(t, het)
	manual := 0.5*0.6*(1-0.7) + 0.5*(1-0.6)*0.7 + (1-0.5)*0.6*0.7 + 0.5*0.6*0.7
	if math.Abs(got-manual) > 1e-12 {
		t.Errorf("heterogeneous 2-of-3 = %v, want %v", got, manual)
	}
	if _, err := (KofN{K: 0, Blocks: blocks}).Availability(); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := (KofN{K: 4, Blocks: blocks}).Availability(); err == nil {
		t.Error("k>n should fail")
	}
	if _, err := (KofN{K: 1}).Availability(); err == nil {
		t.Error("empty k-of-n should fail")
	}
	if !strings.Contains(k.String(), "2-of-3") {
		t.Errorf("String = %q", k.String())
	}
}

func TestErrorPropagation(t *testing.T) {
	bad := Basic{Name: "bad", A: 2}
	for _, b := range []Block{
		Series{bad}, Parallel{bad}, KofN{K: 1, Blocks: []Block{bad}},
	} {
		if _, err := b.Availability(); err == nil {
			t.Errorf("%T must propagate child errors", b)
		}
	}
}

// Properties: series ≤ min(child), parallel ≥ max(child), and all results
// stay within [0,1].
func TestBlockAlgebraProperties(t *testing.T) {
	norm := func(x uint16) float64 { return float64(x%1001) / 1000 }
	f := func(a, b, c uint16) bool {
		pa, pb, pc := norm(a), norm(b), norm(c)
		blocks := []Block{Basic{A: pa}, Basic{A: pb}, Basic{A: pc}}
		minP := math.Min(pa, math.Min(pb, pc))
		maxP := math.Max(pa, math.Max(pb, pc))
		s, err := Series(blocks).Availability()
		if err != nil || s < 0 || s > 1 || s > minP+1e-12 {
			return false
		}
		p, err := Parallel(blocks).Availability()
		if err != nil || p < 0 || p > 1 || p < maxP-1e-12 {
			return false
		}
		// k-of-n is monotone decreasing in k.
		prev := 1.0
		for k := 1; k <= 3; k++ {
			v, err := (KofN{K: k, Blocks: blocks}).Availability()
			if err != nil || v > prev+1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
