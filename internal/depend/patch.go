package depend

// This file implements incremental patching of the compiled dependability
// kernel — the depend half of the live-topology what-if engine (DESIGN.md
// §13) — plus the bounded small-cut query behind critical-component
// ranking.
//
// Removing a component from the infrastructure conditions the structure
// function on that component being permanently down: every path set that
// contains it is dead and drops out. That is a pure filter over the bitset
// path sets, so it patches in place; the interned universe (names, index,
// bitset width) is deliberately left untouched so that ids, packed
// availability vectors and previously-issued bitsets all stay valid.
// Additions are the other side of the compile-vs-patch boundary: a new
// component or link can create paths the original discovery never saw, so
// the owning UPSIM must be re-generated and the structure recompiled — the
// what-if engine routes additions to recompilation and counts them
// separately on /metrics.
//
// Patching is NOT safe concurrently with analyses; callers serialise, e.g.
// behind the what-if engine mutex.

import (
	"fmt"
	"math/bits"
	"sort"

	"upsim/internal/obs"
)

// mDependPatch counts in-place path-set filters applied to compiled
// structures.
var mDependPatch = obs.NewCounter("upsim_depend_patch_total",
	"Incremental component-removal patches applied to compiled dependability structures.")

// Has reports whether the component is part of the interned universe (the
// structure references it). The what-if engine uses this to skip services a
// failure cannot touch.
func (cs *CompiledStructure) Has(component string) bool {
	_, ok := cs.index[component]
	return ok
}

// PatchRemoveComponent conditions the structure on the named component
// being permanently failed: every path set containing it is dropped in
// place. The interned universe keeps the component (ids stay stable); it
// simply no longer appears in any set, exactly as if the filtered legacy
// structure had been recompiled (pinned by TestDependPatchEquivalence). If
// an atomic service loses its last path set the service can no longer
// work, and subsequent analyses fail with the same "no path sets" error a
// recompilation would report.
//
// It returns the number of path sets dropped. Removing a component that is
// not in the universe is an error.
func (cs *CompiledStructure) PatchRemoveComponent(component string) (int, error) {
	id, ok := cs.index[component]
	if !ok {
		return 0, fmt.Errorf(errFmtCompNotInStruct, component)
	}
	dropped := 0
	for i := range cs.atomics {
		a := &cs.atomics[i]
		kept := a.sets[:0]
		for _, s := range a.sets {
			if s.has(id) {
				dropped++
				continue
			}
			kept = append(kept, s)
		}
		a.sets = kept
	}
	// Recompute the patch-induced death error from scratch each time: a
	// recompilation blames the first empty atomic in declaration order, not
	// the first one that happened to die, so later removals may move the
	// blame earlier. Genuine pre-existing Validate errors are never
	// overwritten (sets only ever shrink, so they stay accurate).
	if cs.validErr == nil || cs.patchDead {
		cs.validErr, cs.patchDead = nil, false
		for _, a := range cs.atomics {
			if len(a.sets) == 0 {
				cs.validErr = fmt.Errorf("depend: atomic service %q has no path sets", a.name)
				cs.patchDead = true
				break
			}
		}
	}
	mDependPatch.With().Inc()
	return dropped, nil
}

// SmallCuts returns the minimal cut sets of size <= maxSize (1 or 2),
// found by direct bitset queries instead of the exponential transversal
// expansion — so it never trips the cut-set budget and is safe on
// structures whose full minimal-cut enumeration would explode. This powers
// the critical-component ranking of the what-if engine: size-1 cuts are
// single points of failure, size-2 cuts are the fragile pairs.
//
// A component c is a size-1 cut iff some atomic service has c in every
// path set. A pair {c, d} is a size-2 minimal cut iff some atomic service
// has c or d in every path set and neither alone is a cut. Components are
// emitted in ascending interned order, singles before pairs.
func (cs *CompiledStructure) SmallCuts(maxSize int) ([]PathSet, error) {
	if cs.validErr != nil {
		return nil, cs.validErr
	}
	if maxSize < 1 {
		return nil, nil
	}
	n := int32(len(cs.names))
	inter := make(bitset, cs.words)
	singles := make([]bool, n)
	for _, a := range cs.atomics {
		cs.intersectAll(inter, a.sets, -1)
		forEachBit(inter, n, func(c int32) { singles[c] = true })
	}
	var cuts []PathSet
	for c := int32(0); c < n; c++ {
		if singles[c] {
			cuts = append(cuts, PathSet{cs.names[c]})
		}
	}
	if maxSize < 2 {
		return cuts, nil
	}
	pairs := make(map[uint64]bool)
	for _, a := range cs.atomics {
		for c := int32(0); c < n; c++ {
			if singles[c] {
				continue
			}
			if !cs.intersectAll(inter, a.sets, c) {
				continue // every set contains c — would be a single, handled
			}
			forEachBit(inter, n, func(d int32) {
				if d > c && !singles[d] {
					pairs[uint64(c)<<32|uint64(d)] = true
				}
			})
		}
	}
	keys := make([]uint64, 0, len(pairs))
	for k := range pairs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		cuts = append(cuts, PathSet{cs.names[int32(k>>32)], cs.names[int32(k&0xffffffff)]})
	}
	return cuts, nil
}

// intersectAll fills inter with the bitwise AND of the sets that do not
// contain skip (skip < 0 keeps every set). It reports whether at least one
// set contributed.
//
//upsim:hotpath
func (cs *CompiledStructure) intersectAll(inter bitset, sets []bitset, skip int32) bool {
	for w := range inter {
		inter[w] = ^uint64(0)
	}
	any := false
	for _, s := range sets {
		if skip >= 0 && s.has(skip) {
			continue
		}
		any = true
		for w := range inter {
			inter[w] &= s[w]
		}
	}
	if !any {
		for w := range inter {
			inter[w] = 0
		}
	}
	return any
}

// forEachBit calls f for every set bit below n, in ascending order.
//
//upsim:hotpath
func forEachBit(b bitset, n int32, f func(int32)) {
	for w, word := range b {
		for word != 0 {
			i := int32(w<<6 + bits.TrailingZeros64(word))
			if i >= n {
				return
			}
			f(i)
			word &= word - 1
		}
	}
}
