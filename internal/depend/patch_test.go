package depend

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// filteredStructure is the recompile-side reference for
// PatchRemoveComponent: the legacy structure with every path set containing
// a removed component dropped.
func filteredStructure(s *ServiceStructure, removed map[string]bool) *ServiceStructure {
	out := &ServiceStructure{}
	for _, a := range s.AtomicServices {
		fa := AtomicStructure{Name: a.Name}
		for _, ps := range a.PathSets {
			dead := false
			for _, c := range ps {
				if removed[c] {
					dead = true
					break
				}
			}
			if !dead {
				fa.PathSets = append(fa.PathSets, ps)
			}
		}
		out.AtomicServices = append(out.AtomicServices, fa)
	}
	return out
}

// TestDependPatchEquivalence is the property test for the in-place bitset
// filter: over random structures and random removal sequences, a patched
// kernel must agree with a cold Compile of the filtered legacy structure on
// every analysis — values exactly, errors by message.
func TestDependPatchEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	for trial := 0; trial < 200; trial++ {
		s, avail := randomStructure(rng)
		cs := Compile(s)
		removed := map[string]bool{}
		comps := cs.Components()
		nRemove := 1 + rng.Intn(2)
		for r := 0; r < nRemove; r++ {
			c := comps[rng.Intn(len(comps))]
			if removed[c] {
				continue
			}
			removed[c] = true
			if _, err := cs.PatchRemoveComponent(c); err != nil {
				t.Fatalf("trial %d: PatchRemoveComponent(%q): %v", trial, c, err)
			}
		}
		fresh := Compile(filteredStructure(s, removed))

		wantExact, wantErr := fresh.Exact(avail)
		gotExact, gotErr := cs.Exact(avail)
		if (wantErr == nil) != (gotErr == nil) || (wantErr != nil && wantErr.Error() != gotErr.Error()) {
			t.Fatalf("trial %d removed=%v: Exact error mismatch: fresh=%v patched=%v", trial, removed, wantErr, gotErr)
		}
		if wantErr != nil {
			continue // structure died; every analysis fails identically
		}
		if !withinOneUlp(wantExact, gotExact) {
			t.Fatalf("trial %d removed=%v: Exact %v != %v", trial, removed, gotExact, wantExact)
		}

		wantIE, err1 := fresh.ExactInclusionExclusion(avail, 0)
		gotIE, err2 := cs.ExactInclusionExclusion(avail, 0)
		if err1 != nil || err2 != nil {
			t.Fatalf("trial %d: IE errors: %v / %v", trial, err1, err2)
		}
		if !withinOneUlp(wantIE, gotIE) {
			t.Fatalf("trial %d removed=%v: IE %v != %v", trial, removed, gotIE, wantIE)
		}

		wantCuts, err1 := fresh.MinimalCutSets(0)
		gotCuts, err2 := cs.MinimalCutSets(0)
		if err1 != nil || err2 != nil {
			t.Fatalf("trial %d: cut errors: %v / %v", trial, err1, err2)
		}
		if !reflect.DeepEqual(wantCuts, gotCuts) {
			t.Fatalf("trial %d removed=%v: cuts diverge:\nfresh:   %v\npatched: %v", trial, removed, wantCuts, gotCuts)
		}
	}
}

// TestPatchRemoveComponentReporting covers the non-property behaviour:
// dropped counts, unknown components, structure death.
func TestPatchRemoveComponentReporting(t *testing.T) {
	s := &ServiceStructure{AtomicServices: []AtomicStructure{
		{Name: "svc", PathSets: []PathSet{{"a", "b"}, {"c"}}},
	}}
	cs := Compile(s)
	if !cs.Has("a") || cs.Has("zz") {
		t.Fatal("Has misreports universe membership")
	}
	dropped, err := cs.PatchRemoveComponent("a")
	if err != nil || dropped != 1 {
		t.Fatalf("dropped=%d err=%v, want 1, nil", dropped, err)
	}
	if cs.Err() != nil {
		t.Fatalf("structure died early: %v", cs.Err())
	}
	if _, err := cs.PatchRemoveComponent("zz"); err == nil {
		t.Fatal("unknown component accepted")
	}
	dropped, err = cs.PatchRemoveComponent("c")
	if err != nil || dropped != 1 {
		t.Fatalf("dropped=%d err=%v, want 1, nil", dropped, err)
	}
	if cs.Err() == nil {
		t.Fatal("structure with no path sets did not die")
	}
	if _, err := cs.Exact(map[string]float64{"a": 1, "b": 1, "c": 1}); err == nil {
		t.Fatal("Exact on dead structure succeeded")
	}
}

// TestSmallCuts pins the bounded cut query against the full enumeration on
// random structures: SmallCuts(k) must equal the size<=k subset of
// MinimalCutSets (as unordered sets of sorted name-sets; the full
// enumeration orders cuts differently).
func TestSmallCuts(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 200; trial++ {
		s, _ := randomStructure(rng)
		cs := Compile(s)
		full, err := cs.MinimalCutSets(0)
		if err != nil {
			t.Fatalf("trial %d: MinimalCutSets: %v", trial, err)
		}
		for _, k := range []int{1, 2} {
			want := map[string]bool{}
			for _, cut := range full {
				if len(cut) <= k {
					want[strings.Join(cut, ",")] = true
				}
			}
			small, err := cs.SmallCuts(k)
			if err != nil {
				t.Fatalf("trial %d: SmallCuts(%d): %v", trial, k, err)
			}
			got := map[string]bool{}
			for _, cut := range small {
				if len(cut) > k {
					t.Fatalf("trial %d: SmallCuts(%d) emitted %v", trial, k, cut)
				}
				got[strings.Join(cut, ",")] = true
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("trial %d: SmallCuts(%d) = %v, want %v (full %v)", trial, k, small, want, full)
			}
		}
	}
}
