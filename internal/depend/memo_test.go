package depend

import (
	"testing"

	"upsim/internal/testutil"
)

// memoStructure builds a structure with enough shared components that the
// factoring recursion exercises memo hits, growth and collisions.
func memoStructure() *ServiceStructure {
	s := &ServiceStructure{}
	s.AtomicServices = []AtomicStructure{
		{Name: "a", PathSets: []PathSet{{"c1", "c2"}, {"c3", "c4"}, {"c5"}}},
		{Name: "b", PathSets: []PathSet{{"c2", "c3"}, {"c1", "c5"}}},
		{Name: "c", PathSets: []PathSet{{"c4", "c5"}, {"c1", "c3"}}},
	}
	return s
}

func memoAvail() map[string]float64 {
	return map[string]float64{"c1": 0.9, "c2": 0.95, "c3": 0.99, "c4": 0.97, "c5": 0.93}
}

// TestExactPackedMatchesLegacy pins the packed-memo factoring bit-identical
// to the legacy map engine on a structure with real memo sharing.
func TestExactPackedMatchesLegacy(t *testing.T) {
	s := memoStructure()
	avail := memoAvail()
	want, err := s.Exact(avail)
	if err != nil {
		t.Fatalf("legacy Exact: %v", err)
	}
	got, err := Compile(s).Exact(avail)
	if err != nil {
		t.Fatalf("compiled Exact: %v", err)
	}
	if got != want {
		t.Fatalf("compiled Exact = %v, legacy = %v (must be bit-identical)", got, want)
	}
}

// TestExactPackedZeroAllocsWarm asserts the tentpole target: once the pooled
// context's arenas and memo table have grown to the structure's working set,
// a full factoring allocates nothing.
func TestExactPackedZeroAllocsWarm(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("race instrumentation allocates; the guard asserts exact counts")
	}
	cs := Compile(memoStructure())
	pa, err := cs.packAvail(memoAvail())
	if err != nil {
		t.Fatalf("packAvail: %v", err)
	}
	cs.exactPacked(pa) // warm the pool
	allocs := testing.AllocsPerRun(50, func() { cs.exactPacked(pa) })
	if allocs != 0 {
		t.Fatalf("warm exactPacked allocates %.1f objects per run, want 0", allocs)
	}
}

// TestMemoTableLookupNoAllocs asserts no per-lookup key allocation: probing
// a populated table with staged keys is allocation-free, hit or miss.
func TestMemoTableLookupNoAllocs(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("race instrumentation allocates; the guard asserts exact counts")
	}
	var tab memoTable
	tab.reset()
	keys := make([][]uint64, 200)
	for i := range keys {
		keys[i] = []uint64{uint64(i), uint64(i * 3), uint64(i % 7)}
		h := hashWords(keys[i])
		off := tab.reserve(keys[i])
		tab.insert(h, off, int32(len(keys[i])), float64(i))
	}
	miss := []uint64{1 << 40, 2, 3}
	allocs := testing.AllocsPerRun(100, func() {
		for i, k := range keys {
			v, ok := tab.lookup(k, hashWords(k))
			if !ok || v != float64(i) {
				panic("lookup lost an entry")
			}
		}
		if _, ok := tab.lookup(miss, hashWords(miss)); ok {
			panic("phantom hit")
		}
	})
	if allocs != 0 {
		t.Fatalf("memo lookups allocate %.1f objects per run, want 0", allocs)
	}
}

// TestMemoTableCollisionSafety forces every key into one probe chain (equal
// hashes) and checks full-key comparison still distinguishes them.
func TestMemoTableCollisionSafety(t *testing.T) {
	var tab memoTable
	tab.reset()
	const h = uint64(12345) // deliberately identical for all keys
	keys := [][]uint64{{1}, {2}, {1, 2}, {2, 1}, {0, 0, 0}}
	for i, k := range keys {
		off := tab.reserve(k)
		tab.insert(h, off, int32(len(k)), float64(i+1))
	}
	for i, k := range keys {
		v, ok := tab.lookup(k, h)
		if !ok || v != float64(i+1) {
			t.Fatalf("key %v: got (%v, %v), want (%v, true)", k, v, ok, float64(i+1))
		}
	}
	if _, ok := tab.lookup([]uint64{9}, h); ok {
		t.Fatal("lookup of absent key with colliding hash reported a hit")
	}
}

// TestMemoTableGrowth inserts past several doublings and verifies every
// entry survives rehash with its key offsets intact.
func TestMemoTableGrowth(t *testing.T) {
	var tab memoTable
	tab.reset()
	const n = 1000
	for i := 0; i < n; i++ {
		k := []uint64{uint64(i), ^uint64(i)}
		h := hashWords(k)
		off := tab.reserve(k)
		tab.insert(h, off, 2, float64(i))
	}
	if len(tab.entries) < n {
		t.Fatalf("table did not grow: %d slots for %d entries", len(tab.entries), n)
	}
	for i := 0; i < n; i++ {
		k := []uint64{uint64(i), ^uint64(i)}
		v, ok := tab.lookup(k, hashWords(k))
		if !ok || v != float64(i) {
			t.Fatalf("entry %d lost after growth: got (%v, %v)", i, v, ok)
		}
	}
	tab.reset()
	if _, ok := tab.lookup([]uint64{0, ^uint64(0)}, hashWords([]uint64{0, ^uint64(0)})); ok {
		t.Fatal("reset table still answers lookups")
	}
}

// TestBuildKeyCanonical checks the packed key is invariant under set and
// atomic permutation — the equivalence the memo relies on.
func TestBuildKeyCanonical(t *testing.T) {
	cs := Compile(memoStructure())
	ctx := cs.getExactCtx()
	defer cs.putExactCtx(ctx)
	a := cs.atomics[0].sets
	b := cs.atomics[1].sets

	perm := func(f [][]bitset) []uint64 {
		ctx.buildKey(f)
		return append([]uint64(nil), ctx.keyTmp...)
	}
	k1 := perm([][]bitset{a, b})
	k2 := perm([][]bitset{b, a})
	k3 := perm([][]bitset{{a[2], a[0], a[1]}, b})
	if !equalWords(k1, k2) || !equalWords(k1, k3) {
		t.Fatalf("canonical key differs under permutation:\n%v\n%v\n%v", k1, k2, k3)
	}
	k4 := perm([][]bitset{a, a})
	if equalWords(k1, k4) {
		t.Fatal("distinct formulas share a key")
	}
}

func equalWords(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
