package depend

import (
	"context"
	"strings"
	"sync"
	"testing"
)

// TestInterningGoldenOrdering pins the observable contract of the interned
// component universe: Compile must preserve the legacy Components() ordering
// (sorted distinct IDs) exactly, including the synthetic link component IDs,
// so that bit order == name order and every downstream consumer (sensitivity
// aggregation, report tabulation) sees identical sequences from either
// kernel.
func TestInterningGoldenOrdering(t *testing.T) {
	st := &ServiceStructure{AtomicServices: []AtomicStructure{
		{Name: "fetch", PathSets: []PathSet{
			{"t1", LinkComponentID("sw", "t1", 0), "sw"},
			// Reversed endpoints: LinkComponentID must canonicalize.
			{"t1", LinkComponentID("t1", "c2", 4), "c2"},
		}},
		{Name: "deliver", PathSets: []PathSet{
			{"sw", LinkComponentID("sw", "c2", 11), "c2"},
		}},
	}}
	golden := []string{"c2", "c2--sw#11", "c2--t1#4", "sw", "sw--t1#0", "t1"}

	legacy := st.Components()
	cs := Compile(st)
	compiled := cs.Components()
	if len(legacy) != len(golden) || len(compiled) != len(golden) {
		t.Fatalf("legacy %v, compiled %v, want %v", legacy, compiled, golden)
	}
	for i := range golden {
		if legacy[i] != golden[i] {
			t.Errorf("legacy[%d] = %q, want %q", i, legacy[i], golden[i])
		}
		if compiled[i] != golden[i] {
			t.Errorf("compiled[%d] = %q, want %q", i, compiled[i], golden[i])
		}
	}
	if cs.NumComponents() != len(golden) || cs.Words() != 1 {
		t.Errorf("NumComponents = %d, Words = %d; want %d and 1",
			cs.NumComponents(), cs.Words(), len(golden))
	}
}

// TestLinkComponentIDSurvivesInterning asserts the link ID scheme round-trips
// through the compiled kernel on a real generation result: every interned
// link component still parses to its edge index, and re-encoding the parsed
// pieces (endpoints deliberately reversed) reproduces the interned name
// byte-for-byte.
func TestLinkComponentIDSurvivesInterning(t *testing.T) {
	res := analysisFixture(t, 1e6)
	st, cs, _, err := FromResult(res, ModelExact)
	if err != nil {
		t.Fatal(err)
	}
	legacy, compiled := st.Components(), cs.Components()
	if len(legacy) != len(compiled) {
		t.Fatalf("legacy %d components, compiled %d", len(legacy), len(compiled))
	}
	nLinks := len(res.Source.Links())
	links := 0
	for i, comp := range compiled {
		if comp != legacy[i] {
			t.Errorf("component[%d]: compiled %q != legacy %q", i, comp, legacy[i])
		}
		edgeID, isLink := parseLinkComponent(comp)
		if !isLink {
			continue
		}
		links++
		if edgeID < 0 || edgeID >= nLinks {
			t.Errorf("link %q: edge %d out of range [0,%d)", comp, edgeID, nLinks)
		}
		ends := strings.SplitN(strings.SplitN(comp, "#", 2)[0], "--", 2)
		if got := LinkComponentID(ends[1], ends[0], edgeID); got != comp {
			t.Errorf("round trip of %q = %q", comp, got)
		}
	}
	if links != 6 {
		t.Errorf("interned link components = %d, want 6", links)
	}
}

// TestConcurrentAnalysisSharedCompiled exercises one CompiledStructure (and
// its sync.Pool scratch arenas) from many goroutines at once, alongside
// concurrent AnalyzeContext pipelines over the same generation result. Run
// under -race this pins that the compiled kernel is safe for the server's
// concurrent request fan-out.
func TestConcurrentAnalysisSharedCompiled(t *testing.T) {
	res := analysisFixture(t, 1e6)
	st, cs, avail, err := FromResult(res, ModelExact)
	if err != nil {
		t.Fatal(err)
	}
	wantExact, err := st.Exact(avail)
	if err != nil {
		t.Fatal(err)
	}
	wantCuts, err := st.MinimalCutSets(0)
	if err != nil {
		t.Fatal(err)
	}
	wantRep, err := AnalyzeContext(context.Background(), res, ModelExact, 500, 1)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				got, err := cs.Exact(avail)
				if err != nil || got != wantExact {
					t.Errorf("worker %d: Exact = %v, %v; want %v", w, got, err, wantExact)
					return
				}
				cuts, err := cs.MinimalCutSets(0)
				if err != nil || len(cuts) != len(wantCuts) {
					t.Errorf("worker %d: MinimalCutSets = %d sets, %v; want %d", w, len(cuts), err, len(wantCuts))
					return
				}
				if _, _, err := cs.MonteCarloParallel(avail, 200, int64(w*100+i), 3); err != nil {
					t.Errorf("worker %d: MonteCarloParallel: %v", w, err)
					return
				}
				rep, err := AnalyzeContext(context.Background(), res, ModelExact, 500, 1)
				if err != nil || *rep != *wantRep {
					t.Errorf("worker %d: AnalyzeContext = %+v, %v; want %+v", w, rep, err, wantRep)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
