package depend

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// PathSet is one minimal path set: the component IDs that must all be
// available for one redundant path of an atomic service to work.
type PathSet []string

// AtomicStructure is the availability structure of one atomic service: it
// works iff at least one of its path sets is fully available. The path sets
// are exactly the paths Step 7 discovered, each expanded to its devices and
// connectors.
type AtomicStructure struct {
	Name     string
	PathSets []PathSet
}

// ServiceStructure is the structure function of a composite service: the
// service works iff every atomic service works (all actions of the activity
// diagram execute, Section V-A2). Components may be — and in practice are —
// shared between atomic services, so the structure is not series-parallel
// in general; Exact evaluates it by Shannon factoring.
type ServiceStructure struct {
	AtomicServices []AtomicStructure
}

// Validate checks structural sanity: at least one atomic service, each with
// at least one non-empty path set.
func (s *ServiceStructure) Validate() error {
	if len(s.AtomicServices) == 0 {
		return fmt.Errorf("depend: structure without atomic services")
	}
	for _, a := range s.AtomicServices {
		if a.Name == "" {
			return fmt.Errorf("depend: atomic structure without name")
		}
		if len(a.PathSets) == 0 {
			return fmt.Errorf("depend: atomic service %q has no path sets", a.Name)
		}
		for _, ps := range a.PathSets {
			if len(ps) == 0 {
				return fmt.Errorf("depend: atomic service %q has an empty path set", a.Name)
			}
		}
	}
	return nil
}

// Components returns the sorted distinct component IDs referenced by the
// structure.
func (s *ServiceStructure) Components() []string {
	seen := make(map[string]bool)
	for _, a := range s.AtomicServices {
		for _, ps := range a.PathSets {
			for _, c := range ps {
				seen[c] = true
			}
		}
	}
	out := make([]string, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

func checkAvail(s *ServiceStructure, avail map[string]float64) error {
	for _, c := range s.Components() {
		a, ok := avail[c]
		if !ok {
			return fmt.Errorf(errFmtNoAvailability, c)
		}
		if err := checkProb(a, "availability of "+c); err != nil {
			return err
		}
	}
	return nil
}

// Exact computes the service availability exactly under component
// independence, handling shared components across path sets and atomic
// services by Shannon factoring: condition on the most frequent component,
// simplify, recurse, memoize. The cost is exponential in the number of
// *shared* components in the worst case but is negligible for UPSIM-sized
// structures (the case study has 10 components and factors in microseconds).
func (s *ServiceStructure) Exact(avail map[string]float64) (float64, error) {
	if err := s.Validate(); err != nil {
		return 0, err
	}
	if err := checkAvail(s, avail); err != nil {
		return 0, err
	}
	f := newFormula(s)
	memo := make(map[string]float64)
	return factor(f, avail, memo), nil
}

// formula is the monotone AND-of-OR-of-AND normal form being factored.
// Invariants maintained by condition():
//   - no atomic has an empty path set list (that would be constant false),
//   - no path set is empty (that atomic would be constant true and removed).
type formula struct {
	atomics [][]PathSet
}

func newFormula(s *ServiceStructure) formula {
	f := formula{atomics: make([][]PathSet, 0, len(s.AtomicServices))}
	for _, a := range s.AtomicServices {
		sets := make([]PathSet, 0, len(a.PathSets))
		for _, ps := range a.PathSets {
			cp := append(PathSet(nil), ps...)
			sort.Strings(cp)
			sets = append(sets, cp)
		}
		f.atomics = append(f.atomics, sets)
	}
	return f
}

// key returns a canonical string for memoization.
func (f formula) key() string {
	parts := make([]string, 0, len(f.atomics))
	for _, sets := range f.atomics {
		ss := make([]string, 0, len(sets))
		for _, ps := range sets {
			ss = append(ss, strings.Join(ps, ","))
		}
		sort.Strings(ss)
		parts = append(parts, strings.Join(ss, ";"))
	}
	sort.Strings(parts)
	return strings.Join(parts, "&")
}

// mostFrequent returns the component appearing in the most path sets.
func (f formula) mostFrequent() string {
	count := make(map[string]int)
	for _, sets := range f.atomics {
		for _, ps := range sets {
			for _, c := range ps {
				count[c]++
			}
		}
	}
	best, bestN := "", -1
	for c, n := range count {
		if n > bestN || (n == bestN && c < best) {
			best, bestN = c, n
		}
	}
	return best
}

// condition returns f with component c fixed to up (true) or down (false).
// The second result is a constant override: 0 → formula is false, 1 →
// formula is true, -1 → use the returned formula.
func (f formula) condition(c string, up bool) (formula, int) {
	out := formula{atomics: make([][]PathSet, 0, len(f.atomics))}
	for _, sets := range f.atomics {
		var newSets []PathSet
		satisfied := false
		for _, ps := range sets {
			has := false
			for _, x := range ps {
				if x == c {
					has = true
					break
				}
			}
			switch {
			case !has:
				newSets = append(newSets, ps)
			case up:
				reduced := make(PathSet, 0, len(ps)-1)
				for _, x := range ps {
					if x != c {
						reduced = append(reduced, x)
					}
				}
				if len(reduced) == 0 {
					satisfied = true
				} else {
					newSets = append(newSets, reduced)
				}
			default:
				// Component down: the path set fails; drop it.
			}
			if satisfied {
				break
			}
		}
		if satisfied {
			continue // this atomic service is available for sure
		}
		if len(newSets) == 0 {
			return formula{}, 0 // some atomic service cannot work
		}
		out.atomics = append(out.atomics, newSets)
	}
	if len(out.atomics) == 0 {
		return formula{}, 1 // every atomic service is available for sure
	}
	return out, -1
}

func factor(f formula, avail map[string]float64, memo map[string]float64) float64 {
	key := f.key()
	if v, ok := memo[key]; ok {
		return v
	}
	c := f.mostFrequent()
	a := avail[c]
	var up, down float64
	if fUp, konst := f.condition(c, true); konst >= 0 {
		up = float64(konst)
	} else {
		up = factor(fUp, avail, memo)
	}
	if fDown, konst := f.condition(c, false); konst >= 0 {
		down = float64(konst)
	} else {
		down = factor(fDown, avail, memo)
	}
	v := a*up + (1-a)*down
	memo[key] = v
	return v
}

// RBDApprox evaluates the naive series-parallel RBD reading of the
// structure — series over atomic services, each a parallel arrangement of
// series paths — *ignoring component sharing*. It matches Exact when no
// component is shared and overestimates redundancy otherwise; the delta is
// one of the reported experiments (the reason [20]'s transformation needs
// care).
func (s *ServiceStructure) RBDApprox(avail map[string]float64) (float64, error) {
	if err := s.Validate(); err != nil {
		return 0, err
	}
	if err := checkAvail(s, avail); err != nil {
		return 0, err
	}
	b, err := s.ToRBD(avail)
	if err != nil {
		return 0, err
	}
	return b.Availability()
}

// ToRBD builds the series-parallel RBD of the structure: Series over atomic
// services of Parallel over path sets of Series over components.
func (s *ServiceStructure) ToRBD(avail map[string]float64) (Block, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if err := checkAvail(s, avail); err != nil {
		return nil, err
	}
	var svc Series
	for _, a := range s.AtomicServices {
		var par Parallel
		for _, ps := range a.PathSets {
			var ser Series
			for _, c := range ps {
				ser = append(ser, Basic{Name: c, A: avail[c]})
			}
			par = append(par, ser)
		}
		svc = append(svc, par)
	}
	return svc, nil
}

// MonteCarlo estimates the service availability by sampling component
// states. It returns the estimate and the standard error. Deterministic per
// seed.
func (s *ServiceStructure) MonteCarlo(avail map[string]float64, samples int, seed int64) (est, stderr float64, err error) {
	if err := s.Validate(); err != nil {
		return 0, 0, err
	}
	if err := checkAvail(s, avail); err != nil {
		return 0, 0, err
	}
	if samples < 1 {
		return 0, 0, fmt.Errorf(errFmtMonteCarloSamples, samples)
	}
	comps := s.Components()
	idx := make(map[string]int, len(comps))
	for i, c := range comps {
		idx[c] = i
	}
	// Pre-index path sets to component indexes for sampling speed.
	type atomicIdx struct{ sets [][]int }
	atomics := make([]atomicIdx, 0, len(s.AtomicServices))
	for _, a := range s.AtomicServices {
		var ai atomicIdx
		for _, ps := range a.PathSets {
			set := make([]int, len(ps))
			for i, c := range ps {
				set[i] = idx[c]
			}
			ai.sets = append(ai.sets, set)
		}
		atomics = append(atomics, ai)
	}
	rng := rand.New(rand.NewSource(seed))
	up := make([]bool, len(comps))
	good := 0
	for n := 0; n < samples; n++ {
		for i, c := range comps {
			up[i] = rng.Float64() < avail[c]
		}
		ok := true
		for _, a := range atomics {
			works := false
			for _, set := range a.sets {
				all := true
				for _, ci := range set {
					if !up[ci] {
						all = false
						break
					}
				}
				if all {
					works = true
					break
				}
			}
			if !works {
				ok = false
				break
			}
		}
		if ok {
			good++
		}
	}
	p := float64(good) / float64(samples)
	return p, math.Sqrt(p * (1 - p) / float64(samples)), nil
}

// MonteCarloParallel is MonteCarlo distributed over a worker pool: the
// sample budget is split into per-worker shards, each driven by its own
// deterministic sub-seed, and the shard counts are summed. For the same
// (samples, seed, workers) triple the estimate is reproducible; different
// worker counts resample but converge to the same value. workers < 1
// selects one worker per available CPU.
func (s *ServiceStructure) MonteCarloParallel(avail map[string]float64, samples int, seed int64, workers int) (est, stderr float64, err error) {
	if err := s.Validate(); err != nil {
		return 0, 0, err
	}
	if err := checkAvail(s, avail); err != nil {
		return 0, 0, err
	}
	if samples < 1 {
		return 0, 0, fmt.Errorf(errFmtMCParallelSamples, samples)
	}
	if workers < 1 {
		workers = runtime.NumCPU()
	}
	if workers > samples {
		workers = samples
	}
	type shard struct {
		good int
		n    int
		err  error
	}
	results := make(chan shard, workers)
	per := samples / workers
	extra := samples % workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		n := per
		if w < extra {
			n++
		}
		if n == 0 {
			continue
		}
		wg.Add(1)
		go func(n int, subSeed int64) {
			defer wg.Done()
			p, _, err := s.MonteCarlo(avail, n, subSeed)
			results <- shard{good: int(p*float64(n) + 0.5), n: n, err: err}
		}(n, seed+int64(w)*0x9E3779B9)
	}
	go func() {
		wg.Wait()
		close(results)
	}()
	good, total := 0, 0
	for r := range results {
		if r.err != nil {
			return 0, 0, r.err
		}
		good += r.good
		total += r.n
	}
	p := float64(good) / float64(total)
	return p, math.Sqrt(p * (1 - p) / float64(total)), nil
}

// Birnbaum returns the Birnbaum importance of a component: the partial
// derivative of the exact service availability with respect to the
// component's availability, i.e. A(service | comp up) − A(service | comp
// down). It ranks which UPSIM component matters most for the specific user
// perspective — the "quick overview on where the service problem might be
// caused" of the paper's conclusion, made quantitative.
func (s *ServiceStructure) Birnbaum(avail map[string]float64, component string) (float64, error) {
	if err := s.Validate(); err != nil {
		return 0, err
	}
	if err := checkAvail(s, avail); err != nil {
		return 0, err
	}
	found := false
	for _, c := range s.Components() {
		if c == component {
			found = true
			break
		}
	}
	if !found {
		return 0, fmt.Errorf(errFmtCompNotInStruct, component)
	}
	up := cloneAvail(avail)
	up[component] = 1
	down := cloneAvail(avail)
	down[component] = 0
	aUp, err := s.Exact(up)
	if err != nil {
		return 0, err
	}
	aDown, err := s.Exact(down)
	if err != nil {
		return 0, err
	}
	return aUp - aDown, nil
}

func cloneAvail(m map[string]float64) map[string]float64 {
	c := make(map[string]float64, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}
