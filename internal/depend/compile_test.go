package depend

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// withinOneUlp reports a == b up to one unit in the last place. The
// algebraic kernels are designed to be bit-identical (same operation
// order), so this is the ISSUE's acceptance bound with no slack to spare.
func withinOneUlp(a, b float64) bool {
	return a == b || math.Nextafter(a, b) == b
}

// randomStructureNames builds a component universe that exercises the
// canonical ordering edge cases: plain names, names where one is a prefix
// of another, and link-style ids containing '#' (which sorts below ',' and
// used to distinguish joined-string from element-wise comparison).
func randomStructureNames(rng *rand.Rand, n int) []string {
	pool := []string{
		"a", "ab", "a#1", "b", "b--c#0", "b--c#1", "cache", "ca", "db", "d",
		"lb", "link#9", "net", "n0", "n00", "www",
	}
	rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	if n > len(pool) {
		for i := len(pool); i < n; i++ {
			pool = append(pool, fmt.Sprintf("x%03d", i))
		}
	}
	return pool[:n]
}

// randomStructure returns a random service structure (path sets in random
// order, duplicate-free within a set) and a full availability map.
func randomStructure(rng *rand.Rand) (*ServiceStructure, map[string]float64) {
	nComp := 2 + rng.Intn(12)
	comps := randomStructureNames(rng, nComp)
	s := &ServiceStructure{}
	nAtomic := 1 + rng.Intn(3)
	for ai := 0; ai < nAtomic; ai++ {
		a := AtomicStructure{Name: fmt.Sprintf("svc%d", ai)}
		nSets := 1 + rng.Intn(3)
		for si := 0; si < nSets; si++ {
			perm := rng.Perm(nComp)
			k := 1 + rng.Intn(4)
			if k > nComp {
				k = nComp
			}
			ps := make(PathSet, 0, k)
			for _, ci := range perm[:k] {
				ps = append(ps, comps[ci])
			}
			a.PathSets = append(a.PathSets, ps)
		}
		s.AtomicServices = append(s.AtomicServices, a)
	}
	avail := make(map[string]float64, nComp)
	for _, c := range comps {
		switch rng.Intn(10) {
		case 0:
			avail[c] = 0
		case 1:
			avail[c] = 1
		default:
			avail[c] = rng.Float64()
		}
	}
	return s, avail
}

// checkCompiledEquivalence runs every analysis on both kernels and fails on
// the first divergence: sets must be identical including order, algebraic
// probabilities within 1 ulp, Monte Carlo estimates exactly equal, errors
// equal by message.
func checkCompiledEquivalence(t *testing.T, s *ServiceStructure, avail map[string]float64) {
	t.Helper()
	cs := Compile(s)

	wantComps := s.Components()
	if got := cs.Components(); !reflect.DeepEqual(got, wantComps) {
		t.Fatalf("Components: compiled %v, legacy %v", got, wantComps)
	}

	checkErr := func(what string, legacy, compiled error) bool {
		t.Helper()
		switch {
		case legacy == nil && compiled == nil:
			return false
		case legacy == nil || compiled == nil || legacy.Error() != compiled.Error():
			t.Fatalf("%s: error mismatch: legacy %v, compiled %v", what, legacy, compiled)
		}
		return true
	}

	lp, lerr := s.ServicePathSets(0)
	cp, cerr := cs.ServicePathSets(0)
	if !checkErr("ServicePathSets", lerr, cerr) && !reflect.DeepEqual(lp, cp) {
		t.Fatalf("ServicePathSets: legacy %v, compiled %v", lp, cp)
	}

	lc, lerr := s.MinimalCutSets(0)
	cc, cerr := cs.MinimalCutSets(0)
	if !checkErr("MinimalCutSets", lerr, cerr) && !reflect.DeepEqual(lc, cc) {
		t.Fatalf("MinimalCutSets: legacy %v, compiled %v", lc, cc)
	}

	lb, lerr := s.EsaryProschan(avail, 0)
	cb, cerr := cs.EsaryProschan(avail, 0)
	if !checkErr("EsaryProschan", lerr, cerr) &&
		(!withinOneUlp(lb.Lower, cb.Lower) || !withinOneUlp(lb.Upper, cb.Upper)) {
		t.Fatalf("EsaryProschan: legacy %+v, compiled %+v", lb, cb)
	}

	// Limit 14 keeps the 2^paths sum affordable for a property test; beyond
	// it both kernels must fail with the identical limit error.
	lie, lerr := s.ExactInclusionExclusion(avail, 14)
	cie, cerr := cs.ExactInclusionExclusion(avail, 14)
	if !checkErr("ExactInclusionExclusion", lerr, cerr) && !withinOneUlp(lie, cie) {
		t.Fatalf("ExactInclusionExclusion: legacy %.17g, compiled %.17g", lie, cie)
	}

	lex, lerr := s.Exact(avail)
	cex, cerr := cs.Exact(avail)
	if !checkErr("Exact", lerr, cerr) && !withinOneUlp(lex, cex) {
		t.Fatalf("Exact: legacy %.17g, compiled %.17g", lex, cex)
	}

	seed := int64(len(avail))*7919 + int64(len(s.AtomicServices))
	lmc, lse, lerr := s.MonteCarlo(avail, 500, seed)
	cmc, cse, cerr := cs.MonteCarlo(avail, 500, seed)
	if !checkErr("MonteCarlo", lerr, cerr) && (lmc != cmc || lse != cse) {
		t.Fatalf("MonteCarlo: legacy %v±%v, compiled %v±%v", lmc, lse, cmc, cse)
	}

	lmp, lpe, lerr := s.MonteCarloParallel(avail, 500, seed, 3)
	cmp, cpe, cerr := cs.MonteCarloParallel(avail, 500, seed, 3)
	if !checkErr("MonteCarloParallel", lerr, cerr) && (lmp != cmp || lpe != cpe) {
		t.Fatalf("MonteCarloParallel: legacy %v±%v, compiled %v±%v", lmp, lpe, cmp, cpe)
	}

	for _, c := range wantComps[:1] {
		lbi, lerr := s.Birnbaum(avail, c)
		cbi, cerr := cs.Birnbaum(avail, c)
		if !checkErr("Birnbaum", lerr, cerr) && !withinOneUlp(lbi, cbi) {
			t.Fatalf("Birnbaum(%q): legacy %.17g, compiled %.17g", c, lbi, cbi)
		}

		lfv, lerr := s.FussellVesely(avail, c)
		cfv, cerr := cs.FussellVesely(avail, c)
		if !checkErr("FussellVesely", lerr, cerr) && !withinOneUlp(lfv, cfv) {
			t.Fatalf("FussellVesely(%q): legacy %.17g, compiled %.17g", c, lfv, cfv)
		}

		lwi, lerr := s.WhatIf(avail, map[string]bool{c: false})
		cwi, cerr := cs.WhatIf(avail, map[string]bool{c: false})
		if !checkErr("WhatIf", lerr, cerr) && !withinOneUlp(lwi, cwi) {
			t.Fatalf("WhatIf(%q down): legacy %.17g, compiled %.17g", c, lwi, cwi)
		}
	}
}

// TestCompiledEquivalenceProperty pins the compiled kernel to the legacy
// map implementation on random structures — the depend analogue of PR 4's
// CSR ≡ legacy proof.
func TestCompiledEquivalenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for i := 0; i < 200; i++ {
		s, avail := randomStructure(rng)
		checkCompiledEquivalence(t, s, avail)
	}
}

// TestCompiledEquivalenceCaseStudy runs the equivalence check on the
// paper's case-study-shaped fixtures used elsewhere in the package.
func TestCompiledEquivalenceCaseStudy(t *testing.T) {
	simpleS, simpleAv := simpleStructure()
	sharedS, sharedAv := sharedStructure()
	for _, tc := range []struct {
		name string
		s    *ServiceStructure
		av   map[string]float64
	}{
		{"simple", simpleS, simpleAv},
		{"shared", sharedS, sharedAv},
	} {
		t.Run(tc.name, func(t *testing.T) {
			checkCompiledEquivalence(t, tc.s, tc.av)
		})
	}
}

// TestCompiledErrorParity checks that the compiled kernel reproduces the
// legacy error surfaces: invalid structures, missing availabilities,
// out-of-range probabilities, expansion limits, unknown components.
func TestCompiledErrorParity(t *testing.T) {
	s, av := sharedStructure()
	cs := Compile(s)

	sameErr := func(what string, legacy, compiled error) {
		t.Helper()
		if legacy == nil || compiled == nil || legacy.Error() != compiled.Error() {
			t.Fatalf("%s: legacy %v, compiled %v", what, legacy, compiled)
		}
	}

	// Invalid structure: the Validate error is preserved by Compile.
	bad := &ServiceStructure{AtomicServices: []AtomicStructure{{Name: "s"}}}
	cbad := Compile(bad)
	_, lerr := bad.ServicePathSets(0)
	_, cerr := cbad.ServicePathSets(0)
	sameErr("invalid structure", lerr, cerr)
	if cbad.Err() == nil {
		t.Fatalf("Err() should report the Validate failure")
	}

	// Missing availability.
	short := map[string]float64{"x": 0.9, "a": 0.8}
	_, lerr = s.Exact(short)
	_, cerr = cs.Exact(short)
	sameErr("missing avail", lerr, cerr)

	// Out-of-range probability.
	overAv := map[string]float64{"x": 0.9, "a": 1.5, "b": 0.8}
	_, lerr = s.Exact(overAv)
	_, cerr = cs.Exact(overAv)
	sameErr("bad prob", lerr, cerr)

	// Expansion limit on the cross product.
	_, lerr = s.ServicePathSets(1)
	_, cerr = cs.ServicePathSets(1)
	sameErr("pathset limit", lerr, cerr)

	// Transversal limit.
	_, lerr = s.MinimalCutSets(1)
	_, cerr = cs.MinimalCutSets(1)
	sameErr("cutset limit", lerr, cerr)

	// Inclusion–exclusion limit: needs more paths than the limit allows.
	wide := &ServiceStructure{AtomicServices: []AtomicStructure{{
		Name:     "w",
		PathSets: []PathSet{{"a"}, {"b"}, {"x"}},
	}}}
	cwide := Compile(wide)
	_, lerr = wide.ExactInclusionExclusion(av, 2)
	_, cerr = cwide.ExactInclusionExclusion(av, 2)
	sameErr("IE limit", lerr, cerr)

	// Unknown component in Birnbaum and WhatIf.
	_, lerr = s.Birnbaum(av, "ghost")
	_, cerr = cs.Birnbaum(av, "ghost")
	sameErr("Birnbaum unknown", lerr, cerr)
	_, lerr = s.WhatIf(av, map[string]bool{"ghost": true})
	_, cerr = cs.WhatIf(av, map[string]bool{"ghost": true})
	sameErr("WhatIf unknown", lerr, cerr)

	// Bad sample counts.
	_, _, lerr = s.MonteCarlo(av, 0, 1)
	_, _, cerr = cs.MonteCarlo(av, 0, 1)
	sameErr("MC samples", lerr, cerr)
	_, _, lerr = s.MonteCarloParallel(av, 0, 1, 2)
	_, _, cerr = cs.MonteCarloParallel(av, 0, 1, 2)
	sameErr("MCP samples", lerr, cerr)
}

// TestCompiledStructureWideUniverse exercises the multi-word bitset path
// (>64 components) that UPSIM-sized models never reach.
func TestCompiledStructureWideUniverse(t *testing.T) {
	s := &ServiceStructure{}
	avail := map[string]float64{}
	const n = 70
	// One two-component path set per atomic service: 70 components across 35
	// atomics keeps every expansion polynomial (a single path set has
	// singleton transversals) while every bitset spans two words.
	for i := 0; i < n; i += 2 {
		c1, c2 := fmt.Sprintf("w%03d", i), fmt.Sprintf("w%03d", i+1)
		s.AtomicServices = append(s.AtomicServices, AtomicStructure{
			Name:     fmt.Sprintf("wide%d", i/2),
			PathSets: []PathSet{{c1, c2}},
		})
		avail[c1] = 0.9
		avail[c2] = 0.99
	}
	checkCompiledEquivalence(t, s, avail)
	if cs := Compile(s); cs.words != 2 {
		t.Fatalf("structure spans %d words, want 2", cs.words)
	}
}

// FuzzCompiledKernel drives the equivalence check from a byte string: the
// fuzzer shapes the structure (component count, atomic/path-set layout) and
// the availability vector. Mirrors PR 4's FuzzCSR target.
func FuzzCompiledKernel(f *testing.F) {
	f.Add([]byte{3, 2, 1, 0, 1, 2, 50, 200, 128})
	f.Add([]byte{5, 1, 3, 0, 1, 2, 3, 4, 0, 255, 1, 9, 77})
	f.Add([]byte{12, 2, 2, 7, 8, 9, 10, 11, 0, 1, 2, 3, 4, 5, 6, 100})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			t.Skip()
		}
		pos := 0
		next := func() byte {
			b := data[pos%len(data)]
			pos++
			return b
		}
		nComp := 2 + int(next())%10
		comps := make([]string, nComp)
		for i := range comps {
			comps[i] = fmt.Sprintf("c%02d", i)
		}
		s := &ServiceStructure{}
		nAtomic := 1 + int(next())%3
		for ai := 0; ai < nAtomic; ai++ {
			a := AtomicStructure{Name: fmt.Sprintf("svc%d", ai)}
			nSets := 1 + int(next())%3
			for si := 0; si < nSets; si++ {
				k := 1 + int(next())%4
				seen := map[int]bool{}
				var ps PathSet
				for len(ps) < k {
					ci := int(next()) % nComp
					if seen[ci] {
						break // fuzzer chose a duplicate; keep the set short
					}
					seen[ci] = true
					ps = append(ps, comps[ci])
				}
				if len(ps) == 0 {
					ps = PathSet{comps[0]}
				}
				a.PathSets = append(a.PathSets, ps)
			}
			s.AtomicServices = append(s.AtomicServices, a)
		}
		avail := make(map[string]float64, nComp)
		for _, c := range comps {
			avail[c] = float64(next()) / 255
		}
		checkCompiledEquivalence(t, s, avail)
	})
}
