package depend

// This file implements the compiled dependability kernel: a one-time
// lowering of a ServiceStructure into interned integer component ids and
// []uint64 bitset path sets, over which the §VII analysis algorithms run
// without string hashing or per-candidate map allocation. Subset tests and
// transversal hits become AND/AND-NOT word operations, Minimalize compares
// popcounts and lowest differing bits instead of joined strings, the
// inclusion–exclusion sum keeps an incremental union (counts vector +
// presence bitset) across the binary subset enumeration, and Monte Carlo
// sampling evaluates the structure function word-wise against a bitset up
// vector. Every algorithm reproduces the legacy map implementation exactly:
// same sets in the same canonical (cardinality, then element-wise
// lexicographic) order, same error messages, and bit-identical floats —
// component ids are assigned in sorted-name order, so ascending-id bit
// iteration multiplies availabilities in exactly the order the legacy code
// does after its determinization. See DESIGN.md §10.

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"upsim/internal/obs"
)

// Compiled-kernel metrics: compilation events and the size of the most
// recent structure, exposed on /metrics next to the per-algorithm analysis
// histograms observed by AnalyzeContext.
var (
	mDependCompile = obs.NewCounter("upsim_depend_compile_total",
		"Service structures lowered to the bitset kernel.")
	mDependComponents = obs.NewGauge("upsim_depend_compiled_components",
		"Component count of the most recently compiled structure.")
)

// bitset is a fixed-width set of component ids, one bit per id.
type bitset []uint64

//upsim:hotpath bit ops, one per membership test in every analysis loop
func (b bitset) has(i int32) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

//upsim:hotpath
func (b bitset) set(i int32) { b[i>>6] |= 1 << (uint(i) & 63) }

// containsAll reports sub ⊆ super.
//
//upsim:hotpath
func containsAll(sub, super bitset) bool {
	for w, x := range sub {
		if x&^super[w] != 0 {
			return false
		}
	}
	return true
}

// intersects reports sub ∩ super ≠ ∅.
//
//upsim:hotpath
func intersects(a, b bitset) bool {
	for w, x := range a {
		if x&b[w] != 0 {
			return true
		}
	}
	return false
}

//upsim:hotpath
func popcount(b bitset) int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// compareBits orders bitsets by cardinality, then element-wise
// lexicographically on the sorted member sequence. For equal cardinality
// the first differing element is the lowest bit of the symmetric
// difference, and the set containing it sorts first — because ids are
// interned in sorted-name order this reproduces comparePathSets exactly.
//
//upsim:hotpath
func compareBits(a, b bitset) int {
	if ca, cb := popcount(a), popcount(b); ca != cb {
		return ca - cb
	}
	for w, x := range a {
		if d := x ^ b[w]; d != 0 {
			if x&(d&-d) != 0 {
				return -1
			}
			return 1
		}
	}
	return 0
}

// minimalizeBits is Minimalize on bitsets: sort canonically, drop adjacent
// duplicates, drop supersets of kept sets. It filters in place over the
// input slice header and returns a prefix-orderd new slice of survivors.
//
//upsim:hotpath
func minimalizeBits(sets []bitset) []bitset {
	sort.Slice(sets, func(i, j int) bool { return compareBits(sets[i], sets[j]) < 0 })
	// Preallocated at the only upper bound known without a second pass: every
	// candidate survives. Filtering into sets[:0] instead would clobber
	// sets[i-1], which the adjacent-duplicate check still reads.
	out := make([]bitset, 0, len(sets))
	for i, cand := range sets {
		if i > 0 && compareBits(sets[i-1], cand) == 0 {
			continue
		}
		dominated := false
		for _, kept := range out {
			if containsAll(kept, cand) {
				dominated = true
				break
			}
		}
		if dominated {
			continue
		}
		out = append(out, cand)
	}
	return out
}

// arenaChunk is the block size (in words) of the bitset scratch arena.
const arenaChunk = 4096

// bitArena is a bump allocator for transient bitsets (cross-product unions,
// transversal candidates). Blocks are recycled through the compiled
// structure's sync.Pool, so steady-state analysis allocates nothing per
// candidate. Allocated bitsets are only valid until the arena is returned.
type bitArena struct {
	blocks [][]uint64
	bi     int // current block
	off    int // next free word in current block
}

//upsim:hotpath
func (a *bitArena) reset() { a.bi, a.off = 0, 0 }

//upsim:hotpath bump allocation; amortised growth via chunked blocks only
func (a *bitArena) alloc(w int) bitset {
	if w == 0 {
		return nil
	}
	for {
		if a.bi == len(a.blocks) {
			n := arenaChunk
			if w > n {
				n = w
			}
			a.blocks = append(a.blocks, make([]uint64, n))
		}
		if blk := a.blocks[a.bi]; a.off+w <= len(blk) {
			b := blk[a.off : a.off+w : a.off+w]
			a.off += w
			for i := range b {
				b[i] = 0
			}
			return b
		}
		a.bi++
		a.off = 0
	}
}

// compiledAtomic is one atomic service in interned form: its path sets as
// bitsets, in the original declaration order.
type compiledAtomic struct {
	name string
	sets []bitset
}

// CompiledStructure is the interned, bitset form of a ServiceStructure,
// built once by Compile and reusable across any number of analyses. It is
// immutable after construction and safe for concurrent use; per-analysis
// scratch comes from an internal sync.Pool. Component ids are dense ints in
// sorted-name order, so ascending-id iteration visits components exactly as
// the legacy code's sorted Components() loops do.
type CompiledStructure struct {
	names   []string         // dense component id -> name (sorted)
	index   map[string]int32 // name -> dense component id
	words   int              // bitset width: ceil(len(names)/64)
	atomics []compiledAtomic

	validErr  error // Validate() result of the source structure, if any
	patchDead bool  // validErr was induced by PatchRemoveComponent (see patch.go)

	pool      sync.Pool // *bitArena
	exactPool sync.Pool // *exactCtx (memo table + factoring arenas, memo.go)
}

// Compile lowers s into its interned bitset form. An invalid structure
// still compiles (the component universe is well defined regardless); its
// Validate error is stored and returned by every analysis entry point,
// mirroring the legacy methods.
func Compile(s *ServiceStructure) *CompiledStructure {
	names := s.Components()
	cs := &CompiledStructure{
		names:    names,
		index:    make(map[string]int32, len(names)),
		words:    (len(names) + 63) / 64,
		validErr: s.Validate(),
	}
	for i, c := range names {
		cs.index[c] = int32(i)
	}
	cs.atomics = make([]compiledAtomic, 0, len(s.AtomicServices))
	for _, a := range s.AtomicServices {
		ca := compiledAtomic{name: a.Name, sets: make([]bitset, 0, len(a.PathSets))}
		for _, ps := range a.PathSets {
			b := make(bitset, cs.words)
			for _, c := range ps {
				b.set(cs.index[c])
			}
			ca.sets = append(ca.sets, b)
		}
		cs.atomics = append(cs.atomics, ca)
	}
	cs.pool.New = func() any { return new(bitArena) }
	cs.exactPool.New = func() any { return new(exactCtx) }
	mDependCompile.With().Inc()
	mDependComponents.With().Set(int64(len(names)))
	return cs
}

// Components returns the sorted distinct component ids of the structure —
// identical to the legacy ServiceStructure.Components.
func (cs *CompiledStructure) Components() []string {
	return append([]string(nil), cs.names...)
}

// NumComponents returns the size of the interned component universe.
func (cs *CompiledStructure) NumComponents() int { return len(cs.names) }

// Words returns the number of 64-bit words one packed component set spans.
func (cs *CompiledStructure) Words() int { return cs.words }

// Err returns the Validate error of the source structure, if any.
func (cs *CompiledStructure) Err() error { return cs.validErr }

func (cs *CompiledStructure) getArena() *bitArena {
	a := cs.pool.Get().(*bitArena)
	a.reset()
	return a
}

func (cs *CompiledStructure) putArena(a *bitArena) { cs.pool.Put(a) }

// packAvail lowers the availability map onto the dense id space, with the
// exact validation (and error messages) of the legacy checkAvail.
func (cs *CompiledStructure) packAvail(avail map[string]float64) ([]float64, error) {
	pa := make([]float64, len(cs.names))
	for i, c := range cs.names {
		a, ok := avail[c]
		if !ok {
			return nil, fmt.Errorf(errFmtNoAvailability, c)
		}
		if err := checkProb(a, "availability of "+c); err != nil {
			return nil, err
		}
		pa[i] = a
	}
	return pa, nil
}

// toPathSets converts bitsets back to sorted component-name sets, the
// boundary representation shared with the legacy API.
func (cs *CompiledStructure) toPathSets(sets []bitset) []PathSet {
	out := make([]PathSet, 0, len(sets))
	for _, b := range sets {
		ps := make(PathSet, 0, popcount(b))
		for w, word := range b {
			for word != 0 {
				i := w<<6 + bits.TrailingZeros64(word)
				ps = append(ps, cs.names[i])
				word &= word - 1
			}
		}
		out = append(out, ps)
	}
	return out
}

// ServicePathSets is the compiled form of ServiceStructure.ServicePathSets:
// the minimal path sets of the composite service, as the minimalised
// cross-product of the per-atomic path sets.
func (cs *CompiledStructure) ServicePathSets(limit int) ([]PathSet, error) {
	sets, ar, err := cs.servicePathBits(limit)
	if err != nil {
		return nil, err
	}
	out := cs.toPathSets(sets)
	cs.putArena(ar)
	return out, nil
}

// servicePathBits returns the minimal service path sets as arena-allocated
// bitsets; the caller must putArena the returned arena when done with them.
func (cs *CompiledStructure) servicePathBits(limit int) ([]bitset, *bitArena, error) {
	if cs.validErr != nil {
		return nil, nil, cs.validErr
	}
	if limit <= 0 {
		limit = DefaultSetLimit
	}
	raw := 1
	for _, a := range cs.atomics {
		raw *= len(a.sets)
		if raw > limit {
			return nil, nil, &BudgetError{Kind: BudgetServicePathSets, Need: raw, Limit: limit}
		}
	}
	ar := cs.getArena()
	unions := []bitset{ar.alloc(cs.words)}
	for _, a := range cs.atomics {
		next := make([]bitset, 0, len(unions)*len(a.sets))
		for _, u := range unions {
			for _, ps := range a.sets {
				nu := ar.alloc(cs.words)
				for w := range nu {
					nu[w] = u[w] | ps[w]
				}
				next = append(next, nu)
			}
		}
		unions = next
	}
	return minimalizeBits(unions), ar, nil
}

// MinimalCutSets is the compiled form of ServiceStructure.MinimalCutSets:
// minimal hitting sets of each atomic service's path sets, minimalised
// across atomic services.
func (cs *CompiledStructure) MinimalCutSets(limit int) ([]PathSet, error) {
	sets, ar, err := cs.minimalCutBits(limit)
	if err != nil {
		return nil, err
	}
	out := cs.toPathSets(sets)
	cs.putArena(ar)
	return out, nil
}

func (cs *CompiledStructure) minimalCutBits(limit int) ([]bitset, *bitArena, error) {
	if cs.validErr != nil {
		return nil, nil, cs.validErr
	}
	if limit <= 0 {
		limit = DefaultSetLimit
	}
	ar := cs.getArena()
	var all []bitset
	for _, a := range cs.atomics {
		cuts, err := transversalsBits(a.sets, cs.words, limit, ar)
		if err != nil {
			cs.putArena(ar)
			if be, ok := AsBudgetError(err); ok {
				return nil, nil, be.forAtomic(a.name)
			}
			return nil, nil, fmt.Errorf(errFmtAtomicService, a.name, err)
		}
		all = append(all, cuts...)
	}
	return minimalizeBits(all), ar, nil
}

// transversalsBits is the bitset transversal construction: extending a
// transversal is copy + one OR, the hit test is a word-AND, and all
// candidates live in the arena.
//
//upsim:hotpath
func transversalsBits(sets []bitset, words, limit int, ar *bitArena) ([]bitset, error) {
	cur := []bitset{ar.alloc(words)}
	for _, ps := range sets {
		next := make([]bitset, 0, len(cur))
		for _, t := range cur {
			if intersects(t, ps) {
				next = append(next, t)
				continue
			}
			for w, word := range ps {
				for word != 0 {
					low := word & -word
					nt := ar.alloc(words)
					copy(nt, t)
					nt[w] |= low
					next = append(next, nt)
					word &^= low
				}
			}
			if len(next) > limit {
				return nil, &BudgetError{Kind: BudgetTransversal, Limit: limit}
			}
		}
		cur = minimalizeBits(next)
	}
	return cur, nil
}

// EsaryProschan is the compiled form of ServiceStructure.EsaryProschan.
// Cut/path products run over ascending ids — the sorted component order of
// the legacy loops — so the bounds are bit-identical.
func (cs *CompiledStructure) EsaryProschan(avail map[string]float64, limit int) (Bounds, error) {
	pa, err := cs.packAvail(avail)
	if err != nil {
		return Bounds{}, err
	}
	paths, arPaths, err := cs.servicePathBits(limit)
	if err != nil {
		return Bounds{}, err
	}
	defer cs.putArena(arPaths)
	cuts, arCuts, err := cs.minimalCutBits(limit)
	if err != nil {
		return Bounds{}, err
	}
	defer cs.putArena(arCuts)
	lower := 1.0
	for _, k := range cuts {
		qAll := 1.0
		for w, word := range k {
			for word != 0 {
				qAll *= 1 - pa[w<<6+bits.TrailingZeros64(word)]
				word &= word - 1
			}
		}
		lower *= 1 - qAll
	}
	upperFail := 1.0
	for _, p := range paths {
		aAll := 1.0
		for w, word := range p {
			for word != 0 {
				aAll *= pa[w<<6+bits.TrailingZeros64(word)]
				word &= word - 1
			}
		}
		upperFail *= 1 - aAll
	}
	return Bounds{Lower: lower, Upper: 1 - upperFail}, nil
}

// ExactInclusionExclusion is the compiled form of
// ServiceStructure.ExactInclusionExclusion. Subsets are enumerated in the
// same ascending binary mask order as the legacy loop — not reflected Gray
// order, which would reorder the alternating-sign summation and break the
// 1-ulp equivalence bound — but the union is maintained incrementally: a
// mask increment toggles exactly the trailing-run paths (the binary-carry
// ruler sequence, amortised O(1) toggles per step), updating a per-component
// membership count vector and a presence bitset instead of rebuilding a map
// per subset. The availability product runs over present ids ascending,
// which is the determinized legacy order, so the sum is bit-identical.
func (cs *CompiledStructure) ExactInclusionExclusion(avail map[string]float64, limit int) (float64, error) {
	pa, err := cs.packAvail(avail)
	if err != nil {
		return 0, err
	}
	paths, ar, err := cs.servicePathBits(0)
	if err != nil {
		return 0, err
	}
	defer cs.putArena(ar)
	if limit <= 0 {
		limit = 20
	}
	n := len(paths)
	if n > limit {
		return 0, fmt.Errorf(errFmtInclExclLimit, n, limit)
	}
	counts := make([]int32, len(cs.names))
	present := make(bitset, cs.words)
	toggle := func(i int, add bool) {
		for w, word := range paths[i] {
			for word != 0 {
				c := w<<6 + bits.TrailingZeros64(word)
				if add {
					counts[c]++
					if counts[c] == 1 {
						present[w] |= word & -word
					}
				} else {
					counts[c]--
					if counts[c] == 0 {
						present[w] &^= word & -word
					}
				}
				word &= word - 1
			}
		}
	}
	total := 0.0
	for mask := 1; mask < 1<<uint(n); mask++ {
		// mask-1 → mask flips bits 0..k where k = trailing zeros of mask:
		// paths 0..k-1 leave the subset, path k enters it.
		k := bits.TrailingZeros(uint(mask))
		for i := 0; i < k; i++ {
			toggle(i, false)
		}
		toggle(k, true)
		prod := 1.0
		for w, word := range present {
			for word != 0 {
				prod *= pa[w<<6+bits.TrailingZeros64(word)]
				word &= word - 1
			}
		}
		if bits.OnesCount(uint(mask))%2 == 1 {
			total += prod
		} else {
			total -= prod
		}
	}
	return total, nil
}

// Exact is the compiled form of ServiceStructure.Exact: Shannon factoring
// with the same pivot rule (most frequent component, ties to the smallest
// name — here the smallest id) and a memo keyed on the canonical multiset
// encoding of the conditioned formula. Same pivots at every node means the
// same float expression tree, so the result is bit-identical to legacy.
func (cs *CompiledStructure) Exact(avail map[string]float64) (float64, error) {
	if cs.validErr != nil {
		return 0, cs.validErr
	}
	pa, err := cs.packAvail(avail)
	if err != nil {
		return 0, err
	}
	return cs.exactPacked(pa), nil
}

// exactPacked runs the Shannon factoring over pooled scratch: the top-level
// formula shares the immutable compiled set slices (conditioning never
// mutates its input), conditioned subformulas live in the context's arenas,
// and the memo is the packed open-addressing table of memo.go. Steady state
// allocates nothing.
//
//upsim:hotpath
func (cs *CompiledStructure) exactPacked(pa []float64) float64 {
	ctx := cs.getExactCtx()
	f := ctx.ffs.alloc(len(cs.atomics))
	for _, a := range cs.atomics {
		f = append(f, a.sets)
	}
	v := cs.factorBits(f, pa, ctx)
	cs.putExactCtx(ctx)
	return v
}

//upsim:hotpath the §VII factoring recursion, one call per expression node
func (cs *CompiledStructure) factorBits(f [][]bitset, pa []float64, ctx *exactCtx) float64 {
	h := ctx.buildKey(f)
	if v, ok := ctx.memo.lookup(ctx.keyTmp, h); ok {
		return v
	}
	// Reserve the key before recursing: the staging buffer is reused by
	// every deeper node, the arena copy is not.
	klen := int32(len(ctx.keyTmp))
	off := ctx.memo.reserve(ctx.keyTmp)
	c := mostFrequentBit(f, ctx.counts)
	a := pa[c]
	var up, down float64
	if fUp, konst := conditionBits(f, c, true, ctx); konst >= 0 {
		up = float64(konst)
	} else {
		up = cs.factorBits(fUp, pa, ctx)
	}
	if fDown, konst := conditionBits(f, c, false, ctx); konst >= 0 {
		down = float64(konst)
	} else {
		down = cs.factorBits(fDown, pa, ctx)
	}
	v := a*up + (1-a)*down
	ctx.memo.insert(h, off, klen, v)
	return v
}

// mostFrequentBit returns the component on the most path sets; ascending
// scan with strict improvement resolves ties to the smallest id, which is
// the smallest name — the legacy tie rule. counts is caller-owned scratch,
// one slot per component.
//
//upsim:hotpath
func mostFrequentBit(f [][]bitset, counts []int32) int32 {
	for i := range counts {
		counts[i] = 0
	}
	for _, sets := range f {
		for _, ps := range sets {
			for w, word := range ps {
				for word != 0 {
					counts[w<<6+bits.TrailingZeros64(word)]++
					word &= word - 1
				}
			}
		}
	}
	best, bestN := int32(0), int32(-1)
	for i, cnt := range counts {
		if cnt > bestN {
			best, bestN = int32(i), cnt
		}
	}
	return best
}

// conditionBits mirrors formula.condition on bitsets; the constant return
// has the same meaning (0 false, 1 true, -1 use formula). Output slices and
// reduced sets come from the context arenas and stay valid until the
// context is released; unconditioned sets are shared with the input.
//
//upsim:hotpath
func conditionBits(f [][]bitset, c int32, up bool, ctx *exactCtx) ([][]bitset, int) {
	w, bit := int(c>>6), uint64(1)<<(uint(c)&63)
	out := ctx.ffs.alloc(len(f))
	for _, sets := range f {
		newSets := ctx.fs.alloc(len(sets))
		satisfied := false
		for _, ps := range sets {
			switch {
			case ps[w]&bit == 0:
				newSets = append(newSets, ps)
			case up:
				reduced := ctx.ar.alloc(len(ps))
				copy(reduced, ps)
				reduced[w] &^= bit
				empty := true
				for _, x := range reduced {
					if x != 0 {
						empty = false
						break
					}
				}
				if empty {
					satisfied = true
				} else {
					newSets = append(newSets, reduced)
				}
			default:
				// Component down: the path set fails; drop it.
			}
			if satisfied {
				break
			}
		}
		if satisfied {
			continue
		}
		if len(newSets) == 0 {
			return nil, 0
		}
		out = append(out, newSets)
	}
	if len(out) == 0 {
		return nil, 1
	}
	return out, -1
}

// MonteCarlo is the compiled form of ServiceStructure.MonteCarlo. It draws
// the identical rand stream (one Float64 per component in sorted order per
// sample), so the estimate matches legacy exactly per seed; the structure
// function evaluates word-wise against a bitset up vector instead of
// per-component slice indexing behind a map lookup.
func (cs *CompiledStructure) MonteCarlo(avail map[string]float64, samples int, seed int64) (est, stderr float64, err error) {
	if cs.validErr != nil {
		return 0, 0, cs.validErr
	}
	pa, err := cs.packAvail(avail)
	if err != nil {
		return 0, 0, err
	}
	if samples < 1 {
		return 0, 0, fmt.Errorf(errFmtMonteCarloSamples, samples)
	}
	rng := rand.New(rand.NewSource(seed))
	up := make(bitset, cs.words)
	good := 0
	for n := 0; n < samples; n++ {
		for i := range up {
			up[i] = 0
		}
		for i := range pa {
			if rng.Float64() < pa[i] {
				up[i>>6] |= 1 << (uint(i) & 63)
			}
		}
		if cs.evalUp(up) {
			good++
		}
	}
	p := float64(good) / float64(samples)
	return p, math.Sqrt(p * (1 - p) / float64(samples)), nil
}

// evalUp evaluates the structure function: every atomic service needs some
// path set fully contained in the up vector.
//
//upsim:hotpath once per Monte-Carlo sample
func (cs *CompiledStructure) evalUp(up bitset) bool {
	for _, a := range cs.atomics {
		works := false
		for _, set := range a.sets {
			if containsAll(set, up) {
				works = true
				break
			}
		}
		if !works {
			return false
		}
	}
	return true
}

// MonteCarloParallel is the compiled form of
// ServiceStructure.MonteCarloParallel, with the identical shard split and
// sub-seed derivation, so (samples, seed, workers) reproduces the legacy
// estimate exactly.
func (cs *CompiledStructure) MonteCarloParallel(avail map[string]float64, samples int, seed int64, workers int) (est, stderr float64, err error) {
	if cs.validErr != nil {
		return 0, 0, cs.validErr
	}
	if _, err := cs.packAvail(avail); err != nil {
		return 0, 0, err
	}
	if samples < 1 {
		return 0, 0, fmt.Errorf(errFmtMCParallelSamples, samples)
	}
	if workers < 1 {
		workers = runtime.NumCPU()
	}
	if workers > samples {
		workers = samples
	}
	type shard struct {
		good int
		n    int
		err  error
	}
	results := make(chan shard, workers)
	per := samples / workers
	extra := samples % workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		n := per
		if w < extra {
			n++
		}
		if n == 0 {
			continue
		}
		wg.Add(1)
		go func(n int, subSeed int64) {
			defer wg.Done()
			p, _, err := cs.MonteCarlo(avail, n, subSeed)
			results <- shard{good: int(p*float64(n) + 0.5), n: n, err: err}
		}(n, seed+int64(w)*0x9E3779B9)
	}
	go func() {
		wg.Wait()
		close(results)
	}()
	good, total := 0, 0
	for r := range results {
		if r.err != nil {
			return 0, 0, r.err
		}
		good += r.good
		total += r.n
	}
	p := float64(good) / float64(total)
	return p, math.Sqrt(p * (1 - p) / float64(total)), nil
}

// WhatIf is the compiled form of ServiceStructure.WhatIf: exact availability
// with the given components forced up or down. As in legacy, a forced
// component must be a key of the availability map; forcing a component that
// is in the map but not in the structure is a no-op.
func (cs *CompiledStructure) WhatIf(avail map[string]float64, forced map[string]bool) (float64, error) {
	for c := range forced {
		if _, ok := avail[c]; !ok {
			return 0, fmt.Errorf(errFmtForcedNotInStruct, c)
		}
	}
	if cs.validErr != nil {
		return 0, cs.validErr
	}
	pa, err := cs.packAvail(avail)
	if err != nil {
		return 0, err
	}
	for c, up := range forced {
		id, ok := cs.index[c]
		if !ok {
			continue
		}
		if up {
			pa[id] = 1
		} else {
			pa[id] = 0
		}
	}
	return cs.exactPacked(pa), nil
}

// Birnbaum is the compiled form of ServiceStructure.Birnbaum.
func (cs *CompiledStructure) Birnbaum(avail map[string]float64, component string) (float64, error) {
	if cs.validErr != nil {
		return 0, cs.validErr
	}
	pa, err := cs.packAvail(avail)
	if err != nil {
		return 0, err
	}
	id, ok := cs.index[component]
	if !ok {
		return 0, fmt.Errorf(errFmtCompNotInStruct, component)
	}
	paUp := append([]float64(nil), pa...)
	paUp[id] = 1
	paDown := append([]float64(nil), pa...)
	paDown[id] = 0
	return cs.exactPacked(paUp) - cs.exactPacked(paDown), nil
}

// FussellVesely is the compiled form of ServiceStructure.FussellVesely.
func (cs *CompiledStructure) FussellVesely(avail map[string]float64, component string) (float64, error) {
	base, err := cs.Exact(avail)
	if err != nil {
		return 0, err
	}
	qSys := 1 - base
	if qSys == 0 {
		return 0, nil // a perfect system attributes no unavailability
	}
	perfect, err := cs.WhatIf(avail, map[string]bool{component: true})
	if err != nil {
		return 0, err
	}
	return ((1 - base) - (1 - perfect)) / qSys, nil
}
