package depend

import (
	"errors"
	"fmt"
)

// BudgetKind names which expansion budget a BudgetError reports.
type BudgetKind string

const (
	// BudgetServicePathSets is the cross-product bound of ServicePathSets:
	// the product of the per-atomic path counts exceeded the limit.
	BudgetServicePathSets BudgetKind = "service-path-sets"
	// BudgetTransversal is the intermediate transversal bound of
	// MinimalCutSets: one atomic service's hitting-set expansion exceeded
	// the limit.
	BudgetTransversal BudgetKind = "transversal"
)

// BudgetError reports an exhausted set-expansion budget. Both kernels
// (legacy and compiled) return it from ServicePathSets and MinimalCutSets,
// so callers can distinguish "the analysis is too large for this limit"
// from a malformed input and surface the offending atomic service and the
// budget that was hit — instead of parsing the error string. Error()
// reproduces the historical messages exactly; the kernel-parity tests pin
// legacy and compiled to identical strings.
type BudgetError struct {
	// Kind is the budget that was exhausted.
	Kind BudgetKind
	// AtomicService names the offending atomic service (transversal budget
	// only; the path-set cross product spans the whole composite).
	AtomicService string
	// Need is the required expansion size, when it is known up front
	// (path-set cross product only).
	Need int
	// Limit is the budget that was exceeded.
	Limit int
}

// Error renders the historical message for the budget kind.
func (e *BudgetError) Error() string {
	switch {
	case e.Kind == BudgetServicePathSets:
		return fmt.Sprintf("depend: service path-set expansion needs %d unions, limit %d", e.Need, e.Limit)
	case e.AtomicService != "":
		return fmt.Sprintf("depend: atomic service %q: transversal expansion exceeds limit %d", e.AtomicService, e.Limit)
	default:
		return fmt.Sprintf("transversal expansion exceeds limit %d", e.Limit)
	}
}

// forAtomic returns a copy of the error attributed to the named atomic
// service — the wrap point where MinimalCutSets prefixes the transversal
// message.
func (e *BudgetError) forAtomic(name string) *BudgetError {
	ne := *e
	ne.AtomicService = name
	return &ne
}

// AsBudgetError extracts a BudgetError from an error chain.
func AsBudgetError(err error) (*BudgetError, bool) {
	var be *BudgetError
	if errors.As(err, &be) {
		return be, true
	}
	return nil, false
}
