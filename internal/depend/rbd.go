package depend

import (
	"fmt"
	"math"
)

// Block is one node of a reliability block diagram. Evaluation assumes
// stochastically independent blocks; shared components across blocks make
// the RBD an approximation of the true structure function — use
// ServiceStructure.Exact for the exact value (the exact/RBD delta is one of
// the reported experiments).
type Block interface {
	// Availability returns the block's steady-state availability.
	Availability() (float64, error)
	// String renders the block structure.
	String() string
}

// Basic is a leaf block with a fixed availability, typically one UPSIM
// component evaluated via Formula 1.
type Basic struct {
	Name string
	A    float64
}

// Availability implements Block.
func (b Basic) Availability() (float64, error) {
	if err := checkProb(b.A, "availability of "+b.Name); err != nil {
		return 0, err
	}
	return b.A, nil
}

// String implements Block.
func (b Basic) String() string { return b.Name }

// Series is the serial composition: available iff every child is available.
type Series []Block

// Availability implements Block.
func (s Series) Availability() (float64, error) {
	if len(s) == 0 {
		return 0, fmt.Errorf("depend: empty series block")
	}
	a := 1.0
	for _, b := range s {
		ba, err := b.Availability()
		if err != nil {
			return 0, err
		}
		a *= ba
	}
	return a, nil
}

// String implements Block.
func (s Series) String() string { return renderBlocks("series", s) }

// Parallel is the redundant composition: available iff at least one child is
// available.
type Parallel []Block

// Availability implements Block.
func (p Parallel) Availability() (float64, error) {
	if len(p) == 0 {
		return 0, fmt.Errorf("depend: empty parallel block")
	}
	q := 1.0
	for _, b := range p {
		ba, err := b.Availability()
		if err != nil {
			return 0, err
		}
		q *= 1 - ba
	}
	return 1 - q, nil
}

// String implements Block.
func (p Parallel) String() string { return renderBlocks("parallel", p) }

// KofN is available iff at least K of its children are available. KofN with
// K=1 degenerates to Parallel, K=len to Series.
type KofN struct {
	K      int
	Blocks []Block
}

// Availability implements Block. Children may have heterogeneous
// availabilities; the evaluation uses the standard dynamic programming over
// "exactly j of the first i blocks available".
func (k KofN) Availability() (float64, error) {
	n := len(k.Blocks)
	if n == 0 {
		return 0, fmt.Errorf("depend: empty k-of-n block")
	}
	if k.K < 1 || k.K > n {
		return 0, fmt.Errorf("depend: k-of-n with k=%d, n=%d", k.K, n)
	}
	probs := make([]float64, n)
	for i, b := range k.Blocks {
		a, err := b.Availability()
		if err != nil {
			return 0, err
		}
		probs[i] = a
	}
	// dp[j] = P(exactly j of the blocks seen so far are available).
	dp := make([]float64, n+1)
	dp[0] = 1
	for i := 0; i < n; i++ {
		for j := i + 1; j >= 1; j-- {
			dp[j] = dp[j]*(1-probs[i]) + dp[j-1]*probs[i]
		}
		dp[0] *= 1 - probs[i]
	}
	sum := 0.0
	for j := k.K; j <= n; j++ {
		sum += dp[j]
	}
	// Clamp tiny floating error.
	return math.Min(1, math.Max(0, sum)), nil
}

// String implements Block.
func (k KofN) String() string {
	return fmt.Sprintf("%d-of-%d%s", k.K, len(k.Blocks), renderBlocks("", k.Blocks))
}

func renderBlocks(kind string, blocks []Block) string {
	out := kind + "("
	for i, b := range blocks {
		if i > 0 {
			out += ", "
		}
		out += b.String()
	}
	return out + ")"
}
