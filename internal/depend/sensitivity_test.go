package depend

import (
	"math"
	"testing"
)

func TestSensitivity(t *testing.T) {
	res := analysisFixture(t, 1e6)
	rep, err := Sensitivity(res)
	if err != nil {
		t.Fatal(err)
	}
	byClass := map[string]ClassSensitivity{}
	for _, cs := range rep.Classes {
		byClass[cs.Class] = cs
	}
	// Fixture classes: Client (t1), Switch (sw, c1, c2, sw2), Server (srv),
	// plus the three link associations.
	cl, ok := byClass["Client"]
	if !ok || cl.Instances != 1 {
		t.Fatalf("Client sensitivity = %+v", cl)
	}
	sw, ok := byClass["Switch"]
	if !ok || sw.Instances != 4 {
		t.Fatalf("Switch sensitivity = %+v (instances %d, want 4)", sw, sw.Instances)
	}
	// The client dominates: its MTBF derivative must exceed every other
	// class's even though four switches aggregate.
	for name, cs := range byClass {
		if name == "Client" {
			continue
		}
		if cs.DAvailDMTBF >= cl.DAvailDMTBF {
			t.Errorf("class %s dMTBF %v >= Client %v", name, cs.DAvailDMTBF, cl.DAvailDMTBF)
		}
	}
	// Derivative signs: MTBF helps, MTTR hurts.
	for _, cs := range rep.Classes {
		if cs.DAvailDMTBF < 0 {
			t.Errorf("class %s dMTBF = %v, want >= 0", cs.Class, cs.DAvailDMTBF)
		}
		if cs.DAvailDMTTR > 0 {
			t.Errorf("class %s dMTTR = %v, want <= 0", cs.Class, cs.DAvailDMTTR)
		}
	}
	// Ranking is by descending MTBF sensitivity.
	for i := 1; i < len(rep.Classes); i++ {
		if rep.Classes[i].DAvailDMTBF > rep.Classes[i-1].DAvailDMTBF {
			t.Error("report not sorted")
		}
	}
}

func TestSensitivityMatchesFiniteDifference(t *testing.T) {
	// Verify the analytic client derivative against a finite difference of
	// the exact availability.
	res := analysisFixture(t, 1e6)
	rep, err := Sensitivity(res)
	if err != nil {
		t.Fatal(err)
	}
	var client ClassSensitivity
	for _, cs := range rep.Classes {
		if cs.Class == "Client" {
			client = cs
		}
	}
	st, _, avail, err := FromResult(res, ModelExact)
	if err != nil {
		t.Fatal(err)
	}
	base, _ := st.Exact(avail)
	// Perturb the client's availability as a +1h MTBF change would.
	const mtbf, mttr = 3000.0, 24.0
	delta := 1.0
	aNew := (mtbf + delta) / (mtbf + delta + mttr)
	bumped := cloneAvail(avail)
	bumped["t1"] = aNew
	perturbed, _ := st.Exact(bumped)
	fd := (perturbed - base) / delta
	if math.Abs(fd-client.DAvailDMTBF) > 1e-9 {
		t.Errorf("finite difference %v vs analytic %v", fd, client.DAvailDMTBF)
	}
}

func TestParseLinkComponent(t *testing.T) {
	cases := []struct {
		in string
		id int
		ok bool
	}{
		{"a--b#7", 7, true},
		{"c1--d4#30", 30, true},
		{"t1", 0, false},
		{"weird#3", 0, false}, // no separator: a device name with a hash
		{"a--b#", 0, false},   // missing id
		{"a--b#x1", 0, false}, // non-numeric id
		{"a--b", 0, false},    // no hash
	}
	for _, c := range cases {
		id, ok := parseLinkComponent(c.in)
		if id != c.id || ok != c.ok {
			t.Errorf("parseLinkComponent(%q) = %d, %v; want %d, %v", c.in, id, ok, c.id, c.ok)
		}
	}
}

func TestSensitivityErrors(t *testing.T) {
	if _, err := Sensitivity(nil); err == nil {
		t.Error("nil result should fail")
	}
}
