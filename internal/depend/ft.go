package depend

import (
	"fmt"
)

// Fault trees are the failure-space dual of RBDs: the top event is "the
// service is unavailable". Section VII lists the fault tree as the second
// analysis target for a generated UPSIM; this file provides the gate algebra
// and the structure-to-FT transformation.

// FTNode is one node of a fault tree. Probability evaluates the node's
// failure probability assuming independent basic events; as with RBDs,
// repeated basic events make the result an approximation (exact analysis
// goes through ServiceStructure.Exact).
type FTNode interface {
	// Probability returns the probability of the node's event.
	Probability() (float64, error)
	// String renders the node.
	String() string
}

// BasicEvent is a leaf failure event with probability Q (typically the
// unavailability 1 − A of an UPSIM component).
type BasicEvent struct {
	Name string
	Q    float64
}

// Probability implements FTNode.
func (b BasicEvent) Probability() (float64, error) {
	if err := checkProb(b.Q, "failure probability of "+b.Name); err != nil {
		return 0, err
	}
	return b.Q, nil
}

// String implements FTNode.
func (b BasicEvent) String() string { return b.Name }

// AndGate fires iff all inputs fire (redundancy: everything must fail).
type AndGate []FTNode

// Probability implements FTNode.
func (g AndGate) Probability() (float64, error) {
	if len(g) == 0 {
		return 0, fmt.Errorf("depend: empty AND gate")
	}
	p := 1.0
	for _, in := range g {
		q, err := in.Probability()
		if err != nil {
			return 0, err
		}
		p *= q
	}
	return p, nil
}

// String implements FTNode.
func (g AndGate) String() string { return renderGate("AND", g) }

// OrGate fires iff any input fires (a series dependency: one failure
// suffices).
type OrGate []FTNode

// Probability implements FTNode.
func (g OrGate) Probability() (float64, error) {
	if len(g) == 0 {
		return 0, fmt.Errorf("depend: empty OR gate")
	}
	pNone := 1.0
	for _, in := range g {
		q, err := in.Probability()
		if err != nil {
			return 0, err
		}
		pNone *= 1 - q
	}
	return 1 - pNone, nil
}

// String implements FTNode.
func (g OrGate) String() string { return renderGate("OR", g) }

// VoteGate fires iff at least K inputs fire.
type VoteGate struct {
	K      int
	Inputs []FTNode
}

// Probability implements FTNode.
func (g VoteGate) Probability() (float64, error) {
	n := len(g.Inputs)
	if n == 0 {
		return 0, fmt.Errorf("depend: empty VOTE gate")
	}
	if g.K < 1 || g.K > n {
		return 0, fmt.Errorf("depend: VOTE gate with k=%d, n=%d", g.K, n)
	}
	// Reuse the k-of-n dynamic program on failure probabilities.
	blocks := make([]Block, n)
	for i, in := range g.Inputs {
		q, err := in.Probability()
		if err != nil {
			return 0, err
		}
		blocks[i] = Basic{Name: in.String(), A: q}
	}
	return KofN{K: g.K, Blocks: blocks}.Availability()
}

// String implements FTNode.
func (g VoteGate) String() string {
	return fmt.Sprintf("VOTE[%d/%d]%s", g.K, len(g.Inputs), renderGate("", g.Inputs))
}

func renderGate(kind string, inputs []FTNode) string {
	out := kind + "("
	for i, in := range inputs {
		if i > 0 {
			out += ", "
		}
		out += in.String()
	}
	return out + ")"
}

// ToFaultTree transforms the service structure into its fault tree: the
// service fails (top OR) iff some atomic service fails; an atomic service
// fails (AND) iff every one of its redundant paths fails; a path fails (OR)
// iff any of its components fails. By construction the FT is the exact dual
// of ToRBD: Probability(top) == 1 − RBDApprox under the same independence
// assumption, which the tests verify.
func (s *ServiceStructure) ToFaultTree(avail map[string]float64) (FTNode, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if err := checkAvail(s, avail); err != nil {
		return nil, err
	}
	var top OrGate
	for _, a := range s.AtomicServices {
		var atomicFails AndGate
		for _, ps := range a.PathSets {
			var pathFails OrGate
			for _, c := range ps {
				pathFails = append(pathFails, BasicEvent{Name: c, Q: 1 - avail[c]})
			}
			atomicFails = append(atomicFails, pathFails)
		}
		top = append(top, atomicFails)
	}
	return top, nil
}
