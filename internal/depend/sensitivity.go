package depend

import (
	"fmt"
	"sort"

	"upsim/internal/core"
)

// Section VII highlights that "changes to intrinsic properties of network
// devices (MTBF, redundant components, manufacturer, etc.) can be performed
// directly in the class description and so reflect to all objects in the
// service infrastructure model". This file quantifies that lever: the
// sensitivity of the user-perceived service availability to each *class's*
// MTBF and MTTR, aggregated over every instance of the class in the UPSIM.
// It answers the procurement question "which hardware class is worth
// upgrading for this user?".

// ClassSensitivity is the sensitivity record for one component class.
type ClassSensitivity struct {
	// Class is the class (or association) name.
	Class string
	// Instances counts the UPSIM components of this class on discovered
	// paths.
	Instances int
	// DAvailDMTBF is ∂A_service/∂MTBF_class in 1/hours: the availability
	// gained per additional hour of class MTBF.
	DAvailDMTBF float64
	// DAvailDMTTR is ∂A_service/∂MTTR_class in 1/hours (negative: longer
	// repairs hurt).
	DAvailDMTTR float64
}

// SensitivityReport ranks classes by |∂A/∂MTBF|.
type SensitivityReport struct {
	Classes []ClassSensitivity
}

// Sensitivity computes the class-level availability sensitivities for a
// generation result. For every component the chain rule gives
//
//	∂A_sys/∂MTBF_c = Σ_{i : class(i)=c} Birnbaum_i · ∂A_i/∂MTBF
//	∂A_i/∂MTBF     = MTTR / (MTBF+MTTR)²
//	∂A_i/∂MTTR     = −MTBF / (MTBF+MTTR)²
//
// using the exact (Formula-free) component availability; Birnbaum factors
// come from the exact structure-function engine. Devices aggregate by class
// name, links by association name.
func Sensitivity(res *core.Result) (*SensitivityReport, error) {
	st, cs, avail, err := FromResult(res, ModelExact)
	if err != nil {
		return nil, err
	}
	links := res.Source.Links()
	type rates struct {
		mtbf, mttr float64
	}
	// Resolve every structure component to its class and failure data.
	classOf := make(map[string]string)
	rateOf := make(map[string]rates)
	for _, comp := range st.Components() {
		if edgeID, isLink := parseLinkComponent(comp); isLink {
			if edgeID < 0 || edgeID >= len(links) {
				return nil, fmt.Errorf("depend: link component %q references unknown edge", comp)
			}
			l := links[edgeID]
			mtbf, _ := l.Property("MTBF")
			mttr, _ := l.Property("MTTR")
			classOf[comp] = l.Association().Name()
			rateOf[comp] = rates{mtbf: mtbf.AsReal(), mttr: mttr.AsReal()}
			continue
		}
		inst, ok := res.Source.Instance(comp)
		if !ok {
			return nil, fmt.Errorf("depend: component %q not in source diagram", comp)
		}
		mtbf, _ := inst.Property("MTBF")
		mttr, _ := inst.Property("MTTR")
		classOf[comp] = inst.Classifier().Name()
		rateOf[comp] = rates{mtbf: mtbf.AsReal(), mttr: mttr.AsReal()}
	}

	agg := make(map[string]*ClassSensitivity)
	for _, comp := range st.Components() {
		b, err := cs.Birnbaum(avail, comp)
		if err != nil {
			return nil, err
		}
		r := rateOf[comp]
		denom := (r.mtbf + r.mttr) * (r.mtbf + r.mttr)
		if denom == 0 {
			return nil, fmt.Errorf("depend: component %q has zero MTBF+MTTR", comp)
		}
		cls := classOf[comp]
		cs, ok := agg[cls]
		if !ok {
			cs = &ClassSensitivity{Class: cls}
			agg[cls] = cs
		}
		cs.Instances++
		cs.DAvailDMTBF += b * r.mttr / denom
		cs.DAvailDMTTR -= b * r.mtbf / denom
	}
	rep := &SensitivityReport{}
	for _, cs := range agg {
		rep.Classes = append(rep.Classes, *cs)
	}
	sort.Slice(rep.Classes, func(i, j int) bool {
		a, b := rep.Classes[i], rep.Classes[j]
		if a.DAvailDMTBF != b.DAvailDMTBF {
			return a.DAvailDMTBF > b.DAvailDMTBF
		}
		return a.Class < b.Class
	})
	return rep, nil
}

// ParseLinkComponentID recognises the LinkComponentID format "a--b#<edge>"
// and returns the source-diagram edge index. ok is false for device
// components (plain instance names).
func ParseLinkComponentID(comp string) (edgeID int, ok bool) {
	return parseLinkComponent(comp)
}

// parseLinkComponent recognises the LinkComponentID format "a--b#<edge>".
func parseLinkComponent(comp string) (edgeID int, ok bool) {
	hash := -1
	for i := len(comp) - 1; i >= 0; i-- {
		if comp[i] == '#' {
			hash = i
			break
		}
	}
	if hash < 0 || !containsSep(comp[:hash]) {
		return 0, false
	}
	id := 0
	if hash == len(comp)-1 {
		return 0, false
	}
	for _, c := range comp[hash+1:] {
		if c < '0' || c > '9' {
			return 0, false
		}
		id = id*10 + int(c-'0')
	}
	return id, true
}

func containsSep(s string) bool {
	for i := 0; i+1 < len(s); i++ {
		if s[i] == '-' && s[i+1] == '-' {
			return true
		}
	}
	return false
}
