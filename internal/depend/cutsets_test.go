package depend

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func pathSetStrings(sets []PathSet) []string {
	out := make([]string, 0, len(sets))
	for _, s := range sets {
		out = append(out, strings.Join(s, ","))
	}
	return out
}

func TestServicePathSets(t *testing.T) {
	st, _ := sharedStructure() // one atomic: {x,a}, {x,b}
	sets, err := st.ServicePathSets(0)
	if err != nil {
		t.Fatal(err)
	}
	got := pathSetStrings(sets)
	if len(got) != 2 || got[0] != "a,x" || got[1] != "b,x" {
		t.Errorf("ServicePathSets = %v", got)
	}
	// Two atomics sharing a single path collapse to one service path set.
	st2 := &ServiceStructure{AtomicServices: []AtomicStructure{
		{Name: "s1", PathSets: []PathSet{{"a", "b"}}},
		{Name: "s2", PathSets: []PathSet{{"a", "b"}}},
	}}
	sets2, err := st2.ServicePathSets(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sets2) != 1 || strings.Join(sets2[0], ",") != "a,b" {
		t.Errorf("collapsed service path sets = %v", pathSetStrings(sets2))
	}
	// Expansion limit enforced.
	if _, err := st.ServicePathSets(1); err == nil {
		t.Error("limit 1 should overflow for two path sets")
	}
}

func TestMinimalCutSets(t *testing.T) {
	// Diamond: paths {a,b}, {c,d} (disjoint). Cuts: one from each path:
	// {a,c},{a,d},{b,c},{b,d}.
	st, _ := simpleStructure()
	cuts, err := st.MinimalCutSets(0)
	if err != nil {
		t.Fatal(err)
	}
	got := pathSetStrings(cuts)
	want := []string{"a,c", "a,d", "b,c", "b,d"}
	if len(got) != len(want) {
		t.Fatalf("cuts = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("cut[%d] = %s, want %s", i, got[i], want[i])
		}
	}
	// Shared component: paths {x,a},{x,b} → cuts {x} and {a,b}.
	shared, _ := sharedStructure()
	cuts2, err := shared.MinimalCutSets(0)
	if err != nil {
		t.Fatal(err)
	}
	got2 := pathSetStrings(cuts2)
	if len(got2) != 2 || got2[0] != "x" || got2[1] != "a,b" {
		t.Errorf("shared cuts = %v", got2)
	}
}

func TestMinimalize(t *testing.T) {
	in := []PathSet{{"a", "b"}, {"a"}, {"a", "b", "c"}, {"b", "c"}, {"a"}}
	out := Minimalize(in)
	got := pathSetStrings(out)
	if len(got) != 2 || got[0] != "a" || got[1] != "b,c" {
		t.Errorf("Minimalize = %v", got)
	}
	if len(Minimalize(nil)) != 0 {
		t.Error("Minimalize(nil) should be empty")
	}
}

func TestIsSubset(t *testing.T) {
	cases := []struct {
		sub, super PathSet
		want       bool
	}{
		{PathSet{"a"}, PathSet{"a", "b"}, true},
		{PathSet{"a", "b"}, PathSet{"a", "b"}, true},
		{PathSet{"a", "c"}, PathSet{"a", "b"}, false},
		{PathSet{}, PathSet{"a"}, true},
		{PathSet{"a", "b"}, PathSet{"a"}, false},
	}
	for _, c := range cases {
		if got := isSubset(c.sub, c.super); got != c.want {
			t.Errorf("isSubset(%v, %v) = %v", c.sub, c.super, got)
		}
	}
}

func TestEsaryProschanBrackets(t *testing.T) {
	for name, build := range map[string]func() (*ServiceStructure, map[string]float64){
		"simple": simpleStructure,
		"shared": sharedStructure,
	} {
		st, avail := build()
		exact, err := st.Exact(avail)
		if err != nil {
			t.Fatal(err)
		}
		b, err := st.EsaryProschan(avail, 0)
		if err != nil {
			t.Fatal(err)
		}
		if b.Lower > exact+1e-12 || exact > b.Upper+1e-12 {
			t.Errorf("%s: bounds [%v, %v] do not bracket exact %v", name, b.Lower, b.Upper, exact)
		}
		if b.Lower < 0 || b.Upper > 1 {
			t.Errorf("%s: bounds out of range: %+v", name, b)
		}
	}
}

// Property: Esary–Proschan brackets the exact availability for random
// two-atomic structures with a shared component.
func TestEsaryProschanProperty(t *testing.T) {
	norm := func(x uint16) float64 { return float64(x%1001) / 1000 }
	f := func(pa, pb, pc, px uint16) bool {
		st := &ServiceStructure{AtomicServices: []AtomicStructure{
			{Name: "s1", PathSets: []PathSet{{"x", "a"}, {"x", "b"}}},
			{Name: "s2", PathSets: []PathSet{{"c"}, {"a"}}},
		}}
		avail := map[string]float64{"a": norm(pa), "b": norm(pb), "c": norm(pc), "x": norm(px)}
		exact, err := st.Exact(avail)
		if err != nil {
			return false
		}
		b, err := st.EsaryProschan(avail, 0)
		if err != nil {
			return false
		}
		return b.Lower <= exact+1e-9 && exact <= b.Upper+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWhatIf(t *testing.T) {
	st, avail := sharedStructure() // A = Ax * (1-(1-Aa)(1-Ab))
	// Forcing the single point of failure down kills the service.
	down, err := st.WhatIf(avail, map[string]bool{"x": false})
	if err != nil {
		t.Fatal(err)
	}
	if down != 0 {
		t.Errorf("WhatIf(x down) = %v, want 0", down)
	}
	// Forcing it up removes its contribution.
	up, err := st.WhatIf(avail, map[string]bool{"x": true})
	if err != nil {
		t.Fatal(err)
	}
	want := 1 - (1-0.8)*(1-0.8)
	if math.Abs(up-want) > 1e-12 {
		t.Errorf("WhatIf(x up) = %v, want %v", up, want)
	}
	// Unknown component rejected.
	if _, err := st.WhatIf(avail, map[string]bool{"ghost": true}); err == nil {
		t.Error("unknown forced component should fail")
	}
	// No forcing = exact.
	same, err := st.WhatIf(avail, nil)
	if err != nil {
		t.Fatal(err)
	}
	exact, _ := st.Exact(avail)
	if same != exact {
		t.Errorf("WhatIf(nil) = %v, exact = %v", same, exact)
	}
}

func TestFussellVesely(t *testing.T) {
	st, avail := sharedStructure()
	// x participates in every outage (single point of failure): removing
	// its failures eliminates most of the unavailability.
	fvX, err := st.FussellVesely(avail, "x")
	if err != nil {
		t.Fatal(err)
	}
	fvA, err := st.FussellVesely(avail, "a")
	if err != nil {
		t.Fatal(err)
	}
	if fvX <= fvA {
		t.Errorf("FV(x)=%v must exceed FV(a)=%v", fvX, fvA)
	}
	if fvX < 0 || fvX > 1+1e-12 {
		t.Errorf("FV(x) = %v out of range", fvX)
	}
	// Q_sys = 1-0.864 = 0.136; with x perfect Q = 1-0.96 = 0.04;
	// FV(x) = (0.136-0.04)/0.136.
	want := (0.136 - 0.04) / 0.136
	if math.Abs(fvX-want) > 1e-9 {
		t.Errorf("FV(x) = %v, want %v", fvX, want)
	}
	// Perfect system: FV = 0 by convention.
	perfect := map[string]float64{"x": 1, "a": 1, "b": 1}
	fv, err := st.FussellVesely(perfect, "x")
	if err != nil || fv != 0 {
		t.Errorf("FV on perfect system = %v, %v", fv, err)
	}
}

func TestCutSetsValidate(t *testing.T) {
	bad := &ServiceStructure{}
	if _, err := bad.ServicePathSets(0); err == nil {
		t.Error("invalid structure should fail")
	}
	if _, err := bad.MinimalCutSets(0); err == nil {
		t.Error("invalid structure should fail")
	}
}

// Property: every minimal cut set hits every service path set, and no cut
// set is a superset of another.
func TestCutSetHittingProperty(t *testing.T) {
	st, _ := simpleStructure()
	cuts, err := st.MinimalCutSets(0)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := st.ServicePathSets(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range cuts {
		km := map[string]bool{}
		for _, c := range k {
			km[c] = true
		}
		for _, p := range paths {
			if !hits(km, p) {
				t.Errorf("cut %v misses path %v", k, p)
			}
		}
	}
	for i := range cuts {
		for j := range cuts {
			if i != j && isSubset(cuts[i], cuts[j]) {
				t.Errorf("cut %v subsumes cut %v", cuts[i], cuts[j])
			}
		}
	}
}

// The inclusion-exclusion oracle and the Shannon-factoring engine must agree
// on every structure, including the full case-study one.
func TestExactInclusionExclusionCrossCheck(t *testing.T) {
	for name, build := range map[string]func() (*ServiceStructure, map[string]float64){
		"simple": simpleStructure,
		"shared": sharedStructure,
	} {
		st, avail := build()
		factored, err := st.Exact(avail)
		if err != nil {
			t.Fatal(err)
		}
		ie, err := st.ExactInclusionExclusion(avail, 0)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(factored-ie) > 1e-12 {
			t.Errorf("%s: factoring %v vs inclusion-exclusion %v", name, factored, ie)
		}
	}
	// Full pipeline structure.
	res := analysisFixture(t, 1e6)
	st, _, avail, err := FromResult(res, ModelExact)
	if err != nil {
		t.Fatal(err)
	}
	factored, err := st.Exact(avail)
	if err != nil {
		t.Fatal(err)
	}
	ie, err := st.ExactInclusionExclusion(avail, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(factored-ie) > 1e-12 {
		t.Errorf("pipeline: factoring %v vs inclusion-exclusion %v", factored, ie)
	}
}

// Property: both exact engines agree on random small structures.
func TestExactEnginesAgreeProperty(t *testing.T) {
	norm := func(x uint16) float64 { return float64(x%1001) / 1000 }
	f := func(pa, pb, pc, px, py uint16) bool {
		st := &ServiceStructure{AtomicServices: []AtomicStructure{
			{Name: "s1", PathSets: []PathSet{{"x", "a"}, {"y", "b"}}},
			{Name: "s2", PathSets: []PathSet{{"x", "c"}, {"y", "a"}}},
		}}
		avail := map[string]float64{
			"a": norm(pa), "b": norm(pb), "c": norm(pc), "x": norm(px), "y": norm(py),
		}
		v1, err1 := st.Exact(avail)
		v2, err2 := st.ExactInclusionExclusion(avail, 0)
		return err1 == nil && err2 == nil && math.Abs(v1-v2) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestExactInclusionExclusionLimit(t *testing.T) {
	// A structure expanding beyond the subset limit is rejected loudly.
	st := &ServiceStructure{AtomicServices: []AtomicStructure{
		{Name: "s", PathSets: []PathSet{{"a"}, {"b"}, {"c"}, {"d"}}},
	}}
	avail := map[string]float64{"a": 0.5, "b": 0.5, "c": 0.5, "d": 0.5}
	if _, err := st.ExactInclusionExclusion(avail, 3); err == nil {
		t.Error("limit should reject 4 path sets")
	}
	v, err := st.ExactInclusionExclusion(avail, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 - math.Pow(0.5, 4)
	if math.Abs(v-want) > 1e-12 {
		t.Errorf("IE = %v, want %v", v, want)
	}
}
