package depend

// Parity error formats shared by the legacy (structure.go, cutsets.go) and
// compiled (compile.go) kernels. The two implementations promise
// bit-identical behaviour *including error messages* — pinned by the
// equivalence property tests and enforced statically by the upsimvet
// errparity rule: a format string used by both kernels must be a single
// constant, so editing one side without the other is impossible rather than
// merely test-detectable.
const (
	errFmtNoAvailability    = "depend: no availability for component %q"
	errFmtAtomicService     = "depend: atomic service %q: %w"
	errFmtInclExclLimit     = "depend: inclusion-exclusion over %d path sets exceeds limit %d"
	errFmtMonteCarloSamples = "depend: MonteCarlo needs at least 1 sample, got %d"
	errFmtMCParallelSamples = "depend: MonteCarloParallel needs at least 1 sample, got %d"
	errFmtForcedNotInStruct = "depend: forced component %q not in structure"
	errFmtCompNotInStruct   = "depend: component %q not in structure"
)
