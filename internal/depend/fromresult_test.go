package depend

import (
	"math"
	"strings"
	"testing"

	"upsim/internal/core"
	"upsim/internal/mapping"
	"upsim/internal/service"
	"upsim/internal/uml"
)

// analysisFixture builds a diamond network t1 — sw — {c1|c2} — srv with the
// availability profile applied, generates the UPSIM for a two-service
// composite mapped t1→srv / srv→t1, and returns the generation result.
func analysisFixture(t *testing.T, connectorMTBF float64) *core.Result {
	t.Helper()
	m := uml.NewModel("net")
	p := uml.NewProfile("availability")
	comp, _ := p.DefineAbstractStereotype("Component", uml.MetaclassNone)
	_ = comp.AddAttribute("MTBF", uml.KindReal)
	_ = comp.AddAttribute("MTTR", uml.KindReal)
	dev, _ := p.DefineSubStereotype("Device", uml.MetaclassClass, comp)
	conn, _ := p.DefineSubStereotype("Connector", uml.MetaclassAssociation, comp)
	if err := m.AddProfile(p); err != nil {
		t.Fatal(err)
	}
	addClass := func(name string, mtbf, mttr float64) *uml.Class {
		c, _ := m.AddClass(name)
		app, err := c.Apply(dev)
		if err != nil {
			t.Fatal(err)
		}
		_ = app.Set("MTBF", uml.RealValue(mtbf))
		_ = app.Set("MTTR", uml.RealValue(mttr))
		return c
	}
	client := addClass("Client", 3000, 24)
	sw := addClass("Switch", 180000, 0.5)
	srv := addClass("Server", 60000, 0.1)
	addAssoc := func(name string, a, b *uml.Class) *uml.Association {
		as, _ := m.AddAssociation(name, a, b)
		app, err := as.Apply(conn)
		if err != nil {
			t.Fatal(err)
		}
		_ = app.Set("MTBF", uml.RealValue(connectorMTBF))
		_ = app.Set("MTTR", uml.RealValue(0.1))
		return as
	}
	cs := addAssoc("Client-Switch", client, sw)
	ss := addAssoc("Switch-Switch", sw, sw)
	sv := addAssoc("Switch-Server", sw, srv)

	d := m.NewObjectDiagram("infrastructure")
	for _, spec := range []struct {
		name string
		cls  *uml.Class
	}{
		{"t1", client}, {"sw", sw}, {"c1", sw}, {"c2", sw}, {"sw2", sw}, {"srv", srv},
	} {
		if _, err := d.AddInstance(spec.name, spec.cls); err != nil {
			t.Fatal(err)
		}
	}
	for _, l := range []struct {
		a, b string
		as   *uml.Association
	}{
		{"t1", "sw", cs}, {"sw", "c1", ss}, {"sw", "c2", ss},
		{"c1", "sw2", ss}, {"c2", "sw2", ss}, {"sw2", "srv", sv},
	} {
		if _, err := d.ConnectByName(l.a, l.b, l.as); err != nil {
			t.Fatal(err)
		}
	}
	svc, err := service.NewSequential(m, "print", "fetch", "deliver")
	if err != nil {
		t.Fatal(err)
	}
	mp := mapping.New()
	_ = mp.Add(mapping.Pair{AtomicService: "fetch", Requester: "t1", Provider: "srv"})
	_ = mp.Add(mapping.Pair{AtomicService: "deliver", Requester: "srv", Provider: "t1"})
	g, err := core.NewGenerator(m, "infrastructure")
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.Generate(svc, mp, "upsim", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestFromResult(t *testing.T) {
	res := analysisFixture(t, 1e6)
	st, _, avail, err := FromResult(res, ModelExact)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.AtomicServices) != 2 {
		t.Fatalf("atomics = %d", len(st.AtomicServices))
	}
	// Each atomic service has the two redundant core paths.
	for _, a := range st.AtomicServices {
		if len(a.PathSets) != 2 {
			t.Errorf("atomic %s path sets = %d, want 2", a.Name, len(a.PathSets))
		}
		for _, ps := range a.PathSets {
			// 5 devices + 4 links per path.
			if len(ps) != 9 {
				t.Errorf("path set size = %d, want 9 (%v)", len(ps), ps)
			}
		}
	}
	// Device availabilities computed from class attributes.
	wantT1, _ := Availability(3000, 24)
	if math.Abs(avail["t1"]-wantT1) > 1e-12 {
		t.Errorf("avail[t1] = %v, want %v", avail["t1"], wantT1)
	}
	// Link components present with the synthetic ID scheme, and exactly one
	// component per physical link even though "deliver" traverses every
	// edge in the opposite direction of "fetch".
	links := 0
	for c := range avail {
		if strings.Contains(c, "--") && strings.Contains(c, "#") {
			links++
		}
	}
	if links != 6 {
		t.Errorf("link components = %d, want 6 (one per traversed physical link)", links)
	}
	seen := map[string]bool{}
	for _, a := range st.AtomicServices {
		for _, ps := range a.PathSets {
			for _, c := range ps {
				if !strings.Contains(c, "#") {
					continue
				}
				ends := strings.SplitN(strings.SplitN(c, "#", 2)[0], "--", 2)
				if len(ends) == 2 && ends[1] < ends[0] {
					t.Errorf("link component %q not canonically ordered", c)
				}
				seen[c] = true
			}
		}
	}
	if len(seen) != 6 {
		t.Errorf("distinct link components = %d, want 6", len(seen))
	}
}

func TestFromResultFormula1(t *testing.T) {
	res := analysisFixture(t, 1e6)
	_, _, exact, err := FromResult(res, ModelExact)
	if err != nil {
		t.Fatal(err)
	}
	_, _, f1, err := FromResult(res, ModelFormula1)
	if err != nil {
		t.Fatal(err)
	}
	for c := range exact {
		if f1[c] > exact[c] {
			t.Errorf("Formula 1 availability of %s (%v) exceeds exact (%v)", c, f1[c], exact[c])
		}
	}
	if ModelExact.String() != "exact" || ModelFormula1.String() != "formula1" {
		t.Error("model names wrong")
	}
	if !strings.Contains(AvailabilityModel(7).String(), "AvailabilityModel(") {
		t.Error("unknown model fallback")
	}
}

func TestAnalyze(t *testing.T) {
	res := analysisFixture(t, 1e6)
	rep, err := Analyze(res, ModelExact, 100000, 42)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Exact <= 0 || rep.Exact > 1 {
		t.Errorf("exact = %v", rep.Exact)
	}
	// Client availability dominates: the service can never be more
	// available than t1 itself (~0.992).
	t1A, _ := Availability(3000, 24)
	if rep.Exact > t1A {
		t.Errorf("service availability %v exceeds client bound %v", rep.Exact, t1A)
	}
	// FT and RBD agree by duality; exact is bounded by the RBD.
	if math.Abs(rep.FTApprox-rep.RBDApprox) > 1e-12 {
		t.Errorf("FT (%v) != RBD (%v)", rep.FTApprox, rep.RBDApprox)
	}
	if rep.Exact > rep.RBDApprox+1e-12 {
		t.Errorf("exact (%v) above RBD (%v)", rep.Exact, rep.RBDApprox)
	}
	// Monte Carlo confirms the exact value.
	if math.Abs(rep.MonteCarlo-rep.Exact) > 5*rep.MCStdErr+1e-9 {
		t.Errorf("MC %v ± %v vs exact %v", rep.MonteCarlo, rep.MCStdErr, rep.Exact)
	}
	if rep.DowntimePerYearHours <= 0 {
		t.Errorf("downtime = %v", rep.DowntimePerYearHours)
	}
	// 5 devices + 6 links… the UPSIM uses 6 devices and 6 links; count
	// components referenced by paths.
	if rep.Components < 6 {
		t.Errorf("components = %d", rep.Components)
	}
}

func TestFromResultErrors(t *testing.T) {
	if _, _, _, err := FromResult(nil, ModelExact); err == nil {
		t.Error("nil result should fail")
	}
	if _, err := Analyze(nil, ModelExact, 10, 1); err == nil {
		t.Error("Analyze(nil) should fail")
	}
	// A model whose availability profile is missing attributes fails at
	// analysis time with a pointed error.
	m := uml.NewModel("bare")
	cls, _ := m.AddClass("C")
	a, _ := m.AddAssociation("C-C", cls, cls)
	d := m.NewObjectDiagram("infrastructure")
	_, _ = d.AddInstance("x", cls)
	_, _ = d.AddInstance("y", cls)
	_, _ = d.ConnectByName("x", "y", a)
	svc, err := service.NewSequential(m, "s", "a1", "a2")
	if err != nil {
		t.Fatal(err)
	}
	mp := mapping.New()
	_ = mp.Add(mapping.Pair{AtomicService: "a1", Requester: "x", Provider: "y"})
	_ = mp.Add(mapping.Pair{AtomicService: "a2", Requester: "y", Provider: "x"})
	g, err := core.NewGenerator(m, "infrastructure")
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.Generate(svc, mp, "u", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := FromResult(res, ModelExact); err == nil || !strings.Contains(err.Error(), "MTBF") {
		t.Errorf("missing profile error = %v", err)
	}
}
