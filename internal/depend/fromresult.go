package depend

import (
	"context"
	"fmt"
	"time"

	"upsim/internal/core"
	"upsim/internal/obs"
	"upsim/internal/uml"
)

// mAnalyzeAlg times each §VII analysis stage, split by the kernel that ran
// it, so a /metrics scrape shows where analysis time goes and what the
// compiled kernel buys.
var mAnalyzeAlg = obs.NewHistogram("upsim_depend_algorithm_seconds",
	"Wall time of §VII dependability analysis stages.",
	obs.LatencyBuckets, "algorithm", "kernel")

// AvailabilityModel selects how per-component availability is derived from
// the MTBF/MTTR attributes.
type AvailabilityModel uint8

const (
	// ModelExact uses A = MTBF/(MTBF+MTTR).
	ModelExact AvailabilityModel = iota
	// ModelFormula1 uses the paper's Formula 1, A = 1 − MTTR/MTBF.
	ModelFormula1
)

// String returns the model name.
func (m AvailabilityModel) String() string {
	switch m {
	case ModelExact:
		return "exact"
	case ModelFormula1:
		return "formula1"
	}
	return fmt.Sprintf("AvailabilityModel(%d)", uint8(m))
}

// LinkComponentID returns the component ID used for the link with the given
// endpoints and source-diagram edge index. Devices use their instance name;
// links need a synthetic ID because they are anonymous in the object
// diagram. The endpoints are ordered canonically so that the same physical
// link traversed in opposite directions by different atomic services maps
// to one component.
func LinkComponentID(a, b string, edgeID int) string {
	if b < a {
		a, b = b, a
	}
	return fmt.Sprintf("%s--%s#%d", a, b, edgeID)
}

// FromResult builds the service structure function and the per-component
// availability table from a generated UPSIM. Every discovered path becomes
// one minimal path set containing its devices and connectors; the
// availability of each component is computed from the MTBF/MTTR attributes
// its class (or association) carries via the availability profile. This is
// the UPSIM → RBD/FT transformation of Section VII: "entities correspond to
// components of the UPSIM" and "the availability for individual components
// can be calculated using the component attributes MTBF and MTTR, as seen
// in Formula 1".
// It returns the legacy structure, its compiled (bitset-kernel) form and
// the availability table; the compiled form shares the validation outcome
// and produces bit-identical analyses (see compile.go).
func FromResult(res *core.Result, model AvailabilityModel) (*ServiceStructure, *CompiledStructure, map[string]float64, error) {
	st, avail, err := fromResult(res, model)
	if err != nil {
		return nil, nil, nil, err
	}
	return st, Compile(st), avail, nil
}

// fromResult builds the legacy structure and availability table only — the
// shared half of FromResult, kept separate so AnalyzeWithOptions can put the
// compile step under its own span.
func fromResult(res *core.Result, model AvailabilityModel) (*ServiceStructure, map[string]float64, error) {
	if res == nil || res.Source == nil {
		return nil, nil, fmt.Errorf("depend: nil generation result")
	}
	avail := make(map[string]float64)
	links := res.Source.Links()

	compute := func(mtbf, mttr float64) (float64, error) {
		if model == ModelFormula1 {
			return AvailabilityFormula1(mtbf, mttr)
		}
		return Availability(mtbf, mttr)
	}
	deviceAvail := func(name string) (float64, error) {
		inst, ok := res.Source.Instance(name)
		if !ok {
			return 0, fmt.Errorf("depend: path references unknown instance %q", name)
		}
		return instanceAvailability(inst, compute)
	}

	st := &ServiceStructure{}
	for _, sp := range res.Services {
		atomic := AtomicStructure{Name: sp.AtomicService}
		for _, p := range sp.Paths {
			ps := make(PathSet, 0, len(p.Nodes)+len(p.Edges))
			for _, n := range p.Nodes {
				if _, done := avail[n]; !done {
					a, err := deviceAvail(n)
					if err != nil {
						return nil, nil, err
					}
					avail[n] = a
				}
				ps = append(ps, n)
			}
			for i, id := range p.Edges {
				if id < 0 || id >= len(links) {
					return nil, nil, fmt.Errorf("depend: path references unknown edge %d", id)
				}
				l := links[id]
				cid := LinkComponentID(p.Nodes[i], p.Nodes[i+1], id)
				if _, done := avail[cid]; !done {
					a, err := linkAvailability(l, compute)
					if err != nil {
						return nil, nil, err
					}
					avail[cid] = a
				}
				ps = append(ps, cid)
			}
			atomic.PathSets = append(atomic.PathSets, ps)
		}
		st.AtomicServices = append(st.AtomicServices, atomic)
	}
	if err := st.Validate(); err != nil {
		return nil, nil, err
	}
	return st, avail, nil
}

func instanceAvailability(inst *uml.InstanceSpecification, compute func(mtbf, mttr float64) (float64, error)) (float64, error) {
	mtbf, ok := inst.Property("MTBF")
	if !ok {
		return 0, fmt.Errorf("depend: component %q has no MTBF attribute (availability profile not applied?)",
			inst.Name())
	}
	mttr, ok := inst.Property("MTTR")
	if !ok {
		return 0, fmt.Errorf("depend: component %q has no MTTR attribute", inst.Name())
	}
	a, err := compute(mtbf.AsReal(), mttr.AsReal())
	if err != nil {
		return 0, fmt.Errorf("depend: component %q: %w", inst.Name(), err)
	}
	return a, nil
}

func linkAvailability(l *uml.Link, compute func(mtbf, mttr float64) (float64, error)) (float64, error) {
	mtbf, ok := l.Property("MTBF")
	if !ok {
		return 0, fmt.Errorf("depend: link %s has no MTBF attribute (connector stereotype not applied?)",
			l.Signature())
	}
	mttr, ok := l.Property("MTTR")
	if !ok {
		return 0, fmt.Errorf("depend: link %s has no MTTR attribute", l.Signature())
	}
	a, err := compute(mtbf.AsReal(), mttr.AsReal())
	if err != nil {
		return 0, fmt.Errorf("depend: link %s: %w", l.Signature(), err)
	}
	return a, nil
}

// Report is the end-to-end analysis of one UPSIM: the exact user-perceived
// availability plus the approximations, for direct tabulation by the
// experiment harness.
type Report struct {
	Exact                float64
	RBDApprox            float64
	FTApprox             float64 // 1 − P(top event); equals RBDApprox by duality
	MonteCarlo           float64
	MCStdErr             float64
	DowntimePerYearHours float64
	Components           int
}

// AnalyzeOptions tunes the analysis pipeline.
type AnalyzeOptions struct {
	// Legacy routes the evaluation through the map-based implementation
	// instead of the compiled bitset kernel. The results are bit-identical
	// (pinned by the equivalence property tests); the flag exists as the
	// ablation escape hatch and participates in the server's analysis cache
	// key.
	Legacy bool
	// MCWorkers selects the Monte Carlo sampler: 0 runs the sequential
	// sampler (the historical default), any other value runs
	// MonteCarloParallel with that worker count (< 0 means one worker per
	// CPU). Different worker counts resample but converge to the same value.
	MCWorkers int
}

// Analyze runs the full Section VII analysis pipeline on a generation
// result: derive component availabilities, build the structure, evaluate
// exactly, by RBD/FT approximation and by simulation.
func Analyze(res *core.Result, model AvailabilityModel, mcSamples int, seed int64) (*Report, error) {
	return AnalyzeContext(context.Background(), res, model, mcSamples, seed)
}

// AnalyzeContext is Analyze under a context: when ctx carries an obs span,
// the analysis is recorded as an "avail.analyze" span with one child per
// evaluation method (structure extraction, kernel compilation, exact, RBD,
// fault tree, Monte Carlo). It evaluates on the compiled kernel.
func AnalyzeContext(ctx context.Context, res *core.Result, model AvailabilityModel, mcSamples int, seed int64) (*Report, error) {
	return AnalyzeWithOptions(ctx, res, model, mcSamples, seed, AnalyzeOptions{})
}

// AnalyzeWithOptions is AnalyzeContext with explicit kernel and sampler
// selection.
func AnalyzeWithOptions(ctx context.Context, res *core.Result, model AvailabilityModel, mcSamples int, seed int64, opts AnalyzeOptions) (*Report, error) {
	ctx, span := obs.StartSpan(ctx, "avail.analyze")
	defer span.End()
	kernel := "compiled"
	if opts.Legacy {
		kernel = "legacy"
	}
	span.SetAttr("kernel", kernel)
	stage := func(name string) *obs.Span {
		_, sp := obs.StartSpan(ctx, name)
		return sp
	}
	observe := func(alg string, start time.Time) {
		mAnalyzeAlg.With(alg, kernel).Observe(time.Since(start).Seconds())
	}

	sp, t0 := stage("avail.structure"), time.Now()
	st, avail, err := fromResult(res, model)
	sp.End()
	observe("structure", t0)
	if err != nil {
		return nil, err
	}
	span.SetAttr("components", len(st.Components()))

	var cs *CompiledStructure
	if !opts.Legacy {
		sp, t0 = stage("depend.compile"), time.Now()
		cs = Compile(st)
		sp.End()
		observe("compile", t0)
	}

	sp, t0 = stage("avail.exact"), time.Now()
	var exact float64
	if cs != nil {
		exact, err = cs.Exact(avail)
	} else {
		exact, err = st.Exact(avail)
	}
	sp.End()
	observe("exact", t0)
	if err != nil {
		return nil, err
	}

	sp, t0 = stage("avail.rbd"), time.Now()
	rbd, err := st.RBDApprox(avail)
	sp.End()
	observe("rbd", t0)
	if err != nil {
		return nil, err
	}

	sp, t0 = stage("avail.fault_tree"), time.Now()
	ft, err := st.ToFaultTree(avail)
	if err != nil {
		sp.End()
		return nil, err
	}
	topQ, err := ft.Probability()
	sp.End()
	observe("fault_tree", t0)
	if err != nil {
		return nil, err
	}

	sp, t0 = stage("avail.montecarlo"), time.Now()
	sp.SetAttr("samples", mcSamples)
	var mc, se float64
	switch {
	case cs != nil && opts.MCWorkers != 0:
		mc, se, err = cs.MonteCarloParallel(avail, mcSamples, seed, opts.MCWorkers)
	case cs != nil:
		mc, se, err = cs.MonteCarlo(avail, mcSamples, seed)
	case opts.MCWorkers != 0:
		mc, se, err = st.MonteCarloParallel(avail, mcSamples, seed, opts.MCWorkers)
	default:
		mc, se, err = st.MonteCarlo(avail, mcSamples, seed)
	}
	sp.End()
	observe("montecarlo", t0)
	if err != nil {
		return nil, err
	}
	return &Report{
		Exact:                exact,
		RBDApprox:            rbd,
		FTApprox:             1 - topQ,
		MonteCarlo:           mc,
		MCStdErr:             se,
		DowntimePerYearHours: (1 - exact) * 365 * 24,
		Components:           len(st.Components()),
	}, nil
}
