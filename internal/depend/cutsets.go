package depend

import (
	"fmt"
	"sort"
)

// This file adds the classical fault-tree companions to the structure
// analysis: minimal path sets of the whole service, minimal cut sets (the
// sets of components whose joint failure brings the service down for this
// user — the paper's "quick overview on which ICT components can be the
// cause" of a service problem), the Esary–Proschan reliability bounds built
// from them, and what-if evaluation under forced component states.

// ServicePathSets returns the minimal path sets of the composite service as
// a whole: a service path set is a minimal component set whose joint
// availability keeps every atomic service working. It is computed as the
// minimalised cross-product of the per-atomic path sets. The number of raw
// unions is the product of the per-atomic path counts; limit caps the
// expansion (0 means DefaultSetLimit) and an overflow is an error rather
// than a silent truncation.
func (s *ServiceStructure) ServicePathSets(limit int) ([]PathSet, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if limit <= 0 {
		limit = DefaultSetLimit
	}
	raw := 1
	for _, a := range s.AtomicServices {
		raw *= len(a.PathSets)
		if raw > limit {
			return nil, &BudgetError{Kind: BudgetServicePathSets, Need: raw, Limit: limit}
		}
	}
	// Cross product of one path set per atomic service, as sorted component
	// unions.
	unions := []map[string]bool{{}}
	for _, a := range s.AtomicServices {
		var next []map[string]bool
		for _, u := range unions {
			for _, ps := range a.PathSets {
				nu := make(map[string]bool, len(u)+len(ps))
				for c := range u {
					nu[c] = true
				}
				for _, c := range ps {
					nu[c] = true
				}
				next = append(next, nu)
			}
		}
		unions = next
	}
	sets := make([]PathSet, 0, len(unions))
	for _, u := range unions {
		sets = append(sets, setToSorted(u))
	}
	return Minimalize(sets), nil
}

// DefaultSetLimit bounds the cross-product expansions of ServicePathSets
// and MinimalCutSets.
const DefaultSetLimit = 1 << 20

// MinimalCutSets returns the minimal cut sets of the service: the minimal
// component sets whose joint failure makes some atomic service lose every
// path. They are the minimal hitting sets (hypergraph transversals) of each
// atomic service's path sets, minimalised across atomic services. limit
// caps the intermediate transversal size (0 means DefaultSetLimit).
func (s *ServiceStructure) MinimalCutSets(limit int) ([]PathSet, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if limit <= 0 {
		limit = DefaultSetLimit
	}
	var all []PathSet
	for _, a := range s.AtomicServices {
		cuts, err := transversals(a.PathSets, limit)
		if err != nil {
			if be, ok := AsBudgetError(err); ok {
				return nil, be.forAtomic(a.Name)
			}
			return nil, fmt.Errorf(errFmtAtomicService, a.Name, err)
		}
		all = append(all, cuts...)
	}
	return Minimalize(all), nil
}

// transversals computes the minimal hitting sets of the given sets by
// incremental transversal construction: start with the singletons of the
// first set; for each further set, extend every transversal that misses it.
// Transversals are kept as sorted PathSets throughout — the canonicalization
// is hoisted out of the per-round minimalization, which used to convert
// every candidate map to a sorted slice and back on every round.
func transversals(sets []PathSet, limit int) ([]PathSet, error) {
	cur := []PathSet{{}}
	for _, ps := range sets {
		var next []PathSet
		for _, t := range cur {
			if hitsSorted(t, ps) {
				next = append(next, t)
				continue
			}
			for _, c := range ps {
				next = append(next, insertSorted(t, c))
			}
			if len(next) > limit {
				return nil, &BudgetError{Kind: BudgetTransversal, Limit: limit}
			}
		}
		cur = Minimalize(next)
	}
	return cur, nil
}

// hitsSorted reports whether the sorted transversal t intersects ps.
func hitsSorted(t PathSet, ps PathSet) bool {
	for _, c := range ps {
		i := sort.SearchStrings(t, c)
		if i < len(t) && t[i] == c {
			return true
		}
	}
	return false
}

// insertSorted returns sorted t with c added (t itself when c is present).
func insertSorted(t PathSet, c string) PathSet {
	i := sort.SearchStrings(t, c)
	if i < len(t) && t[i] == c {
		return t
	}
	nt := make(PathSet, 0, len(t)+1)
	nt = append(nt, t[:i]...)
	nt = append(nt, c)
	return append(nt, t[i:]...)
}

func hits(t map[string]bool, ps PathSet) bool {
	for _, c := range ps {
		if t[c] {
			return true
		}
	}
	return false
}

func setToSorted(m map[string]bool) PathSet {
	out := make(PathSet, 0, len(m))
	for c := range m {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// comparePathSets orders sorted sets by cardinality, then element-wise
// lexicographically. This is the canonical cut/path-set ordering of the
// whole package: the compiled kernel reproduces it on bitsets (popcount,
// then lowest differing component id), which is only possible because the
// comparison is per element rather than over a joined string.
func comparePathSets(a, b PathSet) int {
	if len(a) != len(b) {
		return len(a) - len(b)
	}
	for i := range a {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// Minimalize removes every set that is a (non-strict) superset of another
// set, and deduplicates. The input sets must be sorted; the output is
// sorted by size then element-wise lexicographically. Duplicates are
// adjacent after sorting, so no key strings are built: the former
// strings.Join canonicalization per candidate was the dominant allocation
// in transversal expansion.
func Minimalize(sets []PathSet) []PathSet {
	ordered := make([]PathSet, len(sets))
	copy(ordered, sets)
	sort.Slice(ordered, func(i, j int) bool {
		return comparePathSets(ordered[i], ordered[j]) < 0
	})
	var out []PathSet
	for i, cand := range ordered {
		if i > 0 && comparePathSets(ordered[i-1], cand) == 0 {
			continue
		}
		dominated := false
		for _, kept := range out {
			if isSubset(kept, cand) {
				dominated = true
				break
			}
		}
		if dominated {
			continue
		}
		out = append(out, cand)
	}
	return out
}

// isSubset reports whether sorted sub ⊆ sorted super.
func isSubset(sub, super PathSet) bool {
	i := 0
	for _, c := range super {
		if i == len(sub) {
			return true
		}
		if sub[i] == c {
			i++
		}
	}
	return i == len(sub)
}

// Bounds holds the Esary–Proschan availability bounds.
type Bounds struct {
	Lower float64 // from the minimal cut sets
	Upper float64 // from the minimal (service) path sets
}

// EsaryProschan computes the classical bounds on the service availability
// for independent components with positively associated structure:
//
//	Π_cuts (1 − Π_{i∈K} (1−A_i))  ≤  A_service  ≤  1 − Π_paths (1 − Π_{i∈P} A_i)
//
// They bracket the exact value (tested) and are cheap when the exact
// factoring would be expensive.
func (s *ServiceStructure) EsaryProschan(avail map[string]float64, limit int) (Bounds, error) {
	if err := checkAvail(s, avail); err != nil {
		return Bounds{}, err
	}
	paths, err := s.ServicePathSets(limit)
	if err != nil {
		return Bounds{}, err
	}
	cuts, err := s.MinimalCutSets(limit)
	if err != nil {
		return Bounds{}, err
	}
	lower := 1.0
	for _, k := range cuts {
		qAll := 1.0
		for _, c := range k {
			qAll *= 1 - avail[c]
		}
		lower *= 1 - qAll
	}
	upperFail := 1.0
	for _, p := range paths {
		aAll := 1.0
		for _, c := range p {
			aAll *= avail[c]
		}
		upperFail *= 1 - aAll
	}
	return Bounds{Lower: lower, Upper: 1 - upperFail}, nil
}

// ExactInclusionExclusion evaluates the service availability by
// inclusion–exclusion over the minimal service path sets:
//
//	A = Σ_{∅≠S⊆paths} (−1)^{|S|+1} · Π_{c ∈ ∪S} A_c
//
// It is an independent oracle for the Shannon-factoring engine (the tests
// cross-check both) with cost 2^|paths|; limit bounds the path-set count
// (0 means 20, i.e. ~10⁶ subset terms).
func (s *ServiceStructure) ExactInclusionExclusion(avail map[string]float64, limit int) (float64, error) {
	if err := checkAvail(s, avail); err != nil {
		return 0, err
	}
	paths, err := s.ServicePathSets(0)
	if err != nil {
		return 0, err
	}
	if limit <= 0 {
		limit = 20
	}
	if len(paths) > limit {
		return 0, fmt.Errorf(errFmtInclExclLimit, len(paths), limit)
	}
	// The product over the union must run in a deterministic component
	// order: map iteration would reorder the float multiplies from call to
	// call, and the compiled kernel pins itself bit-identical to this path.
	comps := s.Components()
	total := 0.0
	n := len(paths)
	for mask := 1; mask < 1<<n; mask++ {
		union := map[string]bool{}
		bits := 0
		for i := 0; i < n; i++ {
			if mask&(1<<i) == 0 {
				continue
			}
			bits++
			for _, c := range paths[i] {
				union[c] = true
			}
		}
		prod := 1.0
		for _, c := range comps {
			if union[c] {
				prod *= avail[c]
			}
		}
		if bits%2 == 1 {
			total += prod
		} else {
			total -= prod
		}
	}
	return total, nil
}

// WhatIf evaluates the exact service availability with the given components
// forced up (true) or down (false), e.g. "what does this user perceive
// while c1 is under maintenance?". Components absent from forced keep their
// availability.
func (s *ServiceStructure) WhatIf(avail map[string]float64, forced map[string]bool) (float64, error) {
	adj := cloneAvail(avail)
	for c, up := range forced {
		if _, ok := adj[c]; !ok {
			return 0, fmt.Errorf(errFmtForcedNotInStruct, c)
		}
		if up {
			adj[c] = 1
		} else {
			adj[c] = 0
		}
	}
	return s.Exact(adj)
}

// FussellVesely returns the Fussell–Vesely importance of a component: the
// fraction of the service unavailability attributable to failures involving
// the component,
//
//	FV_i = (Q_sys − Q_sys|A_i=1) / Q_sys
//
// where Q is the unavailability. A component with FV close to 1 is involved
// in essentially every user-visible outage.
func (s *ServiceStructure) FussellVesely(avail map[string]float64, component string) (float64, error) {
	base, err := s.Exact(avail)
	if err != nil {
		return 0, err
	}
	qSys := 1 - base
	if qSys == 0 {
		return 0, nil // a perfect system attributes no unavailability
	}
	perfect, err := s.WhatIf(avail, map[string]bool{component: true})
	if err != nil {
		return 0, err
	}
	return ((1 - base) - (1 - perfect)) / qSys, nil
}
