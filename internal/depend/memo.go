package depend

// Packed memoisation for Shannon factoring (DESIGN.md §14). The legacy memo
// keyed the conditioned formula by a canonical byte string — per node it
// built one string per path set, sorted them, concatenated per-atomic
// segments and hashed the result into a Go map, so the deepest §VII
// recursion paid a string build and map-string churn at every node. The
// replacement packs the same canonical multiset encoding into []uint64 words
// held in an append-only arena and probes an open-addressing table, so a
// steady-state factoring performs zero allocations: keys are staged in
// reusable scratch, copied into the arena only on a miss, and the table,
// arena and scratch are all pooled per compiled structure.
//
// Key layout, per formula:
//
//	segment(atomic) = [ setCount ][ set₀ words ]…[ setₙ₋₁ words ]
//
// with the sets of an atomic sorted word-lexicographically and the atomic
// segments themselves sorted word-lexicographically (ties to the shorter
// segment). Any canonical total order induces the same equivalence classes
// as the legacy byte-string key — equal multisets of set multisets — so memo
// hits coincide node for node and the factored float expression tree, hence
// the result, stays bit-identical to the legacy engine.

// sliceChunk is the block size (in elements) of the formula slice arenas.
const sliceChunk = 1024

// sliceArena bump-allocates empty slices with a caller-chosen capacity from
// chunked blocks, recycled per analysis like bitArena.
type sliceArena[T any] struct {
	blocks [][]T
	bi     int
	off    int
}

//upsim:hotpath
func (a *sliceArena[T]) reset() { a.bi, a.off = 0, 0 }

// alloc returns a zero-length slice with the given capacity; appends within
// that capacity stay inside the arena block.
//
//upsim:hotpath
func (a *sliceArena[T]) alloc(capN int) []T {
	if capN == 0 {
		return nil
	}
	for {
		if a.bi == len(a.blocks) {
			n := sliceChunk
			if capN > n {
				n = capN
			}
			a.blocks = append(a.blocks, make([]T, n))
		}
		if blk := a.blocks[a.bi]; a.off+capN <= len(blk) {
			s := blk[a.off : a.off : a.off+capN]
			a.off += capN
			return s
		}
		a.bi++
		a.off = 0
	}
}

// memoEntry is one open-addressing slot: the key lives in memoTable.words
// at [off, off+klen).
type memoEntry struct {
	hash uint64
	val  float64
	off  int32
	klen int32
	used bool
}

// memoTable is an open-addressing (linear probe, power-of-two) hash table
// from packed []uint64 keys to factoring results. Lookups allocate nothing;
// inserts append the key words to an arena whose offsets stay valid across
// growth.
type memoTable struct {
	entries []memoEntry
	mask    uint64
	n       int
	words   []uint64 // append-only key arena
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// hashWords is FNV-1a over whole words.
//
//upsim:hotpath
func hashWords(key []uint64) uint64 {
	h := uint64(fnvOffset)
	for _, w := range key {
		h ^= w
		h *= fnvPrime
	}
	return h
}

func (t *memoTable) reset() {
	if t.entries == nil {
		t.entries = make([]memoEntry, 64)
		t.mask = 63
	} else {
		clear(t.entries)
	}
	t.n = 0
	t.words = t.words[:0]
}

//upsim:hotpath one probe sequence per factoring node
func (t *memoTable) lookup(key []uint64, h uint64) (float64, bool) {
	for i := h & t.mask; ; i = (i + 1) & t.mask {
		e := &t.entries[i]
		if !e.used {
			return 0, false
		}
		if e.hash != h || int(e.klen) != len(key) {
			continue
		}
		kw := t.words[e.off : int(e.off)+len(key)]
		match := true
		for j, w := range key {
			if kw[j] != w {
				match = false
				break
			}
		}
		if match {
			return e.val, true
		}
	}
}

// reserve copies the staged key into the arena before the factoring
// recursion reuses the staging buffer; the returned offset stays valid
// because the arena only appends.
func (t *memoTable) reserve(key []uint64) int32 {
	off := int32(len(t.words))
	t.words = append(t.words, key...)
	return off
}

// insert records the value for a key previously reserved. Keys are unique by
// construction — a miss precedes every reserve, and a conditioned subformula
// is always strictly smaller than its parent — so probing stops at the first
// free slot.
func (t *memoTable) insert(h uint64, off, klen int32, val float64) {
	if (t.n+1)*4 > len(t.entries)*3 {
		t.grow()
	}
	for i := h & t.mask; ; i = (i + 1) & t.mask {
		if e := &t.entries[i]; !e.used {
			*e = memoEntry{hash: h, val: val, off: off, klen: klen, used: true}
			t.n++
			return
		}
	}
}

func (t *memoTable) grow() {
	old := t.entries
	t.entries = make([]memoEntry, 2*len(old))
	t.mask = uint64(len(t.entries) - 1)
	for i := range old {
		if !old[i].used {
			continue
		}
		for j := old[i].hash & t.mask; ; j = (j + 1) & t.mask {
			if !t.entries[j].used {
				t.entries[j] = old[i]
				break
			}
		}
	}
}

// exactCtx is the pooled per-factoring scratch: the memo table, the bitset
// and slice arenas backing conditioned formulas, and the key staging
// buffers. One context serves one exactPacked call at a time.
type exactCtx struct {
	memo memoTable
	ar   bitArena           // reduced path sets from conditioning
	fs   sliceArena[bitset] // per-atomic set slices
	ffs  sliceArena[[]bitset]

	counts []int32 // mostFrequentBit scratch, one per component

	keyTmp   []uint64 // staged canonical key
	segBuf   []uint64 // unsorted per-atomic segments
	segStart []int32
	segLen   []int32
	setIdx   []int32 // per-atomic set sort
	atomIdx  []int32 // atomic segment sort
}

func (cs *CompiledStructure) getExactCtx() *exactCtx {
	ctx := cs.exactPool.Get().(*exactCtx)
	ctx.memo.reset()
	ctx.ar.reset()
	ctx.fs.reset()
	ctx.ffs.reset()
	if cap(ctx.counts) < len(cs.names) {
		ctx.counts = make([]int32, len(cs.names))
	}
	ctx.counts = ctx.counts[:len(cs.names)]
	return ctx
}

func (cs *CompiledStructure) putExactCtx(ctx *exactCtx) { cs.exactPool.Put(ctx) }

// buildKey stages the canonical packed key for f into ctx.keyTmp and returns
// its hash. All scratch comes from the context; steady state allocates
// nothing.
//
//upsim:hotpath once per factoring node
func (ctx *exactCtx) buildKey(f [][]bitset) uint64 {
	ctx.segBuf = ctx.segBuf[:0]
	ctx.segStart = ctx.segStart[:0]
	ctx.segLen = ctx.segLen[:0]
	for _, sets := range f {
		start := int32(len(ctx.segBuf))
		ctx.segBuf = append(ctx.segBuf, uint64(len(sets)))
		idx := ctx.setIdx[:0]
		for i := range sets {
			idx = append(idx, int32(i))
		}
		sortSetIdx(sets, idx)
		ctx.setIdx = idx
		for _, si := range idx {
			ctx.segBuf = append(ctx.segBuf, sets[si]...)
		}
		ctx.segStart = append(ctx.segStart, start)
		ctx.segLen = append(ctx.segLen, int32(len(ctx.segBuf))-start)
	}
	ai := ctx.atomIdx[:0]
	for i := range f {
		ai = append(ai, int32(i))
	}
	sortSegIdx(ctx.segBuf, ctx.segStart, ctx.segLen, ai)
	ctx.atomIdx = ai
	key := ctx.keyTmp[:0]
	for _, a := range ai {
		s, l := ctx.segStart[a], ctx.segLen[a]
		key = append(key, ctx.segBuf[s:s+l]...)
	}
	ctx.keyTmp = key
	return hashWords(key)
}

// lessSets orders equal-width bitsets word-lexicographically.
//
//upsim:hotpath
func lessSets(sets []bitset, a, b int32) bool {
	x, y := sets[a], sets[b]
	for w := range x {
		if x[w] != y[w] {
			return x[w] < y[w]
		}
	}
	return false
}

// sortSetIdx heapsorts set indices in place — sort.Slice would allocate its
// reflect-based swapper per call.
//
//upsim:hotpath
func sortSetIdx(sets []bitset, idx []int32) {
	n := len(idx)
	for i := n/2 - 1; i >= 0; i-- {
		siftSets(sets, idx, i, n)
	}
	for i := n - 1; i > 0; i-- {
		idx[0], idx[i] = idx[i], idx[0]
		siftSets(sets, idx, 0, i)
	}
}

//upsim:hotpath
func siftSets(sets []bitset, idx []int32, root, n int) {
	for {
		child := 2*root + 1
		if child >= n {
			return
		}
		if child+1 < n && lessSets(sets, idx[child], idx[child+1]) {
			child++
		}
		if !lessSets(sets, idx[root], idx[child]) {
			return
		}
		idx[root], idx[child] = idx[child], idx[root]
		root = child
	}
}

// lessSegs orders atomic segments word-lexicographically, ties to the
// shorter segment.
//
//upsim:hotpath
func lessSegs(buf []uint64, start, ln []int32, a, b int32) bool {
	sa, la := start[a], ln[a]
	sb, lb := start[b], ln[b]
	n := la
	if lb < n {
		n = lb
	}
	for i := int32(0); i < n; i++ {
		if buf[sa+i] != buf[sb+i] {
			return buf[sa+i] < buf[sb+i]
		}
	}
	return la < lb
}

//upsim:hotpath
func sortSegIdx(buf []uint64, start, ln []int32, idx []int32) {
	n := len(idx)
	for i := n/2 - 1; i >= 0; i-- {
		siftSegs(buf, start, ln, idx, i, n)
	}
	for i := n - 1; i > 0; i-- {
		idx[0], idx[i] = idx[i], idx[0]
		siftSegs(buf, start, ln, idx, 0, i)
	}
}

//upsim:hotpath
func siftSegs(buf []uint64, start, ln []int32, idx []int32, root, n int) {
	for {
		child := 2*root + 1
		if child >= n {
			return
		}
		if child+1 < n && lessSegs(buf, start, ln, idx[child], idx[child+1]) {
			child++
		}
		if !lessSegs(buf, start, ln, idx[root], idx[child]) {
			return
		}
		idx[root], idx[child] = idx[child], idx[root]
		root = child
	}
}
