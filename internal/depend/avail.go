// Package depend implements the user-perceived service dependability
// analysis sketched in Section VII of the paper: steady-state availability
// of individual components from their MTBF/MTTR attributes (Formula 1),
// reliability block diagrams (RBDs), fault trees, and exact and simulative
// evaluation of the service structure function built from the UPSIM's
// redundant paths. The companion paper "[20] A. Dittrich and R. Rezende,
// Model-driven evaluation of user-perceived service availability" is only
// available on request; this package implements the analysis the outlook
// section specifies: "Such analysis can be performed by transforming the
// UPSIM to a reliability block diagram (RBD) or fault-tree (FT), in which
// entities correspond to components of the UPSIM."
package depend

import (
	"fmt"
)

// Availability returns the steady-state availability of a component with
// the given mean time between failures and mean time to repair:
//
//	A = MTBF / (MTBF + MTTR)
//
// which is the standard renewal-theory result for alternating up/down
// processes.
func Availability(mtbf, mttr float64) (float64, error) {
	if err := checkTimes(mtbf, mttr); err != nil {
		return 0, err
	}
	return mtbf / (mtbf + mttr), nil
}

// AvailabilityFormula1 returns the paper's Formula 1,
//
//	A = 1 − MTTR/MTBF,
//
// the first-order approximation of Availability for MTTR ≪ MTBF. The
// experiments report the delta between the two (it is below 1e-4 for every
// component class of the case study). For MTTR ≥ MTBF the approximation
// would go non-positive; that is reported as an error.
func AvailabilityFormula1(mtbf, mttr float64) (float64, error) {
	if err := checkTimes(mtbf, mttr); err != nil {
		return 0, err
	}
	a := 1 - mttr/mtbf
	if a <= 0 {
		return 0, fmt.Errorf("depend: Formula 1 breaks down for MTTR (%v) >= MTBF (%v)", mttr, mtbf)
	}
	return a, nil
}

func checkTimes(mtbf, mttr float64) error {
	if mtbf <= 0 {
		return fmt.Errorf("depend: MTBF %v must be positive", mtbf)
	}
	if mttr < 0 {
		return fmt.Errorf("depend: MTTR %v must be non-negative", mttr)
	}
	return nil
}

// Unavailability returns 1 − Availability(mtbf, mttr).
func Unavailability(mtbf, mttr float64) (float64, error) {
	a, err := Availability(mtbf, mttr)
	if err != nil {
		return 0, err
	}
	return 1 - a, nil
}

// checkProb validates a probability value.
func checkProb(p float64, what string) error {
	if p < 0 || p > 1 || p != p {
		return fmt.Errorf("depend: %s %v outside [0,1]", what, p)
	}
	return nil
}
