package depend

import (
	"math"
	"testing"
	"testing/quick"
)

// simpleStructure: one atomic service with two disjoint paths {a,b} and
// {c,d} — series-parallel, so Exact == RBDApprox.
func simpleStructure() (*ServiceStructure, map[string]float64) {
	st := &ServiceStructure{AtomicServices: []AtomicStructure{
		{Name: "s", PathSets: []PathSet{{"a", "b"}, {"c", "d"}}},
	}}
	avail := map[string]float64{"a": 0.9, "b": 0.95, "c": 0.9, "d": 0.95}
	return st, avail
}

// sharedStructure: two paths sharing component x — the bridge case where
// the naive RBD overestimates.
func sharedStructure() (*ServiceStructure, map[string]float64) {
	st := &ServiceStructure{AtomicServices: []AtomicStructure{
		{Name: "s", PathSets: []PathSet{{"x", "a"}, {"x", "b"}}},
	}}
	avail := map[string]float64{"x": 0.9, "a": 0.8, "b": 0.8}
	return st, avail
}

func TestExactSeriesParallel(t *testing.T) {
	st, avail := simpleStructure()
	exact, err := st.Exact(avail)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 - (1-0.9*0.95)*(1-0.9*0.95)
	if math.Abs(exact-want) > 1e-12 {
		t.Errorf("exact = %v, want %v", exact, want)
	}
	rbd, err := st.RBDApprox(avail)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(exact-rbd) > 1e-12 {
		t.Errorf("disjoint paths: exact (%v) must equal RBD (%v)", exact, rbd)
	}
}

func TestExactSharedComponent(t *testing.T) {
	st, avail := sharedStructure()
	// Exact: A = A_x * (1 - (1-A_a)(1-A_b)) = 0.9 * (1 - 0.04) = 0.864.
	exact, err := st.Exact(avail)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(exact-0.864) > 1e-12 {
		t.Errorf("exact = %v, want 0.864", exact)
	}
	// Naive RBD treats the two x's as independent:
	// 1 - (1-0.72)^2 = 0.9216 > exact.
	rbd, _ := st.RBDApprox(avail)
	if math.Abs(rbd-0.9216) > 1e-12 {
		t.Errorf("rbd = %v, want 0.9216", rbd)
	}
	if rbd <= exact {
		t.Error("naive RBD must overestimate with shared components")
	}
}

func TestExactMultipleAtomics(t *testing.T) {
	// Two atomic services over the same single path {a,b}: the service
	// needs a AND b once, not twice.
	st := &ServiceStructure{AtomicServices: []AtomicStructure{
		{Name: "s1", PathSets: []PathSet{{"a", "b"}}},
		{Name: "s2", PathSets: []PathSet{{"a", "b"}}},
	}}
	avail := map[string]float64{"a": 0.9, "b": 0.9}
	exact, err := st.Exact(avail)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(exact-0.81) > 1e-12 {
		t.Errorf("exact = %v, want 0.81", exact)
	}
	// RBD squares it: 0.81^2.
	rbd, _ := st.RBDApprox(avail)
	if math.Abs(rbd-0.81*0.81) > 1e-12 {
		t.Errorf("rbd = %v, want %v", rbd, 0.81*0.81)
	}
}

func TestExactDegenerate(t *testing.T) {
	st, avail := simpleStructure()
	// Perfect components: availability 1.
	perfect := map[string]float64{"a": 1, "b": 1, "c": 1, "d": 1}
	if got, _ := st.Exact(perfect); got != 1 {
		t.Errorf("perfect = %v", got)
	}
	// A dead component on one path leaves the other path.
	dead := cloneAvail(avail)
	dead["a"] = 0
	got, _ := st.Exact(dead)
	want := 0.9 * 0.95
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("one dead path = %v, want %v", got, want)
	}
}

func TestStructureValidate(t *testing.T) {
	cases := []*ServiceStructure{
		{},
		{AtomicServices: []AtomicStructure{{Name: "", PathSets: []PathSet{{"a"}}}}},
		{AtomicServices: []AtomicStructure{{Name: "s"}}},
		{AtomicServices: []AtomicStructure{{Name: "s", PathSets: []PathSet{{}}}}},
	}
	for i, st := range cases {
		if err := st.Validate(); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
	st, avail := simpleStructure()
	if err := st.Validate(); err != nil {
		t.Errorf("valid structure rejected: %v", err)
	}
	// Missing availability entry.
	delete(avail, "d")
	if _, err := st.Exact(avail); err == nil {
		t.Error("missing availability should fail")
	}
	avail["d"] = 1.5
	if _, err := st.Exact(avail); err == nil {
		t.Error("out-of-range availability should fail")
	}
}

func TestComponents(t *testing.T) {
	st, _ := sharedStructure()
	got := st.Components()
	want := []string{"a", "b", "x"}
	if len(got) != len(want) {
		t.Fatalf("Components = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Components[%d] = %s", i, got[i])
		}
	}
}

func TestMonteCarloAgreesWithExact(t *testing.T) {
	for name, build := range map[string]func() (*ServiceStructure, map[string]float64){
		"simple": simpleStructure,
		"shared": sharedStructure,
	} {
		st, avail := build()
		exact, err := st.Exact(avail)
		if err != nil {
			t.Fatal(err)
		}
		mc, se, err := st.MonteCarlo(avail, 200000, 42)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(mc-exact) > 5*se+1e-9 {
			t.Errorf("%s: MC = %v ± %v, exact = %v", name, mc, se, exact)
		}
	}
}

func TestMonteCarloDeterministic(t *testing.T) {
	st, avail := sharedStructure()
	a1, _, _ := st.MonteCarlo(avail, 10000, 7)
	a2, _, _ := st.MonteCarlo(avail, 10000, 7)
	if a1 != a2 {
		t.Error("same seed must give same estimate")
	}
	if _, _, err := st.MonteCarlo(avail, 0, 7); err == nil {
		t.Error("zero samples should fail")
	}
}

func TestBirnbaum(t *testing.T) {
	st, avail := sharedStructure()
	// x is a single point of failure: importance = A(up) - A(down) =
	// (1-0.04) - 0 = 0.96.
	bx, err := st.Birnbaum(avail, "x")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(bx-0.96) > 1e-12 {
		t.Errorf("Birnbaum(x) = %v, want 0.96", bx)
	}
	// a is redundant with b: importance = 0.9*(1) - 0.9*0.8 = 0.18.
	ba, err := st.Birnbaum(avail, "a")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ba-0.18) > 1e-12 {
		t.Errorf("Birnbaum(a) = %v, want 0.18", ba)
	}
	if bx <= ba {
		t.Error("single point of failure must dominate redundant component")
	}
	if _, err := st.Birnbaum(avail, "ghost"); err == nil {
		t.Error("unknown component should fail")
	}
}

func TestToRBDShape(t *testing.T) {
	st, avail := simpleStructure()
	b, err := st.ToRBD(avail)
	if err != nil {
		t.Fatal(err)
	}
	s := b.String()
	if s == "" {
		t.Error("empty RBD rendering")
	}
	a, err := b.Availability()
	if err != nil {
		t.Fatal(err)
	}
	if a <= 0 || a > 1 {
		t.Errorf("RBD availability = %v", a)
	}
}

// Properties of the exact engine: result in [0,1]; monotone in every
// component availability; agrees with the RBD when all paths are disjoint.
func TestExactProperties(t *testing.T) {
	norm := func(x uint16) float64 { return float64(x%1001) / 1000 }
	f := func(pa, pb, pc, pd, px uint16) bool {
		st := &ServiceStructure{AtomicServices: []AtomicStructure{
			{Name: "s1", PathSets: []PathSet{{"x", "a"}, {"x", "b"}}},
			{Name: "s2", PathSets: []PathSet{{"c"}, {"d"}}},
		}}
		avail := map[string]float64{
			"a": norm(pa), "b": norm(pb), "c": norm(pc), "d": norm(pd), "x": norm(px),
		}
		v, err := st.Exact(avail)
		if err != nil || v < -1e-12 || v > 1+1e-12 {
			return false
		}
		// Monotonicity in x.
		hi := cloneAvail(avail)
		hi["x"] = math.Min(1, avail["x"]+0.1)
		v2, err := st.Exact(hi)
		if err != nil || v2+1e-12 < v {
			return false
		}
		// Exact never exceeds the naive RBD (positive dependence through
		// shared components only ever hurts redundancy).
		rbd, err := st.RBDApprox(avail)
		return err == nil && v <= rbd+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMonteCarloParallel(t *testing.T) {
	st, avail := sharedStructure()
	exact, err := st.Exact(avail)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{-1, 1, 2, 8} {
		mc, se, err := st.MonteCarloParallel(avail, 100000, 42, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if math.Abs(mc-exact) > 5*se+1e-9 {
			t.Errorf("workers=%d: MC %v ± %v vs exact %v", workers, mc, se, exact)
		}
	}
	// Reproducible for a fixed triple.
	a1, _, _ := st.MonteCarloParallel(avail, 50000, 7, 4)
	a2, _, _ := st.MonteCarloParallel(avail, 50000, 7, 4)
	if a1 != a2 {
		t.Error("same (samples, seed, workers) must reproduce")
	}
	// More workers than samples is clamped, not an error.
	if _, _, err := st.MonteCarloParallel(avail, 3, 1, 64); err != nil {
		t.Errorf("worker clamping failed: %v", err)
	}
	if _, _, err := st.MonteCarloParallel(avail, 0, 1, 2); err == nil {
		t.Error("zero samples should fail")
	}
	bad := &ServiceStructure{}
	if _, _, err := bad.MonteCarloParallel(avail, 10, 1, 2); err == nil {
		t.Error("invalid structure should fail")
	}
}
