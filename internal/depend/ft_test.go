package depend

import (
	"math"
	"strings"
	"testing"
)

func TestBasicEvent(t *testing.T) {
	p, err := BasicEvent{Name: "e", Q: 0.01}.Probability()
	if err != nil || p != 0.01 {
		t.Errorf("basic event = %v, %v", p, err)
	}
	if _, err := (BasicEvent{Name: "bad", Q: -1}).Probability(); err == nil {
		t.Error("negative probability should fail")
	}
}

func TestGates(t *testing.T) {
	and := AndGate{BasicEvent{Q: 0.1}, BasicEvent{Q: 0.2}}
	if p, _ := and.Probability(); math.Abs(p-0.02) > 1e-12 {
		t.Errorf("AND = %v", p)
	}
	or := OrGate{BasicEvent{Q: 0.1}, BasicEvent{Q: 0.2}}
	if p, _ := or.Probability(); math.Abs(p-0.28) > 1e-12 {
		t.Errorf("OR = %v", p)
	}
	vote := VoteGate{K: 2, Inputs: []FTNode{BasicEvent{Q: 0.5}, BasicEvent{Q: 0.5}, BasicEvent{Q: 0.5}}}
	if p, _ := vote.Probability(); math.Abs(p-0.5) > 1e-12 {
		t.Errorf("2-of-3 vote at q=0.5 = %v, want 0.5", p)
	}
	if _, err := (AndGate{}).Probability(); err == nil {
		t.Error("empty AND should fail")
	}
	if _, err := (OrGate{}).Probability(); err == nil {
		t.Error("empty OR should fail")
	}
	if _, err := (VoteGate{K: 1}).Probability(); err == nil {
		t.Error("empty VOTE should fail")
	}
	if _, err := (VoteGate{K: 5, Inputs: []FTNode{BasicEvent{Q: 0.5}}}).Probability(); err == nil {
		t.Error("k>n VOTE should fail")
	}
	bad := BasicEvent{Q: 2}
	for _, g := range []FTNode{AndGate{bad}, OrGate{bad}, VoteGate{K: 1, Inputs: []FTNode{bad}}} {
		if _, err := g.Probability(); err == nil {
			t.Errorf("%T must propagate child errors", g)
		}
	}
	if !strings.Contains(vote.String(), "VOTE[2/3]") {
		t.Errorf("vote String = %q", vote.String())
	}
	if !strings.Contains(and.String(), "AND(") || !strings.Contains(or.String(), "OR(") {
		t.Error("gate rendering broken")
	}
}

func TestFaultTreeDuality(t *testing.T) {
	// 1 − P(top event) must equal the RBD approximation for any structure,
	// since the FT is the exact failure-space dual of the RBD.
	for name, build := range map[string]func() (*ServiceStructure, map[string]float64){
		"simple": simpleStructure,
		"shared": sharedStructure,
	} {
		st, avail := build()
		ft, err := st.ToFaultTree(avail)
		if err != nil {
			t.Fatal(err)
		}
		q, err := ft.Probability()
		if err != nil {
			t.Fatal(err)
		}
		rbd, err := st.RBDApprox(avail)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs((1-q)-rbd) > 1e-12 {
			t.Errorf("%s: 1-FT (%v) != RBD (%v)", name, 1-q, rbd)
		}
	}
}

func TestToFaultTreeValidates(t *testing.T) {
	bad := &ServiceStructure{}
	if _, err := bad.ToFaultTree(nil); err == nil {
		t.Error("invalid structure should fail")
	}
	st, avail := simpleStructure()
	delete(avail, "a")
	if _, err := st.ToFaultTree(avail); err == nil {
		t.Error("missing availability should fail")
	}
}
