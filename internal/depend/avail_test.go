package depend

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAvailability(t *testing.T) {
	tests := []struct {
		mtbf, mttr, want float64
	}{
		{60000, 0.1, 60000.0 / 60000.1},
		{3000, 24, 3000.0 / 3024.0},
		{100, 100, 0.5},
		{1, 0, 1},
	}
	for _, tt := range tests {
		got, err := Availability(tt.mtbf, tt.mttr)
		if err != nil {
			t.Fatalf("Availability(%v, %v): %v", tt.mtbf, tt.mttr, err)
		}
		if math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Availability(%v, %v) = %v, want %v", tt.mtbf, tt.mttr, got, tt.want)
		}
	}
}

func TestAvailabilityFormula1(t *testing.T) {
	// The paper's approximation: A = 1 − MTTR/MTBF.
	got, err := AvailabilityFormula1(3000, 24)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.992) > 1e-12 {
		t.Errorf("Formula1(3000,24) = %v, want 0.992", got)
	}
	// It approximates the exact value from below for MTTR>0.
	exact, _ := Availability(3000, 24)
	if got >= exact {
		t.Errorf("Formula 1 (%v) should underestimate exact (%v)", got, exact)
	}
	// Breakdown for MTTR >= MTBF.
	if _, err := AvailabilityFormula1(10, 10); err == nil {
		t.Error("Formula1 with MTTR == MTBF should fail")
	}
}

func TestAvailabilityErrors(t *testing.T) {
	if _, err := Availability(0, 1); err == nil {
		t.Error("zero MTBF should fail")
	}
	if _, err := Availability(-1, 1); err == nil {
		t.Error("negative MTBF should fail")
	}
	if _, err := Availability(1, -1); err == nil {
		t.Error("negative MTTR should fail")
	}
	if _, err := Unavailability(0, 1); err == nil {
		t.Error("Unavailability must validate too")
	}
}

func TestUnavailability(t *testing.T) {
	u, err := Unavailability(100, 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(u-0.5) > 1e-12 {
		t.Errorf("Unavailability = %v", u)
	}
}

// Properties: availability is in (0,1], monotone increasing in MTBF and
// decreasing in MTTR, and Formula 1 is always a lower bound when defined.
func TestAvailabilityProperties(t *testing.T) {
	gen := func(raw uint16) float64 { return 1 + float64(raw%10000) }
	inRange := func(m, r uint16) bool {
		a, err := Availability(gen(m), gen(r))
		return err == nil && a > 0 && a <= 1
	}
	if err := quick.Check(inRange, nil); err != nil {
		t.Error(err)
	}
	monotone := func(m, r uint16) bool {
		mtbf, mttr := gen(m), gen(r)
		a1, _ := Availability(mtbf, mttr)
		a2, _ := Availability(mtbf*2, mttr)
		a3, _ := Availability(mtbf, mttr*2)
		return a2 >= a1 && a3 <= a1
	}
	if err := quick.Check(monotone, nil); err != nil {
		t.Error(err)
	}
	bound := func(m, r uint16) bool {
		mtbf := gen(m) + 10000 // ensure MTBF > MTTR
		mttr := gen(r)
		f1, err := AvailabilityFormula1(mtbf, mttr)
		if err != nil {
			return true
		}
		exact, _ := Availability(mtbf, mttr)
		return f1 <= exact
	}
	if err := quick.Check(bound, nil); err != nil {
		t.Error(err)
	}
}
