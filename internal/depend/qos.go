package depend

import (
	"fmt"
	"math"

	"upsim/internal/core"
)

// Section VII of the paper positions the UPSIM as the substrate for "various
// user-perceived dependability properties (e.g.: availability,
// performability, responsiveness)". This file implements the other two
// properties named there:
//
//   - Performability: the throughput a specific (requester, provider) pair
//     can sustain, from the Communication profile's throughput attribute on
//     every traversed link — per atomic service the widest (maximum
//     bottleneck) path, for the composite service the minimum over its
//     atomic services (every atomic service must move its data).
//
//   - Responsiveness: the probability that the service is delivered
//     *timely* for the user, modelled as the steady-state availability of
//     the sub-structure restricted to paths within a hop budget — long
//     redundant detours keep a service available but not responsive, so the
//     responsiveness of a perspective is at most its availability, with
//     equality when every redundant path fits the budget.

// AtomicThroughput is the performability result for one atomic service.
type AtomicThroughput struct {
	AtomicService string
	// Bottleneck is the best achievable throughput over all redundant
	// paths: max over paths of min over links.
	Bottleneck float64
	// BestPath is the paper-style rendering of a path achieving it.
	BestPath string
}

// ThroughputReport is the performability analysis of one UPSIM.
type ThroughputReport struct {
	PerService []AtomicThroughput
	// Service is the end-to-end sustainable throughput: the minimum over
	// atomic services.
	Service float64
}

// Throughput computes the performability report for a generation result.
// Every traversed link must carry a positive "throughput" attribute (the
// network profile's Communication stereotype).
func Throughput(res *core.Result) (*ThroughputReport, error) {
	if res == nil || res.Source == nil {
		return nil, fmt.Errorf("depend: nil generation result")
	}
	links := res.Source.Links()
	rep := &ThroughputReport{Service: math.Inf(1)}
	for _, sp := range res.Services {
		at := AtomicThroughput{AtomicService: sp.AtomicService}
		for _, p := range sp.Paths {
			bottleneck := math.Inf(1)
			for _, id := range p.Edges {
				if id < 0 || id >= len(links) {
					return nil, fmt.Errorf("depend: path references unknown edge %d", id)
				}
				v, ok := links[id].Property("throughput")
				if !ok {
					return nil, fmt.Errorf("depend: link %s has no throughput attribute (network profile not applied?)",
						links[id].Signature())
				}
				tp := v.AsReal()
				if tp <= 0 {
					return nil, fmt.Errorf("depend: link %s has non-positive throughput %v",
						links[id].Signature(), tp)
				}
				if tp < bottleneck {
					bottleneck = tp
				}
			}
			if len(p.Edges) == 0 {
				continue
			}
			if bottleneck > at.Bottleneck {
				at.Bottleneck = bottleneck
				at.BestPath = p.String()
			}
		}
		if at.Bottleneck == 0 {
			return nil, fmt.Errorf("depend: atomic service %q has no usable path", sp.AtomicService)
		}
		rep.PerService = append(rep.PerService, at)
		if at.Bottleneck < rep.Service {
			rep.Service = at.Bottleneck
		}
	}
	if len(rep.PerService) == 0 {
		return nil, fmt.Errorf("depend: result has no atomic services")
	}
	return rep, nil
}

// ResponsivenessReport relates timely delivery to plain availability.
type ResponsivenessReport struct {
	// MaxHops is the applied hop budget.
	MaxHops int
	// Responsiveness is the probability of timely service: the exact
	// availability over the budget-respecting paths only.
	Responsiveness float64
	// Availability is the unrestricted exact availability, for comparison.
	Availability float64
	// PathsWithinBudget and PathsTotal count the per-atomic-service paths
	// kept and available overall.
	PathsWithinBudget int
	PathsTotal        int
}

// Responsiveness computes the probability of timely service delivery for a
// hop budget: the exact availability of the structure restricted to
// discovered paths of at most maxHops edges. An atomic service whose every
// path exceeds the budget makes the service unresponsive (probability 0).
func Responsiveness(res *core.Result, model AvailabilityModel, maxHops int) (*ResponsivenessReport, error) {
	if maxHops < 1 {
		return nil, fmt.Errorf("depend: hop budget %d must be positive", maxHops)
	}
	st, cs, avail, err := FromResult(res, model)
	if err != nil {
		return nil, err
	}
	full, err := cs.Exact(avail)
	if err != nil {
		return nil, err
	}
	rep := &ResponsivenessReport{MaxHops: maxHops, Availability: full}

	restricted := &ServiceStructure{}
	for i, sp := range res.Services {
		atomic := AtomicStructure{Name: sp.AtomicService}
		for j, p := range sp.Paths {
			rep.PathsTotal++
			if p.Len() <= maxHops {
				rep.PathsWithinBudget++
				atomic.PathSets = append(atomic.PathSets, st.AtomicServices[i].PathSets[j])
			}
		}
		if len(atomic.PathSets) == 0 {
			// No timely path: the service cannot respond within budget.
			rep.Responsiveness = 0
			return rep, nil
		}
		restricted.AtomicServices = append(restricted.AtomicServices, atomic)
	}
	r, err := Compile(restricted).Exact(avail)
	if err != nil {
		return nil, err
	}
	rep.Responsiveness = r
	return rep, nil
}
