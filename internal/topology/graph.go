// Package topology provides the graph view of ICT infrastructures that the
// path-discovery algorithm (Section V-D) operates on: "The algorithm sees
// the infrastructure as a graph and iteratively extracts all possible paths
// between two vertices requester and provider."
//
// A Graph is an undirected multigraph with string-named nodes; parallel
// edges model redundant physical connections (the paper's core switches have
// "redundant connections"). The package also provides synthetic topology
// generators (trees, campus networks, meshes, random graphs with tunable
// loop density) used by the scalability experiments, plus Graphviz DOT
// export for visualising infrastructures and UPSIMs.
package topology

import (
	"fmt"
	"sort"

	"upsim/internal/uml"
)

// Node is one vertex of the graph, carrying the instance name and its class
// name (the ":Class" part of the object-diagram signature).
type Node struct {
	Name  string
	Class string
}

// Signature renders the node as "name:Class".
func (n Node) Signature() string {
	if n.Class == "" {
		return n.Name
	}
	return n.Name + ":" + n.Class
}

// Edge is one undirected edge, identified by a dense integer ID so that
// parallel edges between the same pair of nodes stay distinguishable.
type Edge struct {
	ID   int
	A, B string
	// Label carries the association name when the graph is derived from an
	// object diagram.
	Label string
}

// Other returns the opposite endpoint relative to name, or "" if name is not
// an endpoint.
func (e Edge) Other(name string) string {
	switch name {
	case e.A:
		return e.B
	case e.B:
		return e.A
	}
	return ""
}

// Graph is an undirected multigraph. The zero value is not usable; call New.
//
// Graphs are mutable: nodes and edges can be added at any time, and — since
// the live-topology what-if engine (DESIGN.md §13) — removed again via
// RemoveNode/RemoveEdge (see delta.go). Removal tombstones the edge slot so
// edge IDs stay stable and are never reused; every mutation bumps the
// Generation counter so compiled views (internal/pathdisc) and caches can
// detect drift.
type Graph struct {
	nodes map[string]Node
	order []string
	edges []Edge
	adj   map[string][]int // node -> incident edge IDs, insertion order

	dead       []bool // parallel to edges; true = removed (tombstoned slot)
	liveEdges  int
	generation uint64 // bumped by every mutation
}

// New creates an empty graph.
func New() *Graph {
	return &Graph{
		nodes: make(map[string]Node),
		adj:   make(map[string][]int),
	}
}

// AddNode inserts a node. Node names are unique.
func (g *Graph) AddNode(name, class string) error {
	if name == "" {
		return fmt.Errorf("topology: empty node name")
	}
	if _, dup := g.nodes[name]; dup {
		return fmt.Errorf("topology: duplicate node %q", name)
	}
	g.nodes[name] = Node{Name: name, Class: class}
	g.order = append(g.order, name)
	g.generation++
	return nil
}

// AddEdge inserts an undirected edge between two existing nodes and returns
// its ID. Parallel edges and self-loops are allowed — a self-loop is almost
// certainly a modelling mistake (a connector joins two distinct devices),
// but the graph layer represents it faithfully so the lint engine can report
// it instead of the importer silently failing. Simple paths never traverse a
// self-loop, so path discovery is unaffected.
func (g *Graph) AddEdge(a, b, label string) (int, error) {
	if _, ok := g.nodes[a]; !ok {
		return 0, fmt.Errorf("topology: unknown node %q", a)
	}
	if _, ok := g.nodes[b]; !ok {
		return 0, fmt.Errorf("topology: unknown node %q", b)
	}
	id := len(g.edges)
	g.edges = append(g.edges, Edge{ID: id, A: a, B: b, Label: label})
	g.dead = append(g.dead, false)
	g.adj[a] = append(g.adj[a], id)
	g.adj[b] = append(g.adj[b], id)
	g.liveEdges++
	g.generation++
	return id, nil
}

// HasNode reports whether the named node exists.
func (g *Graph) HasNode(name string) bool {
	_, ok := g.nodes[name]
	return ok
}

// Node returns the named node.
func (g *Graph) Node(name string) (Node, bool) {
	n, ok := g.nodes[name]
	return n, ok
}

// Nodes returns the nodes in insertion order.
func (g *Graph) Nodes() []Node {
	out := make([]Node, 0, len(g.order))
	for _, n := range g.order {
		out = append(out, g.nodes[n])
	}
	return out
}

// NodeNames returns the sorted node names.
func (g *Graph) NodeNames() []string {
	out := make([]string, len(g.order))
	copy(out, g.order)
	sort.Strings(out)
	return out
}

// Edge returns the edge with the given ID. Removed edges report !ok.
func (g *Graph) Edge(id int) (Edge, bool) {
	if id < 0 || id >= len(g.edges) || g.dead[id] {
		return Edge{}, false
	}
	return g.edges[id], true
}

// Edges returns the live edges in insertion order. Edge IDs are stable
// across removals, so after a RemoveEdge the IDs need not be contiguous.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.liveEdges)
	for i, e := range g.edges {
		if !g.dead[i] {
			out = append(out, e)
		}
	}
	return out
}

// IncidentEdges returns the IDs of edges incident to the node, in insertion
// order. The slice is shared; callers must not modify it.
func (g *Graph) IncidentEdges(name string) []int { return g.adj[name] }

// Degree returns the number of incident edges (parallel edges counted).
func (g *Graph) Degree(name string) int { return len(g.adj[name]) }

// Neighbors returns the distinct neighbor names in first-seen order.
func (g *Graph) Neighbors(name string) []string {
	seen := make(map[string]bool)
	var out []string
	for _, id := range g.adj[name] {
		o := g.edges[id].Other(name)
		if !seen[o] {
			seen[o] = true
			out = append(out, o)
		}
	}
	return out
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns the live edge count (parallel edges counted).
func (g *Graph) NumEdges() int { return g.liveEdges }

// Connected reports whether the graph is connected (an empty graph is
// connected by convention).
func (g *Graph) Connected() bool {
	if len(g.order) == 0 {
		return true
	}
	seen := map[string]bool{g.order[0]: true}
	stack := []string{g.order[0]}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, id := range g.adj[n] {
			o := g.edges[id].Other(n)
			if !seen[o] {
				seen[o] = true
				stack = append(stack, o)
			}
		}
	}
	return len(seen) == len(g.nodes)
}

// InducedSubgraph returns the subgraph induced by keep: the named nodes and
// every edge whose both endpoints are kept. Unknown names in keep are
// ignored. This is the "filter on the complete topology" of Section VI-H.
func (g *Graph) InducedSubgraph(keep map[string]bool) *Graph {
	sub := New()
	for _, n := range g.order {
		if keep[n] {
			node := g.nodes[n]
			_ = sub.AddNode(node.Name, node.Class)
		}
	}
	for i, e := range g.edges {
		if !g.dead[i] && keep[e.A] && keep[e.B] {
			_, _ = sub.AddEdge(e.A, e.B, e.Label)
		}
	}
	return sub
}

// FromObjectDiagram builds the graph view of a UML object diagram: one node
// per instance specification (classifier name attached), one edge per link
// (association name attached). This is the hand-off point between Step 5
// (imported models) and Step 7 (path discovery).
func FromObjectDiagram(d *uml.ObjectDiagram) *Graph {
	g := New()
	for _, inst := range d.Instances() {
		_ = g.AddNode(inst.Name(), inst.Classifier().Name())
	}
	for _, l := range d.Links() {
		a, b := l.Ends()
		_, _ = g.AddEdge(a.Name(), b.Name(), l.Association().Name())
	}
	return g
}
