package topology

import (
	"testing"
	"testing/quick"
)

func TestTree(t *testing.T) {
	g, err := Tree(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	// 1 + 2 + 4 + 8 = 15 nodes, 14 edges.
	if g.NumNodes() != 15 || g.NumEdges() != 14 {
		t.Errorf("tree(2,3) = %d nodes, %d edges", g.NumNodes(), g.NumEdges())
	}
	if !g.Connected() {
		t.Error("tree must be connected")
	}
	if g, _ := Tree(3, 0); g.NumNodes() != 1 || g.NumEdges() != 0 {
		t.Error("depth-0 tree is a single node")
	}
	if _, err := Tree(0, 1); err == nil {
		t.Error("fanout 0 should fail")
	}
	if _, err := Tree(2, -1); err == nil {
		t.Error("negative depth should fail")
	}
}

func TestChainRingStar(t *testing.T) {
	c, err := Chain(5)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumNodes() != 5 || c.NumEdges() != 4 || !c.Connected() {
		t.Error("chain(5) malformed")
	}
	if _, err := Chain(0); err == nil {
		t.Error("chain(0) should fail")
	}
	r, err := Ring(5)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumNodes() != 5 || r.NumEdges() != 5 {
		t.Error("ring(5) malformed")
	}
	for _, n := range r.Nodes() {
		if r.Degree(n.Name) != 2 {
			t.Errorf("ring degree(%s) = %d", n.Name, r.Degree(n.Name))
		}
	}
	if _, err := Ring(2); err == nil {
		t.Error("ring(2) should fail")
	}
	s, err := Star(6)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumNodes() != 6 || s.NumEdges() != 5 || s.Degree("n0") != 5 {
		t.Error("star(6) malformed")
	}
	if _, err := Star(0); err == nil {
		t.Error("star(0) should fail")
	}
}

func TestMesh(t *testing.T) {
	g, err := Mesh(6)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 6 || g.NumEdges() != 15 {
		t.Errorf("mesh(6) = %d nodes, %d edges", g.NumNodes(), g.NumEdges())
	}
	for _, n := range g.Nodes() {
		if g.Degree(n.Name) != 5 {
			t.Errorf("mesh degree(%s) = %d", n.Name, g.Degree(n.Name))
		}
	}
	if _, err := Mesh(0); err == nil {
		t.Error("mesh(0) should fail")
	}
}

func TestLadder(t *testing.T) {
	g, err := Ladder(5)
	if err != nil {
		t.Fatal(err)
	}
	// 2n nodes, 2(n-1) rail edges + n rungs.
	if g.NumNodes() != 10 || g.NumEdges() != 13 {
		t.Errorf("ladder(5) = %d nodes, %d edges", g.NumNodes(), g.NumEdges())
	}
	if !g.Connected() {
		t.Error("ladder must be connected")
	}
	// Corners have degree 2, interior rail nodes degree 3.
	for _, c := range []string{"n0", "n4", "n5", "n9"} {
		if g.Degree(c) != 2 {
			t.Errorf("ladder corner degree(%s) = %d", c, g.Degree(c))
		}
	}
	for _, in := range []string{"n1", "n2", "n3", "n6", "n7", "n8"} {
		if g.Degree(in) != 3 {
			t.Errorf("ladder interior degree(%s) = %d", in, g.Degree(in))
		}
	}
	if _, err := Ladder(1); err == nil {
		t.Error("ladder(1) should fail")
	}
}

func TestRandomConnected(t *testing.T) {
	g, err := RandomConnected(50, 0, 42)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 50 || g.NumEdges() != 49 {
		t.Errorf("density-0 random graph should be a tree: %d nodes, %d edges",
			g.NumNodes(), g.NumEdges())
	}
	if !g.Connected() {
		t.Error("random graph must be connected")
	}
	dense, err := RandomConnected(20, 1, 42)
	if err != nil {
		t.Fatal(err)
	}
	if dense.NumEdges() != 20*19/2 {
		t.Errorf("density-1 random graph should be complete: %d edges", dense.NumEdges())
	}
	// Determinism: same seed, same graph.
	g2, _ := RandomConnected(50, 0.1, 7)
	g3, _ := RandomConnected(50, 0.1, 7)
	if g2.NumEdges() != g3.NumEdges() {
		t.Error("same seed must give same graph")
	}
	e2, e3 := g2.Edges(), g3.Edges()
	for i := range e2 {
		if e2[i] != e3[i] {
			t.Fatalf("edge %d differs: %+v vs %+v", i, e2[i], e3[i])
		}
	}
	if _, err := RandomConnected(0, 0.1, 1); err == nil {
		t.Error("size 0 should fail")
	}
	if _, err := RandomConnected(5, -0.1, 1); err == nil {
		t.Error("negative density should fail")
	}
	if _, err := RandomConnected(5, 1.1, 1); err == nil {
		t.Error("density > 1 should fail")
	}
}

// Property: random connected graphs are connected for any size and density.
func TestRandomConnectedProperty(t *testing.T) {
	f := func(nRaw uint8, dRaw uint8, seed int64) bool {
		n := int(nRaw)%40 + 1
		d := float64(dRaw%101) / 100
		g, err := RandomConnected(n, d, seed)
		return err == nil && g.Connected() && g.NumNodes() == n && g.NumEdges() >= n-1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCampus(t *testing.T) {
	g, err := Campus(CampusParams{
		EdgeSwitches:     4,
		ClientsPerEdge:   3,
		ServersPerSwitch: 2,
		RedundantCore:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 2 cores + 2 dist + 2 server switches + 4 edges + 12 clients + 4 servers = 26.
	if g.NumNodes() != 26 {
		t.Errorf("campus nodes = %d, want 26", g.NumNodes())
	}
	// core 2 + dist 4 + srvswitch 4 + edge uplinks 4 + clients 12 + servers 4 = 30.
	if g.NumEdges() != 30 {
		t.Errorf("campus edges = %d, want 30", g.NumEdges())
	}
	if !g.Connected() {
		t.Error("campus must be connected")
	}
	if len(g.IncidentEdges("c1")) == 0 {
		t.Error("core switch must have incident edges")
	}
	// Redundant core: two parallel c1--c2 links.
	core := 0
	for _, e := range g.Edges() {
		if (e.A == "c1" && e.B == "c2") || (e.A == "c2" && e.B == "c1") {
			core++
		}
	}
	if core != 2 {
		t.Errorf("core links = %d, want 2", core)
	}
	if _, err := Campus(CampusParams{EdgeSwitches: 0}); err == nil {
		t.Error("campus without edge switches should fail")
	}
	if _, err := Campus(CampusParams{EdgeSwitches: 1, ClientsPerEdge: -1}); err == nil {
		t.Error("negative clients should fail")
	}
}

func TestFatTree(t *testing.T) {
	g, err := FatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	// k=4: 4 cores, 4 pods x (2 agg + 2 edge) = 16 switches, 4 pods x 4
	// hosts = 16 hosts -> 36 nodes.
	if g.NumNodes() != 36 {
		t.Errorf("fat-tree(4) nodes = %d, want 36", g.NumNodes())
	}
	// Edges: agg-core 4*2*2=16, edge-agg 4*2*2=16, host-edge 16 -> 48.
	if g.NumEdges() != 48 {
		t.Errorf("fat-tree(4) edges = %d, want 48", g.NumEdges())
	}
	if !g.Connected() {
		t.Error("fat-tree must be connected")
	}
	// Every host has degree 1, every edge switch k.
	if g.Degree("h0-0-0") != 1 {
		t.Errorf("host degree = %d", g.Degree("h0-0-0"))
	}
	if g.Degree("edge0-0") != 4 {
		t.Errorf("edge switch degree = %d", g.Degree("edge0-0"))
	}
	if g.Degree("core0") != 4 {
		t.Errorf("core degree = %d", g.Degree("core0"))
	}
	for _, bad := range []int{0, 1, 3, -2} {
		if _, err := FatTree(bad); err == nil {
			t.Errorf("FatTree(%d) should fail", bad)
		}
	}
}
