package topology

import "fmt"

// This file holds the delta (mutation) operations behind the live-topology
// what-if engine (DESIGN.md §13). The paper evaluates properties on a fixed
// infrastructure; a production deployment churns, so node/link removal must
// be as first-class as insertion. Removal uses tombstones: the edge slice
// never shrinks, removed slots are marked dead, and edge IDs are never
// reused — this keeps every previously handed-out ID (paths, UPSIMs,
// compiled CSR entries) unambiguous, at the cost of a little slack in the
// slice until the next full Compile.

// Generation returns a monotonic counter bumped by every mutation (AddNode,
// AddEdge, RemoveNode, RemoveEdge). Compiled views and caches record the
// generation they were built from and compare it to detect drift.
func (g *Graph) Generation() uint64 { return g.generation }

// RemoveEdge removes the edge with the given ID. The slot is tombstoned:
// the ID is never reused, Edge(id) reports !ok, and Edges()/NumEdges() skip
// it. Removing an unknown or already-removed edge is an error.
func (g *Graph) RemoveEdge(id int) error {
	if id < 0 || id >= len(g.edges) || g.dead[id] {
		return fmt.Errorf("topology: unknown edge %d", id)
	}
	e := g.edges[id]
	g.adj[e.A] = removeFirstID(g.adj[e.A], id)
	// A self-loop occupies two slots of the same adjacency list.
	g.adj[e.B] = removeFirstID(g.adj[e.B], id)
	g.dead[id] = true
	g.liveEdges--
	g.generation++
	return nil
}

// RemoveNode removes the named node and every edge incident to it (their
// IDs are tombstoned like RemoveEdge). Removing an unknown node is an
// error.
func (g *Graph) RemoveNode(name string) error {
	if _, ok := g.nodes[name]; !ok {
		return fmt.Errorf("topology: unknown node %q", name)
	}
	// Copy: RemoveEdge rewrites the adjacency list we are iterating.
	ids := append([]int(nil), g.adj[name]...)
	for _, id := range ids {
		if !g.dead[id] { // a self-loop appears twice; the second visit sees it dead
			_ = g.RemoveEdge(id)
		}
	}
	delete(g.nodes, name)
	delete(g.adj, name)
	for i, n := range g.order {
		if n == name {
			g.order = append(g.order[:i], g.order[i+1:]...)
			break
		}
	}
	g.generation++
	return nil
}

// EdgesBetween returns the IDs of the live edges joining a and b (parallel
// edges each listed once), in insertion order. For a self-loop pass a == b.
func (g *Graph) EdgesBetween(a, b string) []int {
	var out []int
	for _, id := range g.adj[a] {
		e := g.edges[id]
		if g.dead[id] {
			continue
		}
		if e.Other(a) == b || (a == b && e.A == e.B && e.A == a) {
			if len(out) > 0 && out[len(out)-1] == id {
				continue // self-loop: second slot of the same edge
			}
			out = append(out, id)
		}
	}
	return out
}

// removeFirstID deletes the first occurrence of id, preserving the order of
// the remaining elements (adjacency order is observable through path
// enumeration, so it must match what a fresh insertion-order build yields).
func removeFirstID(ids []int, id int) []int {
	for i, v := range ids {
		if v == id {
			return append(ids[:i], ids[i+1:]...)
		}
	}
	return ids
}
