package topology

import (
	"reflect"
	"testing"
)

func mustNode(t *testing.T, g *Graph, name, class string) {
	t.Helper()
	if err := g.AddNode(name, class); err != nil {
		t.Fatalf("AddNode(%s): %v", name, err)
	}
}

func mustEdge(t *testing.T, g *Graph, a, b, label string) int {
	t.Helper()
	id, err := g.AddEdge(a, b, label)
	if err != nil {
		t.Fatalf("AddEdge(%s,%s): %v", a, b, err)
	}
	return id
}

func TestRemoveEdge(t *testing.T) {
	g := New()
	mustNode(t, g, "a", "Switch")
	mustNode(t, g, "b", "Switch")
	mustNode(t, g, "c", "Switch")
	e0 := mustEdge(t, g, "a", "b", "l0")
	e1 := mustEdge(t, g, "b", "c", "l1")
	e2 := mustEdge(t, g, "a", "b", "l2") // parallel to e0

	if err := g.RemoveEdge(e0); err != nil {
		t.Fatalf("RemoveEdge: %v", err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", g.NumEdges())
	}
	if _, ok := g.Edge(e0); ok {
		t.Fatalf("Edge(%d) still present after removal", e0)
	}
	// IDs of surviving edges are stable.
	if e, ok := g.Edge(e2); !ok || e.Label != "l2" {
		t.Fatalf("Edge(%d) = %+v, %v; want l2", e2, e, ok)
	}
	var ids []int
	for _, e := range g.Edges() {
		ids = append(ids, e.ID)
	}
	if !reflect.DeepEqual(ids, []int{e1, e2}) {
		t.Fatalf("Edges IDs = %v, want [%d %d]", ids, e1, e2)
	}
	if got := g.Degree("a"); got != 1 {
		t.Fatalf("Degree(a) = %d, want 1", got)
	}
	// Double removal is an error.
	if err := g.RemoveEdge(e0); err == nil {
		t.Fatal("double RemoveEdge succeeded")
	}
	if err := g.RemoveEdge(99); err == nil {
		t.Fatal("RemoveEdge(99) succeeded")
	}
	// New edges never reuse a tombstoned ID.
	e3 := mustEdge(t, g, "a", "c", "l3")
	if e3 == e0 {
		t.Fatalf("edge ID %d reused", e0)
	}
}

func TestRemoveEdgeSelfLoop(t *testing.T) {
	g := New()
	mustNode(t, g, "a", "Switch")
	mustNode(t, g, "b", "Switch")
	loop := mustEdge(t, g, "a", "a", "loop")
	mustEdge(t, g, "a", "b", "l")
	if g.Degree("a") != 3 { // self-loop counts twice
		t.Fatalf("Degree(a) = %d, want 3", g.Degree("a"))
	}
	if err := g.RemoveEdge(loop); err != nil {
		t.Fatalf("RemoveEdge(loop): %v", err)
	}
	if g.Degree("a") != 1 {
		t.Fatalf("Degree(a) after loop removal = %d, want 1", g.Degree("a"))
	}
}

func TestRemoveNode(t *testing.T) {
	g := New()
	mustNode(t, g, "a", "Switch")
	mustNode(t, g, "b", "Switch")
	mustNode(t, g, "c", "Switch")
	mustEdge(t, g, "a", "b", "")
	eBC := mustEdge(t, g, "b", "c", "")
	mustEdge(t, g, "b", "b", "loop")

	if err := g.RemoveNode("b"); err != nil {
		t.Fatalf("RemoveNode: %v", err)
	}
	if g.HasNode("b") {
		t.Fatal("node b still present")
	}
	if g.NumNodes() != 2 || g.NumEdges() != 0 {
		t.Fatalf("nodes=%d edges=%d, want 2, 0", g.NumNodes(), g.NumEdges())
	}
	if _, ok := g.Edge(eBC); ok {
		t.Fatal("incident edge survived node removal")
	}
	if g.Degree("a") != 0 || g.Degree("c") != 0 {
		t.Fatalf("degrees a=%d c=%d, want 0,0", g.Degree("a"), g.Degree("c"))
	}
	if err := g.RemoveNode("b"); err == nil {
		t.Fatal("double RemoveNode succeeded")
	}
	// A node can be re-added after removal.
	mustNode(t, g, "b", "Router")
	if n, _ := g.Node("b"); n.Class != "Router" {
		t.Fatalf("re-added node class = %q, want Router", n.Class)
	}
}

func TestGenerationCounter(t *testing.T) {
	g := New()
	if g.Generation() != 0 {
		t.Fatalf("fresh graph generation = %d", g.Generation())
	}
	last := g.Generation()
	step := func(what string, f func() error) {
		t.Helper()
		if err := f(); err != nil {
			t.Fatalf("%s: %v", what, err)
		}
		if g.Generation() <= last {
			t.Fatalf("%s did not advance generation (%d -> %d)", what, last, g.Generation())
		}
		last = g.Generation()
	}
	step("AddNode a", func() error { return g.AddNode("a", "") })
	step("AddNode b", func() error { return g.AddNode("b", "") })
	step("AddEdge", func() error { _, err := g.AddEdge("a", "b", ""); return err })
	step("RemoveEdge", func() error { return g.RemoveEdge(0) })
	step("RemoveNode", func() error { return g.RemoveNode("a") })
	// Failed mutations do not advance the generation.
	if err := g.RemoveNode("a"); err == nil {
		t.Fatal("expected error")
	}
	if g.Generation() != last {
		t.Fatal("failed mutation advanced generation")
	}
}

func TestEdgesBetween(t *testing.T) {
	g := New()
	mustNode(t, g, "a", "")
	mustNode(t, g, "b", "")
	mustNode(t, g, "c", "")
	e0 := mustEdge(t, g, "a", "b", "")
	e1 := mustEdge(t, g, "a", "b", "")
	mustEdge(t, g, "b", "c", "")
	loop := mustEdge(t, g, "a", "a", "loop")

	if got := g.EdgesBetween("a", "b"); !reflect.DeepEqual(got, []int{e0, e1}) {
		t.Fatalf("EdgesBetween(a,b) = %v, want [%d %d]", got, e0, e1)
	}
	if got := g.EdgesBetween("b", "a"); !reflect.DeepEqual(got, []int{e0, e1}) {
		t.Fatalf("EdgesBetween(b,a) = %v, want [%d %d]", got, e0, e1)
	}
	if got := g.EdgesBetween("a", "a"); !reflect.DeepEqual(got, []int{loop}) {
		t.Fatalf("EdgesBetween(a,a) = %v, want [%d]", got, loop)
	}
	if got := g.EdgesBetween("a", "c"); got != nil {
		t.Fatalf("EdgesBetween(a,c) = %v, want nil", got)
	}
	if err := g.RemoveEdge(e0); err != nil {
		t.Fatal(err)
	}
	if got := g.EdgesBetween("a", "b"); !reflect.DeepEqual(got, []int{e1}) {
		t.Fatalf("EdgesBetween after removal = %v, want [%d]", got, e1)
	}
}

func TestInducedSubgraphSkipsRemoved(t *testing.T) {
	g := New()
	mustNode(t, g, "a", "")
	mustNode(t, g, "b", "")
	e0 := mustEdge(t, g, "a", "b", "")
	mustEdge(t, g, "a", "b", "")
	if err := g.RemoveEdge(e0); err != nil {
		t.Fatal(err)
	}
	sub := g.InducedSubgraph(map[string]bool{"a": true, "b": true})
	if sub.NumEdges() != 1 {
		t.Fatalf("induced subgraph edges = %d, want 1", sub.NumEdges())
	}
}
