package topology

import (
	"fmt"
	"math/rand"
)

// This file provides synthetic topology generators for the scalability
// experiments motivated in Section V-D: "The complexity of such algorithms
// grows significantly with the size of the ICT infrastructure … reaching
// O(n!) for a fully interconnected graph of n nodes. However, real networks
// usually contain few loops, while most clients are located in tree-like
// structures with a low number of edges."
//
// All generators are deterministic for a given parameter set (random graphs
// take an explicit seed) so that benchmarks are reproducible.

// Tree generates a complete tree with the given fanout and depth. The root
// is "n0"; nodes are breadth-first numbered. depth 0 yields a single node.
func Tree(fanout, depth int) (*Graph, error) {
	if fanout < 1 {
		return nil, fmt.Errorf("topology: Tree fanout %d < 1", fanout)
	}
	if depth < 0 {
		return nil, fmt.Errorf("topology: Tree depth %d < 0", depth)
	}
	g := New()
	_ = g.AddNode("n0", "Node")
	frontier := []string{"n0"}
	next := 1
	for d := 0; d < depth; d++ {
		var newFrontier []string
		for _, parent := range frontier {
			for f := 0; f < fanout; f++ {
				name := fmt.Sprintf("n%d", next)
				next++
				_ = g.AddNode(name, "Node")
				if _, err := g.AddEdge(parent, name, ""); err != nil {
					return nil, err
				}
				newFrontier = append(newFrontier, name)
			}
		}
		frontier = newFrontier
	}
	return g, nil
}

// Chain generates a path graph of n nodes n0—n1—…—n(n-1).
func Chain(n int) (*Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("topology: Chain size %d < 1", n)
	}
	g := New()
	for i := 0; i < n; i++ {
		_ = g.AddNode(fmt.Sprintf("n%d", i), "Node")
	}
	for i := 0; i+1 < n; i++ {
		if _, err := g.AddEdge(fmt.Sprintf("n%d", i), fmt.Sprintf("n%d", i+1), ""); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// Ring generates a cycle of n ≥ 3 nodes.
func Ring(n int) (*Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("topology: Ring size %d < 3", n)
	}
	g, err := Chain(n)
	if err != nil {
		return nil, err
	}
	if _, err := g.AddEdge(fmt.Sprintf("n%d", n-1), "n0", ""); err != nil {
		return nil, err
	}
	return g, nil
}

// Star generates a hub "n0" with n-1 leaves.
func Star(n int) (*Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("topology: Star size %d < 1", n)
	}
	g := New()
	_ = g.AddNode("n0", "Node")
	for i := 1; i < n; i++ {
		name := fmt.Sprintf("n%d", i)
		_ = g.AddNode(name, "Node")
		if _, err := g.AddEdge("n0", name, ""); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// Ladder generates the ladder graph of 2n nodes: two parallel chains
// n0—n1—…—n(n-1) and n<n>—…—n(2n-1) with a rung between opposite nodes
// (n<i>—n<n+i>). Its path count between the chain ends grows only linearly
// with n, making it the low-branching counterpart to Mesh in the
// scalability experiments — exactly the "real networks usually contain few
// loops" regime of Section V-D.
func Ladder(n int) (*Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("topology: Ladder rungs %d < 2", n)
	}
	g := New()
	for i := 0; i < 2*n; i++ {
		_ = g.AddNode(fmt.Sprintf("n%d", i), "Node")
	}
	for i := 0; i+1 < n; i++ {
		if _, err := g.AddEdge(fmt.Sprintf("n%d", i), fmt.Sprintf("n%d", i+1), ""); err != nil {
			return nil, err
		}
		if _, err := g.AddEdge(fmt.Sprintf("n%d", n+i), fmt.Sprintf("n%d", n+i+1), ""); err != nil {
			return nil, err
		}
	}
	for i := 0; i < n; i++ {
		if _, err := g.AddEdge(fmt.Sprintf("n%d", i), fmt.Sprintf("n%d", n+i), ""); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// Mesh generates the complete graph K_n — the paper's O(n!) worst case.
func Mesh(n int) (*Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("topology: Mesh size %d < 1", n)
	}
	g := New()
	for i := 0; i < n; i++ {
		_ = g.AddNode(fmt.Sprintf("n%d", i), "Node")
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if _, err := g.AddEdge(fmt.Sprintf("n%d", i), fmt.Sprintf("n%d", j), ""); err != nil {
				return nil, err
			}
		}
	}
	return g, nil
}

// RandomConnected generates a connected graph of n nodes: a uniform random
// spanning tree (random attachment) plus extra edges added independently
// with probability loopDensity per non-tree node pair. loopDensity 0 yields
// a tree; loopDensity 1 yields a complete graph. Deterministic per seed.
func RandomConnected(n int, loopDensity float64, seed int64) (*Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("topology: RandomConnected size %d < 1", n)
	}
	if loopDensity < 0 || loopDensity > 1 {
		return nil, fmt.Errorf("topology: loop density %v outside [0,1]", loopDensity)
	}
	rng := rand.New(rand.NewSource(seed))
	g := New()
	_ = g.AddNode("n0", "Node")
	for i := 1; i < n; i++ {
		name := fmt.Sprintf("n%d", i)
		_ = g.AddNode(name, "Node")
		parent := fmt.Sprintf("n%d", rng.Intn(i))
		if _, err := g.AddEdge(parent, name, ""); err != nil {
			return nil, err
		}
	}
	if loopDensity > 0 {
		present := make(map[[2]int]bool, g.NumEdges())
		for _, e := range g.Edges() {
			var i, j int
			fmt.Sscanf(e.A, "n%d", &i)
			fmt.Sscanf(e.B, "n%d", &j)
			if j < i {
				i, j = j, i
			}
			present[[2]int{i, j}] = true
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if present[[2]int{i, j}] {
					continue
				}
				if rng.Float64() < loopDensity {
					if _, err := g.AddEdge(fmt.Sprintf("n%d", i), fmt.Sprintf("n%d", j), ""); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	return g, nil
}

// FatTree generates a k-ary fat-tree (k even, ≥ 2), the standard
// data-center topology: (k/2)² core switches, k pods of k/2 aggregation and
// k/2 edge switches, and (k/2)² hosts per pod. Node names: "core<i>",
// "agg<p>-<i>", "edge<p>-<i>", "h<p>-<e>-<i>". Fat-trees are the "complex
// infrastructures such as cloud computing" the paper's conclusion defers to
// future work; the path-discovery experiments run on them directly.
func FatTree(k int) (*Graph, error) {
	if k < 2 || k%2 != 0 {
		return nil, fmt.Errorf("topology: FatTree arity %d must be even and >= 2", k)
	}
	g := New()
	half := k / 2
	// Core layer: half*half switches, grouped in `half` groups.
	for i := 0; i < half*half; i++ {
		_ = g.AddNode(fmt.Sprintf("core%d", i), "Core")
	}
	for p := 0; p < k; p++ {
		for i := 0; i < half; i++ {
			agg := fmt.Sprintf("agg%d-%d", p, i)
			_ = g.AddNode(agg, "Aggregation")
			// Aggregation switch i of each pod connects to core group i.
			for j := 0; j < half; j++ {
				if _, err := g.AddEdge(agg, fmt.Sprintf("core%d", i*half+j), ""); err != nil {
					return nil, err
				}
			}
		}
		for e := 0; e < half; e++ {
			edge := fmt.Sprintf("edge%d-%d", p, e)
			_ = g.AddNode(edge, "Edge")
			for i := 0; i < half; i++ {
				if _, err := g.AddEdge(edge, fmt.Sprintf("agg%d-%d", p, i), ""); err != nil {
					return nil, err
				}
			}
			for h := 0; h < half; h++ {
				host := fmt.Sprintf("h%d-%d-%d", p, e, h)
				_ = g.AddNode(host, "Host")
				if _, err := g.AddEdge(host, edge, ""); err != nil {
					return nil, err
				}
			}
		}
	}
	return g, nil
}

// CampusParams parameterises Campus.
type CampusParams struct {
	// EdgeSwitches is the number of access-layer switches (≥ 1).
	EdgeSwitches int
	// ClientsPerEdge is the number of client nodes per access switch.
	ClientsPerEdge int
	// ServersPerSwitch is the number of servers per server switch (2 server
	// switches are always generated).
	ServersPerSwitch int
	// RedundantCore adds a second link between the two core switches.
	RedundantCore bool
}

// Campus generates a topology shaped like the paper's USI network (Figure
// 5): two core switches ("c1", "c2") with a (optionally redundant) core
// interconnect, two distribution switches ("d1", "d2") each dual-homed to
// both cores, edge switches ("e<i>") split between the distribution
// switches, clients ("t<i>") under the edge switches, and two server
// switches ("s1", "s2") dual-homed to both cores with servers ("srv<i>")
// beneath. The result is tree-like at the periphery with redundancy
// concentrated in the core — the structure Section V-D argues is the common
// real-world case.
func Campus(p CampusParams) (*Graph, error) {
	if p.EdgeSwitches < 1 {
		return nil, fmt.Errorf("topology: Campus needs at least 1 edge switch")
	}
	if p.ClientsPerEdge < 0 || p.ServersPerSwitch < 0 {
		return nil, fmt.Errorf("topology: Campus negative counts")
	}
	g := New()
	for _, c := range []string{"c1", "c2"} {
		_ = g.AddNode(c, "Core")
	}
	if _, err := g.AddEdge("c1", "c2", ""); err != nil {
		return nil, err
	}
	if p.RedundantCore {
		if _, err := g.AddEdge("c1", "c2", ""); err != nil {
			return nil, err
		}
	}
	for _, d := range []string{"d1", "d2"} {
		_ = g.AddNode(d, "Distribution")
		for _, c := range []string{"c1", "c2"} {
			if _, err := g.AddEdge(d, c, ""); err != nil {
				return nil, err
			}
		}
	}
	for _, s := range []string{"s1", "s2"} {
		_ = g.AddNode(s, "ServerSwitch")
		for _, c := range []string{"c1", "c2"} {
			if _, err := g.AddEdge(s, c, ""); err != nil {
				return nil, err
			}
		}
	}
	client := 0
	for i := 0; i < p.EdgeSwitches; i++ {
		e := fmt.Sprintf("e%d", i+1)
		_ = g.AddNode(e, "Edge")
		dist := "d1"
		if i%2 == 1 {
			dist = "d2"
		}
		if _, err := g.AddEdge(e, dist, ""); err != nil {
			return nil, err
		}
		for j := 0; j < p.ClientsPerEdge; j++ {
			client++
			t := fmt.Sprintf("t%d", client)
			_ = g.AddNode(t, "Client")
			if _, err := g.AddEdge(t, e, ""); err != nil {
				return nil, err
			}
		}
	}
	srv := 0
	for _, s := range []string{"s1", "s2"} {
		for j := 0; j < p.ServersPerSwitch; j++ {
			srv++
			name := fmt.Sprintf("srv%d", srv)
			_ = g.AddNode(name, "Server")
			if _, err := g.AddEdge(name, s, ""); err != nil {
				return nil, err
			}
		}
	}
	return g, nil
}
