package topology

import (
	"strings"
	"testing"

	"upsim/internal/uml"
)

func TestGraphBasics(t *testing.T) {
	g := New()
	for _, n := range []string{"a", "b", "c"} {
		if err := g.AddNode(n, "Node"); err != nil {
			t.Fatal(err)
		}
	}
	id1, err := g.AddEdge("a", "b", "l1")
	if err != nil {
		t.Fatal(err)
	}
	id2, err := g.AddEdge("a", "b", "l2") // parallel edge
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddEdge("b", "c", ""); err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 3 {
		t.Errorf("counts = %d nodes, %d edges", g.NumNodes(), g.NumEdges())
	}
	if id1 == id2 {
		t.Error("parallel edges must have distinct IDs")
	}
	if g.Degree("a") != 2 || g.Degree("b") != 3 {
		t.Errorf("degrees = %d, %d", g.Degree("a"), g.Degree("b"))
	}
	nb := g.Neighbors("a")
	if len(nb) != 1 || nb[0] != "b" {
		t.Errorf("Neighbors(a) = %v (parallel edges deduplicated)", nb)
	}
	nb = g.Neighbors("b")
	if len(nb) != 2 || nb[0] != "a" || nb[1] != "c" {
		t.Errorf("Neighbors(b) = %v", nb)
	}
	e, ok := g.Edge(id1)
	if !ok || e.Label != "l1" || e.Other("a") != "b" || e.Other("b") != "a" || e.Other("x") != "" {
		t.Errorf("Edge(%d) = %+v", id1, e)
	}
	if _, ok := g.Edge(99); ok {
		t.Error("Edge(99) should be absent")
	}
	if _, ok := g.Edge(-1); ok {
		t.Error("Edge(-1) should be absent")
	}
	n, ok := g.Node("a")
	if !ok || n.Signature() != "a:Node" {
		t.Errorf("Node(a) = %+v", n)
	}
	if (Node{Name: "x"}).Signature() != "x" {
		t.Error("classless signature should omit colon")
	}
	if !g.HasNode("a") || g.HasNode("ghost") {
		t.Error("HasNode broken")
	}
	names := g.NodeNames()
	if len(names) != 3 || names[0] != "a" || names[2] != "c" {
		t.Errorf("NodeNames = %v", names)
	}
}

func TestGraphErrors(t *testing.T) {
	g := New()
	if err := g.AddNode("", "X"); err == nil {
		t.Error("empty node name should fail")
	}
	if err := g.AddNode("a", "X"); err != nil {
		t.Fatal(err)
	}
	if err := g.AddNode("a", "X"); err == nil {
		t.Error("duplicate node should fail")
	}
	if _, err := g.AddEdge("a", "a", ""); err != nil {
		t.Errorf("self loop should be representable (lint reports it): %v", err)
	}
	if g.Degree("a") != 2 {
		t.Errorf("self loop should count twice in degree, got %d", g.Degree("a"))
	}
	if _, err := g.AddEdge("a", "ghost", ""); err == nil {
		t.Error("unknown endpoint should fail")
	}
	if _, err := g.AddEdge("ghost", "a", ""); err == nil {
		t.Error("unknown endpoint should fail")
	}
}

func TestConnected(t *testing.T) {
	g := New()
	if !g.Connected() {
		t.Error("empty graph is connected by convention")
	}
	_ = g.AddNode("a", "")
	_ = g.AddNode("b", "")
	if g.Connected() {
		t.Error("two isolated nodes are disconnected")
	}
	if _, err := g.AddEdge("a", "b", ""); err != nil {
		t.Fatal(err)
	}
	if !g.Connected() {
		t.Error("a--b is connected")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := New()
	for _, n := range []string{"a", "b", "c", "d"} {
		_ = g.AddNode(n, "N")
	}
	_, _ = g.AddEdge("a", "b", "")
	_, _ = g.AddEdge("b", "c", "")
	_, _ = g.AddEdge("c", "d", "")
	_, _ = g.AddEdge("a", "b", "redundant")
	sub := g.InducedSubgraph(map[string]bool{"a": true, "b": true, "c": true, "ghost": true})
	if sub.NumNodes() != 3 {
		t.Errorf("sub nodes = %d, want 3", sub.NumNodes())
	}
	// a-b (x2) and b-c survive; c-d does not.
	if sub.NumEdges() != 3 {
		t.Errorf("sub edges = %d, want 3", sub.NumEdges())
	}
	if sub.HasNode("d") {
		t.Error("d must be filtered out")
	}
}

func TestFromObjectDiagram(t *testing.T) {
	m := uml.NewModel("m")
	cls, _ := m.AddClass("Comp")
	sw, _ := m.AddClass("Switch")
	a, _ := m.AddAssociation("Comp-Switch", cls, sw)
	d := m.NewObjectDiagram("infra")
	t1, _ := d.AddInstance("t1", cls)
	c1, _ := d.AddInstance("c1", sw)
	if _, err := d.Connect(t1, c1, a); err != nil {
		t.Fatal(err)
	}
	g := FromObjectDiagram(d)
	if g.NumNodes() != 2 || g.NumEdges() != 1 {
		t.Fatalf("graph = %d nodes, %d edges", g.NumNodes(), g.NumEdges())
	}
	n, _ := g.Node("t1")
	if n.Class != "Comp" {
		t.Errorf("t1 class = %q", n.Class)
	}
	e, _ := g.Edge(0)
	if e.Label != "Comp-Switch" {
		t.Errorf("edge label = %q", e.Label)
	}
}

func TestToDOT(t *testing.T) {
	g := New()
	_ = g.AddNode("t1", "Comp")
	_ = g.AddNode("c1", "C6500")
	_, _ = g.AddEdge("t1", "c1", "uplink")
	dot := ToDOT(g, "UPSIM t1->p2")
	for _, want := range []string{
		"graph \"UPSIM_t1__p2\"", `"t1" [label="t1:Comp"`, `"t1" -- "c1" [label="uplink"]`,
		`label="UPSIM t1->p2"`,
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q in:\n%s", want, dot)
		}
	}
	if dot2 := ToDOT(New(), ""); !strings.Contains(dot2, "graph \"G\"") {
		t.Errorf("empty-title DOT = %s", dot2)
	}
}
