package topology

import (
	"fmt"
	"sort"
	"strings"
)

// ToDOT renders the graph in Graphviz DOT format. Nodes are labelled with
// their object-diagram signature ("name:Class") and grouped by class via
// fill colors, which makes generated UPSIMs directly comparable to the
// paper's Figures 9, 11 and 12.
func ToDOT(g *Graph, title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph %q {\n", sanitizeID(title))
	b.WriteString("  node [shape=box, style=filled, fontname=\"Helvetica\"];\n")
	if title != "" {
		fmt.Fprintf(&b, "  label=%q;\n", title)
	}

	classes := map[string]bool{}
	for _, n := range g.Nodes() {
		classes[n.Class] = true
	}
	classList := make([]string, 0, len(classes))
	for c := range classes {
		classList = append(classList, c)
	}
	sort.Strings(classList)
	color := map[string]string{}
	palette := []string{
		"#dbe9f6", "#e8f0d8", "#fdebd3", "#f6dbe9", "#e0e0e0",
		"#d2f0ef", "#f0ead2", "#e9dbf6", "#f6e3db", "#dbf6e0",
	}
	for i, c := range classList {
		color[c] = palette[i%len(palette)]
	}

	for _, n := range g.Nodes() {
		fmt.Fprintf(&b, "  %q [label=%q, fillcolor=%q];\n", n.Name, n.Signature(), color[n.Class])
	}
	for _, e := range g.Edges() {
		if e.Label != "" {
			fmt.Fprintf(&b, "  %q -- %q [label=%q];\n", e.A, e.B, e.Label)
		} else {
			fmt.Fprintf(&b, "  %q -- %q;\n", e.A, e.B)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

func sanitizeID(s string) string {
	if s == "" {
		return "G"
	}
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			return r
		}
		return '_'
	}, s)
}
