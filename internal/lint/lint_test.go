package lint

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"upsim/internal/mapping"
	"upsim/internal/service"
	"upsim/internal/topology"
	"upsim/internal/uml"
)

// fix is a minimal lint-clean world: a profiled model, a four-node topology
// (a:Host — s1:Net — s2:Net — b:Host), a two-step sequential service and a
// complete mapping. Every rule test mutates one aspect of it.
type fix struct {
	m                 *uml.Model
	device, connector *uml.Stereotype
	host, net         *uml.Class
	hostNet, netNet   *uml.Association
	hostHost          *uml.Association
	d                 *uml.ObjectDiagram
	svc               *service.Composite
	mp                *mapping.Mapping
}

func newFix(t *testing.T) *fix {
	t.Helper()
	f := &fix{m: uml.NewModel("fix")}
	p := uml.NewProfile("availability")
	comp, err := p.DefineAbstractStereotype("Component", uml.MetaclassNone)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []string{"MTBF", "MTTR"} {
		if err := comp.AddAttribute(a, uml.KindReal); err != nil {
			t.Fatal(err)
		}
	}
	if f.device, err = p.DefineSubStereotype("Device", uml.MetaclassClass, comp); err != nil {
		t.Fatal(err)
	}
	if f.connector, err = p.DefineSubStereotype("Connector", uml.MetaclassAssociation, comp); err != nil {
		t.Fatal(err)
	}
	if err := f.m.AddProfile(p); err != nil {
		t.Fatal(err)
	}

	class := func(name string, mtbf, mttr float64) *uml.Class {
		c, err := f.m.AddClass(name)
		if err != nil {
			t.Fatal(err)
		}
		app, err := c.Apply(f.device)
		if err != nil {
			t.Fatal(err)
		}
		if err := app.Set("MTBF", uml.RealValue(mtbf)); err != nil {
			t.Fatal(err)
		}
		if err := app.Set("MTTR", uml.RealValue(mttr)); err != nil {
			t.Fatal(err)
		}
		return c
	}
	f.host = class("Host", 5000, 12)
	f.net = class("Net", 150000, 0.5)

	assoc := func(name string, a, b *uml.Class) *uml.Association {
		as, err := f.m.AddAssociation(name, a, b)
		if err != nil {
			t.Fatal(err)
		}
		app, err := as.Apply(f.connector)
		if err != nil {
			t.Fatal(err)
		}
		if err := app.Set("MTBF", uml.RealValue(1e6)); err != nil {
			t.Fatal(err)
		}
		if err := app.Set("MTTR", uml.RealValue(0.1)); err != nil {
			t.Fatal(err)
		}
		return as
	}
	f.hostNet = assoc("Host-Net", f.host, f.net)
	f.netNet = assoc("Net-Net", f.net, f.net)
	f.hostHost = assoc("Host-Host", f.host, f.host)

	f.d = f.m.NewObjectDiagram("net")
	for _, spec := range []struct {
		name string
		cls  *uml.Class
	}{{"a", f.host}, {"s1", f.net}, {"s2", f.net}, {"b", f.host}} {
		if _, err := f.d.AddInstance(spec.name, spec.cls); err != nil {
			t.Fatal(err)
		}
	}
	for _, l := range []struct {
		a, b string
		as   *uml.Association
	}{{"a", "s1", f.hostNet}, {"s1", "s2", f.netNet}, {"s2", "b", f.hostNet}} {
		if _, err := f.d.ConnectByName(l.a, l.b, l.as); err != nil {
			t.Fatal(err)
		}
	}

	if f.svc, err = service.NewSequential(f.m, "svc", "op1", "op2"); err != nil {
		t.Fatal(err)
	}
	f.mp = mapping.New()
	for _, op := range []string{"op1", "op2"} {
		if err := f.mp.Add(mapping.Pair{AtomicService: op, Requester: "a", Provider: "b"}); err != nil {
			t.Fatal(err)
		}
	}
	return f
}

func (f *fix) lint(t *testing.T) *Report {
	t.Helper()
	in, err := NewInput(f.m, "net", f.svc, f.mp)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Default().Run(in)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// byRule returns the diagnostics emitted by one rule.
func byRule(rep *Report, id string) []Diagnostic {
	var out []Diagnostic
	for _, d := range rep.Diagnostics {
		if d.Rule == id {
			out = append(out, d)
		}
	}
	return out
}

// requireRule asserts the rule fired with the expected severity and that some
// diagnostic message contains want.
func requireRule(t *testing.T, rep *Report, id string, sev Severity, want string) []Diagnostic {
	t.Helper()
	ds := byRule(rep, id)
	if len(ds) == 0 {
		t.Fatalf("rule %s did not fire; report:\n%s", id, renderString(rep))
	}
	found := false
	for _, d := range ds {
		if d.Severity != sev {
			t.Errorf("rule %s: severity = %v, want %v", id, d.Severity, sev)
		}
		if strings.Contains(d.Message, want) || strings.Contains(d.Element, want) {
			found = true
		}
	}
	if !found {
		t.Errorf("rule %s: no diagnostic mentions %q; got %v", id, want, ds)
	}
	return ds
}

func renderString(rep *Report) string {
	var buf bytes.Buffer
	_ = rep.Render(&buf)
	return buf.String()
}

func TestCleanFixtureHasNoFindings(t *testing.T) {
	rep := newFix(t).lint(t)
	if !rep.Clean() {
		t.Fatalf("clean fixture produced findings:\n%s", renderString(rep))
	}
	if rep.RulesRun < 10 {
		t.Fatalf("RulesRun = %d, want >= 10", rep.RulesRun)
	}
}

func TestRuleModelValidate(t *testing.T) {
	f := newFix(t)
	// A stereotyped class without attribute values is uml.Validate's finding.
	c, err := f.m.AddClass("Unset")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Apply(f.device); err != nil {
		t.Fatal(err)
	}
	rep := f.lint(t)
	requireRule(t, rep, "model-validate", SeverityError, "Unset")
	if !rep.HasErrors() {
		t.Error("expected HasErrors")
	}
}

func TestRuleClassMissingAvailability(t *testing.T) {
	f := newFix(t)
	// No stereotype at all: uml.Validate is silent, but depend analysis
	// would fail — exactly the gap this rule closes.
	bare, err := f.m.AddClass("Bare")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.d.AddInstance("x", bare); err != nil {
		t.Fatal(err)
	}
	rep := f.lint(t)
	if err := f.m.Validate(); err != nil {
		t.Fatalf("uml.Validate should accept the unprofiled class, got %v", err)
	}
	ds := requireRule(t, rep, "class-missing-availability", SeverityError, `class "Bare"`)
	if len(ds) != 2 { // MTBF and MTTR
		t.Errorf("got %d diagnostics, want 2 (MTBF+MTTR)", len(ds))
	}
}

func TestRuleClassNonPositiveAvailability(t *testing.T) {
	f := newFix(t)
	c, err := f.m.AddClass("Neg")
	if err != nil {
		t.Fatal(err)
	}
	app, err := c.Apply(f.device)
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Set("MTBF", uml.RealValue(-5)); err != nil {
		t.Fatal(err)
	}
	if err := app.Set("MTTR", uml.RealValue(-1)); err != nil {
		t.Fatal(err)
	}
	if _, err := f.d.AddInstance("n", c); err != nil {
		t.Fatal(err)
	}
	ds := requireRule(t, f.lint(t), "class-nonpositive-availability", SeverityError, `class "Neg"`)
	if len(ds) != 2 {
		t.Errorf("got %d diagnostics, want 2 (negative MTBF and MTTR)", len(ds))
	}
}

func TestRuleMappingDanglingRef(t *testing.T) {
	f := newFix(t)
	if err := f.mp.Remap("op1", "ghost", "b"); err != nil {
		t.Fatal(err)
	}
	requireRule(t, f.lint(t), "mapping-dangling-ref", SeverityError, "ghost")
}

func TestRuleMappingMissingPair(t *testing.T) {
	f := newFix(t)
	f.mp = mapping.New()
	if err := f.mp.Add(mapping.Pair{AtomicService: "op1", Requester: "a", Provider: "b"}); err != nil {
		t.Fatal(err)
	}
	requireRule(t, f.lint(t), "mapping-missing-pair", SeverityError, `atomic service "op2"`)
}

func TestRuleMappingUnusedPair(t *testing.T) {
	f := newFix(t)
	if err := f.mp.Add(mapping.Pair{AtomicService: "extra", Requester: "a", Provider: "b"}); err != nil {
		t.Fatal(err)
	}
	requireRule(t, f.lint(t), "mapping-unused-pair", SeverityWarning, `pair "extra"`)
}

func TestRuleMappingUnreachablePair(t *testing.T) {
	f := newFix(t)
	// A disconnected island i1—i2; op2 maps onto it from the main component.
	for _, n := range []string{"i1", "i2"} {
		if _, err := f.d.AddInstance(n, f.host); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := f.d.ConnectByName("i1", "i2", f.hostHost); err != nil {
		t.Fatal(err)
	}
	if err := f.mp.Remap("op2", "a", "i1"); err != nil {
		t.Fatal(err)
	}
	rep := f.lint(t)
	requireRule(t, rep, "mapping-unreachable-pair", SeverityError, "different connected components")
	if len(byRule(rep, "mapping-dangling-ref")) != 0 {
		t.Error("dangling-ref must not fire for existing but unreachable components")
	}
}

func TestRuleServiceForkJoinArity(t *testing.T) {
	f := newFix(t)
	// A fork opening three branches of which only two pass through the join:
	// structurally valid (uml.Validate passes), concurrently unbalanced.
	act, err := f.m.NewActivity("par")
	if err != nil {
		t.Fatal(err)
	}
	fork, join := act.AddFork(), act.AddJoin()
	x, _ := act.AddAction("x")
	y, _ := act.AddAction("y")
	z, _ := act.AddAction("z")
	fin, bypass := act.AddFinal(), act.AddFinal()
	for _, fl := range [][2]*uml.ActivityNode{
		{act.Initial(), fork},
		{fork, x}, {fork, y}, {fork, z},
		{x, join}, {y, join}, {join, fin},
		{z, bypass},
	} {
		if err := act.Flow(fl[0], fl[1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := act.Validate(); err != nil {
		t.Fatalf("arity fixture must be structurally valid, got %v", err)
	}
	requireRule(t, f.lint(t), "service-fork-join-arity", SeverityWarning, `activity "par"`)
}

func TestRuleServiceUnreachableNode(t *testing.T) {
	f := newFix(t)
	act, err := f.m.NewActivity("orphan")
	if err != nil {
		t.Fatal(err)
	}
	a1, _ := act.AddAction("a1")
	fin := act.AddFinal()
	if err := act.Sequence(act.Initial(), a1, fin); err != nil {
		t.Fatal(err)
	}
	if _, err := act.AddAction("stray"); err != nil {
		t.Fatal(err)
	}
	rep := f.lint(t)
	requireRule(t, rep, "service-unreachable-node", SeverityError, "Action(stray)")
	// uml.Validate flags the same activity; both views coexist in one report.
	requireRule(t, rep, "model-validate", SeverityError, `activity "orphan"`)
}

func TestRuleServiceTooFewActions(t *testing.T) {
	f := newFix(t)
	act, err := f.m.NewActivity("tiny")
	if err != nil {
		t.Fatal(err)
	}
	only, _ := act.AddAction("only")
	if err := act.Sequence(act.Initial(), only, act.AddFinal()); err != nil {
		t.Fatal(err)
	}
	requireRule(t, f.lint(t), "service-too-few-actions", SeverityWarning, `activity "tiny"`)
}

func TestRuleTopologyDuplicateObject(t *testing.T) {
	f := newFix(t)
	// Case-only collision within one diagram.
	if _, err := f.d.AddInstance("A", f.host); err != nil {
		t.Fatal(err)
	}
	// Cross-diagram class conflict: "a" is a Host in "net", a Net in "other".
	other := f.m.NewObjectDiagram("other")
	if _, err := other.AddInstance("a", f.net); err != nil {
		t.Fatal(err)
	}
	rep := f.lint(t)
	requireRule(t, rep, "topology-duplicate-object", SeverityWarning, "differs only in case")
	requireRule(t, rep, "topology-duplicate-object", SeverityWarning, `diagram "other"`)
}

func TestRuleTopologySelfLoop(t *testing.T) {
	f := newFix(t)
	// The UML layer rejects self-links, so feed a hand-built graph (the
	// synthetic-topology entry point).
	g := topology.New()
	if err := g.AddNode("x", "Host"); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddEdge("x", "x", "loop"); err != nil {
		t.Fatal(err)
	}
	rep, err := Default().Run(&Input{Model: f.m, Graph: g})
	if err != nil {
		t.Fatal(err)
	}
	requireRule(t, rep, "topology-self-loop", SeverityWarning, `object "x"`)
}

func TestRuleTopologyIsolatedNode(t *testing.T) {
	f := newFix(t)
	if _, err := f.d.AddInstance("lonely", f.host); err != nil {
		t.Fatal(err)
	}
	requireRule(t, f.lint(t), "topology-isolated-node", SeverityWarning, `object "lonely"`)
}

func TestRuleTopologyParallelLinks(t *testing.T) {
	f := newFix(t)
	g := topology.New()
	for _, n := range []string{"x", "y"} {
		if err := g.AddNode(n, "Net"); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		if _, err := g.AddEdge("x", "y", "trunk"); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := Default().Run(&Input{Model: f.m, Graph: g})
	if err != nil {
		t.Fatal(err)
	}
	requireRule(t, rep, "topology-parallel-links", SeverityInfo, "2 parallel links")
}

func TestRunOrdersBySeverity(t *testing.T) {
	f := newFix(t)
	// Provoke an error (dangling ref), a warning (unused pair) and an info
	// (parallel links) in one run.
	if err := f.mp.Remap("op1", "ghost", "b"); err != nil {
		t.Fatal(err)
	}
	if err := f.mp.Add(mapping.Pair{AtomicService: "extra", Requester: "a", Provider: "b"}); err != nil {
		t.Fatal(err)
	}
	in, err := NewInput(f.m, "net", f.svc, f.mp)
	if err != nil {
		t.Fatal(err)
	}
	g := topology.FromObjectDiagram(f.d)
	if _, err := g.AddEdge("s1", "s2", "trunk2"); err != nil {
		t.Fatal(err)
	}
	in.Graph = g
	rep, err := Default().Run(in)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors == 0 || rep.Warnings == 0 || rep.Infos == 0 {
		t.Fatalf("want all three severities, got %s", rep.Summary())
	}
	for i := 1; i < len(rep.Diagnostics); i++ {
		if rep.Diagnostics[i].Severity > rep.Diagnostics[i-1].Severity {
			t.Fatalf("diagnostics not ordered by severity: %v before %v",
				rep.Diagnostics[i-1], rep.Diagnostics[i])
		}
	}
	if rep.Diagnostics[0].Severity != SeverityError {
		t.Error("errors must lead the report")
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	f := newFix(t)
	if err := f.mp.Remap("op1", "ghost", "b"); err != nil {
		t.Fatal(err)
	}
	if err := f.mp.Add(mapping.Pair{AtomicService: "extra", Requester: "a", Provider: "b"}); err != nil {
		t.Fatal(err)
	}
	rep := f.lint(t)
	var buf bytes.Buffer
	if err := rep.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Diagnostics) != len(rep.Diagnostics) {
		t.Fatalf("round trip lost diagnostics: %d != %d", len(got.Diagnostics), len(rep.Diagnostics))
	}
	for i := range got.Diagnostics {
		if got.Diagnostics[i] != rep.Diagnostics[i] {
			t.Errorf("diagnostic %d changed: %+v != %+v", i, got.Diagnostics[i], rep.Diagnostics[i])
		}
	}
	if got.Errors != rep.Errors || got.Warnings != rep.Warnings || got.Infos != rep.Infos {
		t.Errorf("tallies changed: %s != %s", got.Summary(), rep.Summary())
	}
	// Severities travel as names, not numbers.
	var raw map[string]any
	if err := json.Unmarshal([]byte(renderJSON(t, rep)), &raw); err != nil {
		t.Fatal(err)
	}
	first := raw["diagnostics"].([]any)[0].(map[string]any)
	if _, ok := first["severity"].(string); !ok {
		t.Errorf("severity not a JSON string: %v", first["severity"])
	}
}

func renderJSON(t *testing.T, rep *Report) string {
	t.Helper()
	var buf bytes.Buffer
	if err := rep.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestDecodeReportRecomputesTallies(t *testing.T) {
	doc := `{"diagnostics":[{"rule":"x","severity":"error","element":"e","message":"m"}],
	         "errors":99,"warnings":99,"infos":99,"rulesRun":5}`
	rep, err := DecodeReport(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 1 || rep.Warnings != 0 || rep.Infos != 0 {
		t.Errorf("tallies not recomputed: %s", rep.Summary())
	}
	if rep.RulesRun != 5 {
		t.Errorf("RulesRun = %d, want 5", rep.RulesRun)
	}
}

func TestSeverityText(t *testing.T) {
	for sev, name := range map[Severity]string{
		SeverityInfo: "info", SeverityWarning: "warning", SeverityError: "error",
	} {
		b, err := sev.MarshalText()
		if err != nil || string(b) != name {
			t.Errorf("MarshalText(%v) = %q, %v", sev, b, err)
		}
		var back Severity
		if err := back.UnmarshalText([]byte(name)); err != nil || back != sev {
			t.Errorf("UnmarshalText(%q) = %v, %v", name, back, err)
		}
	}
	if _, err := Severity(99).MarshalText(); err == nil {
		t.Error("unknown severity must not marshal")
	}
	var s Severity
	if err := s.UnmarshalText([]byte("fatal")); err == nil {
		t.Error("unknown severity must not unmarshal")
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Rule: "r", Severity: SeverityError, Element: `pair "p"`, Message: "broken", Hint: "fix it"}
	want := `error[r] pair "p": broken (fix: fix it)`
	if d.String() != want {
		t.Errorf("String() = %q, want %q", d.String(), want)
	}
	d.Hint = ""
	if strings.Contains(d.String(), "fix:") {
		t.Error("empty hint must not render")
	}
}

func TestReportErrAndAsError(t *testing.T) {
	f := newFix(t)
	if err := f.mp.Remap("op1", "ghost", "b"); err != nil {
		t.Fatal(err)
	}
	rep := f.lint(t)
	err := rep.Err()
	if err == nil {
		t.Fatal("Err() = nil for a report with errors")
	}
	le, ok := AsError(err)
	if !ok || le.Report != rep {
		t.Fatalf("AsError failed: %v %v", le, ok)
	}
	if !strings.Contains(err.Error(), "mapping-dangling-ref") {
		t.Errorf("error text should carry the first error diagnostic: %q", err.Error())
	}
	clean := newFix(t).lint(t)
	if clean.Err() != nil {
		t.Error("Err() must be nil for a clean report")
	}
}

func TestRegistry(t *testing.T) {
	reg := Default()
	rules := reg.Rules()
	if len(rules) < 10 {
		t.Fatalf("built-in registry has %d rules, want >= 10", len(rules))
	}
	seen := make(map[string]bool)
	for _, r := range rules {
		if r.ID() == "" || r.Doc() == "" {
			t.Errorf("rule %q lacks ID or doc", r.ID())
		}
		if seen[r.ID()] {
			t.Errorf("duplicate rule ID %q", r.ID())
		}
		seen[r.ID()] = true
		if _, ok := reg.Rule(r.ID()); !ok {
			t.Errorf("Rule(%q) lookup failed", r.ID())
		}
	}
	if err := reg.Register(rules[0]); err == nil {
		t.Error("re-registering an existing ID must fail")
	}
	if err := reg.Register(nil); err == nil {
		t.Error("nil rule must be rejected")
	}
	if _, err := reg.Run(nil); err == nil {
		t.Error("Run(nil) must fail")
	}
}

func TestNewInputErrors(t *testing.T) {
	if _, err := NewInput(nil, "", nil, nil); err == nil {
		t.Error("nil model must be rejected")
	}
	f := newFix(t)
	if _, err := NewInput(f.m, "missing", nil, nil); err == nil {
		t.Error("unknown diagram must be rejected")
	}
	in, err := NewInput(f.m, "", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if in.Diagram != nil || in.Graph != nil {
		t.Error("empty diagram name must produce a model-only input")
	}
	if _, err := Default().Run(in); err != nil {
		t.Errorf("model-only run failed: %v", err)
	}
}

func TestUnionFind(t *testing.T) {
	g := topology.New()
	for _, n := range []string{"a", "b", "c", "d", "e"} {
		if err := g.AddNode(n, ""); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range [][2]string{{"a", "b"}, {"b", "c"}, {"d", "e"}} {
		if _, err := g.AddEdge(e[0], e[1], ""); err != nil {
			t.Fatal(err)
		}
	}
	uf := newUnionFind(g)
	if !uf.connected("a", "c") {
		t.Error("a and c share a component")
	}
	if uf.connected("a", "d") {
		t.Error("a and d are in different components")
	}
	if uf.connected("a", "ghost") || uf.connected("ghost", "ghost") {
		t.Error("unknown names are never connected")
	}
}
