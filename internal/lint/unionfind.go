package lint

import "upsim/internal/topology"

// unionFind is a classic disjoint-set forest with union by rank and path
// halving, used by the reachability rule: two components are connected in
// the topology iff they share a set representative. Building it is
// O(V + E·α(V)) — a guaranteed-empty path discovery without enumerating a
// single path.
type unionFind struct {
	parent map[string]string
	rank   map[string]int
}

// newUnionFind builds the forest of a graph's connected components.
func newUnionFind(g *topology.Graph) *unionFind {
	uf := &unionFind{
		parent: make(map[string]string, g.NumNodes()),
		rank:   make(map[string]int),
	}
	for _, n := range g.Nodes() {
		uf.parent[n.Name] = n.Name
	}
	for _, e := range g.Edges() {
		uf.union(e.A, e.B)
	}
	return uf
}

// find returns the set representative of x ("" if x is unknown), halving the
// path on the way up.
func (uf *unionFind) find(x string) string {
	p, ok := uf.parent[x]
	if !ok {
		return ""
	}
	for p != x {
		gp := uf.parent[p]
		uf.parent[x] = gp // path halving
		x, p = gp, uf.parent[gp]
	}
	return x
}

// union merges the sets of a and b.
func (uf *unionFind) union(a, b string) {
	ra, rb := uf.find(a), uf.find(b)
	if ra == "" || rb == "" || ra == rb {
		return
	}
	if uf.rank[ra] < uf.rank[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	if uf.rank[ra] == uf.rank[rb] {
		uf.rank[ra]++
	}
}

// connected reports whether a and b lie in the same connected component.
// Unknown names are never connected.
func (uf *unionFind) connected(a, b string) bool {
	ra := uf.find(a)
	return ra != "" && ra == uf.find(b)
}
