package lint

import (
	"fmt"
	"strings"

	"upsim/internal/uml"
)

// rule is the built-in Rule implementation: a closure with identity,
// severity and documentation. The emit callback stamps the rule's ID and
// default severity on every diagnostic.
type rule struct {
	id       string
	severity Severity
	doc      string
	check    func(in *Input, emit func(element, message, hint string))
}

// ID implements Rule.
func (r rule) ID() string { return r.id }

// Severity implements Rule.
func (r rule) Severity() Severity { return r.severity }

// Doc implements Rule.
func (r rule) Doc() string { return r.doc }

// Check implements Rule.
func (r rule) Check(in *Input) []Diagnostic {
	var out []Diagnostic
	r.check(in, func(element, message, hint string) {
		out = append(out, Diagnostic{
			Rule:     r.id,
			Severity: r.severity,
			Element:  element,
			Message:  message,
			Hint:     hint,
		})
	})
	return out
}

// builtinRules returns the shipped rule set in registration order: model
// rules, class rules, mapping rules, service rules, topology rules.
func builtinRules() []Rule {
	return []Rule{
		ruleModelValidate(),
		ruleClassMissingAvailability(),
		ruleClassNonPositiveAvailability(),
		ruleMappingDanglingRef(),
		ruleMappingMissingPair(),
		ruleMappingUnusedPair(),
		ruleMappingUnreachablePair(),
		ruleServiceForkJoinArity(),
		ruleServiceUnreachableNode(),
		ruleServiceTooFewActions(),
		ruleTopologyDuplicateObject(),
		ruleTopologySelfLoop(),
		ruleTopologyIsolatedNode(),
		ruleTopologyParallelLinks(),
	}
}

// ruleModelValidate adapts the structural uml.Validate pass into the
// diagnostic format, so stereotype attributes without values and malformed
// activities surface alongside the cross-artifact findings.
func ruleModelValidate() Rule {
	return rule{
		id:       "model-validate",
		severity: SeverityError,
		doc:      "the UML model must pass the structural well-formedness checks of uml.Validate",
		check: func(in *Input, emit func(element, message, hint string)) {
			err := in.Model.Validate()
			if err == nil {
				return
			}
			if ve, ok := uml.AsValidationError(err); ok {
				for _, issue := range ve.Issues {
					emit(issue.Element, issue.Problem,
						"complete the model so that uml.Validate passes")
				}
				return
			}
			emit(fmt.Sprintf("model %q", in.Model.Name()), err.Error(), "")
		},
	}
}

// ruleClassMissingAvailability flags classes and associations that the
// infrastructure diagram instantiates without the MTBF/MTTR attributes the
// Section VII dependability analysis reads — without them, `depend` fails on
// every UPSIM that touches the component.
func ruleClassMissingAvailability() Rule {
	return rule{
		id:       "class-missing-availability",
		severity: SeverityError,
		doc:      "every class and association used by the topology must carry MTBF and MTTR attributes",
		check: func(in *Input, emit func(element, message, hint string)) {
			if in.Diagram == nil {
				return
			}
			seenClass := make(map[string]bool)
			for _, inst := range in.Diagram.Instances() {
				c := inst.Classifier()
				if seenClass[c.Name()] {
					continue
				}
				seenClass[c.Name()] = true
				for _, attr := range []string{"MTBF", "MTTR"} {
					if _, ok := c.Property(attr); !ok {
						emit(fmt.Sprintf("class %q", c.Name()),
							fmt.Sprintf("instantiated in diagram %q but has no %s attribute; dependability analysis of any UPSIM containing it will fail",
								in.Diagram.Name(), attr),
							"apply the availability profile's Device stereotype and set "+attr)
					}
				}
			}
			seenAssoc := make(map[string]bool)
			for _, l := range in.Diagram.Links() {
				a := l.Association()
				if seenAssoc[a.Name()] {
					continue
				}
				seenAssoc[a.Name()] = true
				for _, attr := range []string{"MTBF", "MTTR"} {
					if _, ok := a.Property(attr); !ok {
						emit(fmt.Sprintf("association %q", a.Name()),
							fmt.Sprintf("linked in diagram %q but has no %s attribute; dependability analysis of any UPSIM traversing it will fail",
								in.Diagram.Name(), attr),
							"apply the availability profile's Connector stereotype and set "+attr)
					}
				}
			}
		},
	}
}

// ruleClassNonPositiveAvailability flags availability attributes whose
// values break the renewal formula A = MTBF/(MTBF+MTTR): MTBF must be
// positive and MTTR non-negative (depend.Availability rejects anything
// else). A string-typed MTBF reads as 0 and is caught here too.
func ruleClassNonPositiveAvailability() Rule {
	return rule{
		id:       "class-nonpositive-availability",
		severity: SeverityError,
		doc:      "MTBF must be positive and MTTR non-negative on every class and association used by the topology",
		check: func(in *Input, emit func(element, message, hint string)) {
			if in.Diagram == nil {
				return
			}
			checkValues := func(element string, prop func(string) (uml.Value, bool)) {
				if v, ok := prop("MTBF"); ok && v.AsReal() <= 0 {
					emit(element,
						fmt.Sprintf("MTBF %s is not positive; availability A = MTBF/(MTBF+MTTR) is undefined", v.String()),
						"set MTBF to the mean time between failures in hours (> 0)")
				}
				if v, ok := prop("MTTR"); ok && v.AsReal() < 0 {
					emit(element,
						fmt.Sprintf("MTTR %s is negative; a repair time cannot be negative", v.String()),
						"set MTTR to the mean time to repair in hours (>= 0)")
				}
			}
			seenClass := make(map[string]bool)
			for _, inst := range in.Diagram.Instances() {
				c := inst.Classifier()
				if seenClass[c.Name()] {
					continue
				}
				seenClass[c.Name()] = true
				checkValues(fmt.Sprintf("class %q", c.Name()), c.Property)
			}
			seenAssoc := make(map[string]bool)
			for _, l := range in.Diagram.Links() {
				a := l.Association()
				if seenAssoc[a.Name()] {
					continue
				}
				seenAssoc[a.Name()] = true
				checkValues(fmt.Sprintf("association %q", a.Name()), a.Property)
			}
		},
	}
}

// ruleMappingDanglingRef flags mapping pairs naming requesters or providers
// that are not objects of the topology — the most common hand-editing
// mistake, which Step 6 would otherwise only surface at generation time.
func ruleMappingDanglingRef() Rule {
	return rule{
		id:       "mapping-dangling-ref",
		severity: SeverityError,
		doc:      "every requester and provider in the mapping must be an object of the topology",
		check: func(in *Input, emit func(element, message, hint string)) {
			if in.Mapping == nil || in.Graph == nil {
				return
			}
			for _, p := range in.Mapping.Pairs() {
				for _, end := range []struct{ role, name string }{
					{"requester", p.Requester},
					{"provider", p.Provider},
				} {
					if !in.Graph.HasNode(end.name) {
						emit(fmt.Sprintf("pair %q", p.AtomicService),
							fmt.Sprintf("%s %q is not an object of the topology", end.role, end.name),
							"fix the component id in the mapping file or add the object to the diagram")
					}
				}
			}
		},
	}
}

// ruleMappingMissingPair flags atomic services of the composite without a
// mapping pair — Step 6 rejects such a mapping outright.
func ruleMappingMissingPair() Rule {
	return rule{
		id:       "mapping-missing-pair",
		severity: SeverityError,
		doc:      "every atomic service of the composite must have a mapping pair",
		check: func(in *Input, emit func(element, message, hint string)) {
			if in.Service == nil || in.Mapping == nil {
				return
			}
			for _, a := range in.Service.AtomicServices() {
				if _, ok := in.Mapping.Pair(a); !ok {
					emit(fmt.Sprintf("atomic service %q", a),
						fmt.Sprintf("composite service %q invokes it but the mapping has no pair for it", in.Service.Name()),
						"add an <atomicservice> element with requester and provider ids")
				}
			}
		},
	}
}

// ruleMappingUnusedPair flags mapping pairs whose atomic service the
// composite never invokes. The paper permits them ("they will be ignored",
// Section VI-D), so this is a warning, not an error.
func ruleMappingUnusedPair() Rule {
	return rule{
		id:       "mapping-unused-pair",
		severity: SeverityWarning,
		doc:      "mapping pairs should correspond to atomic services of the analysed composite",
		check: func(in *Input, emit func(element, message, hint string)) {
			if in.Service == nil || in.Mapping == nil {
				return
			}
			used := make(map[string]bool)
			for _, a := range in.Service.AtomicServices() {
				used[a] = true
			}
			for _, p := range in.Mapping.Pairs() {
				if !used[p.AtomicService] {
					emit(fmt.Sprintf("pair %q", p.AtomicService),
						fmt.Sprintf("composite service %q never invokes this atomic service; the pair is ignored", in.Service.Name()),
						"remove the pair or check the atomic service id for a typo")
				}
			}
		},
	}
}

// ruleMappingUnreachablePair flags pairs whose requester and provider lie in
// different connected components of the topology: path discovery for them is
// guaranteed to enumerate nothing. A union-find over the graph answers this
// without enumerating a single path.
func ruleMappingUnreachablePair() Rule {
	return rule{
		id:       "mapping-unreachable-pair",
		severity: SeverityError,
		doc:      "requester and provider of every pair must lie in the same connected component of the topology",
		check: func(in *Input, emit func(element, message, hint string)) {
			if in.Mapping == nil || in.Graph == nil {
				return
			}
			uf := newUnionFind(in.Graph)
			for _, p := range in.Mapping.Pairs() {
				if !in.Graph.HasNode(p.Requester) || !in.Graph.HasNode(p.Provider) {
					continue // mapping-dangling-ref reports these
				}
				if !uf.connected(p.Requester, p.Provider) {
					emit(fmt.Sprintf("pair %q", p.AtomicService),
						fmt.Sprintf("requester %q and provider %q lie in different connected components; path discovery cannot find any path",
							p.Requester, p.Provider),
						"connect the two network segments or map the service onto reachable components")
				}
			}
		},
	}
}

// ruleServiceForkJoinArity flags activities whose total fork branch count
// does not match the total join input count: some concurrent branch bypasses
// the synchronisation, which usually indicates a mis-drawn diagram even when
// the activity is structurally valid.
func ruleServiceForkJoinArity() Rule {
	return rule{
		id:       "service-fork-join-arity",
		severity: SeverityWarning,
		doc:      "fork branch counts should match join input counts within an activity",
		check: func(in *Input, emit func(element, message, hint string)) {
			for _, act := range in.Model.Activities() {
				forkOut, joinIn := 0, 0
				for _, n := range act.Nodes() {
					switch n.Kind() {
					case uml.NodeFork:
						forkOut += len(n.Outgoing())
					case uml.NodeJoin:
						joinIn += len(n.Incoming())
					}
				}
				if forkOut != joinIn {
					emit(fmt.Sprintf("activity %q", act.Name()),
						fmt.Sprintf("forks open %d concurrent branches but joins synchronise %d; a branch bypasses the join", forkOut, joinIn),
						"route every forked branch through the matching join")
				}
			}
		},
	}
}

// ruleServiceUnreachableNode lists every activity node that control flow
// from the initial node can never reach. Unlike Activity.Validate, which
// stops at the first offender, the rule reports all of them at once.
func ruleServiceUnreachableNode() Rule {
	return rule{
		id:       "service-unreachable-node",
		severity: SeverityError,
		doc:      "every activity node must be reachable from the initial node",
		check: func(in *Input, emit func(element, message, hint string)) {
			for _, act := range in.Model.Activities() {
				reached := make(map[*uml.ActivityNode]bool)
				queue := []*uml.ActivityNode{act.Initial()}
				reached[act.Initial()] = true
				for len(queue) > 0 {
					n := queue[0]
					queue = queue[1:]
					for _, t := range n.Outgoing() {
						if !reached[t] {
							reached[t] = true
							queue = append(queue, t)
						}
					}
				}
				for _, n := range act.Nodes() {
					if !reached[n] {
						emit(fmt.Sprintf("activity %q", act.Name()),
							fmt.Sprintf("node %s is unreachable from the initial node; its atomic service would never execute", n),
							"add the missing control flow or delete the node")
					}
				}
			}
		},
	}
}

// ruleServiceTooFewActions flags activities with fewer than two actions: a
// composite of fewer atomic services would itself be atomic (Section II),
// and service.FromActivity rejects it.
func ruleServiceTooFewActions() Rule {
	return rule{
		id:       "service-too-few-actions",
		severity: SeverityWarning,
		doc:      "a composite service activity should invoke at least two atomic services",
		check: func(in *Input, emit func(element, message, hint string)) {
			for _, act := range in.Model.Activities() {
				if n := len(act.ActionNames()); n < 2 {
					emit(fmt.Sprintf("activity %q", act.Name()),
						fmt.Sprintf("has %d action(s); a composite service is composed of two or more atomic services", n),
						"model the missing atomic services or drop the activity")
				}
			}
		},
	}
}

// ruleTopologyDuplicateObject flags object names that collide: the same
// name bound to different classes across the model's diagrams, or two names
// in one diagram differing only in case — both invite mapping files that
// silently bind to the wrong component.
func ruleTopologyDuplicateObject() Rule {
	return rule{
		id:       "topology-duplicate-object",
		severity: SeverityWarning,
		doc:      "object names must identify one component: no cross-diagram class conflicts, no case-only variants",
		check: func(in *Input, emit func(element, message, hint string)) {
			type first struct{ diagram, class string }
			byName := make(map[string]first)
			for _, d := range in.Model.Diagrams() {
				lower := make(map[string]string)
				for _, inst := range d.Instances() {
					ln := strings.ToLower(inst.Name())
					if prev, ok := lower[ln]; ok {
						emit(fmt.Sprintf("object %q", inst.Name()),
							fmt.Sprintf("differs only in case from object %q in diagram %q", prev, d.Name()),
							"rename one of the objects")
					} else {
						lower[ln] = inst.Name()
					}
					if prev, ok := byName[inst.Name()]; ok {
						if prev.class != inst.Classifier().Name() {
							emit(fmt.Sprintf("object %q", inst.Name()),
								fmt.Sprintf("is a %s in diagram %q but a %s in diagram %q",
									inst.Classifier().Name(), d.Name(), prev.class, prev.diagram),
								"use distinct names for distinct components")
						}
					} else {
						byName[inst.Name()] = first{diagram: d.Name(), class: inst.Classifier().Name()}
					}
				}
			}
		},
	}
}

// ruleTopologySelfLoop flags self-loop links in the topology graph. The UML
// layer cannot produce them, but synthetic and imported graphs can; simple
// paths never traverse them, so they are dead weight at best.
func ruleTopologySelfLoop() Rule {
	return rule{
		id:       "topology-self-loop",
		severity: SeverityWarning,
		doc:      "topology links must join two distinct objects",
		check: func(in *Input, emit func(element, message, hint string)) {
			if in.Graph == nil {
				return
			}
			for _, e := range in.Graph.Edges() {
				if e.A == e.B {
					emit(fmt.Sprintf("object %q", e.A),
						"self-loop link; a connector always joins two distinct devices and no simple path traverses it",
						"remove the link")
				}
			}
		},
	}
}

// ruleTopologyIsolatedNode flags objects without any link: they can never
// appear in a requester→provider path and no UPSIM will ever contain them.
func ruleTopologyIsolatedNode() Rule {
	return rule{
		id:       "topology-isolated-node",
		severity: SeverityWarning,
		doc:      "every topology object should have at least one link",
		check: func(in *Input, emit func(element, message, hint string)) {
			if in.Graph == nil {
				return
			}
			for _, n := range in.Graph.Nodes() {
				if in.Graph.Degree(n.Name) == 0 {
					emit(fmt.Sprintf("object %q", n.Name),
						"has no links; it cannot appear in any requester→provider path",
						"link the object into the network or remove it from the diagram")
				}
			}
		},
	}
}

// ruleTopologyParallelLinks reports redundant parallel links between the
// same pair of objects — deliberate redundancy in the paper's core network,
// so informational only, but worth surfacing in an inventory.
func ruleTopologyParallelLinks() Rule {
	return rule{
		id:       "topology-parallel-links",
		severity: SeverityInfo,
		doc:      "parallel links between the same object pair model redundant physical connections",
		check: func(in *Input, emit func(element, message, hint string)) {
			if in.Graph == nil {
				return
			}
			count := make(map[[2]string]int)
			var order [][2]string
			for _, e := range in.Graph.Edges() {
				a, b := e.A, e.B
				if a == b {
					continue // topology-self-loop reports these
				}
				if b < a {
					a, b = b, a
				}
				key := [2]string{a, b}
				if count[key] == 0 {
					order = append(order, key)
				}
				count[key]++
			}
			for _, key := range order {
				if n := count[key]; n > 1 {
					emit(fmt.Sprintf("objects %q and %q", key[0], key[1]),
						fmt.Sprintf("connected by %d parallel links (redundant physical connection)", n),
						"")
				}
			}
		},
	}
}
