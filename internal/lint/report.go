package lint

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// Report aggregates the findings of one lint run. The JSON shape is stable
// and round-trips through DecodeReport, so CI pipelines and the HTTP API can
// consume machine-readable reports.
type Report struct {
	// Diagnostics are the findings, errors first.
	Diagnostics []Diagnostic `json:"diagnostics"`
	// Errors, Warnings and Infos count the diagnostics per severity.
	Errors   int `json:"errors"`
	Warnings int `json:"warnings"`
	Infos    int `json:"infos"`
	// RulesRun is the number of rules executed.
	RulesRun int `json:"rulesRun"`
}

// count recomputes the per-severity tallies from Diagnostics.
func (r *Report) count() {
	r.Errors, r.Warnings, r.Infos = 0, 0, 0
	for _, d := range r.Diagnostics {
		switch d.Severity {
		case SeverityError:
			r.Errors++
		case SeverityWarning:
			r.Warnings++
		case SeverityInfo:
			r.Infos++
		}
	}
}

// Clean reports whether the run produced no diagnostics at all.
func (r *Report) Clean() bool { return len(r.Diagnostics) == 0 }

// HasErrors reports whether any error-severity diagnostic was emitted.
func (r *Report) HasErrors() bool { return r.Errors > 0 }

// Summary renders the one-line tally, e.g. "2 errors, 1 warning, 0 infos
// (13 rules)".
func (r *Report) Summary() string {
	plural := func(n int, word string) string {
		if n == 1 {
			return fmt.Sprintf("%d %s", n, word)
		}
		return fmt.Sprintf("%d %ss", n, word)
	}
	return fmt.Sprintf("%s, %s, %s (%d rules)",
		plural(r.Errors, "error"), plural(r.Warnings, "warning"), plural(r.Infos, "info"), r.RulesRun)
}

// Render writes the human-readable report: one line per diagnostic followed
// by the summary line.
func (r *Report) Render(w io.Writer) error {
	for _, d := range r.Diagnostics {
		if _, err := fmt.Fprintln(w, d.String()); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "lint:", r.Summary())
	return err
}

// EncodeJSON writes the report as indented JSON.
func (r *Report) EncodeJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return fmt.Errorf("lint: encode report: %w", err)
	}
	return nil
}

// DecodeReport reads a report previously written by EncodeJSON, recomputing
// the severity tallies from the decoded diagnostics so a hand-edited count
// cannot disagree with the payload.
func DecodeReport(rd io.Reader) (*Report, error) {
	var r Report
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("lint: decode report: %w", err)
	}
	r.count()
	return &r, nil
}

// Err converts error-severity findings into a Go error carrying the report
// (nil when the report has none). This is what the generator's fail-fast
// lint gate returns.
func (r *Report) Err() error {
	if !r.HasErrors() {
		return nil
	}
	return &Error{Report: r}
}

// Error is the error form of a report with error-severity findings.
type Error struct {
	Report *Report
}

// Error implements the error interface: the first finding plus the tally.
func (e *Error) Error() string {
	first := ""
	for _, d := range e.Report.Diagnostics {
		if d.Severity == SeverityError {
			first = ": " + d.String()
			break
		}
	}
	return fmt.Sprintf("lint: %s%s", e.Report.Summary(), first)
}

// AsError extracts a *lint.Error from err, if present.
func AsError(err error) (*Error, bool) {
	var le *Error
	if errors.As(err, &le) {
		return le, true
	}
	return nil, false
}
