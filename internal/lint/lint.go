// Package lint is a static-analysis engine over the four model artifacts of
// the UPSIM methodology: the UML model (profiles, classes, associations),
// the deployed topology (object diagram / graph view), the composite-service
// description (activity diagram) and the service mapping. The pipeline of
// Steps 5–8 silently assumes well-formed inputs — every atomic service has a
// mapping pair, every pair names objects that exist and are connected, and
// every component carries the MTBF/MTTR attributes the Section VII
// dependability analysis needs. The lint engine checks those assumptions
// up front, without executing path discovery, and reports every violation
// at once as structured diagnostics.
//
// The design follows go/analysis: a Rule is a named, documented check with a
// fixed default severity; a Registry holds an ordered rule set; Run executes
// every rule against an Input and aggregates the emitted Diagnostics into a
// Report with text and JSON renderers. Adding a rule means implementing the
// four-method Rule interface and registering it — no engine changes.
//
// Rules never mutate the artifacts and run in O(model size): reachability
// questions use a union-find over the topology graph instead of path
// enumeration, so linting a model is cheap enough to run as a pre-flight
// gate before every generation (see core.Options.Lint).
package lint

import (
	"fmt"
	"sort"

	"upsim/internal/mapping"
	"upsim/internal/obs"
	"upsim/internal/service"
	"upsim/internal/topology"
	"upsim/internal/uml"
)

// Severity grades a diagnostic. Error-severity findings mean a pipeline run
// or a downstream analysis over the model would fail or be silently wrong;
// warnings flag likely modelling mistakes; infos are advisory.
type Severity uint8

const (
	// SeverityInfo is advisory.
	SeverityInfo Severity = iota
	// SeverityWarning flags a likely modelling mistake that does not stop
	// the pipeline.
	SeverityWarning
	// SeverityError flags a defect that breaks generation or corrupts a
	// downstream analysis.
	SeverityError
)

// String returns the lower-case severity name.
func (s Severity) String() string {
	switch s {
	case SeverityInfo:
		return "info"
	case SeverityWarning:
		return "warning"
	case SeverityError:
		return "error"
	}
	return fmt.Sprintf("Severity(%d)", uint8(s))
}

// MarshalText implements encoding.TextMarshaler (JSON renders severities as
// their names).
func (s Severity) MarshalText() ([]byte, error) {
	switch s {
	case SeverityInfo, SeverityWarning, SeverityError:
		return []byte(s.String()), nil
	}
	return nil, fmt.Errorf("lint: unknown severity %d", uint8(s))
}

// UnmarshalText implements encoding.TextUnmarshaler.
func (s *Severity) UnmarshalText(b []byte) error {
	switch string(b) {
	case "info":
		*s = SeverityInfo
	case "warning":
		*s = SeverityWarning
	case "error":
		*s = SeverityError
	default:
		return fmt.Errorf("lint: unknown severity %q", b)
	}
	return nil
}

// Diagnostic is one finding: which rule fired, how severe it is, which model
// element it concerns, what is wrong and how to fix it.
type Diagnostic struct {
	// Rule is the ID of the rule that emitted the diagnostic.
	Rule string `json:"rule"`
	// Severity grades the finding.
	Severity Severity `json:"severity"`
	// Element locates the offending model element, e.g. `pair "print"` or
	// `class "C6500"`.
	Element string `json:"element"`
	// Message states the defect.
	Message string `json:"message"`
	// Hint suggests a fix (may be empty).
	Hint string `json:"hint,omitempty"`
}

// String renders the diagnostic as one line of linter output.
func (d Diagnostic) String() string {
	s := fmt.Sprintf("%s[%s] %s: %s", d.Severity, d.Rule, d.Element, d.Message)
	if d.Hint != "" {
		s += " (fix: " + d.Hint + ")"
	}
	return s
}

// Input bundles the artifacts one lint run analyses. Model is required;
// every other artifact is optional — rules skip checks whose inputs are
// absent, so the same registry serves full pre-flight validation (model +
// diagram + service + mapping) and narrower runs (topology-only, model-only).
type Input struct {
	// Model is the UML model under analysis (required).
	Model *uml.Model
	// Diagram is the infrastructure object diagram, if topology checks are
	// wanted.
	Diagram *uml.ObjectDiagram
	// Graph is the graph view of Diagram. NewInput derives it; callers
	// assembling an Input by hand may supply a standalone graph (e.g. a
	// synthetic topology) without any diagram.
	Graph *topology.Graph
	// Service is the composite service whose mapping coverage is checked.
	Service *service.Composite
	// Mapping is the service mapping under analysis.
	Mapping *mapping.Mapping
}

// NewInput assembles the lint input for a model: the named object diagram is
// resolved and its graph view derived. diagramName may be empty when the
// model has no object diagrams; svc and mp may be nil. Unlike the generator,
// NewInput does not pre-validate the model — surfacing validation issues is
// the lint engine's job.
func NewInput(m *uml.Model, diagramName string, svc *service.Composite, mp *mapping.Mapping) (*Input, error) {
	if m == nil {
		return nil, fmt.Errorf("lint: nil model")
	}
	in := &Input{Model: m, Service: svc, Mapping: mp}
	if diagramName != "" {
		d, ok := m.Diagram(diagramName)
		if !ok {
			return nil, fmt.Errorf("lint: model %q has no object diagram %q", m.Name(), diagramName)
		}
		in.Diagram = d
		in.Graph = topology.FromObjectDiagram(d)
	}
	return in, nil
}

// Rule is one static-analysis check. Implementations must be stateless and
// safe for concurrent use; Check reports findings by returning Diagnostics
// (typically built with the rule's own ID and Severity).
type Rule interface {
	// ID is the stable rule identifier, e.g. "mapping-dangling-ref".
	ID() string
	// Severity is the default severity of the rule's diagnostics.
	Severity() Severity
	// Doc is a one-line description of what the rule checks.
	Doc() string
	// Check analyses the input and returns the rule's findings.
	Check(in *Input) []Diagnostic
}

// Registry is an ordered set of rules keyed by ID.
type Registry struct {
	rules []Rule
	byID  map[string]Rule
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{byID: make(map[string]Rule)} }

// Register adds a rule. Duplicate IDs are rejected.
func (r *Registry) Register(rule Rule) error {
	if rule == nil {
		return fmt.Errorf("lint: nil rule")
	}
	if rule.ID() == "" {
		return fmt.Errorf("lint: rule with empty ID")
	}
	if _, dup := r.byID[rule.ID()]; dup {
		return fmt.Errorf("lint: duplicate rule %q", rule.ID())
	}
	r.byID[rule.ID()] = rule
	r.rules = append(r.rules, rule)
	return nil
}

// Rules returns the registered rules in registration order.
func (r *Registry) Rules() []Rule {
	out := make([]Rule, len(r.rules))
	copy(out, r.rules)
	return out
}

// Rule looks up a rule by ID.
func (r *Registry) Rule(id string) (Rule, bool) {
	rule, ok := r.byID[id]
	return rule, ok
}

// Default returns a fresh registry holding every built-in rule (see
// rules.go). The registry is mutable, so callers may Register additional
// project-specific rules on top.
func Default() *Registry {
	r := NewRegistry()
	for _, rule := range builtinRules() {
		if err := r.Register(rule); err != nil {
			panic(err) // built-in IDs are unique by construction
		}
	}
	return r
}

// Per-rule observability: every diagnostic increments
// upsim_lint_diagnostics_total{rule,severity}; every engine invocation
// increments upsim_lint_runs_total. Exposed on GET /metrics (internal/obs).
var (
	mRuns = obs.NewCounter("upsim_lint_runs_total",
		"Lint engine invocations.")
	mDiags = obs.NewCounter("upsim_lint_diagnostics_total",
		"Lint diagnostics emitted.", "rule", "severity")
)

// Run executes every registered rule against the input and aggregates the
// findings. Diagnostics are ordered by severity (errors first), then by rule
// registration order, then by emission order, so the most urgent findings
// lead the report.
func (r *Registry) Run(in *Input) (*Report, error) {
	if in == nil || in.Model == nil {
		return nil, fmt.Errorf("lint: nil input or model")
	}
	if in.Graph == nil && in.Diagram != nil {
		in = &Input{
			Model:   in.Model,
			Diagram: in.Diagram,
			Graph:   topology.FromObjectDiagram(in.Diagram),
			Service: in.Service,
			Mapping: in.Mapping,
		}
	}
	mRuns.With().Inc()
	rep := &Report{RulesRun: len(r.rules)}
	for _, rule := range r.rules {
		for _, d := range rule.Check(in) {
			if d.Rule == "" {
				d.Rule = rule.ID()
			}
			mDiags.With(d.Rule, d.Severity.String()).Inc()
			rep.Diagnostics = append(rep.Diagnostics, d)
		}
	}
	// Severity descending; the stable sort preserves rule registration and
	// emission order within each severity class.
	sort.SliceStable(rep.Diagnostics, func(i, j int) bool {
		return rep.Diagnostics[i].Severity > rep.Diagnostics[j].Severity
	})
	rep.count()
	return rep, nil
}
