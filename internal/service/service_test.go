package service

import (
	"strings"
	"testing"

	"upsim/internal/mapping"
	"upsim/internal/uml"
)

func printingService(t *testing.T) *Composite {
	t.Helper()
	m := uml.NewModel("svc")
	c, err := NewSequential(m, "printing",
		"Request printing", "Login to printer", "Send document list",
		"Select documents", "Send documents")
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewSequential(t *testing.T) {
	c := printingService(t)
	if c.Name() != "printing" {
		t.Errorf("Name = %q", c.Name())
	}
	atomics := c.AtomicServices()
	if len(atomics) != 5 || atomics[0] != "Request printing" || atomics[4] != "Send documents" {
		t.Errorf("AtomicServices = %v", atomics)
	}
	stages := c.Stages()
	if len(stages) != 5 {
		t.Fatalf("Stages = %v", stages)
	}
	for i, s := range stages {
		if len(s) != 1 {
			t.Errorf("stage %d = %v, want singleton", i, s)
		}
	}
	if c.Activity() == nil || c.Activity().Name() != "printing" {
		t.Error("Activity accessor broken")
	}
}

func TestNewStagedParallel(t *testing.T) {
	m := uml.NewModel("svc")
	c, err := NewStaged(m, "figure2", [][]string{
		{"Atomic Service 1"},
		{"Atomic Service 2", "Atomic Service 3"},
		{"Atomic Service 4"},
	})
	if err != nil {
		t.Fatal(err)
	}
	stages := c.Stages()
	if len(stages) != 3 || len(stages[1]) != 2 {
		t.Errorf("Stages = %v", stages)
	}
	// The generated activity must be a valid UML diagram.
	if err := c.Activity().Validate(); err != nil {
		t.Errorf("generated activity invalid: %v", err)
	}
}

func TestNewStagedErrors(t *testing.T) {
	m := uml.NewModel("svc")
	if _, err := NewStaged(nil, "x", [][]string{{"a"}, {"b"}}); err == nil {
		t.Error("nil model should fail")
	}
	if _, err := NewStaged(m, "x", nil); err == nil {
		t.Error("no stages should fail")
	}
	if _, err := NewStaged(m, "y", [][]string{{"a"}, {}}); err == nil {
		t.Error("empty stage should fail")
	}
	if _, err := NewStaged(m, "z", [][]string{{"a"}, {"a"}}); err == nil {
		t.Error("duplicate atomic service should fail")
	}
	// A single atomic service is not a composite (Section II).
	if _, err := NewSequential(m, "solo", "only"); err == nil {
		t.Error("single-service composite should fail")
	}
	if _, err := NewSequential(m, "printing2", "a", "b"); err != nil {
		t.Errorf("two-service composite should be fine: %v", err)
	}
	// Duplicate activity name.
	if _, err := NewSequential(m, "printing2", "c", "d"); err == nil {
		t.Error("duplicate service name should fail")
	}
}

func TestFromActivity(t *testing.T) {
	m := uml.NewModel("svc")
	act, _ := m.NewActivity("manual")
	a1, _ := act.AddAction("s1")
	a2, _ := act.AddAction("s2")
	final := act.AddFinal()
	_ = act.Sequence(act.Initial(), a1, a2, final)
	c, err := FromActivity(act)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.AtomicServices(); len(got) != 2 {
		t.Errorf("AtomicServices = %v", got)
	}
	if _, err := FromActivity(nil); err == nil {
		t.Error("nil activity should fail")
	}
	bad, _ := m.NewActivity("bad")
	if _, err := FromActivity(bad); err == nil {
		t.Error("invalid activity should fail")
	}
}

func tableI(t *testing.T) *mapping.Mapping {
	t.Helper()
	m := mapping.New()
	for _, p := range []mapping.Pair{
		{AtomicService: "Request printing", Requester: "t1", Provider: "printS"},
		{AtomicService: "Login to printer", Requester: "p2", Provider: "printS"},
		{AtomicService: "Send document list", Requester: "printS", Provider: "p2"},
		{AtomicService: "Select documents", Requester: "p2", Provider: "printS"},
		{AtomicService: "Send documents", Requester: "printS", Provider: "p2"},
	} {
		if err := m.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

func TestCheckMapping(t *testing.T) {
	c := printingService(t)
	m := tableI(t)
	if err := c.CheckMapping(m); err != nil {
		t.Errorf("complete mapping should pass: %v", err)
	}
	// Extra pairs are permitted and ignored.
	_ = m.Add(mapping.Pair{AtomicService: "Request backup", Requester: "t2", Provider: "backup"})
	if err := c.CheckMapping(m); err != nil {
		t.Errorf("extra pairs must be ignored: %v", err)
	}
	// Missing pair is an error naming the service.
	incomplete := mapping.New()
	_ = incomplete.Add(mapping.Pair{AtomicService: "Request printing", Requester: "t1", Provider: "printS"})
	err := c.CheckMapping(incomplete)
	if err == nil || !strings.Contains(err.Error(), "Login to printer") {
		t.Errorf("missing pairs error = %v", err)
	}
	if err := c.CheckMapping(nil); err == nil {
		t.Error("nil mapping should fail")
	}
}

func TestRelevantPairs(t *testing.T) {
	c := printingService(t)
	m := tableI(t)
	_ = m.Add(mapping.Pair{AtomicService: "Request backup", Requester: "t2", Provider: "backup"})
	pairs, err := c.RelevantPairs(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 5 {
		t.Fatalf("RelevantPairs = %v", pairs)
	}
	// Execution order, and the irrelevant backup pair excluded.
	if pairs[0].AtomicService != "Request printing" || pairs[4].AtomicService != "Send documents" {
		t.Errorf("order = %v", pairs)
	}
	for _, p := range pairs {
		if p.AtomicService == "Request backup" {
			t.Error("irrelevant pair included")
		}
	}
	incomplete := mapping.New()
	if _, err := c.RelevantPairs(incomplete); err == nil {
		t.Error("incomplete mapping should fail")
	}
}
