// Package service implements the service model of the UPSIM methodology
// (Section II and V-A2): composite services described as UML activity
// diagrams whose actions are atomic services — indivisible abstractions of
// infrastructure, application or business functionality (Definition 1,
// adopted from Milanovic et al.). A composite service is composed of and
// only of two or more atomic services; atomic services are still abstract at
// this level and become concrete only through the service mapping (package
// mapping).
package service

import (
	"fmt"

	"upsim/internal/mapping"
	"upsim/internal/uml"
)

// Composite is a composite service backed by a validated UML activity
// diagram. The service description stays independent of the infrastructure:
// "the same service description can be used to describe a service for
// arbitrary pairs in any network that provides the atomic services"
// (Section VI-C).
type Composite struct {
	activity *uml.Activity
	atomics  []string
	stages   [][]string
}

// FromActivity wraps and validates a UML activity diagram as a composite
// service. The diagram must be well-formed and reference at least two atomic
// services (a composite of fewer atomic services would itself be atomic,
// Section II).
func FromActivity(act *uml.Activity) (*Composite, error) {
	if act == nil {
		return nil, fmt.Errorf("service: nil activity")
	}
	stages, err := act.Stages()
	if err != nil {
		return nil, fmt.Errorf("service: %s: %w", act.Name(), err)
	}
	atomics := act.ActionNames()
	if len(atomics) < 2 {
		return nil, fmt.Errorf("service: %s: a composite service needs at least two atomic services, has %d",
			act.Name(), len(atomics))
	}
	return &Composite{activity: act, atomics: atomics, stages: stages}, nil
}

// NewSequential builds a strictly sequential composite service (the shape of
// the paper's printing service, Figure 10) in the given model.
func NewSequential(m *uml.Model, name string, atomics ...string) (*Composite, error) {
	return NewStaged(m, name, toStages(atomics))
}

func toStages(atomics []string) [][]string {
	stages := make([][]string, 0, len(atomics))
	for _, a := range atomics {
		stages = append(stages, []string{a})
	}
	return stages
}

// NewStaged builds a composite service from execution stages: the atomic
// services of one stage run in parallel (separated by fork/join figures, as
// in Figure 2), stages run in sequence.
func NewStaged(m *uml.Model, name string, stages [][]string) (*Composite, error) {
	if m == nil {
		return nil, fmt.Errorf("service: nil model")
	}
	if len(stages) == 0 {
		return nil, fmt.Errorf("service: %s: no stages", name)
	}
	act, err := m.NewActivity(name)
	if err != nil {
		return nil, err
	}
	prev := act.Initial()
	for si, stage := range stages {
		if len(stage) == 0 {
			return nil, fmt.Errorf("service: %s: stage %d is empty", name, si)
		}
		if len(stage) == 1 {
			n, err := act.AddAction(stage[0])
			if err != nil {
				return nil, err
			}
			if err := act.Flow(prev, n); err != nil {
				return nil, err
			}
			prev = n
			continue
		}
		fork := act.AddFork()
		join := act.AddJoin()
		if err := act.Flow(prev, fork); err != nil {
			return nil, err
		}
		for _, aName := range stage {
			n, err := act.AddAction(aName)
			if err != nil {
				return nil, err
			}
			if err := act.Flow(fork, n); err != nil {
				return nil, err
			}
			if err := act.Flow(n, join); err != nil {
				return nil, err
			}
		}
		prev = join
	}
	final := act.AddFinal()
	if err := act.Flow(prev, final); err != nil {
		return nil, err
	}
	return FromActivity(act)
}

// Name returns the composite service name.
func (c *Composite) Name() string { return c.activity.Name() }

// Activity returns the backing UML activity diagram.
func (c *Composite) Activity() *uml.Activity { return c.activity }

// AtomicServices returns the atomic service names in modelling order. Every
// atomic service is executed during the composite service (Section V-A2).
func (c *Composite) AtomicServices() []string {
	out := make([]string, len(c.atomics))
	copy(out, c.atomics)
	return out
}

// Stages returns the execution stages: stage i+1 starts after every atomic
// service of stage i completed; services within a stage run in parallel.
func (c *Composite) Stages() [][]string {
	out := make([][]string, len(c.stages))
	for i, s := range c.stages {
		out[i] = append([]string(nil), s...)
	}
	return out
}

// CheckMapping verifies that the mapping provides a pair for every atomic
// service of the composite. Pairs for atomic services outside the composite
// are permitted and ignored ("they will be ignored when the corresponding
// atomic service is irrelevant for the analyzed service", Section VI-D).
func (c *Composite) CheckMapping(m *mapping.Mapping) error {
	if m == nil {
		return fmt.Errorf("service: %s: nil mapping", c.Name())
	}
	var missing []string
	for _, a := range c.atomics {
		if _, ok := m.Pair(a); !ok {
			missing = append(missing, a)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("service: %s: mapping lacks pairs for atomic services %q", c.Name(), missing)
	}
	return nil
}

// RelevantPairs returns the mapping pairs for exactly this composite's
// atomic services, in execution order (stage by stage).
func (c *Composite) RelevantPairs(m *mapping.Mapping) ([]mapping.Pair, error) {
	if err := c.CheckMapping(m); err != nil {
		return nil, err
	}
	var out []mapping.Pair
	for _, stage := range c.stages {
		for _, a := range stage {
			p, _ := m.Pair(a)
			out = append(out, p)
		}
	}
	return out, nil
}
