package explain

import (
	"context"
	"fmt"
	"sort"
	"time"

	"upsim/internal/core"
	"upsim/internal/obs"
	"upsim/internal/uml"
)

// Validation issue kinds, from most to least severe: a used component or
// link vanished from the topology, its class changed, or a stereotype
// attribute the analysis depends on changed value.
const (
	IssueMissingNode     = "missing-node"
	IssueMissingLink     = "missing-link"
	IssueClassChanged    = "class-changed"
	IssuePropertyChanged = "property-changed"
)

// linkProperties are the stereotype attributes checked on links: the
// availability profile's failure data plus the Communication stereotype's
// QoS attributes — exactly what the dependability and QoS analyses read.
var linkProperties = []string{"MTBF", "MTTR", "throughput", "channel"}

// Issue is one reason a cached generation is stale.
type Issue struct {
	// Kind is one of the Issue* constants.
	Kind string `json:"kind"`
	// Subject identifies the stale element: an instance name or a link
	// rendered as "a--b (Association)".
	Subject string `json:"subject"`
	// Detail spells out the mismatch.
	Detail string `json:"detail"`
}

// Validation is the result of checking a cached generation against the
// current topology.
type Validation struct {
	// Name is the UPSIM name of the validated generation.
	Name string `json:"name"`
	// Fresh is true when every path node and link of the generation is
	// still present with unchanged stereotype values.
	Fresh bool `json:"fresh"`
	// NodesChecked and LinksChecked count the distinct components the
	// generation's paths traverse.
	NodesChecked int `json:"nodesChecked"`
	LinksChecked int `json:"linksChecked"`
	// Issues lists every reason the generation is stale (empty when Fresh).
	Issues []Issue `json:"issues,omitempty"`
}

// Validate checks a cached generation result against the current topology
// diagram: every node and link any discovered path traverses must still
// exist, instantiate the same class (or association), and carry the same
// stereotype values. A generation that fails validation is stale — its
// paths, and every availability or QoS number derived from them, no longer
// describe the infrastructure.
func Validate(ctx context.Context, res *core.Result, cur *uml.ObjectDiagram) (*Validation, error) {
	if res == nil || res.Source == nil {
		return nil, fmt.Errorf("explain: nil generation result")
	}
	if cur == nil {
		return nil, fmt.Errorf("explain: nil current diagram")
	}
	start := time.Now()
	_, span := obs.StartSpan(ctx, "explain.validate")
	defer span.End()

	v := &Validation{Name: res.Name}
	seen := make(map[string]bool) // kind + "\x00" + subject dedupe
	report := func(kind, subject, format string, args ...any) {
		key := kind + "\x00" + subject
		if seen[key] {
			return
		}
		seen[key] = true
		v.Issues = append(v.Issues, Issue{Kind: kind, Subject: subject, Detail: fmt.Sprintf(format, args...)})
	}

	nodes := make(map[string]bool)
	edges := make(map[int]bool)
	for _, sp := range res.Services {
		for _, p := range sp.Paths {
			for _, n := range p.Nodes {
				nodes[n] = true
			}
			for _, id := range p.Edges {
				edges[id] = true
			}
		}
	}
	v.NodesChecked = len(nodes)
	v.LinksChecked = len(edges)

	sortedNodes := make([]string, 0, len(nodes))
	for n := range nodes {
		sortedNodes = append(sortedNodes, n)
	}
	sort.Strings(sortedNodes)
	for _, name := range sortedNodes {
		orig, ok := res.Source.Instance(name)
		if !ok {
			return nil, fmt.Errorf("explain: path node %q not in source diagram", name)
		}
		curInst, ok := cur.Instance(name)
		if !ok {
			report(IssueMissingNode, name, "component %q no longer in diagram %q", name, cur.Name())
			continue
		}
		oc, cc := orig.Classifier(), curInst.Classifier()
		if oc.Name() != cc.Name() {
			report(IssueClassChanged, name, "component %q changed class %q -> %q", name, oc.Name(), cc.Name())
			continue
		}
		for _, prop := range oc.PropertyNames() {
			ov, had := oc.Property(prop)
			nv, has := cc.Property(prop)
			if had != has || (had && !ov.Equal(nv)) {
				report(IssuePropertyChanged, name, "component %q property %s changed %s -> %s",
					name, prop, ov.String(), nv.String())
			}
		}
	}

	// Links match by (endpoints, association) with multiplicity: the graph
	// layer supports parallel redundant links, so n used parallels need n
	// surviving parallels — a bare "some link still exists" test would miss
	// the removal of one of two redundant connections.
	links := res.Source.Links()
	sortedEdges := make([]int, 0, len(edges))
	for id := range edges {
		sortedEdges = append(sortedEdges, id)
	}
	sort.Ints(sortedEdges)
	type group struct {
		first *uml.Link
		used  int
	}
	groups := make(map[string]*group)
	order := make([]string, 0, len(sortedEdges))
	for _, id := range sortedEdges {
		if id < 0 || id >= len(links) {
			return nil, fmt.Errorf("explain: path references unknown edge %d", id)
		}
		l := links[id]
		a, b := l.Ends()
		an, bn := a.Name(), b.Name()
		if bn < an {
			an, bn = bn, an
		}
		key := an + "\x00" + bn + "\x00" + l.Association().Name()
		g, ok := groups[key]
		if !ok {
			g = &group{first: l}
			groups[key] = g
			order = append(order, key)
		}
		g.used++
	}
	for _, key := range order {
		g := groups[key]
		a, b := g.first.Ends()
		assoc := g.first.Association().Name()
		subject := g.first.Signature()
		var match *uml.Link
		present := 0
		for _, cl := range cur.LinksBetween(a.Name(), b.Name()) {
			if cl.Association().Name() == assoc {
				present++
				if match == nil {
					match = cl
				}
			}
		}
		if present < g.used {
			report(IssueMissingLink, subject, "link %s: %d of %d used parallel links remain in diagram %q",
				subject, present, g.used, cur.Name())
		}
		if match == nil {
			continue
		}
		for _, prop := range linkProperties {
			ov, had := g.first.Property(prop)
			nv, has := match.Property(prop)
			if had != has || (had && !ov.Equal(nv)) {
				report(IssuePropertyChanged, subject, "link %s property %s changed %s -> %s",
					subject, prop, ov.String(), nv.String())
			}
		}
	}

	v.Fresh = len(v.Issues) == 0
	span.SetAttr("nodes", v.NodesChecked)
	span.SetAttr("links", v.LinksChecked)
	span.SetAttr("fresh", v.Fresh)
	span.SetAttr("issues", len(v.Issues))
	mExplainSeconds.With("validate", "-").Observe(time.Since(start).Seconds())
	return v, nil
}
