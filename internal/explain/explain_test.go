package explain

import (
	"context"
	"math"
	"reflect"
	"strings"
	"testing"

	"upsim/internal/casestudy"
	"upsim/internal/core"
	"upsim/internal/depend"
)

// usiResult generates the USI printing-service UPSIM (Table I mapping,
// t1 → p2 → printS) — the acceptance fixture of the whole subsystem.
func usiResult(t *testing.T) *core.Result {
	t.Helper()
	m, err := casestudy.BuildModel()
	if err != nil {
		t.Fatal(err)
	}
	svc, err := casestudy.PrintingService(m)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := core.NewGenerator(m, casestudy.DiagramName)
	if err != nil {
		t.Fatal(err)
	}
	res, err := gen.Generate(svc, casestudy.TableIMapping(), "usi-explain", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestExplainKernelParity is the acceptance gate: the full report —
// per-path statistics, discovery trees, cut-set ranking, Birnbaum and
// Fussell–Vesely importances, class sensitivities — must be identical under
// the compiled and legacy dependability kernels.
func TestExplainKernelParity(t *testing.T) {
	res := usiResult(t)
	compiled, err := Explain(context.Background(), res, Options{})
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := Explain(context.Background(), res, Options{Legacy: true})
	if err != nil {
		t.Fatal(err)
	}
	if compiled.Kernel != "compiled" || legacy.Kernel != "legacy" {
		t.Fatalf("kernels = %q, %q", compiled.Kernel, legacy.Kernel)
	}
	compiled.Kernel, legacy.Kernel = "", ""
	if !reflect.DeepEqual(compiled, legacy) {
		t.Fatalf("compiled and legacy explain reports differ:\ncompiled: %+v\nlegacy:   %+v", compiled, legacy)
	}
}

func TestExplainUSIReport(t *testing.T) {
	res := usiResult(t)
	rep, err := Explain(context.Background(), res, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Name != "usi-explain" {
		t.Errorf("name = %q", rep.Name)
	}
	if len(rep.Services) != len(casestudy.PrintingAtomicServices) {
		t.Fatalf("services = %d, want %d", len(rep.Services), len(casestudy.PrintingAtomicServices))
	}
	if rep.Stats.Count != res.TotalPaths {
		t.Errorf("aggregate count = %d, want %d", rep.Stats.Count, res.TotalPaths)
	}
	if rep.Truncated {
		t.Error("unbounded USI discovery reported truncated")
	}

	for i, svc := range rep.Services {
		sp := res.Services[i]
		if svc.AtomicService != sp.AtomicService {
			t.Fatalf("service %d = %q, want %q", i, svc.AtomicService, sp.AtomicService)
		}
		if len(svc.Paths) != len(sp.Paths) || svc.Stats.Count != len(sp.Paths) {
			t.Errorf("service %q: %d records, stats count %d, want %d",
				svc.AtomicService, len(svc.Paths), svc.Stats.Count, len(sp.Paths))
		}
		// Per-path records mirror the discovered paths.
		for j, rec := range svc.Paths {
			p := sp.Paths[j]
			if rec.Index != j || !reflect.DeepEqual(rec.Nodes, p.Nodes) || rec.Length != p.Len() {
				t.Errorf("service %q path %d record mismatch: %+v vs %v", svc.AtomicService, j, rec, p)
			}
			wantType := PathTransitive
			if p.Len() <= 1 {
				wantType = PathDirect
			}
			if rec.Type != wantType {
				t.Errorf("path %s type = %q, want %q", p, rec.Type, wantType)
			}
			nodeCount := 0
			for _, n := range rec.Classes {
				nodeCount += n
			}
			if nodeCount != len(p.Nodes) {
				t.Errorf("path %s class counts sum to %d, want %d", p, nodeCount, len(p.Nodes))
			}
			// Every USI link carries throughput and channel, so the cost is
			// a sum of positive reciprocals and a bottleneck exists.
			if rec.Cost <= 0 || rec.Cost >= float64(p.Len()) {
				t.Errorf("path %s cost = %v (want within (0, hops))", p, rec.Cost)
			}
			if rec.BottleneckMbps <= 0 {
				t.Errorf("path %s has no bottleneck throughput", p)
			}
			if len(rec.Channels) != 1 || rec.Channels[0] != casestudy.LinkChannel {
				t.Errorf("path %s channels = %v", p, rec.Channels)
			}
		}
		// The discovery tree accounts for every path.
		if svc.Tree == nil || svc.Tree.Name != sp.Requester {
			t.Fatalf("service %q tree root = %+v, want %q", svc.AtomicService, svc.Tree, sp.Requester)
		}
		if svc.Tree.PathCount != len(sp.Paths) {
			t.Errorf("service %q tree path count = %d, want %d", svc.AtomicService, svc.Tree.PathCount, len(sp.Paths))
		}
		if svc.Tree.Depth() != svc.Stats.MaxLength+1 {
			t.Errorf("service %q tree depth = %d, want max length %d + 1",
				svc.AtomicService, svc.Tree.Depth(), svc.Stats.MaxLength)
		}
	}

	attr := rep.Attribution
	if attr == nil {
		t.Fatal("no attribution")
	}
	// The availability matches the analysis pipeline's exact number.
	want, err := depend.Analyze(res, depend.ModelExact, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if attr.Availability != want.Exact {
		t.Errorf("attribution availability = %v, want exact %v", attr.Availability, want.Exact)
	}
	if attr.CutSetsTotal == 0 || len(attr.CutSets) != attr.CutSetsTotal {
		t.Fatalf("cut sets = %d of %d", len(attr.CutSets), attr.CutSetsTotal)
	}
	// Shares sum to 1 and the ranking is by contribution.
	sum := 0.0
	for i, cs := range attr.CutSets {
		sum += cs.Share
		if i > 0 && cs.Unavailability > attr.CutSets[i-1].Unavailability {
			t.Errorf("cut sets not sorted by unavailability at %d", i)
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("cut-set shares sum to %v", sum)
	}
	if attr.ComponentsTotal != want.Components || len(attr.Components) != want.Components {
		t.Errorf("components = %d of %d, want %d", len(attr.Components), attr.ComponentsTotal, want.Components)
	}
	for i, ci := range attr.Components {
		if ci.Class == "" {
			t.Errorf("component %q has no class", ci.Component)
		}
		if ci.Birnbaum < 0 || ci.FussellVesely < -1e-12 || ci.FussellVesely > 1+1e-12 {
			t.Errorf("component %q importance out of range: %+v", ci.Component, ci)
		}
		if i > 0 && ci.Birnbaum > attr.Components[i-1].Birnbaum {
			t.Errorf("components not sorted by Birnbaum at %d", i)
		}
	}
	if len(attr.Classes) == 0 {
		t.Error("no class sensitivities")
	}
}

func TestExplainTopN(t *testing.T) {
	res := usiResult(t)
	full, err := Explain(context.Background(), res, Options{})
	if err != nil {
		t.Fatal(err)
	}
	top, err := Explain(context.Background(), res, Options{TopN: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(top.Attribution.CutSets) != 3 || len(top.Attribution.Components) != 3 {
		t.Fatalf("topN kept %d cuts, %d components", len(top.Attribution.CutSets), len(top.Attribution.Components))
	}
	if top.Attribution.CutSetsTotal != full.Attribution.CutSetsTotal ||
		top.Attribution.ComponentsTotal != full.Attribution.ComponentsTotal {
		t.Error("topN changed the pre-truncation totals")
	}
	if !reflect.DeepEqual(top.Attribution.CutSets, full.Attribution.CutSets[:3]) {
		t.Error("topN cut sets are not the leading full ranking")
	}
}

func TestExplainSkipAttribution(t *testing.T) {
	res := usiResult(t)
	rep, err := Explain(context.Background(), res, Options{SkipAttribution: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Attribution != nil {
		t.Fatal("SkipAttribution still attributed")
	}
	if rep.Stats.Count != res.TotalPaths {
		t.Errorf("stats count = %d", rep.Stats.Count)
	}
}

// TestExplainBudgetError pins the structured budget error surfaced through
// explain: a tiny cut-set limit names the offending atomic service.
func TestExplainBudgetError(t *testing.T) {
	res := usiResult(t)
	_, err := Explain(context.Background(), res, Options{CutLimit: 1})
	be, ok := depend.AsBudgetError(err)
	if !ok {
		t.Fatalf("err = %v, want BudgetError", err)
	}
	if be.Kind != depend.BudgetTransversal || be.AtomicService == "" || be.Limit != 1 {
		t.Fatalf("budget error = %+v", be)
	}
	if !strings.Contains(err.Error(), "transversal expansion exceeds limit 1") {
		t.Fatalf("budget error message changed: %v", err)
	}
	// Legacy kernel reports the identical error.
	_, lerr := Explain(context.Background(), res, Options{CutLimit: 1, Legacy: true})
	if lerr == nil || lerr.Error() != err.Error() {
		t.Fatalf("legacy budget error %q != compiled %q", lerr, err)
	}
}

func TestStatistics(t *testing.T) {
	res := usiResult(t)
	for _, sp := range res.Services {
		st := Statistics(sp.Paths)
		if st.Count != len(sp.Paths) || st.Direct+st.Transitive != st.Count {
			t.Fatalf("stats %+v inconsistent for %d paths", st, len(sp.Paths))
		}
		total := 0
		for depth, n := range st.DepthHistogram {
			if depth < st.MinLength || depth > st.MaxLength {
				t.Errorf("histogram depth %d outside [%d, %d]", depth, st.MinLength, st.MaxLength)
			}
			total += n
		}
		if total != st.Count {
			t.Errorf("histogram sums to %d, want %d", total, st.Count)
		}
		if st.MeanLength < float64(st.MinLength) || st.MeanLength > float64(st.MaxLength) {
			t.Errorf("mean %v outside [%d, %d]", st.MeanLength, st.MinLength, st.MaxLength)
		}
	}
	empty := Statistics(nil)
	if empty.Count != 0 || empty.DepthHistogram != nil {
		t.Errorf("empty stats = %+v", empty)
	}
}

func TestTreeRender(t *testing.T) {
	res := usiResult(t)
	rep, err := Explain(context.Background(), res, Options{SkipAttribution: true})
	if err != nil {
		t.Fatal(err)
	}
	tree := rep.Services[0].Tree
	text := tree.Render()
	if !strings.HasPrefix(text, res.Services[0].Requester+":") {
		t.Errorf("render does not start at requester:\n%s", text)
	}
	if !strings.Contains(text, "terminal=") {
		t.Errorf("render has no terminal marker:\n%s", text)
	}
	if got := strings.Count(text, "\n"); got != tree.Nodes() {
		t.Errorf("render has %d lines, want %d nodes", got, tree.Nodes())
	}
}
