package explain

import (
	"fmt"
	"strings"

	"upsim/internal/core"
)

// TreeNode is one node of a discovery tree: the prefix-merged view of every
// path an atomic service discovered, rooted at the requester. Two paths
// sharing a hop prefix share the corresponding tree nodes, so the tree shows
// where the user's traffic fans out across redundant infrastructure.
type TreeNode struct {
	// Name is the component instance name.
	Name string `json:"name"`
	// Class is the component's class name.
	Class string `json:"class,omitempty"`
	// PathCount counts the discovered paths passing through this node.
	PathCount int `json:"pathCount"`
	// Terminal counts the paths ending here (at the provider).
	Terminal int `json:"terminal,omitempty"`
	// Children are the next hops in first-discovered order.
	Children []*TreeNode `json:"children,omitempty"`
}

// BuildTree merges one atomic service's discovered paths into a discovery
// tree rooted at the requester. Children keep the deterministic enumeration
// order both path-discovery kernels share.
func BuildTree(res *core.Result, sp core.ServicePaths) (*TreeNode, error) {
	root := &TreeNode{Name: sp.Requester}
	if n, ok := res.Graph.Node(sp.Requester); ok {
		root.Class = n.Class
	}
	for _, p := range sp.Paths {
		if len(p.Nodes) == 0 || p.Nodes[0] != sp.Requester {
			return nil, fmt.Errorf("explain: path of %q does not start at requester %q",
				sp.AtomicService, sp.Requester)
		}
		root.PathCount++
		cur := root
		for _, hop := range p.Nodes[1:] {
			child := cur.child(hop)
			if child == nil {
				child = &TreeNode{Name: hop}
				if n, ok := res.Graph.Node(hop); ok {
					child.Class = n.Class
				}
				cur.Children = append(cur.Children, child)
			}
			child.PathCount++
			cur = child
		}
		cur.Terminal++
	}
	return root, nil
}

// child returns the direct child with the given name, or nil.
func (t *TreeNode) child(name string) *TreeNode {
	for _, c := range t.Children {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// Depth returns the number of node levels of the tree (1 for a lone root).
func (t *TreeNode) Depth() int {
	max := 0
	for _, c := range t.Children {
		if d := c.Depth(); d > max {
			max = d
		}
	}
	return max + 1
}

// Nodes counts the tree nodes, root included.
func (t *TreeNode) Nodes() int {
	n := 1
	for _, c := range t.Children {
		n += c.Nodes()
	}
	return n
}

// Render returns the tree as an indented text diagram, in the style of the
// -trace span tree:
//
//	t1:Comp  paths=2
//	└─ e1:HP2524  paths=2
//	   ├─ C6509:C6509  paths=1
//	   ...
func (t *TreeNode) Render() string {
	var b strings.Builder
	var walk func(n *TreeNode, prefix, childPrefix string)
	walk = func(n *TreeNode, prefix, childPrefix string) {
		label := n.Name
		if n.Class != "" {
			label += ":" + n.Class
		}
		fmt.Fprintf(&b, "%s%s  paths=%d", prefix, label, n.PathCount)
		if n.Terminal > 0 {
			fmt.Fprintf(&b, " terminal=%d", n.Terminal)
		}
		b.WriteByte('\n')
		for i, c := range n.Children {
			connector, extend := "├─ ", "│  "
			if i == len(n.Children)-1 {
				connector, extend = "└─ ", "   "
			}
			walk(c, childPrefix+connector, childPrefix+extend)
		}
	}
	walk(t, "", "")
	return b.String()
}
