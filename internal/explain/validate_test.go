package explain

import (
	"context"
	"testing"

	"upsim/internal/casestudy"
	"upsim/internal/uml"
)

// currentDiagram rebuilds the USI infrastructure as a "current topology"
// diagram inside a freshly built model, optionally dropping one instance
// (and its links) or one link, identified by the source diagram's
// deterministic ordering. The mutation simulates operational drift between
// a cached generation and the live infrastructure.
func currentDiagram(t *testing.T, skipNode string, skipEdge int) *uml.ObjectDiagram {
	t.Helper()
	m, err := casestudy.BuildModel()
	if err != nil {
		t.Fatal(err)
	}
	src, ok := m.Diagram(casestudy.DiagramName)
	if !ok {
		t.Fatal("no infrastructure diagram")
	}
	cur := m.NewObjectDiagram("current")
	for _, inst := range src.Instances() {
		if inst.Name() == skipNode {
			continue
		}
		if _, err := cur.AddInstance(inst.Name(), inst.Classifier()); err != nil {
			t.Fatal(err)
		}
	}
	for i, l := range src.Links() {
		if i == skipEdge {
			continue
		}
		a, b := l.Ends()
		if a.Name() == skipNode || b.Name() == skipNode {
			continue
		}
		if _, err := cur.ConnectByName(a.Name(), b.Name(), l.Association()); err != nil {
			t.Fatal(err)
		}
	}
	return cur
}

func hasIssue(v *Validation, kind, subject string) bool {
	for _, is := range v.Issues {
		if is.Kind == kind && is.Subject == subject {
			return true
		}
	}
	return false
}

// TestValidateFresh pins the base case: an unmutated rebuild of the
// infrastructure validates fresh.
func TestValidateFresh(t *testing.T) {
	res := usiResult(t)
	v, err := Validate(context.Background(), res, currentDiagram(t, "", -1))
	if err != nil {
		t.Fatal(err)
	}
	if !v.Fresh || len(v.Issues) != 0 {
		t.Fatalf("unmutated topology not fresh: %+v", v)
	}
	if v.NodesChecked == 0 || v.LinksChecked == 0 {
		t.Fatalf("nothing checked: %+v", v)
	}
}

// TestValidateRemovedNodes is the property test over nodes: removing ANY
// node used by the cached generation flips validation to stale with a
// missing-node issue naming it; removing any unused node keeps it fresh.
func TestValidateRemovedNodes(t *testing.T) {
	res := usiResult(t)
	used := make(map[string]bool)
	for _, sp := range res.Services {
		for _, p := range sp.Paths {
			for _, n := range p.Nodes {
				used[n] = true
			}
		}
	}
	if len(used) == 0 {
		t.Fatal("no used nodes")
	}
	unrelated := 0
	for _, inst := range res.Source.Instances() {
		name := inst.Name()
		v, err := Validate(context.Background(), res, currentDiagram(t, name, -1))
		if err != nil {
			t.Fatal(err)
		}
		if used[name] {
			if v.Fresh || !hasIssue(v, IssueMissingNode, name) {
				t.Errorf("removing used node %q: fresh=%v issues=%+v, want missing-node", name, v.Fresh, v.Issues)
			}
		} else {
			unrelated++
			if !v.Fresh {
				t.Errorf("removing unused node %q flipped validation stale: %+v", name, v.Issues)
			}
		}
	}
	if unrelated == 0 {
		t.Fatal("USI fixture has no unused node; the unrelated-mutation property was not exercised")
	}
}

// TestValidateRemovedLinks is the property test over links: removing ANY
// link used by the cached generation flips validation to stale with a
// missing-link issue; removing any unused link keeps it fresh.
func TestValidateRemovedLinks(t *testing.T) {
	res := usiResult(t)
	used := make(map[int]bool)
	for _, sp := range res.Services {
		for _, p := range sp.Paths {
			for _, id := range p.Edges {
				used[id] = true
			}
		}
	}
	if len(used) == 0 {
		t.Fatal("no used links")
	}
	links := res.Source.Links()
	unrelated := 0
	for id, l := range links {
		v, err := Validate(context.Background(), res, currentDiagram(t, "", id))
		if err != nil {
			t.Fatal(err)
		}
		if used[id] {
			if v.Fresh || !hasIssue(v, IssueMissingLink, l.Signature()) {
				t.Errorf("removing used link %s: fresh=%v issues=%+v, want missing-link", l.Signature(), v.Fresh, v.Issues)
			}
		} else {
			unrelated++
			if !v.Fresh {
				t.Errorf("removing unused link %s flipped validation stale: %+v", l.Signature(), v.Issues)
			}
		}
	}
	if unrelated == 0 {
		t.Fatal("USI fixture has no unused link; the unrelated-mutation property was not exercised")
	}
}

// TestValidateClassChanged covers a component re-deployed as a different
// device type.
func TestValidateClassChanged(t *testing.T) {
	res := usiResult(t)
	m, err := casestudy.BuildModel()
	if err != nil {
		t.Fatal(err)
	}
	src, _ := m.Diagram(casestudy.DiagramName)
	cur := m.NewObjectDiagram("current")
	for _, inst := range src.Instances() {
		cls := inst.Classifier()
		if inst.Name() == "e1" { // e1 is on every t1→printS path
			other, ok := m.Class("C6500")
			if !ok {
				t.Fatal("no C6500 class")
			}
			cls = other
		}
		if _, err := cur.AddInstance(inst.Name(), cls); err != nil {
			t.Fatal(err)
		}
	}
	for _, l := range src.Links() {
		a, b := l.Ends()
		if a.Name() == "e1" || b.Name() == "e1" {
			continue // the association no longer type-checks against C6500
		}
		if _, err := cur.ConnectByName(a.Name(), b.Name(), l.Association()); err != nil {
			t.Fatal(err)
		}
	}
	v, err := Validate(context.Background(), res, cur)
	if err != nil {
		t.Fatal(err)
	}
	if v.Fresh || !hasIssue(v, IssueClassChanged, "e1") {
		t.Fatalf("class change not detected: %+v", v)
	}
}

// TestValidatePropertyChanged covers stereotype value drift on devices and
// links: a changed MTBF on a used class and a changed throughput on a used
// association both flip validation stale with property-changed issues, while
// drift on an unused class keeps it fresh.
func TestValidatePropertyChanged(t *testing.T) {
	res := usiResult(t)

	mutate := func(f func(m *uml.Model)) *Validation {
		m, err := casestudy.BuildModel()
		if err != nil {
			t.Fatal(err)
		}
		f(m)
		cur, ok := m.Diagram(casestudy.DiagramName)
		if !ok {
			t.Fatal("no infrastructure diagram")
		}
		v, err := Validate(context.Background(), res, cur)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}

	// Drift on the client class: t1 instantiates Comp.
	v := mutate(func(m *uml.Model) {
		c, ok := m.Class("Comp")
		if !ok {
			t.Fatal("no Comp class")
		}
		if err := c.SetProperty("MTBF", uml.RealValue(1)); err != nil {
			t.Fatal(err)
		}
	})
	if v.Fresh || !hasIssue(v, IssuePropertyChanged, "t1") {
		t.Fatalf("device MTBF drift not detected: %+v", v)
	}

	// Drift on a used association's throughput.
	usedEdge := res.Services[0].Paths[0].Edges[0]
	assocName := res.Source.Links()[usedEdge].Association().Name()
	v = mutate(func(m *uml.Model) {
		as, ok := m.Association(assocName)
		if !ok {
			t.Fatalf("no association %q", assocName)
		}
		app, ok := as.Application("Communication")
		if !ok {
			t.Fatalf("association %q has no Communication stereotype", assocName)
		}
		if err := app.Set("throughput", uml.RealValue(1)); err != nil {
			t.Fatal(err)
		}
	})
	if v.Fresh {
		t.Fatalf("link throughput drift not detected: %+v", v)
	}
	found := false
	for _, is := range v.Issues {
		if is.Kind == IssuePropertyChanged {
			found = true
		}
	}
	if !found {
		t.Fatalf("no property-changed issue for link drift: %+v", v.Issues)
	}

	// Growing the topology is an unrelated mutation: a new client and its
	// uplink do not touch any element the cached generation used.
	v = mutate(func(m *uml.Model) {
		d, ok := m.Diagram(casestudy.DiagramName)
		if !ok {
			t.Fatal("no infrastructure diagram")
		}
		comp, _ := m.Class("Comp")
		if _, err := d.AddInstance("t99", comp); err != nil {
			t.Fatal(err)
		}
		as, ok := m.Association("Comp-HP2650")
		if !ok {
			t.Fatal("no Comp-HP2650 association")
		}
		if _, err := d.ConnectByName("t99", "e1", as); err != nil {
			t.Fatal(err)
		}
	})
	if !v.Fresh {
		t.Fatalf("adding a new client flipped validation stale: %+v", v.Issues)
	}
}
