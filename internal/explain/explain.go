// Package explain is the provenance and attribution layer over the UPSIM
// pipeline: it answers *why* a generated user-perceived model has the
// numbers it has. The paper's whole premise is that a UPSIM names the
// infrastructure one (requester, provider) pair actually depends on; this
// package turns that into three operational surfaces:
//
//   - Path provenance & statistics: per-path records (hop sequence, length,
//     direct vs. transitive type, per-class component breakdown, edge cost
//     from the Communication stereotype's throughput/channel attributes),
//     per-service aggregates (count, min/max/mean length, depth histogram)
//     and a discovery tree rooted at the requester (the kubecore
//     PathTracker shape).
//   - Availability attribution: minimal cut sets ranked by their
//     contribution to the service unavailability, components ranked by the
//     Birnbaum and Fussell–Vesely importance measures, joined with the
//     class-level sensitivity report — "why is this service's availability
//     low" in one call.
//   - UPSIM validation: check a cached generation against the current
//     topology (every path node and link still present, stereotype values
//     unchanged) and report stale entries with the reason (validate.go).
//     The what-if engine (internal/whatif) uses these fingerprints as its
//     freshness gate: a stale verdict evicts the generation's cached
//     response family and fails POST /api/v1/whatif with a structured 409.
//
// Explain runs on either dependability kernel (compiled bitset or legacy
// map); the reports are identical either way, pinned by the kernel-parity
// test. Everything is exported through the upsim facade (upsim.Explain) and
// served as POST /api/v1/explain and the `upsim explain` subcommand.
package explain

import (
	"context"
	"fmt"
	"sort"
	"time"

	"upsim/internal/core"
	"upsim/internal/depend"
	"upsim/internal/obs"
	"upsim/internal/pathdisc"
	"upsim/internal/uml"
)

// Explain metrics: report assembly latency by mode and kernel, the path-type
// split, and the hop-depth distribution of every path the provenance layer
// classifies. Exposed on GET /metrics next to the pathdisc and depend
// families.
var (
	mExplainSeconds = obs.NewHistogram("upsim_explain_seconds",
		"Wall time of explain report assembly.",
		obs.LatencyBuckets, "mode", "kernel")
	mExplainPaths = obs.NewCounter("upsim_explain_paths_total",
		"Paths classified by the provenance layer, by path type.", "type")
	mExplainDepth = obs.NewHistogram("upsim_explain_path_depth",
		"Hop count of paths classified by the provenance layer.",
		obs.ExpBuckets(1, 2, 10))
)

// Path types: a direct path is a single hop from requester to provider; a
// transitive path crosses intermediate infrastructure.
const (
	PathDirect     = "direct"
	PathTransitive = "transitive"
)

// Options tunes an Explain run.
type Options struct {
	// Legacy routes the attribution through the map-based dependability
	// kernel instead of the compiled bitset kernel. The report is identical
	// either way (kernel-parity test); the flag is the ablation escape
	// hatch, mirroring core.Options.LegacyKernel.
	Legacy bool
	// Model selects the component availability model (default ModelExact).
	Model depend.AvailabilityModel
	// TopN truncates the ranked cut-set and component lists to the N
	// largest contributors (0 keeps everything). The totals before
	// truncation stay in the report.
	TopN int
	// CutLimit bounds the minimal-cut-set expansion
	// (0 = depend.DefaultSetLimit). Exhaustion surfaces as a
	// depend.BudgetError naming the offending atomic service.
	CutLimit int
	// SkipAttribution omits the availability attribution (cut sets,
	// importance measures, class sensitivities) and returns path provenance
	// only — the cheap mode behind the pathStats response fields.
	SkipAttribution bool
}

// PathRecord is the provenance of one discovered path.
type PathRecord struct {
	// Index is the path's position in the atomic service's enumeration
	// order (the deterministic DFS order both kernels share).
	Index int `json:"index"`
	// Nodes is the hop sequence from requester to provider.
	Nodes []string `json:"nodes"`
	// Length is the hop (edge) count.
	Length int `json:"length"`
	// Type is PathDirect for single-hop paths, PathTransitive otherwise.
	Type string `json:"type"`
	// Cost is the sum of per-edge costs, where an edge with a positive
	// throughput attribute costs 1/throughput and any other edge costs 1 —
	// a cheap latency proxy derived from the Communication stereotype.
	Cost float64 `json:"cost"`
	// BottleneckMbps is the smallest throughput attribute along the path
	// (0 when no traversed link carries one).
	BottleneckMbps float64 `json:"bottleneckMbps"`
	// Channels lists the distinct channel attribute values along the path,
	// in first-traversed order.
	Channels []string `json:"channels,omitempty"`
	// Classes counts the path's nodes by class name.
	Classes map[string]int `json:"classes"`
	// Links counts the path's links by association name.
	Links map[string]int `json:"links,omitempty"`
}

// PathStatistics aggregates path-length statistics over one path set.
type PathStatistics struct {
	Count      int     `json:"count"`
	MinLength  int     `json:"minLength"`
	MaxLength  int     `json:"maxLength"`
	MeanLength float64 `json:"meanLength"`
	// Direct and Transitive split Count by path type.
	Direct     int `json:"direct"`
	Transitive int `json:"transitive"`
	// DepthHistogram counts paths by hop count.
	DepthHistogram map[int]int `json:"depthHistogram,omitempty"`
}

// Statistics computes the aggregate path statistics of one path set.
func Statistics(paths []pathdisc.Path) PathStatistics {
	st := PathStatistics{Count: len(paths)}
	if len(paths) == 0 {
		return st
	}
	st.DepthHistogram = make(map[int]int)
	total := 0
	for i, p := range paths {
		n := p.Len()
		if i == 0 || n < st.MinLength {
			st.MinLength = n
		}
		if n > st.MaxLength {
			st.MaxLength = n
		}
		total += n
		st.DepthHistogram[n]++
		if n <= 1 {
			st.Direct++
		} else {
			st.Transitive++
		}
	}
	st.MeanLength = float64(total) / float64(len(paths))
	return st
}

// ServiceProvenance is the path provenance of one atomic service.
type ServiceProvenance struct {
	AtomicService string         `json:"atomicService"`
	Requester     string         `json:"requester"`
	Provider      string         `json:"provider"`
	Paths         []PathRecord   `json:"paths"`
	Stats         PathStatistics `json:"stats"`
	// Tree is the discovery tree rooted at the requester: the prefix-merged
	// view of every discovered path.
	Tree *TreeNode `json:"tree,omitempty"`
	// Truncated mirrors the discovery Stats: the enumeration stopped at
	// MaxPaths, so the provenance below is a prefix of the full path set.
	Truncated bool `json:"truncated,omitempty"`
}

// CutSetRecord is one minimal cut set ranked by its contribution to the
// service unavailability.
type CutSetRecord struct {
	// Components is the cut set in canonical (sorted) component order.
	Components []string `json:"components"`
	// Unavailability is the probability that every component of the cut is
	// down at once, Π(1−A_c) — the rare-event weight of this cut.
	Unavailability float64 `json:"unavailability"`
	// Share normalises Unavailability over all minimal cut sets; the
	// shares sum to 1 and order the "which failure combination dominates"
	// answer.
	Share float64 `json:"share"`
}

// ComponentImportance ranks one component by the classical importance
// measures.
type ComponentImportance struct {
	// Component is the structure component id (instance name, or the
	// synthetic "a--b#edge" id for links).
	Component string `json:"component"`
	// Class is the component's class (devices) or association (links) name.
	Class string `json:"class"`
	// Availability is the component's steady-state availability.
	Availability float64 `json:"availability"`
	// Birnbaum is ∂A_service/∂A_component.
	Birnbaum float64 `json:"birnbaum"`
	// FussellVesely is the fraction of the service unavailability
	// attributable to failures involving the component.
	FussellVesely float64 `json:"fussellVesely"`
}

// ClassRecord is the class-level sensitivity record (depend.Sensitivity)
// in response form.
type ClassRecord struct {
	Class       string  `json:"class"`
	Instances   int     `json:"instances"`
	DAvailDMTBF float64 `json:"dAvailDMtbf"`
	DAvailDMTTR float64 `json:"dAvailDMttr"`
}

// Attribution is the availability attribution of one UPSIM.
type Attribution struct {
	// Availability is the exact user-perceived service availability.
	Availability float64 `json:"availability"`
	// Unavailability is 1 − Availability.
	Unavailability float64 `json:"unavailability"`
	// CutSets ranks the minimal cut sets by Share (TopN applies);
	// CutSetsTotal counts them before truncation.
	CutSets      []CutSetRecord `json:"cutSets"`
	CutSetsTotal int            `json:"cutSetsTotal"`
	// Components ranks every structure component by Birnbaum importance
	// (TopN applies); ComponentsTotal counts them before truncation.
	Components      []ComponentImportance `json:"components"`
	ComponentsTotal int                   `json:"componentsTotal"`
	// Classes is the class-level sensitivity ranking (all classes).
	Classes []ClassRecord `json:"classes"`
}

// Report is the full explain output for one generation result.
type Report struct {
	// Name is the UPSIM name.
	Name string `json:"name"`
	// Kernel records which dependability kernel produced the attribution
	// ("compiled" or "legacy"); the numbers are identical either way.
	Kernel string `json:"kernel"`
	// Model is the component availability model ("exact" or "formula1").
	Model string `json:"model"`
	// Services holds the per-atomic-service path provenance in execution
	// order.
	Services []ServiceProvenance `json:"services"`
	// Stats aggregates the path statistics over every atomic service.
	Stats PathStatistics `json:"stats"`
	// Truncated is the OR over the per-service discovery truncation flags.
	Truncated bool `json:"truncated,omitempty"`
	// Attribution is the availability attribution (nil with
	// Options.SkipAttribution).
	Attribution *Attribution `json:"attribution,omitempty"`
}

// Explain builds the provenance and attribution report for a generation
// result. When ctx carries an obs span the assembly is recorded as an
// "explain.report" span with "explain.paths" and "explain.attribution"
// children.
func Explain(ctx context.Context, res *core.Result, opts Options) (*Report, error) {
	if res == nil || res.Source == nil {
		return nil, fmt.Errorf("explain: nil generation result")
	}
	kernel := "compiled"
	if opts.Legacy {
		kernel = "legacy"
	}
	mode := "explain"
	if opts.SkipAttribution {
		mode = "paths"
	}
	start := time.Now()
	ctx, span := obs.StartSpan(ctx, "explain.report")
	defer span.End()
	span.SetAttr("kernel", kernel)
	span.SetAttr("mode", mode)

	_, psp := obs.StartSpan(ctx, "explain.paths")
	rep := &Report{Name: res.Name, Kernel: kernel, Model: opts.Model.String()}
	allPaths := make([]pathdisc.Path, 0, res.TotalPaths)
	for _, sp := range res.Services {
		svc, err := serviceProvenance(res, sp)
		if err != nil {
			psp.End()
			return nil, err
		}
		rep.Services = append(rep.Services, svc)
		rep.Truncated = rep.Truncated || svc.Truncated
		allPaths = append(allPaths, sp.Paths...)
	}
	rep.Stats = Statistics(allPaths)
	observePaths(rep.Stats)
	psp.SetAttr("paths", rep.Stats.Count)
	psp.SetAttr("services", len(rep.Services))
	psp.End()

	if !opts.SkipAttribution {
		_, asp := obs.StartSpan(ctx, "explain.attribution")
		attr, err := attribute(res, opts)
		asp.End()
		if err != nil {
			return nil, err
		}
		rep.Attribution = attr
		span.SetAttr("cut_sets", attr.CutSetsTotal)
		span.SetAttr("components", attr.ComponentsTotal)
	}
	mExplainSeconds.With(mode, kernel).Observe(time.Since(start).Seconds())
	return rep, nil
}

// observePaths feeds the aggregate statistics into the process metrics.
func observePaths(st PathStatistics) {
	mExplainPaths.With(PathDirect).Add(uint64(st.Direct))
	mExplainPaths.With(PathTransitive).Add(uint64(st.Transitive))
	for depth, n := range st.DepthHistogram {
		h := mExplainDepth.With()
		for i := 0; i < n; i++ {
			h.Observe(float64(depth))
		}
	}
}

// serviceProvenance builds the per-path records, aggregates and discovery
// tree of one atomic service.
func serviceProvenance(res *core.Result, sp core.ServicePaths) (ServiceProvenance, error) {
	out := ServiceProvenance{
		AtomicService: sp.AtomicService,
		Requester:     sp.Requester,
		Provider:      sp.Provider,
		Stats:         Statistics(sp.Paths),
		Truncated:     sp.Stats.Truncated,
	}
	links := res.Source.Links()
	for i, p := range sp.Paths {
		rec := PathRecord{
			Index:   i,
			Nodes:   append([]string(nil), p.Nodes...),
			Length:  p.Len(),
			Type:    PathTransitive,
			Classes: make(map[string]int, len(p.Nodes)),
		}
		if rec.Length <= 1 {
			rec.Type = PathDirect
		}
		for _, n := range p.Nodes {
			node, ok := res.Graph.Node(n)
			if !ok {
				return out, fmt.Errorf("explain: path node %q not in UPSIM graph", n)
			}
			rec.Classes[node.Class]++
		}
		for _, id := range p.Edges {
			if id < 0 || id >= len(links) {
				return out, fmt.Errorf("explain: path references unknown edge %d", id)
			}
			if rec.Links == nil {
				rec.Links = make(map[string]int)
			}
			rec.Links[links[id].Association().Name()]++
		}
		rec.Cost, rec.BottleneckMbps, rec.Channels = PathMetrics(links, p)
		out.Paths = append(out.Paths, rec)
	}
	tree, err := BuildTree(res, sp)
	if err != nil {
		return out, err
	}
	out.Tree = tree
	return out, nil
}

// PathMetrics computes the stereotype-derived metrics of one discovered path
// against the diagram's link list (topology edge ID i is links[i]):
//
//   - cost: the sum of per-edge costs, where an edge with a positive
//     `throughput` attribute costs 1/throughput and any other edge costs 1
//     — the same convention the ranked-discovery kernel resolves at compile
//     time (pathdisc.CostThroughput). The sum is folded right-to-left,
//     matching pathdisc.Compiled.PathCost term-for-term, so the number here
//     is bit-identical to the kernel's ranking cost.
//   - bottleneckMbps: the minimum positive throughput along the path (0 when
//     no edge declares one).
//   - channels: the distinct non-empty `channel` attribute values in
//     traversal order.
//
// Edge IDs outside the link list (possible for what-if patched-in edges that
// have no diagram counterpart) fall back to hop cost 1, exactly like the
// kernel's fallback.
func PathMetrics(links []*uml.Link, p pathdisc.Path) (cost, bottleneckMbps float64, channels []string) {
	for i := len(p.Edges) - 1; i >= 0; i-- {
		id := p.Edges[i]
		if id < 0 || id >= len(links) {
			cost = 1 + cost
			continue
		}
		if tp, ok := links[id].Property("throughput"); ok && tp.AsReal() > 0 {
			cost = 1/tp.AsReal() + cost
			if bottleneckMbps == 0 || tp.AsReal() < bottleneckMbps {
				bottleneckMbps = tp.AsReal()
			}
		} else {
			cost = 1 + cost
		}
	}
	var seenChannel map[string]bool
	for _, id := range p.Edges {
		if id < 0 || id >= len(links) {
			continue
		}
		if ch, ok := links[id].Property("channel"); ok && ch.AsString() != "" && !seenChannel[ch.AsString()] {
			if seenChannel == nil {
				seenChannel = make(map[string]bool)
			}
			seenChannel[ch.AsString()] = true
			channels = append(channels, ch.AsString())
		}
	}
	return cost, bottleneckMbps, channels
}

// attribute runs the availability attribution on the selected kernel.
func attribute(res *core.Result, opts Options) (*Attribution, error) {
	st, cs, avail, err := depend.FromResult(res, opts.Model)
	if err != nil {
		return nil, err
	}
	// Kernel dispatch: the two implementations are pinned bit-identical, so
	// the report does not depend on the choice (kernel-parity test).
	exact := func() (float64, error) {
		if opts.Legacy {
			return st.Exact(avail)
		}
		return cs.Exact(avail)
	}
	cutSets := func() ([]depend.PathSet, error) {
		if opts.Legacy {
			return st.MinimalCutSets(opts.CutLimit)
		}
		return cs.MinimalCutSets(opts.CutLimit)
	}
	birnbaum := func(c string) (float64, error) {
		if opts.Legacy {
			return st.Birnbaum(avail, c)
		}
		return cs.Birnbaum(avail, c)
	}
	fussellVesely := func(c string) (float64, error) {
		if opts.Legacy {
			return st.FussellVesely(avail, c)
		}
		return cs.FussellVesely(avail, c)
	}

	base, err := exact()
	if err != nil {
		return nil, err
	}
	attr := &Attribution{Availability: base, Unavailability: 1 - base}

	cuts, err := cutSets()
	if err != nil {
		return nil, err
	}
	attr.CutSetsTotal = len(cuts)
	recs := make([]CutSetRecord, 0, len(cuts))
	sum := 0.0
	for _, k := range cuts {
		q := 1.0
		for _, c := range k {
			q *= 1 - avail[c]
		}
		sum += q
		recs = append(recs, CutSetRecord{Components: append([]string(nil), k...), Unavailability: q})
	}
	if sum > 0 {
		for i := range recs {
			recs[i].Share = recs[i].Unavailability / sum
		}
	}
	// Cuts arrive in canonical (cardinality, then lexicographic) order; a
	// stable sort on the contribution keeps that order among ties.
	sort.SliceStable(recs, func(i, j int) bool {
		return recs[i].Unavailability > recs[j].Unavailability
	})
	attr.CutSets = truncate(recs, opts.TopN)

	links := res.Source.Links()
	comps := st.Components()
	attr.ComponentsTotal = len(comps)
	imps := make([]ComponentImportance, 0, len(comps))
	for _, c := range comps {
		b, err := birnbaum(c)
		if err != nil {
			return nil, err
		}
		fv, err := fussellVesely(c)
		if err != nil {
			return nil, err
		}
		class := ""
		if edgeID, isLink := depend.ParseLinkComponentID(c); isLink {
			if edgeID < 0 || edgeID >= len(links) {
				return nil, fmt.Errorf("explain: link component %q references unknown edge", c)
			}
			class = links[edgeID].Association().Name()
		} else if inst, ok := res.Source.Instance(c); ok {
			class = inst.Classifier().Name()
		}
		imps = append(imps, ComponentImportance{
			Component:     c,
			Class:         class,
			Availability:  avail[c],
			Birnbaum:      b,
			FussellVesely: fv,
		})
	}
	// Components arrive sorted by name; a stable sort on Birnbaum resolves
	// ties to the name order.
	sort.SliceStable(imps, func(i, j int) bool {
		return imps[i].Birnbaum > imps[j].Birnbaum
	})
	attr.Components = truncate(imps, opts.TopN)

	sens, err := depend.Sensitivity(res)
	if err != nil {
		return nil, err
	}
	for _, c := range sens.Classes {
		attr.Classes = append(attr.Classes, ClassRecord{
			Class:       c.Class,
			Instances:   c.Instances,
			DAvailDMTBF: c.DAvailDMTBF,
			DAvailDMTTR: c.DAvailDMTTR,
		})
	}
	return attr, nil
}

// truncate keeps the first n elements (n <= 0 keeps all).
func truncate[T any](s []T, n int) []T {
	if n > 0 && len(s) > n {
		return s[:n:n]
	}
	return s
}
