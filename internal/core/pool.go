package core

// GeneratorPool recycles Generators across requests of the same model. The
// stateless HTTP API ships the model XML in every request, so before this
// pool each warmish request paid the full cold build: XML decode, Step 5
// import (one VPM entity per UML element), topology extraction and CSR
// compilation. The pool keys built generators by a digest of the raw model
// XML and diagram name; a hit skips all of that and reuses the imported
// model space, whose derived artifacts were unhooked at Release time
// (Generator.ResetDerived). Misses build cold and still benefit from the
// vpm space pool's recycled arenas.
//
// Concurrency: concurrent Acquires of the same model get distinct Generator
// instances (each generator serialises its own pipeline internally), so
// request parallelism is preserved; identical generation requests still
// collapse through the shared result cache's singleflight.

import (
	"container/list"
	"context"
	"crypto/sha256"
	"strings"
	"sync"

	"upsim/internal/cache"
	"upsim/internal/obs"
	"upsim/internal/uml"
)

// Pool metrics, exposed on /metrics next to the result-cache counters.
var (
	mPoolHits = obs.NewCounter("upsim_genpool_hits_total",
		"Generator pool acquisitions served by an idle warm generator.")
	mPoolMisses = obs.NewCounter("upsim_genpool_misses_total",
		"Generator pool acquisitions that built a generator cold.")
	mPoolEvictions = obs.NewCounter("upsim_genpool_evictions_total",
		"Warm generators discarded by per-model or LRU bounds.")
)

// Pool sizing defaults: a handful of idle generators per model covers batch
// fan-out, and the model LRU bounds total retained spaces.
const (
	DefaultPoolIdlePerModel = 4
	DefaultPoolModels       = 16
)

// GeneratorPool is safe for concurrent use.
type GeneratorPool struct {
	cache     *cache.Cache
	maxIdle   int
	maxModels int

	mu    sync.Mutex
	idle  map[string][]*Generator
	order *list.List               // model digests, most recently used in front
	elems map[string]*list.Element // digest -> order element
}

// NewGeneratorPool creates a pool whose generators share the given result
// cache. maxIdle bounds idle generators retained per model, maxModels the
// number of distinct models tracked (least recently used models are
// discarded whole); non-positive values take the defaults.
func NewGeneratorPool(c *cache.Cache, maxIdle, maxModels int) *GeneratorPool {
	if maxIdle <= 0 {
		maxIdle = DefaultPoolIdlePerModel
	}
	if maxModels <= 0 {
		maxModels = DefaultPoolModels
	}
	return &GeneratorPool{
		cache:     c,
		maxIdle:   maxIdle,
		maxModels: maxModels,
		idle:      make(map[string][]*Generator),
		order:     list.New(),
		elems:     make(map[string]*list.Element),
	}
}

// poolKey digests the raw model XML and diagram name. Keying on the raw
// bytes (not the canonical re-encoding) keeps the hit path free of any model
// traversal; differently-formatted XML of the same model simply builds its
// own warm line.
func poolKey(modelXML, diagram string) string {
	h := sha256.New()
	h.Write([]byte(modelXML))
	h.Write([]byte{0})
	h.Write([]byte(diagram))
	var out [sha256.Size]byte
	return string(h.Sum(out[:0]))
}

// Acquire returns a generator for the model/diagram, reusing an idle warm
// one when available and building cold otherwise. The caller owns the
// generator until Release.
func (p *GeneratorPool) Acquire(ctx context.Context, modelXML, diagram string) (*Generator, error) {
	key := poolKey(modelXML, diagram)
	p.mu.Lock()
	if gens := p.idle[key]; len(gens) > 0 {
		g := gens[len(gens)-1]
		gens[len(gens)-1] = nil
		p.idle[key] = gens[:len(gens)-1]
		p.touchLocked(key)
		p.mu.Unlock()
		mPoolHits.With().Inc()
		return g, nil
	}
	p.mu.Unlock()
	mPoolMisses.With().Inc()
	m, err := uml.Decode(strings.NewReader(modelXML))
	if err != nil {
		return nil, err
	}
	g, err := NewGeneratorContext(ctx, m, diagram)
	if err != nil {
		return nil, err
	}
	g.WithCache(p.cache)
	g.poolKey = key
	return g, nil
}

// Release resets the generator's derived state and parks it for reuse; when
// the per-model idle bound is reached the generator is closed instead (its
// model space returns to the vpm pool).
func (p *GeneratorPool) Release(g *Generator) {
	if g == nil {
		return
	}
	g.ResetDerived()
	key := g.poolKey
	if key == "" {
		g.Close()
		return
	}
	p.mu.Lock()
	if len(p.idle[key]) < p.maxIdle {
		p.idle[key] = append(p.idle[key], g)
		p.touchLocked(key)
		evicted := p.evictLocked()
		p.mu.Unlock()
		for _, e := range evicted {
			e.Close()
		}
		return
	}
	p.mu.Unlock()
	mPoolEvictions.With().Inc()
	g.Close()
}

// touchLocked marks the model as most recently used, creating its LRU entry
// if absent. Callers hold p.mu.
func (p *GeneratorPool) touchLocked(key string) {
	if el, ok := p.elems[key]; ok {
		p.order.MoveToFront(el)
		return
	}
	p.elems[key] = p.order.PushFront(key)
}

// evictLocked trims least-recently-used models beyond the bound, returning
// their idle generators for the caller to close outside the lock.
func (p *GeneratorPool) evictLocked() []*Generator {
	var out []*Generator
	for p.order.Len() > p.maxModels {
		el := p.order.Back()
		key := el.Value.(string)
		p.order.Remove(el)
		delete(p.elems, key)
		out = append(out, p.idle[key]...)
		delete(p.idle, key)
	}
	for range out {
		mPoolEvictions.With().Inc()
	}
	return out
}

// IdleLen reports the idle generators currently parked for the model, for
// tests and stats.
func (p *GeneratorPool) IdleLen(modelXML, diagram string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.idle[poolKey(modelXML, diagram)])
}
