package core

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"upsim/internal/cache"
	"upsim/internal/obs"
	"upsim/internal/pathdisc"
)

func TestWithCacheHitSkipsPipeline(t *testing.T) {
	f := buildFixture(t)
	g, err := NewGenerator(f.model, "infrastructure")
	if err != nil {
		t.Fatal(err)
	}
	c := cache.New(16)
	if g.WithCache(c) != g {
		t.Fatal("WithCache must return the receiver for chaining")
	}
	if g.Cache() != c {
		t.Fatal("Cache() does not return the attached cache")
	}

	cold, err := g.Generate(f.svc, f.mp, "cached", Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The second identical request must come from the cache: same pointer,
	// hit counted, and the trace carries a "cache" span but no step7 span
	// (discovery did not run again).
	ctx, root := obs.StartSpan(context.Background(), "warm")
	warm, err := g.GenerateContext(ctx, f.svc, f.mp, "cached", Options{})
	root.End()
	if err != nil {
		t.Fatal(err)
	}
	if warm != cold {
		t.Error("warm request did not return the shared cached Result")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Entries != 1 {
		t.Errorf("stats = %s; want 1 hit, 1 miss, 1 entry", s)
	}
	names := map[string]bool{}
	root.Walk(func(sp *obs.Span, _ int) { names[sp.Name()] = true })
	if !names["cache"] {
		t.Errorf("warm trace lacks the cache span: %s", root.Render())
	}
	if names["step7.pathdisc"] {
		t.Errorf("warm trace re-ran discovery: %s", root.Render())
	}

	// A different UPSIM name is a different content address.
	other, err := g.Generate(f.svc, f.mp, "cached-2", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if other == cold {
		t.Error("request with different name shared the cached Result")
	}
	if s := c.Stats(); s.Misses != 2 {
		t.Errorf("misses = %d, want 2", s.Misses)
	}
}

func TestCacheKeyDerivation(t *testing.T) {
	f := buildFixture(t)
	g, err := NewGenerator(f.model, "infrastructure")
	if err != nil {
		t.Fatal(err)
	}
	base, err := g.CacheKey(f.svc, f.mp, "u", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(base) != 64 {
		t.Fatalf("key %q is not a sha256 hex digest", base)
	}
	again, err := g.CacheKey(f.svc, f.mp, "u", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if base != again {
		t.Error("identical request derived different keys")
	}
	// Pool sizes tune parallelism only — they must not change the address.
	pooled, err := g.CacheKey(f.svc, f.mp, "u", Options{DiscoveryWorkers: 7, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if pooled != base {
		t.Error("worker-pool sizing changed the cache key")
	}
	// Everything that changes the produced Result must change the key.
	variants := map[string]Options{
		"algorithm": {Algorithm: AlgoShortest},
		"merge":     {Merge: MergeTraversed},
		"depth":     {Paths: pathdisc.Options{MaxDepth: 3}},
		"disc":      {AllowDisconnected: true},
		"lint":      {Lint: LintWarn},
	}
	seen := map[string]string{base: "base"}
	for label, opts := range variants {
		k, err := g.CacheKey(f.svc, f.mp, "u", opts)
		if err != nil {
			t.Fatal(err)
		}
		if prev, dup := seen[k]; dup {
			t.Errorf("options variant %q collides with %q", label, prev)
		}
		seen[k] = label
	}
	if k, _ := g.CacheKey(f.svc, f.mp, "other-name", Options{}); k == base {
		t.Error("UPSIM name not part of the key")
	}
	mp2 := f.mp.Clone()
	if err := mp2.Remap("fetch", "iso", "srv"); err != nil {
		t.Fatal(err)
	}
	if k, _ := g.CacheKey(f.svc, mp2, "u", Options{}); k == base {
		t.Error("mapping change not part of the key")
	}
	if _, err := g.CacheKey(nil, f.mp, "u", Options{}); err == nil {
		t.Error("nil service must fail")
	}
	if _, err := g.CacheKey(f.svc, nil, "u", Options{}); err == nil {
		t.Error("nil mapping must fail")
	}
}

// TestGeneratorSingleflightStress hammers one cached Generator with 32
// goroutines issuing the identical request and asserts exactly-once compute
// through the singleflight counters: 1 miss, 31 hits-or-shares, one shared
// Result pointer.
func TestGeneratorSingleflightStress(t *testing.T) {
	f := buildFixture(t)
	g, err := NewGenerator(f.model, "infrastructure")
	if err != nil {
		t.Fatal(err)
	}
	c := cache.New(16)
	g.WithCache(c)

	const goroutines = 32
	var (
		wg      sync.WaitGroup
		results [goroutines]*Result
		errs    [goroutines]error
	)
	start := make(chan struct{})
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			results[i], errs[i] = g.Generate(f.svc, f.mp, "stress", Options{})
		}(i)
	}
	close(start)
	wg.Wait()

	for i := 0; i < goroutines; i++ {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
		if results[i] != results[0] {
			t.Fatalf("goroutine %d received a different Result instance", i)
		}
	}
	s := c.Stats()
	if s.Misses != 1 {
		t.Errorf("misses = %d, want exactly-once compute", s.Misses)
	}
	if s.Hits+s.Shared != goroutines-1 {
		t.Errorf("hits+shared = %d+%d, want %d", s.Hits, s.Shared, goroutines-1)
	}
	// The pipeline really ran once: a second mapping import would have
	// bumped the sequence number used for the import name.
	if g.mappingSeq != 1 {
		t.Errorf("mappingSeq = %d, want 1 (pipeline must compute exactly once)", g.mappingSeq)
	}
}

// TestConcurrentDistinctRequests exercises the generator mutex: distinct
// cached requests from many goroutines serialise on the pipeline without
// racing on the shared model and space.
func TestConcurrentDistinctRequests(t *testing.T) {
	f := buildFixture(t)
	g, err := NewGenerator(f.model, "infrastructure")
	if err != nil {
		t.Fatal(err)
	}
	g.WithCache(cache.New(64))
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := g.Generate(f.svc, f.mp, fmt.Sprintf("distinct-%d", i), Options{})
			if err != nil {
				t.Errorf("generate %d: %v", i, err)
				return
			}
			if res.Name != fmt.Sprintf("distinct-%d", i) {
				t.Errorf("generate %d produced %q", i, res.Name)
			}
		}(i)
	}
	wg.Wait()
	if s := g.Cache().Stats(); s.Misses != 8 {
		t.Errorf("misses = %d, want 8 distinct computations", s.Misses)
	}
}

// TestDiscoveryWorkersDeterministic asserts the concurrency contract of the
// Step 7 loop: whatever the pool size, per-service path sets arrive in
// execution order with identical contents.
func TestDiscoveryWorkersDeterministic(t *testing.T) {
	f := buildFixture(t)
	g, err := NewGenerator(f.model, "infrastructure")
	if err != nil {
		t.Fatal(err)
	}
	seq, err := g.Generate(f.svc, f.mp, "seq", Options{DiscoveryWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, workers := range []int{2, 4, 16} {
		conc, err := g.Generate(f.svc, f.mp, fmt.Sprintf("conc-%d", i), Options{DiscoveryWorkers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if len(conc.Services) != len(seq.Services) {
			t.Fatalf("workers=%d: services = %d, want %d", workers, len(conc.Services), len(seq.Services))
		}
		for si := range seq.Services {
			a, b := seq.Services[si], conc.Services[si]
			if a.AtomicService != b.AtomicService {
				t.Errorf("workers=%d: service[%d] = %s, want %s (order lost)", workers, si, b.AtomicService, a.AtomicService)
			}
			if len(a.Paths) != len(b.Paths) {
				t.Fatalf("workers=%d: %s has %d paths, want %d", workers, a.AtomicService, len(b.Paths), len(a.Paths))
			}
			for pi := range a.Paths {
				if a.Paths[pi].String() != b.Paths[pi].String() {
					t.Errorf("workers=%d: %s path[%d] = %s, want %s", workers, a.AtomicService, pi, b.Paths[pi], a.Paths[pi])
				}
			}
		}
		if got, want := conc.NodeNames(), seq.NodeNames(); fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("workers=%d: nodes = %v, want %v", workers, got, want)
		}
	}
}

func TestConcurrentDiscoveryErrorDeterministic(t *testing.T) {
	f := buildFixture(t)
	// Remap the *first* atomic service onto the isolated client so that the
	// sequential loop's error (fetch has no path) is the one every pool
	// size must report, even though deliver errors too.
	mp := f.mp.Clone()
	if err := mp.Remap("fetch", "iso", "srv"); err != nil {
		t.Fatal(err)
	}
	if err := mp.Remap("deliver", "srv", "iso"); err != nil {
		t.Fatal(err)
	}
	g, err := NewGenerator(f.model, "infrastructure")
	if err != nil {
		t.Fatal(err)
	}
	for i, workers := range []int{1, 2, 8} {
		_, err := g.Generate(f.svc, mp, fmt.Sprintf("fail-%d", i), Options{DiscoveryWorkers: workers})
		if err == nil {
			t.Fatalf("workers=%d: disconnected pair did not fail", workers)
		}
		if !strings.Contains(err.Error(), `atomic service "fetch"`) {
			t.Errorf("workers=%d: error = %v, want the first pair's (fetch) failure", workers, err)
		}
	}
}

func TestGenerateContextCancelled(t *testing.T) {
	f := buildFixture(t)
	g, err := NewGenerator(f.model, "infrastructure")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := g.GenerateContext(ctx, f.svc, f.mp, "cancelled", Options{}); err == nil {
		t.Error("generation under a cancelled context must fail")
	}
}

func TestCacheErrorNotCached(t *testing.T) {
	f := buildFixture(t)
	mp := f.mp.Clone()
	if err := mp.Remap("fetch", "iso", "srv"); err != nil {
		t.Fatal(err)
	}
	g, err := NewGenerator(f.model, "infrastructure")
	if err != nil {
		t.Fatal(err)
	}
	c := cache.New(16)
	g.WithCache(c)
	for i := 0; i < 2; i++ {
		if _, err := g.Generate(f.svc, mp, "broken", Options{}); err == nil {
			t.Fatalf("attempt %d: disconnected pair did not fail", i)
		}
	}
	s := c.Stats()
	if s.Misses != 2 || s.Entries != 0 {
		t.Errorf("stats = %s; errors must not be cached (want 2 misses, 0 entries)", s)
	}
	// The same generator still serves good requests afterwards.
	if _, err := g.Generate(f.svc, f.mp, "good", Options{}); err != nil {
		t.Fatal(err)
	}
}
