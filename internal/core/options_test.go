package core

import (
	"runtime"
	"testing"

	"upsim/internal/pathdisc"
)

// TestOptionsZeroValueDefaults pins the documented zero-value semantics of
// Options: the zero value selects the paper's pipeline — recursive DFS,
// induced-subgraph merge, unbounded discovery, automatic pool sizing,
// linting off, disconnected pairs rejected. The Options doc comment refers
// to this test by name; keep the two in sync.
func TestOptionsZeroValueDefaults(t *testing.T) {
	var o Options
	if o.Algorithm != AlgoRecursive {
		t.Errorf("Algorithm zero value = %v, want AlgoRecursive", o.Algorithm)
	}
	if o.Algorithm.String() != "recursive-dfs" {
		t.Errorf("default algorithm renders %q", o.Algorithm.String())
	}
	if o.Merge != MergeInduced {
		t.Errorf("Merge zero value = %v, want MergeInduced", o.Merge)
	}
	if o.Lint != LintOff {
		t.Errorf("Lint zero value = %v, want LintOff", o.Lint)
	}
	if o.Paths != (pathdisc.Options{}) {
		t.Errorf("Paths zero value = %+v, want unbounded discovery", o.Paths)
	}
	if o.Paths.MaxDepth != 0 || o.Paths.MaxPaths != 0 || o.Paths.CollapseParallel {
		t.Errorf("Paths bounds = %+v, want 0/0/false (unbounded, parallel links kept)", o.Paths)
	}
	if o.Workers != 0 {
		t.Errorf("Workers zero value = %d, want 0 (one goroutine per branch)", o.Workers)
	}
	if o.DiscoveryWorkers != 0 {
		t.Errorf("DiscoveryWorkers zero value = %d, want 0 (automatic sizing)", o.DiscoveryWorkers)
	}
	if o.AllowDisconnected {
		t.Error("AllowDisconnected zero value = true, want false (reject unreachable pairs)")
	}
}

func TestDiscoveryWorkersResolution(t *testing.T) {
	gomax := runtime.GOMAXPROCS(0)
	cases := []struct {
		name string
		opt  int
		n    int
		want int
	}{
		{"auto caps at GOMAXPROCS", 0, gomax + 5, gomax},
		{"auto caps at task count", 0, 1, 1},
		{"sequential", 1, 8, 1},
		{"explicit within bounds", 2, 8, 2},
		{"explicit caps at task count", 16, 3, 3},
		{"negative means auto", -4, 1, 1},
		{"zero tasks still one worker", 0, 0, 1},
	}
	for _, tc := range cases {
		if got := (Options{DiscoveryWorkers: tc.opt}).discoveryWorkers(tc.n); got != tc.want {
			t.Errorf("%s: discoveryWorkers(%d) with opt %d = %d, want %d", tc.name, tc.n, tc.opt, got, tc.want)
		}
	}
}
