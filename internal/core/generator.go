// Package core implements the paper's primary contribution: the automated
// generation of user-perceived service infrastructure models (UPSIMs).
// Given an ICT infrastructure model (UML class + object diagrams), a
// composite service description (UML activity diagram) and a service mapping
// (XML pairs of requester and provider per atomic service), the Generator
// executes Steps 5–8 of the methodology (Section V-B):
//
//  5. import the UML models into the VPM model space,
//  6. import the service mapping pairs with the custom importer,
//  7. discover all simple paths between requester and provider of every
//     atomic service and store them in a reserved subtree of the model
//     space,
//  8. merge the paths into a single UML object diagram — the UPSIM
//     (Definition 2) — preserving the instance signatures and therefore all
//     static class properties for downstream dependability analysis.
package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"upsim/internal/cache"
	"upsim/internal/importers"
	"upsim/internal/lint"
	"upsim/internal/mapping"
	"upsim/internal/obs"
	"upsim/internal/pathdisc"
	"upsim/internal/service"
	"upsim/internal/topology"
	"upsim/internal/uml"
	"upsim/internal/vpm"
)

// Algorithm selects the path-discovery variant for Step 7.
type Algorithm uint8

const (
	// AlgoRecursive is the paper's recursive DFS with path tracking.
	AlgoRecursive Algorithm = iota
	// AlgoIterative is the explicit-stack DFS (identical output).
	AlgoIterative
	// AlgoParallel partitions the search over the requester's first hops
	// across a worker pool (identical output).
	AlgoParallel
	// AlgoShortest keeps only one minimum-hop path per atomic service. It
	// deliberately violates Definition 2 (all redundant paths) and exists
	// for the redundancy ablation.
	AlgoShortest
)

// String returns the algorithm name.
func (a Algorithm) String() string {
	switch a {
	case AlgoRecursive:
		return "recursive-dfs"
	case AlgoIterative:
		return "iterative-dfs"
	case AlgoParallel:
		return "parallel-dfs"
	case AlgoShortest:
		return "shortest-path"
	}
	return fmt.Sprintf("Algorithm(%d)", uint8(a))
}

// MergeSemantics selects how discovered paths become the UPSIM topology.
type MergeSemantics uint8

const (
	// MergeInduced keeps every infrastructure link whose both endpoints
	// appear in some path — the paper's Step 8 "filter on the complete
	// topology, where only nodes which appear at least once in the
	// discovered paths are preserved" (Section VI-H).
	MergeInduced MergeSemantics = iota
	// MergeTraversed keeps only links actually traversed by some path, an
	// alternative semantics used by the merge ablation.
	MergeTraversed
)

// String returns the merge semantics name.
func (m MergeSemantics) String() string {
	switch m {
	case MergeInduced:
		return "induced"
	case MergeTraversed:
		return "traversed"
	}
	return fmt.Sprintf("MergeSemantics(%d)", uint8(m))
}

// LintMode controls the pre-flight lint gate of the generator: whether the
// built-in rule registry (internal/lint) runs over the model, service and
// mapping before Step 6, and what happens to its findings.
type LintMode uint8

const (
	// LintOff skips the pre-flight lint entirely (the zero value, matching
	// the paper's pipeline, which assumes well-formed inputs).
	LintOff LintMode = iota
	// LintWarn runs the linter and logs every warning- and error-severity
	// finding through obs.Logger, but never stops the pipeline.
	LintWarn
	// LintFail runs the linter and aborts the generation with a *lint.Error
	// (carrying the full report) when any error-severity finding exists.
	LintFail
)

// String returns the lint mode name.
func (m LintMode) String() string {
	switch m {
	case LintOff:
		return "off"
	case LintWarn:
		return "warn"
	case LintFail:
		return "fail"
	}
	return fmt.Sprintf("LintMode(%d)", uint8(m))
}

// Options tunes the generator. The zero value reproduces the paper: DFS all
// simple paths (AlgoRecursive), induced merge (MergeInduced), unbounded
// enumeration, disconnected pairs are errors, and no lint gate (LintOff).
// Every default below is asserted by TestOptionsZeroValueDefaults.
type Options struct {
	// Algorithm selects the Step 7 path-discovery variant. The zero value
	// AlgoRecursive is the paper's recursive DFS with path tracking.
	Algorithm Algorithm
	// Merge selects the Step 8 merge semantics. The zero value MergeInduced
	// is the paper's Section VI-H filter (keep every infrastructure link
	// whose both endpoints appear in some path).
	Merge MergeSemantics
	// Paths tunes the enumeration (depth/count bounds, parallel-edge
	// collapsing). The zero value enumerates unbounded, without collapsing.
	Paths pathdisc.Options
	// Workers sets the pool size for AlgoParallel (0, the default, spawns
	// one worker per first-hop branch of the requester).
	Workers int
	// DiscoveryWorkers bounds the worker pool that runs the per-atomic-
	// service discovery loop of Step 7 concurrently. 0 (the default) sizes
	// the pool to min(GOMAXPROCS, number of atomic services); 1 forces the
	// sequential loop; larger values cap the pool. The Result is
	// deterministic regardless of pool size: per-service path sets keep the
	// composite's execution order.
	DiscoveryWorkers int
	// AllowDisconnected produces a partial UPSIM instead of failing when an
	// atomic service has no path between requester and provider. The
	// default (false) makes a disconnected pair an error.
	AllowDisconnected bool
	// Lint selects the pre-flight lint gate. The zero value LintOff skips
	// linting entirely, matching the paper's pipeline; LintWarn logs
	// findings, LintFail aborts on error-severity findings.
	Lint LintMode
	// LegacyKernel routes Step 7 through the original map-based discovery
	// functions instead of the compiled CSR kernel (pathdisc.Compile). The
	// zero value (false) uses the compiled kernel, which returns the exact
	// same path sets but prunes unreachable expansions, so its search-effort
	// Stats are lower. AlgoShortest always uses the legacy implementation.
	LegacyKernel bool
}

// discoveryWorkers resolves the effective Step 7 pool size for n atomic
// services.
func (o Options) discoveryWorkers(n int) int {
	w := o.DiscoveryWorkers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ServicePaths records Step 7 output for one atomic service.
type ServicePaths struct {
	AtomicService string
	Requester     string
	Provider      string
	Paths         []pathdisc.Path
	Stats         pathdisc.Stats
}

// Result is the outcome of one UPSIM generation.
type Result struct {
	// Name is the UPSIM (and diagram) name.
	Name string
	// UPSIM is the generated UML object diagram, living in the source
	// model; its instances share the classifiers of the infrastructure so
	// every dependability property remains reachable (Section V-E).
	UPSIM *uml.ObjectDiagram
	// Source is the infrastructure object diagram the UPSIM was generated
	// from. Path edge IDs in Services index into Source.Links().
	Source *uml.ObjectDiagram
	// Graph is the topology view of the UPSIM.
	Graph *topology.Graph
	// Services holds the per-atomic-service path sets in execution order.
	Services []ServicePaths
	// TotalPaths is the number of discovered paths over all atomic
	// services.
	TotalPaths int
	// EdgeVisits aggregates the search effort of Step 7.
	EdgeVisits int
	// Pruned aggregates the expansions the compiled kernel's reachability
	// pass skipped in Step 7 (always 0 with Options.LegacyKernel).
	Pruned int
}

// PathsFor returns the discovered paths of one atomic service.
func (r *Result) PathsFor(atomicService string) ([]pathdisc.Path, bool) {
	for _, sp := range r.Services {
		if sp.AtomicService == atomicService {
			return sp.Paths, true
		}
	}
	return nil, false
}

// NodeNames returns the sorted node names of the UPSIM.
func (r *Result) NodeNames() []string { return r.Graph.NodeNames() }

// Generator owns the model space for one infrastructure model and runs the
// Step 5–8 pipeline. A Generator is reusable: Generate may be called many
// times with different services, mappings and perspectives against the same
// imported infrastructure, which is exactly the dynamicity argument of
// Section V-A3 (only the mapping changes between user perspectives).
//
// A Generator is safe for concurrent use: an internal mutex serialises the
// pipeline's model-space and model mutations, so concurrent Generate calls
// with distinct inputs queue, while — with a cache attached (WithCache) —
// concurrent identical calls collapse into one computation via singleflight
// and the rest share the cached Result.
type Generator struct {
	model       *uml.Model
	diagramName string
	space       *vpm.ModelSpace
	graph       *topology.Graph
	compiled    *pathdisc.Compiled // CSR kernel, built once per model, immutable

	mu          sync.Mutex // guards the fields below and the pipeline's mutations
	mappingSeq  int
	cache       *cache.Cache
	modelDigest string // canonical model hash, fixed at WithCache time
	digestErr   error

	// derived names every artifact a Generate call grafted onto the shared
	// model and model space (output diagram, mapping subtree, paths
	// subtree), so ResetDerived can unhook them when the generator returns
	// to a GeneratorPool.
	derived []derivedNames
	poolKey string // set by GeneratorPool.Acquire; empty for unpooled use
}

// derivedNames records the per-generation artifact names: the UPSIM output
// diagram (which also names the paths.<name> subtree) and the sequenced
// mapping import.
type derivedNames struct {
	diagram string
	mapping string
}

// NewGenerator imports the model into a fresh model space (Step 5) and
// prepares the graph view of the named infrastructure object diagram.
func NewGenerator(m *uml.Model, diagramName string) (*Generator, error) {
	return NewGeneratorContext(context.Background(), m, diagramName)
}

// NewGeneratorContext is NewGenerator under a context: when ctx carries an
// obs span, Step 5 (UML import) is recorded as a child span with the
// imported topology size.
func NewGeneratorContext(ctx context.Context, m *uml.Model, diagramName string) (*Generator, error) {
	_, sp := obs.StartSpan(ctx, "step5.import_uml")
	defer sp.End()
	if m == nil {
		return nil, fmt.Errorf("core: nil model")
	}
	d, ok := m.Diagram(diagramName)
	if !ok {
		return nil, fmt.Errorf("core: model %q has no object diagram %q", m.Name(), diagramName)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid model: %w", err)
	}
	// The space comes from the package pool: a recycled space keeps the
	// arena blocks and index buckets of its previous life, so the
	// one-entity-per-UML-element import below bump-allocates instead of
	// hitting the heap per element (DESIGN.md §14).
	space := vpm.GetSpace()
	im, err := importers.NewUMLImporter(space)
	if err != nil {
		vpm.PutSpace(space)
		return nil, err
	}
	if err := im.Import(m); err != nil {
		vpm.PutSpace(space)
		return nil, err
	}
	g := topology.FromObjectDiagram(d)
	sp.SetAttr("nodes", g.NumNodes())
	sp.SetAttr("edges", g.NumEdges())
	// Compile the CSR kernel once per model: every Generate call — across
	// mapping pairs, user perspectives and batch items — reuses it, so the
	// string-to-index lowering and the adjacency layout are paid exactly once.
	compiled := pathdisc.Compile(g)
	// Install the ranked-discovery cost view from the diagram's stereotype
	// attributes, resolved once here, never during search. Edge ID i is
	// links[i] (topology.FromObjectDiagram), so patched-in edges with IDs
	// beyond the diagram resolve to the hop fallback — identically on a
	// patched kernel and on a recompile of the mutated graph.
	links := d.Links()
	compiled.SetEdgeCosts(func(edgeID int) (float64, bool) {
		if edgeID < 0 || edgeID >= len(links) {
			return 0, false
		}
		if tp, ok := links[edgeID].Property("throughput"); ok && tp.AsReal() > 0 {
			return tp.AsReal(), true
		}
		return 0, false
	})
	return &Generator{
		model:       m,
		diagramName: diagramName,
		space:       space,
		graph:       g,
		compiled:    compiled,
	}, nil
}

// Space exposes the underlying model space (read-mostly; used by tests and
// by tooling that wants to inspect imported entities and stored paths).
func (g *Generator) Space() *vpm.ModelSpace { return g.space }

// Graph returns the graph view of the infrastructure diagram.
func (g *Generator) Graph() *topology.Graph { return g.graph }

// Compiled returns the CSR path-discovery kernel compiled from the
// infrastructure graph at construction time. It is immutable and safe for
// concurrent use; callers that enumerate paths outside the pipeline (the
// HTTP /paths endpoint, tooling) should prefer it over the map-based
// pathdisc functions to amortise compilation.
func (g *Generator) Compiled() *pathdisc.Compiled { return g.compiled }

// Model returns the source UML model.
func (g *Generator) Model() *uml.Model { return g.model }

// Generate runs Steps 6–8 for one composite service, mapping and UPSIM name.
// The name must be unique per generator invocation (it names the mapping
// import, the stored path subtree and the output object diagram).
func (g *Generator) Generate(svc *service.Composite, mp *mapping.Mapping, name string, opts Options) (*Result, error) {
	return g.GenerateContext(context.Background(), svc, mp, name, opts)
}

// GenerateContext is Generate under a context: when ctx carries an obs
// span, each pipeline stage (Step 6 mapping import, Step 7 path discovery
// with one child span per atomic service, Step 8 merge) is recorded with
// its wall time and outcome attributes.
//
// With a cache attached (WithCache), the request is content-addressed first
// (CacheKey): a hit returns the shared, immutable Result without running
// any pipeline step — the trace then carries a single "cache" span instead
// of the step6/step7/step8 stages — and concurrent identical misses compute
// once (singleflight). Errors are never cached.
func (g *Generator) GenerateContext(ctx context.Context, svc *service.Composite, mp *mapping.Mapping, name string, opts Options) (*Result, error) {
	if svc == nil {
		return nil, fmt.Errorf("core: nil service")
	}
	if name == "" {
		return nil, fmt.Errorf("core: empty UPSIM name")
	}
	if c := g.Cache(); c != nil {
		key, err := g.CacheKey(svc, mp, name, opts)
		if err != nil {
			return nil, err
		}
		v, outcome, err := c.Do(ctx, key, func() (any, error) {
			return g.generate(ctx, svc, mp, name, opts)
		})
		if err != nil {
			return nil, err
		}
		if outcome != cache.OutcomeMiss {
			_, sp := obs.StartSpan(ctx, "cache")
			sp.SetAttr("outcome", outcome.String())
			sp.SetAttr("key", key[:12])
			sp.End()
		}
		return v.(*Result), nil
	}
	return g.generate(ctx, svc, mp, name, opts)
}

// generate runs the actual Step 6–8 pipeline under the generator mutex.
func (g *Generator) generate(ctx context.Context, svc *service.Composite, mp *mapping.Mapping, name string, opts Options) (*Result, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, taken := g.model.Diagram(name); taken {
		return nil, fmt.Errorf("core: model already has an object diagram named %q", name)
	}

	// Pre-flight lint gate: runs before CheckMapping so that a failing run
	// reports every defect at once (a missing pair, a dangling reference and
	// a disconnected pair all appear in one *lint.Error) instead of the
	// pipeline stopping at the first.
	if opts.Lint != LintOff {
		if err := g.lintGate(ctx, svc, mp, name, opts.Lint); err != nil {
			return nil, err
		}
	}
	if err := svc.CheckMapping(mp); err != nil {
		return nil, err
	}

	// Step 6: import the service mapping pairs. The importer verifies every
	// referenced component against the infrastructure diagram.
	_, span6 := obs.StartSpan(ctx, "step6.import_mapping")
	g.mappingSeq++
	mappingName := fmt.Sprintf("%s-%d", name, g.mappingSeq)
	// Record the artifact names before any state is created: a failed step
	// may leave a partial graft (an imported mapping whose discovery then
	// fails), and ResetDerived must unhook those too. Cleanup of names that
	// never materialised is a no-op.
	g.derived = append(g.derived, derivedNames{diagram: name, mapping: mappingName})
	mi, err := importers.NewMappingImporter(g.space)
	if err != nil {
		span6.End()
		return nil, err
	}
	diagramFQN := importers.DiagramFQN(g.model.Name(), g.diagramName)
	if err := mi.Import(mappingName, mp, diagramFQN); err != nil {
		span6.End()
		return nil, err
	}
	span6.SetAttr("pairs", len(mp.Pairs()))
	span6.End()

	// Step 7: path discovery per atomic service. Pair resolution stays
	// sequential (it reads the model space); the discoveries themselves fan
	// out over a bounded worker pool (Options.DiscoveryWorkers) against the
	// read-only topology graph. Tasks are claimed in execution order and
	// results assembled by index, so the Result — including the first error
	// reported when several pairs fail — is identical to the sequential
	// loop's, whatever the pool size.
	ctx7, span7 := obs.StartSpan(ctx, "step7.pathdisc")
	defer span7.End()
	span7.SetAttr("algorithm", opts.Algorithm.String())
	pairs, err := svc.RelevantPairs(mp)
	if err != nil {
		return nil, err
	}
	res := &Result{Name: name}
	sps := make([]ServicePaths, len(pairs))
	for i, p := range pairs {
		req, prov, err := importers.ResolvePair(g.space, mappingName, p.AtomicService)
		if err != nil {
			return nil, err
		}
		sps[i] = ServicePaths{
			AtomicService: p.AtomicService,
			Requester:     req.Name(),
			Provider:      prov.Name(),
		}
	}
	workers := opts.discoveryWorkers(len(pairs))
	span7.SetAttr("workers", workers)
	wctx, cancelDiscovery := context.WithCancel(ctx7)
	defer cancelDiscovery()
	errs := make([]error, len(pairs))
	discoverOne := func(i int) {
		// A cancelled context (caller gave up, or an earlier pair failed)
		// skips the remaining discoveries.
		if err := wctx.Err(); err != nil {
			errs[i] = err
			return
		}
		sp := &sps[i]
		_, svcSpan := obs.StartSpan(wctx, sp.AtomicService)
		var derr error
		sp.Paths, sp.Stats, derr = g.discover(sp.Requester, sp.Provider, opts)
		svcSpan.SetAttr("paths", sp.Stats.Paths)
		svcSpan.SetAttr("edge_visits", sp.Stats.EdgeVisits)
		svcSpan.SetAttr("nodes_visited", sp.Stats.NodeVisits)
		svcSpan.SetAttr("max_stack", sp.Stats.MaxStack)
		svcSpan.End()
		if derr != nil {
			errs[i] = fmt.Errorf("core: %s: atomic service %q: %w", name, sp.AtomicService, derr)
			cancelDiscovery()
		}
	}
	if workers == 1 {
		// A single-worker pool is just the sequential loop: skip the
		// goroutine/channel machinery whose scheduling overhead is what made
		// single-core "concurrent" discovery measure below 1× in PR 3.
		for i := range pairs {
			discoverOne(i)
		}
	} else {
		var (
			wg    sync.WaitGroup
			tasks = make(chan int)
		)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range tasks {
					discoverOne(i)
				}
			}()
		}
		for i := range pairs {
			tasks <- i
		}
		close(tasks)
		wg.Wait()
	}
	for i := range sps {
		if errs[i] != nil {
			return nil, errs[i]
		}
		if len(sps[i].Paths) == 0 && !opts.AllowDisconnected {
			return nil, fmt.Errorf("core: %s: atomic service %q: no path between requester %q and provider %q",
				name, sps[i].AtomicService, sps[i].Requester, sps[i].Provider)
		}
		res.Services = append(res.Services, sps[i])
		res.TotalPaths += len(sps[i].Paths)
		res.EdgeVisits += sps[i].Stats.EdgeVisits
		res.Pruned += sps[i].Stats.Pruned
	}
	span7.SetAttr("paths", res.TotalPaths)
	span7.SetAttr("edge_visits", res.EdgeVisits)
	span7.End()

	// Step 8: merge all paths of all atomic services into one object
	// diagram. Storing the discovered paths in the reserved model-space
	// subtree ("Resulting paths are stored separately in the model space for
	// further manipulation", Step 7) is part of the same stage.
	_, span8 := obs.StartSpan(ctx, "step8.merge")
	defer span8.End()
	if err := g.storePaths(name, res.Services); err != nil {
		return nil, err
	}
	if err := g.merge(res, opts); err != nil {
		return nil, err
	}
	span8.SetAttr("nodes", res.Graph.NumNodes())
	span8.SetAttr("links", res.Graph.NumEdges())
	return res, nil
}

// lintGate runs the built-in lint registry over the generator's artifacts.
// In LintFail mode error-severity findings abort the generation with a
// *lint.Error; in LintWarn mode every warning and error is logged through
// obs.Logger and the pipeline continues.
func (g *Generator) lintGate(ctx context.Context, svc *service.Composite, mp *mapping.Mapping, name string, mode LintMode) error {
	_, span := obs.StartSpan(ctx, "lint.preflight")
	defer span.End()
	diagram, _ := g.model.Diagram(g.diagramName)
	rep, err := lint.Default().Run(&lint.Input{
		Model:   g.model,
		Diagram: diagram,
		Graph:   g.graph,
		Service: svc,
		Mapping: mp,
	})
	if err != nil {
		return err
	}
	span.SetAttr("errors", rep.Errors)
	span.SetAttr("warnings", rep.Warnings)
	if mode == LintFail {
		if err := rep.Err(); err != nil {
			return fmt.Errorf("core: %s: pre-flight %w", name, err)
		}
		return nil
	}
	for _, d := range rep.Diagnostics {
		if d.Severity < lint.SeverityWarning {
			continue
		}
		obs.Logger().Warn("lint finding",
			"upsim", name,
			"rule", d.Rule,
			"severity", d.Severity.String(),
			"element", d.Element,
			"message", d.Message)
	}
	return nil
}

func (g *Generator) discover(req, prov string, opts Options) ([]pathdisc.Path, pathdisc.Stats, error) {
	if opts.Paths.K > 0 {
		// Ranked discovery: the K cheapest paths under the stereotype cost
		// view replace the full enumeration — Step 7 with a bounded work
		// envelope instead of an exponential sweep. Ranked mode lives only
		// on the compiled kernel; LegacyKernel has no ranked counterpart.
		return g.compiled.KShortest(req, prov, opts.Paths)
	}
	if !opts.LegacyKernel {
		switch opts.Algorithm {
		case AlgoRecursive:
			return g.compiled.AllPaths(req, prov, opts.Paths)
		case AlgoIterative:
			return g.compiled.AllPathsIterative(req, prov, opts.Paths)
		case AlgoParallel:
			return g.compiled.AllPathsParallel(req, prov, opts.Paths, opts.Workers)
		}
		// AlgoShortest (and unknown values) fall through to the legacy switch.
	}
	switch opts.Algorithm {
	case AlgoRecursive:
		return pathdisc.AllPaths(g.graph, req, prov, opts.Paths)
	case AlgoIterative:
		return pathdisc.AllPathsIterative(g.graph, req, prov, opts.Paths)
	case AlgoParallel:
		return pathdisc.AllPathsParallel(g.graph, req, prov, opts.Paths, opts.Workers)
	case AlgoShortest:
		p, err := pathdisc.ShortestPath(g.graph, req, prov)
		if err != nil {
			// Unreachable providers surface as zero paths, consistent with
			// the DFS variants.
			return nil, pathdisc.Stats{}, nil
		}
		return []pathdisc.Path{p}, pathdisc.Stats{Paths: 1, EdgeVisits: p.Len(), NodeVisits: len(p.Nodes)}, nil
	}
	return nil, pathdisc.Stats{}, fmt.Errorf("unknown algorithm %v", opts.Algorithm)
}

// storePaths materialises paths under paths.<name>.<atomic service>.p<i>,
// each entity valued with the paper-style path string.
func (g *Generator) storePaths(name string, services []ServicePaths) error {
	for _, sp := range services {
		parent, err := g.space.EnsureEntity("paths." + name + "." + sp.AtomicService)
		if err != nil {
			return err
		}
		for i, p := range sp.Paths {
			pe, err := g.space.NewEntity(parent, fmt.Sprintf("p%d", i))
			if err != nil {
				return err
			}
			pe.SetValue(p.String())
		}
	}
	return nil
}

// merge builds the UPSIM object diagram and graph from the union of all
// discovered paths. "Multiple occurrences are ignored" — the merge is a set
// union over nodes (and, for MergeTraversed, edges).
func (g *Generator) merge(res *Result, opts Options) error {
	keep := make(map[string]bool)
	edges := make(map[int]bool)
	for _, sp := range res.Services {
		for n := range pathdisc.NodeSet(sp.Paths) {
			keep[n] = true
		}
		for e := range pathdisc.EdgeSet(sp.Paths) {
			edges[e] = true
		}
	}

	src, _ := g.model.Diagram(g.diagramName)
	res.Source = src
	out := g.model.NewObjectDiagram(res.Name)
	for _, inst := range src.Instances() {
		if !keep[inst.Name()] {
			continue
		}
		if _, err := out.AddInstance(inst.Name(), inst.Classifier()); err != nil {
			return err
		}
	}
	// The topology graph was built from src in link order, so edge ID i is
	// src.Links()[i].
	links := src.Links()
	for i, l := range links {
		a, b := l.Ends()
		include := false
		switch opts.Merge {
		case MergeInduced:
			include = keep[a.Name()] && keep[b.Name()]
		case MergeTraversed:
			include = edges[i]
		default:
			return fmt.Errorf("core: unknown merge semantics %v", opts.Merge)
		}
		if !include {
			continue
		}
		if _, err := out.ConnectByName(a.Name(), b.Name(), l.Association()); err != nil {
			return err
		}
	}
	res.UPSIM = out
	res.Graph = topology.FromObjectDiagram(out)
	return nil
}

// ResetDerived unhooks every artifact previous Generate calls grafted onto
// the shared model and model space: output diagrams detach from the model
// (staying valid inside cached Results), and the mapping and paths subtrees
// are deleted, returning their entities to the space's arena free lists. The
// infrastructure import (Step 5) is untouched, so the generator is ready for
// a fresh sequence of generations against the same model — this is what
// makes a Generator reusable through a GeneratorPool without name
// collisions or unbounded model-space growth.
func (g *Generator) ResetDerived() {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, d := range g.derived {
		g.model.RemoveDiagram(d.diagram)
		if e, ok := g.space.Lookup(importers.NSMappings + "." + d.mapping); ok {
			// The subtree exists and is not the root; deletion cannot fail.
			_ = g.space.DeleteEntity(e)
		}
		if e, ok := g.space.Lookup("paths." + d.diagram); ok {
			_ = g.space.DeleteEntity(e)
		}
	}
	g.derived = g.derived[:0]
}

// Close releases the generator's model space back to the package pool. The
// generator must not be used afterwards; only pool-managed lifecycles (and
// tests) should call it — an unpooled Generator can simply be dropped.
func (g *Generator) Close() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.space != nil {
		vpm.PutSpace(g.space)
		g.space = nil
	}
}
