package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"upsim/internal/cache"
	"upsim/internal/mapping"
	"upsim/internal/service"
	"upsim/internal/uml"
)

// WithCache attaches a content-addressed result cache (see internal/cache)
// to the generator and returns it for chaining. Subsequent Generate calls
// derive a CacheKey from their inputs and serve repeated identical requests
// from the cache without re-running Steps 6–8; concurrent identical
// requests compute once and share the result (singleflight). The model's
// canonical digest is taken now, so the model must not be mutated
// externally after this call (the generator's own UPSIM output diagrams are
// excluded by construction: the digest is fixed before any is added).
//
// A cached *Result is shared verbatim between callers and must be treated
// as immutable — which every pipeline consumer already does, because a
// Result is never written after Step 8's merge returns (DESIGN.md §8).
func (g *Generator) WithCache(c *cache.Cache) *Generator {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.cache = c
	if c != nil && g.modelDigest == "" && g.digestErr == nil {
		g.modelDigest, g.digestErr = modelDigest(g.model)
	}
	return g
}

// Cache returns the cache attached with WithCache, or nil.
func (g *Generator) Cache() *cache.Cache {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.cache
}

// modelDigest hashes the canonical XMI serialisation of the model.
func modelDigest(m *uml.Model) (string, error) {
	h := sha256.New()
	if err := uml.Encode(h, m); err != nil {
		return "", fmt.Errorf("core: cache key: encoding model: %w", err)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// CacheKey derives the content address of one generation request: a stable
// SHA-256 over the canonically-encoded model XMI (digested once, at
// WithCache time), the infrastructure diagram name, the composite service's
// name and stage structure, the Figure-3 encoding of the mapping, the UPSIM
// name and every Options field that can change the output. Two requests
// collide exactly when Steps 6–8 would produce an identical Result, which
// is what makes a cached Result safe to share.
func (g *Generator) CacheKey(svc *service.Composite, mp *mapping.Mapping, name string, opts Options) (string, error) {
	if svc == nil {
		return "", fmt.Errorf("core: cache key: nil service")
	}
	if mp == nil {
		return "", fmt.Errorf("core: cache key: nil mapping")
	}
	g.mu.Lock()
	digest, err := g.modelDigest, g.digestErr
	if digest == "" && err == nil {
		// CacheKey may be called before WithCache (tests, tooling).
		g.modelDigest, g.digestErr = modelDigest(g.model)
		digest, err = g.modelDigest, g.digestErr
	}
	g.mu.Unlock()
	if err != nil {
		return "", err
	}
	h := sha256.New()
	fmt.Fprintf(h, "model=%s\ndiagram=%s\nname=%s\n", digest, g.diagramName, name)
	fmt.Fprintf(h, "service=%s stages=%v\n", svc.Name(), svc.Stages())
	if err := mp.Encode(h); err != nil {
		return "", fmt.Errorf("core: cache key: encoding mapping: %w", err)
	}
	// Workers and DiscoveryWorkers are deliberately excluded: they tune
	// parallelism only, never the produced Result (the DFS variants are
	// output-identical and the discovery loop preserves execution order),
	// so requests differing only in pool sizes share one entry. LegacyKernel
	// IS included: both kernels return the same path sets, but the compiled
	// kernel prunes unreachable expansions, so the search-effort Stats (and
	// therefore the Result) differ between them.
	// K, CostMetric and MaxWork all change the produced path set (ranked
	// top-k under a metric vs full enumeration; the work budget decides
	// whether the request errors), so they key the cache like the other
	// path options.
	fmt.Fprintf(h, "\nopts=%s/%s paths={d=%d p=%d c=%t k=%d cost=%s work=%d} disc=%t lint=%s legacy=%t\n",
		opts.Algorithm, opts.Merge,
		opts.Paths.MaxDepth, opts.Paths.MaxPaths, opts.Paths.CollapseParallel,
		opts.Paths.K, opts.Paths.CostMetric, opts.Paths.MaxWork,
		opts.AllowDisconnected, opts.Lint, opts.LegacyKernel)
	return hex.EncodeToString(h.Sum(nil)), nil
}
