package core

import (
	"fmt"
	"sort"
	"strings"
)

// Diff describes how the user-perceived infrastructure changes between two
// generated UPSIMs — the operational view of the paper's dynamicity
// scenarios (Section V-A3): when a user moves or a service migrates, Diff
// shows exactly which components enter and leave their perceived
// infrastructure.
type Diff struct {
	// AddedNodes are instance names only in the second UPSIM, sorted.
	AddedNodes []string
	// RemovedNodes are instance names only in the first UPSIM, sorted.
	RemovedNodes []string
	// KeptNodes are instance names in both, sorted.
	KeptNodes []string
	// AddedLinks and RemovedLinks are canonical "a--b" endpoint pairs.
	AddedLinks   []string
	RemovedLinks []string
}

// Empty reports whether the two UPSIMs are identical.
func (d *Diff) Empty() bool {
	return len(d.AddedNodes) == 0 && len(d.RemovedNodes) == 0 &&
		len(d.AddedLinks) == 0 && len(d.RemovedLinks) == 0
}

// String renders the diff compactly, e.g. "+[t15 e4] -[t1 e1] links +1 -1".
func (d *Diff) String() string {
	if d.Empty() {
		return "no change"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "+%v -%v", d.AddedNodes, d.RemovedNodes)
	if len(d.AddedLinks) > 0 || len(d.RemovedLinks) > 0 {
		fmt.Fprintf(&b, " links +%d -%d", len(d.AddedLinks), len(d.RemovedLinks))
	}
	return b.String()
}

// Compare computes the difference from the first to the second generation
// result. Both results must stem from the same infrastructure model for the
// comparison to be meaningful; this is not enforced, matching the paper's
// use case of comparing perspectives over one network.
func Compare(from, to *Result) (*Diff, error) {
	if from == nil || to == nil || from.Graph == nil || to.Graph == nil {
		return nil, fmt.Errorf("core: Compare needs two generated results")
	}
	d := &Diff{}
	a := map[string]bool{}
	for _, n := range from.Graph.NodeNames() {
		a[n] = true
	}
	b := map[string]bool{}
	for _, n := range to.Graph.NodeNames() {
		b[n] = true
	}
	for n := range b {
		if a[n] {
			d.KeptNodes = append(d.KeptNodes, n)
		} else {
			d.AddedNodes = append(d.AddedNodes, n)
		}
	}
	for n := range a {
		if !b[n] {
			d.RemovedNodes = append(d.RemovedNodes, n)
		}
	}
	la := linkKeys(from)
	lb := linkKeys(to)
	for k := range lb {
		if !la[k] {
			d.AddedLinks = append(d.AddedLinks, k)
		}
	}
	for k := range la {
		if !lb[k] {
			d.RemovedLinks = append(d.RemovedLinks, k)
		}
	}
	sort.Strings(d.AddedNodes)
	sort.Strings(d.RemovedNodes)
	sort.Strings(d.KeptNodes)
	sort.Strings(d.AddedLinks)
	sort.Strings(d.RemovedLinks)
	return d, nil
}

func linkKeys(r *Result) map[string]bool {
	out := map[string]bool{}
	for _, l := range r.UPSIM.Links() {
		a, b := l.Ends()
		x, y := a.Name(), b.Name()
		if y < x {
			x, y = y, x
		}
		out[x+"--"+y] = true
	}
	return out
}
