package core

import (
	"bytes"
	"log/slog"
	"strings"
	"testing"

	"upsim/internal/lint"
	"upsim/internal/mapping"
	"upsim/internal/obs"
)

// The clean diamond fixture carries two non-error findings by construction —
// the isolated "iso" client (warning) and the redundant c1—c2 interconnect
// (parallel-links info) — so LintFail must still let it through: only
// error-severity findings block generation.
func TestGenerateLintFailCleanFixture(t *testing.T) {
	f := buildFixture(t)
	gen, err := NewGenerator(f.model, "infrastructure")
	if err != nil {
		t.Fatal(err)
	}
	res, err := gen.Generate(f.svc, f.mp, "upsim", Options{Lint: LintFail})
	if err != nil {
		t.Fatalf("LintFail on warning-only fixture: %v", err)
	}
	if res == nil || res.UPSIM == nil {
		t.Fatal("no result")
	}
}

func TestGenerateLintFailAborts(t *testing.T) {
	f := buildFixture(t)
	if err := f.mp.Remap("fetch", "ghost", "srv"); err != nil {
		t.Fatal(err)
	}
	gen, err := NewGenerator(f.model, "infrastructure")
	if err != nil {
		t.Fatal(err)
	}
	_, err = gen.Generate(f.svc, f.mp, "upsim", Options{Lint: LintFail})
	if err == nil {
		t.Fatal("LintFail let a dangling mapping ref through")
	}
	lerr, ok := lint.AsError(err)
	if !ok {
		t.Fatalf("error is not a *lint.Error: %v", err)
	}
	if lerr.Report == nil || lerr.Report.Errors == 0 {
		t.Fatalf("lint error without report: %+v", lerr)
	}
	found := false
	for _, d := range lerr.Report.Diagnostics {
		if d.Rule == "mapping-dangling-ref" && strings.Contains(d.Message, "ghost") {
			found = true
		}
	}
	if !found {
		t.Errorf("mapping-dangling-ref missing from report: %+v", lerr.Report.Diagnostics)
	}
	if !strings.Contains(err.Error(), "pre-flight") {
		t.Errorf("error not labelled as pre-flight: %v", err)
	}
}

// LintWarn logs every warning-or-worse finding and proceeds; the fixture's
// isolated client guarantees at least one logged finding on a model that
// still generates fine.
func TestGenerateLintWarnLogsAndProceeds(t *testing.T) {
	f := buildFixture(t)
	var buf bytes.Buffer
	obs.SetLogger(slog.New(slog.NewTextHandler(&buf, nil)))
	defer obs.SetLogger(nil)

	gen, err := NewGenerator(f.model, "infrastructure")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gen.Generate(f.svc, f.mp, "upsim", Options{Lint: LintWarn}); err != nil {
		t.Fatalf("LintWarn blocked generation: %v", err)
	}
	logged := buf.String()
	if !strings.Contains(logged, "lint finding") || !strings.Contains(logged, "topology-isolated-node") {
		t.Errorf("isolated-node warning not logged:\n%s", logged)
	}
	if strings.Contains(logged, "topology-parallel-links") {
		t.Errorf("info-severity finding should not be logged under LintWarn:\n%s", logged)
	}
}

// LintOff (the zero value) must not run the registry at all: a mapping
// defect lint would catch surfaces later through CheckMapping instead.
func TestGenerateLintOffDefersToCheckMapping(t *testing.T) {
	f := buildFixture(t)
	if err := f.mp.Remap("fetch", "ghost", "srv"); err != nil {
		t.Fatal(err)
	}
	gen, err := NewGenerator(f.model, "infrastructure")
	if err != nil {
		t.Fatal(err)
	}
	_, err = gen.Generate(f.svc, f.mp, "upsim", Options{})
	if err == nil {
		t.Fatal("dangling ref generated successfully")
	}
	if _, ok := lint.AsError(err); ok {
		t.Errorf("LintOff still produced a lint error: %v", err)
	}
}

func TestGenerateLintFailMissingPair(t *testing.T) {
	f := buildFixture(t)
	mp := mapping.New()
	if err := mp.Add(mapping.Pair{AtomicService: "fetch", Requester: "t1", Provider: "srv"}); err != nil {
		t.Fatal(err)
	}
	gen, err := NewGenerator(f.model, "infrastructure")
	if err != nil {
		t.Fatal(err)
	}
	_, err = gen.Generate(f.svc, mp, "upsim", Options{Lint: LintFail})
	lerr, ok := lint.AsError(err)
	if !ok {
		t.Fatalf("want lint error, got %v", err)
	}
	found := false
	for _, d := range lerr.Report.Diagnostics {
		if d.Rule == "mapping-missing-pair" && strings.Contains(d.Element, "deliver") {
			found = true
		}
	}
	if !found {
		t.Errorf("mapping-missing-pair not reported: %+v", lerr.Report.Diagnostics)
	}
}

func TestLintModeString(t *testing.T) {
	cases := map[LintMode]string{
		LintOff:     "off",
		LintWarn:    "warn",
		LintFail:    "fail",
		LintMode(9): "LintMode(9)",
	}
	for mode, want := range cases {
		if got := mode.String(); got != want {
			t.Errorf("LintMode(%d).String() = %q, want %q", mode, got, want)
		}
	}
}
