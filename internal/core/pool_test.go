package core

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"upsim/internal/cache"
	"upsim/internal/mapping"
	"upsim/internal/service"
	"upsim/internal/uml"
)

// fixtureXML serialises the diamond fixture for pool acquisition.
func fixtureXML(t *testing.T) string {
	t.Helper()
	f := buildFixture(t)
	var b strings.Builder
	if err := uml.Encode(&b, f.model); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	return b.String()
}

// poolGenerate runs one print-service generation on a pooled generator,
// building service and mapping against the generator's own model instance.
func poolGenerate(t testing.TB, g *Generator, name string) *Result {
	t.Helper()
	act, ok := g.Model().Activity("print")
	if !ok {
		t.Fatal("model lost the print activity")
	}
	svc, err := service.FromActivity(act)
	if err != nil {
		t.Fatalf("FromActivity: %v", err)
	}
	mp := mapping.New()
	if err := mp.Add(mapping.Pair{AtomicService: "fetch", Requester: "t1", Provider: "srv"}); err != nil {
		t.Fatal(err)
	}
	if err := mp.Add(mapping.Pair{AtomicService: "deliver", Requester: "srv", Provider: "t1"}); err != nil {
		t.Fatal(err)
	}
	res, err := g.Generate(svc, mp, name, Options{})
	if err != nil {
		t.Fatalf("Generate(%s): %v", name, err)
	}
	return res
}

func TestPoolReuseSameModel(t *testing.T) {
	xml := fixtureXML(t)
	p := NewGeneratorPool(cache.New(64), 2, 4)
	ctx := context.Background()

	g1, err := p.Acquire(ctx, xml, "infrastructure")
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	res1 := poolGenerate(t, g1, "print-upsim")
	p.Release(g1)
	if got := p.IdleLen(xml, "infrastructure"); got != 1 {
		t.Fatalf("idle after release = %d, want 1", got)
	}

	g2, err := p.Acquire(ctx, xml, "infrastructure")
	if err != nil {
		t.Fatalf("re-Acquire: %v", err)
	}
	if g2 != g1 {
		t.Fatal("re-Acquire of the same model did not reuse the idle generator")
	}
	// Same UPSIM name again: ResetDerived must have unhooked the previous
	// output diagram, mapping and paths subtrees.
	res2 := poolGenerate(t, g2, "print-upsim")
	p.Release(g2)

	if res1.TotalPaths != res2.TotalPaths || res1.Name != res2.Name {
		t.Fatalf("reused generator produced a different result: %d vs %d paths", res1.TotalPaths, res2.TotalPaths)
	}
	// The first result must stay usable after the reset that detached it.
	if res1.UPSIM == nil || len(res1.UPSIM.Instances()) == 0 {
		t.Fatal("result from before ResetDerived lost its UPSIM diagram")
	}
	if _, ok := g2.Model().Diagram("print-upsim"); ok {
		t.Fatal("released generator still has the derived diagram attached")
	}
}

func TestPoolDistinctInstancesWhenBusy(t *testing.T) {
	xml := fixtureXML(t)
	p := NewGeneratorPool(cache.New(64), 2, 4)
	ctx := context.Background()
	g1, err := p.Acquire(ctx, xml, "infrastructure")
	if err != nil {
		t.Fatal(err)
	}
	g2, err := p.Acquire(ctx, xml, "infrastructure")
	if err != nil {
		t.Fatal(err)
	}
	if g1 == g2 {
		t.Fatal("concurrent acquires shared one generator instance")
	}
	p.Release(g1)
	p.Release(g2)
	if got := p.IdleLen(xml, "infrastructure"); got != 2 {
		t.Fatalf("idle = %d, want 2", got)
	}
}

func TestPoolLRUEvictsWholeModels(t *testing.T) {
	p := NewGeneratorPool(cache.New(64), 2, 2)
	ctx := context.Background()
	base := fixtureXML(t)
	xmls := make([]string, 3)
	for i := range xmls {
		// Distinct pool lines: the pool keys on raw bytes, so trailing
		// whitespace runs of different lengths are three separate models.
		xmls[i] = base + strings.Repeat("\n", i)
	}
	for _, xml := range xmls {
		g, err := p.Acquire(ctx, xml, "infrastructure")
		if err != nil {
			t.Fatal(err)
		}
		p.Release(g)
	}
	if got := p.IdleLen(xmls[0], "infrastructure"); got != 0 {
		t.Fatalf("oldest model retained %d idle generators, want 0 (evicted)", got)
	}
	for i := 1; i < 3; i++ {
		if got := p.IdleLen(xmls[i], "infrastructure"); got != 1 {
			t.Fatalf("model %d idle = %d, want 1", i, got)
		}
	}
}

// TestPoolConcurrentReuse is the batch-traffic race test: goroutines
// acquire, generate and release across two models concurrently, so reused
// model spaces and the pool's bookkeeping run under the race detector.
func TestPoolConcurrentReuse(t *testing.T) {
	xmlA := fixtureXML(t)
	xmlB := xmlA + "\n" // distinct pool line, same semantics
	p := NewGeneratorPool(cache.New(256), 2, 4)
	ctx := context.Background()

	const goroutines = 8
	const iters = 10
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				xml := xmlA
				if (w+i)%2 == 1 {
					xml = xmlB
				}
				g, err := p.Acquire(ctx, xml, "infrastructure")
				if err != nil {
					errc <- fmt.Errorf("worker %d: Acquire: %w", w, err)
					return
				}
				res, err := poolGenerateErr(g, fmt.Sprintf("upsim-w%d-%d", w, i))
				if err != nil {
					errc <- fmt.Errorf("worker %d: %w", w, err)
					return
				}
				if res.TotalPaths == 0 {
					errc <- fmt.Errorf("worker %d: zero paths", w)
					return
				}
				p.Release(g)
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// poolGenerateErr is poolGenerate for worker goroutines, which must not call
// t.Fatal.
func poolGenerateErr(g *Generator, name string) (*Result, error) {
	act, ok := g.Model().Activity("print")
	if !ok {
		return nil, fmt.Errorf("model lost the print activity")
	}
	svc, err := service.FromActivity(act)
	if err != nil {
		return nil, err
	}
	mp := mapping.New()
	if err := mp.Add(mapping.Pair{AtomicService: "fetch", Requester: "t1", Provider: "srv"}); err != nil {
		return nil, err
	}
	if err := mp.Add(mapping.Pair{AtomicService: "deliver", Requester: "srv", Provider: "t1"}); err != nil {
		return nil, err
	}
	return g.Generate(svc, mp, name, Options{})
}
