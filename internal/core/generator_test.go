package core

import (
	"context"
	"strings"
	"testing"

	"upsim/internal/mapping"
	"upsim/internal/obs"
	"upsim/internal/pathdisc"
	"upsim/internal/service"
	"upsim/internal/uml"
)

// fixture builds a diamond network:
//
//	t1 — sw1 — c1 — sw2 — srv      plus the redundant core c2:
//	           sw1 — c2 — sw2
//	iso (isolated client, for disconnection tests)
//
// and a two-service composite print := fetch;deliver with Table-I style
// mapping t1→srv, srv→t1.
type fixture struct {
	model *uml.Model
	svc   *service.Composite
	mp    *mapping.Mapping
}

func buildFixture(t *testing.T) *fixture {
	t.Helper()
	m := uml.NewModel("net")
	p := uml.NewProfile("availability")
	comp, _ := p.DefineAbstractStereotype("Component", uml.MetaclassNone)
	if err := comp.AddAttribute("MTBF", uml.KindReal); err != nil {
		t.Fatal(err)
	}
	if err := comp.AddAttribute("MTTR", uml.KindReal); err != nil {
		t.Fatal(err)
	}
	dev, _ := p.DefineSubStereotype("Device", uml.MetaclassClass, comp)
	conn, _ := p.DefineSubStereotype("Connector", uml.MetaclassAssociation, comp)
	if err := m.AddProfile(p); err != nil {
		t.Fatal(err)
	}
	addClass := func(name string, mtbf, mttr float64) *uml.Class {
		c, err := m.AddClass(name)
		if err != nil {
			t.Fatal(err)
		}
		app, err := c.Apply(dev)
		if err != nil {
			t.Fatal(err)
		}
		_ = app.Set("MTBF", uml.RealValue(mtbf))
		_ = app.Set("MTTR", uml.RealValue(mttr))
		return c
	}
	client := addClass("Client", 3000, 24)
	sw := addClass("Switch", 180000, 0.5)
	srv := addClass("Server", 60000, 0.1)
	addAssoc := func(name string, a, b *uml.Class) *uml.Association {
		as, err := m.AddAssociation(name, a, b)
		if err != nil {
			t.Fatal(err)
		}
		app, err := as.Apply(conn)
		if err != nil {
			t.Fatal(err)
		}
		_ = app.Set("MTBF", uml.RealValue(1e6))
		_ = app.Set("MTTR", uml.RealValue(0.1))
		return as
	}
	cs := addAssoc("Client-Switch", client, sw)
	ss := addAssoc("Switch-Switch", sw, sw)
	ss2 := addAssoc("Switch-Switch-2", sw, sw)
	sv := addAssoc("Switch-Server", sw, srv)

	d := m.NewObjectDiagram("infrastructure")
	mustInst := func(name string, c *uml.Class) {
		if _, err := d.AddInstance(name, c); err != nil {
			t.Fatal(err)
		}
	}
	mustInst("t1", client)
	mustInst("iso", client)
	for _, n := range []string{"sw1", "c1", "c2", "sw2"} {
		mustInst(n, sw)
	}
	mustInst("srv", srv)
	mustLink := func(a, b string, as *uml.Association) {
		if _, err := d.ConnectByName(a, b, as); err != nil {
			t.Fatal(err)
		}
	}
	mustLink("t1", "sw1", cs)
	mustLink("sw1", "c1", ss)
	mustLink("sw1", "c2", ss)
	mustLink("c1", "sw2", ss)
	mustLink("c2", "sw2", ss)
	mustLink("c1", "c2", ss)  // core interconnect
	mustLink("c1", "c2", ss2) // redundant core interconnect
	mustLink("sw2", "srv", sv)

	svc, err := service.NewSequential(m, "print", "fetch", "deliver")
	if err != nil {
		t.Fatal(err)
	}
	mp := mapping.New()
	if err := mp.Add(mapping.Pair{AtomicService: "fetch", Requester: "t1", Provider: "srv"}); err != nil {
		t.Fatal(err)
	}
	if err := mp.Add(mapping.Pair{AtomicService: "deliver", Requester: "srv", Provider: "t1"}); err != nil {
		t.Fatal(err)
	}
	return &fixture{model: m, svc: svc, mp: mp}
}

func TestGenerateUPSIM(t *testing.T) {
	f := buildFixture(t)
	g, err := NewGenerator(f.model, "infrastructure")
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.Generate(f.svc, f.mp, "upsim-t1", Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The isolated client is filtered out; everything else participates.
	want := []string{"c1", "c2", "srv", "sw1", "sw2", "t1"}
	got := res.NodeNames()
	if len(got) != len(want) {
		t.Fatalf("UPSIM nodes = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("node[%d] = %s, want %s", i, got[i], want[i])
		}
	}
	if res.UPSIM.Name() != "upsim-t1" {
		t.Errorf("diagram name = %q", res.UPSIM.Name())
	}
	// Induced merge keeps all 8 infrastructure links except t1's isolated
	// peer (iso has no links anyway): both redundant core links survive.
	if res.Graph.NumEdges() != 8 {
		t.Errorf("UPSIM edges = %d, want 8", res.Graph.NumEdges())
	}
	// Both atomic services discovered paths; requester/provider recorded.
	if len(res.Services) != 2 || res.Services[0].AtomicService != "fetch" {
		t.Fatalf("services = %+v", res.Services)
	}
	if res.Services[0].Requester != "t1" || res.Services[0].Provider != "srv" {
		t.Errorf("pair = %s -> %s", res.Services[0].Requester, res.Services[0].Provider)
	}
	if res.TotalPaths == 0 || res.EdgeVisits == 0 {
		t.Error("stats not populated")
	}
	paths, ok := res.PathsFor("fetch")
	if !ok || len(paths) == 0 {
		t.Fatal("PathsFor(fetch) empty")
	}
	if _, ok := res.PathsFor("ghost"); ok {
		t.Error("PathsFor(ghost) should be absent")
	}
	// Every discovered path runs requester -> provider.
	for _, p := range paths {
		if p.Nodes[0] != "t1" || p.Nodes[len(p.Nodes)-1] != "srv" {
			t.Errorf("path %s has wrong endpoints", p)
		}
	}
}

func TestUPSIMPreservesProperties(t *testing.T) {
	f := buildFixture(t)
	g, _ := NewGenerator(f.model, "infrastructure")
	res, err := g.Generate(f.svc, f.mp, "u", Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Section V-E: instance specifications keep the signature and the
	// static properties of their classes.
	inst, ok := res.UPSIM.Instance("srv")
	if !ok {
		t.Fatal("srv missing from UPSIM")
	}
	if inst.Signature() != "srv:Server" {
		t.Errorf("signature = %q", inst.Signature())
	}
	if v, ok := inst.Property("MTBF"); !ok || v.AsReal() != 60000 {
		t.Errorf("srv MTBF = %v, %v", v, ok)
	}
	for _, l := range res.UPSIM.Links() {
		if v, ok := l.Property("MTBF"); !ok || v.AsReal() != 1e6 {
			t.Errorf("link %s MTBF = %v, %v", l, v, ok)
		}
	}
}

func TestPathsStoredInModelSpace(t *testing.T) {
	f := buildFixture(t)
	g, _ := NewGenerator(f.model, "infrastructure")
	res, err := g.Generate(f.svc, f.mp, "stored", Options{})
	if err != nil {
		t.Fatal(err)
	}
	parent, ok := g.Space().Lookup("paths.stored.fetch")
	if !ok {
		t.Fatal("stored path subtree missing")
	}
	kids := parent.Children()
	fetchPaths, _ := res.PathsFor("fetch")
	if len(kids) != len(fetchPaths) {
		t.Fatalf("stored paths = %d, want %d", len(kids), len(fetchPaths))
	}
	if kids[0].Value() != fetchPaths[0].String() {
		t.Errorf("stored path value = %q, want %q", kids[0].Value(), fetchPaths[0].String())
	}
}

func TestGenerateDifferentPerspectives(t *testing.T) {
	// Section VI-H: changing the user perspective touches only the mapping.
	f := buildFixture(t)
	g, _ := NewGenerator(f.model, "infrastructure")
	if _, err := g.Generate(f.svc, f.mp, "p1", Options{}); err != nil {
		t.Fatal(err)
	}
	mp2 := f.mp.Clone()
	// Swap the client's role for the provider-side switch: now the UPSIM is
	// the sub-infrastructure between sw1 and srv.
	if _, err := mp2.RemapComponent("t1", "sw1"); err != nil {
		t.Fatal(err)
	}
	res2, err := g.Generate(f.svc, mp2, "p2", Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range res2.NodeNames() {
		if n == "t1" {
			t.Error("t1 must not appear in the sw1 perspective")
		}
	}
	// Both diagrams coexist in the model.
	if _, ok := f.model.Diagram("p1"); !ok {
		t.Error("p1 diagram missing")
	}
	if _, ok := f.model.Diagram("p2"); !ok {
		t.Error("p2 diagram missing")
	}
}

func TestGenerateDisconnected(t *testing.T) {
	f := buildFixture(t)
	g, _ := NewGenerator(f.model, "infrastructure")
	mp := mapping.New()
	_ = mp.Add(mapping.Pair{AtomicService: "fetch", Requester: "iso", Provider: "srv"})
	_ = mp.Add(mapping.Pair{AtomicService: "deliver", Requester: "srv", Provider: "iso"})
	_, err := g.Generate(f.svc, mp, "disc", Options{})
	if err == nil || !strings.Contains(err.Error(), "no path") {
		t.Errorf("disconnected pair error = %v", err)
	}
	res, err := g.Generate(f.svc, mp, "disc2", Options{AllowDisconnected: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalPaths != 0 || res.Graph.NumNodes() != 0 {
		t.Errorf("partial UPSIM = %d paths, %d nodes", res.TotalPaths, res.Graph.NumNodes())
	}
}

func TestGenerateAlgorithmsAgree(t *testing.T) {
	f := buildFixture(t)
	g, _ := NewGenerator(f.model, "infrastructure")
	base, err := g.Generate(f.svc, f.mp, "a-rec", Options{Algorithm: AlgoRecursive})
	if err != nil {
		t.Fatal(err)
	}
	iter, err := g.Generate(f.svc, f.mp, "a-iter", Options{Algorithm: AlgoIterative})
	if err != nil {
		t.Fatal(err)
	}
	par, err := g.Generate(f.svc, f.mp, "a-par", Options{Algorithm: AlgoParallel, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range base.Services {
		if !pathdisc.Equal(base.Services[i].Paths, iter.Services[i].Paths) {
			t.Errorf("service %d: iterative differs", i)
		}
		if !pathdisc.Equal(base.Services[i].Paths, par.Services[i].Paths) {
			t.Errorf("service %d: parallel differs", i)
		}
	}
	// Same UPSIM node set in all variants.
	b, i, p := base.NodeNames(), iter.NodeNames(), par.NodeNames()
	for k := range b {
		if b[k] != i[k] || b[k] != p[k] {
			t.Fatalf("node sets differ: %v / %v / %v", b, i, p)
		}
	}
}

func TestGenerateShortestAblation(t *testing.T) {
	f := buildFixture(t)
	g, _ := NewGenerator(f.model, "infrastructure")
	full, err := g.Generate(f.svc, f.mp, "full", Options{})
	if err != nil {
		t.Fatal(err)
	}
	short, err := g.Generate(f.svc, f.mp, "short", Options{Algorithm: AlgoShortest, Merge: MergeTraversed})
	if err != nil {
		t.Fatal(err)
	}
	if short.TotalPaths != 2 {
		t.Errorf("shortest ablation paths = %d, want 2", short.TotalPaths)
	}
	if short.Graph.NumNodes() >= full.Graph.NumNodes() {
		t.Errorf("shortest UPSIM should be smaller: %d vs %d nodes",
			short.Graph.NumNodes(), full.Graph.NumNodes())
	}
}

func TestMergeSemantics(t *testing.T) {
	f := buildFixture(t)
	g, _ := NewGenerator(f.model, "infrastructure")
	// CollapseParallel drops the redundant core link from the traversed
	// edge set but the induced merge restores it from the topology.
	induced, err := g.Generate(f.svc, f.mp, "m-ind",
		Options{Merge: MergeInduced, Paths: pathdisc.Options{CollapseParallel: true}})
	if err != nil {
		t.Fatal(err)
	}
	traversed, err := g.Generate(f.svc, f.mp, "m-trav",
		Options{Merge: MergeTraversed, Paths: pathdisc.Options{CollapseParallel: true}})
	if err != nil {
		t.Fatal(err)
	}
	if induced.Graph.NumEdges() != 8 {
		t.Errorf("induced edges = %d, want 8", induced.Graph.NumEdges())
	}
	if traversed.Graph.NumEdges() != 7 {
		t.Errorf("traversed+collapsed edges = %d, want 7", traversed.Graph.NumEdges())
	}
}

func TestGeneratorErrors(t *testing.T) {
	f := buildFixture(t)
	if _, err := NewGenerator(nil, "x"); err == nil {
		t.Error("nil model should fail")
	}
	if _, err := NewGenerator(f.model, "ghost"); err == nil {
		t.Error("unknown diagram should fail")
	}
	g, err := NewGenerator(f.model, "infrastructure")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Generate(nil, f.mp, "x", Options{}); err == nil {
		t.Error("nil service should fail")
	}
	if _, err := g.Generate(f.svc, f.mp, "", Options{}); err == nil {
		t.Error("empty name should fail")
	}
	incomplete := mapping.New()
	_ = incomplete.Add(mapping.Pair{AtomicService: "fetch", Requester: "t1", Provider: "srv"})
	if _, err := g.Generate(f.svc, incomplete, "x", Options{}); err == nil {
		t.Error("incomplete mapping should fail")
	}
	dangling := mapping.New()
	_ = dangling.Add(mapping.Pair{AtomicService: "fetch", Requester: "ghost", Provider: "srv"})
	_ = dangling.Add(mapping.Pair{AtomicService: "deliver", Requester: "srv", Provider: "ghost"})
	if _, err := g.Generate(f.svc, dangling, "x", Options{}); err == nil {
		t.Error("dangling mapping reference should fail")
	}
	// Invalid model rejected at generator construction.
	bad := uml.NewModel("bad")
	badAct, _ := bad.NewActivity("broken")
	if _, err := badAct.AddAction("floating"); err != nil {
		t.Fatal(err)
	}
	bad.NewObjectDiagram("d")
	if _, err := NewGenerator(bad, "d"); err == nil {
		t.Error("invalid model should fail")
	}
}

func TestAlgorithmAndMergeStrings(t *testing.T) {
	for algo, want := range map[Algorithm]string{
		AlgoRecursive: "recursive-dfs", AlgoIterative: "iterative-dfs",
		AlgoParallel: "parallel-dfs", AlgoShortest: "shortest-path",
	} {
		if algo.String() != want {
			t.Errorf("%d.String() = %q", algo, algo.String())
		}
	}
	if !strings.Contains(Algorithm(9).String(), "Algorithm(") {
		t.Error("unknown algorithm fallback")
	}
	if MergeInduced.String() != "induced" || MergeTraversed.String() != "traversed" {
		t.Error("merge semantics names wrong")
	}
	if !strings.Contains(MergeSemantics(9).String(), "MergeSemantics(") {
		t.Error("unknown merge fallback")
	}
}

func TestGenerateNameCollision(t *testing.T) {
	f := buildFixture(t)
	g, err := NewGenerator(f.model, "infrastructure")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Generate(f.svc, f.mp, "dup", Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Generate(f.svc, f.mp, "dup", Options{}); err == nil {
		t.Error("reusing a UPSIM name must fail instead of shadowing the diagram")
	}
	// Colliding with the infrastructure diagram itself is also rejected.
	if _, err := g.Generate(f.svc, f.mp, "infrastructure", Options{}); err == nil {
		t.Error("UPSIM named like the infrastructure diagram must fail")
	}
}

// TestGenerateContextSpans verifies the tentpole tracing contract: a traced
// generation records one span per pipeline stage (Steps 5–8), with the
// per-atomic-service discovery spans nested under Step 7.
func TestGenerateContextSpans(t *testing.T) {
	f := buildFixture(t)
	ctx, root := obs.StartSpan(context.Background(), "generate")
	g, err := NewGeneratorContext(ctx, f.model, "infrastructure")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.GenerateContext(ctx, f.svc, f.mp, "traced", Options{}); err != nil {
		t.Fatal(err)
	}
	root.End()
	if err := root.WellFormed(); err != nil {
		t.Error(err)
	}
	byName := map[string]*obs.Span{}
	root.Walk(func(sp *obs.Span, _ int) { byName[sp.Name()] = sp })
	for _, stage := range []string{"step5.import_uml", "step6.import_mapping", "step7.pathdisc", "step8.merge"} {
		if byName[stage] == nil {
			t.Errorf("stage span %q missing from %v", stage, root.Render())
		}
	}
	step7 := byName["step7.pathdisc"]
	if step7 == nil {
		t.Fatal("no step7 span")
	}
	kids := step7.Children()
	if len(kids) != 2 { // fetch and deliver atomic services
		t.Fatalf("step7 children = %d, want 2 (%s)", len(kids), root.Render())
	}
	attrs := map[string]any{}
	for _, a := range kids[0].Attrs() {
		attrs[a.Key] = a.Value
	}
	for _, k := range []string{"paths", "edge_visits", "nodes_visited", "max_stack"} {
		if _, ok := attrs[k]; !ok {
			t.Errorf("discovery span lacks attr %q: %v", k, attrs)
		}
	}
	// Untraced generation still works (plain Generate, background context).
	if _, err := g.Generate(f.svc, f.mp, "untraced", Options{}); err != nil {
		t.Fatal(err)
	}
}
