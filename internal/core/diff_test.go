package core

import (
	"strings"
	"testing"
)

func TestCompare(t *testing.T) {
	f := buildFixture(t)
	g, err := NewGenerator(f.model, "infrastructure")
	if err != nil {
		t.Fatal(err)
	}
	r1, err := g.Generate(f.svc, f.mp, "d1", Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Same mapping again: identical UPSIM.
	r2, err := g.Generate(f.svc, f.mp, "d2", Options{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := Compare(r1, r2)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Empty() {
		t.Errorf("identical UPSIMs diff = %s", d)
	}
	if d.String() != "no change" {
		t.Errorf("String = %q", d.String())
	}
	if len(d.KeptNodes) != r1.Graph.NumNodes() {
		t.Errorf("kept = %d, want %d", len(d.KeptNodes), r1.Graph.NumNodes())
	}

	// Perspective change: requester moves from t1 to sw1 — t1 leaves the
	// perceived infrastructure.
	mp2 := f.mp.Clone()
	if _, err := mp2.RemapComponent("t1", "sw1"); err != nil {
		t.Fatal(err)
	}
	r3, err := g.Generate(f.svc, mp2, "d3", Options{})
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Compare(r1, r3)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Empty() {
		t.Fatal("perspective change must produce a diff")
	}
	if len(d2.RemovedNodes) != 1 || d2.RemovedNodes[0] != "t1" {
		t.Errorf("removed = %v, want [t1]", d2.RemovedNodes)
	}
	if len(d2.AddedNodes) != 0 {
		t.Errorf("added = %v, want none", d2.AddedNodes)
	}
	if len(d2.RemovedLinks) == 0 {
		t.Error("t1's uplink must be removed")
	}
	if !strings.Contains(d2.String(), "links") {
		t.Errorf("String = %q", d2.String())
	}

	// Reversed comparison mirrors the sets.
	d3, err := Compare(r3, r1)
	if err != nil {
		t.Fatal(err)
	}
	if len(d3.AddedNodes) != 1 || d3.AddedNodes[0] != "t1" {
		t.Errorf("reverse added = %v", d3.AddedNodes)
	}
}

func TestCompareErrors(t *testing.T) {
	f := buildFixture(t)
	g, _ := NewGenerator(f.model, "infrastructure")
	r, err := g.Generate(f.svc, f.mp, "x", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compare(nil, r); err == nil {
		t.Error("nil from should fail")
	}
	if _, err := Compare(r, nil); err == nil {
		t.Error("nil to should fail")
	}
}
