// Package workspace implements the on-disk project layout that stands in
// for the paper's Eclipse workspace: one directory holding the UML model,
// any number of service mappings (one XML file per user perspective, the
// artefact that changes between perspectives) and optional VTCL pattern
// files:
//
//	<dir>/model.xml            the UML model (profiles, classes, diagrams,
//	                           activities)
//	<dir>/mappings/<name>.xml  Figure 3 service mappings
//	<dir>/patterns/<name>.vtcl declarative model queries
//
// Load reads and validates everything eagerly so that a broken artefact is
// reported at open time with its file name, not deep inside a generation
// run.
package workspace

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"upsim/internal/mapping"
	"upsim/internal/uml"
	"upsim/internal/vpm"
	"upsim/internal/vtcl"
)

// Layout constants.
const (
	ModelFile   = "model.xml"
	MappingsDir = "mappings"
	PatternsDir = "patterns"
)

// Workspace is a loaded project directory.
type Workspace struct {
	Dir      string
	Model    *uml.Model
	mappings map[string]*mapping.Mapping
	patterns map[string][]*vpm.Pattern
}

// Init creates the directory layout and writes the model. The directory may
// exist but must not already contain a model.
func Init(dir string, m *uml.Model) (*Workspace, error) {
	if m == nil {
		return nil, fmt.Errorf("workspace: nil model")
	}
	if err := os.MkdirAll(filepath.Join(dir, MappingsDir), 0o755); err != nil {
		return nil, fmt.Errorf("workspace: %w", err)
	}
	if err := os.MkdirAll(filepath.Join(dir, PatternsDir), 0o755); err != nil {
		return nil, fmt.Errorf("workspace: %w", err)
	}
	modelPath := filepath.Join(dir, ModelFile)
	if _, err := os.Stat(modelPath); err == nil {
		return nil, fmt.Errorf("workspace: %s already exists", modelPath)
	}
	w := &Workspace{
		Dir:      dir,
		Model:    m,
		mappings: make(map[string]*mapping.Mapping),
		patterns: make(map[string][]*vpm.Pattern),
	}
	if err := w.SaveModel(); err != nil {
		return nil, err
	}
	return w, nil
}

// Load opens a workspace directory, reading and validating the model, every
// mapping and every pattern file.
func Load(dir string) (*Workspace, error) {
	f, err := os.Open(filepath.Join(dir, ModelFile))
	if err != nil {
		return nil, fmt.Errorf("workspace: %w", err)
	}
	defer f.Close()
	m, err := uml.Decode(f)
	if err != nil {
		return nil, fmt.Errorf("workspace: %s: %w", ModelFile, err)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("workspace: %s: %w", ModelFile, err)
	}
	w := &Workspace{
		Dir:      dir,
		Model:    m,
		mappings: make(map[string]*mapping.Mapping),
		patterns: make(map[string][]*vpm.Pattern),
	}
	if err := w.loadDir(MappingsDir, ".xml", func(name string, data *os.File) error {
		mp, err := mapping.Parse(data)
		if err != nil {
			return err
		}
		w.mappings[name] = mp
		return nil
	}); err != nil {
		return nil, err
	}
	if err := w.loadDir(PatternsDir, ".vtcl", func(name string, data *os.File) error {
		src, err := os.ReadFile(data.Name())
		if err != nil {
			return err
		}
		pats, err := vtcl.Parse(string(src))
		if err != nil {
			return err
		}
		w.patterns[name] = pats
		return nil
	}); err != nil {
		return nil, err
	}
	return w, nil
}

func (w *Workspace) loadDir(sub, ext string, load func(name string, f *os.File) error) error {
	dir := filepath.Join(w.Dir, sub)
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil // optional directory
	}
	if err != nil {
		return fmt.Errorf("workspace: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ext) {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := os.Open(path)
		if err != nil {
			return fmt.Errorf("workspace: %w", err)
		}
		name := strings.TrimSuffix(e.Name(), ext)
		loadErr := load(name, f)
		f.Close()
		if loadErr != nil {
			return fmt.Errorf("workspace: %s: %w", path, loadErr)
		}
	}
	return nil
}

// SaveModel writes the model back to model.xml.
func (w *Workspace) SaveModel() error {
	f, err := os.Create(filepath.Join(w.Dir, ModelFile))
	if err != nil {
		return fmt.Errorf("workspace: %w", err)
	}
	defer f.Close()
	if err := uml.Encode(f, w.Model); err != nil {
		return err
	}
	return f.Close()
}

// SaveMapping stores a mapping under mappings/<name>.xml and registers it.
func (w *Workspace) SaveMapping(name string, mp *mapping.Mapping) error {
	if name == "" || strings.ContainsAny(name, "/\\") {
		return fmt.Errorf("workspace: invalid mapping name %q", name)
	}
	if mp == nil {
		return fmt.Errorf("workspace: nil mapping")
	}
	path := filepath.Join(w.Dir, MappingsDir, name+".xml")
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("workspace: %w", err)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("workspace: %w", err)
	}
	defer f.Close()
	if err := mp.Encode(f); err != nil {
		return err
	}
	w.mappings[name] = mp
	return f.Close()
}

// Mapping returns a loaded mapping by name.
func (w *Workspace) Mapping(name string) (*mapping.Mapping, bool) {
	mp, ok := w.mappings[name]
	return mp, ok
}

// MappingNames returns the sorted loaded mapping names.
func (w *Workspace) MappingNames() []string {
	out := make([]string, 0, len(w.mappings))
	for n := range w.mappings {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Patterns returns the parsed patterns of one .vtcl file.
func (w *Workspace) Patterns(name string) ([]*vpm.Pattern, bool) {
	p, ok := w.patterns[name]
	return p, ok
}

// PatternFileNames returns the sorted loaded pattern file names.
func (w *Workspace) PatternFileNames() []string {
	out := make([]string, 0, len(w.patterns))
	for n := range w.patterns {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Summary renders a one-line inventory of the workspace.
func (w *Workspace) Summary() string {
	return fmt.Sprintf("%s: %s; %d mappings %v; %d pattern files %v",
		w.Dir, uml.Summary(w.Model),
		len(w.mappings), w.MappingNames(),
		len(w.patterns), w.PatternFileNames())
}
