package workspace

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"upsim/internal/casestudy"
	"upsim/internal/core"
	"upsim/internal/service"
)

func initCaseStudy(t *testing.T) (*Workspace, string) {
	t.Helper()
	dir := t.TempDir()
	m, err := casestudy.BuildModel()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := casestudy.PrintingService(m); err != nil {
		t.Fatal(err)
	}
	w, err := Init(dir, m)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.SaveMapping("t1-p2", casestudy.TableIMapping()); err != nil {
		t.Fatal(err)
	}
	if err := w.SaveMapping("t15-p3", casestudy.T15P3Mapping()); err != nil {
		t.Fatal(err)
	}
	patterns := filepath.Join(dir, PatternsDir, "q.vtcl")
	src := `pattern clients(C) = { below(C, "models.usi.diagrams.infrastructure"); }`
	if err := os.WriteFile(patterns, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return w, dir
}

func TestInitAndLoadRoundTrip(t *testing.T) {
	_, dir := initCaseStudy(t)
	w, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if w.Model.Name() != casestudy.ModelName {
		t.Errorf("model name = %q", w.Model.Name())
	}
	if got := w.MappingNames(); len(got) != 2 || got[0] != "t1-p2" || got[1] != "t15-p3" {
		t.Errorf("mappings = %v", got)
	}
	mp, ok := w.Mapping("t1-p2")
	if !ok || mp.Len() != 5 {
		t.Fatalf("t1-p2 mapping = %v, %v", mp, ok)
	}
	if got := w.PatternFileNames(); len(got) != 1 || got[0] != "q" {
		t.Errorf("pattern files = %v", got)
	}
	pats, ok := w.Patterns("q")
	if !ok || len(pats) != 1 || pats[0].Name != "clients" {
		t.Errorf("patterns = %v, %v", pats, ok)
	}
	s := w.Summary()
	for _, want := range []string{"t1-p2", "t15-p3", `model "usi"`} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q: %s", want, s)
		}
	}
}

func TestWorkspaceDrivesGeneration(t *testing.T) {
	// The full loop: load from disk, generate the Figure 11 UPSIM.
	_, dir := initCaseStudy(t)
	w, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	act, ok := w.Model.Activity(casestudy.PrintingServiceName)
	if !ok {
		t.Fatal("printing activity missing")
	}
	svc, err := service.FromActivity(act)
	if err != nil {
		t.Fatal(err)
	}
	mp, _ := w.Mapping("t1-p2")
	gen, err := core.NewGenerator(w.Model, casestudy.DiagramName)
	if err != nil {
		t.Fatal(err)
	}
	res, err := gen.Generate(svc, mp, "fig11", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := res.NodeNames()
	if len(got) != len(casestudy.Figure11Nodes) {
		t.Fatalf("UPSIM = %v", got)
	}
	// Persist the model including the generated UPSIM, reload, verify.
	if err := w.SaveModel(); err != nil {
		t.Fatal(err)
	}
	w2, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := w2.Model.Diagram("fig11"); !ok {
		t.Error("generated UPSIM lost after save/load")
	}
}

func TestInitErrors(t *testing.T) {
	dir := t.TempDir()
	m, _ := casestudy.BuildModel()
	if _, err := Init(dir, nil); err == nil {
		t.Error("nil model should fail")
	}
	if _, err := Init(dir, m); err != nil {
		t.Fatal(err)
	}
	if _, err := Init(dir, m); err == nil {
		t.Error("double init should fail")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(t.TempDir()); err == nil {
		t.Error("empty dir should fail (no model)")
	}
	// Corrupt model.
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, ModelFile), []byte("<broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil {
		t.Error("broken model should fail")
	}
	// Corrupt mapping named in the error.
	_, dir2 := initCaseStudy(t)
	bad := filepath.Join(dir2, MappingsDir, "bad.xml")
	if err := os.WriteFile(bad, []byte("<broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir2); err == nil || !strings.Contains(err.Error(), "bad.xml") {
		t.Errorf("broken mapping error = %v", err)
	}
	if err := os.Remove(bad); err != nil {
		t.Fatal(err)
	}
	// Corrupt pattern named in the error.
	badPat := filepath.Join(dir2, PatternsDir, "bad.vtcl")
	if err := os.WriteFile(badPat, []byte("pattern ???"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir2); err == nil || !strings.Contains(err.Error(), "bad.vtcl") {
		t.Errorf("broken pattern error = %v", err)
	}
}

func TestSaveMappingValidation(t *testing.T) {
	w, _ := initCaseStudy(t)
	if err := w.SaveMapping("", casestudy.TableIMapping()); err == nil {
		t.Error("empty name should fail")
	}
	if err := w.SaveMapping("a/b", casestudy.TableIMapping()); err == nil {
		t.Error("path separator should fail")
	}
	if err := w.SaveMapping("x", nil); err == nil {
		t.Error("nil mapping should fail")
	}
	if _, ok := w.Mapping("ghost"); ok {
		t.Error("unknown mapping should be absent")
	}
}
