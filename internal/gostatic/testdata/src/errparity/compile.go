// Package errparity is an upsimvet rule fixture: a mock compiled-kernel
// package (marked by this file's name, compile.go) whose legacy twin repeats
// one error format literal and shares another through a constant.
package errparity

import "fmt"

func compiledValidate(name string) error {
	return fmt.Errorf("errparity: component %q missing", name) // want errparity
}

func compiledShared(name string) error {
	return fmt.Errorf(errFmtShared, name)
}
