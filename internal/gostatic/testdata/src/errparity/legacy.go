package errparity

import "fmt"

// errFmtShared is the negative control: the shared-constant form the rule
// demands never fires.
const errFmtShared = "errparity: service %q missing"

func legacyValidate(name string) error {
	return fmt.Errorf("errparity: component %q missing", name)
}

func legacyShared(name string) error {
	return fmt.Errorf(errFmtShared, name)
}
