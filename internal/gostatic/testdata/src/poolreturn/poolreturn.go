// Package poolreturn is an upsimvet rule fixture: sync.Pool acquisitions
// that leak, balance, and transfer ownership, both directly and through
// get/put wrapper pairs.
package poolreturn

import "sync"

type scratch struct{ buf []byte }

type kernel struct{ pool sync.Pool }

// getScratch acquires in a return statement: ownership transfer, clean.
func (k *kernel) getScratch() *scratch { return k.pool.Get().(*scratch) }

func (k *kernel) putScratch(s *scratch) { k.pool.Put(s) }

func (k *kernel) leakDirect() {
	s := k.pool.Get().(*scratch) // want poolreturn
	s.buf = s.buf[:0]
}

func (k *kernel) leakWrapper() {
	s := k.getScratch() // want poolreturn
	s.buf = s.buf[:0]
}

// balanced is the negative control: acquire via the wrapper, release via its
// paired releaser.
func (k *kernel) balanced() {
	s := k.getScratch()
	defer k.putScratch(s)
	s.buf = append(s.buf[:0], 1)
}

// handsOff returns the acquired value: its caller owns the Put.
func (k *kernel) handsOff() *scratch {
	s := k.getScratch()
	s.buf = s.buf[:0]
	return s
}
