// Package hotalloc is an upsimvet rule fixture. Every line that must produce
// a diagnostic carries a `// want <rule>` marker consumed by the rule tests;
// everything else must stay clean.
package hotalloc

import "fmt"

//upsim:hotpath
func sprintfInHot(n int) string {
	return fmt.Sprintf("n=%d", n) // want hotalloc
}

//upsim:hotpath
func concatInLoop(parts []string) string {
	s := ""
	for _, p := range parts {
		s = s + "," // want hotalloc
		s = s + p
	}
	return s
}

//upsim:hotpath
func appendNoCap(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x) // want hotalloc
	}
	return out
}

// appendPrealloc is the negative control: annotated, appends in a loop, but
// the destination carries capacity, so the rule stays quiet.
//
//upsim:hotpath
func appendPrealloc(xs []int) []int {
	out := make([]int, 0, len(xs))
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

// coldSprintf is unannotated: formatting is fine off the hot path.
func coldSprintf(n int) string {
	return fmt.Sprintf("n=%d", n)
}
