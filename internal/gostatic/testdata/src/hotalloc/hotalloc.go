// Package hotalloc is an upsimvet rule fixture. Every line that must produce
// a diagnostic carries a `// want <rule>` marker consumed by the rule tests;
// everything else must stay clean.
package hotalloc

import "fmt"

//upsim:hotpath
func sprintfInHot(n int) string {
	return fmt.Sprintf("n=%d", n) // want hotalloc
}

//upsim:hotpath
func concatInLoop(parts []string) string {
	s := ""
	for _, p := range parts {
		s = s + "," // want hotalloc
		s = s + p
	}
	return s
}

//upsim:hotpath
func appendNoCap(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x) // want hotalloc
	}
	return out
}

// appendPrealloc is the negative control: annotated, appends in a loop, but
// the destination carries capacity, so the rule stays quiet.
//
//upsim:hotpath
func appendPrealloc(xs []int) []int {
	out := make([]int, 0, len(xs))
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

// coldSprintf is unannotated: formatting is fine off the hot path.
func coldSprintf(n int) string {
	return fmt.Sprintf("n=%d", n)
}

//upsim:hotpath
func stringKeyedMake(keys []string) int {
	seen := make(map[string]bool, len(keys)) // want hotalloc
	for _, k := range keys {
		seen[k] = true
	}
	return len(seen)
}

//upsim:hotpath
func stringKeyedLiteral() map[string]int {
	return map[string]int{"a": 1} // want hotalloc
}

// intKeyedMake is the negative control: only string keys force per-lookup
// conversions, so dense-id maps pass.
//
//upsim:hotpath
func intKeyedMake(ids []int32) map[int32]bool {
	seen := make(map[int32]bool, len(ids))
	for _, id := range ids {
		seen[id] = true
	}
	return seen
}

// coldStringMap is unannotated: map construction is fine off the hot path.
func coldStringMap() map[string]int {
	return map[string]int{"a": 1}
}
