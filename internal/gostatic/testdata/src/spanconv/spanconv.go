// Package spanconv is an upsimvet rule fixture: spans started and leaked,
// discarded, ended, and handed off.
package spanconv

import "context"

type span struct{}

func (span) End() {}

// StartSpan mimics the obs facade; the rule matches on the callee name only.
func StartSpan(ctx context.Context, name string) (context.Context, span) {
	_ = name
	return ctx, span{}
}

func leaks(ctx context.Context) {
	ctx, sp := StartSpan(ctx, "leaks") // want spanconv
	_ = ctx
	_ = sp
}

func discards(ctx context.Context) {
	ctx, _ = StartSpan(ctx, "discards") // want spanconv
	_ = ctx
}

// deferred is the negative control for the function-scoped convention.
func deferred(ctx context.Context) {
	ctx, sp := StartSpan(ctx, "deferred")
	defer sp.End()
	_ = ctx
}

// midway ends its span mid-function, pipeline-style: also fine.
func midway(ctx context.Context) {
	ctx, sp := StartSpan(ctx, "midway")
	sp.End()
	_ = ctx
}

// handsOff transfers ownership by returning the span.
func handsOff(ctx context.Context) (context.Context, span) {
	ctx, sp := StartSpan(ctx, "handsOff")
	return ctx, sp
}
