// Package jsontag is an upsimvet rule fixture: a JSON payload struct with
// one untagged exported field, plus the out-of-scope shapes the rule must
// leave alone.
package jsontag

type payload struct {
	ID    string `json:"id"`
	Count int    // want jsontag
	note  string
}

// plain has no json tags at all: a pure in-memory type, out of scope.
type plain struct {
	Name string
	Age  int
}

// excluded opts a field out explicitly — a decision, not an omission.
type excluded struct {
	ID     string `json:"id"`
	Secret string `json:"-"`
}

var _ = payload{note: ""}
var _ = plain{}
var _ = excluded{}
