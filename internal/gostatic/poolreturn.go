package gostatic

import (
	"fmt"
	"go/ast"
	"sort"
	"strings"
)

// poolreturnRule enforces sync.Pool Get/Put balance in kernel code. The
// compiled kernels amortise their per-search scratch (visited bitsets, bump
// arenas) through sync.Pools; a Get without a Put does not leak memory, but
// it silently degrades the pool to an allocator — every "pooled" acquisition
// becomes a fresh allocation and the allocation-free warm path regresses
// without any test failing.
//
// The rule recognises two layers:
//
//   - Direct pool access: a call to <chain>.Get() where the selector chain
//     names a pool (contains "pool", e.g. c.pool.Get) must be matched by a
//     <chain>.Put(...) in the same function, or the acquired value must be
//     returned (ownership transfer, as in the getScratch/getArena wrappers).
//   - Wrapper pairs: a function getX that acquires from a pool is paired
//     with the releaser putX by name. Every caller of getX must call putX in
//     the same function (deferred or direct) or return the acquired value to
//     its own caller — the pattern servicePathBits uses to hand its arena to
//     ServicePathSets.
type poolreturnRule struct{}

func (poolreturnRule) ID() string         { return "poolreturn" }
func (poolreturnRule) Severity() Severity { return SeverityError }
func (poolreturnRule) Doc() string {
	return "every sync.Pool Get (direct or via a get* wrapper) needs a matching Put on the function's exit paths"
}

// poolChain reports whether a dotted callee chain (c.pool.Get) goes through
// a pool: some path element names it, case-insensitively.
func poolChain(name string) bool {
	return strings.Contains(strings.ToLower(name), "pool.")
}

func (r poolreturnRule) Check(p *Package) []Diagnostic {
	// Pass 1: classify wrapper functions — acquirers call pool Get,
	// releasers call pool Put.
	acquirers := make(map[string]bool)
	releasers := make(map[string]bool)
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				name := calleeName(call.Fun)
				switch {
				case strings.HasSuffix(name, ".Get") && poolChain(name):
					acquirers[fd.Name.Name] = true
				case strings.HasSuffix(name, ".Put") && poolChain(name):
					releasers[fd.Name.Name] = true
				}
				return true
			})
		}
	}
	// Pair getX -> putX by name.
	paired := make(map[string]string)
	for a := range acquirers {
		if rest, ok := strings.CutPrefix(a, "get"); ok {
			if rel := "put" + rest; releasers[rel] {
				paired[a] = rel
			}
		}
	}
	var out []Diagnostic
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			out = append(out, r.checkFunc(p, fd, paired)...)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].Line < out[j].Line
	})
	return out
}

func (r poolreturnRule) checkFunc(p *Package, fd *ast.FuncDecl, paired map[string]string) []Diagnostic {
	var out []Diagnostic
	body := fd.Body

	// hasPut reports a direct pool Put anywhere in the function.
	hasPut := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if name := calleeName(call.Fun); strings.HasSuffix(name, ".Put") && poolChain(name) {
				hasPut = true
			}
		}
		return !hasPut
	})

	// callsNamed reports any call whose base name is target.
	callsNamed := func(target string) bool {
		found := false
		ast.Inspect(body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok && calleeBase(call.Fun) == target {
				found = true
			}
			return !found
		})
		return found
	}

	// inReturn reports whether pos lies inside a return statement.
	inReturn := func(pos ast.Node) bool {
		found := false
		ast.Inspect(body, func(n ast.Node) bool {
			if ret, ok := n.(*ast.ReturnStmt); ok {
				if ret.Pos() <= pos.Pos() && pos.Pos() < ret.End() {
					found = true
				}
			}
			return !found
		})
		return found
	}

	// unwrap strips parens and type assertions: `cs.pool.Get().(*bitArena)`
	// binds the Get call through a TypeAssertExpr.
	var unwrap func(e ast.Expr) ast.Expr
	unwrap = func(e ast.Expr) ast.Expr {
		switch v := e.(type) {
		case *ast.ParenExpr:
			return unwrap(v.X)
		case *ast.TypeAssertExpr:
			return unwrap(v.X)
		}
		return e
	}

	// assignedIdent returns the first non-blank identifier a call's result is
	// bound to, or "".
	assignedIdent := func(call *ast.CallExpr) string {
		name := ""
		ast.Inspect(body, func(n ast.Node) bool {
			assign, ok := n.(*ast.AssignStmt)
			if !ok || len(assign.Rhs) != 1 || unwrap(assign.Rhs[0]) != ast.Expr(call) {
				return name == ""
			}
			for _, lhs := range assign.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
					name = id.Name
					break
				}
			}
			return false
		})
		return name
	}

	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := calleeName(call.Fun)
		switch {
		case strings.HasSuffix(name, ".Get") && poolChain(name):
			if hasPut || inReturn(call) {
				return true
			}
			if v := assignedIdent(call); v != "" && identInReturns(body, v) {
				return true
			}
			out = append(out, p.diag(r, call.Pos(),
				fmt.Sprintf("%s acquires from a pool via %s but never calls Put and does not return the value", fd.Name.Name, name),
				"add a (deferred) Put on every exit path or return the acquired value"))
		default:
			base := calleeBase(call.Fun)
			releaser, isAcquirer := paired[base]
			if !isAcquirer || fd.Name.Name == base {
				return true
			}
			if callsNamed(releaser) || inReturn(call) {
				return true
			}
			if v := assignedIdent(call); v != "" && identInReturns(body, v) {
				return true
			}
			out = append(out, p.diag(r, call.Pos(),
				fmt.Sprintf("%s acquires pooled scratch via %s but never calls %s and does not return it", fd.Name.Name, base, releaser),
				fmt.Sprintf("add `defer %s(...)` after the %s call or hand the value to the caller", releaser, base)))
		}
		return true
	})
	return out
}
