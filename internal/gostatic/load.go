package gostatic

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Load parses the packages named by the go-tool-style patterns: a directory
// path loads that one package, a path ending in "/..." loads every package
// under it. Test files (_test.go) are excluded — the invariants the rules
// enforce are production-code contracts — and, like the go tool, directories
// named "testdata" or "vendor" and directories whose name starts with "." or
// "_" are never walked. All returned packages share one token.FileSet so
// positions are comparable across the run.
func Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs, err := expand(patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var pkgs []*Package
	for _, dir := range dirs {
		loaded, err := loadDir(fset, dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, loaded...)
	}
	if len(pkgs) == 0 {
		return nil, fmt.Errorf("gostatic: no Go packages match %v", patterns)
	}
	return pkgs, nil
}

// expand resolves the patterns into a sorted, de-duplicated directory list.
func expand(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		if rest, ok := strings.CutSuffix(pat, "..."); ok {
			root := filepath.Clean(rest)
			if rest == "" {
				root = "."
			}
			err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				if path != root && skipDir(d.Name()) {
					return filepath.SkipDir
				}
				add(path)
				return nil
			})
			if err != nil {
				return nil, fmt.Errorf("gostatic: walking %q: %w", pat, err)
			}
			continue
		}
		info, err := os.Stat(pat)
		if err != nil {
			return nil, fmt.Errorf("gostatic: %w", err)
		}
		if !info.IsDir() {
			return nil, fmt.Errorf("gostatic: pattern %q is not a directory", pat)
		}
		add(filepath.Clean(pat))
	}
	sort.Strings(dirs)
	return dirs, nil
}

// skipDir reports whether a walked directory is outside the go tool's
// package space.
func skipDir(name string) bool {
	return name == "testdata" || name == "vendor" ||
		strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")
}

// loadDir parses one directory's non-test Go files, grouped by package
// clause (a directory normally holds exactly one package once test files are
// excluded). Directories without Go files load as nothing.
func loadDir(fset *token.FileSet, dir string) ([]*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("gostatic: %w", err)
	}
	byName := make(map[string]*Package)
	var order []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		path := filepath.Join(dir, name)
		file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("gostatic: %w", err)
		}
		pkgName := file.Name.Name
		p, ok := byName[pkgName]
		if !ok {
			p = &Package{Name: pkgName, Dir: dir, Fset: fset}
			byName[pkgName] = p
			order = append(order, pkgName)
		}
		p.Files = append(p.Files, file)
		p.Filenames = append(p.Filenames, path)
	}
	var pkgs []*Package
	for _, n := range order {
		pkgs = append(pkgs, byName[n])
	}
	return pkgs, nil
}

// file returns the index of f's filename in the package, or "" when unknown.
func (p *Package) filename(f *ast.File) string {
	for i, pf := range p.Files {
		if pf == f {
			return p.Filenames[i]
		}
	}
	return ""
}
