package gostatic

import (
	"encoding/json"
	"fmt"
	"io"
)

// Report aggregates the findings of one analyzer run. The JSON shape is
// stable and round-trips through DecodeReport — the same contract as
// lint.Report, so CI pipelines consume both analyzers' reports with the same
// tooling.
type Report struct {
	// Diagnostics are the findings, errors first, position-sorted within a
	// severity class.
	Diagnostics []Diagnostic `json:"diagnostics"`
	// Errors, Warnings and Infos count the diagnostics per severity.
	Errors   int `json:"errors"`
	Warnings int `json:"warnings"`
	Infos    int `json:"infos"`
	// RulesRun is the number of rules executed.
	RulesRun int `json:"rulesRun"`
	// Packages is the number of packages analysed.
	Packages int `json:"packages"`
}

// count recomputes the per-severity tallies from Diagnostics.
func (r *Report) count() {
	r.Errors, r.Warnings, r.Infos = 0, 0, 0
	for _, d := range r.Diagnostics {
		switch d.Severity {
		case SeverityError:
			r.Errors++
		case SeverityWarning:
			r.Warnings++
		case SeverityInfo:
			r.Infos++
		}
	}
}

// Clean reports whether the run produced no diagnostics at all.
func (r *Report) Clean() bool { return len(r.Diagnostics) == 0 }

// HasErrors reports whether any error-severity diagnostic was emitted.
func (r *Report) HasErrors() bool { return r.Errors > 0 }

// Summary renders the one-line tally, e.g. "2 errors, 1 warning, 0 infos
// (5 rules, 23 packages)".
func (r *Report) Summary() string {
	plural := func(n int, word string) string {
		if n == 1 {
			return fmt.Sprintf("%d %s", n, word)
		}
		return fmt.Sprintf("%d %ss", n, word)
	}
	return fmt.Sprintf("%s, %s, %s (%d rules, %s)",
		plural(r.Errors, "error"), plural(r.Warnings, "warning"), plural(r.Infos, "info"),
		r.RulesRun, plural(r.Packages, "package"))
}

// Render writes the human-readable report: one compiler-style line per
// diagnostic followed by the summary line.
func (r *Report) Render(w io.Writer) error {
	for _, d := range r.Diagnostics {
		if _, err := fmt.Fprintln(w, d.String()); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "upsimvet:", r.Summary())
	return err
}

// EncodeJSON writes the report as indented JSON.
func (r *Report) EncodeJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return fmt.Errorf("gostatic: encode report: %w", err)
	}
	return nil
}

// DecodeReport reads a report previously written by EncodeJSON, recomputing
// the severity tallies from the decoded diagnostics so a hand-edited count
// cannot disagree with the payload.
func DecodeReport(rd io.Reader) (*Report, error) {
	var r Report
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("gostatic: decode report: %w", err)
	}
	r.count()
	return &r, nil
}
