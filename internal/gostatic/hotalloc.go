package gostatic

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// HotPathDirective is the annotation that opts a function into the hotalloc
// rule. It is a directive comment (no space after //, like //go:noinline)
// placed in the comment group directly above the function declaration;
// anything after the directive name is free-text rationale:
//
//	//upsim:hotpath per-expansion inner loop of the CSR DFS
//	func (q *csrSearch) rec(cur int32) bool { ... }
//
// gofmt preserves directive comments verbatim, so the annotation survives
// formatting.
const HotPathDirective = "//upsim:hotpath"

// hotallocRule enforces the allocation-free warm-path contract on functions
// annotated //upsim:hotpath — the compiled kernels' inner loops, whose whole
// reason to exist is running without per-expansion allocation (ROADMAP
// "allocation-free warm path"; DESIGN §9–10). Three allocation shapes are
// banned:
//
//   - fmt.Sprintf / fmt.Errorf / fmt.Sprint / fmt.Sprintln / fmt.Appendf
//     calls — formatting allocates and reflects, never acceptable per
//     expansion (error paths hoist their format work to cold callers).
//   - string concatenation inside a loop where an operand is a string
//     literal — each + builds a fresh string.
//   - append inside a loop to a slice that provably starts with no capacity
//     (`var s []T`, `s := []T{}`, `T(nil)`, `make([]T, 0)`) — growth
//     reallocates log-many times; preallocate or reuse pooled scratch.
//   - map-with-string-key construction (`make(map[string]...)` or a
//     `map[string]T{...}` literal) anywhere in the function — building the
//     map allocates, and string keys force per-lookup conversions the moment
//     the key is assembled from bytes; intern keys as dense ids and index a
//     slice, or hoist the map to pooled state (the packed memo keys of
//     DESIGN §14 exist because of exactly this shape).
//
// The rule is syntactic: appends to struct fields (pooled scratch, arenas)
// and to locals created by make-with-capacity pass.
type hotallocRule struct{}

func (hotallocRule) ID() string         { return "hotalloc" }
func (hotallocRule) Severity() Severity { return SeverityError }
func (hotallocRule) Doc() string {
	return "//upsim:hotpath functions must not format strings, grow unpreallocated slices in loops, or construct string-keyed maps"
}

// isStringKeyedMap reports whether t is a `map[string]...` type expression.
func isStringKeyedMap(t ast.Expr) bool {
	mt, ok := t.(*ast.MapType)
	if !ok {
		return false
	}
	id, ok := mt.Key.(*ast.Ident)
	return ok && id.Name == "string"
}

// isHotPath reports whether the function's doc comment carries the
// //upsim:hotpath directive.
func isHotPath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == HotPathDirective || strings.HasPrefix(c.Text, HotPathDirective+" ") {
			return true
		}
	}
	return false
}

// bannedFmt is the set of allocating fmt formatters banned on hot paths.
var bannedFmt = map[string]bool{
	"fmt.Sprintf":  true,
	"fmt.Errorf":   true,
	"fmt.Sprint":   true,
	"fmt.Sprintln": true,
	"fmt.Appendf":  true,
}

func (r hotallocRule) Check(p *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotPath(fd) {
				continue
			}
			out = append(out, r.checkFunc(p, fd)...)
		}
	}
	return out
}

func (r hotallocRule) checkFunc(p *Package, fd *ast.FuncDecl) []Diagnostic {
	var out []Diagnostic
	loops := loopRanges(fd.Body)
	growable := growableLocals(fd.Body)
	name := fd.Name.Name
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.CallExpr:
			if callee := calleeName(v.Fun); bannedFmt[callee] {
				out = append(out, p.diag(r, v.Pos(),
					fmt.Sprintf("hot path %s calls %s", name, callee),
					"hoist the formatting to a cold caller or a shared constant"))
			}
			if calleeBase(v.Fun) == "make" && len(v.Args) > 0 && isStringKeyedMap(v.Args[0]) {
				out = append(out, p.diag(r, v.Pos(),
					fmt.Sprintf("hot path %s constructs a string-keyed map", name),
					"intern keys as dense ids and index a slice, or hoist the map to pooled state"))
			}
			if calleeBase(v.Fun) == "append" && len(v.Args) > 0 && inAny(loops, v.Pos()) {
				switch target := v.Args[0].(type) {
				case *ast.Ident:
					if growable[target.Name] {
						out = append(out, p.diag(r, v.Pos(),
							fmt.Sprintf("hot path %s appends to %q in a loop but %q is declared without capacity",
								name, target.Name, target.Name),
							"preallocate with make(..., 0, n) or reuse pooled scratch"))
					}
				default:
					if isNilish(v.Args[0]) {
						out = append(out, p.diag(r, v.Pos(),
							fmt.Sprintf("hot path %s appends to a nil slice in a loop, allocating per iteration", name),
							"preallocate the destination outside the loop"))
					}
				}
			}
		case *ast.CompositeLit:
			if isStringKeyedMap(v.Type) {
				out = append(out, p.diag(r, v.Pos(),
					fmt.Sprintf("hot path %s constructs a string-keyed map", name),
					"intern keys as dense ids and index a slice, or hoist the map to pooled state"))
			}
		case *ast.BinaryExpr:
			if v.Op == token.ADD && inAny(loops, v.Pos()) &&
				(isStringLiteral(v.X) || isStringLiteral(v.Y)) {
				out = append(out, p.diag(r, v.Pos(),
					fmt.Sprintf("hot path %s concatenates strings inside a loop", name),
					"build the string once outside the loop or use preallocated append"))
			}
		case *ast.AssignStmt:
			if v.Tok == token.ADD_ASSIGN && inAny(loops, v.Pos()) &&
				len(v.Rhs) == 1 && isStringLiteral(v.Rhs[0]) {
				out = append(out, p.diag(r, v.Pos(),
					fmt.Sprintf("hot path %s concatenates strings inside a loop", name),
					"build the string once outside the loop or use preallocated append"))
			}
		}
		return true
	})
	return out
}
