package gostatic

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// wantRe matches the fixture expectation markers: `// want <rule>` on the
// line that must produce a diagnostic of that rule.
var wantRe = regexp.MustCompile(`// want ([a-z]+)`)

// wantMarkers parses every fixture file of dir into the expected diagnostic
// set, as "file:line:rule" keys with the file reduced to its base name.
func wantMarkers(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var want []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				want = append(want, fmt.Sprintf("%s:%d:%s", e.Name(), i+1, m[1]))
			}
		}
	}
	sort.Strings(want)
	return want
}

// TestRuleFixtures runs the full default registry over each per-rule mutated
// fixture package and demands the diagnostics match the `// want` markers
// exactly — same file, same line, same rule, nothing extra. Running every
// rule (not just the fixture's own) doubles as a cross-rule false-positive
// check on each fixture.
func TestRuleFixtures(t *testing.T) {
	for _, rule := range []string{"hotalloc", "errparity", "spanconv", "poolreturn", "jsontag"} {
		t.Run(rule, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", rule)
			want := wantMarkers(t, dir)
			if len(want) == 0 {
				t.Fatalf("fixture %s has no want markers", dir)
			}
			pkgs, err := Load(dir)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := Default().Run(pkgs)
			if err != nil {
				t.Fatal(err)
			}
			got := make([]string, 0, len(rep.Diagnostics))
			for _, d := range rep.Diagnostics {
				got = append(got, fmt.Sprintf("%s:%d:%s", filepath.Base(d.File), d.Line, d.Rule))
			}
			sort.Strings(got)
			if strings.Join(got, "\n") != strings.Join(want, "\n") {
				t.Errorf("diagnostics mismatch\n got: %v\nwant: %v\nfull report:\n%s",
					got, want, renderString(t, rep))
			}
		})
	}
}

// TestCleanTree is the no-false-positive gate: the repository's own source
// must analyse clean with every rule registered — the same invocation CI
// runs via `upsimvet ./...`.
func TestCleanTree(t *testing.T) {
	pkgs, err := Load("../../...")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Default().Run(pkgs)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Errorf("repository tree is not clean:\n%s", renderString(t, rep))
	}
	if rep.Packages < 10 {
		t.Errorf("loaded only %d packages from the tree, expected the full repo", rep.Packages)
	}
	if rep.RulesRun != 5 {
		t.Errorf("rules run = %d, want 5", rep.RulesRun)
	}
}

// TestHotPathAnnotationsPresent pins the contract that the compiled kernels
// actually opt into the hotalloc rule: if a refactor drops the directives,
// the rule silently checks nothing, so the analyzer's own tests fail first.
func TestHotPathAnnotationsPresent(t *testing.T) {
	for _, dir := range []string{"../pathdisc", "../depend"} {
		pkgs, err := Load(dir)
		if err != nil {
			t.Fatal(err)
		}
		found := 0
		for _, p := range pkgs {
			for _, f := range p.Files {
				for _, cg := range f.Comments {
					for _, c := range cg.List {
						if strings.HasPrefix(c.Text, HotPathDirective) {
							found++
						}
					}
				}
			}
		}
		if found < 5 {
			t.Errorf("%s: found %d %s directives, want >= 5", dir, found, HotPathDirective)
		}
	}
}

// TestReportJSONRoundTrip checks the report survives EncodeJSON/DecodeReport
// with diagnostics, counts and ordering intact.
func TestReportJSONRoundTrip(t *testing.T) {
	pkgs, err := Load(filepath.Join("testdata", "src", "hotalloc"))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Default().Run(pkgs)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Summary() != rep.Summary() {
		t.Errorf("summary changed across round-trip: %q != %q", back.Summary(), rep.Summary())
	}
	if len(back.Diagnostics) != len(rep.Diagnostics) {
		t.Fatalf("diagnostics %d != %d", len(back.Diagnostics), len(rep.Diagnostics))
	}
	for i := range back.Diagnostics {
		if back.Diagnostics[i] != rep.Diagnostics[i] {
			t.Errorf("diagnostic %d changed: %+v != %+v", i, back.Diagnostics[i], rep.Diagnostics[i])
		}
	}
}

// TestRegistry covers registration invariants: duplicates rejected, lookup by
// ID, registration order preserved.
func TestRegistry(t *testing.T) {
	reg := Default()
	if err := reg.Register(hotallocRule{}); err == nil {
		t.Error("duplicate rule registration succeeded")
	}
	if err := reg.Register(nil); err == nil {
		t.Error("nil rule registration succeeded")
	}
	rules := reg.Rules()
	wantOrder := []string{"hotalloc", "errparity", "spanconv", "poolreturn", "jsontag"}
	if len(rules) != len(wantOrder) {
		t.Fatalf("rules = %d, want %d", len(rules), len(wantOrder))
	}
	for i, id := range wantOrder {
		if rules[i].ID() != id {
			t.Errorf("rule %d = %q, want %q", i, rules[i].ID(), id)
		}
		if r, ok := reg.Rule(id); !ok || r.ID() != id {
			t.Errorf("lookup %q failed", id)
		}
		if rules[i].Doc() == "" {
			t.Errorf("rule %q has no doc", id)
		}
	}
}

func renderString(t *testing.T, rep *Report) string {
	t.Helper()
	var buf bytes.Buffer
	if err := rep.Render(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}
